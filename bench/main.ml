(** Benchmark harness — regenerates every table and figure of the paper's
    evaluation (§VI):

    - [table1]  — the paper's Table I: columns S, L, T, P, C, M, D per
      assignment, measured over a deterministic sample of each submission
      space (use [--full] to sweep entire spaces, [--sample N] to resize);
      [--explain] breaks the discrepancies down by cause (§VI-B).
    - [micro]   — Bechamel micro-benchmarks of the pattern-matching time
      per assignment (column M's headline: milliseconds per submission).
    - [compare] — the §VI-C comparison against the CLARA-like and
      Sketch-like baselines: input-size sensitivity, repair-depth blowup,
      and the Fig. 8 reference-matching failure.

    Running with no arguments executes all three with default sizes. *)

open Jfeed_kb
open Jfeed_core

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let feedback_positive (r : Grader.result) =
  List.for_all (fun c -> c.Feedback.verdict = Feedback.Correct) r.Grader.comments

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)

type row = {
  id : string;
  s : int;
  l : float;
  t : float;
  p : int;
  c : int;
  m : float;
  d : int;
  sampled : int;
  causes : (string * int) list;
}

let table1_row ~sample ~seed (b : Bundles.t) =
  let spec = b.Bundles.gen in
  let total = Jfeed_gen.Spec.size spec in
  let indices = Jfeed_gen.Spec.sample_indices spec ~n:sample ~seed in
  let reference =
    Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference spec)
  in
  let expected = Jfeed_ftest.Runner.expected_outputs b.suite reference in
  let lines = ref 0 and t_total = ref 0.0 and m_total = ref 0.0 in
  let d = ref 0 in
  let causes = Hashtbl.create 8 in
  let n = List.length indices in
  List.iter
    (fun idx ->
      let digits = Jfeed_gen.Spec.decode spec idx in
      let src = spec.Jfeed_gen.Spec.render digits in
      lines :=
        !lines
        + List.length
            (List.filter
               (fun l -> String.trim l <> "")
               (String.split_on_char '\n' src));
      let prog = Jfeed_java.Parser.parse_program src in
      let fpass, t_time =
        time (fun () -> Jfeed_ftest.Runner.passes b.suite ~expected prog)
      in
      let result, m_time = time (fun () -> Grader.grade b.grading prog) in
      t_total := !t_total +. t_time;
      m_total := !m_total +. m_time;
      if fpass <> feedback_positive result then begin
        incr d;
        let cause =
          match Jfeed_gen.Spec.deviations spec digits with
          | [] -> "all-good-combination"
          | [ (tag, label, _) ] -> tag ^ "=" ^ label
          | _ -> "combination"
        in
        Hashtbl.replace causes cause
          (1 + Option.value ~default:0 (Hashtbl.find_opt causes cause))
      end)
    indices;
  {
    id = b.Bundles.grading.Grader.a_id;
    s = total;
    l = float_of_int !lines /. float_of_int n;
    t = !t_total /. float_of_int n;
    p = List.length (Bundles.patterns b);
    c = List.length (Bundles.constraints b);
    m = !m_total /. float_of_int n;
    d = !d;
    sampled = n;
    causes =
      List.sort
        (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) causes []);
  }

let print_table1 ~explain rows =
  Printf.printf
    "\nTable I — experimental results (measured over deterministic samples)\n";
  Printf.printf "%-20s %10s %6s %9s %3s %3s %9s %6s/%-6s %9s\n" "Assignment"
    "S" "L" "T" "P" "C" "M" "D" "sample" "D-est";
  List.iter
    (fun r ->
      let rate = float_of_int r.d /. float_of_int r.sampled in
      Printf.printf "%-20s %10d %6.2f %8.4fs %3d %3d %8.5fs %6d/%-6d %9.0f\n"
        r.id r.s r.l r.t r.p r.c r.m r.d r.sampled
        (rate *. float_of_int r.s);
      if explain && r.causes <> [] then
        List.iter
          (fun (cause, count) -> Printf.printf "    D cause: %-40s %6d\n" cause count)
          r.causes)
    rows;
  let avg f =
    List.fold_left (fun a r -> a +. f r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  Printf.printf "%-20s %10.0f %6.2f %8.4fs %3.0f %3.0f %8.5fs\n" "average"
    (avg (fun r -> float_of_int r.s))
    (avg (fun r -> r.l))
    (avg (fun r -> r.t))
    (avg (fun r -> float_of_int r.p))
    (avg (fun r -> float_of_int r.c))
    (avg (fun r -> r.m));
  Printf.printf
    "(S exact; L/T/M/D measured on the sample; D-est extrapolates the \
     discrepancy rate to the full space.)\n"

let table1 ~sample ~seed ~full ~explain () =
  let rows =
    List.map
      (fun b ->
        let sample =
          if full then Jfeed_gen.Spec.size b.Bundles.gen else sample
        in
        table1_row ~sample ~seed b)
      Bundles.all
  in
  print_table1 ~explain rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map
      (fun (b : Bundles.t) ->
        let spec = b.Bundles.gen in
        (* A deterministic mid-space submission, pre-parsed: the staged
           benchmark measures pure matching (EPDG + Algorithms 1 and 2). *)
        let idx = Jfeed_gen.Spec.size spec / 2 in
        let prog =
          Jfeed_java.Parser.parse_program
            (Jfeed_gen.Spec.source_of_index spec idx)
        in
        Test.make
          ~name:b.Bundles.grading.Grader.a_id
          (Staged.stage (fun () -> ignore (Grader.grade b.Bundles.grading prog))))
      Bundles.all
  in
  let test = Test.make_grouped ~name:"match" ~fmt:"%s %s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf
    "\nPattern-matching micro-benchmarks (Bechamel, per submission)\n";
  let entries =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) results []
  in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] ->
          Printf.printf "  %-36s %12.0f ns  (%.4f ms)\n" name ns (ns /. 1e6)
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort compare entries)

(* ------------------------------------------------------------------ *)
(* micro --json: the tracked perf trajectory (BENCH_grading.json)      *)

(* Wall-clock batch grading over the Table-I sample, sequential vs
   [--jobs N], written to BENCH_grading.json so the speedup and the
   per-assignment ms/submission are tracked across PRs.  Functional
   tests are skipped: the file tracks matching throughput (column M's
   operational headline), not interpreter speed. *)
let micro_json ~sample ~seed ~jobs () =
  let searches0 = Jfeed_core.Plan.searches () in
  let rejects0 = Jfeed_core.Plan.prefilter_rejects () in
  let rows =
    List.map
      (fun (b : Bundles.t) ->
        let spec = b.Bundles.gen in
        let indices = Jfeed_gen.Spec.sample_indices spec ~n:sample ~seed in
        let sources =
          List.map
            (fun idx ->
              ( Printf.sprintf "s%06d.java" idx,
                Ok (Jfeed_gen.Spec.source_of_index spec idx) ))
            indices
        in
        (* Sampled indices are pairwise distinct sources, so dedup could
           only add fingerprint overhead here: it is off, keeping the
           per-assignment ms/submission a pure match-plan measurement. *)
        let run ?traced j =
          time (fun () ->
              Jfeed_robust.Pipeline.run_batch ~with_tests:false ~jobs:j
                ?traced ~dedup:false b sources)
        in
        let seq_summary, seq_s = run 1 in
        let par_summary, par_s = run jobs in
        (* A third, fully traced sequential pass: its wall-clock against
           the untraced one is the price of turning tracing ON — and its
           grades must be byte-identical (tracing observes, never
           steers). *)
        let traced_summary, traced_s = run ~traced:true 1 in
        let identical =
          Jfeed_robust.Pipeline.summary_to_json seq_summary
          = Jfeed_robust.Pipeline.summary_to_json par_summary
          && Jfeed_robust.Pipeline.summary_to_json seq_summary
             = Jfeed_robust.Pipeline.summary_to_json ~traces:false
                 traced_summary
        in
        (b.Bundles.grading.Grader.a_id, List.length indices, seq_s, par_s,
         traced_s, identical))
      Bundles.all
  in
  let searches = Jfeed_core.Plan.searches () - searches0 in
  let rejects = Jfeed_core.Plan.prefilter_rejects () - rejects0 in
  let prefilter_reject_rate =
    if searches > 0 then float_of_int rejects /. float_of_int searches
    else 0.0
  in
  (* The dedup trajectory: a MOOC-realistic duplicate-heavy corpus —
     every unique submission resubmitted once under α-renaming — through
     the heaviest-matching assignment, graded with dedup on vs off.  The
     speedup must exceed 1 and the outcomes must be byte-identical
     modulo the summary's own dedup counters. *)
  let strip_dedup s =
    match
      let marker = {|,"dedup":{|} in
      let m = String.length marker and n = String.length s in
      let rec find i =
        if i + m > n then None
        else if String.sub s i m = marker then Some i
        else find (i + 1)
      in
      find 0
    with
    | None -> s
    | Some i ->
        let j = String.index_from s (i + 1) '}' in
        String.sub s 0 i ^ String.sub s (j + 1) (String.length s - j - 1)
  in
  let dedup_row =
    let b =
      List.find
        (fun (b : Bundles.t) ->
          b.Bundles.grading.Grader.a_id = "rit-all-g-medals")
        Bundles.all
    in
    let spec = b.Bundles.gen in
    let n_unique = max 1 (sample / 2) in
    let uniques =
      List.map
        (Jfeed_gen.Spec.source_of_index spec)
        (Jfeed_gen.Spec.sample_indices spec ~n:n_unique ~seed)
    in
    let sources =
      List.concat
        (List.mapi
           (fun i src ->
             [
               (Printf.sprintf "s%06d.java" i, Ok src);
               ( Printf.sprintf "d%06d.java" i,
                 Ok (Jfeed_gen.Mutate.alpha_rename ~seed:(seed + i) src) );
             ])
           uniques)
    in
    let run dedup =
      time (fun () ->
          Jfeed_robust.Pipeline.run_batch ~with_tests:false ~jobs:1 ~dedup b
            sources)
    in
    let without_summary, without_s = run false in
    let with_summary, with_s = run true in
    let identical =
      strip_dedup (Jfeed_robust.Pipeline.summary_to_json with_summary)
      = Jfeed_robust.Pipeline.summary_to_json without_summary
    in
    let speedup = if with_s > 0.0 then without_s /. with_s else 0.0 in
    (List.length sources, without_s, with_s, speedup, identical)
  in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let seq_total = sum (fun (_, _, s, _, _, _) -> s) in
  let par_total = sum (fun (_, _, _, p, _, _) -> p) in
  let traced_total = sum (fun (_, _, _, _, t, _) -> t) in
  let submissions =
    List.fold_left (fun acc (_, n, _, _, _, _) -> acc + n) 0 rows
  in
  let identical = List.for_all (fun (_, _, _, _, _, i) -> i) rows in
  let speedup = if par_total > 0.0 then seq_total /. par_total else 0.0 in
  let trace_overhead_pct =
    if seq_total > 0.0 then
      100.0 *. (traced_total -. seq_total) /. seq_total
    else 0.0
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"schema":"jfeed-bench-grading/3","sample":%d,"seed":%d,"jobs":%d,"assignments":[|}
       sample seed jobs);
  List.iteri
    (fun i (id, n, seq_s, par_s, _, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n  \
            {\"id\":\"%s\",\"submissions\":%d,\"ms_per_submission\":%.4f,\"sequential_s\":%.4f,\"parallel_s\":%.4f}"
           id n
           (1000.0 *. seq_s /. float_of_int (max 1 n))
           seq_s par_s))
    rows;
  let dd_subs, dd_without_s, dd_with_s, dedup_speedup, dd_identical =
    dedup_row
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\n\
        ],\"batch\":{\"submissions\":%d,\"sequential_s\":%.4f,\"parallel_s\":%.4f,\"speedup\":%.3f,\"trace_overhead_pct\":%.1f,\"prefilter_reject_rate\":%.4f,\"identical\":%b},\"dedup\":{\"submissions\":%d,\"duplicate_ratio\":0.50,\"no_dedup_s\":%.4f,\"dedup_s\":%.4f,\"dedup_speedup\":%.3f,\"identical\":%b}}"
       submissions seq_total par_total speedup trace_overhead_pct
       prefilter_reject_rate identical dd_subs dd_without_s dd_with_s
       dedup_speedup dd_identical);
  let json = Buffer.contents buf in
  let oc = open_out "BENCH_grading.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "BENCH_grading.json written: %d submissions, sequential %.3fs, --jobs \
     %d %.3fs, speedup %.2fx, trace overhead %.1f%%, prefilter reject rate \
     %.2f, dedup speedup %.2fx, output identical: %b\n"
    submissions seq_total jobs par_total speedup trace_overhead_pct
    prefilter_reject_rate dedup_speedup
    (identical && dd_identical)

(* ------------------------------------------------------------------ *)
(* repair: repair rate over the fault-injected mutant corpus
   (BENCH_repair.json)                                                 *)

(* Inject single edits from the shared error-model catalog into every
   assignment's reference solution, keep the mutants that actually fail
   the functional tests, and measure how often — and how quickly — the
   repair search finds a passing fix.  The catalog is closed under
   inverses, so the interesting numbers are the rate (does the search
   reach the inverse within budget?) and the median candidates screened
   (how well the KB-guided priority order front-loads it). *)
let repair_json ~sample ~seed ~jobs () =
  let median xs =
    match List.sort compare xs with
    | [] -> 0
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let identical = ref true in
  let rows =
    List.map
      (fun (b : Bundles.t) ->
        let base = Jfeed_gen.Spec.reference b.Bundles.gen in
        let mutants =
          List.filter_map
            (fun i -> Jfeed_gen.Mutate.fault_inject ~seed:(seed + i) base)
            (List.init sample Fun.id)
        in
        let failing = ref 0 and repaired = ref 0 and tried = ref [] in
        let _, wall_s =
          time (fun () ->
              List.iter
                (fun (msrc, _fault) ->
                  let o = Jfeed_repair.Repair.search ~jobs:1 b msrc in
                  match o.Jfeed_repair.Repair.status with
                  | Jfeed_repair.Repair.Already_passing
                  | Jfeed_repair.Repair.Unrepairable _ ->
                      (* the injected edit did not change observable
                         behaviour (dead code, compensating tests) — not
                         a failing mutant, so not part of the rate *)
                      ()
                  | Jfeed_repair.Repair.Repaired | Jfeed_repair.Repair.No_repair
                    ->
                      incr failing;
                      (* jobs-invariance is part of the tracked record:
                         the parallel search must reproduce the
                         sequential outcome byte for byte *)
                      if jobs > 1 then begin
                        let oj = Jfeed_repair.Repair.search ~jobs b msrc in
                        if
                          Jfeed_repair.Repair.to_json oj
                          <> Jfeed_repair.Repair.to_json o
                        then identical := false
                      end;
                      (match o.Jfeed_repair.Repair.hint with
                      | Some h ->
                          incr repaired;
                          tried := h.Jfeed_repair.Repair.h_rank :: !tried
                      | None ->
                          tried := o.Jfeed_repair.Repair.candidates :: !tried))
                mutants)
        in
        ( b.Bundles.grading.Grader.a_id,
          List.length mutants,
          !failing,
          !repaired,
          median !tried,
          wall_s ))
      Bundles.all
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let mutants = sum (fun (_, m, _, _, _, _) -> m) in
  let failing = sum (fun (_, _, f, _, _, _) -> f) in
  let repaired = sum (fun (_, _, _, r, _, _) -> r) in
  let wall_total =
    List.fold_left (fun acc (_, _, _, _, _, w) -> acc +. w) 0.0 rows
  in
  let rate num den =
    if den > 0 then float_of_int num /. float_of_int den else 0.0
  in
  let medians =
    List.concat_map (fun (_, _, f, _, med, _) -> if f > 0 then [ med ] else [])
      rows
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"schema":"jfeed-bench-repair/1","sample":%d,"seed":%d,"jobs":%d,"assignments":[|}
       sample seed jobs);
  List.iteri
    (fun i (id, m, f, r, med, w) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n  \
            {\"id\":\"%s\",\"mutants\":%d,\"failing\":%d,\"repaired\":%d,\"repair_rate\":%.4f,\"median_candidates\":%d,\"wall_s\":%.4f}"
           id m f r (rate r f) med w))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "\n\
        ],\"total\":{\"mutants\":%d,\"failing\":%d,\"repaired\":%d,\"repair_rate\":%.4f,\"median_candidates\":%d,\"identical\":%b,\"wall_s\":%.4f}}"
       mutants failing repaired (rate repaired failing) (median medians)
       !identical wall_total);
  let json = Buffer.contents buf in
  let oc = open_out "BENCH_repair.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "BENCH_repair.json written: %d mutants (%d failing), repaired %d (rate \
     %.2f), median candidates %d, output identical across --jobs: %b\n"
    mutants failing repaired (rate repaired failing) (median medians)
    !identical

(* ------------------------------------------------------------------ *)
(* analyze: the static-analysis trajectory (BENCH_analysis.json)       *)

(* Run the full ten-pass analysis — the flow passes plus the interval
   abstract interpretation — over a deterministic sample of every
   assignment, with each reference solution as the efficiency oracle,
   and track both the cost and the yield: analysis ms/submission,
   findings per pass, and the fraction of loops whose iteration bound
   the engine classifies (the bound-inference hit rate). *)
let analyze_json ~sample ~seed () =
  let module P = Jfeed_absint.Passes in
  let rows =
    List.map
      (fun (b : Bundles.t) ->
        let spec = b.Bundles.gen in
        let indices = Jfeed_gen.Spec.sample_indices spec ~n:sample ~seed in
        let oracle_degrees =
          P.method_degrees
            (Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference spec))
        in
        let progs =
          List.map
            (fun idx ->
              Jfeed_java.Parser.parse_program
                (Jfeed_gen.Spec.source_of_index spec idx))
            indices
        in
        let loops = ref 0 and bounded = ref 0 in
        List.iter
          (fun prog ->
            let l, c = P.bound_stats prog in
            loops := !loops + l;
            bounded := !bounded + c)
          progs;
        let diags, wall_s =
          time (fun () ->
              List.concat_map (fun p -> P.analyze_program ~oracle_degrees p)
                progs)
        in
        ( b.Bundles.grading.Grader.a_id,
          List.length indices,
          wall_s,
          P.count_by_pass diags,
          !loops,
          !bounded ))
      Bundles.all
  in
  let diags_json counts =
    String.concat ","
      (List.map (fun (p, n) -> Printf.sprintf {|{"pass":"%s","n":%d}|} p n)
         counts)
  in
  let rate num den =
    if den > 0 then float_of_int num /. float_of_int den else 0.0
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"schema":"jfeed-bench-analysis/1","sample":%d,"seed":%d,"assignments":[|}
       sample seed);
  List.iteri
    (fun i (id, n, wall_s, counts, loops, bounded) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n  \
            {\"id\":\"%s\",\"submissions\":%d,\"ms_per_submission\":%.4f,\"loops\":%d,\"bounded\":%d,\"bound_hit_rate\":%.4f,\"diags\":[%s]}"
           id n
           (1000.0 *. wall_s /. float_of_int (max 1 n))
           loops bounded (rate bounded loops) (diags_json counts)))
    rows;
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let submissions = sum (fun (_, n, _, _, _, _) -> n) in
  let loops = sum (fun (_, _, _, _, l, _) -> l) in
  let bounded = sum (fun (_, _, _, _, _, c) -> c) in
  let wall_total =
    List.fold_left (fun acc (_, _, w, _, _, _) -> acc +. w) 0.0 rows
  in
  let totals =
    List.map
      (fun pass ->
        ( pass,
          sum (fun (_, _, _, counts, _, _) ->
              Option.value ~default:0 (List.assoc_opt pass counts)) ))
      P.all_pass_ids
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\n\
        ],\"total\":{\"submissions\":%d,\"ms_per_submission\":%.4f,\"loops\":%d,\"bounded\":%d,\"bound_hit_rate\":%.4f,\"diags\":[%s]}}"
       submissions
       (1000.0 *. wall_total /. float_of_int (max 1 submissions))
       loops bounded (rate bounded loops) (diags_json totals));
  let json = Buffer.contents buf in
  let oc = open_out "BENCH_analysis.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "BENCH_analysis.json written: %d submissions, %.4f ms/submission, \
     bound hit rate %.2f (%d/%d loops)\n"
    submissions
    (1000.0 *. wall_total /. float_of_int (max 1 submissions))
    (rate bounded loops) bounded loops

(* ------------------------------------------------------------------ *)
(* serve --json: the serving-tier trajectory (BENCH_service.json)      *)

(* Replay a generated corpus through an in-process [jfeed serve] daemon
   over a pipe pair and measure end-to-end serving throughput.  A
   configurable fraction of the requests are α-renamed duplicates of
   earlier submissions — the MOOC-realistic load the content-addressed
   cache exists for — so the hit rate is part of the tracked record. *)
let serve_json ~requests ~dup_pct ~jobs ~seed () =
  let b = Bundles.assignment1 in
  let spec = b.Bundles.gen in
  let n_unique = max 1 (requests * (100 - dup_pct) / 100) in
  let uniques =
    Array.of_list
      (List.map
         (Jfeed_gen.Spec.source_of_index spec)
         (Jfeed_gen.Spec.sample_indices spec ~n:n_unique ~seed))
  in
  let n_unique = Array.length uniques in
  (* Deterministic request stream: first every unique once, then
     α-renamed mutants of a rotating earlier submission. *)
  let source_of i =
    if i < n_unique then uniques.(i)
    else Jfeed_gen.Mutate.alpha_rename ~seed:(seed + i) uniques.(i mod n_unique)
  in
  let line_of i =
    Printf.sprintf
      {|{"op":"grade","id":"r%d","assignment":"%s","source":"%s"}|} i
      b.Bundles.grading.Grader.a_id
      (Jfeed_core.Feedback.json_escape (source_of i))
  in
  let req_read, req_write = Unix.pipe () in
  let resp_read, resp_write = Unix.pipe () in
  let config =
    { Jfeed_service.Server.default_config with jobs; with_tests = false }
  in
  let t0 = Unix.gettimeofday () in
  let server =
    Domain.spawn (fun () ->
        let oc = Unix.out_channel_of_descr resp_write in
        let r = Jfeed_service.Server.serve_fd config req_read oc in
        flush oc;
        Unix.close resp_write;
        r)
  in
  let writer =
    Domain.spawn (fun () ->
        let oc = Unix.out_channel_of_descr req_write in
        for i = 0 to requests - 1 do
          output_string oc (line_of i);
          output_char oc '\n'
        done;
        output_string oc "{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n";
        flush oc;
        Unix.close req_write)
  in
  let ic = Unix.in_channel_of_descr resp_read in
  let last_grade = ref t0 and grades = ref 0 and stats_line = ref "" in
  (try
     while true do
       let line = input_line ic in
       match Jfeed_service.Proto.(member "op" (Result.get_ok (parse_json line))) with
       | Some (Jfeed_service.Proto.Str "grade") ->
           incr grades;
           last_grade := Unix.gettimeofday ()
       | Some (Jfeed_service.Proto.Str "stats") -> stats_line := line
       | _ -> ()
     done
   with End_of_file -> ());
  Domain.join writer;
  ignore (Domain.join server);
  Unix.close req_read;
  Unix.close resp_read;
  let wall = !last_grade -. t0 in
  let num path =
    let rec walk j = function
      | [] -> ( match j with Jfeed_service.Proto.Num n -> n | _ -> 0.0)
      | f :: rest -> (
          match Jfeed_service.Proto.member f j with
          | Some j' -> walk j' rest
          | None -> 0.0)
    in
    match Jfeed_service.Proto.parse_json !stats_line with
    | Ok j -> walk j path
    | Error _ -> 0.0
  in
  let hits = num [ "cache"; "hits" ] and misses = num [ "cache"; "misses" ] in
  let hit_rate =
    if hits +. misses > 0.0 then hits /. (hits +. misses) else 0.0
  in
  let throughput =
    if wall > 0.0 then float_of_int !grades /. wall else 0.0
  in
  let json =
    Printf.sprintf
      {|{"schema":"jfeed-bench-service/1","requests":%d,"duplicate_ratio":%.2f,"jobs":%d,"wall_s":%.4f,"throughput_rps":%.2f,"cache_hit_rate":%.4f,"p50_ms":%.3g,"p95_ms":%.3g}|}
      !grades
      (float_of_int dup_pct /. 100.0)
      jobs wall throughput hit_rate
      (num [ "latency_ms"; "p50" ])
      (num [ "latency_ms"; "p95" ])
  in
  let oc = open_out "BENCH_service.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "BENCH_service.json written: %d requests (%d%% duplicates), %.1f req/s, \
     hit rate %.2f\n"
    !grades dup_pct throughput hit_rate

(* ------------------------------------------------------------------ *)
(* load: the open-loop overload benchmark (BENCH_load.json)            *)

(* Drive the {e concurrent} socket daemon with an open-loop arrival
   process — requests fire on schedule whether or not earlier ones were
   answered, the deadline-night model — across a sweep of arrival
   rates, and record per-rate completions, sheds, degraded admissions,
   cache hits and latency percentiles.  Latency is measured from each
   request's {e intended} arrival time, so queueing delay is charged to
   the server (no coordinated omission). *)

let nearest_rank sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let load_json ~rates ~requests ~dup_pct ~conns ~jobs ~queue_cap ~watermark
    ~shed_fuel ~seed () =
  let module Server = Jfeed_service.Server in
  let module Proto = Jfeed_service.Proto in
  let module Sysx = Jfeed_service.Sysx in
  let b = Bundles.assignment1 in
  let spec = b.Bundles.gen in
  let base_config =
    {
      Server.default_config with
      jobs;
      with_tests = false;
      queue_cap;
      watermark = Some watermark;
      shed_fuel = Some shed_fuel;
    }
  in
  (* One full sweep against a fresh daemon.  Returns the per-rate JSON
     rows, the daemon's cumulative shed count and the summed wall time
     — the sweep runs twice, once bare and once with the event log +
     tail sampling on, and the wall-clock ratio is the telemetry
     overhead figure. *)
  let run_sweep ~quiet ~tag config =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jfeed-load-%s-%d.sock" tag (Unix.getpid ()))
  in
  let server = Domain.spawn (fun () -> Server.serve_socket config path) in
  let rec wait_sock n =
    if n = 0 then failwith "load: daemon socket never appeared"
    else if Sys.file_exists path then ()
    else begin
      Sysx.sleep 0.02;
      wait_sock (n - 1)
    end
  in
  wait_sock 250;
  let fds =
    Array.init conns (fun _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        Unix.set_nonblock fd;
        fd)
  in
  let parts = Array.init conns (fun _ -> Buffer.create 4096) in
  (* Pull whatever the socket has and hand complete lines to [k];
     partial tails wait in [parts] for the next readable event. *)
  let read_lines i k =
    let buf = Bytes.create 65536 in
    let rec pull () =
      match Sysx.read fds.(i) buf 0 (Bytes.length buf) with
      | `Read 0 -> ()
      | `Read n ->
          Buffer.add_subbytes parts.(i) buf 0 n;
          pull ()
      | `Again -> ()
    in
    pull ();
    let s = Buffer.contents parts.(i) in
    let rec split start =
      match String.index_from_opt s start '\n' with
      | Some nl ->
          k (String.sub s start (nl - start));
          split (nl + 1)
      | None ->
          Buffer.clear parts.(i);
          Buffer.add_substring parts.(i) s start (String.length s - start)
    in
    split 0
  in
  let send_all fd s =
    let bytes = Bytes.unsafe_of_string s in
    let len = Bytes.length bytes in
    let pos = ref 0 in
    while !pos < len do
      match Sysx.write fd bytes !pos (len - !pos) with
      | `Wrote n -> pos := !pos + n
      | `Again -> ignore (Sysx.select [] [ fd ] [] 0.1)
    done
  in
  let jnum j fields =
    let rec walk j = function
      | [] -> ( match j with Proto.Num n -> n | _ -> 0.0)
      | f :: rest -> (
          match Proto.member f j with
          | Some j' -> walk j' rest
          | None -> 0.0)
    in
    walk j fields
  in
  let get_stats () =
    send_all fds.(0) "{\"op\":\"stats\",\"id\":\"bench-stats\"}\n";
    let result = ref None in
    while !result = None do
      ignore (Sysx.select [ fds.(0) ] [] [] 1.0);
      read_lines 0 (fun line ->
          match Proto.parse_json line with
          | Ok j when Proto.member "op" j = Some (Proto.Str "stats") ->
              result := Some j
          | _ -> ())
    done;
    Option.get !result
  in
  let prev_degraded = ref 0.0 in
  let round idx rate =
    let n_unique = max 1 (requests * (100 - dup_pct) / 100) in
    let rseed = seed + (idx * 7919) in
    let uniques =
      Array.of_list
        (List.map
           (Jfeed_gen.Spec.source_of_index spec)
           (Jfeed_gen.Spec.sample_indices spec ~n:n_unique ~seed:rseed))
    in
    let n_unique = Array.length uniques in
    let source_of i =
      if i < n_unique then uniques.(i)
      else
        Jfeed_gen.Mutate.alpha_rename ~seed:(rseed + i)
          uniques.(i mod n_unique)
    in
    let line_of i =
      Printf.sprintf
        {|{"op":"grade","id":"q%d","assignment":"%s","source":"%s"}|} i
        b.Bundles.grading.Grader.a_id
        (Jfeed_core.Feedback.json_escape (source_of i))
      ^ "\n"
    in
    let outq = Array.init conns (fun _ -> Queue.create ()) in
    let off = Array.make conns 0 in
    let interval = 1.0 /. rate in
    let t0 = Unix.gettimeofday () in
    let sent = ref 0 and received = ref 0 in
    let shed = ref 0 and cached = ref 0 in
    let lats = ref [] in
    let t_last = ref t0 in
    while !received < requests do
      let now = Unix.gettimeofday () in
      (* Open loop: enqueue every request whose scheduled arrival has
         passed, even if the loop fell behind — bursts and all. *)
      while
        !sent < requests
        && now >= t0 +. (float_of_int !sent *. interval)
      do
        Queue.push (line_of !sent) outq.(!sent mod conns);
        incr sent
      done;
      let wrs = ref [] in
      Array.iteri
        (fun i fd -> if not (Queue.is_empty outq.(i)) then wrs := fd :: !wrs)
        fds;
      let timeout =
        if !sent < requests then
          max 0.0005 (t0 +. (float_of_int !sent *. interval) -. now)
        else 0.25
      in
      let rready, wready, _ =
        Sysx.select (Array.to_list fds) !wrs [] timeout
      in
      Array.iteri
        (fun i fd ->
          if List.mem fd wready then begin
            let blocked = ref false in
            while (not !blocked) && not (Queue.is_empty outq.(i)) do
              let head = Queue.peek outq.(i) in
              let len = String.length head - off.(i) in
              match
                Sysx.write fd (Bytes.unsafe_of_string head) off.(i) len
              with
              | `Wrote n ->
                  if n = len then begin
                    ignore (Queue.pop outq.(i));
                    off.(i) <- 0
                  end
                  else begin
                    off.(i) <- off.(i) + n;
                    blocked := true
                  end
              | `Again -> blocked := true
            done
          end)
        fds;
      Array.iteri
        (fun i fd ->
          if List.mem fd rready then
            read_lines i (fun line ->
                match Proto.parse_json line with
                | Ok j -> (
                    match Proto.member "id" j with
                    | Some (Proto.Str id)
                      when String.length id > 1 && id.[0] = 'q' -> (
                        match
                          int_of_string_opt
                            (String.sub id 1 (String.length id - 1))
                        with
                        | Some k ->
                            incr received;
                            t_last := Unix.gettimeofday ();
                            (match Proto.member "rejected" j with
                            | Some (Proto.Str "overloaded") -> incr shed
                            | _ ->
                                (match Proto.member "cached" j with
                                | Some (Proto.Bool true) -> incr cached
                                | _ -> ());
                                lats :=
                                  ((!t_last
                                   -. (t0 +. (float_of_int k *. interval)))
                                  *. 1000.0)
                                  :: !lats)
                        | None -> ())
                    | _ -> ())
                | Error _ -> ()))
        fds
    done;
    let stats = get_stats () in
    let cum_degraded = jnum stats [ "admission"; "degraded" ] in
    let degraded = int_of_float (cum_degraded -. !prev_degraded) in
    prev_degraded := cum_degraded;
    let wall = !t_last -. t0 in
    let sorted = Array.of_list !lats in
    Array.sort compare sorted;
    let completed = requests - !shed in
    let achieved =
      if wall > 0.0 then float_of_int completed /. wall else 0.0
    in
    if not quiet then
      Printf.printf
        "  rate %7.1f req/s: %d/%d completed, %d shed, %d degraded, %d \
         cached, p99 %.1f ms\n\
         %!"
        rate completed requests !shed degraded !cached
        (nearest_rank sorted 0.99);
    ( Printf.sprintf
        {|{"rate_rps":%g,"requests":%d,"completed":%d,"shed":%d,"degraded":%d,"cached":%d,"p50_ms":%.3g,"p95_ms":%.3g,"p99_ms":%.3g,"achieved_rps":%.2f,"wall_s":%.4f}|}
        rate requests completed !shed degraded !cached
        (nearest_rank sorted 0.50)
        (nearest_rank sorted 0.95)
        (nearest_rank sorted 0.99)
        achieved wall,
      wall )
  in
  if not quiet then
    Printf.printf "open-loop load sweep (%d conns, queue cap %d):\n%!" conns
      queue_cap;
  let rounds = List.mapi round rates in
  let rows = List.map fst rounds in
  let wall_sum = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 rounds in
  let final = get_stats () in
  let total_shed = int_of_float (jnum final [ "admission"; "shed" ]) in
  send_all fds.(0) "{\"op\":\"shutdown\"}\n";
  Domain.join server;
  Array.iter (fun fd -> try Unix.close fd with _ -> ()) fds;
  (rows, total_shed, wall_sum)
  in
  let rows, total_shed, wall_base =
    run_sweep ~quiet:false ~tag:"base" base_config
  in
  (* Same sweep with the full telemetry stack on: durable event log,
     1-in-10 tail sampling, a 50 ms SLO.  Only its wall time matters. *)
  let ev_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jfeed-load-events-%d" (Unix.getpid ()))
  in
  let ev_config =
    {
      base_config with
      Server.event_log = Some ev_dir;
      trace_sample = Some 10;
      slo_ms = Some 50.0;
    }
  in
  let _, _, wall_ev = run_sweep ~quiet:true ~tag:"events" ev_config in
  List.iter
    (fun f ->
      try Sys.remove (Filename.concat ev_dir f) with Sys_error _ -> ())
    [ "events.jsonl"; "events.jsonl.1" ];
  (try Sys.rmdir ev_dir with Sys_error _ -> ());
  let events_overhead_pct =
    if wall_base > 0.0 then 100.0 *. (wall_ev -. wall_base) /. wall_base
    else 0.0
  in
  Printf.printf "telemetry overhead: %.2f%% (wall %.3fs -> %.3fs)\n%!"
    events_overhead_pct wall_base wall_ev;
  let json =
    Printf.sprintf
      {|{"schema":"jfeed-bench-load/2","conns":%d,"queue_cap":%d,"watermark":%d,"shed_fuel":%d,"requests_per_rate":%d,"duplicate_ratio":%.2f,"jobs":%d,"sweep":[%s],"total_shed":%d,"events_overhead_pct":%.2f}|}
      conns queue_cap watermark shed_fuel requests
      (float_of_int dup_pct /. 100.0)
      jobs
      (String.concat ",\n " rows)
      total_shed events_overhead_pct
  in
  let oc = open_out "BENCH_load.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "BENCH_load.json written: %d rates x %d requests, %d shed \
                 in total\n"
    (List.length rates) requests total_shed

(* ------------------------------------------------------------------ *)
(* Regression gate: a fresh BENCH_*.json against the committed one     *)

(* Pinned metrics where a higher current value is a regression… *)
let diff_up_bad =
  [
    "ms_per_submission"; "p50_ms"; "p95_ms"; "p99_ms"; "sequential_s";
    "parallel_s"; "dedup_s"; "no_dedup_s"; "median_candidates";
    "events_overhead_pct"; "trace_overhead_pct";
  ]

(* …and where a lower one is. Everything else is informational. *)
let diff_down_bad =
  [
    "speedup"; "dedup_speedup"; "prefilter_reject_rate"; "throughput_rps";
    "cache_hit_rate"; "achieved_rps"; "repair_rate"; "bound_hit_rate";
    "completed";
  ]

let diff_json ~base_path ~cur_path () =
  let module Proto = Jfeed_service.Proto in
  let parse p =
    let j =
      try
        let ic = open_in_bin p in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Proto.parse_json (String.trim s)
      with Sys_error e -> Error e
    in
    match j with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "jfeed-bench diff: %s: %s\n" p e;
        exit 2
  in
  let base = parse base_path and cur = parse cur_path in
  (match (Proto.member "schema" base, Proto.member "schema" cur) with
  | Some (Proto.Str b), Some (Proto.Str c) when b = c -> ()
  | b, c ->
      let s = function Some (Proto.Str s) -> s | _ -> "<missing>" in
      Printf.eprintf "jfeed-bench diff: schema mismatch: %s vs %s\n" (s b)
        (s c);
      exit 2);
  let checked = ref 0 and regressions = ref 0 in
  (* The metric name is the innermost object field on the path — array
     indices (sweep rows, per-assignment entries) are positions, not
     names. *)
  let metric_key path =
    List.find_opt (fun c -> int_of_string_opt c = None) path
  in
  let rec walk path b c =
    match (b, c) with
    | Proto.Obj bs, Proto.Obj cs ->
        List.iter
          (fun (k, bv) ->
            match List.assoc_opt k cs with
            | Some cv -> walk (k :: path) bv cv
            | None -> ())
          bs
    | Proto.Arr bs, Proto.Arr cs ->
        List.iteri
          (fun i bv ->
            match List.nth_opt cs i with
            | Some cv -> walk (string_of_int i :: path) bv cv
            | None -> ())
          bs
    | Proto.Num bn, Proto.Num cn -> (
        match metric_key path with
        | Some key
          when List.mem key diff_up_bad || List.mem key diff_down_bad ->
            if bn <> 0.0 then begin
              incr checked;
              let rel = (cn -. bn) /. Float.abs bn in
              let bad =
                if List.mem key diff_up_bad then rel > 0.10
                else rel < -0.10
              in
              if bad then begin
                incr regressions;
                Printf.printf "REGRESSION %s: %g -> %g (%+.1f%%)\n"
                  (String.concat "." (List.rev path))
                  bn cn (100.0 *. rel)
              end
            end
        | _ -> ())
    | _ -> ()
  in
  walk [] base cur;
  if !regressions = 0 then begin
    Printf.printf
      "ok: no pinned metric regressed more than 10%% (%d checked against \
       %s)\n"
      !checked base_path;
    0
  end
  else 1

(* ------------------------------------------------------------------ *)
(* §VI-C comparison                                                    *)

let fig8_reference =
  {|
void assignment1(int[] a) {
    int o = 0;
    int i = 0;
    while (i < a.length) {
        if (i % 2 == 1)
            o += a[i];
        i++;
    }
    i = 0;
    int e = 1;
    while (i < a.length) {
        if (i % 2 == 0)
            e *= a[i];
        i++;
    }
    System.out.print(e);
    System.out.print(o);
}
|}

let fig8_submission =
  {|
void assignment1(int[] a) {
    int o = 0, e = 1;
    int i = 0;
    while (i < a.length) {
        if (i % 2 == 1)
            o += a[i];
        if (i % 2 == 0)
            e *= a[i];
        i++;
    }
    System.out.print(e);
    System.out.print(o);
}
|}

let compare_fig8 () =
  let parse = Jfeed_java.Parser.parse_program in
  let args =
    [ Jfeed_interp.Value.Varr
        [| Jfeed_interp.Value.Vint 3; Vint 4; Vint 5; Vint 6 |] ]
  in
  let tr src =
    fst
      (Jfeed_baselines.Clara_like.trace_of (parse src) ~entry:"assignment1"
         ~args)
  in
  let equivalent =
    Jfeed_baselines.Clara_like.equivalent (tr fig8_reference)
      (tr fig8_submission)
  in
  let ours =
    feedback_positive
      (Grader.grade Bundles.assignment1.Bundles.grading (parse fig8_submission))
  in
  Printf.printf "\n[compare] Fig. 8 — correct submission vs reordered reference\n";
  Printf.printf
    "  CLARA-like trace match: %b   (paper: fails — traces compared as a whole)\n"
    equivalent;
  Printf.printf "  our feedback positive:  %b   (order-independent patterns)\n"
    ours

let compare_input_size () =
  (* Our matching is static: its cost does not depend on the test inputs.
     CLARA must execute both programs and compare whole variable traces,
     whose length grows with the input (the paper's k = 100,000 timeout
     anecdote).  assignment1 with growing arrays makes the trace length
     linear in the input size. *)
  let b = Bundles.assignment1 in
  let parse = Jfeed_java.Parser.parse_program in
  let reference = parse (Jfeed_gen.Spec.reference b.Bundles.gen) in
  let submission = parse fig8_submission in
  Printf.printf
    "\n[compare] input-size sensitivity on assignment1 (seconds)\n";
  Printf.printf "  %-12s %14s %20s\n" "array size" "ours(match)"
    "clara(trace+compare)";
  List.iter
    (fun size ->
      let args =
        [ Jfeed_interp.Value.Varr
            (Array.init size (fun i -> Jfeed_interp.Value.Vint (i mod 7))) ]
      in
      let config =
        { Jfeed_interp.Interp.files = []; max_steps = 200_000_000 }
      in
      let _, ours =
        time (fun () -> Grader.grade b.Bundles.grading submission)
      in
      let _, clara =
        time (fun () ->
            let t_ref, _ =
              Jfeed_baselines.Clara_like.trace_of ~config reference
                ~entry:"assignment1" ~args
            in
            let t_sub, _ =
              Jfeed_baselines.Clara_like.trace_of ~config submission
                ~entry:"assignment1" ~args
            in
            ignore (Jfeed_baselines.Clara_like.equivalent t_ref t_sub))
      in
      Printf.printf "  %-12d %14.6f %20.6f\n" size ours clara)
    [ 10; 1_000; 20_000 ]

let compare_repairs () =
  (* AutoGrader/Sketch-style repair: the search blows up with the number
     of seeded errors; ours stays flat (the paper: "degrades considerably
     after four or more repairs"). *)
  let b = Bundles.assignment1 in
  let spec = b.Bundles.gen in
  let reference =
    Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference spec)
  in
  let expected = Jfeed_ftest.Runner.expected_outputs b.suite reference in
  (* Choice points fixable by the sketch rules: odd-init, even-init,
     loop-start, loop-bound, odd-guard parity, even-guard parity. *)
  let error_choices = [ 0; 1; 2; 3; 4 ] in
  Printf.printf
    "\n[compare] repair-count scalability on assignment1 (seconds)\n";
  Printf.printf "  %-8s %12s %12s %14s %8s\n" "errors" "ours" "sketch"
    "candidates" "found";
  List.iteri
    (fun i _ ->
      let n_errors = i + 1 in
      let digits = Array.make (Array.length spec.Jfeed_gen.Spec.choices) 0 in
      List.iteri (fun j c -> if j < n_errors then digits.(c) <- 1) error_choices;
      let prog =
        Jfeed_java.Parser.parse_program (spec.Jfeed_gen.Spec.render digits)
      in
      let _, ours = time (fun () -> Grader.grade b.Bundles.grading prog) in
      let result, sketch_time =
        time (fun () ->
            Jfeed_baselines.Sketch_like.repair ~suite:b.suite ~expected
              ~max_depth:n_errors prog)
      in
      let explored, found =
        match result with
        | Some r -> (r.Jfeed_baselines.Sketch_like.explored, true)
        | None -> (0, false)
      in
      Printf.printf "  %-8d %12.6f %12.6f %14d %8b\n" n_errors ours sketch_time
        explored found)
    error_choices

let compare_reference_count () =
  (* Quantify "multiple reference solutions are usually required … a
     reference solution per any possible variation": cluster the *correct*
     subspace of assignment1 by CLARA trace equivalence and count how many
     references CLARA would need, vs. our single knowledge base. *)
  let b = Bundles.assignment1 in
  let spec = b.Bundles.gen in
  (* Enumerate the all-good subspace directly (it is a tiny fraction of
     S): the cartesian product of each choice's Good options. *)
  let good_options =
    Array.map
      (fun (c : Jfeed_gen.Spec.choice) ->
        List.filter
          (fun i -> c.Jfeed_gen.Spec.quality.(i) = Jfeed_gen.Spec.Good)
          (List.init (Array.length c.Jfeed_gen.Spec.labels) Fun.id))
      spec.Jfeed_gen.Spec.choices
  in
  let correct = ref [] in
  let n_choices = Array.length good_options in
  let digits = Array.make n_choices 0 in
  let rec enum i =
    if List.length !correct >= 40 then ()
    else if i = n_choices then
      correct := Jfeed_gen.Spec.encode spec digits :: !correct
    else
      List.iter
        (fun o ->
          digits.(i) <- o;
          enum (i + 1))
        good_options.(i)
  in
  enum 0;
  let correct = List.rev !correct in
  let args =
    [ Jfeed_interp.Value.Varr
        [| Jfeed_interp.Value.Vint 3; Vint 4; Vint 5; Vint 6 |] ]
  in
  let traces =
    List.map
      (fun idx ->
        fst
          (Jfeed_baselines.Clara_like.trace_of
             (Jfeed_java.Parser.parse_program
                (Jfeed_gen.Spec.source_of_index spec idx))
             ~entry:"assignment1" ~args))
      correct
  in
  let clusters = Jfeed_baselines.Clara_like.cluster traces in
  let ours_all_accepted =
    List.for_all
      (fun idx ->
        feedback_positive
          (Grader.grade b.Bundles.grading
             (Jfeed_java.Parser.parse_program
                (Jfeed_gen.Spec.source_of_index spec idx))))
      correct
  in
  Printf.printf
    "\n[compare] references needed per correct variation (assignment1)\n";
  Printf.printf
    "  %d sampled correct variants → CLARA-like clusters (references \
     needed): %d\n"
    (List.length correct) (List.length clusters);
  Printf.printf
    "  our knowledge bases needed: 1 (all %d variants graded positive: %b)\n"
    (List.length correct) ours_all_accepted

let compare () =
  compare_fig8 ();
  compare_input_size ();
  compare_repairs ();
  compare_reference_count ()

(* ------------------------------------------------------------------ *)
(* Matching scalability in the submission size (§IV: the subgraph       *)
(* matching problem is NP-hard in general — O(n^m) worst case — but the *)
(* type-filtered search space and edge pruning keep real submissions    *)
(* flat).                                                               *)

let scaling () =
  (* Grow a submission by duplicating extra (pattern-irrelevant) loops
     around the correct Assignment 1 core and watch the matching time. *)
  (* Decoy loops that match none of Assignment 1's patterns (no parity
     guards, no cumulative +=/*=, no prints) — they only grow the search
     space Φ. *)
  let pad k =
    String.concat "\n"
      (List.init k (fun j ->
           Printf.sprintf
             "    int t%d = %d;\n\
             \    while (t%d > 1) {\n\
             \        t%d = t%d / 2;\n\
             \    }" j (7 + j) j j j))
  in
  let submission k =
    Printf.sprintf
      {|
void assignment1(int[] a) {
    int o = 0, e = 1;
    for (int i = 0; i < a.length; i++) {
        if (i %% 2 == 1)
            o += a[i];
        if (i %% 2 == 0)
            e *= a[i];
    }
%s
    System.out.println(o);
    System.out.println(e);
}
|}
      (pad k)
  in
  let b = Bundles.assignment1 in
  Printf.printf
    "\n[scaling] matching time vs. submission size (assignment1 + k decoy \
     loops)\n";
  Printf.printf "  %-8s %10s %12s %12s\n" "k" "EPDG nodes" "match (s)"
    "Λ preserved";
  List.iter
    (fun k ->
      let prog = Jfeed_java.Parser.parse_program (submission k) in
      let nodes =
        List.fold_left
          (fun acc (_, g) ->
            acc + Jfeed_graph.Digraph.node_count g.Jfeed_pdg.Epdg.graph)
          0
          (Jfeed_pdg.Epdg.of_program prog)
      in
      let result, t = time (fun () -> Grader.grade b.Bundles.grading prog) in
      Printf.printf "  %-8d %10d %12.6f %12b\n" k nodes t
        (feedback_positive result))
    [ 0; 4; 16; 64; 128 ]

(* ------------------------------------------------------------------ *)
(* Ablation: the §VII future-work extensions                           *)

(* Grade a sample of each assignment under four configurations and count
   discrepancies: the extensions should remove exactly the
   pattern-variability false negatives (negative feedback on functionally
   correct submissions) without masking real errors. *)
let ablation ~sample ~seed () =
  Printf.printf
    "\nAblation — §VII extensions (discrepancies per %d-sample)\n" sample;
  Printf.printf "%-20s %10s %12s %10s %8s\n" "Assignment" "baseline"
    "+normalize" "+variants" "+both";
  let configs =
    [ (false, false); (true, false); (false, true); (true, true) ]
  in
  List.iter
    (fun (b : Bundles.t) ->
      let spec = b.Bundles.gen in
      let indices = Jfeed_gen.Spec.sample_indices spec ~n:sample ~seed in
      let reference =
        Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference spec)
      in
      let expected = Jfeed_ftest.Runner.expected_outputs b.suite reference in
      let programs =
        List.map
          (fun idx ->
            let prog =
              Jfeed_java.Parser.parse_program
                (Jfeed_gen.Spec.source_of_index spec idx)
            in
            (prog, Jfeed_ftest.Runner.passes b.suite ~expected prog))
          indices
      in
      let count (normalize, use_variants) =
        List.length
          (List.filter
             (fun (prog, fpass) ->
               fpass
               <> feedback_positive
                    (Grader.grade ~normalize ~use_variants b.grading prog))
             programs)
      in
      match List.map count configs with
      | [ base; norm; var; both ] ->
          Printf.printf "%-20s %10d %12d %10d %8d\n"
            b.Bundles.grading.Grader.a_id base norm var both
      | _ -> assert false)
    Bundles.all;
  Printf.printf
    "(Each extension may only reduce discrepancies — it widens what the\n\
    \ knowledge base accepts without masking functional errors.)\n"

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let opt name default =
    let rec go = function
      | a :: b :: _ when a = name -> int_of_string b
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let str_opt name default =
    let rec go = function
      | a :: b :: _ when a = name -> b
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let sample = opt "--sample" 150 in
  let seed = opt "--seed" 42 in
  let jobs = opt "--jobs" 4 in
  match args with
  | _ :: "table1" :: _ ->
      table1 ~sample ~seed ~full:(has "--full") ~explain:(has "--explain") ()
  | _ :: "micro" :: _ when has "--json" -> micro_json ~sample ~seed ~jobs ()
  | _ :: "micro" :: _ -> micro ()
  | _ :: "repair" :: _ ->
      (* The corpus grows multiplicatively (assignments × mutants ×
         candidate screenings), so the repair gate has its own, smaller
         default sample. *)
      repair_json ~sample:(opt "--sample" 8) ~seed ~jobs ()
  | _ :: "analyze" :: _ -> analyze_json ~sample:(opt "--sample" 50) ~seed ()
  | _ :: "serve" :: _ ->
      serve_json
        ~requests:(opt "--requests" 60)
        ~dup_pct:(opt "--dup" 50)
        ~jobs ~seed ()
  | _ :: "load" :: _ ->
      (* The default sweep straddles the single-node service rate so the
         committed record shows all three admission regimes: under
         capacity, degraded admission, hard shedding. *)
      let rates =
        List.filter_map float_of_string_opt
          (String.split_on_char ',' (str_opt "--rates" "500,2000,8000"))
      in
      load_json ~rates
        ~requests:(opt "--requests" 200)
        ~dup_pct:(opt "--dup" 50)
        ~conns:(opt "--conns" 4)
        ~jobs
        ~queue_cap:(opt "--queue-cap" 16)
        ~watermark:(opt "--watermark" 8)
        ~shed_fuel:(opt "--shed-fuel" 20000)
        ~seed ()
  | _ :: "diff" :: base_path :: cur_path :: _ ->
      exit (diff_json ~base_path ~cur_path ())
  | _ :: "diff" :: _ ->
      prerr_endline "usage: jfeed-bench diff BASELINE.json CURRENT.json";
      exit 2
  | _ :: "compare" :: _ -> compare ()
  | _ :: "ablation" :: _ -> ablation ~sample ~seed ()
  | _ :: "scaling" :: _ -> scaling ()
  | _ ->
      table1 ~sample ~seed ~full:false ~explain:true ();
      micro ();
      compare ();
      ablation ~sample:100 ~seed ();
      scaling ()
