(** Resilience layer: budgets, the degradation ladder, the outcome
    taxonomy, and the fault-injection/fuzz harness.

    The harness mutates generated submissions (token deletion and
    duplication, garbage bytes, deep nesting, giant expressions,
    pathological variable reuse) and asserts the one property the
    pipeline guarantees: {e every} input yields an {!Outcome.t} —
    no exception ever escapes {!Pipeline.assess}. *)

open Jfeed_core
open Jfeed_kb
open Jfeed_robust
module Budget = Jfeed_budget.Budget
module Runner = Jfeed_ftest.Runner

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Budget *)

let test_budget_fuel () =
  let b = Budget.create ~fuel:10 () in
  check "fresh budget not exhausted" false (Budget.exhausted b);
  check "first 10 units are granted" true (Budget.spend b Budget.Matcher 10);
  check "11th unit is refused" false (Budget.spend b Budget.Interp 1);
  check "exhausted afterwards" true (Budget.exhausted b);
  check "refusals latch" false (Budget.spend b Budget.Pairing 1);
  Alcotest.(check (list string))
    "hits in first-hit order"
    [ "interp"; "pairing" ]
    (List.map Budget.string_of_stage (Budget.hits b))

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  check "unlimited grants a big spend" true (Budget.spend b Budget.Interp 1_000_000);
  check "still not exhausted" false (Budget.exhausted b);
  Alcotest.(check int) "fuel spent is counted" 1_000_000 (Budget.spent b);
  Alcotest.(check (list string)) "no hits" [] (List.map Budget.string_of_stage (Budget.hits b))

let test_budget_check () =
  let b = Budget.create ~fuel:5 () in
  check "check consumes nothing" true (Budget.check b Budget.Matcher);
  Alcotest.(check int) "nothing spent" 0 (Budget.spent b);
  check "overdraft refused" false (Budget.spend b Budget.Matcher 6);
  check "check sees the latch" false (Budget.check b Budget.Interp);
  Alcotest.(check (option int)) "nothing remains" (Some 0) (Budget.remaining b)

(* ------------------------------------------------------------------ *)
(* Matcher: exhaustion is tagged, not silent *)

let assignment1_epdg_and_pattern () =
  let b = Bundles.assignment1 in
  let src = Jfeed_gen.Spec.reference b.Bundles.gen in
  let graphs = Jfeed_pdg.Epdg.of_source src in
  let g = snd (List.hd graphs) in
  let p, _ = List.hd (Bundles.patterns b) in
  (p, g)

let test_matcher_exhausted_flag () =
  let p, g = assignment1_epdg_and_pattern () in
  let full = Matcher.embeddings_budgeted p g in
  check "unbudgeted search completes" false full.Matcher.exhausted;
  let starved = Budget.create ~fuel:0 () in
  let cut = Matcher.embeddings_budgeted ~budget:starved p g in
  check "starved search is tagged exhausted" true cut.Matcher.exhausted;
  check "partial result is a prefix, not an overrun" true
    (List.length cut.Matcher.found <= List.length full.Matcher.found);
  check "the budget recorded the matcher hit" true
    (List.mem Budget.Matcher (Budget.hits starved))

let test_matcher_budget_generous () =
  (* A budget large enough to finish changes nothing. *)
  let p, g = assignment1_epdg_and_pattern () in
  let full = Matcher.embeddings_budgeted p g in
  let b = Budget.create ~fuel:10_000_000 () in
  let same = Matcher.embeddings_budgeted ~budget:b p g in
  check "same embeddings" true (same.Matcher.found = full.Matcher.found);
  check "not exhausted" false same.Matcher.exhausted

(* ------------------------------------------------------------------ *)
(* Parser: nesting guard *)

let test_parser_deep_exprs () =
  let deep =
    "void f() { int x = " ^ String.make 10_000 '(' ^ "1"
    ^ String.make 10_000 ')' ^ "; }"
  in
  match Jfeed_java.Parser.parse_program deep with
  | _ -> Alcotest.fail "10k-deep parentheses parsed"
  | exception Jfeed_java.Parser.Parse_error (msg, _, _) ->
      check "diagnostic names the guard" true
        (msg = "nesting too deep")

let test_parser_deep_blocks () =
  let deep = "void f() " ^ String.make 10_000 '{' ^ String.make 10_000 '}' in
  match Jfeed_java.Parser.parse_program deep with
  | _ -> Alcotest.fail "10k-deep blocks parsed"
  | exception Jfeed_java.Parser.Parse_error (msg, _, _) ->
      check "diagnostic names the guard" true (msg = "nesting too deep")

let test_parser_deep_unary () =
  let deep = "void f() { int x = " ^ String.make 10_000 '!' ^ "1; }" in
  match Jfeed_java.Parser.parse_program deep with
  | _ -> Alcotest.fail "10k-deep unary chain parsed"
  | exception Jfeed_java.Parser.Parse_error (msg, _, _) ->
      check "diagnostic names the guard" true (msg = "nesting too deep")

let test_parser_reasonable_depth_ok () =
  (* The guard must not reject real code: 50 levels is far beyond any
     student submission and far below the cutoff. *)
  let src =
    "void f() { int x = " ^ String.make 50 '(' ^ "1" ^ String.make 50 ')'
    ^ "; }"
  in
  match Jfeed_java.Parser.parse_program src with
  | _ -> ()
  | exception _ -> Alcotest.fail "50-deep parentheses rejected"

(* ------------------------------------------------------------------ *)
(* Runner: malformed suite is a verdict, not a crash *)

let test_runner_count_mismatch () =
  let prog = Jfeed_java.Parser.parse_program "void f() {}" in
  let suite =
    {
      Runner.entry = "f";
      cases = [ { Runner.label = "c1"; args = []; files = [] } ];
      max_steps = 1_000;
    }
  in
  match Runner.run suite ~expected:[] prog with
  | Runner.Fail { case = "<suite>"; reason } ->
      check "reason names the mismatch" true
        (String.length reason > 0
        && String.sub reason 0 30 = "expected-output count mismatch")
  | Runner.Fail _ -> Alcotest.fail "mismatch blamed a real case"
  | Runner.Pass -> Alcotest.fail "mismatch passed"

(* ------------------------------------------------------------------ *)
(* Fault injection: mutations over generated submissions *)

(* Deterministic pseudo-random stream (no global RNG state: the fuzz
   corpus must be reproducible). *)
let lcg seed =
  let s = ref (seed land 0x3FFFFFFF) in
  fun n ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    if n <= 0 then 0 else !s mod n

let splice src at insert = String.sub src 0 at ^ insert ^ String.sub src at (String.length src - at)

let delete_span rand src =
  let n = String.length src in
  if n < 2 then src
  else
    let at = rand (n - 1) in
    let len = 1 + rand (min 40 (n - at - 1)) in
    String.sub src 0 at ^ String.sub src (at + len) (n - at - len)

let duplicate_span rand src =
  let n = String.length src in
  if n < 2 then src
  else
    let at = rand (n - 1) in
    let len = 1 + rand (min 60 (n - at - 1)) in
    splice src at (String.sub src at len)

let insert_garbage rand src =
  let garbage = [| "\xff\xfe"; "{{(("; ";;;;"; "\x00"; "%@#"; "\"" |] in
  splice src (rand (String.length src + 1)) garbage.(rand (Array.length garbage))

(* Inserted after the first '{' so it lands inside a method body. *)
let inject_stmt src stmt =
  match String.index_opt src '{' with
  | None -> stmt ^ src
  | Some i -> splice src (i + 1) stmt

let deep_nesting rand src =
  let depth = 2_000 + rand 8_000 in
  inject_stmt src
    (" int zz = " ^ String.make depth '(' ^ "1" ^ String.make depth ')' ^ "; ")

let giant_expression rand src =
  let terms = 1_000 + rand 2_000 in
  let buf = Buffer.create (4 * terms) in
  Buffer.add_string buf " int gg = 1";
  for _ = 1 to terms do
    Buffer.add_string buf "+1"
  done;
  Buffer.add_string buf "; ";
  inject_stmt src (Buffer.contents buf)

(* Many distinct variables in one expression stress the injective
   variable-mapping enumeration of Algorithm 1. *)
let variable_reuse _rand src =
  inject_stmt src
    " int vv = va+vb+vc+vd+ve+vf+vg+vh+vi+vj+vk+vl+vm+vn; "

let mutations =
  [| delete_span; duplicate_span; insert_garbage; deep_nesting;
     giant_expression; variable_reuse |]

let mutate rand src =
  let rounds = 1 + rand 2 in
  let s = ref src in
  for _ = 1 to rounds do
    s := mutations.(rand (Array.length mutations)) rand !s
  done;
  !s

(* The three bundles of the fuzz corpus: small spaces, distinct shapes
   (digit cubes, polynomial derivatives, polynomial evaluation). *)
let fuzz_bundles =
  [ Bundles.esc_p2v2; Bundles.mitx_derivatives; Bundles.mitx_polynomials ]

let cases_per_bundle = 170 (* 3 × 170 = 510 mutated submissions *)

let test_fuzz_pipeline_total () =
  let outcomes = Hashtbl.create 4 in
  List.iteri
    (fun bi b ->
      let spec = b.Bundles.gen in
      (* Indices stride the space with wraparound — [sample_indices]
         dedups, and the smallest corpus bundle holds fewer than 170
         distinct submissions. *)
      let size = Jfeed_gen.Spec.size spec in
      let indices =
        List.init cases_per_bundle (fun i -> ((i * 48271) + bi) mod size)
      in
      List.iteri
        (fun i idx ->
          let rand = lcg ((bi * 7919) + (i * 104729) + idx) in
          let src = mutate rand (Jfeed_gen.Spec.source_of_index spec idx) in
          let budget = Budget.create ~fuel:50_000 () in
          match Pipeline.assess ~budget b src with
          | o ->
              let c = Outcome.classify o in
              Hashtbl.replace outcomes c
                (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes c))
          | exception e ->
              Alcotest.failf "pipeline raised %s on %s mutant #%d:\n%s"
                (Printexc.to_string e)
                b.Bundles.grading.Grader.a_id i
                (String.sub src 0 (min 200 (String.length src))))
        indices)
    fuzz_bundles;
  let total = Hashtbl.fold (fun _ n acc -> n + acc) outcomes 0 in
  Alcotest.(check int)
    "all mutants produced an outcome"
    (cases_per_bundle * List.length fuzz_bundles)
    total;
  (* The corpus must actually exercise the taxonomy: mutants land in
     both the accepted and the rejected classes. *)
  check "some mutants were rejected" true (Hashtbl.mem outcomes "rejected");
  check "some mutants were graded or degraded" true
    (Hashtbl.mem outcomes "graded" || Hashtbl.mem outcomes "degraded")

let test_edge_inputs_total () =
  let b = Bundles.assignment1 in
  let inputs =
    [
      ("empty", "");
      ("whitespace", "   \n\t\n");
      ("non-utf8", "\xff\xfe\x00\xc3\x28");
      ("half a method", "void assignment1(int[] a) { int odd = 0;");
      ( "10k nesting",
        "void assignment1(int[] a) { int x = " ^ String.make 10_000 '('
        ^ "1" ^ String.make 10_000 ')' ^ "; }" );
      ("class soup", "class class class {{{ void void }}}");
    ]
  in
  List.iter
    (fun (label, src) ->
      match Pipeline.assess b src with
      | o ->
          check
            (label ^ " classified")
            true
            (List.mem (Outcome.classify o) [ "graded"; "degraded"; "rejected" ])
      | exception e ->
          Alcotest.failf "pipeline raised %s on %s" (Printexc.to_string e)
            label)
    inputs;
  (* And the specific shapes promised by the taxonomy: *)
  (match Pipeline.assess b "\xff\xfe" with
  | Outcome.Rejected d -> check "garbage rejected at lex" true (d.Outcome.stage = "lex")
  | _ -> Alcotest.fail "garbage bytes not rejected");
  match
    Pipeline.assess b
      ("void f() { int x = " ^ String.make 10_000 '(' ^ "1"
     ^ String.make 10_000 ')' ^ "; }")
  with
  | Outcome.Rejected d ->
      check "deep nesting rejected at parse" true (d.Outcome.stage = "parse")
  | _ -> Alcotest.fail "deep nesting not rejected"

(* ------------------------------------------------------------------ *)
(* Degradation regression: a starved budget degrades with named stages *)

let test_starved_budget_degrades () =
  let b = Bundles.assignment1 in
  let src = Jfeed_gen.Spec.reference b.Bundles.gen in
  let budget = Budget.create ~fuel:100 () in
  match Pipeline.assess ~budget b src with
  | Outcome.Degraded (report, reasons) ->
      let stages = List.map Outcome.stage_of_reason reasons in
      check "matcher exhaustion is named" true (List.mem "matcher" stages);
      check "interp exhaustion is named" true (List.mem "interp" stages);
      check "a report was still produced" true
        (report.Outcome.grading.Grader.comments <> []);
      check "fuel accounting ran" true (Budget.spent budget >= 100)
  | o ->
      Alcotest.failf "fuel=100 did not degrade: %s" (Outcome.classify o)

let test_starved_pairing_degrades () =
  (* fuel=0: the very first pairing extension is refused, the
     combination search is cut before any matching runs, and the
     all-missing fallback report stands. *)
  let b = Bundles.assignment1 in
  let src = Jfeed_gen.Spec.reference b.Bundles.gen in
  let budget = Budget.create ~fuel:0 () in
  match Pipeline.grade_guarded ~budget b.Bundles.grading src with
  | Outcome.Degraded (report, reasons) ->
      let stages = List.map Outcome.stage_of_reason reasons in
      check "pairing exhaustion is named" true (List.mem "pairing" stages);
      check "a report still exists" true
        (report.Outcome.grading.Grader.comments <> [])
  | o -> Alcotest.failf "fuel=0 did not degrade: %s" (Outcome.classify o)

let test_unlimited_budget_grades () =
  (* The guard charges nothing when nothing is starved: the reference
     solution grades cleanly and passes its tests. *)
  let b = Bundles.assignment1 in
  let src = Jfeed_gen.Spec.reference b.Bundles.gen in
  match Pipeline.assess b src with
  | Outcome.Graded report ->
      check "tests passed" true (report.Outcome.tests = Outcome.Tests_passed)
  | o -> Alcotest.failf "reference did not grade: %s" (Outcome.classify o)

let test_guarded_matches_plain_grade () =
  (* On well-formed unbudgeted input the resilient pipeline is the
     paper's system: same score, same pairing. *)
  let b = Bundles.assignment1 in
  let src = Jfeed_gen.Spec.reference b.Bundles.gen in
  let plain =
    Grader.grade b.Bundles.grading (Jfeed_java.Parser.parse_program src)
  in
  match Pipeline.grade_guarded b.Bundles.grading src with
  | Outcome.Graded report ->
      check "same score" true
        (report.Outcome.grading.Grader.score = plain.Grader.score);
      check "same pairing" true
        (report.Outcome.grading.Grader.pairing = plain.Grader.pairing)
  | o -> Alcotest.failf "guarded path diverged: %s" (Outcome.classify o)

(* ------------------------------------------------------------------ *)
(* Batch driver *)

let test_batch_summary () =
  let b = Bundles.assignment1 in
  let ref_src = Jfeed_gen.Spec.reference b.Bundles.gen in
  let sources =
    [
      ("good.java", Ok ref_src);
      ("broken.java", Ok "void assignment1(");
      ("unreadable.java", Error "permission denied");
    ]
  in
  let s = Pipeline.run_batch b sources in
  Alcotest.(check int) "total" 3 s.Pipeline.total;
  Alcotest.(check int) "graded" 1 s.Pipeline.graded;
  Alcotest.(check int) "rejected" 2 s.Pipeline.rejected;
  Alcotest.(check int) "exit code 1 on any rejection" 1 (Pipeline.exit_code s);
  let all_good = Pipeline.run_batch b [ ("good.java", Ok ref_src) ] in
  Alcotest.(check int) "exit code 0 when all graded" 0
    (Pipeline.exit_code all_good);
  (* Stable JSON field order. *)
  let json = Pipeline.summary_to_json s in
  let pos sub =
    let n = String.length sub and m = String.length json in
    let rec go i =
      if i + n > m then Alcotest.failf "missing %s in %s" sub json
      else if String.sub json i n = sub then i
      else go (i + 1)
    in
    go 0
  in
  check "field order" true
    (pos {|"assignment"|} < pos {|"total"|}
    && pos {|"total"|} < pos {|"graded"|}
    && pos {|"graded"|} < pos {|"degraded"|}
    && pos {|"degraded"|} < pos {|"rejected"|}
    && pos {|"rejected"|} < pos {|"submissions"|})

let test_batch_isolation () =
  (* One pathological submission must not poison its neighbours. *)
  let b = Bundles.assignment1 in
  let ref_src = Jfeed_gen.Spec.reference b.Bundles.gen in
  let bomb =
    "void assignment1(int[] a) { int x = " ^ String.make 10_000 '(' ^ "1"
    ^ String.make 10_000 ')' ^ "; }"
  in
  let s =
    Pipeline.run_batch ~fuel:1_000_000 b
      [ ("a.java", Ok ref_src); ("bomb.java", Ok bomb); ("c.java", Ok ref_src) ]
  in
  let outcome_of f =
    Outcome.classify
      (List.find (fun it -> it.Pipeline.file = f) s.Pipeline.items)
        .Pipeline.outcome
  in
  Alcotest.(check string) "first neighbour graded" "graded" (outcome_of "a.java");
  Alcotest.(check string) "bomb rejected" "rejected" (outcome_of "bomb.java");
  Alcotest.(check string) "second neighbour graded" "graded" (outcome_of "c.java")

let suite =
  [
    Alcotest.test_case "budget: fuel accounting" `Quick test_budget_fuel;
    Alcotest.test_case "budget: unlimited" `Quick test_budget_unlimited;
    Alcotest.test_case "budget: check spends nothing" `Quick test_budget_check;
    Alcotest.test_case "matcher: exhaustion is tagged" `Quick
      test_matcher_exhausted_flag;
    Alcotest.test_case "matcher: generous budget is a no-op" `Quick
      test_matcher_budget_generous;
    Alcotest.test_case "parser: deep parens rejected" `Quick
      test_parser_deep_exprs;
    Alcotest.test_case "parser: deep blocks rejected" `Quick
      test_parser_deep_blocks;
    Alcotest.test_case "parser: deep unary chain rejected" `Quick
      test_parser_deep_unary;
    Alcotest.test_case "parser: real depths still parse" `Quick
      test_parser_reasonable_depth_ok;
    Alcotest.test_case "runner: count mismatch is a verdict" `Quick
      test_runner_count_mismatch;
    Alcotest.test_case "fuzz: 510 mutants, pipeline total" `Slow
      test_fuzz_pipeline_total;
    Alcotest.test_case "edge inputs are classified" `Quick
      test_edge_inputs_total;
    Alcotest.test_case "starved budget degrades (matcher/interp)" `Quick
      test_starved_budget_degrades;
    Alcotest.test_case "starved budget degrades (pairing)" `Quick
      test_starved_pairing_degrades;
    Alcotest.test_case "unlimited budget grades the reference" `Quick
      test_unlimited_budget_grades;
    Alcotest.test_case "guarded = plain grade on clean input" `Quick
      test_guarded_matches_plain_grade;
    Alcotest.test_case "batch: summary counts and JSON order" `Quick
      test_batch_summary;
    Alcotest.test_case "batch: per-submission isolation" `Quick
      test_batch_isolation;
  ]
