(** Tests for helper-method inlining (§VII future work). *)

open Jfeed_core
open Jfeed_kb

let parse = Jfeed_java.Parser.parse_program

let feedback_positive (r : Grader.result) =
  List.for_all (fun c -> c.Feedback.verdict = Feedback.Correct) r.Grader.comments

let test_expression_helper_inlined () =
  let prog =
    parse
      {|
int cube(int d) { return d * d * d; }
void f(int k) { System.out.println(cube(k)); }
|}
  in
  let inlined = Jfeed_java.Inline.inline_unexpected ~expected:[ "f" ] prog in
  Alcotest.(check int) "helper dropped" 1
    (List.length inlined.Jfeed_java.Ast.methods);
  let rendered = Jfeed_java.Pretty.program inlined in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "body substituted" true
    (contains "k * k * k" rendered)

let test_void_helper_spliced () =
  let prog =
    parse
      {|
void shout(int x) { System.out.println(x); }
void f(int k) { shout(k); }
|}
  in
  let inlined = Jfeed_java.Inline.inline_unexpected ~expected:[ "f" ] prog in
  Alcotest.(check int) "helper dropped" 1
    (List.length inlined.Jfeed_java.Ast.methods);
  (* Functional behaviour preserved. *)
  let run p =
    (Jfeed_interp.Interp.run p ~entry:"f" ~args:[ Jfeed_interp.Value.Vint 7 ])
      .Jfeed_interp.Interp.stdout
  in
  Alcotest.(check string) "same output" (run prog) (run inlined)

let test_recursive_helper_untouched () =
  let prog =
    parse
      {|
int f2(int n) { return f2(n - 1); }
void f(int k) { System.out.println(k); }
|}
  in
  let inlined = Jfeed_java.Inline.inline_unexpected ~expected:[ "f" ] prog in
  Alcotest.(check int) "recursive helper kept" 2
    (List.length inlined.Jfeed_java.Ast.methods)

let test_impure_args_not_inlined () =
  (* Substituting [i++] twice would change semantics: leave the call. *)
  let prog =
    parse
      {|
int twice(int x) { return x + x; }
void f(int k) { int i = 0; System.out.println(twice(i++)); }
|}
  in
  let inlined = Jfeed_java.Inline.inline_unexpected ~expected:[ "f" ] prog in
  Alcotest.(check int) "helper kept (call remains)" 2
    (List.length inlined.Jfeed_java.Ast.methods)

let test_inlining_semantics_preserved () =
  (* For every simple-helper rewrite, run both forms on the functional
     suite and compare stdout. *)
  let prog =
    parse
      {|
int term(int c, int w) { return c * w; }
void polynomials(int[] p, int x) {
    int r = 0;
    int pw = 1;
    for (int i = 0; i < p.length; i++) {
        r += term(p[i], pw);
        pw *= x;
    }
    System.out.println(r);
}
|}
  in
  let inlined =
    Jfeed_java.Inline.inline_unexpected ~expected:[ "polynomials" ] prog
  in
  let args =
    [
      Jfeed_interp.Value.Varr
        [| Jfeed_interp.Value.Vint 2; Vint 0; Vint 1 |];
      Jfeed_interp.Value.Vint 3;
    ]
  in
  let run p =
    (Jfeed_interp.Interp.run p ~entry:"polynomials" ~args)
      .Jfeed_interp.Interp.stdout
  in
  Alcotest.(check string) "same output" (run prog) (run inlined);
  Alcotest.(check string) "value" "11\n" (run inlined)

let test_grading_with_inlining () =
  (* A student extracts the polynomial term into a helper: the knowledge
     base cannot see the accumulation shape — unless inlining is on. *)
  let src =
    {|
int term(int c, int w) { return c * w; }
void polynomials(int[] p, int x) {
    int r = 0;
    int pw = 1;
    for (int i = 0; i < p.length; i++) {
        r += term(p[i], pw);
        pw *= x;
    }
    System.out.println(r);
}
|}
  in
  let b = Option.get (Bundles.find "mitx-polynomials") in
  let prog = parse src in
  Alcotest.(check bool) "flagged without inlining" false
    (feedback_positive (Grader.grade b.Bundles.grading prog));
  Alcotest.(check bool) "accepted with inlining" true
    (feedback_positive
       (Grader.grade ~inline_helpers:true b.Bundles.grading prog))

let test_expected_methods_never_inlined () =
  (* The factorial helper of esc-LAB-3-P1-V1 is an *expected* method: it
     must survive even with inlining on. *)
  let b = Option.get (Bundles.find "esc-LAB-3-P1-V1") in
  let reference = parse (Jfeed_gen.Spec.reference b.Bundles.gen) in
  let r = Grader.grade ~inline_helpers:true b.Bundles.grading reference in
  Alcotest.(check bool) "still positive" true (feedback_positive r);
  Alcotest.(check (option (option string)))
    "factorial still paired" (Some (Some "factorial"))
    (List.assoc_opt "factorial" r.Grader.pairing)

let suite =
  [
    Alcotest.test_case "expression helper inlined" `Quick
      test_expression_helper_inlined;
    Alcotest.test_case "void helper spliced" `Quick test_void_helper_spliced;
    Alcotest.test_case "recursive helper untouched" `Quick
      test_recursive_helper_untouched;
    Alcotest.test_case "impure arguments not inlined" `Quick
      test_impure_args_not_inlined;
    Alcotest.test_case "inlining preserves semantics" `Quick
      test_inlining_semantics_preserved;
    Alcotest.test_case "grading recovers extracted helpers" `Quick
      test_grading_with_inlining;
    Alcotest.test_case "expected methods never inlined" `Quick
      test_expected_methods_never_inlined;
  ]
