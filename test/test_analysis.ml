(** Static analysis layer: the five submission passes, the source-map
    positions they cite, the KB linter over every shipped bundle, and
    the qcheck invariants the ISSUE pins — totality over the mutated
    corpus, and diagnostic stability under semantics-preserving mutants
    and worker-pool width. *)

open Jfeed_core
open Jfeed_kb
open Jfeed_java
module D = Jfeed_analysis.Diagnostic
module Passes = Jfeed_analysis.Passes
module Kb_lint = Jfeed_analysis.Kb_lint
module Mutate = Jfeed_gen.Mutate
module Pool = Jfeed_parallel.Pool
module Outcome = Jfeed_robust.Outcome
module Pipeline = Jfeed_robust.Pipeline

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Diagnostics of one pass, for a source string. *)
let of_pass pass src =
  List.filter (fun d -> d.D.pass = pass) (Passes.analyze_source src)

(* ------------------------------------------------------------------ *)
(* Source map                                                          *)

let test_srcmap_positions () =
  let src = "int f(int x) {\n    int y = x;\n    return y;\n}" in
  let prog, map = Parser.parse_program_located src in
  let m = List.hd prog.Ast.methods in
  (match Srcmap.meth_pos map m with
  | Some p ->
      check_int "meth line" 1 p.Srcmap.line;
      check_int "meth col" 1 p.Srcmap.col
  | None -> Alcotest.fail "no method position");
  match m.Ast.m_body with
  | [ s1; s2 ] -> (
      (match Srcmap.stmt_pos map s1 with
      | Some p ->
          check_int "decl stmt line" 2 p.Srcmap.line;
          check_int "decl stmt col" 5 p.Srcmap.col
      | None -> Alcotest.fail "no position for the declaration");
      (match s1 with
      | Ast.Sdecl [ d ] -> (
          match Srcmap.decl_pos map d with
          | Some p ->
              check_int "declarator line" 2 p.Srcmap.line;
              (* recorded at the declared name, not the type *)
              check_int "declarator col" 9 p.Srcmap.col
          | None -> Alcotest.fail "no position for the declarator")
      | _ -> Alcotest.fail "statement shape");
      match Srcmap.stmt_pos map s2 with
      | Some p -> check_int "return stmt line" 3 p.Srcmap.line
      | None -> Alcotest.fail "no position for the return")
  | _ -> Alcotest.fail "body shape"

let test_located_same_ast () =
  (* The side table must not perturb parsing: both entry points agree. *)
  let src =
    "int f(int n) {\n\
    \    int s = 0;\n\
    \    for (int i = 0; i < n; i++) {\n\
    \        s += i;\n\
    \    }\n\
    \    return s;\n\
     }"
  in
  let plain = Parser.parse_program src in
  let located, _ = Parser.parse_program_located src in
  check_bool "same AST" true (plain = located)

(* ------------------------------------------------------------------ *)
(* The five passes, one surgical case each                             *)

let test_use_before_init () =
  let src =
    "int f(int n) {\n\
    \    int u;\n\
    \    if (n > 0) {\n\
    \        u = 1;\n\
    \    }\n\
    \    return u;\n\
     }"
  in
  match of_pass "use-before-init" src with
  | [ d ] ->
      check_bool "severity" true (d.D.severity = D.Error);
      Alcotest.(check string) "method" "f" d.D.meth;
      check_int "line of the unsafe read" 6 d.D.line;
      check_bool "names the variable" true (contains d.D.message "'u'")
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_use_before_init_clean () =
  let src =
    "int f(int n) {\n\
    \    int u;\n\
    \    if (n > 0) {\n\
    \        u = 1;\n\
    \    } else {\n\
    \        u = 2;\n\
    \    }\n\
    \    return u;\n\
     }"
  in
  check_int "both branches assign: no finding" 0
    (List.length (of_pass "use-before-init" src))

let test_dead_store () =
  let src =
    "int g(int n) {\n\
    \    int x = 1;\n\
    \    x = n;\n\
    \    int t = n;\n\
    \    return x;\n\
     }"
  in
  let ds = of_pass "dead-store" src in
  check_int "overwrite + never-read" 2 (List.length ds);
  check_bool "overwritten store flagged" true
    (List.exists
       (fun d -> d.D.line = 2 && contains d.D.message "overwritten")
       ds);
  check_bool "never-read local flagged" true
    (List.exists
       (fun d -> contains d.D.message "'t' is never read")
       ds);
  List.iter
    (fun d -> check_bool "warning severity" true (d.D.severity = D.Warning))
    ds

let test_unreachable () =
  let src = "int k(int n) {\n    return n;\n    n = n + 1;\n    return 0;\n}" in
  match of_pass "unreachable" src with
  | [ d ] ->
      check_int "line of the dead statement" 3 d.D.line;
      check_bool "warning severity" true (d.D.severity = D.Warning)
  | ds ->
      (* one finding per dead sequence, not one per dead statement *)
      Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_missing_return () =
  let src = "int m(int n) {\n    if (n > 0) {\n        return 1;\n    }\n}" in
  (match of_pass "missing-return" src with
  | [ d ] ->
      check_bool "severity" true (d.D.severity = D.Error);
      Alcotest.(check string) "method" "m" d.D.meth;
      check_int "cited at the method header" 1 d.D.line
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  check_int "void methods exempt" 0
    (List.length (of_pass "missing-return" "void v(int n) { n = n + 1; }"))

let test_suspicious_loop () =
  let src =
    "int s(int n) {\n\
    \    int i = 0;\n\
    \    int acc = 0;\n\
    \    while (i < n) {\n\
    \        acc = acc + 1;\n\
    \    }\n\
    \    return acc;\n\
     }"
  in
  (match of_pass "suspicious-loop" src with
  | [ d ] ->
      check_int "line of the loop" 4 d.D.line;
      check_bool "names the stuck condition reads" true
        (contains d.D.message "'i'" && contains d.D.message "'n'")
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  let with_update =
    "int s(int n) {\n\
    \    int i = 0;\n\
    \    while (i < n) {\n\
    \        i = i + 1;\n\
    \    }\n\
    \    return i;\n\
     }"
  in
  check_int "updating loop is clean" 0
    (List.length (of_pass "suspicious-loop" with_update));
  let with_break =
    "int s(int n) {\n\
    \    int i = 0;\n\
    \    while (i < n) {\n\
    \        break;\n\
    \    }\n\
    \    return i;\n\
     }"
  in
  check_int "break escape suppresses" 0
    (List.length (of_pass "suspicious-loop" with_break))

let test_clean_method () =
  let src =
    "int sum(int n) {\n\
    \    int s = 0;\n\
    \    int i = 0;\n\
    \    while (i < n) {\n\
    \        s = s + i;\n\
    \        i = i + 1;\n\
    \    }\n\
    \    return s;\n\
     }"
  in
  check_int "no findings on a clean method" 0
    (List.length (Passes.analyze_source src))

let test_analyze_source_total_on_garbage () =
  (* Unparseable input is a diagnostic, never an exception. *)
  (match Passes.analyze_source "int f( {" with
  | [ d ] ->
      Alcotest.(check string) "pass" "parse" d.D.pass;
      check_bool "severity" true (d.D.severity = D.Error)
  | ds -> Alcotest.failf "expected 1 parse diagnostic, got %d" (List.length ds));
  match Passes.analyze_source "int f() { char c = '" with
  | [ d ] -> Alcotest.(check string) "lex failure is a parse diag" "parse" d.D.pass
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_count_by_pass () =
  let counts = Passes.count_by_pass [] in
  Alcotest.(check (list string))
    "five ids, canonical order, zero-filled" Passes.pass_ids
    (List.map fst counts);
  check_bool "all zero" true (List.for_all (fun (_, n) -> n = 0) counts);
  let ds = Passes.analyze_source "int f( {" in
  let counts = Passes.count_by_pass ds in
  check_int "extra pass appended" (List.length Passes.pass_ids + 1)
    (List.length counts);
  Alcotest.(check (option int)) "parse counted" (Some 1)
    (List.assoc_opt "parse" counts)

(* ------------------------------------------------------------------ *)
(* Diagnostic rendering                                                *)

let test_diag_render_and_json () =
  let d =
    D.make ~pass:"dead-store" ~severity:D.Warning ~meth:"f"
      ~pos:{ Srcmap.line = 3; col = 9 } "variable 'x' is never read"
  in
  Alcotest.(check string) "render" "f:3:9: warning [dead-store] variable 'x' is never read" (D.render d);
  Alcotest.(check string) "json"
    {|{"pass":"dead-store","severity":"warning","method":"f","line":3,"col":9,"message":"variable 'x' is never read"}|}
    (D.to_json d);
  let no_pos = D.make ~pass:"kb-unsat" ~severity:D.Error ~meth:"m" "boom" in
  Alcotest.(check string) "positionless render" "m: error [kb-unsat] boom"
    (D.render no_pos)

(* ------------------------------------------------------------------ *)
(* KB linter                                                           *)

let test_shipped_bundles_lint_clean () =
  check_int "twelve shipped bundles" 12 (List.length Bundles.all);
  List.iter
    (fun b ->
      let ds = Kb_lint.lint_spec b.Bundles.grading in
      Alcotest.(check (list string))
        (b.Bundles.grading.Grader.a_id ^ " lints clean")
        []
        (List.map D.render ds))
    Bundles.all

let test_broken_fixture_covers_all_checks () =
  let ds = Kb_lint.lint_spec Kb_lint.broken_fixture in
  check_bool "fixture is flagged" true (ds <> []);
  List.iter
    (fun pass ->
      check_bool (pass ^ " fires on the fixture") true
        (List.exists (fun d -> d.D.pass = pass) ds))
    Kb_lint.pass_ids;
  (* every finding belongs to a declared linter pass *)
  List.iter
    (fun d ->
      check_bool ("declared pass: " ^ d.D.pass) true
        (List.mem d.D.pass Kb_lint.pass_ids))
    ds

(* ------------------------------------------------------------------ *)
(* Outcome integration                                                 *)

let test_outcome_carries_diags () =
  let b = List.hd Bundles.all in
  let src = "int f(int n) {\n    int u;\n    return u;\n}" in
  match Pipeline.grade_guarded b.Bundles.grading src with
  | Outcome.Rejected _ -> Alcotest.fail "parseable input was rejected"
  | o ->
      let rep = Option.get (Outcome.report o) in
      check_bool "report carries diagnostics" true (rep.Outcome.diags <> []);
      let compact = Outcome.to_json o in
      check_bool "diags count in compact json" true (contains compact {|"diags":|});
      check_bool "no diagnostic bodies in compact json" false
        (contains compact {|"diagnostics":|});
      let full = Outcome.to_json ~comments:true o in
      check_bool "diagnostic bodies under comments" true
        (contains full {|"diagnostics":[{"pass":|})

(* ------------------------------------------------------------------ *)
(* qcheck: totality and invariance over the generated corpus           *)

let arbitrary_mutant =
  let gen =
    QCheck.Gen.(
      let* bi = int_bound (List.length Bundles.all - 1) in
      let b = List.nth Bundles.all bi in
      let* idx = int_bound (Jfeed_gen.Spec.size b.Bundles.gen - 1) in
      let* seed = int_bound 1_000_000 in
      return (bi, idx, seed))
  in
  let print (bi, idx, seed) =
    let b = List.nth Bundles.all bi in
    Printf.sprintf "%s #%d seed=%d" b.Bundles.grading.Grader.a_id idx seed
  in
  QCheck.make ~print gen

let source_of (bi, idx) =
  let b = List.nth Bundles.all bi in
  Jfeed_gen.Spec.source_of_index b.Bundles.gen idx

(* The mutant-stable projection: positions move with layout and
   messages rename with variables, but the (pass, method, severity)
   multiset is a property of the program's semantics. *)
let fingerprint ds =
  List.sort compare (List.map (fun d -> (d.D.pass, d.D.meth, d.D.severity)) ds)

(* Whitespace keeps the token stream, so messages survive too. *)
let fingerprint_msgs ds =
  List.sort compare
    (List.map (fun d -> (d.D.pass, d.D.meth, d.D.severity, d.D.message)) ds)

let prop_total_on_mutants =
  QCheck.Test.make ~count:120
    ~name:"analysis is total over the mutated corpus" arbitrary_mutant
    (fun (bi, idx, seed) ->
      let src = source_of (bi, idx) in
      List.for_all
        (fun s ->
          match Passes.analyze_source s with _ -> true)
        [
          src;
          Mutate.whitespace ~seed src;
          Mutate.alpha_rename ~seed src;
          Mutate.rename_and_reflow ~seed src;
        ])

let prop_alpha_rename_invariant =
  QCheck.Test.make ~count:100
    ~name:"diagnostics invariant under alpha renaming" arbitrary_mutant
    (fun (bi, idx, seed) ->
      let src = source_of (bi, idx) in
      fingerprint (Passes.analyze_source src)
      = fingerprint (Passes.analyze_source (Mutate.alpha_rename ~seed src)))

let prop_whitespace_invariant =
  QCheck.Test.make ~count:100
    ~name:"diagnostics invariant under whitespace reflow" arbitrary_mutant
    (fun (bi, idx, seed) ->
      let src = source_of (bi, idx) in
      fingerprint_msgs (Passes.analyze_source src)
      = fingerprint_msgs (Passes.analyze_source (Mutate.whitespace ~seed src)))

let test_jobs_invariant () =
  (* The CLI's --jobs fan-out must not reorder or alter diagnostics. *)
  let srcs =
    List.concat_map
      (fun b ->
        List.map
          (fun i -> Jfeed_gen.Spec.source_of_index b.Bundles.gen i)
          [ 0; 1; 2; 3 ])
      [ List.nth Bundles.all 0; List.nth Bundles.all 7 ]
  in
  let arr = Array.of_list srcs in
  let f src = List.map D.render (Passes.analyze_source src) in
  let one = Pool.map ~jobs:1 ~f arr in
  let four = Pool.map ~jobs:4 ~f arr in
  check_bool "jobs 1 = jobs 4" true (one = four)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "srcmap positions" `Quick test_srcmap_positions;
    Alcotest.test_case "located parse = plain parse" `Quick
      test_located_same_ast;
    Alcotest.test_case "use-before-init" `Quick test_use_before_init;
    Alcotest.test_case "use-before-init clean join" `Quick
      test_use_before_init_clean;
    Alcotest.test_case "dead-store" `Quick test_dead_store;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "missing-return" `Quick test_missing_return;
    Alcotest.test_case "suspicious-loop" `Quick test_suspicious_loop;
    Alcotest.test_case "clean method is clean" `Quick test_clean_method;
    Alcotest.test_case "totality on garbage" `Quick
      test_analyze_source_total_on_garbage;
    Alcotest.test_case "count_by_pass shape" `Quick test_count_by_pass;
    Alcotest.test_case "diagnostic render + json" `Quick
      test_diag_render_and_json;
    Alcotest.test_case "shipped bundles lint clean" `Quick
      test_shipped_bundles_lint_clean;
    Alcotest.test_case "broken fixture covers all checks" `Quick
      test_broken_fixture_covers_all_checks;
    Alcotest.test_case "outcome carries diagnostics" `Quick
      test_outcome_carries_diags;
    Alcotest.test_case "diagnostics invariant under --jobs" `Quick
      test_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_total_on_mutants;
    QCheck_alcotest.to_alcotest prop_alpha_rename_invariant;
    QCheck_alcotest.to_alcotest prop_whitespace_invariant;
  ]
