(** Tests for the §VI-C baselines: CLARA-like trace matching and the
    Sketch-like repair search. *)

open Jfeed_baselines

let parse = Jfeed_java.Parser.parse_program

let int_array xs =
  Jfeed_interp.Value.Varr
    (Array.of_list (List.map (fun n -> Jfeed_interp.Value.Vint n) xs))

let args = [ int_array [ 3; 4; 5; 6 ] ]

let trace src = fst (Clara_like.trace_of (parse src) ~entry:"f" ~args)

let sum_src =
  {|
void f(int[] a) {
  int s = 0;
  for (int i = 0; i < a.length; i++)
    s += a[i];
  System.out.println(s);
}
|}

let sum_renamed =
  {|
void f(int[] a) {
  int total = 0;
  for (int j = 0; j < a.length; j++)
    total += a[j];
  System.out.println(total);
}
|}

let sum_wrong_init =
  {|
void f(int[] a) {
  int s = 1;
  for (int i = 0; i < a.length; i++)
    s += a[i];
  System.out.println(s);
}
|}

let test_clara_renaming_ok () =
  (* Same computation, renamed variables: the value-sequence bijection
     finds the match. *)
  Alcotest.(check bool) "renamed matches" true
    (Clara_like.equivalent (trace sum_src) (trace sum_renamed))

let test_clara_repairs () =
  match Clara_like.match_against ~reference:(trace sum_src) (trace sum_wrong_init) with
  | Clara_like.Repairs n -> Alcotest.(check bool) "few repairs" true (n >= 1)
  | Clara_like.Match -> Alcotest.fail "should not match exactly"
  | Clara_like.No_match -> Alcotest.fail "same shape should compare"

let test_clara_reordered_fails () =
  (* The Fig. 8 failure: a different interleaving (two loops vs one) has
     different whole traces even though the result is the same. *)
  let two_pass =
    {|
void f(int[] a) {
  int s = 0;
  int t = 0;
  for (int i = 0; i < a.length; i++)
    s += a[i];
  for (int i = 0; i < a.length; i++)
    t += 2 * a[i];
  System.out.println(s + t);
}
|}
  in
  let interleaved =
    {|
void f(int[] a) {
  int s = 0;
  int t = 0;
  for (int i = 0; i < a.length; i++) {
    s += a[i];
    t += 2 * a[i];
  }
  System.out.println(s + t);
}
|}
  in
  Alcotest.(check bool) "whole-trace comparison fails" false
    (Clara_like.equivalent (trace two_pass) (trace interleaved))

let test_clara_cluster () =
  let traces = [ trace sum_src; trace sum_renamed; trace sum_wrong_init ] in
  (* The two correct variants cluster together; the wrong-init one is its
     own cluster. *)
  Alcotest.(check int) "two clusters" 2
    (List.length (Clara_like.cluster traces))

let test_sketch_zero_repairs () =
  let b = Jfeed_kb.Bundles.assignment1 in
  let reference =
    parse (Jfeed_gen.Spec.reference b.Jfeed_kb.Bundles.gen)
  in
  let expected =
    Jfeed_ftest.Runner.expected_outputs b.Jfeed_kb.Bundles.suite reference
  in
  match
    Sketch_like.repair ~suite:b.Jfeed_kb.Bundles.suite ~expected ~max_depth:2
      reference
  with
  | Some r -> Alcotest.(check int) "already correct" 0 r.Sketch_like.repairs
  | None -> Alcotest.fail "reference must pass"

let test_sketch_finds_seeded_errors () =
  let b = Jfeed_kb.Bundles.assignment1 in
  let spec = b.Jfeed_kb.Bundles.gen in
  let reference = parse (Jfeed_gen.Spec.reference spec) in
  let expected =
    Jfeed_ftest.Runner.expected_outputs b.Jfeed_kb.Bundles.suite reference
  in
  let digits = Array.make (Array.length spec.Jfeed_gen.Spec.choices) 0 in
  digits.(0) <- 1;
  (* odd-init = 1 *)
  digits.(3) <- 1;
  (* loop bound <= *)
  let broken = parse (spec.Jfeed_gen.Spec.render digits) in
  match
    Sketch_like.repair ~suite:b.Jfeed_kb.Bundles.suite ~expected ~max_depth:3
      broken
  with
  | Some r ->
      Alcotest.(check int) "two repairs" 2 r.Sketch_like.repairs;
      Alcotest.(check bool) "rules named" true
        (List.mem "const-0-1" r.Sketch_like.applied
        && List.mem "lt-le" r.Sketch_like.applied)
  | None -> Alcotest.fail "repairable submission"

let test_sketch_gives_up_beyond_depth () =
  let b = Jfeed_kb.Bundles.assignment1 in
  let spec = b.Jfeed_kb.Bundles.gen in
  let reference = parse (Jfeed_gen.Spec.reference spec) in
  let expected =
    Jfeed_ftest.Runner.expected_outputs b.Jfeed_kb.Bundles.suite reference
  in
  let digits = Array.make (Array.length spec.Jfeed_gen.Spec.choices) 0 in
  List.iter (fun c -> digits.(c) <- 1) [ 0; 1; 2 ];
  let broken = parse (spec.Jfeed_gen.Spec.render digits) in
  Alcotest.(check bool) "depth 1 insufficient" true
    (Sketch_like.repair ~suite:b.Jfeed_kb.Bundles.suite ~expected ~max_depth:1
       broken
    = None)

let test_rewrite_sites () =
  let p = parse "void f() { int x = 0; int y = 0; }" in
  let rewrites =
    Rewrite.single_site_rewrites
      (function Jfeed_java.Ast.Int_lit 0 -> Some (Jfeed_java.Ast.Int_lit 1) | _ -> None)
      p
  in
  (* One rewrite per zero literal — single-site application. *)
  Alcotest.(check int) "two sites" 2 (List.length rewrites);
  List.iter
    (fun p' ->
      let rendered = Jfeed_java.Pretty.program p' in
      let count_ones =
        List.length
          (List.filter (fun c -> c = '1')
             (List.init (String.length rendered) (String.get rendered)))
      in
      Alcotest.(check int) "exactly one site changed" 1 count_ones)
    rewrites

let suite =
  [
    Alcotest.test_case "clara: renaming matched" `Quick test_clara_renaming_ok;
    Alcotest.test_case "clara: repairs counted" `Quick test_clara_repairs;
    Alcotest.test_case "clara: reordering fails (Fig. 8)" `Quick
      test_clara_reordered_fails;
    Alcotest.test_case "clara: clustering" `Quick test_clara_cluster;
    Alcotest.test_case "sketch: zero repairs on reference" `Quick
      test_sketch_zero_repairs;
    Alcotest.test_case "sketch: finds seeded errors" `Quick
      test_sketch_finds_seeded_errors;
    Alcotest.test_case "sketch: bounded depth" `Quick
      test_sketch_gives_up_beyond_depth;
    Alcotest.test_case "rewrite: single sites" `Quick test_rewrite_sites;
  ]
