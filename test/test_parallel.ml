(** The throughput layer: the Domain worker pool, the fuel-split
    arithmetic, and the headline guarantee — parallel batch grading is
    byte-identical to sequential on the fault-injection corpus. *)

open Jfeed_kb
open Jfeed_robust
module Pool = Jfeed_parallel.Pool
module Budget = Jfeed_budget.Budget

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool.chunks: a deterministic, exact decomposition *)

let prop_chunks_partition =
  QCheck.Test.make ~count:300 ~name:"chunks partition 0..n-1 in order"
    QCheck.(pair (int_bound 500) (int_bound 32))
    (fun (n, jobs) ->
      let cs = Pool.chunks ~n ~jobs:(jobs + 1) in
      let covered =
        List.concat_map (fun (s, l) -> List.init l (fun i -> s + i)) cs
      in
      covered = List.init n Fun.id && List.for_all (fun (_, l) -> l > 0) cs)

let test_chunks_empty () =
  Alcotest.(check (list (pair int int))) "no items, no chunks" []
    (Pool.chunks ~n:0 ~jobs:4)

(* ------------------------------------------------------------------ *)
(* Pool.map: sequential semantics at any width *)

let prop_map_equals_array_map =
  QCheck.Test.make ~count:200 ~name:"Pool.map = Array.map at any jobs"
    QCheck.(pair (list small_int) (int_bound 7))
    (fun (xs, jobs) ->
      let a = Array.of_list xs in
      let f x = (x * 37) + (x mod 5) in
      Pool.map ~jobs:(jobs + 1) ~f a = Array.map f a)

let test_map_exception_first_index () =
  (* The first failing *index* is re-raised, not the first to finish. *)
  let a = Array.init 40 Fun.id in
  let f x = if x mod 7 = 3 then failwith (string_of_int x) else x in
  match Pool.map ~jobs:4 ~f a with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> Alcotest.(check string) "index order" "3" msg

(* ------------------------------------------------------------------ *)
(* Budget.split: nothing lost to integer division *)

let prop_split_sum_preserving =
  QCheck.Test.make ~count:300 ~name:"Budget.split pools sum to the total"
    QCheck.(pair (int_bound 1_000_000) (int_bound 63))
    (fun (total, ways) ->
      let ways = ways + 1 in
      let pools = Budget.split total ~ways in
      List.length pools = ways
      && List.fold_left ( + ) 0 pools = total
      && (* even: largest and smallest pool differ by at most one unit *)
      List.for_all
        (fun p -> abs (p - (total / ways)) <= 1)
        pools)

let test_split_rejects_zero_ways () =
  Alcotest.check_raises "ways must be positive"
    (Invalid_argument "Budget.split: ways must be positive") (fun () ->
      ignore (Budget.split 100 ~ways:0))

(* ------------------------------------------------------------------ *)
(* Determinism: run_batch ~jobs:4 ≡ ~jobs:1, byte for byte, on the
   fault-injection corpus (clean generated submissions plus mutants of
   every class — parse garbage, deep nesting, giant expressions — under
   a finite fuel budget, functional tests included). *)

let corpus_bundle = Bundles.esc_p2v2

let corpus =
  let spec = corpus_bundle.Bundles.gen in
  let size = Jfeed_gen.Spec.size spec in
  List.init 60 (fun i ->
      let idx = (i * 48271) mod size in
      let src = Jfeed_gen.Spec.source_of_index spec idx in
      let src =
        (* Two in three submissions are mutated, the rest stay clean, so
           the batch crosses every outcome class. *)
        if i mod 3 = 0 then src
        else Test_robust.mutate (Test_robust.lcg ((i * 104729) + idx)) src
      in
      (Printf.sprintf "m%03d.java" i, Ok src))

let test_parallel_batch_byte_identical () =
  let run jobs =
    Pipeline.summary_to_json
      (Pipeline.run_batch ~fuel:50_000 ~jobs corpus_bundle corpus)
  in
  let seq = run 1 in
  Alcotest.(check string) "jobs:4 equals jobs:1" seq (run 4);
  Alcotest.(check string) "jobs:3 equals jobs:1" seq (run 3);
  (* The corpus really exercises the ladder: all three classes appear. *)
  let s = Pipeline.run_batch ~fuel:50_000 ~jobs:4 corpus_bundle corpus in
  check "some graded" true (s.Pipeline.graded > 0);
  check "some rejected" true (s.Pipeline.rejected > 0)

let test_parallel_more_jobs_than_items () =
  let tiny = [ List.hd corpus ] in
  let run jobs =
    Pipeline.summary_to_json
      (Pipeline.run_batch ~fuel:50_000 ~jobs corpus_bundle tiny)
  in
  Alcotest.(check string) "jobs:8 on one item" (run 1) (run 8)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_chunks_partition;
    Alcotest.test_case "chunks: empty input" `Quick test_chunks_empty;
    QCheck_alcotest.to_alcotest prop_map_equals_array_map;
    Alcotest.test_case "map: exception in index order" `Quick
      test_map_exception_first_index;
    QCheck_alcotest.to_alcotest prop_split_sum_preserving;
    Alcotest.test_case "split: zero ways rejected" `Quick
      test_split_rejects_zero_ways;
    Alcotest.test_case "batch determinism on the fault corpus" `Slow
      test_parallel_batch_byte_identical;
    Alcotest.test_case "more jobs than items" `Quick
      test_parallel_more_jobs_than_items;
  ]
