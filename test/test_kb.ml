(** Knowledge-base integration tests: pattern well-formedness, the paper's
    Table I P/C columns, reference solutions grading perfectly, functional
    tests validating the references against hand-computed oracles, and the
    exhaustive one-flip matrix — for every assignment, every single-error
    variant must land in the exact (functional, feedback) class its
    quality marker predicts. *)

open Jfeed_core
open Jfeed_kb

let all_patterns =
  List.sort_uniq
    (fun (a : Pattern.t) b -> compare a.Pattern.id b.Pattern.id)
    (List.concat_map
       (fun b -> List.map fst (Bundles.patterns b))
       Bundles.all)

let test_pattern_wellformed () =
  List.iter
    (fun (p : Pattern.t) ->
      Alcotest.(check (list string)) p.Pattern.id [] (Pattern.validate p))
    all_patterns

let test_pattern_count () =
  (* The paper's knowledge base has 24 unique patterns; ours has 25 (the
     paper publishes only 3 of them, so exact parity is not attainable —
     see EXPERIMENTS.md). *)
  Alcotest.(check int) "unique patterns" 25 (List.length all_patterns)

let expected_pc =
  [
    ("assignment1", 6, 4);
    ("esc-LAB-3-P1-V1", 7, 5);
    ("esc-LAB-3-P2-V1", 8, 13);
    ("esc-LAB-3-P2-V2", 4, 5);
    ("esc-LAB-3-P3-V1", 7, 6);
    ("esc-LAB-3-P4-V1", 7, 6);
    ("esc-LAB-3-P3-V2", 8, 10);
    ("esc-LAB-3-P4-V2", 9, 14);
    ("mitx-derivatives", 3, 4);
    ("mitx-polynomials", 4, 4);
    ("rit-all-g-medals", 9, 7);
    ("rit-medals-by-ath", 9, 7);
  ]

let test_pc_columns () =
  List.iter
    (fun (b : Bundles.t) ->
      let id = b.Bundles.grading.Grader.a_id in
      let _, p, c =
        List.find (fun (i, _, _) -> i = id) expected_pc
      in
      Alcotest.(check int) (id ^ " P") p (List.length (Bundles.patterns b));
      Alcotest.(check int) (id ^ " C") c (List.length (Bundles.constraints b)))
    Bundles.all

let test_constraint_ids_unique () =
  let ids =
    List.concat_map
      (fun b -> List.map (fun c -> c.Constr.c_id) (Bundles.constraints b))
      Bundles.all
  in
  Alcotest.(check int) "no duplicate constraint ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_constraints_reference_known_patterns () =
  List.iter
    (fun (b : Bundles.t) ->
      List.iter
        (fun (q : Grader.method_spec) ->
          let known =
            List.map (fun (p, _) -> p.Pattern.id) q.Grader.q_patterns
          in
          List.iter
            (fun c ->
              List.iter
                (fun pid ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s references %s" c.Constr.c_id pid)
                    true (List.mem pid known))
                (Constr.referenced_patterns c))
            q.Grader.q_constraints)
        b.Bundles.grading.Grader.a_methods)
    Bundles.all

let feedback_positive (r : Grader.result) =
  List.for_all (fun c -> c.Feedback.verdict = Feedback.Correct) r.Grader.comments

let test_references_grade_perfectly () =
  List.iter
    (fun (b : Bundles.t) ->
      let reference =
        Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
      in
      let r = Grader.grade b.Bundles.grading reference in
      Alcotest.(check bool)
        (b.Bundles.grading.Grader.a_id ^ " reference positive")
        true (feedback_positive r);
      Alcotest.(check (float 0.001))
        (b.Bundles.grading.Grader.a_id ^ " Λ = |B|")
        (float_of_int (List.length r.Grader.comments))
        r.Grader.score)
    Bundles.all

let test_references_pass_their_suites () =
  List.iter
    (fun (b : Bundles.t) ->
      let reference =
        Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
      in
      let expected = Jfeed_ftest.Runner.expected_outputs b.suite reference in
      Alcotest.(check bool)
        (b.Bundles.grading.Grader.a_id ^ " reference passes")
        true
        (Jfeed_ftest.Runner.passes b.suite ~expected reference))
    Bundles.all

(* Hand-computed oracle checks on the reference solutions: the suites'
   expected outputs come from running the references, so the references
   themselves are validated independently here. *)
let run_reference id ~args =
  let b = Option.get (Bundles.find id) in
  let prog =
    Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
  in
  let out =
    Jfeed_interp.Interp.run
      ~config:
        {
          Jfeed_interp.Interp.files =
            [ ("summer_olympics.txt",
               Jfeed_ftest.Data.olympics_file Jfeed_ftest.Data.olympics_curated) ];
          max_steps = 1_000_000;
        }
      prog
      ~entry:b.suite.Jfeed_ftest.Runner.entry ~args
  in
  match out.Jfeed_interp.Interp.error with
  | None -> out.Jfeed_interp.Interp.stdout
  | Some e -> Alcotest.failf "%s reference error: %s" id e

let test_reference_oracles () =
  let vint n = Jfeed_interp.Value.Vint n in
  let varr xs =
    Jfeed_interp.Value.Varr (Array.of_list (List.map vint xs))
  in
  (* assignment1 on [3;4;5;6]: odd sum 4+6 = 10, even product 3*5 = 15. *)
  Alcotest.(check string) "assignment1" "10\n15\n"
    (run_reference "assignment1" ~args:[ varr [ 3; 4; 5; 6 ] ]);
  (* 6 = 3! and 6 < 4!: n = 3. *)
  Alcotest.(check string) "P1-V1 k=6" "3\n"
    (run_reference "esc-LAB-3-P1-V1" ~args:[ vint 6 ]);
  (* fib: 13 <= 13 < 21 with fib(7) = 13: n = 7. *)
  Alcotest.(check string) "P2-V1 k=13" "7\n"
    (run_reference "esc-LAB-3-P2-V1" ~args:[ vint 13 ]);
  Alcotest.(check string) "P2-V2 153 special" "Special\n"
    (run_reference "esc-LAB-3-P2-V2" ~args:[ vint 153 ]);
  Alcotest.(check string) "P2-V2 154 not" "Not special\n"
    (run_reference "esc-LAB-3-P2-V2" ~args:[ vint 154 ]);
  (* 12 reversed is 21: |12 - 21| = 9. *)
  Alcotest.(check string) "P3-V1 k=12" "9\n"
    (run_reference "esc-LAB-3-P3-V1" ~args:[ vint 12 ]);
  Alcotest.(check string) "P4-V1 palindrome" "Palindrome\n"
    (run_reference "esc-LAB-3-P4-V1" ~args:[ vint 1221 ]);
  Alcotest.(check string) "P4-V1 not" "Not palindrome\n"
    (run_reference "esc-LAB-3-P4-V1" ~args:[ vint 1231 ]);
  (* factorials in [1, 15]: 1, 2, 6 — the paper's example count of 3. *)
  Alcotest.(check string) "P3-V2 [1,15]" "3\n"
    (run_reference "esc-LAB-3-P3-V2" ~args:[ vint 1; vint 15 ]);
  (* fibs in [2, 15]: 2 3 5 8 13 = 5. *)
  Alcotest.(check string) "P4-V2 [2,15]" "5\n"
    (run_reference "esc-LAB-3-P4-V2" ~args:[ vint 2; vint 15 ]);
  (* derivative of 2 + 0x + 5x^2 + 7x^3 -> 0 10 21. *)
  Alcotest.(check string) "derivatives" "0\n10\n21\n"
    (run_reference "mitx-derivatives" ~args:[ varr [ 2; 0; 5; 7 ] ]);
  (* 2 + 0*3 + 1*9 = 11. *)
  Alcotest.(check string) "polynomials" "11\n"
    (run_reference "mitx-polynomials" ~args:[ varr [ 2; 0; 1 ]; vint 3 ]);
  (* curated dataset oracles *)
  let records = Jfeed_ftest.Data.olympics_curated in
  Alcotest.(check string) "rit gold 2008"
    (string_of_int (Jfeed_ftest.Data.gold_medals_in_year records 2008) ^ "\n")
    (run_reference "rit-all-g-medals" ~args:[ vint 2008 ]);
  Alcotest.(check string) "rit ath Bolt"
    (string_of_int (Jfeed_ftest.Data.medals_by_athlete records "Usain" "Bolt")
    ^ "\n")
    (run_reference "rit-medals-by-ath"
       ~args:[ Jfeed_interp.Value.Vstr "Usain"; Jfeed_interp.Value.Vstr "Bolt" ])

(* The one-flip matrix: the generator's quality markers are the spec. *)
let one_flip_case (b : Bundles.t) =
  let spec = b.Bundles.gen in
  let reference =
    Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference spec)
  in
  let expected = Jfeed_ftest.Runner.expected_outputs b.suite reference in
  let n = Array.length spec.Jfeed_gen.Spec.choices in
  for ci = 0 to n - 1 do
    let c = spec.Jfeed_gen.Spec.choices.(ci) in
    for oi = 1 to Array.length c.Jfeed_gen.Spec.labels - 1 do
      let digits = Array.make n 0 in
      digits.(ci) <- oi;
      let src = spec.Jfeed_gen.Spec.render digits in
      let prog = Jfeed_java.Parser.parse_program src in
      let fpass = Jfeed_ftest.Runner.passes b.suite ~expected prog in
      let fb = feedback_positive (Grader.grade b.Bundles.grading prog) in
      let want_f, want_fb =
        match c.Jfeed_gen.Spec.quality.(oi) with
        | Jfeed_gen.Spec.Good -> (true, true)
        | Jfeed_gen.Spec.Bad -> (false, false)
        | Jfeed_gen.Spec.Disc_neg_feedback -> (true, false)
        | Jfeed_gen.Spec.Disc_pos_feedback -> (false, true)
      in
      if fpass <> want_f || fb <> want_fb then
        Alcotest.failf
          "%s %s/%s: functional=%b (want %b) feedback=%b (want %b)"
          spec.Jfeed_gen.Spec.id c.Jfeed_gen.Spec.tag
          c.Jfeed_gen.Spec.labels.(oi) fpass want_f fb want_fb
    done
  done

let one_flip_tests =
  List.map
    (fun (b : Bundles.t) ->
      Alcotest.test_case
        ("one-flip matrix " ^ b.Bundles.grading.Grader.a_id)
        `Slow
        (fun () -> one_flip_case b))
    Bundles.all

let suite =
  [
    Alcotest.test_case "patterns well-formed" `Quick test_pattern_wellformed;
    Alcotest.test_case "unique pattern count" `Quick test_pattern_count;
    Alcotest.test_case "Table I P and C columns" `Quick test_pc_columns;
    Alcotest.test_case "constraint ids unique" `Quick
      test_constraint_ids_unique;
    Alcotest.test_case "constraints reference known patterns" `Quick
      test_constraints_reference_known_patterns;
    Alcotest.test_case "references grade perfectly" `Quick
      test_references_grade_perfectly;
    Alcotest.test_case "references pass their suites" `Quick
      test_references_pass_their_suites;
    Alcotest.test_case "reference oracles" `Quick test_reference_oracles;
  ]
  @ one_flip_tests
