(** The serving tier: wire protocol, LRU result cache, content
    addressing, metrics, and the daemon loop end to end.

    The headline properties:
    - α-renaming and whitespace re-flows of a submission map to the same
      cache key (qcheck, over generated mutants of every assignment);
    - through a live serving session, every request whose key equals an
      earlier one receives a byte-identical feedback payload, marked
      [cached:true] — checked over 60 mutants of one submission;
    - a malformed line costs one [error] response, never the daemon. *)

open Jfeed_service
module Spec = Jfeed_gen.Spec
module Mutate = Jfeed_gen.Mutate
module Bundles = Jfeed_kb.Bundles

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let index_of ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let contains ~sub s = index_of ~sub s <> None

(* ------------------------------------------------------------------ *)
(* Proto: the JSON reader *)

let parses s = Result.is_ok (Proto.parse_json s)

let test_json_values () =
  check "object" true (parses {|{"a":1,"b":[true,false,null],"c":"x"}|});
  check "nested" true (parses {|{"a":{"b":{"c":[1,2,3]}}}|});
  check "floats" true (parses {|[0.5, -1e3, 2E-2, 12.25]|});
  check "empty forms" true (parses {|[{}, [], "", 0]|});
  Alcotest.(check (option (float 1e-9)))
    "number value" (Some 12.25)
    (match Proto.parse_json "12.25" with
    | Ok (Proto.Num f) -> Some f
    | _ -> None);
  check "escapes decode" true
    (Proto.parse_json {|"a\nb\t\"c\"\\d"|} = Ok (Proto.Str "a\nb\t\"c\"\\d"));
  check "unicode escape" true
    (Proto.parse_json {|"é"|} = Ok (Proto.Str "\xc3\xa9"));
  check "surrogate pair" true
    (Proto.parse_json {|"😀"|} = Ok (Proto.Str "\xf0\x9f\x98\x80"))

let test_json_rejects () =
  let rejects s = check s true (Result.is_error (Proto.parse_json s)) in
  rejects "";
  rejects "{";
  rejects {|{"a":}|};
  rejects {|{"a":1,}|};
  rejects {|[1 2]|};
  rejects {|"unterminated|};
  rejects {|"bad \q escape"|};
  rejects {|"lone surrogate \ud800"|};
  rejects "01";
  rejects "1.";
  rejects "nul";
  rejects {|{"a":1} trailing|};
  rejects "\"raw \n newline\"";
  (* the depth limit keeps adversarial nesting from overflowing *)
  rejects (String.make 200 '[' ^ String.make 200 ']')

let test_request_parsing () =
  (match Proto.request_of_line {|{"op":"grade","assignment":"a1","source":"s","id":"r7","fuel":500}|} with
  | Ok (Proto.Grade g) ->
      check_str "assignment" "a1" g.assignment;
      check_str "source" "s" g.source;
      check "id" true (g.id = Some "r7");
      check "fuel" true (g.fuel = Some 500);
      check "deadline absent" true (g.deadline_s = None);
      check "with_tests absent" true (g.with_tests = None)
  | _ -> Alcotest.fail "grade request did not parse");
  check "stats" true
    (Proto.request_of_line {|{"op":"stats"}|} = Ok (Proto.Stats { id = None }));
  check "shutdown with id" true
    (Proto.request_of_line {|{"op":"shutdown","id":"z"}|}
    = Ok (Proto.Shutdown { id = Some "z" }));
  check "unknown fields ignored" true
    (match Proto.request_of_line {|{"op":"stats","future":1}|} with
    | Ok (Proto.Stats _) -> true
    | _ -> false)

let test_request_errors () =
  let err line =
    match Proto.request_of_line line with
    | Error (id, msg) -> (id, msg)
    | Ok _ -> Alcotest.fail ("unexpectedly parsed: " ^ line)
  in
  check "malformed JSON has no id" true (fst (err "not json") = None);
  (* the id survives even when the request itself is broken, so the
     error response can still be correlated *)
  let id, msg = err {|{"op":"grade","id":"r9"}|} in
  check "id recovered" true (id = Some "r9");
  check "message names the field" true
    (msg = {|grade request lacks "assignment"|});
  check "unknown op" true
    (snd (err {|{"op":"fly"}|}) = {|unknown op "fly"|});
  check "non-object" true (fst (err "[1,2]") = None);
  check "ill-typed fuel" true
    (snd (err {|{"op":"grade","assignment":"a","source":"s","fuel":"lots"}|})
    = {|field "fuel" must be an integer|})

let test_response_shapes () =
  check_str "grade response"
    {|{"id":"r1","op":"grade","cached":true,"result":{"x":1}}|}
    (Proto.grade_response ~id:"r1" ~cached:true ~fuel:None {|{"x":1}|});
  check_str "fuel appears when budgeted"
    {|{"op":"grade","cached":false,"fuel":42,"result":{}}|}
    (Proto.grade_response ~cached:false ~fuel:(Some 42) "{}");
  check_str "error escapes the message"
    {|{"op":"error","error":"bad \"x\""}|}
    (Proto.error_response {|bad "x"|});
  (* response lines must themselves parse as JSON *)
  check "responses are valid JSON" true
    (parses (Proto.grade_response ~id:"a\"b" ~cached:false ~fuel:None "{}")
    && parses (Proto.shutdown_response ~id:"z" ()))

(* ------------------------------------------------------------------ *)
(* Cache: LRU over cache keys *)

let test_cache_lru () =
  let c = Cache.create ~cap:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check_int "size" 2 (Cache.size c);
  (* touching [a] makes [b] the eviction victim *)
  check "find bumps recency" true (Cache.find c "a" = Some 1);
  Cache.add c "c" 3;
  check_int "capacity held" 2 (Cache.size c);
  check "b evicted" false (Cache.mem c "b");
  check "a survived" true (Cache.mem c "a");
  check "c present" true (Cache.mem c "c")

let test_cache_replace_and_disable () =
  let c = Cache.create ~cap:2 in
  Cache.add c "k" 1;
  Cache.add c "k" 2;
  check_int "replace does not grow" 1 (Cache.size c);
  check "replaced value" true (Cache.find c "k" = Some 2);
  let off = Cache.create ~cap:0 in
  Cache.add off "k" 1;
  check_int "cap 0 stores nothing" 0 (Cache.size off);
  check "cap 0 never hits" true (Cache.find off "k" = None)

let test_cache_churn () =
  (* a long insert/lookup churn keeps exactly the cap newest-or-touched *)
  let c = Cache.create ~cap:8 in
  for i = 0 to 99 do
    Cache.add c (string_of_int i) i;
    ignore (Cache.find c (string_of_int (max 0 (i - 3))))
  done;
  check_int "cap respected" 8 (Cache.size c);
  check "newest present" true (Cache.mem c "99");
  check "oldest gone" false (Cache.mem c "0")

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_percentiles () =
  let m = Metrics.create () in
  check "empty percentile is 0" true (Metrics.percentile m 0.95 = 0.0);
  (* 1..100 ms: nearest-rank p50 is the 50th sample, p95 the 95th *)
  for i = 1 to 100 do
    Metrics.record_grade m ~outcome:"graded" ~hit:(i mod 2 = 0)
      ~ms:(float_of_int i)
  done;
  check "p50" true (Metrics.percentile m 0.50 = 50.0);
  check "p95" true (Metrics.percentile m 0.95 = 95.0);
  Metrics.observe_queue_depth m 7;
  Metrics.observe_queue_depth m 3;
  let s = Metrics.to_stats m ~cache_size:1 ~cache_cap:2 ~queue_depth:0 ~queue_cap:64 in
  check_int "grades" 100 s.Proto.grades;
  check_int "hits" 50 s.Proto.cache_hits;
  check_int "misses" 50 s.Proto.cache_misses;
  check_int "graded" 100 s.Proto.graded;
  check_int "queue max latches" 7 s.Proto.queue_max

(* ------------------------------------------------------------------ *)
(* Normalize: content addressing *)

let base_source = Spec.source_of_index Bundles.assignment1.Bundles.gen 0

let key src =
  fst
    (Normalize.cache_key ~assignment:"assignment1" ~fuel:None ~deadline_s:None
       ~with_tests:true src)

let test_fingerprint_collapses_names () =
  let fp = Normalize.fingerprint base_source in
  check "parses to an AST fingerprint" true fp.Normalize.ast;
  check_str "α-renaming preserved the key" (key base_source)
    (key (Mutate.alpha_rename ~seed:7 base_source));
  check_str "whitespace preserved the key" (key base_source)
    (key (Mutate.whitespace ~seed:7 base_source))

let test_key_scoping () =
  let k = key base_source in
  let other ~assignment ~fuel ~with_tests =
    fst
      (Normalize.cache_key ~assignment ~fuel ~deadline_s:None ~with_tests
         base_source)
  in
  check "assignment scopes the key" false
    (k = other ~assignment:"mitx-derivatives" ~fuel:None ~with_tests:true);
  check "fuel scopes the key" false
    (k = other ~assignment:"assignment1" ~fuel:(Some 100) ~with_tests:true);
  check "with_tests scopes the key" false
    (k = other ~assignment:"assignment1" ~fuel:None ~with_tests:false);
  check "KB revision is part of the key" true
    (let r = Bundles.revision () in
     String.length r = 32 && contains ~sub:r k)

let test_fingerprint_raw_fallback () =
  let fp = Normalize.fingerprint "int int int (((" in
  check "unparseable falls back to raw bytes" false fp.Normalize.ast;
  check "raw fallback is byte-exact" false
    (Normalize.fingerprint "int int int ((( " = fp)

let prop_mutants_share_key =
  (* ≥60 generated mutants across all twelve assignment spaces: each
     α-renamed / re-flowed variant must land on its base's cache key. *)
  let gen =
    QCheck.Gen.(
      let* bi = int_bound (List.length Bundles.all - 1) in
      let b = List.nth Bundles.all bi in
      let* idx = int_bound (Spec.size b.Bundles.gen - 1) in
      let* seed = int_bound 10_000 in
      return (bi, idx, seed))
  in
  let print (bi, idx, seed) =
    let b = List.nth Bundles.all bi in
    Printf.sprintf "%s #%d seed %d" b.Bundles.grading.Jfeed_core.Grader.a_id
      idx seed
  in
  QCheck.Test.make ~count:60 ~name:"mutants map to the base cache key"
    (QCheck.make ~print gen)
    (fun (bi, idx, seed) ->
      let b = List.nth Bundles.all bi in
      let id = b.Bundles.grading.Jfeed_core.Grader.a_id in
      let src = Spec.source_of_index b.Bundles.gen idx in
      let key src =
        fst
          (Normalize.cache_key ~assignment:id ~fuel:None ~deadline_s:None
             ~with_tests:true src)
      in
      let k = key src in
      key (Mutate.alpha_rename ~seed src) = k
      && key (Mutate.whitespace ~seed src) = k
      && key (Mutate.rename_and_reflow ~seed src) = k)

(* ------------------------------------------------------------------ *)
(* Server: end-to-end sessions over a pipe pair *)

let run_session ?(config = Server.default_config) lines =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let oc = Unix.out_channel_of_descr resp_w in
        let outcome = Server.serve_fd config req_r oc in
        (try flush oc with Sys_error _ -> ());
        Unix.close resp_w;
        outcome)
  in
  let oc = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  Unix.close req_w;
  let ic = Unix.in_channel_of_descr resp_r in
  let rec collect acc =
    match input_line ic with
    | l -> collect (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = collect [] in
  let outcome = Domain.join server in
  Unix.close req_r;
  Unix.close resp_r;
  (outcome, responses)

let grade_line ?id src =
  Printf.sprintf {|{"op":"grade",%s"assignment":"assignment1","source":"%s"}|}
    (match id with Some i -> Printf.sprintf {|"id":"%s",|} i | None -> "")
    (Jfeed_core.Feedback.json_escape src)

(* The response's feedback payload: everything from "result": on. *)
let payload_of line =
  match index_of ~sub:{|"result":|} line with
  | Some i -> String.sub line i (String.length line - i)
  | None -> Alcotest.fail ("no result payload in: " ^ line)

let cached_of line =
  if contains ~sub:{|"cached":true|} line then true
  else if contains ~sub:{|"cached":false|} line then false
  else Alcotest.fail ("no cached marker in: " ^ line)

let test_session_cached_mutants () =
  (* 60 mutants of one submission: every one must be served from the
     cache (or its in-flight twin) with a byte-identical payload. *)
  let mutants =
    List.init 60 (fun i ->
        match i mod 3 with
        | 0 -> Mutate.alpha_rename ~seed:i base_source
        | 1 -> Mutate.whitespace ~seed:i base_source
        | _ -> Mutate.rename_and_reflow ~seed:i base_source)
  in
  let lines =
    (grade_line ~id:"base" base_source
    :: List.mapi (fun i m -> grade_line ~id:(Printf.sprintf "m%d" i) m) mutants)
    @ [ {|{"op":"stats"}|}; {|{"op":"shutdown"}|} ]
  in
  let outcome, responses = run_session lines in
  check "session ended by shutdown" true (outcome = `Shutdown);
  check_int "one response per request" (List.length lines)
    (List.length responses);
  let grades = List.filteri (fun i _ -> i <= 60) responses in
  let base = List.hd grades in
  check "first serving is a miss" false (cached_of base);
  let expected = payload_of base in
  List.iteri
    (fun i r ->
      check (Printf.sprintf "mutant %d cached" i) true (cached_of r);
      check_str
        (Printf.sprintf "mutant %d payload byte-identical" i)
        expected (payload_of r))
    (List.tl grades);
  let stats = List.nth responses 61 in
  check "60 hits" true (contains ~sub:{|"hits":60,"misses":1|} stats)

let test_session_survives_malformed () =
  let outcome, responses =
    run_session
      [
        "garbage";
        {|{"op":"grade","id":"g"}|};
        {|{"op":"grade","id":"ok","assignment":"nope","source":"x"}|};
        grade_line ~id:"real" base_source;
        {|{"op":"stats","id":"s"}|};
        {|{"op":"shutdown","id":"z"}|};
      ]
  in
  check "shutdown reached" true (outcome = `Shutdown);
  check_int "all requests answered" 6 (List.length responses);
  check "malformed line → error response" true
    (contains ~sub:{|"op":"error"|} (List.nth responses 0));
  check "id echoed on field error" true
    (String.starts_with ~prefix:{|{"id":"g","op":"error"|}
       (List.nth responses 1));
  check "unknown assignment is an error, not a crash" true
    (String.starts_with ~prefix:{|{"id":"ok","op":"error"|}
       (List.nth responses 2));
  check "the daemon still grades afterwards" true
    (String.starts_with ~prefix:{|{"id":"real","op":"grade","cached":false|}
       (List.nth responses 3))

let test_session_eof_without_shutdown () =
  let outcome, responses = run_session [ grade_line base_source ] in
  check "EOF ends the connection" true (outcome = `Eof);
  check_int "the grade was still answered" 1 (List.length responses)

let test_session_parallel_determinism () =
  (* The same mixed stream through --jobs 1 and --jobs 4 must produce
     byte-identical response lines: the pool merge is index-ordered and
     the budget is per request. *)
  let srcs =
    List.init 8 (fun i ->
        Spec.source_of_index Bundles.assignment1.Bundles.gen (i * 11))
  in
  let lines =
    List.mapi (fun i s -> grade_line ~id:(string_of_int i) s) srcs
    @ [ {|{"op":"shutdown"}|} ]
  in
  let run jobs =
    snd (run_session ~config:{ Server.default_config with jobs } lines)
  in
  check "jobs-invariant responses" true (run 1 = run 4)

(* ------------------------------------------------------------------ *)
(* Entry codec: the durable store's value bytes *)

let test_entry_codec () =
  let roundtrip e =
    check "codec roundtrips" true
      (Server.decode_entry (Server.encode_entry e) = Some e)
  in
  roundtrip
    {
      Server.outcome_class = "graded";
      fuel_spent = Some 1234;
      diag_counts = [ ("dead-store", 2); ("unreachable", 0) ];
      result_json = {|{"outcome":"graded","score":9}|};
    };
  roundtrip
    {
      Server.outcome_class = "rejected";
      fuel_spent = None;
      diag_counts = [];
      result_json = "";
    };
  (* the JSON tail is raw bytes to the end — newlines included *)
  roundtrip
    {
      Server.outcome_class = "degraded";
      fuel_spent = Some 0;
      diag_counts = [ ("use-before-init", 7) ];
      result_json = "{\"a\":\n\"b c\"}";
    };
  check "garbage decodes to None" true (Server.decode_entry "nope" = None);
  check "truncated header decodes to None" true
    (Server.decode_entry "graded\n12\n" = None);
  check "bad diag count decodes to None" true
    (Server.decode_entry "graded\n-\nx\n{}" = None)

(* ------------------------------------------------------------------ *)
(* Store: the append-only checksummed log *)

let fresh_dir () =
  let f = Filename.temp_file "jfeed-store" "" in
  Sys.remove f;
  f

let log_file dir = Filename.concat dir Store.file_name

let replay dir =
  let acc = ref [] in
  let t, recovery =
    Store.open_dir dir ~f:(fun ~key ~value -> acc := (key, value) :: !acc)
  in
  (t, recovery, List.rev !acc)

let test_store_roundtrip () =
  let dir = fresh_dir () in
  let t, r, entries = replay dir in
  check_int "fresh log is empty" 0 r.Store.recovered;
  check "no entries" true (entries = []);
  Store.append t ~key:"k1" ~value:"v1";
  Store.append t ~key:"k2" ~value:(String.make 10_000 'x');
  Store.append t ~key:"k1" ~value:"v1'";
  check_int "appended counted" 3 (Store.appended t);
  Store.close t;
  let t2, r2, entries2 = replay dir in
  check_int "all records recovered" 3 r2.Store.recovered;
  check_int "no bytes dropped" 0 r2.Store.dropped_bytes;
  check "replay is append-ordered" true
    (entries2
    = [ ("k1", "v1"); ("k2", String.make 10_000 'x'); ("k1", "v1'") ]);
  Store.close t2

let test_store_torn_tail () =
  let dir = fresh_dir () in
  let t, _, _ = replay dir in
  Store.append t ~key:"a" ~value:"1";
  Store.append t ~key:"b" ~value:"2";
  Store.close t;
  let intact = (Unix.stat (log_file dir)).Unix.st_size in
  (* a crash mid-append leaves a torn tail: garbage after the prefix *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (log_file dir)
  in
  let garbage = "torn-tail-garbage" in
  output_string oc garbage;
  close_out oc;
  let t2, r2, entries2 = replay dir in
  check_int "valid prefix recovered" 2 r2.Store.recovered;
  check_int "torn bytes reported" (String.length garbage)
    r2.Store.dropped_bytes;
  check "prefix entries intact" true (entries2 = [ ("a", "1"); ("b", "2") ]);
  (* the file was truncated back to the valid prefix, so the next
     append never interleaves with garbage *)
  check "file truncated to valid prefix" true
    ((Unix.stat (log_file dir)).Unix.st_size = intact);
  Store.append t2 ~key:"c" ~value:"3";
  Store.close t2;
  let t3, r3, entries3 = replay dir in
  check_int "append after recovery reads back" 3 r3.Store.recovered;
  check "third entry present" true
    (entries3 = [ ("a", "1"); ("b", "2"); ("c", "3") ]);
  Store.close t3

let test_store_corruption_stops_replay () =
  let dir = fresh_dir () in
  let t, _, _ = replay dir in
  Store.append t ~key:"a" ~value:"11111111";
  Store.append t ~key:"b" ~value:"22222222";
  Store.append t ~key:"c" ~value:"33333333";
  Store.close t;
  (* flip one payload byte inside the second record: its checksum no
     longer matches, so replay keeps record 1 and drops 2 and 3 *)
  let path = log_file dir in
  let size = (Unix.stat path).Unix.st_size in
  let record_len = size / 3 in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd (record_len + (record_len / 2)) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1);
  Unix.close fd;
  let t2, r2, entries2 = replay dir in
  check_int "replay stops at the corrupt record" 1 r2.Store.recovered;
  check "dropped bytes cover the suffix" true
    (r2.Store.dropped_bytes = size - record_len);
  check "the valid prefix survives" true (entries2 = [ ("a", "11111111") ]);
  Store.close t2

let test_store_compaction () =
  let dir = fresh_dir () in
  let t, _, _ = replay dir in
  for i = 0 to 9 do
    Store.append t ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int i)
  done;
  let before = (Unix.stat (log_file dir)).Unix.st_size in
  Store.compact t [ ("k8", "8"); ("k9", "9") ];
  check_int "compactions counted" 1 (Store.compactions t);
  check "log shrank" true ((Unix.stat (log_file dir)).Unix.st_size < before);
  (* the compacted log is still appendable and still checksummed *)
  Store.append t ~key:"k10" ~value:"10";
  Store.close t;
  let t2, r2, entries2 = replay dir in
  check_int "live set + new append recovered" 3 r2.Store.recovered;
  check "compaction kept exactly the live entries" true
    (entries2 = [ ("k8", "8"); ("k9", "9"); ("k10", "10") ]);
  Store.close t2

let test_store_single_writer () =
  let dir = fresh_dir () in
  let t, _, _ = replay dir in
  Store.append t ~key:"k" ~value:"v";
  (* The lock is per-process (fcntl), so a second open in this process
     would succeed; real double-serve protection is cross-process and
     exercised by the cram suite.  Here: close releases cleanly. *)
  Store.close t;
  let t2, r2, _ = replay dir in
  check_int "reopen after close" 1 r2.Store.recovered;
  Store.close t2

(* ------------------------------------------------------------------ *)
(* Shards: shard-count invariance *)

let prop_shards_invariant =
  (* Whatever the shard count, the sharded cache answers lookups
     identically (sharding is routing, not semantics) — checked over
     random add streams against the 1-shard oracle, capacity ample so
     eviction never fires. *)
  let gen =
    QCheck.Gen.(
      let* shards = int_range 1 12 in
      let* ops =
        list_size (int_bound 200) (pair (int_bound 20) small_nat)
      in
      return (shards, ops))
  in
  let print (shards, ops) =
    Printf.sprintf "shards=%d ops=%d" shards (List.length ops)
  in
  QCheck.Test.make ~count:100
    ~name:"sharded cache is shard-count-invariant"
    (QCheck.make ~print gen)
    (fun (shards, ops) ->
      let one = Shards.create ~shards:1 ~cap:10_000 in
      let many = Shards.create ~shards ~cap:10_000 in
      List.iter
        (fun (k, v) ->
          let key = "key" ^ string_of_int k in
          Shards.add one key v;
          Shards.add many key v)
        ops;
      Shards.size one = Shards.size many
      && List.for_all
           (fun k ->
             let key = "key" ^ string_of_int k in
             Shards.find one key = Shards.find many key)
           (List.init 22 Fun.id))

let test_shards_capacity_split () =
  (* total capacity is divided without loss: 10 over 4 shards still
     holds exactly 10 entries *)
  let s = Shards.create ~shards:4 ~cap:10 in
  for i = 0 to 99 do
    Shards.add s (string_of_int i) i
  done;
  check "no capacity lost to integer division" true (Shards.size s <= 10);
  (* per-shard counters tally every find *)
  ignore (Shards.find s "miss-key");
  let hits, misses =
    Array.fold_left
      (fun (h, m) (sh, sm) -> (h + sh, m + sm))
      (0, 0) (Shards.counters s)
  in
  check_int "one lookup counted" 1 (hits + misses);
  check_int "it was a miss" 1 misses

(* ------------------------------------------------------------------ *)
(* Durable serving: restarts replay the cache byte-identically *)

let test_durable_replay_across_restarts () =
  let dir = fresh_dir () in
  let config = { Server.default_config with cache_dir = Some dir } in
  let lines = [ grade_line ~id:"g" base_source; {|{"op":"shutdown"}|} ] in
  let _, first = run_session ~config lines in
  check "first run is a miss" false (cached_of (List.hd first));
  let expected = payload_of (List.hd first) in
  (* same daemon config, fresh process state: the log replays the
     cache, and an α-renamed twin of the submission hits it *)
  let mutant = Mutate.alpha_rename ~seed:99 base_source in
  let _, second =
    run_session ~config [ grade_line ~id:"g2" mutant; {|{"op":"shutdown"}|} ]
  in
  check "replayed entry answers cached:true" true
    (cached_of (List.hd second));
  check_str "replayed payload is byte-identical" expected
    (payload_of (List.hd second))

(* ------------------------------------------------------------------ *)
(* The concurrent socket daemon: interleaved clients *)

let test_socket_two_clients () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jfeed-test-%d.sock" (Unix.getpid ()))
  in
  let server =
    Domain.spawn (fun () -> Server.serve_socket Server.default_config path)
  in
  let rec wait n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if not (Sys.file_exists path) then begin
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    (fd, Unix.in_channel_of_descr fd)
  in
  let send fd s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  let a_fd, a_ic = connect () in
  let b_fd, b_ic = connect () in
  (* A stalls mid-line: a half-written request with no newline.  A
     slow or wedged client must not stall anyone else. *)
  send a_fd {|{"op":"grade","id":"a1","assignment|};
  (* B, meanwhile, gets full service: two grades and a stats, answered
     in B's own request order. *)
  send b_fd (grade_line ~id:"b1" base_source ^ "\n");
  send b_fd
    (grade_line ~id:"b2" (Mutate.alpha_rename ~seed:3 base_source)
    ^ "\n" ^ {|{"op":"stats","id":"bs"}|} ^ "\n");
  let b1 = input_line b_ic in
  let b2 = input_line b_ic in
  let bs = input_line b_ic in
  check "B graded while A stalls" true
    (String.starts_with ~prefix:{|{"id":"b1","op":"grade","cached":false|} b1);
  check "B's duplicate hits the shared cache" true
    (String.starts_with ~prefix:{|{"id":"b2","op":"grade","cached":true|} b2);
  check "stats answered after B's grades, in order" true
    (String.starts_with ~prefix:{|{"id":"bs","op":"stats"|} bs);
  check "stats counts both connections" true (contains ~sub:{|"conns":2|} bs);
  (* A wakes up and completes its line: the daemon kept its buffer *)
  send a_fd ({|":"assignment1","source":"|}
             ^ Jfeed_core.Feedback.json_escape base_source
             ^ {|"}|} ^ "\n");
  let a1 = input_line a_ic in
  check "A's split request was served from the shared cache" true
    (String.starts_with ~prefix:{|{"id":"a1","op":"grade","cached":true|} a1);
  (* shutdown drains both connections and stops the daemon *)
  send b_fd "{\"op\":\"shutdown\"}\n";
  check "shutdown acknowledged" true
    (String.starts_with ~prefix:{|{"op":"shutdown"|} (input_line b_ic));
  check "A sees EOF on daemon stop" true
    (match input_line a_ic with
    | exception End_of_file -> true
    | _ -> false);
  Domain.join server;
  (try Unix.close a_fd with _ -> ());
  (try Unix.close b_fd with _ -> ());
  check "socket unlinked on exit" false (Sys.file_exists path)

let test_socket_admission_sheds () =
  (* queue_cap 1: a burst on one connection must answer every line —
     some graded, the overflow refused with rejected:"overloaded" —
     and never hang. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jfeed-shed-%d.sock" (Unix.getpid ()))
  in
  let config = { Server.default_config with queue_cap = 1 } in
  let server = Domain.spawn (fun () -> Server.serve_socket config path) in
  let rec wait n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if not (Sys.file_exists path) then begin
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let n = 8 in
  let burst =
    String.concat ""
      (List.init n (fun i ->
           grade_line ~id:(Printf.sprintf "r%d" i)
             (Spec.source_of_index Bundles.assignment1.Bundles.gen (i * 7))
           ^ "\n"))
  in
  ignore (Unix.write_substring fd burst 0 (String.length burst));
  let responses = List.init n (fun _ -> input_line ic) in
  let shed =
    List.length
      (List.filter (contains ~sub:{|"rejected":"overloaded"|}) responses)
  in
  let graded =
    List.length
      (List.filter (contains ~sub:{|"cached":|}) responses)
  in
  check_int "every line answered" n (List.length responses);
  check_int "graded + shed covers the burst" n (graded + shed);
  check "shed responses carry a rejected outcome" true
    (shed = 0
    || List.exists
         (fun r ->
           contains ~sub:{|"rejected":"overloaded"|} r
           && contains ~sub:{|"stage":"admission"|} r)
         responses);
  ignore (Unix.write_substring fd "{\"op\":\"shutdown\"}\n" 0 18);
  check "shutdown acknowledged" true
    (String.starts_with ~prefix:{|{"op":"shutdown"|} (input_line ic));
  Domain.join server;
  (try Unix.close fd with _ -> ())

(* ------------------------------------------------------------------ *)
(* Telemetry: the event log, SLO counters, correlation ids *)

module Events = Jfeed_trace.Events

let fresh_ev_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jfeed-%s-%d" tag (Unix.getpid ()))
  in
  List.iter
    (fun f ->
      try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    [ "events.jsonl"; "events.jsonl.1" ];
  dir

let test_events_ring_rotation () =
  let dir = fresh_ev_dir "evring" in
  let e = Events.create ~ring_cap:4 ~rotate_bytes:4096 dir in
  for i = 1 to 6 do
    Events.emit e
      ~rid:(Printf.sprintf "r%d" i)
      ~ev:"admit"
      [ ("i", Events.I i) ]
  done;
  check_int "ring holds exactly its cap" 4 (Events.pending e);
  check_int "the overflow is counted, not blocked on" 2 (Events.dropped e);
  check_int "emitted counts only enqueued lines" 4 (Events.emitted e);
  Events.flush e;
  check_int "flush drains the ring" 0 (Events.pending e);
  (* pad lines until the size cap forces a rotation *)
  for i = 1 to 200 do
    Events.emit e ~rid:"pad" ~ev:"x"
      [ ("pad", Events.S (String.make 80 'a')) ];
    if i mod 4 = 0 then Events.flush e
  done;
  Events.close e;
  check "the log rotated at the size cap" true (Events.rotations e >= 1);
  check "one rotated generation is kept" true
    (Sys.file_exists (Events.rotated_path dir));
  let n, torn = Events.replay_dir dir ~f:(fun _ -> ()) in
  check "a cleanly closed log has no torn tail" true (torn = 0);
  check "replay walks rotated then current" true (n > 0)

let test_events_torn_tail () =
  let dir = fresh_ev_dir "evtorn" in
  let e = Events.create dir in
  Events.emit e ~rid:"t1" ~ev:"admit" [];
  Events.emit e ~rid:"t2" ~ev:"respond" [ ("total_ms", Events.F 1.25) ];
  Events.close e;
  (* an unterminated half-line, as kill -9 mid-write leaves behind *)
  let oc =
    open_out_gen [ Open_append; Open_wronly ] 0o644 (Events.current_path dir)
  in
  output_string oc {|{"ts_ns":1,"rid":"t3","ev":"admit"|};
  close_out oc;
  let seen = ref [] in
  let n, torn = Events.replay_dir dir ~f:(fun l -> seen := l :: !seen) in
  check_int "the valid prefix survives" 2 n;
  check "the torn tail is measured, never replayed" true (torn > 0);
  check "replayed lines all checksum" true
    (List.for_all Events.checksum_ok !seen);
  (* a flipped byte inside an intact line stops replay there too *)
  let dir2 = fresh_ev_dir "evcorrupt" in
  let e2 = Events.create dir2 in
  for i = 1 to 3 do
    Events.emit e2 ~rid:(string_of_int i) ~ev:"x" []
  done;
  Events.close e2;
  let p = Events.current_path dir2 in
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match String.split_on_char '\n' s with
  | l1 :: l2 :: rest ->
      let l2' = Bytes.of_string l2 in
      Bytes.set l2' 12 'X';
      let oc = open_out_bin p in
      output_string oc (String.concat "\n" (l1 :: Bytes.to_string l2' :: rest));
      close_out oc
  | _ -> Alcotest.fail "expected three event lines");
  let n2, _ = Events.replay_file p ~f:(fun _ -> ()) in
  check_int "replay stops at the first corrupted line" 1 n2

let test_metrics_slo () =
  let m = Metrics.create () in
  for _ = 1 to 9 do
    Metrics.record_slo m ~ok:true
  done;
  Metrics.record_slo m ~ok:false;
  check_int "good requests counted" 9 (Metrics.slo_good m);
  check_int "bad requests counted" 1 (Metrics.slo_bad m);
  (* 1 bad in 10 at target 0.9: spending the error budget exactly 1x *)
  let burn = Metrics.burn_rate m ~target:0.9 ~window_s:60.0 in
  check "burn rate = error rate over budget" true
    (abs_float (burn -. 1.0) < 1e-9);
  let tight = Metrics.burn_rate m ~target:0.99 ~window_s:60.0 in
  check "a 10x tighter budget burns 10x faster" true
    (abs_float (tight -. 10.0) < 1e-6);
  check "an empty window burns nothing" true
    (Metrics.burn_rate (Metrics.create ()) ~target:0.9 ~window_s:60.0 = 0.0);
  let text =
    Metrics.to_prometheus ~slo:(50.0, 0.999) ~events:(1, 2, 3) m
      ~cache_size:0 ~cache_cap:0 ~queue_depth:0 ~queue_cap:0
  in
  check "slo counters exported" true
    (contains ~sub:"jfeed_slo_bad_total 1" text);
  check "burn gauge labelled by window" true
    (contains ~sub:{|jfeed_slo_burn_rate{window="5m"}|} text);
  check "build info always present" true
    (contains ~sub:"jfeed_build_info{version=" text);
  check "event counters exported" true
    (contains ~sub:"jfeed_events_dropped_total 2" text);
  (* the frozen exposition tail starts at jfeed_requests_total; every
     new family must sit before it *)
  (match
     (index_of ~sub:"# HELP jfeed_requests_total" text,
      index_of ~sub:"jfeed_slo_good_total" text)
   with
  | Some anchor, Some slo_pos ->
      check "new families precede the frozen anchor" true (slo_pos < anchor)
  | _ -> Alcotest.fail "expected both families in the exposition")

let test_session_rid_telemetry () =
  let config = { Server.default_config with slo_ms = Some 10000.0 } in
  let outcome, responses =
    run_session ~config
      [
        grade_line ~id:"g1" base_source;
        {|{"op":"grade","id":"g2","rid":"mine","assignment":"assignment1","source":"not java"}|};
        {|{"op":"stats","id":"s"}|};
        {|{"op":"shutdown"}|};
      ]
  in
  check "shutdown reached" true (outcome = `Shutdown);
  let g1 = List.nth responses 0 in
  let g2 = List.nth responses 1 in
  let s = List.nth responses 2 in
  check "a minted rid is echoed" true
    (String.starts_with ~prefix:{|{"id":"g1","rid":"r|} g1);
  check "a client-supplied rid wins over minting" true
    (String.starts_with ~prefix:{|{"id":"g2","rid":"mine","op":"grade"|} g2);
  check "stats carries the slo object" true
    (contains ~sub:{|"slo":{"good":|} s);
  check "both requests landed inside the objective" true
    (contains ~sub:{|"slo":{"good":2,"bad":0|} s)

let rid_of line =
  match index_of ~sub:{|"rid":"|} line with
  | Some i ->
      let start = i + 7 in
      let j = String.index_from line start '"' in
      String.sub line start (j - start)
  | None -> ""

let test_socket_events_interleaved () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "jfeed-evsock-%d.sock" (Unix.getpid ()))
  in
  let dir = fresh_ev_dir "evlog" in
  let config =
    {
      Server.default_config with
      event_log = Some dir;
      slo_ms = Some 10000.0;
    }
  in
  let server = Domain.spawn (fun () -> Server.serve_socket config path) in
  let rec wait n =
    if n = 0 then Alcotest.fail "daemon socket never appeared"
    else if not (Sys.file_exists path) then begin
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    (fd, Unix.in_channel_of_descr fd)
  in
  let send fd s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  let a_fd, a_ic = connect () in
  let b_fd, b_ic = connect () in
  let rid_line ~id ~rid ?fuel src =
    Printf.sprintf
      {|{"op":"grade","id":"%s","rid":"%s",%s"assignment":"assignment1","source":"%s"}|}
      id rid
      (match fuel with
      | Some f -> Printf.sprintf {|"fuel":%d,|} f
      | None -> "")
      (Jfeed_core.Feedback.json_escape src)
  in
  (* two clients interleave: a clean grade each, then a degraded one
     (starved budget) and a rejected one (unparseable) — the latter two
     must come out of the log with retained traces *)
  send a_fd (rid_line ~id:"a1" ~rid:"rid-a1" base_source ^ "\n");
  send b_fd (rid_line ~id:"b1" ~rid:"rid-b1" base_source ^ "\n");
  let a1 = input_line a_ic in
  let b1 = input_line b_ic in
  send a_fd (rid_line ~id:"a2" ~rid:"rid-a2" ~fuel:1 base_source ^ "\n");
  send b_fd (rid_line ~id:"b2" ~rid:"rid-b2" "not java at all" ^ "\n");
  let a2 = input_line a_ic in
  let b2 = input_line b_ic in
  send a_fd (grade_line ~id:"a3" (Mutate.alpha_rename ~seed:9 base_source) ^ "\n");
  let a3 = input_line a_ic in
  check "client rid echoed through the socket" true
    (String.starts_with ~prefix:{|{"id":"a1","rid":"rid-a1","op":"grade"|} a1);
  check "the other client's rid echoed too" true
    (String.starts_with ~prefix:{|{"id":"b1","rid":"rid-b1","op":"grade"|} b1);
  check "non-graded responses keep their rid" true
    (contains ~sub:{|"rid":"rid-a2"|} a2 && contains ~sub:{|"rid":"rid-b2"|} b2);
  check "a request without a rid gets a minted one" true
    (String.starts_with ~prefix:{|{"id":"a3","rid":"r|} a3);
  send b_fd "{\"op\":\"shutdown\"}\n";
  ignore (input_line b_ic);
  Domain.join server;
  (try Unix.close a_fd with _ -> ());
  (try Unix.close b_fd with _ -> ());
  let acc = ref [] in
  let n, torn = Events.replay_dir dir ~f:(fun l -> acc := l :: !acc) in
  let lines = List.rev !acc in
  check "clean shutdown leaves no torn tail" true (torn = 0);
  check_int "replay returns every line it passed to f" n (List.length lines);
  let with_rid rid =
    List.filter
      (contains ~sub:(Printf.sprintf {|"rid":"%s"|} rid))
      lines
  in
  let evs rid ev =
    List.filter
      (contains ~sub:(Printf.sprintf {|"ev":"%s"|} ev))
      (with_rid rid)
  in
  (* one well-formed line per lifecycle transition, per request *)
  List.iter
    (fun rid ->
      check_int (rid ^ " admitted exactly once") 1
        (List.length (evs rid "admit"));
      check_int (rid ^ " responded exactly once") 1
        (List.length (evs rid "respond"));
      check_int (rid ^ " written out exactly once") 1
        (List.length (evs rid "write")))
    [ "rid-a1"; "rid-b1"; "rid-a2"; "rid-b2" ];
  check "the degraded request retained its trace" true
    (List.length (evs "rid-a2" "trace") = 1);
  check "the rejected request retained its trace" true
    (List.length (evs "rid-b2" "trace") = 1);
  check "a fast graded request is not trace-sampled" true
    (List.length (evs "rid-a1" "trace") = 0);
  let admits = List.filter (contains ~sub:{|"ev":"admit"|}) lines in
  check_int "one admission per grade request" 5 (List.length admits);
  check_int "rids are unique across clients" 5
    (List.length (List.sort_uniq compare (List.map rid_of admits)))

let suite =
  [
    Alcotest.test_case "json values parse" `Quick test_json_values;
    Alcotest.test_case "json rejects" `Quick test_json_rejects;
    Alcotest.test_case "request parsing" `Quick test_request_parsing;
    Alcotest.test_case "request errors keep the id" `Quick test_request_errors;
    Alcotest.test_case "response shapes" `Quick test_response_shapes;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru;
    Alcotest.test_case "cache replace and cap 0" `Quick
      test_cache_replace_and_disable;
    Alcotest.test_case "cache churn" `Quick test_cache_churn;
    Alcotest.test_case "metrics percentiles" `Quick test_metrics_percentiles;
    Alcotest.test_case "fingerprint collapses naming" `Quick
      test_fingerprint_collapses_names;
    Alcotest.test_case "cache key scoping" `Quick test_key_scoping;
    Alcotest.test_case "raw fallback for unparseable" `Quick
      test_fingerprint_raw_fallback;
    QCheck_alcotest.to_alcotest prop_mutants_share_key;
    Alcotest.test_case "60 mutants byte-identical via cache" `Slow
      test_session_cached_mutants;
    Alcotest.test_case "malformed lines never kill the daemon" `Quick
      test_session_survives_malformed;
    Alcotest.test_case "EOF without shutdown" `Quick
      test_session_eof_without_shutdown;
    Alcotest.test_case "responses are jobs-invariant" `Slow
      test_session_parallel_determinism;
    Alcotest.test_case "cache entry codec roundtrips" `Quick test_entry_codec;
    Alcotest.test_case "store roundtrip through a restart" `Quick
      test_store_roundtrip;
    Alcotest.test_case "store truncates a torn tail" `Quick
      test_store_torn_tail;
    Alcotest.test_case "store stops replay at corruption" `Quick
      test_store_corruption_stops_replay;
    Alcotest.test_case "store compaction keeps the live set" `Quick
      test_store_compaction;
    Alcotest.test_case "store reopen after close" `Quick
      test_store_single_writer;
    QCheck_alcotest.to_alcotest prop_shards_invariant;
    Alcotest.test_case "shard capacity split" `Quick test_shards_capacity_split;
    Alcotest.test_case "durable replay across restarts" `Slow
      test_durable_replay_across_restarts;
    Alcotest.test_case "two clients interleave on one daemon" `Slow
      test_socket_two_clients;
    Alcotest.test_case "admission sheds past the queue cap" `Slow
      test_socket_admission_sheds;
    Alcotest.test_case "event ring bounds memory and rotates" `Quick
      test_events_ring_rotation;
    Alcotest.test_case "event replay truncates torn tails only" `Quick
      test_events_torn_tail;
    Alcotest.test_case "slo counters and burn rates" `Quick test_metrics_slo;
    Alcotest.test_case "correlation ids thread through a session" `Quick
      test_session_rid_telemetry;
    Alcotest.test_case "two clients leave one event trail each" `Slow
      test_socket_events_interleaved;
  ]
