(** The serving tier: wire protocol, LRU result cache, content
    addressing, metrics, and the daemon loop end to end.

    The headline properties:
    - α-renaming and whitespace re-flows of a submission map to the same
      cache key (qcheck, over generated mutants of every assignment);
    - through a live serving session, every request whose key equals an
      earlier one receives a byte-identical feedback payload, marked
      [cached:true] — checked over 60 mutants of one submission;
    - a malformed line costs one [error] response, never the daemon. *)

open Jfeed_service
module Spec = Jfeed_gen.Spec
module Mutate = Jfeed_gen.Mutate
module Bundles = Jfeed_kb.Bundles

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let index_of ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let contains ~sub s = index_of ~sub s <> None

(* ------------------------------------------------------------------ *)
(* Proto: the JSON reader *)

let parses s = Result.is_ok (Proto.parse_json s)

let test_json_values () =
  check "object" true (parses {|{"a":1,"b":[true,false,null],"c":"x"}|});
  check "nested" true (parses {|{"a":{"b":{"c":[1,2,3]}}}|});
  check "floats" true (parses {|[0.5, -1e3, 2E-2, 12.25]|});
  check "empty forms" true (parses {|[{}, [], "", 0]|});
  Alcotest.(check (option (float 1e-9)))
    "number value" (Some 12.25)
    (match Proto.parse_json "12.25" with
    | Ok (Proto.Num f) -> Some f
    | _ -> None);
  check "escapes decode" true
    (Proto.parse_json {|"a\nb\t\"c\"\\d"|} = Ok (Proto.Str "a\nb\t\"c\"\\d"));
  check "unicode escape" true
    (Proto.parse_json {|"é"|} = Ok (Proto.Str "\xc3\xa9"));
  check "surrogate pair" true
    (Proto.parse_json {|"😀"|} = Ok (Proto.Str "\xf0\x9f\x98\x80"))

let test_json_rejects () =
  let rejects s = check s true (Result.is_error (Proto.parse_json s)) in
  rejects "";
  rejects "{";
  rejects {|{"a":}|};
  rejects {|{"a":1,}|};
  rejects {|[1 2]|};
  rejects {|"unterminated|};
  rejects {|"bad \q escape"|};
  rejects {|"lone surrogate \ud800"|};
  rejects "01";
  rejects "1.";
  rejects "nul";
  rejects {|{"a":1} trailing|};
  rejects "\"raw \n newline\"";
  (* the depth limit keeps adversarial nesting from overflowing *)
  rejects (String.make 200 '[' ^ String.make 200 ']')

let test_request_parsing () =
  (match Proto.request_of_line {|{"op":"grade","assignment":"a1","source":"s","id":"r7","fuel":500}|} with
  | Ok (Proto.Grade g) ->
      check_str "assignment" "a1" g.assignment;
      check_str "source" "s" g.source;
      check "id" true (g.id = Some "r7");
      check "fuel" true (g.fuel = Some 500);
      check "deadline absent" true (g.deadline_s = None);
      check "with_tests absent" true (g.with_tests = None)
  | _ -> Alcotest.fail "grade request did not parse");
  check "stats" true
    (Proto.request_of_line {|{"op":"stats"}|} = Ok (Proto.Stats { id = None }));
  check "shutdown with id" true
    (Proto.request_of_line {|{"op":"shutdown","id":"z"}|}
    = Ok (Proto.Shutdown { id = Some "z" }));
  check "unknown fields ignored" true
    (match Proto.request_of_line {|{"op":"stats","future":1}|} with
    | Ok (Proto.Stats _) -> true
    | _ -> false)

let test_request_errors () =
  let err line =
    match Proto.request_of_line line with
    | Error (id, msg) -> (id, msg)
    | Ok _ -> Alcotest.fail ("unexpectedly parsed: " ^ line)
  in
  check "malformed JSON has no id" true (fst (err "not json") = None);
  (* the id survives even when the request itself is broken, so the
     error response can still be correlated *)
  let id, msg = err {|{"op":"grade","id":"r9"}|} in
  check "id recovered" true (id = Some "r9");
  check "message names the field" true
    (msg = {|grade request lacks "assignment"|});
  check "unknown op" true
    (snd (err {|{"op":"fly"}|}) = {|unknown op "fly"|});
  check "non-object" true (fst (err "[1,2]") = None);
  check "ill-typed fuel" true
    (snd (err {|{"op":"grade","assignment":"a","source":"s","fuel":"lots"}|})
    = {|field "fuel" must be an integer|})

let test_response_shapes () =
  check_str "grade response"
    {|{"id":"r1","op":"grade","cached":true,"result":{"x":1}}|}
    (Proto.grade_response ~id:"r1" ~cached:true ~fuel:None {|{"x":1}|});
  check_str "fuel appears when budgeted"
    {|{"op":"grade","cached":false,"fuel":42,"result":{}}|}
    (Proto.grade_response ~cached:false ~fuel:(Some 42) "{}");
  check_str "error escapes the message"
    {|{"op":"error","error":"bad \"x\""}|}
    (Proto.error_response {|bad "x"|});
  (* response lines must themselves parse as JSON *)
  check "responses are valid JSON" true
    (parses (Proto.grade_response ~id:"a\"b" ~cached:false ~fuel:None "{}")
    && parses (Proto.shutdown_response ~id:"z" ()))

(* ------------------------------------------------------------------ *)
(* Cache: LRU over cache keys *)

let test_cache_lru () =
  let c = Cache.create ~cap:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check_int "size" 2 (Cache.size c);
  (* touching [a] makes [b] the eviction victim *)
  check "find bumps recency" true (Cache.find c "a" = Some 1);
  Cache.add c "c" 3;
  check_int "capacity held" 2 (Cache.size c);
  check "b evicted" false (Cache.mem c "b");
  check "a survived" true (Cache.mem c "a");
  check "c present" true (Cache.mem c "c")

let test_cache_replace_and_disable () =
  let c = Cache.create ~cap:2 in
  Cache.add c "k" 1;
  Cache.add c "k" 2;
  check_int "replace does not grow" 1 (Cache.size c);
  check "replaced value" true (Cache.find c "k" = Some 2);
  let off = Cache.create ~cap:0 in
  Cache.add off "k" 1;
  check_int "cap 0 stores nothing" 0 (Cache.size off);
  check "cap 0 never hits" true (Cache.find off "k" = None)

let test_cache_churn () =
  (* a long insert/lookup churn keeps exactly the cap newest-or-touched *)
  let c = Cache.create ~cap:8 in
  for i = 0 to 99 do
    Cache.add c (string_of_int i) i;
    ignore (Cache.find c (string_of_int (max 0 (i - 3))))
  done;
  check_int "cap respected" 8 (Cache.size c);
  check "newest present" true (Cache.mem c "99");
  check "oldest gone" false (Cache.mem c "0")

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_percentiles () =
  let m = Metrics.create () in
  check "empty percentile is 0" true (Metrics.percentile m 0.95 = 0.0);
  (* 1..100 ms: nearest-rank p50 is the 50th sample, p95 the 95th *)
  for i = 1 to 100 do
    Metrics.record_grade m ~outcome:"graded" ~hit:(i mod 2 = 0)
      ~ms:(float_of_int i)
  done;
  check "p50" true (Metrics.percentile m 0.50 = 50.0);
  check "p95" true (Metrics.percentile m 0.95 = 95.0);
  Metrics.observe_queue_depth m 7;
  Metrics.observe_queue_depth m 3;
  let s = Metrics.to_stats m ~cache_size:1 ~cache_cap:2 ~queue_depth:0 ~queue_cap:64 in
  check_int "grades" 100 s.Proto.grades;
  check_int "hits" 50 s.Proto.cache_hits;
  check_int "misses" 50 s.Proto.cache_misses;
  check_int "graded" 100 s.Proto.graded;
  check_int "queue max latches" 7 s.Proto.queue_max

(* ------------------------------------------------------------------ *)
(* Normalize: content addressing *)

let base_source = Spec.source_of_index Bundles.assignment1.Bundles.gen 0

let key src =
  fst
    (Normalize.cache_key ~assignment:"assignment1" ~fuel:None ~deadline_s:None
       ~with_tests:true src)

let test_fingerprint_collapses_names () =
  let fp = Normalize.fingerprint base_source in
  check "parses to an AST fingerprint" true fp.Normalize.ast;
  check_str "α-renaming preserved the key" (key base_source)
    (key (Mutate.alpha_rename ~seed:7 base_source));
  check_str "whitespace preserved the key" (key base_source)
    (key (Mutate.whitespace ~seed:7 base_source))

let test_key_scoping () =
  let k = key base_source in
  let other ~assignment ~fuel ~with_tests =
    fst
      (Normalize.cache_key ~assignment ~fuel ~deadline_s:None ~with_tests
         base_source)
  in
  check "assignment scopes the key" false
    (k = other ~assignment:"mitx-derivatives" ~fuel:None ~with_tests:true);
  check "fuel scopes the key" false
    (k = other ~assignment:"assignment1" ~fuel:(Some 100) ~with_tests:true);
  check "with_tests scopes the key" false
    (k = other ~assignment:"assignment1" ~fuel:None ~with_tests:false);
  check "KB revision is part of the key" true
    (let r = Bundles.revision () in
     String.length r = 32 && contains ~sub:r k)

let test_fingerprint_raw_fallback () =
  let fp = Normalize.fingerprint "int int int (((" in
  check "unparseable falls back to raw bytes" false fp.Normalize.ast;
  check "raw fallback is byte-exact" false
    (Normalize.fingerprint "int int int ((( " = fp)

let prop_mutants_share_key =
  (* ≥60 generated mutants across all twelve assignment spaces: each
     α-renamed / re-flowed variant must land on its base's cache key. *)
  let gen =
    QCheck.Gen.(
      let* bi = int_bound (List.length Bundles.all - 1) in
      let b = List.nth Bundles.all bi in
      let* idx = int_bound (Spec.size b.Bundles.gen - 1) in
      let* seed = int_bound 10_000 in
      return (bi, idx, seed))
  in
  let print (bi, idx, seed) =
    let b = List.nth Bundles.all bi in
    Printf.sprintf "%s #%d seed %d" b.Bundles.grading.Jfeed_core.Grader.a_id
      idx seed
  in
  QCheck.Test.make ~count:60 ~name:"mutants map to the base cache key"
    (QCheck.make ~print gen)
    (fun (bi, idx, seed) ->
      let b = List.nth Bundles.all bi in
      let id = b.Bundles.grading.Jfeed_core.Grader.a_id in
      let src = Spec.source_of_index b.Bundles.gen idx in
      let key src =
        fst
          (Normalize.cache_key ~assignment:id ~fuel:None ~deadline_s:None
             ~with_tests:true src)
      in
      let k = key src in
      key (Mutate.alpha_rename ~seed src) = k
      && key (Mutate.whitespace ~seed src) = k
      && key (Mutate.rename_and_reflow ~seed src) = k)

(* ------------------------------------------------------------------ *)
(* Server: end-to-end sessions over a pipe pair *)

let run_session ?(config = Server.default_config) lines =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        let oc = Unix.out_channel_of_descr resp_w in
        let outcome = Server.serve_fd config req_r oc in
        (try flush oc with Sys_error _ -> ());
        Unix.close resp_w;
        outcome)
  in
  let oc = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  Unix.close req_w;
  let ic = Unix.in_channel_of_descr resp_r in
  let rec collect acc =
    match input_line ic with
    | l -> collect (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = collect [] in
  let outcome = Domain.join server in
  Unix.close req_r;
  Unix.close resp_r;
  (outcome, responses)

let grade_line ?id src =
  Printf.sprintf {|{"op":"grade",%s"assignment":"assignment1","source":"%s"}|}
    (match id with Some i -> Printf.sprintf {|"id":"%s",|} i | None -> "")
    (Jfeed_core.Feedback.json_escape src)

(* The response's feedback payload: everything from "result": on. *)
let payload_of line =
  match index_of ~sub:{|"result":|} line with
  | Some i -> String.sub line i (String.length line - i)
  | None -> Alcotest.fail ("no result payload in: " ^ line)

let cached_of line =
  if contains ~sub:{|"cached":true|} line then true
  else if contains ~sub:{|"cached":false|} line then false
  else Alcotest.fail ("no cached marker in: " ^ line)

let test_session_cached_mutants () =
  (* 60 mutants of one submission: every one must be served from the
     cache (or its in-flight twin) with a byte-identical payload. *)
  let mutants =
    List.init 60 (fun i ->
        match i mod 3 with
        | 0 -> Mutate.alpha_rename ~seed:i base_source
        | 1 -> Mutate.whitespace ~seed:i base_source
        | _ -> Mutate.rename_and_reflow ~seed:i base_source)
  in
  let lines =
    (grade_line ~id:"base" base_source
    :: List.mapi (fun i m -> grade_line ~id:(Printf.sprintf "m%d" i) m) mutants)
    @ [ {|{"op":"stats"}|}; {|{"op":"shutdown"}|} ]
  in
  let outcome, responses = run_session lines in
  check "session ended by shutdown" true (outcome = `Shutdown);
  check_int "one response per request" (List.length lines)
    (List.length responses);
  let grades = List.filteri (fun i _ -> i <= 60) responses in
  let base = List.hd grades in
  check "first serving is a miss" false (cached_of base);
  let expected = payload_of base in
  List.iteri
    (fun i r ->
      check (Printf.sprintf "mutant %d cached" i) true (cached_of r);
      check_str
        (Printf.sprintf "mutant %d payload byte-identical" i)
        expected (payload_of r))
    (List.tl grades);
  let stats = List.nth responses 61 in
  check "60 hits" true (contains ~sub:{|"hits":60,"misses":1|} stats)

let test_session_survives_malformed () =
  let outcome, responses =
    run_session
      [
        "garbage";
        {|{"op":"grade","id":"g"}|};
        {|{"op":"grade","id":"ok","assignment":"nope","source":"x"}|};
        grade_line ~id:"real" base_source;
        {|{"op":"stats","id":"s"}|};
        {|{"op":"shutdown","id":"z"}|};
      ]
  in
  check "shutdown reached" true (outcome = `Shutdown);
  check_int "all requests answered" 6 (List.length responses);
  check "malformed line → error response" true
    (contains ~sub:{|"op":"error"|} (List.nth responses 0));
  check "id echoed on field error" true
    (String.starts_with ~prefix:{|{"id":"g","op":"error"|}
       (List.nth responses 1));
  check "unknown assignment is an error, not a crash" true
    (String.starts_with ~prefix:{|{"id":"ok","op":"error"|}
       (List.nth responses 2));
  check "the daemon still grades afterwards" true
    (String.starts_with ~prefix:{|{"id":"real","op":"grade","cached":false|}
       (List.nth responses 3))

let test_session_eof_without_shutdown () =
  let outcome, responses = run_session [ grade_line base_source ] in
  check "EOF ends the connection" true (outcome = `Eof);
  check_int "the grade was still answered" 1 (List.length responses)

let test_session_parallel_determinism () =
  (* The same mixed stream through --jobs 1 and --jobs 4 must produce
     byte-identical response lines: the pool merge is index-ordered and
     the budget is per request. *)
  let srcs =
    List.init 8 (fun i ->
        Spec.source_of_index Bundles.assignment1.Bundles.gen (i * 11))
  in
  let lines =
    List.mapi (fun i s -> grade_line ~id:(string_of_int i) s) srcs
    @ [ {|{"op":"shutdown"}|} ]
  in
  let run jobs =
    snd (run_session ~config:{ Server.default_config with jobs } lines)
  in
  check "jobs-invariant responses" true (run 1 = run 4)

let suite =
  [
    Alcotest.test_case "json values parse" `Quick test_json_values;
    Alcotest.test_case "json rejects" `Quick test_json_rejects;
    Alcotest.test_case "request parsing" `Quick test_request_parsing;
    Alcotest.test_case "request errors keep the id" `Quick test_request_errors;
    Alcotest.test_case "response shapes" `Quick test_response_shapes;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru;
    Alcotest.test_case "cache replace and cap 0" `Quick
      test_cache_replace_and_disable;
    Alcotest.test_case "cache churn" `Quick test_cache_churn;
    Alcotest.test_case "metrics percentiles" `Quick test_metrics_percentiles;
    Alcotest.test_case "fingerprint collapses naming" `Quick
      test_fingerprint_collapses_names;
    Alcotest.test_case "cache key scoping" `Quick test_key_scoping;
    Alcotest.test_case "raw fallback for unparseable" `Quick
      test_fingerprint_raw_fallback;
    QCheck_alcotest.to_alcotest prop_mutants_share_key;
    Alcotest.test_case "60 mutants byte-identical via cache" `Slow
      test_session_cached_mutants;
    Alcotest.test_case "malformed lines never kill the daemon" `Quick
      test_session_survives_malformed;
    Alcotest.test_case "EOF without shutdown" `Quick
      test_session_eof_without_shutdown;
    Alcotest.test_case "responses are jobs-invariant" `Slow
      test_session_parallel_determinism;
  ]
