(** Tests for the functional-test runner and the synthetic data. *)

open Jfeed_ftest

let suite_echo =
  {
    Runner.entry = "echo";
    max_steps = 10_000;
    cases =
      [
        { Runner.label = "one"; args = [ Jfeed_interp.Value.Vint 1 ]; files = [] };
        { Runner.label = "two"; args = [ Jfeed_interp.Value.Vint 2 ]; files = [] };
      ];
  }

let echo_ok =
  Jfeed_java.Parser.parse_program
    "void echo(int x) { System.out.println(x); }"

let echo_off =
  Jfeed_java.Parser.parse_program
    "void echo(int x) { System.out.println(x + 1); }"

let echo_crash =
  Jfeed_java.Parser.parse_program
    "void echo(int x) { if (x == 2) { int y = 1 / 0; } System.out.println(x); }"

let test_expected_outputs () =
  Alcotest.(check (list string))
    "per case" [ "1\n"; "2\n" ]
    (Runner.expected_outputs suite_echo echo_ok)

let test_pass_fail () =
  let expected = Runner.expected_outputs suite_echo echo_ok in
  Alcotest.(check bool) "reference passes" true
    (Runner.passes suite_echo ~expected echo_ok);
  (match Runner.run suite_echo ~expected echo_off with
  | Runner.Fail { case = "one"; _ } -> ()
  | _ -> Alcotest.fail "wrong output must fail on the first case");
  match Runner.run suite_echo ~expected echo_crash with
  | Runner.Fail { case = "two"; reason } ->
      Alcotest.(check bool) "reports the error" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "crash on the second case expected"

let test_reference_failure_rejected () =
  Alcotest.(check bool) "broken reference raises" true
    (try
       ignore (Runner.expected_outputs suite_echo echo_crash);
       false
     with Invalid_argument _ -> true)

let test_olympics_data () =
  let records = Data.olympics_records ~n:25 ~seed:3 in
  Alcotest.(check int) "record count" 25 (List.length records);
  Alcotest.(check bool) "deterministic" true
    (Data.olympics_records ~n:25 ~seed:3 = records);
  let file = Data.olympics_file records in
  Alcotest.(check int) "five tokens per record, newline separated" 25
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' file)));
  List.iter
    (fun r ->
      Alcotest.(check bool) "medal in range" true
        (r.Data.medal >= 1 && r.Data.medal <= 3))
    records

let test_curated_properties () =
  let r = Data.olympics_curated in
  (* The adversarial properties the RIT tests depend on. *)
  Alcotest.(check bool) "Usain Bolt has medals" true
    (Data.medals_by_athlete r "Usain" "Bolt" > 0);
  Alcotest.(check bool) "same first name, different last names" true
    (Data.medals_by_athlete r "Usain" "Phelps" > 0);
  Alcotest.(check bool) "same last name, different first names" true
    (Data.medals_by_athlete r "Carl" "Phelps" > 0);
  Alcotest.(check bool) "gold medals in 2008" true
    (Data.gold_medals_in_year r 2008 > 0);
  (* First-name-only matching must differ from full-name matching. *)
  let usain_any =
    List.length (List.filter (fun x -> x.Data.first = "Usain") r)
  in
  Alcotest.(check bool) "first-name matching is wrong" true
    (usain_any <> Data.medals_by_athlete r "Usain" "Bolt")

let suite =
  [
    Alcotest.test_case "expected outputs" `Quick test_expected_outputs;
    Alcotest.test_case "pass / fail verdicts" `Quick test_pass_fail;
    Alcotest.test_case "broken reference rejected" `Quick
      test_reference_failure_rejected;
    Alcotest.test_case "olympics generator" `Quick test_olympics_data;
    Alcotest.test_case "curated dataset properties" `Quick
      test_curated_properties;
  ]
