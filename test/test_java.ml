(** Tests for the Java-subset frontend: lexer, parser, pretty-printer and
    the variable analyses.  The pretty-printer round-trip property
    ([parse (render e) = e]) is the backbone of the expression matcher —
    templates match against canonical renderings. *)

open Jfeed_java

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let tokens src =
  List.filter_map
    (fun (t : Lexer.located) ->
      match t.tok with Lexer.Eof -> None | tok -> Some tok)
    (Lexer.tokenize src)

let test_lex_basic () =
  Alcotest.(check int) "count" 5 (List.length (tokens "int x = 42;"));
  (match tokens "x <= y" with
  | [ Lexer.Ident "x"; Lexer.Punct "<="; Lexer.Ident "y" ] -> ()
  | _ -> Alcotest.fail "<= must lex as one token");
  match tokens "i+++j" with
  | [ Lexer.Ident "i"; Lexer.Punct "++"; Lexer.Punct "+"; Lexer.Ident "j" ] ->
      ()
  | _ -> Alcotest.fail "maximal munch on ++"

let test_lex_literals () =
  (match tokens "3.5 10 'a' \"hi\\n\" true" with
  | [
   Lexer.Double_literal 3.5;
   Lexer.Int_literal 10;
   Lexer.Char_literal 'a';
   Lexer.String_literal "hi\n";
   Lexer.Keyword "true";
  ] ->
      ()
  | _ -> Alcotest.fail "literal forms");
  match tokens "1e3 2L 4.0f" with
  | [ Lexer.Double_literal 1000.0; Lexer.Int_literal 2; Lexer.Double_literal 4.0 ]
    ->
      ()
  | _ -> Alcotest.fail "suffixed literals"

let test_lex_comments () =
  Alcotest.(check int) "line comment" 2
    (List.length (tokens "x // the rest is gone\ny"));
  Alcotest.(check int) "block comment" 2
    (List.length (tokens "x /* y z\n w */ y"))

let test_lex_errors () =
  (try
     ignore (Lexer.tokenize "\"unterminated");
     Alcotest.fail "expected a lex error"
   with Lexer.Lex_error (_, 1, _) -> ());
  try
    ignore (Lexer.tokenize "int x = #;");
    Alcotest.fail "expected a lex error"
  with Lexer.Lex_error (_, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let expr = Parser.parse_expression

let test_parse_precedence () =
  Alcotest.(check bool)
    "mul binds tighter" true
    (expr "1 + 2 * 3"
    = Ast.Binary (Ast.Add, Ast.Int_lit 1, Ast.Binary (Ast.Mul, Ast.Int_lit 2, Ast.Int_lit 3)));
  Alcotest.(check bool)
    "relational vs and" true
    (expr "a < b && c"
    = Ast.Binary
        (Ast.And, Ast.Binary (Ast.Lt, Ast.Var "a", Ast.Var "b"), Ast.Var "c"));
  Alcotest.(check bool)
    "assignment right assoc" true
    (expr "a = b = 1"
    = Ast.Assign (Ast.Set, Ast.Var "a", Ast.Assign (Ast.Set, Ast.Var "b", Ast.Int_lit 1)));
  Alcotest.(check bool)
    "left assoc subtraction" true
    (expr "5 - 2 - 1"
    = Ast.Binary (Ast.Sub, Ast.Binary (Ast.Sub, Ast.Int_lit 5, Ast.Int_lit 2), Ast.Int_lit 1))

let test_parse_postfix () =
  Alcotest.(check bool)
    "array access" true
    (expr "a[i + 1]" = Ast.Index (Ast.Var "a", Ast.Binary (Ast.Add, Ast.Var "i", Ast.Int_lit 1)));
  Alcotest.(check bool)
    "field" true
    (expr "a.length" = Ast.Field (Ast.Var "a", "length"));
  Alcotest.(check bool)
    "method chain" true
    (expr "System.out.println(x)"
    = Ast.Call (Some (Ast.Field (Ast.Var "System", "out")), "println", [ Ast.Var "x" ]));
  Alcotest.(check bool)
    "new scanner" true
    (expr "new Scanner(new File(\"f\"))"
    = Ast.New (Ast.Tclass "Scanner", [ Ast.New (Ast.Tclass "File", [ Ast.Str_lit "f" ]) ]));
  Alcotest.(check bool)
    "new array" true
    (expr "new int[n]" = Ast.New_array (Ast.Tprim "int", [ Ast.Var "n" ]));
  Alcotest.(check bool)
    "post incr" true
    (expr "i++" = Ast.Incdec (Ast.Post_incr, Ast.Var "i"));
  Alcotest.(check bool)
    "cast" true
    (expr "(int) Math.pow(2, 3)"
    = Ast.Cast (Ast.Tprim "int", Ast.Call (Some (Ast.Var "Math"), "pow", [ Ast.Int_lit 2; Ast.Int_lit 3 ])))

let test_parse_statements () =
  (match Parser.parse_statement "if (x > 0) y = 1; else y = 2;" with
  | Ast.Sif (_, Ast.Sexpr _, Some (Ast.Sexpr _)) -> ()
  | _ -> Alcotest.fail "if/else shape");
  (match Parser.parse_statement "for (int i = 0; i < n; i++) sum += i;" with
  | Ast.Sfor (Some (Ast.For_decl [ _ ]), Some _, [ _ ], Ast.Sexpr _) -> ()
  | _ -> Alcotest.fail "for shape");
  (match Parser.parse_statement "do { x--; } while (x > 0);" with
  | Ast.Sdo (Ast.Sblock [ _ ], _) -> ()
  | _ -> Alcotest.fail "do-while shape");
  (match Parser.parse_statement "int a = 1, b = 2;" with
  | Ast.Sdecl [ d1; d2 ] ->
      Alcotest.(check string) "first declarator" "a" d1.Ast.d_name;
      Alcotest.(check string) "second declarator" "b" d2.Ast.d_name
  | _ -> Alcotest.fail "multi declarator");
  match
    Parser.parse_statement
      "switch (x) { case 1: y = 1; break; default: y = 0; }"
  with
  | Ast.Sswitch (_, [ c1; c2 ]) ->
      Alcotest.(check bool) "case label" true (c1.Ast.case_label <> None);
      Alcotest.(check bool) "default" true (c2.Ast.case_label = None)
  | _ -> Alcotest.fail "switch shape"

let test_parse_program_forms () =
  let bare = Parser.parse_program "void f() { }  int g(int x) { return x; }" in
  Alcotest.(check int) "two methods" 2 (List.length bare.Ast.methods);
  let wrapped =
    Parser.parse_program
      "import java.util.Scanner;\n\
       public class Main { public static void f() { } }"
  in
  Alcotest.(check int) "class wrapper" 1 (List.length wrapped.Ast.methods);
  let m = List.hd wrapped.Ast.methods in
  Alcotest.(check string) "method name" "f" m.Ast.m_name

let test_parse_errors () =
  (try
     ignore (Parser.parse_program "void f() { int = 5; }");
     Alcotest.fail "expected parse error"
   with Parser.Parse_error (_, 1, _) -> ());
  try
    ignore (Parser.parse_program "void f() { x = ; }");
    Alcotest.fail "expected parse error"
  with Parser.Parse_error (_, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Pretty-printing round trip                                          *)

(* A generator of well-formed expressions of the subset. *)
let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "i"; "sum"; "x" ] >|= fun v -> Ast.Var v in
  let leaf =
    oneof
      [
        (int_bound 100 >|= fun n -> Ast.Int_lit n);
        var;
        (oneofl [ true; false ] >|= fun b -> Ast.Bool_lit b);
        return (Ast.Str_lit "s");
        return (Ast.Field (Ast.Var "a", "length"));
      ]
  in
  let binop =
    oneofl
      Ast.[ Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne; And; Or ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (3, leaf);
               ( 4,
                 let* op = binop in
                 let* l = self (n / 2) in
                 let* r = self (n / 2) in
                 return (Ast.Binary (op, l, r)) );
               ( 1,
                 let* e = self (n / 2) in
                 return (Ast.Unary (Ast.Neg, e)) );
               ( 1,
                 let* e = self (n / 2) in
                 return (Ast.Unary (Ast.Not, e)) );
               ( 1,
                 let* a = var in
                 let* i = self (n / 2) in
                 return (Ast.Index (a, i)) );
               ( 1,
                 let* c = self (n / 3) in
                 let* t = self (n / 3) in
                 let* f = self (n / 3) in
                 return (Ast.Ternary (c, t, f)) );
               ( 1,
                 let* l = var in
                 let* op = oneofl Ast.[ Set; Add_eq; Mul_eq ] in
                 let* r = self (n / 2) in
                 return (Ast.Assign (op, l, r)) );
               ( 1,
                 let* args = list_size (int_bound 2) (self (n / 3)) in
                 return (Ast.Call (None, "f", args)) );
             ])

let prop_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"parse (render e) = e"
    (QCheck.make ~print:Pretty.expr gen_expr) (fun e ->
      try Parser.parse_expression (Pretty.expr e) = e
      with _ -> false)

let prop_statement_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse (render stmt) = stmt"
    (QCheck.make
       ~print:(fun e -> Pretty.stmt (Ast.Sexpr e))
       gen_expr)
    (fun e ->
      let s = Ast.Sexpr e in
      try Parser.parse_statement (Pretty.stmt s) = s with _ -> false)

let test_canonical_forms () =
  let check src want =
    Alcotest.(check string) src want (Pretty.expr (expr src))
  in
  check "i<=a.length" "i <= a.length";
  check "odd+=a[i]" "odd += a[i]";
  check "(1+2)*3" "(1 + 2) * 3";
  check "1+(2*3)" "1 + 2 * 3";
  check "System.out.println( odd )" "System.out.println(odd)";
  check "i%2==1" "i % 2 == 1";
  check "-x + +y" "-x + +y";
  check "a - (b - c)" "a - (b - c)"

let test_method_render () =
  let src = "int f(int x) {\n    return x + 1;\n}" in
  let prog = Parser.parse_program src in
  Alcotest.(check string) "method render" src
    (Pretty.meth (List.hd prog.Ast.methods))

(* ------------------------------------------------------------------ *)
(* Variable analyses                                                   *)

let test_vars () =
  let e = expr "System.out.println(a[i] + Math.abs(x))" in
  Alcotest.(check (list string)) "vars" [ "a"; "i"; "x" ] (Ast.vars_of_expr e);
  let assign = expr "a[i] = b + 1" in
  Alcotest.(check (list string)) "assigned" [ "a" ] (Ast.assigned_vars assign);
  Alcotest.(check (list string)) "reads of array store" [ "a"; "i"; "b" ]
    (Ast.read_vars assign);
  let plain = expr "x = y + 1" in
  Alcotest.(check (list string)) "plain write" [ "x" ] (Ast.assigned_vars plain);
  Alcotest.(check (list string)) "plain reads" [ "y" ] (Ast.read_vars plain);
  let compound = expr "x += y" in
  Alcotest.(check (list string)) "compound reads both" [ "x"; "y" ]
    (Ast.read_vars compound);
  let incr = expr "i++" in
  Alcotest.(check (list string)) "incr writes" [ "i" ] (Ast.assigned_vars incr);
  Alcotest.(check (list string)) "incr reads" [ "i" ] (Ast.read_vars incr)

let test_class_names_excluded () =
  let e = expr "new Scanner(new File(name))" in
  Alcotest.(check (list string)) "only the variable" [ "name" ]
    (Ast.vars_of_expr e)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lex_basic;
    Alcotest.test_case "lexer literals" `Quick test_lex_literals;
    Alcotest.test_case "lexer comments" `Quick test_lex_comments;
    Alcotest.test_case "lexer errors" `Quick test_lex_errors;
    Alcotest.test_case "parser precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser postfix forms" `Quick test_parse_postfix;
    Alcotest.test_case "parser statements" `Quick test_parse_statements;
    Alcotest.test_case "parser program forms" `Quick test_parse_program_forms;
    Alcotest.test_case "parser errors" `Quick test_parse_errors;
    Alcotest.test_case "canonical rendering" `Quick test_canonical_forms;
    Alcotest.test_case "method rendering" `Quick test_method_render;
    Alcotest.test_case "variable analyses" `Quick test_vars;
    Alcotest.test_case "class names excluded" `Quick test_class_names_excluded;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_statement_roundtrip;
  ]
