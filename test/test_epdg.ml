(** Tests for extended program dependence graph construction, anchored on
    the paper's Fig. 2a / Fig. 3 example and the design decisions of
    DESIGN.md §4 (single-iteration data flow, innermost control edges). *)

open Jfeed_pdg
module G = Jfeed_graph.Digraph

let graph_of src =
  match Epdg.of_source src with
  | [ (_, g) ] -> g
  | gs -> Alcotest.failf "expected one method, got %d" (List.length gs)

let find g text =
  match
    List.find_opt (fun v -> Epdg.node_text g v = text) (G.nodes g.Epdg.graph)
  with
  | Some v -> v
  | None -> Alcotest.failf "no node %S in graph" text

let has_edge g a b e = G.mem_edge g.Epdg.graph (find g a) (find g b) e

let fig2a =
  {|
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
}
|}

let test_fig3_nodes () =
  let g = graph_of fig2a in
  Alcotest.(check int) "node count" 12 (G.node_count g.Epdg.graph);
  Alcotest.(check string) "param decl text" "int[] a"
    (Epdg.node_text g (find g "int[] a"));
  Alcotest.(check bool) "decl type" true
    (Epdg.node_type g (find g "int[] a") = Epdg.Decl);
  Alcotest.(check bool) "cond type" true
    (Epdg.node_type g (find g "i <= a.length") = Epdg.Cond);
  Alcotest.(check bool) "call type" true
    (Epdg.node_type g (find g "System.out.println(odd)") = Epdg.Call);
  Alcotest.(check bool) "assign type" true
    (Epdg.node_type g (find g "odd += a[i]") = Epdg.Assign)

let test_fig3_edges () =
  let g = graph_of fig2a in
  (* Data edges of Fig. 3. *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (a ^ " -Data-> " ^ b) true (has_edge g a b Epdg.Data))
    [
      ("int[] a", "i <= a.length");
      ("int[] a", "odd += a[i]");
      ("int[] a", "even *= a[i]");
      ("even = 0", "even *= a[i]");
      ("odd = 0", "odd += a[i]");
      ("i = 0", "i <= a.length");
      ("i = 0", "i % 2 == 1");
      ("i = 0", "odd += a[i]");
      ("i = 0", "i++");
      ("odd += a[i]", "System.out.println(odd)");
      ("even *= a[i]", "System.out.println(even)");
    ];
  (* Ctrl edges: only from the innermost controlling condition. *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (a ^ " -Ctrl-> " ^ b) true (has_edge g a b Epdg.Ctrl))
    [
      ("i <= a.length", "i % 2 == 1");
      ("i <= a.length", "i++");
      ("i % 2 == 1", "odd += a[i]");
    ];
  (* Excluded edges (the paper's §III-A discussion). *)
  Alcotest.(check bool) "no zero-iteration bypass odd=0 -> println" false
    (has_edge g "odd = 0" "System.out.println(odd)" Epdg.Data);
  Alcotest.(check bool) "no loop-carried i++ -> odd access" false
    (has_edge g "i++" "odd += a[i]" Epdg.Data);
  Alcotest.(check bool) "no transitive ctrl loop -> accumulation" false
    (has_edge g "i <= a.length" "odd += a[i]" Epdg.Ctrl)

let test_while_equals_for () =
  (* A while-loop formulation produces the same dependence structure. *)
  let g =
    graph_of
      {|
void f(int[] a) {
  int s = 0;
  int i = 0;
  while (i < a.length) {
    s += a[i];
    i++;
  }
  System.out.println(s);
}
|}
  in
  Alcotest.(check bool) "init feeds cond" true
    (has_edge g "i = 0" "i < a.length" Epdg.Data);
  Alcotest.(check bool) "cond controls body" true
    (has_edge g "i < a.length" "s += a[i]" Epdg.Ctrl);
  Alcotest.(check bool) "cond controls update" true
    (has_edge g "i < a.length" "i++" Epdg.Ctrl);
  Alcotest.(check bool) "accumulation reaches print" true
    (has_edge g "s += a[i]" "System.out.println(s)" Epdg.Data)

let test_if_else_merge () =
  let g =
    graph_of
      {|
void f(int c) {
  int x = 0;
  if (c > 0)
    x = 1;
  else
    x = 2;
  System.out.println(x);
}
|}
  in
  Alcotest.(check bool) "then reaches print" true
    (has_edge g "x = 1" "System.out.println(x)" Epdg.Data);
  Alcotest.(check bool) "else reaches print" true
    (has_edge g "x = 2" "System.out.println(x)" Epdg.Data);
  Alcotest.(check bool) "killed initial def" false
    (has_edge g "x = 0" "System.out.println(x)" Epdg.Data);
  Alcotest.(check bool) "cond controls else branch too" true
    (has_edge g "c > 0" "x = 2" Epdg.Ctrl)

let test_if_no_else_kills () =
  (* Design decision 1: no bypass edge around an else-less if. *)
  let g =
    graph_of
      {|
void f(int c) {
  int x = 0;
  if (c > 0)
    x = 1;
  System.out.println(x);
}
|}
  in
  Alcotest.(check bool) "body def reaches print" true
    (has_edge g "x = 1" "System.out.println(x)" Epdg.Data);
  Alcotest.(check bool) "initial def killed by assumed body" false
    (has_edge g "x = 0" "System.out.println(x)" Epdg.Data)

let test_do_while () =
  let g =
    graph_of
      {|
void f(int k) {
  int n = 0;
  do {
    n++;
  } while (n < k);
  System.out.println(n);
}
|}
  in
  Alcotest.(check bool) "cond controls body" true
    (has_edge g "n < k" "n++" Epdg.Ctrl);
  (* The condition is evaluated after the body: its data comes from the
     update, not the init. *)
  Alcotest.(check bool) "update reaches cond" true
    (has_edge g "n++" "n < k" Epdg.Data);
  Alcotest.(check bool) "init does not reach cond" false
    (has_edge g "n = 0" "n < k" Epdg.Data)

let test_weak_array_update () =
  (* Array element stores are weak updates: earlier defs survive. *)
  let g =
    graph_of
      {|
void f(int[] a) {
  a[0] = 1;
  a[1] = 2;
  System.out.println(a[0]);
}
|}
  in
  Alcotest.(check bool) "first store survives" true
    (has_edge g "a[0] = 1" "System.out.println(a[0])" Epdg.Data);
  Alcotest.(check bool) "second store also reaches" true
    (has_edge g "a[1] = 2" "System.out.println(a[0])" Epdg.Data)

let test_break_return_nodes () =
  let g =
    graph_of
      {|
int f(int k) {
  while (true) {
    if (k > 0)
      break;
  }
  return k;
}
|}
  in
  Alcotest.(check bool) "break node" true
    (Epdg.node_type g (find g "break") = Epdg.Break);
  Alcotest.(check bool) "break controlled by if" true
    (has_edge g "k > 0" "break" Epdg.Ctrl);
  Alcotest.(check bool) "return node" true
    (Epdg.node_type g (find g "return k") = Epdg.Return);
  Alcotest.(check bool) "param reaches return" true
    (has_edge g "int k" "return k" Epdg.Data)

let test_decl_without_init () =
  (* Uninitialized declarations produce no node; the first assignment is
     the definition. *)
  let g =
    graph_of {|
void f() {
  int x;
  x = 3;
  System.out.println(x);
}
|}
  in
  Alcotest.(check int) "three nodes" 2 (G.node_count g.Epdg.graph |> fun n -> n - 0)
  |> ignore;
  Alcotest.(check bool) "assignment defines" true
    (has_edge g "x = 3" "System.out.println(x)" Epdg.Data)

let test_multiple_methods () =
  let gs =
    Epdg.of_source
      {|
int helper(int x) { return x + 1; }
void main2(int k) { System.out.println(helper(k)); }
|}
  in
  Alcotest.(check (list string))
    "method names" [ "helper"; "main2" ] (List.map fst gs)

let test_to_dot () =
  let g = graph_of fig2a in
  let dot = Epdg.to_dot g in
  Alcotest.(check bool) "dot output" true (String.length dot > 100)

let suite =
  [
    Alcotest.test_case "Fig. 3 nodes" `Quick test_fig3_nodes;
    Alcotest.test_case "Fig. 3 edges" `Quick test_fig3_edges;
    Alcotest.test_case "while ≡ for" `Quick test_while_equals_for;
    Alcotest.test_case "if/else merge" `Quick test_if_else_merge;
    Alcotest.test_case "else-less if kills" `Quick test_if_no_else_kills;
    Alcotest.test_case "do-while" `Quick test_do_while;
    Alcotest.test_case "weak array updates" `Quick test_weak_array_update;
    Alcotest.test_case "break and return" `Quick test_break_return_nodes;
    Alcotest.test_case "decl without init" `Quick test_decl_without_init;
    Alcotest.test_case "multiple methods" `Quick test_multiple_methods;
    Alcotest.test_case "dot export" `Quick test_to_dot;
  ]
