(** The telemetry layer: span/counter recording, the disabled sink,
    Chrome/summary serialization, and the headline guarantee — tracing
    observes grading without ever steering it (traced output is
    byte-identical to untraced, at any pool width). *)

open Jfeed_kb
open Jfeed_robust
module Trace = Jfeed_trace.Trace
module Proto = Jfeed_service.Proto
module Metrics = Jfeed_service.Metrics

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* The disabled sink *)

let test_disabled_is_nil () =
  let t = Trace.disabled in
  check "disabled" true (not (Trace.enabled t));
  let r = Trace.span t "parse" (fun () -> 41 + 1) in
  Alcotest.(check int) "span is just the thunk" 42 r;
  Trace.count t "fuel" 99;
  Trace.add_attr t "k" "v";
  check "no spans" true (Trace.spans t = []);
  check "no counters" true (Trace.counters t = [])

let test_ambient_default_disabled () =
  check "ambient starts disabled" true (not (Trace.enabled (Trace.current ())));
  let t = Trace.create () in
  let seen = Trace.with_current t (fun () -> Trace.current ()) in
  check "with_current installs" true (Trace.enabled seen);
  check "restored after" true (not (Trace.enabled (Trace.current ())))

(* ------------------------------------------------------------------ *)
(* Span structure *)

let test_span_nesting () =
  let t = Trace.create () in
  Trace.span t "a" (fun () ->
      Trace.span t "b" (fun () -> Trace.add_attr t "k" "v");
      Trace.span t "c" (fun () -> ()));
  (match Trace.spans t with
  | [ a; b; c ] ->
      Alcotest.(check string) "names in begin order" "a-b-c"
        (String.concat "-" [ a.Trace.name; b.Trace.name; c.Trace.name ]);
      Alcotest.(check int) "a is a root" 0 a.Trace.parent;
      Alcotest.(check int) "b under a" a.Trace.sid b.Trace.parent;
      Alcotest.(check int) "c under a" a.Trace.sid c.Trace.parent;
      check "b carries the attr" true (b.Trace.attrs = [ ("k", "v") ])
  | spans ->
      Alcotest.failf "expected 3 spans, got %d" (List.length spans));
  (* An exception still closes the span (Fun.protect). *)
  (try Trace.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  let last = List.nth (Trace.spans t) 3 in
  check "exceptional span closed" true (last.Trace.dur_ns >= 0L)

let test_counters_accumulate_in_order () =
  let t = Trace.create () in
  Trace.count t "b" 2;
  Trace.count t "a" 1;
  Trace.count t "b" 3;
  Alcotest.(check (list (pair string int)))
    "first-use order, summed"
    [ ("b", 5); ("a", 1) ]
    (Trace.counters t)

let test_rollup_truncates_at_colon () =
  let t = Trace.create () in
  Trace.span t "match:p1" (fun () -> ());
  Trace.span t "match:p2" (fun () -> ());
  Trace.span t "parse" (fun () -> ());
  match Trace.rollup t with
  | [ ("match", (2, _)); ("parse", (1, _)) ] -> ()
  | r ->
      Alcotest.failf "unexpected rollup: %s"
        (String.concat ";" (List.map fst r))

(* ------------------------------------------------------------------ *)
(* Serialization: both outputs must be valid JSON (the service's own
   parser is the referee) with the advertised shape *)

let parse_ok what s =
  match Proto.parse_json s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s is not valid JSON: %s" what e

let test_chrome_json_shape () =
  let t = Trace.create () in
  Trace.span t "parse" (fun () ->
      Trace.span t {|match:p"1|} (fun () -> Trace.count t "fuel" 7));
  match parse_ok "chrome trace" (Trace.to_chrome_json ~pid:3 ~tid:9 t) with
  | Proto.Arr events ->
      Alcotest.(check int) "2 spans + 1 counter event" 3 (List.length events);
      let complete, counter =
        List.partition
          (fun e -> Proto.member "ph" e = Some (Proto.Str "X"))
          events
      in
      List.iter
        (fun e ->
          List.iter
            (fun f ->
              check (f ^ " present") true (Proto.member f e <> None))
            [ "name"; "ts"; "dur"; "pid"; "tid" ];
          check "pid echoed" true
            (Proto.member "pid" e = Some (Proto.Num 3.0));
          check "tid echoed" true
            (Proto.member "tid" e = Some (Proto.Num 9.0)))
        complete;
      (match counter with
      | [ c ] ->
          check "counter event" true
            (Proto.member "ph" c = Some (Proto.Str "C"))
      | _ -> Alcotest.fail "expected exactly one counter event")
  | _ -> Alcotest.fail "chrome trace must be a JSON array"

let test_summary_json_shape () =
  let t = Trace.create () in
  Trace.span t "match:p1" (fun () -> ());
  Trace.span t "match:p2" (fun () -> ());
  Trace.count t "fuel.matcher" 12;
  let j = parse_ok "summary" (Trace.summary_json t) in
  (match Proto.member "stages" j with
  | Some stages -> (
      match Proto.member "match" stages with
      | Some m ->
          check "aggregated n" true (Proto.member "n" m = Some (Proto.Num 2.0))
      | None -> Alcotest.fail "match stage missing")
  | None -> Alcotest.fail "stages missing");
  match Proto.member "counters" j with
  | Some c ->
      check "counter carried" true
        (Proto.member "fuel.matcher" c = Some (Proto.Num 12.0))
  | None -> Alcotest.fail "counters missing"

(* ------------------------------------------------------------------ *)
(* Budget stage accounting feeding the fuel.* counters *)

let test_budget_spent_by_sums () =
  let module Budget = Jfeed_budget.Budget in
  let b = Budget.create ~fuel:1_000 () in
  check "spend ok" true (Budget.spend b Budget.Matcher 40);
  check "spend ok" true (Budget.spend b Budget.Interp 7);
  check "spend ok" true (Budget.spend b Budget.Matcher 3);
  let by = Budget.spent_by b in
  Alcotest.(check int) "matcher share" 43 (List.assoc "matcher" by);
  Alcotest.(check int) "interp share" 7 (List.assoc "interp" by);
  Alcotest.(check int)
    "shares sum to spent" (Budget.spent b)
    (List.fold_left (fun a (_, n) -> a + n) 0 by)

(* ------------------------------------------------------------------ *)
(* The headline: tracing never steers grading.  Corpus = generated
   submissions, α-renamed variants (Jfeed_gen.Mutate) and hostile
   mutants (Test_robust.mutate), graded traced and untraced at pool
   widths 1 and 4. *)

let corpus_bundle = Bundles.esc_p2v2

let corpus =
  let spec = corpus_bundle.Bundles.gen in
  let size = Jfeed_gen.Spec.size spec in
  List.init 36 (fun i ->
      let idx = (i * 48271) mod size in
      let src = Jfeed_gen.Spec.source_of_index spec idx in
      let src =
        match i mod 3 with
        | 0 -> src
        | 1 -> Jfeed_gen.Mutate.alpha_rename ~seed:(i * 31 + 7) src
        | _ -> Test_robust.mutate (Test_robust.lcg ((i * 104729) + idx)) src
      in
      (Printf.sprintf "t%03d.java" i, Ok src))

let untraced_lines summary =
  List.map
    (fun (it : Pipeline.item) ->
      Outcome.to_json ~file:it.Pipeline.file it.Pipeline.outcome)
    summary.Pipeline.items

let test_tracing_is_pure_observation () =
  let run ~jobs ~traced =
    Pipeline.run_batch ~fuel:50_000 ~jobs ~traced corpus_bundle corpus
  in
  let base = untraced_lines (run ~jobs:1 ~traced:false) in
  List.iter
    (fun jobs ->
      let traced = run ~jobs ~traced:true in
      Alcotest.(check (list string))
        (Printf.sprintf "traced jobs:%d outcome bytes" jobs)
        base (untraced_lines traced);
      (* Every item's span tree is well formed: all spans closed,
         parents precede children, children nest inside their parent's
         interval (the monotonic clock makes this exact, not
         approximate). *)
      List.iter
        (fun (it : Pipeline.item) ->
          check "item traced" true (Trace.enabled it.Pipeline.trace);
          let spans = Trace.spans it.Pipeline.trace in
          check "has spans" true (spans <> []);
          let by_sid = Hashtbl.create 64 in
          List.iter
            (fun (s : Trace.span_info) -> Hashtbl.add by_sid s.Trace.sid s)
            spans;
          List.iteri
            (fun i (s : Trace.span_info) ->
              Alcotest.(check int) "sids are begin-ordered" (i + 1) s.Trace.sid;
              check "closed" true (s.Trace.dur_ns >= 0L);
              if s.Trace.parent <> 0 then begin
                let p = Hashtbl.find by_sid s.Trace.parent in
                check "parent opened first" true (p.Trace.sid < s.Trace.sid);
                check "starts inside parent" true
                  (s.Trace.start_ns >= p.Trace.start_ns);
                check "ends inside parent" true
                  (Int64.add s.Trace.start_ns s.Trace.dur_ns
                  <= Int64.add p.Trace.start_ns p.Trace.dur_ns)
              end)
            spans)
        traced.Pipeline.items)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Service metrics: exposition coherence and the slowlog ring *)

let test_prometheus_exposition () =
  let m = Metrics.create () in
  Metrics.record_request m;
  Metrics.record_grade m ~outcome:"graded" ~hit:false ~ms:0.7;
  Metrics.record_grade m ~outcome:"degraded" ~hit:true ~ms:30.0;
  Metrics.record_grade m ~outcome:"graded" ~hit:false ~ms:3000.0;
  let text =
    Metrics.to_prometheus m ~cache_size:2 ~cache_cap:10 ~queue_depth:1
      ~queue_cap:8
  in
  let lines = String.split_on_char '\n' text in
  let sample prefix =
    match
      List.find_opt
        (fun l ->
          String.length l > String.length prefix
          && String.sub l 0 (String.length prefix) = prefix
          && l.[String.length prefix] = ' ')
        lines
    with
    | Some l ->
        int_of_string
          (String.sub l
             (String.length prefix + 1)
             (String.length l - String.length prefix - 1))
    | None -> Alcotest.failf "no sample line for %s" prefix
  in
  let stats =
    Metrics.to_stats m ~cache_size:2 ~cache_cap:10 ~queue_depth:1
      ~queue_cap:8
  in
  Alcotest.(check int)
    "grades counter equals the stats snapshot" stats.Proto.grades
    (sample "jfeed_grades_total");
  Alcotest.(check int) "+Inf bucket = count" 3
    (sample {|jfeed_grade_latency_ms_bucket{le="+Inf"}|});
  Alcotest.(check int) "count sample" 3
    (sample "jfeed_grade_latency_ms_count");
  (* Cumulative buckets are monotone and the last finite bound holds
     every sub-1000ms observation. *)
  Alcotest.(check int) "le=1000 holds 2 of 3" 2
    (sample {|jfeed_grade_latency_ms_bucket{le="1000"}|});
  check "terminated by # EOF" true
    (match List.rev lines with "# EOF" :: _ -> true | _ -> false);
  check "histogram typed" true
    (List.mem "# TYPE jfeed_grade_latency_ms histogram" lines)

let test_slowlog_ring () =
  let m = Metrics.create () in
  for i = 1 to 25 do
    Metrics.record_slow m
      {
        Proto.s_rid = None;
        s_assignment = Printf.sprintf "a%d" i;
        s_ms = float_of_int ((i * 7919) mod 100);
        s_outcome = "graded";
        s_stages = [ ("parse", 0.1) ];
      }
  done;
  let log = Metrics.slowlog m in
  Alcotest.(check int) "capped" Metrics.slowlog_cap (List.length log);
  let ms = List.map (fun (e : Proto.slow_entry) -> e.Proto.s_ms) log in
  check "sorted slowest-first" true (List.sort (fun a b -> compare b a) ms = ms);
  (* Response renders as one valid JSON line. *)
  match Proto.parse_json (Proto.slowlog_response ~id:"x" log) with
  | Ok j ->
      check "n field" true
        (Proto.member "n" j = Some (Proto.Num (float_of_int Metrics.slowlog_cap)))
  | Error e -> Alcotest.failf "slowlog response not JSON: %s" e

let suite =
  [
    Alcotest.test_case "disabled sink is nil" `Quick test_disabled_is_nil;
    Alcotest.test_case "ambient trace install/restore" `Quick
      test_ambient_default_disabled;
    Alcotest.test_case "span nesting and attrs" `Quick test_span_nesting;
    Alcotest.test_case "counters accumulate in first-use order" `Quick
      test_counters_accumulate_in_order;
    Alcotest.test_case "rollup truncates at ':'" `Quick
      test_rollup_truncates_at_colon;
    Alcotest.test_case "chrome trace_event shape" `Quick
      test_chrome_json_shape;
    Alcotest.test_case "summary json shape" `Quick test_summary_json_shape;
    Alcotest.test_case "budget per-stage accounting" `Quick
      test_budget_spent_by_sums;
    Alcotest.test_case "tracing is pure observation (corpus, jobs 1 and 4)"
      `Slow test_tracing_is_pure_observation;
    Alcotest.test_case "prometheus exposition coherence" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "slowlog ring" `Quick test_slowlog_ring;
  ]
