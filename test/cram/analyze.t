The static-analysis CLI: `jfeed analyze` runs the five submission
passes over Java sources and cites method:line:col positions; a clean
file is silent and exits 0.

  $ cat > clean.java <<'EOF'
  > int sum(int n) {
  >     int s = 0;
  >     int i = 0;
  >     while (i < n) {
  >         s = s + i;
  >         i = i + 1;
  >     }
  >     return s;
  > }
  > EOF
  $ jfeed analyze clean.java

A file with findings prints one located line per diagnostic and exits 1.
This fixture trips all five passes:

  $ cat > buggy.java <<'EOF'
  > int check(int n) {
  >     int u;
  >     int dead = 1;
  >     dead = n;
  >     while (dead > 0) {
  >         u = n;
  >     }
  >     return u;
  >     n = 0;
  > }
  > 
  > int missing(int n) {
  >     if (n > 0) {
  >         return 1;
  >     }
  > }
  > EOF
  $ jfeed analyze buggy.java
  buggy.java:check:3:9: warning [dead-store] value stored in 'dead' is overwritten before it is ever read
  buggy.java:check:5:5: warning [suspicious-loop] loop condition only reads 'dead', which the loop body never updates
  buggy.java:check:8:5: error [use-before-init] variable 'u' may be read before it is initialized
  buggy.java:check:9:5: warning [unreachable] statement is unreachable
  buggy.java:missing:12:1: error [missing-return] method 'missing' returns int but can finish without returning a value
  [1]

Unparseable input is a diagnostic of the [parse] pass, never a crash:

  $ printf 'int f( {' > broken.java
  $ jfeed analyze broken.java
  broken.java:1:8: error [parse] parse error: expected a type but found "{"
  [1]

--json emits one object per file.  The diagnostic schema is pinned the
way perf.t pins the benchmark schemas — a key rename must diff here:

  $ jfeed analyze --json buggy.java clean.java > out.json
  [1]
  $ grep -c '"file":"clean.java","diagnostics":\[\]' out.json
  1
  $ grep -o '"[a-z_]*":' out.json | sort -u
  "col":
  "diagnostics":
  "file":
  "line":
  "message":
  "method":
  "pass":
  "severity":

Output is byte-identical at any worker-pool width, and a nonsensical
width is a usage error:

  $ jfeed generate assignment1 --index 0 | tail -n +2 > gen0.java
  $ jfeed generate assignment1 --index 7 | tail -n +2 > gen7.java
  $ jfeed analyze --json --jobs 1 buggy.java clean.java gen0.java gen7.java > j1.json 2>&1; echo "exit=$?"
  exit=1
  $ jfeed analyze --json --jobs 4 buggy.java clean.java gen0.java gen7.java > j4.json 2>&1; echo "exit=$?"
  exit=1
  $ cmp j1.json j4.json && echo identical
  identical
  $ jfeed analyze --jobs 0 buggy.java
  jfeed analyze: --jobs must be at least 1 (got 0)
  [2]

The KB linter: every shipped bundle validates clean (exit 0, one line
per assignment)...

  $ jfeed lint-kb
  assignment1: ok
  esc-LAB-3-P1-V1: ok
  esc-LAB-3-P2-V1: ok
  esc-LAB-3-P2-V2: ok
  esc-LAB-3-P3-V1: ok
  esc-LAB-3-P4-V1: ok
  esc-LAB-3-P3-V2: ok
  esc-LAB-3-P4-V2: ok
  mitx-derivatives: ok
  mitx-polynomials: ok
  rit-all-g-medals: ok
  rit-medals-by-ath: ok

...in JSON too:

  $ jfeed lint-kb assignment1 --json
  {"assignment":"assignment1","diagnostics":[]}

...and the deliberately broken fixture is flagged on every linter pass,
with exit 1:

  $ jfeed lint-kb --fixture-broken
  broken-fixture:compute: error [kb-duplicate] pattern id 'p_loop' is declared twice
  broken-fixture:compute: error [kb-structure] pattern p_loop: edge (0, 5) out of range
  broken-fixture:compute: error [kb-structure] pattern p_loop: self edge on node 1
  broken-fixture:compute: error [kb-unbound-placeholder] pattern 'p_loop': feedback (missing) placeholder %bound% is bound by none of the pattern's variables
  broken-fixture:compute: error [kb-unsat] pattern 'p_brk': node 0 is typed Break but its template '%x% = 0' matches neither "break" nor "continue" — no EPDG node can satisfy it
  broken-fixture:compute: error [kb-unknown-pattern] variant table keyed by unknown pattern id 'p_missing'
  broken-fixture:compute: error [kb-unsat] variant 'p_brk_alt' of 'p_missing': node 0 is typed Break but its template '%x% = 0' matches neither "break" nor "continue" — no EPDG node can satisfy it
  broken-fixture:compute: error [kb-unknown-pattern] constraint 'cx_ghost' names unknown pattern id 'p_ghost'
  broken-fixture:compute: error [kb-dangling-ref] constraint 'cx_range' refers to node 7 of pattern 'p_brk', which has only 1 node
  broken-fixture:compute: error [kb-unbound-placeholder] constraint 'cx_range': feedback (ok) placeholder %zz% is bound by none of the referenced patterns
  broken-fixture:compute: error [kb-dangling-ref] constraint 'cx_free': containment template variable %mystery% is bound by neither the main nor the supporting patterns
  [1]
