The static-analysis CLI: `jfeed analyze` runs the ten submission
passes — five flow passes plus five interval abstract-interpretation
passes — over Java sources and cites method:line:col positions; a
clean file is silent and exits 0.

  $ cat > clean.java <<'EOF'
  > int sum(int n) {
  >     int s = 0;
  >     int i = 0;
  >     while (i < n) {
  >         s = s + i;
  >         i = i + 1;
  >     }
  >     return s;
  > }
  > EOF
  $ jfeed analyze clean.java

A file with findings prints one located line per diagnostic and exits 1.
This fixture trips all five passes:

  $ cat > buggy.java <<'EOF'
  > int check(int n) {
  >     int u;
  >     int dead = 1;
  >     dead = n;
  >     while (dead > 0) {
  >         u = n;
  >     }
  >     return u;
  >     n = 0;
  > }
  > 
  > int missing(int n) {
  >     if (n > 0) {
  >         return 1;
  >     }
  > }
  > EOF
  $ jfeed analyze buggy.java
  buggy.java:check:3:9: warning [dead-store] value stored in 'dead' is overwritten before it is ever read
  buggy.java:check:5:5: warning [suspicious-loop] loop condition only reads 'dead', which the loop body never updates
  buggy.java:check:8:5: error [use-before-init] variable 'u' may be read before it is initialized
  buggy.java:check:9:5: warning [unreachable] statement is unreachable
  buggy.java:missing:12:1: error [missing-return] method 'missing' returns int but can finish without returning a value
  [1]

Unparseable input is a diagnostic of the [parse] pass, never a crash:

  $ printf 'int f( {' > broken.java
  $ jfeed analyze broken.java
  broken.java:1:8: error [parse] parse error: expected a type but found "{"
  [1]

--json emits one object per file.  The diagnostic schema is pinned the
way perf.t pins the benchmark schemas — a key rename must diff here:

  $ jfeed analyze --json buggy.java clean.java > out.json
  [1]
  $ grep -c '"file":"clean.java","diagnostics":\[\]' out.json
  1
  $ grep -o '"[a-z_]*":' out.json | sort -u
  "col":
  "diagnostics":
  "file":
  "line":
  "message":
  "method":
  "pass":
  "severity":

The interval passes: division by a provable zero, an index provably
outside the tracked array length, a redundant comparison leaf inside a
compound guard, and a constant loop guard.  The last one overlaps the
flow layer's suspicious-loop on the same guard — the driver delivers
ONE merged diagnostic there, interval verdict first, flow explanation
appended:

  $ cat > ivals.java <<'EOF'
  > int stats(int n) {
  >     int zero = 0;
  >     int[] b = new int[3];
  >     int total = b[3];
  >     int bad = total / zero;
  >     if (zero == 0 && n > 5) {
  >         total = total + 1;
  >     }
  >     int k = 3;
  >     while (k > 0) {
  >         total = total + bad;
  >     }
  >     return total;
  > }
  > EOF
  $ jfeed analyze ivals.java
  ivals.java:stats:4:5: error [array-out-of-bounds] array index '3' is always out of bounds (index [3], length [3])
  ivals.java:stats:5:5: error [div-by-zero] division by zero: 'zero' is always 0
  ivals.java:stats:6:5: warning [unused-range] redundant test 'zero == 0': 'zero' is always 0, so the test always holds
  ivals.java:stats:10:5: warning [constant-condition] loop condition 'k > 0' is always true — likely infinite loop; loop condition only reads 'k', which the loop body never updates
  [1]

--only and --except filter by pass id (parse failures always get
through); the exit-code contract is unchanged — 1 when any diagnostic
survives the filter, 0 when none does:

  $ jfeed analyze --only div-by-zero ivals.java
  ivals.java:stats:5:5: error [div-by-zero] division by zero: 'zero' is always 0
  [1]
  $ jfeed analyze --only efficiency ivals.java
  $ jfeed analyze --except div-by-zero,array-out-of-bounds,constant-condition,unused-range ivals.java

An unknown pass id, or combining the two filters, is a usage error
(exit 2, like every other one):

  $ jfeed analyze --only bogus ivals.java
  jfeed analyze: unknown pass 'bogus' (known: use-before-init, dead-store, unreachable, missing-return, suspicious-loop, div-by-zero, array-out-of-bounds, constant-condition, unused-range, efficiency)
  [2]
  $ jfeed analyze --only div-by-zero --except unused-range ivals.java
  jfeed analyze: --only and --except are mutually exclusive
  [2]

--oracle FILE turns on efficiency grading: loop-bound inference
assigns each method a polynomial degree, and a submission whose degree
exceeds the oracle solution's for the same-named method is flagged at
the offending loop:

  $ cat > lin.java <<'EOF'
  > int sumAll(int[] a) {
  >     int total = 0;
  >     for (int i = 0; i < a.length; i++) {
  >         total = total + a[i];
  >     }
  >     return total;
  > }
  > EOF
  $ cat > quad.java <<'EOF'
  > int sumAll(int[] a) {
  >     int total = 0;
  >     for (int i = 0; i < a.length; i++) {
  >         for (int j = 0; j <= i; j++) {
  >             if (j == i) { total = total + a[i]; }
  >         }
  >     }
  >     return total;
  > }
  > EOF
  $ jfeed analyze --oracle lin.java quad.java
  quad.java:sumAll:3:5: warning [efficiency] this loop makes the method run in O(n^2), but the reference solution is O(n)
  [1]
  $ jfeed analyze --oracle lin.java lin.java
  $ jfeed analyze --oracle missing.java lin.java
  jfeed analyze: --oracle: missing.java: No such file or directory
  [2]

Output is byte-identical at any worker-pool width, and a nonsensical
width is a usage error:

  $ jfeed generate assignment1 --index 0 | tail -n +2 > gen0.java
  $ jfeed generate assignment1 --index 7 | tail -n +2 > gen7.java
  $ jfeed analyze --json --jobs 1 buggy.java clean.java gen0.java gen7.java > j1.json 2>&1; echo "exit=$?"
  exit=1
  $ jfeed analyze --json --jobs 4 buggy.java clean.java gen0.java gen7.java > j4.json 2>&1; echo "exit=$?"
  exit=1
  $ cmp j1.json j4.json && echo identical
  identical
  $ jfeed analyze --jobs 0 buggy.java
  jfeed analyze: --jobs must be at least 1 (got 0)
  [2]

The KB linter: every shipped bundle validates clean (exit 0, one line
per assignment)...

  $ jfeed lint-kb
  assignment1: ok
  esc-LAB-3-P1-V1: ok
  esc-LAB-3-P2-V1: ok
  esc-LAB-3-P2-V2: ok
  esc-LAB-3-P3-V1: ok
  esc-LAB-3-P4-V1: ok
  esc-LAB-3-P3-V2: ok
  esc-LAB-3-P4-V2: ok
  mitx-derivatives: ok
  mitx-polynomials: ok
  rit-all-g-medals: ok
  rit-medals-by-ath: ok

...in JSON too:

  $ jfeed lint-kb assignment1 --json
  {"assignment":"assignment1","diagnostics":[]}

...and the deliberately broken fixture is flagged on every linter pass,
with exit 1:

  $ jfeed lint-kb --fixture-broken
  broken-fixture:compute: error [kb-duplicate] pattern id 'p_loop' is declared twice
  broken-fixture:compute: error [kb-structure] pattern p_loop: edge (0, 5) out of range
  broken-fixture:compute: error [kb-structure] pattern p_loop: self edge on node 1
  broken-fixture:compute: error [kb-unbound-placeholder] pattern 'p_loop': feedback (missing) placeholder %bound% is bound by none of the pattern's variables
  broken-fixture:compute: error [kb-unsat] pattern 'p_brk': node 0 is typed Break but its template '%x% = 0' matches neither "break" nor "continue" — no EPDG node can satisfy it
  broken-fixture:compute: error [kb-unknown-pattern] variant table keyed by unknown pattern id 'p_missing'
  broken-fixture:compute: error [kb-unsat] variant 'p_brk_alt' of 'p_missing': node 0 is typed Break but its template '%x% = 0' matches neither "break" nor "continue" — no EPDG node can satisfy it
  broken-fixture:compute: error [kb-unknown-pattern] constraint 'cx_ghost' names unknown pattern id 'p_ghost'
  broken-fixture:compute: error [kb-dangling-ref] constraint 'cx_range' refers to node 7 of pattern 'p_brk', which has only 1 node
  broken-fixture:compute: error [kb-unbound-placeholder] constraint 'cx_range': feedback (ok) placeholder %zz% is bound by none of the referenced patterns
  broken-fixture:compute: error [kb-dangling-ref] constraint 'cx_free': containment template variable %mystery% is bound by neither the main nor the supporting patterns
  [1]
