The CLI lists the twelve assignments with their Table I knowledge-base sizes:

  $ jfeed list
  assignment                    S   P   C  title
  assignment1              640000   6   4  Add odd positions and multiply even positions of an array
  esc-LAB-3-P1-V1          442368   7   5  Print n such that n! <= k < (n+1)!
  esc-LAB-3-P2-V1         7077888   8  13  Print n such that fib(n) <= k < fib(n+1)
  esc-LAB-3-P2-V2             144   4   5  Is the number equal to the sum of the cubes of its digits?
  esc-LAB-3-P3-V1           10368   7   6  Difference of a positive number and its reverse
  esc-LAB-3-P4-V1           13824   7   6  Is the number a palindrome?
  esc-LAB-3-P3-V2          589824   8  10  Count the factorial numbers in [n, m]
  esc-LAB-3-P4-V2         9437184   9  14  Count the Fibonacci numbers in [n, m]
  mitx-derivatives            576   3   4  Print the derivative coefficients of a polynomial
  mitx-polynomials            768   4   4  Evaluate a polynomial at a point
  rit-all-g-medals         559872   9   7  Count the gold medals awarded in a given year
  rit-medals-by-ath        746496   9   7  Count the medals awarded to a given athlete

Generate the reference submission (index 0) and grade it — everything correct:

  $ jfeed generate assignment1 --index 0 | tail -n +2 > ref.java
  $ jfeed feedback assignment1 ref.java | tail -2
  
  score Λ = 10.0 / 10    method pairing: assignment1 → assignment1

  $ jfeed test assignment1 ref.java
  all functional tests passed

A buggy submission gets pinpointed feedback:

  $ cat > buggy.java <<'JAVA'
  > void assignment1(int[] a) {
  >     int odd = 1;
  >     int even = 1;
  >     for (int i = 0; i < a.length; i++) {
  >         if (i % 2 == 1)
  >             odd += a[i];
  >         if (i % 2 == 0)
  >             even *= a[i];
  >     }
  >     System.out.println(odd);
  >     System.out.println(even);
  > }
  > JAVA
  $ jfeed feedback assignment1 buggy.java | grep -A3 "p_cond_accum_add"
  [assignment1 | pattern p_cond_accum_add | incorrect]
    - Conditional cumulative addition — recognized, with problems:
    - odd should be initialized to 0
    - A loop controls the accumulation

  $ jfeed test assignment1 buggy.java
  FAILED on small: expected "10\n15\n", got "11\n15\n"
  [1]

The dependence graph of a method (the paper's Fig. 3 for this shape):

  $ cat > tiny.java <<'JAVA'
  > void f(int k) {
  >     int s = 0;
  >     while (k > 0) {
  >         s += k % 10;
  >         k = k / 10;
  >     }
  >     System.out.println(s);
  > }
  > JAVA
  $ jfeed graph assignment1 tiny.java
  method f
    v0: Decl   int k
    v1: Assign s = 0
    v2: Cond   k > 0
    v3: Assign s += k % 10
    v4: Assign k = k / 10
    v5: Call   System.out.println(s)
    v0 -Data-> v2
    v0 -Data-> v3
    v0 -Data-> v4
    v1 -Data-> v3
    v2 -Ctrl-> v3
    v2 -Ctrl-> v4
    v3 -Data-> v5

The same graph as machine-readable JSON (structured attrs, not string
concatenation):

  $ jfeed graph assignment1 tiny.java --json
  {"assignment":"assignment1","methods":[{"method":"f","params":["k"],"nodes":[{"id":0,"type":"Decl","text":"int k"},{"id":1,"type":"Assign","text":"s = 0"},{"id":2,"type":"Cond","text":"k > 0"},{"id":3,"type":"Assign","text":"s += k % 10"},{"id":4,"type":"Assign","text":"k = k / 10"},{"id":5,"type":"Call","text":"System.out.println(s)"}],"edges":[{"src":0,"dst":2,"type":"Data"},{"src":0,"dst":3,"type":"Data"},{"src":0,"dst":4,"type":"Data"},{"src":1,"dst":3,"type":"Data"},{"src":2,"dst":3,"type":"Ctrl"},{"src":2,"dst":4,"type":"Ctrl"},{"src":3,"dst":5,"type":"Data"}]}]}

Graphviz output escapes label text properly — a string literal carrying
quotes and a newline escape survives as a valid DOT label:

  $ cat > quoted.java <<'JAVA'
  > void f(int k) {
  >     System.out.println("he said \"hi\" and\nleft");
  > }
  > JAVA
  $ jfeed graph assignment1 quoted.java --dot
  digraph g {
    n0 [label="v0: Decl\nint k", shape=box];
    n1 [label="v1: Call\nSystem.out.println(\"he said \\\"hi\\\" and\\nleft\")", shape=box];
  }

The two machine formats are mutually exclusive:

  $ jfeed graph assignment1 tiny.java --dot --json
  jfeed graph: --dot and --json are exclusive
  [2]

The build identifies itself: tool version, the digest of the compiled-in
knowledge base (two builds with equal digests grade identically), and the
feature set (the digest varies with the KB, so it is masked here):

  $ jfeed version | sed 's/"kb_revision":"[0-9a-f]*"/"kb_revision":"MASKED"/'
  {"version":"1.0.0","kb_revision":"MASKED","features":["normalize","variants","inline-helpers","strategies","analysis","absint","parallel","serve-cache","trace","repair","events","slo"]}

Unknown assignments are rejected with the available ids:

  $ jfeed feedback nope ref.java 2>&1 | head -1
  jfeed: ASSIGNMENT argument: unknown assignment "nope"; try: assignment1,
