Automated repair: search the single-edit error-model space for a
minimal change that makes the assignment's functional tests pass.

  $ jfeed generate assignment1 --index 0 | tail -n +2 > ref.java
  $ sed 's/i < a.length/i <= a.length/' ref.java > bug.java

A failing submission gets a concrete, positioned hint.  The exit code
follows the analyze contract — nonzero means the submission needed
changing (whether or not a fix was found); 0 means nothing to do:

  $ jfeed repair assignment1 bug.java
  repair found: change `i <= a.length` to `i < a.length` at line 4 in assignment1 [cmp-flip]
  minimal fix at edit distance 1; screened 24 of 24 candidate edits (1 passing)
  [1]

  $ jfeed repair assignment1 ref.java
  already passing: the submission passes all functional tests; nothing to repair

--json splices the hint into the grading outcome line as its "repair"
field, srcmap position and rewritten expression text included:

  $ jfeed repair assignment1 --json bug.java
  {"file":"bug.java","outcome":"graded","score":9,"max":10,"tests":{"failed":"small"},"reasons":[],"diags":0,"repair":{"status":"repaired","kind":"cmp-flip","method":"assignment1","line":4,"col":5,"before":"i <= a.length","after":"i < a.length","distance":1,"rank":1,"candidates":24,"sites":24,"passing":1,"exhausted":false,"fuel":768}}
  [1]

The JSON schema keys are pinned — a rename must show up here as a diff:

  $ jfeed repair assignment1 --json bug.java | grep -o '"[a-z_]*":' | sort -u
  "after":
  "before":
  "candidates":
  "col":
  "diags":
  "distance":
  "exhausted":
  "failed":
  "file":
  "fuel":
  "kind":
  "line":
  "max":
  "method":
  "outcome":
  "passing":
  "rank":
  "reasons":
  "repair":
  "score":
  "sites":
  "status":
  "tests":

The search is deterministic at any --jobs width: candidates are charged
against the budget in priority order whatever the evaluation order, so
the parallel output is byte-identical to the sequential one:

  $ jfeed repair assignment1 --json bug.java > seq.json
  [1]
  $ jfeed repair assignment1 --json --jobs 4 bug.java > par.json
  [1]
  $ cmp seq.json par.json && echo identical
  identical

Budget exhaustion degrades, never hangs: a starved search reports how
far it got and that the budget cut it short:

  $ jfeed repair assignment1 --fuel 0 bug.java
  no repair found within budget: screened 0 of 24 candidate edits (budget exhausted)
  [1]

And the priority order earns its keep — the KB points at the buggy
method and the error model ranks comparison flips first, so a budget of
one single candidate already finds this fix:

  $ jfeed repair assignment1 --fuel 1 bug.java
  repair found: change `i <= a.length` to `i < a.length` at line 4 in assignment1 [cmp-flip]
  minimal fix at edit distance 1; screened 1 of 24 candidate edits (1 passing)
  [1]

Unreadable or unparseable input is reported, not crashed on:

  $ printf 'void oops(' > bad.java
  $ jfeed repair assignment1 bad.java
  cannot repair: parse error at 1:11: expected a type but found end of input
  [1]

A nonsensical width is a usage error (exit 2), like every other one:

  $ jfeed repair --jobs 0 assignment1 bug.java
  jfeed repair: --jobs must be at least 1 (got 0)
  [2]
