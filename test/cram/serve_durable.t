Durable serving: with --cache-dir the result cache is an append-only
checksummed log that survives restarts.  First boot, one fresh grade:

  $ cat > req1.jsonl <<'EOF'
  > {"op":"grade","id":"first","assignment":"mitx-derivatives","source":"public class D { public static double[] derivative(double[] poly) { double[] deriv = new double[poly.length - 1]; for (int i = 1; i < poly.length; i = i + 1) { deriv[i - 1] = poly[i] * i; } return deriv; } }"}
  > {"op":"shutdown","id":"bye"}
  > EOF
  $ jfeed serve --cache-dir store < req1.jsonl > r1.jsonl
  $ grep -c '^{"id":"first","op":"grade","cached":false' r1.jsonl
  1
  $ test -s store/cache.jfl && echo the-log-has-bytes
  the-log-has-bytes

A restart replays the log into a warm cache: an α-renamed twin of the
submission answers cached:true without any recomputation,

  $ cat > req2.jsonl <<'EOF'
  > {"op":"grade","id":"renamed","assignment":"mitx-derivatives","source":"public class D { public static double[] derivative(double[] qq) { double[] zz = new double[qq.length - 1]; for (int k = 1; k < qq.length; k = k + 1) { zz[k - 1] = qq[k] * k; } return zz; } }"}
  > {"op":"shutdown","id":"bye"}
  > EOF
  $ jfeed serve --cache-dir store < req2.jsonl > r2.jsonl
  $ grep -c '^{"id":"renamed","op":"grade","cached":true' r2.jsonl
  1

and its feedback payload is byte-identical to the pre-restart answer:

  $ awk 'NR==1 {print substr($0, index($0, "\"result\":"))}' r1.jsonl > p1
  $ awk 'NR==1 {print substr($0, index($0, "\"result\":"))}' r2.jsonl > p2
  $ cmp p1 p2 && echo identical-across-restart
  identical-across-restart

A crash mid-append leaves a torn tail.  Recovery keeps the valid
prefix, truncates the garbage, and still serves the cached result:

  $ cp store/cache.jfl intact
  $ printf 'torn tail a crash left behind' >> store/cache.jfl
  $ jfeed serve --cache-dir store < req2.jsonl > r3.jsonl
  $ grep -c '^{"id":"renamed","op":"grade","cached":true' r3.jsonl
  1
  $ cmp intact store/cache.jfl && echo truncated-to-valid-prefix
  truncated-to-valid-prefix

The log is single-writer: a daemon holds an advisory lock, so a second
serve on the same directory is refused before it can interleave writes.
Exercised below with the socket daemon, which also shows kill -9
crash-safety end to end.  Start it, wait for the socket:

  $ jfeed serve --socket d.sock --cache-dir store2 &
  $ SERVE_PID=$!
  $ for i in $(seq 100); do test -S d.sock && break; sleep 0.1; done
  $ test -S d.sock && echo listening
  listening
  $ jfeed serve --cache-dir store2 < /dev/null
  jfeed serve: cache directory "store2" is locked by another jfeed serve
  [1]

Grade through `jfeed client` (stdin EOF half-closes; the client exits
once the daemon has answered everything):

  $ grep '"id":"first"' req1.jsonl | jfeed client --socket d.sock > c1.jsonl
  $ grep -c '^{"id":"first","op":"grade","cached":false' c1.jsonl
  1

kill -9: no drain, no compaction, no fsync beyond the append itself —
the entry must already be on disk:

  $ kill -9 $SERVE_PID
  $ wait $SERVE_PID 2> /dev/null
  [137]

Restart on the same directory (the stale socket file is replaced) and
replay: the pre-crash computation answers cached:true:

  $ jfeed serve --socket d.sock --cache-dir store2 &
  $ SERVE_PID=$!
  $ for i in $(seq 100); do test -S d.sock && break; sleep 0.1; done
  $ grep '"id":"renamed"' req2.jsonl | jfeed client --socket d.sock > c2.jsonl
  $ grep -c '^{"id":"renamed","op":"grade","cached":true' c2.jsonl
  1
  $ awk 'NR==1 {print substr($0, index($0, "\"result\":"))}' c1.jsonl > cp1
  $ awk 'NR==1 {print substr($0, index($0, "\"result\":"))}' c2.jsonl > cp2
  $ cmp cp1 cp2 && echo identical-across-crash
  identical-across-crash

SIGTERM is the graceful path: in-flight work drains, the store is
synced, and the socket file is unlinked on the way out:

  $ kill $SERVE_PID
  $ wait $SERVE_PID
  $ test -S d.sock || echo socket-unlinked
  socket-unlinked
