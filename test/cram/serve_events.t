Request-scoped telemetry end to end.  With any telemetry flag set,
every response carries a correlation id — the client's own if the
request brought one, a minted one otherwise — and every lifecycle
transition leaves one checksummed line in the event log:

  $ cat > req.jsonl <<'EOF'
  > {"op":"grade","id":"mine","rid":"trace-me","assignment":"mitx-derivatives","source":"public class D { public static double[] derivative(double[] poly) { double[] deriv = new double[poly.length - 1]; for (int i = 1; i < poly.length; i = i + 1) { deriv[i - 1] = poly[i] * i; } return deriv; } }"}
  > {"op":"grade","id":"anon","assignment":"mitx-derivatives","source":"public class D { public static double[] derivative(double[] poly) { double[] deriv = new double[poly.length - 1]; for (int i = 1; i < poly.length; i = i + 1) { deriv[i - 1] = poly[i] * i; } return deriv; } }"}
  > {"op":"stats","id":"s"}
  > {"op":"shutdown"}
  > EOF
  $ jfeed serve --event-log ev --trace-sample 1 --slo-ms 10000 < req.jsonl > resp.jsonl
  $ grep -c '^{"id":"mine","rid":"trace-me","op":"grade","cached":false' resp.jsonl
  1
  $ grep -c '^{"id":"anon","rid":"r[0-9]*-[0-9]*","op":"grade","cached":true' resp.jsonl
  1

The stats line gains the SLO good/bad counters and burn rates:

  $ grep -c '"slo":{"good":2,"bad":0' resp.jsonl
  1

`jfeed logs --rid` reconstructs one request's full lifecycle from the
log — admission, cache resolution, grading, the retained span tree
(--trace-sample 1 keeps every miss), and the response with its
queue-wait and total timings:

  $ jfeed logs --event-log ev --rid trace-me | grep -o '"ev":"[a-z_]*"'
  "ev":"admit"
  "ev":"cache_miss"
  "ev":"grade_done"
  "ev":"trace"
  "ev":"respond"
  $ jfeed logs --event-log ev --rid trace-me | grep -c '"queue_ms":[0-9.]*,"total_ms":'
  1
  $ jfeed logs --event-log ev --rid trace-me | grep -c '"name":"request"'
  1

The in-batch duplicate ran the shorter cached lifecycle under its own
minted id:

  $ RID=$(sed -n 's/^{"id":"anon","rid":"\([^"]*\)".*/\1/p' resp.jsonl)
  $ jfeed logs --event-log ev --rid "$RID" | grep -o '"ev":"[a-z_]*"'
  "ev":"admit"
  "ev":"cache_hit"
  "ev":"respond"

The same telemetry runs in the socket daemon, where `jfeed top` renders
a plain-text frame of the live counters over the stats/slowlog ops:

  $ jfeed serve --socket t.sock --event-log ev2 --trace-sample 1 --slo-ms 10000 &
  $ SERVE_PID=$!
  $ for i in $(seq 100); do test -S t.sock && break; sleep 0.1; done
  $ grep '"id":"mine"' req.jsonl | jfeed client --socket t.sock > c1.jsonl
  $ grep -c '^{"id":"mine","rid":"trace-me","op":"grade","cached":false' c1.jsonl
  1
  $ jfeed top --socket t.sock --once > top.txt
  $ grep -c 'jfeed top .* t.sock .* frame 1' top.txt
  1
  $ grep -c 'outcomes  graded 1  degraded 0  rejected 0' top.txt
  1
  $ grep -c 'cache     hits 0  misses 1  hit-rate 0.0%  size 1/10000' top.txt
  1
  $ grep -c 'slo       good 1  bad 0  burn 1m 0  5m 0  1h 0' top.txt
  1

kill -9: no drain, no graceful close.  Whatever reached the disk before
the crash replays — including the socket path's write event — and a
torn half-line the crash left behind is measured off, never shown:

  $ kill -9 $SERVE_PID
  $ wait $SERVE_PID 2> /dev/null
  [137]
  $ jfeed logs --event-log ev2 --rid trace-me | grep -o '"ev":"[a-z_]*"'
  "ev":"admit"
  "ev":"cache_miss"
  "ev":"grade_done"
  "ev":"trace"
  "ev":"respond"
  "ev":"write"
  $ jfeed logs --event-log ev2 > before.txt
  $ printf '{"ts_ns":99,"rid":"torn","ev":"adm' >> ev2/events.jsonl
  $ jfeed logs --event-log ev2 > after.txt
  $ cmp before.txt after.txt && echo torn-tail-ignored
  torn-tail-ignored

With no telemetry flag, nothing changes on the wire: no rid, no slo
object — the pre-telemetry goldens hold byte for byte:

  $ jfeed serve < req.jsonl | grep -c '"rid"\|"slo"'
  1

(the one match is the request's own rid echoed back verbatim — a client
that labels its requests gets its labels back even with telemetry off:)

  $ jfeed serve < req.jsonl | grep -c '^{"id":"mine","rid":"trace-me","op":"grade"'
  1
