Batch grading: a directory of submissions goes through the resilient
pipeline — one JSON summary, stable field order, and an exit code that
tells CI what happened (0 all graded, 1 some degraded/rejected, 2 usage
error).

  $ mkdir clean
  $ jfeed generate assignment1 --index 0 | tail -n +2 > clean/ref.java
  $ jfeed batch assignment1 clean
  {"assignment":"assignment1","total":1,"graded":1,"degraded":0,"rejected":0,"submissions":[
    {"file":"ref.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0}
  ]}

All graded: exit 0.

  $ echo $?
  0

A mixed directory: a truncated file is rejected at parse, garbage bytes
are rejected at lex, pathological nesting is rejected instead of
overflowing the stack — and none of them stop the neighbours from
being graded.

  $ mkdir mixed
  $ cp clean/ref.java mixed/good.java
  $ printf 'void assignment1(' > mixed/truncated.java
  $ printf '\377\376' > mixed/garbage.java
  $ { printf 'void assignment1(int[] a) { int x = '; for i in $(seq 9000); do printf '('; done; printf '1'; for i in $(seq 9000); do printf ')'; done; printf '; }'; } > mixed/bomb.java
  $ jfeed batch assignment1 mixed
  {"assignment":"assignment1","total":4,"graded":1,"degraded":0,"rejected":3,"submissions":[
    {"file":"bomb.java","outcome":"rejected","stage":"parse","error":"parse error at 1:536: nesting too deep"},
    {"file":"garbage.java","outcome":"rejected","stage":"lex","error":"lex error at 1:1: unexpected character '\\255'"},
    {"file":"good.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0},
    {"file":"truncated.java","outcome":"rejected","stage":"parse","error":"parse error at 1:18: expected a type but found end of input"}
  ]}
  [1]

A starved fuel budget degrades instead of crashing or lying: the
grade is still produced, and every truncation names the stage that ran
dry (matcher, pairing, interp).

  $ jfeed batch --fuel 100 assignment1 clean
  {"assignment":"assignment1","total":1,"graded":0,"degraded":1,"rejected":0,"fuel":100,"submissions":[
    {"file":"ref.java","outcome":"degraded","score":3,"max":10,"tests":{"failed":"small"},"reasons":["matcher:p_cond_accum_add","matcher:p_cond_accum_mul","matcher:p_print_var","interp"],"diags":0,"fuel":101}
  ]}
  [1]

Usage errors are exit 2:

  $ jfeed batch assignment1 /no/such/dir
  jfeed batch: "/no/such/dir" is not a directory
  [2]
