Batch grading: a directory of submissions goes through the resilient
pipeline — one JSON summary, stable field order, and an exit code that
tells CI what happened (0 all graded, 1 some degraded/rejected, 2 usage
error).

  $ mkdir clean
  $ jfeed generate assignment1 --index 0 | tail -n +2 > clean/ref.java
  $ jfeed batch assignment1 clean
  {"assignment":"assignment1","total":1,"graded":1,"degraded":0,"rejected":0,"dedup":{"classes":1,"replayed":0},"submissions":[
    {"file":"ref.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0}
  ]}

All graded: exit 0.

  $ echo $?
  0

A mixed directory: a truncated file is rejected at parse, garbage bytes
are rejected at lex, pathological nesting is rejected instead of
overflowing the stack — and none of them stop the neighbours from
being graded.

  $ mkdir mixed
  $ cp clean/ref.java mixed/good.java
  $ printf 'void assignment1(' > mixed/truncated.java
  $ printf '\377\376' > mixed/garbage.java
  $ { printf 'void assignment1(int[] a) { int x = '; for i in $(seq 9000); do printf '('; done; printf '1'; for i in $(seq 9000); do printf ')'; done; printf '; }'; } > mixed/bomb.java
  $ jfeed batch assignment1 mixed
  {"assignment":"assignment1","total":4,"graded":1,"degraded":0,"rejected":3,"dedup":{"classes":4,"replayed":0},"submissions":[
    {"file":"bomb.java","outcome":"rejected","stage":"parse","error":"parse error at 1:536: nesting too deep"},
    {"file":"garbage.java","outcome":"rejected","stage":"lex","error":"lex error at 1:1: unexpected character '\\255'"},
    {"file":"good.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0},
    {"file":"truncated.java","outcome":"rejected","stage":"parse","error":"parse error at 1:18: expected a type but found end of input"}
  ]}
  [1]

A starved fuel budget degrades instead of crashing or lying: the
grade is still produced, and every truncation names the stage that ran
dry (matcher, pairing, interp).

  $ jfeed batch --fuel 100 assignment1 clean
  {"assignment":"assignment1","total":1,"graded":0,"degraded":1,"rejected":0,"fuel":100,"dedup":{"classes":1,"replayed":0},"submissions":[
    {"file":"ref.java","outcome":"degraded","score":3,"max":10,"tests":{"failed":"small"},"reasons":["matcher:p_cond_accum_add","matcher:p_cond_accum_mul","matcher:p_print_var","interp"],"diags":0,"fuel":101}
  ]}
  [1]

Under --trace every submission line grows a trace summary: per-stage
span counts and milliseconds, per-pattern matcher counters (nodes, fuel,
cache misses), interpreter steps and the fuel split.  Timings vary run
to run, so they are masked; everything else is deterministic.

  $ jfeed batch assignment1 clean --trace | sed -E 's/"ms":[0-9.]+/"ms":MS/g'
  {"assignment":"assignment1","total":1,"graded":1,"degraded":0,"rejected":0,"dedup":{"classes":1,"replayed":0},"submissions":[
    {"file":"ref.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0,"trace":{"stages":{"parse":{"n":1,"ms":MS},"analysis":{"n":1,"ms":MS},"pass":{"n":11,"ms":MS},"epdg":{"n":1,"ms":MS},"pairing":{"n":1,"ms":MS},"match":{"n":6,"ms":MS},"tests":{"n":1,"ms":MS},"interp":{"n":10,"ms":MS}},"counters":{"absint.steps":44,"absint.widenings":1,"match.nodes:p_param_decl":2,"match.fuel:p_param_decl":2,"plan.steps:p_param_decl":2,"match.cache_miss:p_param_decl":1,"match.nodes:p_odd_access":48,"match.fuel:p_odd_access":48,"plan.steps:p_odd_access":48,"match.cache_miss:p_odd_access":1,"match.nodes:p_even_access":48,"match.fuel:p_even_access":48,"plan.steps:p_even_access":48,"match.cache_miss:p_even_access":1,"match.nodes:p_cond_accum_add":36,"match.fuel:p_cond_accum_add":36,"plan.steps:p_cond_accum_add":36,"match.cache_miss:p_cond_accum_add":1,"match.nodes:p_cond_accum_mul":36,"match.fuel:p_cond_accum_mul":36,"plan.steps:p_cond_accum_mul":36,"match.cache_miss:p_cond_accum_mul":1,"match.nodes:p_print_var":28,"match.fuel:p_print_var":28,"plan.steps:p_print_var":28,"match.cache_miss:p_print_var":1,"interp.steps":250,"fuel.matcher":198,"fuel.pairing":1,"fuel.interp":125}}}
  ]}

--trace-dir writes one Chrome trace_event file per submission plus an
aggregate summary, while stdout stays byte-identical to an untraced run:

  $ jfeed batch assignment1 clean --trace-dir tdir
  {"assignment":"assignment1","total":1,"graded":1,"degraded":0,"rejected":0,"dedup":{"classes":1,"replayed":0},"submissions":[
    {"file":"ref.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0}
  ]}
  $ ls tdir
  ref.java.trace.json
  summary.json

The per-submission file is a Chrome trace_event array — complete ("X")
events for the spans and one final counter ("C") event:

  $ head -c1 tdir/ref.java.trace.json; echo
  [
  $ grep -c '"ph":"X"' tdir/ref.java.trace.json
  32
  $ grep -c '"ph":"C"' tdir/ref.java.trace.json
  1

The aggregate ranks patterns by matcher fuel and reports per-stage
p50/p95 (masked: timings):

  $ sed -E 's/"p(50|95)_ms":[0-9.]+/"p\1_ms":MS/g' tdir/summary.json
  {"submissions":1,"stages":{"parse":{"p50_ms":MS,"p95_ms":MS},"analysis":{"p50_ms":MS,"p95_ms":MS},"pass":{"p50_ms":MS,"p95_ms":MS},"epdg":{"p50_ms":MS,"p95_ms":MS},"pairing":{"p50_ms":MS,"p95_ms":MS},"match":{"p50_ms":MS,"p95_ms":MS},"tests":{"p50_ms":MS,"p95_ms":MS},"interp":{"p50_ms":MS,"p95_ms":MS}},"top_patterns":[{"pattern":"p_even_access","fuel":48},{"pattern":"p_odd_access","fuel":48},{"pattern":"p_cond_accum_add","fuel":36},{"pattern":"p_cond_accum_mul","fuel":36},{"pattern":"p_print_var","fuel":28}],"dedup":{"classes":1,"replayed":0}}

Batch dedup: α-equivalent submissions — same program modulo consistent
renaming, whitespace and comments — are grouped into one equivalence
class; only the first member is graded, the rest replay its outcome.
The copies' lines are identical to the representative's except the file
name (and analysis diagnostics, recomputed from each member's own
bytes):

  $ mkdir dupes
  $ cp clean/ref.java dupes/a.java
  $ sed 's/\bsum\b/total/g' clean/ref.java > dupes/b_renamed.java
  $ { printf '// resubmission\n'; cat clean/ref.java; } > dupes/c_comment.java
  $ jfeed generate assignment1 --index 1 | tail -n +2 > dupes/d_other.java
  $ jfeed batch assignment1 dupes
  {"assignment":"assignment1","total":4,"graded":4,"degraded":0,"rejected":0,"dedup":{"classes":2,"replayed":2},"submissions":[
    {"file":"a.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0},
    {"file":"b_renamed.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0},
    {"file":"c_comment.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0},
    {"file":"d_other.java","outcome":"graded","score":10,"max":10,"tests":"passed","reasons":[],"diags":0}
  ]}

--no-dedup grades every submission independently and drops the summary's
dedup field; apart from that field the output is byte-identical, which
the diff below checks (only the summary header line differs):

  $ jfeed batch assignment1 dupes > with.json
  $ jfeed batch assignment1 dupes --no-dedup > without.json
  $ diff with.json without.json
  1c1
  < {"assignment":"assignment1","total":4,"graded":4,"degraded":0,"rejected":0,"dedup":{"classes":2,"replayed":2},"submissions":[
  ---
  > {"assignment":"assignment1","total":4,"graded":4,"degraded":0,"rejected":0,"submissions":[
  [1]

Usage errors are exit 2:

  $ jfeed batch assignment1 /no/such/dir
  jfeed batch: "/no/such/dir" is not a directory
  [2]
