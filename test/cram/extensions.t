The predefined algorithmic strategies (§VI-C structural requirements):

  $ jfeed strategies
  strategy                             assignment           title
  assignment1-single-loop              assignment1          Assignment 1 must use one loop for both parities
  esc-LAB-3-P1-V1-canonical-lookahead  esc-LAB-3-P1-V1      The search loop must test helper(n + 1) <= k literally
  esc-LAB-3-P2-V1-canonical-lookahead  esc-LAB-3-P2-V1      The search loop must test helper(n + 1) <= k literally

A correct two-loop submission passes plainly but violates the
single-loop strategy:

  $ cat > two_loops.java <<'JAVA'
  > void assignment1(int[] a) {
  >     int o = 0, e = 1;
  >     for (int i = 0; i < a.length; i++)
  >         if (i % 2 == 1)
  >             o += a[i];
  >     for (int i = 0; i < a.length; i++)
  >         if (i % 2 == 0)
  >             e *= a[i];
  >     System.out.println(o);
  >     System.out.println(e);
  > }
  > JAVA
  $ jfeed feedback assignment1 two_loops.java | tail -1
  score Λ = 10.0 / 10    method pairing: assignment1 → assignment1
  $ jfeed feedback assignment1 --strategy assignment1-single-loop two_loops.java | grep strat
  [assignment1 | constraint strat_same_bound | incorrect]
  [assignment1 | constraint strat_same_index_init | incorrect]

JSON output for LMS integration:

  $ jfeed feedback assignment1 --json two_loops.java | head -c 60
  {"score":10,"max":10,"comments":[{"kind":"pattern","id":"p_p

A student who extracts a helper is rejected by the published system but
accepted with helper inlining (§VII):

  $ cat > helper.java <<'JAVA'
  > int term(int c, int w) { return c * w; }
  > void polynomials(int[] p, int x) {
  >     int r = 0;
  >     int pw = 1;
  >     for (int i = 0; i < p.length; i++) {
  >         r += term(p[i], pw);
  >         pw *= x;
  >     }
  >     System.out.println(r);
  > }
  > JAVA
  $ jfeed feedback mitx-polynomials helper.java | tail -1
  score Λ = 5.0 / 8    method pairing: polynomials → polynomials
  $ jfeed feedback mitx-polynomials --inline-helpers helper.java | tail -1
  score Λ = 8.0 / 8    method pairing: polynomials → polynomials
