The persistent grading service.  `jfeed assignments` prints the valid
values of the protocol's "assignment" field, one per line:

  $ jfeed assignments
  assignment1
  esc-LAB-3-P1-V1
  esc-LAB-3-P2-V1
  esc-LAB-3-P2-V2
  esc-LAB-3-P3-V1
  esc-LAB-3-P4-V1
  esc-LAB-3-P3-V2
  esc-LAB-3-P4-V2
  mitx-derivatives
  mitx-polynomials
  rit-all-g-medals
  rit-medals-by-ath

A full serving session over stdin/stdout: two submissions that differ
only by a consistent variable renaming, a line that is not JSON at all,
a grade request missing its required fields, then stats and shutdown.

  $ cat > session.jsonl <<'EOF'
  > {"op":"grade","id":"first","assignment":"mitx-derivatives","source":"public class D { public static double[] derivative(double[] poly) { double[] deriv = new double[poly.length - 1]; for (int i = 1; i < poly.length; i = i + 1) { deriv[i - 1] = poly[i] * i; } return deriv; } }"}
  > {"op":"grade","id":"renamed","assignment":"mitx-derivatives","source":"public class D { public static double[] derivative(double[] qq) { double[] zz = new double[qq.length - 1]; for (int k = 1; k < qq.length; k = k + 1) { zz[k - 1] = qq[k] * k; } return zz; } }"}
  > not json at all
  > {"op":"grade","id":"incomplete"}
  > {"op":"stats","id":"s"}
  > {"op":"shutdown","id":"bye"}
  > EOF

A shutdown request ends the daemon with exit 0; every request line got
exactly one response line:

  $ jfeed serve < session.jsonl > responses.jsonl
  $ wc -l < responses.jsonl
  6

The first submission is graded fresh; the α-renamed resubmission is
served from the content-addressed cache:

  $ grep -c '^{"id":"first","op":"grade","cached":false,"result":{"outcome":"graded"' responses.jsonl
  1
  $ grep -c '^{"id":"renamed","op":"grade","cached":true,"result":{"outcome":"graded"' responses.jsonl
  1

and its feedback payload is byte-identical to the first answer:

  $ awk 'NR<=2 {print substr($0, index($0, "\"result\":"))}' responses.jsonl > payloads
  $ sed -n 1p payloads > p1
  $ sed -n 2p payloads > p2
  $ cmp p1 p2 && echo identical
  identical

The feedback payload is the real thing — outcome, score, and the
per-pattern comments of the single-submission grader:

  $ sed -n 1p p1 | grep -c '"comments":\[{"kind":"pattern"'
  1

Malformed input costs one structured error response each, never the
daemon — the stats and shutdown below prove it kept serving:

  $ sed -n 3p responses.jsonl
  {"op":"error","error":"invalid JSON at byte 0: expected null"}
  $ sed -n 4p responses.jsonl
  {"id":"incomplete","op":"error","error":"grade request lacks \"assignment\""}

Live stats: the renamed resubmission shows up as the cache hit, both
gradings land in the outcome taxonomy, and the two bad lines are
counted (latencies are wall-clock, so they are masked here):

  $ sed -n 5p responses.jsonl | sed 's/"latency_ms":.*/"latency_ms":{masked}}/'
  {"id":"s","op":"stats","requests":5,"grades":2,"stats":1,"errors":2,"cache":{"hits":1,"misses":1,"size":1,"cap":10000},"outcomes":{"graded":2,"degraded":0,"rejected":0},"diagnostics":{"use-before-init":0,"dead-store":0,"unreachable":0,"missing-return":0,"suspicious-loop":0},"queue":{"depth":0,"max":2,"cap":64},"latency_ms":{masked}}
  $ sed -n 6p responses.jsonl
  {"id":"bye","op":"shutdown","ok":true}

A scrape session: one good grade, one parse reject, then the Prometheus
exposition and the slowlog.  The metrics response is the protocol's one
multi-line answer, terminated by "# EOF":

  $ cat > msession.jsonl <<'EOF'
  > {"op":"grade","id":"g1","assignment":"mitx-derivatives","source":"public class D { public static double[] derivative(double[] poly) { double[] deriv = new double[poly.length - 1]; for (int i = 1; i < poly.length; i = i + 1) { deriv[i - 1] = poly[i] * i; } return deriv; } }"}
  > {"op":"grade","id":"g2","assignment":"mitx-derivatives","source":"broken ("}
  > {"op":"metrics","id":"m"}
  > {"op":"slowlog","id":"sl"}
  > {"op":"shutdown","id":"bye"}
  > EOF
  $ jfeed serve < msession.jsonl > mresponses.txt

The line set, order and every bucket bound are fixed; only the
latency-dependent samples (finite buckets and the sum) are masked:

  $ sed -n '/^# HELP jfeed_requests_total/,/^# EOF/p' mresponses.txt \
  >   | sed -E 's/^(jfeed_grade_latency_ms_bucket\{le="[0-9.]+"\}) [0-9]+$/\1 N/' \
  >   | sed -E 's/^(jfeed_grade_latency_ms_sum) [0-9.e+-]+$/\1 S/'
  # HELP jfeed_requests_total Request lines handled, any op.
  # TYPE jfeed_requests_total counter
  jfeed_requests_total 3
  # HELP jfeed_grades_total Grade requests answered (cached or not).
  # TYPE jfeed_grades_total counter
  jfeed_grades_total 2
  # HELP jfeed_errors_total Error responses emitted.
  # TYPE jfeed_errors_total counter
  jfeed_errors_total 0
  # HELP jfeed_outcomes_total Grade responses by outcome class.
  # TYPE jfeed_outcomes_total counter
  jfeed_outcomes_total{class="graded"} 1
  jfeed_outcomes_total{class="degraded"} 0
  jfeed_outcomes_total{class="rejected"} 1
  # HELP jfeed_cache_hits_total Result-cache hits, in-flight duplicates included.
  # TYPE jfeed_cache_hits_total counter
  jfeed_cache_hits_total 0
  # HELP jfeed_cache_misses_total Result-cache misses.
  # TYPE jfeed_cache_misses_total counter
  jfeed_cache_misses_total 2
  # HELP jfeed_cache_entries Result-cache occupancy.
  # TYPE jfeed_cache_entries gauge
  jfeed_cache_entries 2
  # HELP jfeed_queue_depth Grade requests queued when scraped.
  # TYPE jfeed_queue_depth gauge
  jfeed_queue_depth 0
  # HELP jfeed_queue_depth_max Deepest grade queue observed.
  # TYPE jfeed_queue_depth_max gauge
  jfeed_queue_depth_max 2
  # HELP jfeed_diagnostics_total Static-analysis findings delivered, by pass.
  # TYPE jfeed_diagnostics_total counter
  jfeed_diagnostics_total{pass="use-before-init"} 0
  jfeed_diagnostics_total{pass="dead-store"} 0
  jfeed_diagnostics_total{pass="unreachable"} 0
  jfeed_diagnostics_total{pass="missing-return"} 0
  jfeed_diagnostics_total{pass="suspicious-loop"} 0
  # HELP jfeed_grade_latency_ms Grade service time, milliseconds.
  # TYPE jfeed_grade_latency_ms histogram
  jfeed_grade_latency_ms_bucket{le="0.5"} N
  jfeed_grade_latency_ms_bucket{le="1"} N
  jfeed_grade_latency_ms_bucket{le="2.5"} N
  jfeed_grade_latency_ms_bucket{le="5"} N
  jfeed_grade_latency_ms_bucket{le="10"} N
  jfeed_grade_latency_ms_bucket{le="25"} N
  jfeed_grade_latency_ms_bucket{le="50"} N
  jfeed_grade_latency_ms_bucket{le="100"} N
  jfeed_grade_latency_ms_bucket{le="250"} N
  jfeed_grade_latency_ms_bucket{le="500"} N
  jfeed_grade_latency_ms_bucket{le="1000"} N
  jfeed_grade_latency_ms_bucket{le="+Inf"} 2
  jfeed_grade_latency_ms_sum S
  jfeed_grade_latency_ms_count 2
  # EOF

The slowlog ranks both grades with per-stage breakdowns; milliseconds
are wall-clock, so every number after a colon is masked — the rejected
submission's entry visibly stops at its parse stage:

  $ grep '"op":"slowlog"' mresponses.txt | sed -E 's/:[0-9][0-9.e+-]*/:N/g'
  {"id":"sl","op":"slowlog","n":N,"slowest":[{"assignment":"mitx-derivatives","ms":N,"outcome":"graded","stages":{"parse":N,"analysis":N,"pass":N,"epdg":N,"pairing":N,"match":N,"tests":N,"interp":N}},{"assignment":"mitx-derivatives","ms":N,"outcome":"rejected","stages":{"parse":N}}]}
  $ grep -c '"op":"slowlog","n":2' mresponses.txt
  1

Usage errors are caught before the daemon starts:

  $ jfeed serve --jobs 0 < /dev/null
  jfeed serve: --jobs must be at least 1 (got 0)
  [2]
