Multicore batch grading: --jobs N grades on N domains and the output is
byte-identical to --jobs 1 — deterministic merge, per-submission fuel.

  $ mkdir subs
  $ jfeed generate assignment1 --index 0 | tail -n +2 > subs/ref.java
  $ printf 'void assignment1(' > subs/truncated.java
  $ jfeed batch --jobs 1 --fuel 100000 assignment1 subs > seq.json
  [1]
  $ jfeed batch --jobs 4 --fuel 100000 assignment1 subs > par.json
  [1]
  $ cmp seq.json par.json && echo identical
  identical

The short flag spells the same thing:

  $ jfeed batch -j 2 --fuel 100000 assignment1 subs > par2.json
  [1]
  $ cmp seq.json par2.json && echo identical
  identical

A nonsensical width is a usage error (exit 2), like every other one:

  $ jfeed batch --jobs 0 assignment1 subs
  jfeed batch: --jobs must be at least 1 (got 0)
  [2]

The benchmark trajectory: `bench micro --json` writes BENCH_grading.json
(per-assignment ms/submission, sequential vs --jobs wall-clock, speedup,
the match-plan prefilter reject rate, the duplicate-corpus dedup
speedup, and the identical-output checks).  The schema is pinned — a
key rename must show up here as a diff:

  $ jfeed-bench micro --json --sample 2 --jobs 2 > /dev/null
  $ grep -c '"schema":"jfeed-bench-grading/3"' BENCH_grading.json
  1
  $ grep -o '"[a-z_]*":' BENCH_grading.json | sort -u
  "assignments":
  "batch":
  "dedup":
  "dedup_s":
  "dedup_speedup":
  "duplicate_ratio":
  "id":
  "identical":
  "jobs":
  "ms_per_submission":
  "no_dedup_s":
  "parallel_s":
  "prefilter_reject_rate":
  "sample":
  "schema":
  "seed":
  "sequential_s":
  "speedup":
  "submissions":
  "trace_overhead_pct":

Two identical-output checks ride along: the traced and parallel passes
must reproduce the sequential grades byte-for-byte, and the dedup pass
must reproduce the no-dedup outcomes (modulo the summary's own dedup
counters) on its duplicate-heavy corpus:

  $ grep -o '"identical":true' BENCH_grading.json
  "identical":true
  "identical":true

The serving trajectory: `bench serve` replays a generated corpus — half
α-renamed duplicates by default — through an in-process `jfeed serve`
daemon and writes BENCH_service.json (throughput, cache hit rate, tail
latency).  Its schema is pinned the same way:

  $ jfeed-bench serve --requests 8 --dup 50 --jobs 2 > /dev/null
  $ grep -c '"schema":"jfeed-bench-service/1"' BENCH_service.json
  1
  $ grep -o '"[a-z0-9_]*":' BENCH_service.json | sort -u
  "cache_hit_rate":
  "duplicate_ratio":
  "jobs":
  "p50_ms":
  "p95_ms":
  "requests":
  "schema":
  "throughput_rps":
  "wall_s":

The duplicate fraction of the stream really lands in the cache:

  $ grep -o '"cache_hit_rate":0.5000' BENCH_service.json
  "cache_hit_rate":0.5000

The overload trajectory: `bench load` drives the concurrent socket
daemon with an open-loop arrival sweep (latencies measured from the
intended arrival time, so coordinated omission cannot flatter the
tail) and writes BENCH_load.json — completions, sheds, degraded
admissions, p50/p95/p99 per rate.  Same pinning discipline:

  $ jfeed-bench load --rates 50,4000 --requests 10 --conns 2 --queue-cap 4 --watermark 2 > /dev/null
  $ grep -c '"schema":"jfeed-bench-load/2"' BENCH_load.json
  1
  $ grep -o '"[a-z0-9_]*":' BENCH_load.json | sort -u
  "achieved_rps":
  "cached":
  "completed":
  "conns":
  "degraded":
  "duplicate_ratio":
  "events_overhead_pct":
  "jobs":
  "p50_ms":
  "p95_ms":
  "p99_ms":
  "queue_cap":
  "rate_rps":
  "requests":
  "requests_per_rate":
  "schema":
  "shed":
  "shed_fuel":
  "sweep":
  "total_shed":
  "wall_s":
  "watermark":

One sweep row per requested rate, and the daemon answered every
request — graded or explicitly shed, never silently dropped:

  $ grep -o '"rate_rps":' BENCH_load.json | wc -l
  2

The regression gate: `bench diff` compares a fresh record against a
committed baseline and fails on any pinned metric that moved more than
10% in its bad direction (latency up, throughput or rates down).  A
record always passes against itself:

  $ jfeed-bench diff BENCH_load.json BENCH_load.json | sed 's/([0-9]* checked/(N checked/'
  ok: no pinned metric regressed more than 10% (N checked against BENCH_load.json)

A doctored copy with a collapsed completion count fails it:

  $ sed 's/"completed":[0-9]*/"completed":0/g' BENCH_load.json > regressed.json
  $ jfeed-bench diff BENCH_load.json regressed.json | head -n 1 | sed 's/: [0-9.]* ->/: BASE ->/'
  REGRESSION sweep.0.completed: BASE -> 0 (-100.0%)
  $ jfeed-bench diff BENCH_load.json regressed.json > /dev/null
  [1]

And records of different shapes refuse to compare at all:

  $ jfeed-bench diff BENCH_load.json BENCH_service.json
  jfeed-bench diff: schema mismatch: jfeed-bench-load/2 vs jfeed-bench-service/1
  [2]

The repair trajectory: `bench repair` injects single-edit faults into
each assignment's reference solution, runs the search on every mutant,
and writes BENCH_repair.json (repair rate, candidates screened before
the fix, jobs-invariance check).  Same pinning discipline:

  $ jfeed-bench repair --sample 1 --jobs 2 > /dev/null
  $ grep -c '"schema":"jfeed-bench-repair/1"' BENCH_repair.json
  1
  $ grep -o '"[a-z0-9_]*":' BENCH_repair.json | sort -u
  "assignments":
  "failing":
  "id":
  "identical":
  "jobs":
  "median_candidates":
  "mutants":
  "repair_rate":
  "repaired":
  "sample":
  "schema":
  "seed":
  "total":
  "wall_s":

The parallel search reproduced the sequential hints byte-for-byte:

  $ grep -o '"identical":true' BENCH_repair.json
  "identical":true

The analysis trajectory: `bench analyze` runs the full ten-pass
analysis — each reference solution serving as the efficiency oracle —
over a sample of every assignment and writes BENCH_analysis.json
(analysis ms/submission, findings per pass, and the loop bound-
inference hit rate).  Pass ids carry hyphens, so the per-pass counts
ride in {"pass":…,"n":…} objects and the key pin stays hyphen-free:

  $ jfeed-bench analyze --sample 2 > /dev/null
  $ grep -c '"schema":"jfeed-bench-analysis/1"' BENCH_analysis.json
  1
  $ grep -o '"[a-z0-9_]*":' BENCH_analysis.json | sort -u
  "assignments":
  "bound_hit_rate":
  "bounded":
  "diags":
  "id":
  "loops":
  "ms_per_submission":
  "n":
  "pass":
  "sample":
  "schema":
  "seed":
  "submissions":
  "total":

One diag-count object per pass, ten passes, twelve assignments plus
the total row:

  $ grep -o '"pass":' BENCH_analysis.json | wc -l
  130

