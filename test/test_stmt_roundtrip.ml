(** Statement-level printer/parser round-trip: a QCheck generator of
    well-formed statement trees (declarations, if/else, loops, switch,
    blocks) and the property [parse (render s) = s]. *)

open Jfeed_java

let gen_small_expr : Ast.expr QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        (int_bound 99 >|= fun n -> Ast.Int_lit n);
        (oneofl [ "a"; "i"; "x"; "sum" ] >|= fun v -> Ast.Var v);
        ( oneofl [ "a"; "i" ] >>= fun v ->
          int_bound 9 >|= fun n ->
          Ast.Binary (Ast.Add, Ast.Var v, Ast.Int_lit n) );
        ( oneofl [ "i"; "x" ] >>= fun v ->
          int_bound 9 >|= fun n ->
          Ast.Binary (Ast.Lt, Ast.Var v, Ast.Int_lit n) );
      ])

let gen_assign : Ast.expr QCheck.Gen.t =
  QCheck.Gen.(
    let* lhs = oneofl [ "i"; "x"; "sum" ] in
    let* op = oneofl Ast.[ Set; Add_eq; Mul_eq ] in
    let* rhs = gen_small_expr in
    return (Ast.Assign (op, Ast.Var lhs, rhs)))

let gen_stmt : Ast.stmt QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               (gen_assign >|= fun e -> Ast.Sexpr e);
               ( oneofl [ "i"; "v" ] >>= fun name ->
                 gen_small_expr >|= fun init ->
                 Ast.Sdecl
                   [
                     {
                       Ast.d_type = Ast.Tprim "int";
                       d_name = name;
                       d_init = Some init;
                     };
                   ] );
               return Ast.Sbreak;
               return Ast.Scontinue;
               (gen_small_expr >|= fun e -> Ast.Sreturn (Some e));
               return (Ast.Sreturn None);
               ( gen_small_expr >|= fun e ->
                 Ast.Sexpr
                   (Ast.Call
                      ( Some (Ast.Field (Ast.Var "System", "out")),
                        "println",
                        [ e ] )) );
             ]
         in
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           frequency
             [
               (4, leaf);
               ( 2,
                 let* c = gen_small_expr in
                 let* t = sub in
                 let* has_else = bool in
                 if has_else then
                   let* e = sub in
                   return (Ast.Sif (c, t, Some e))
                 else return (Ast.Sif (c, t, None)) );
               ( 1,
                 let* c = gen_small_expr in
                 let* b = sub in
                 return (Ast.Swhile (c, b)) );
               ( 1,
                 let* b = sub in
                 let* c = gen_small_expr in
                 return (Ast.Sdo (b, c)) );
               ( 1,
                 let* cond = gen_small_expr in
                 let* b = sub in
                 return
                   (Ast.Sfor
                      ( Some
                          (Ast.For_decl
                             [
                               {
                                 Ast.d_type = Ast.Tprim "int";
                                 d_name = "k";
                                 d_init = Some (Ast.Int_lit 0);
                               };
                             ]),
                        Some cond,
                        [ Ast.Incdec (Ast.Post_incr, Ast.Var "k") ],
                        b )) );
               ( 1,
                 let* body = list_size (int_bound 3) sub in
                 return (Ast.Sblock body) );
               ( 1,
                 let* scr = gen_small_expr in
                 let* c1 = sub in
                 let* c2 = sub in
                 return
                   (Ast.Sswitch
                      ( scr,
                        [
                          {
                            Ast.case_label = Some (Ast.Int_lit 1);
                            case_body = [ c1; Ast.Sbreak ];
                          };
                          { Ast.case_label = None; case_body = [ c2 ] };
                        ] )) );
             ])

(* The printer may brace a then-branch to avoid dangling-else capture, so
   the round trip holds modulo singleton-block flattening. *)
let rec flatten (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Sblock [ one ] -> flatten one
  | Ast.Sblock body -> Ast.Sblock (List.map flatten body)
  | Ast.Sif (c, t, e) -> Ast.Sif (c, flatten t, Option.map flatten e)
  | Ast.Swhile (c, b) -> Ast.Swhile (c, flatten b)
  | Ast.Sdo (b, c) -> Ast.Sdo (flatten b, c)
  | Ast.Sfor (i, c, u, b) -> Ast.Sfor (i, c, u, flatten b)
  | Ast.Sswitch (scr, cases) ->
      Ast.Sswitch
        ( scr,
          List.map
            (fun k -> { k with Ast.case_body = List.map flatten k.Ast.case_body })
            cases )
  | Ast.Sempty | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Sbreak | Ast.Scontinue
  | Ast.Sreturn _ ->
      s

let prop_stmt_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse (render stmt-tree) = stmt-tree"
    (QCheck.make ~print:(fun s -> Pretty.stmt s) gen_stmt)
    (fun s ->
      try flatten (Parser.parse_statement (Pretty.stmt s)) = flatten s
      with _ -> false)

let prop_program_roundtrip =
  QCheck.Test.make ~count:200 ~name:"parse (render method) = method"
    (QCheck.make
       ~print:(fun body ->
         Pretty.meth
           {
             Ast.m_ret = Ast.Tprim "void";
             m_name = "f";
             m_params = [ { Ast.p_type = Ast.Tprim "int"; p_name = "p" } ];
             m_body = body;
           })
       QCheck.Gen.(list_size (int_bound 4) gen_stmt))
    (fun body ->
      let m =
        {
          Ast.m_ret = Ast.Tprim "void";
          m_name = "f";
          m_params = [ { Ast.p_type = Ast.Tprim "int"; p_name = "p" } ];
          m_body = body;
        }
      in
      try
        match (Parser.parse_program (Pretty.meth m)).Ast.methods with
        | [ m' ] ->
            { m' with Ast.m_body = List.map flatten m'.Ast.m_body }
            = { m with Ast.m_body = List.map flatten m.Ast.m_body }
        | _ -> false
      with _ -> false)

let prop_epdg_total_on_generated_stmts =
  (* The EPDG builder must accept any well-formed method. *)
  QCheck.Test.make ~count:300 ~name:"EPDG construction is total"
    (QCheck.make QCheck.Gen.(list_size (int_bound 5) gen_stmt))
    (fun body ->
      let m =
        {
          Ast.m_ret = Ast.Tprim "void";
          m_name = "f";
          m_params = [ { Ast.p_type = Ast.Tprim "int"; p_name = "p" } ];
          m_body = body;
        }
      in
      match Jfeed_pdg.Epdg.of_method m with _ -> true)

let test_dangling_else_braced () =
  (* if (a) if (b) x = 1; else x = 2;  — the else belongs to the OUTER
     if in this AST, so the printer must brace the then-branch. *)
  let inner = Ast.Sif (Ast.Var "b", Ast.Sexpr (Ast.Assign (Ast.Set, Ast.Var "x", Ast.Int_lit 1)), None) in
  let outer =
    Ast.Sif
      ( Ast.Var "a",
        inner,
        Some (Ast.Sexpr (Ast.Assign (Ast.Set, Ast.Var "x", Ast.Int_lit 2))) )
  in
  let rendered = Pretty.stmt outer in
  let reparsed = Parser.parse_statement rendered in
  (match reparsed with
  | Ast.Sif (_, Ast.Sblock [ Ast.Sif (_, _, None) ], Some _) -> ()
  | _ -> Alcotest.failf "dangling else captured:\n%s" rendered);
  Alcotest.(check bool) "semantics preserved" true
    (flatten reparsed = flatten outer)

let suite =
  Alcotest.test_case "dangling else braced" `Quick test_dangling_else_braced
  :: List.map QCheck_alcotest.to_alcotest
    [
      prop_stmt_roundtrip;
      prop_program_roundtrip;
      prop_epdg_total_on_generated_stmts;
    ]
