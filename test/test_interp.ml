(** Tests for the Java-subset interpreter (the functional-testing
    substrate): arithmetic with Java int semantics, control flow, arrays,
    strings, Scanner over virtual files, the step budget, and variable
    tracing. *)

open Jfeed_interp

let run ?(config = Interp.default_config) ?(entry = "f") ~args src =
  Interp.run_source ~config src ~entry ~args

let out ?config ?entry ~args src =
  let o = run ?config ?entry ~args src in
  match o.Interp.error with
  | None -> o.Interp.stdout
  | Some e -> Alcotest.failf "unexpected runtime error: %s" e

let err ?config ?entry ~args src =
  match (run ?config ?entry ~args src).Interp.error with
  | Some e -> e
  | None -> Alcotest.fail "expected a runtime error"

let test_arith () =
  Alcotest.(check string)
    "basics" "17\n"
    (out ~args:[]
       "void f() { System.out.println(2 + 3 * 5); }");
  Alcotest.(check string)
    "division truncates" "-2\n"
    (out ~args:[] "void f() { System.out.println(-7 / 3); }");
  Alcotest.(check string)
    "modulo sign follows dividend" "-1\n"
    (out ~args:[] "void f() { System.out.println(-7 % 3); }");
  Alcotest.(check string)
    "int32 wrap-around" "-2147483648\n"
    (out ~args:[] "void f() { System.out.println(2147483647 + 1); }");
  Alcotest.(check string)
    "factorial overflow wraps like the JVM" "-288522240\n"
    (out ~args:[]
       "void f() { int p = 1; for (int i = 1; i <= 17; i++) p *= i; \
        System.out.println(p); }")

let test_division_by_zero () =
  Alcotest.(check string) "div" "/ by zero" (err ~args:[] "void f() { int x = 1 / 0; }")

let test_strings () =
  Alcotest.(check string)
    "concat" "n = 4\n"
    (out ~args:[] {|void f() { int n = 4; System.out.println("n = " + n); }|});
  Alcotest.(check string)
    "equals" "true false\n"
    (out ~args:[]
       {|void f() { String a = "x"; System.out.println(a.equals("x") + " " + a.equals("y")); }|});
  (* == on strings is reference equality: two distinct computed strings
     are never ==. *)
  Alcotest.(check string)
    "reference equality" "false\n"
    (out ~args:[]
       {|void f() { String a = "x" + ""; String b = "x" + ""; System.out.println(a == b); }|})

let test_arrays () =
  Alcotest.(check string)
    "new + store + length" "3 7\n"
    (out ~args:[]
       {|void f() { int[] a = new int[3]; a[1] = 7; System.out.println(a.length + " " + a[1]); }|});
  Alcotest.(check string)
    "array literal" "6\n"
    (out ~args:[]
       {|void f() { int[] a = {1, 2, 3}; System.out.println(a[0] + a[1] + a[2]); }|});
  Alcotest.(check bool)
    "out of bounds" true
    (String.length (err ~args:[] "void f() { int[] a = new int[2]; int x = a[5]; }") > 0)

let test_control_flow () =
  Alcotest.(check string)
    "break" "0 1 2 \n"
    (out ~args:[]
       {|void f() { for (int i = 0; i < 10; i++) { if (i == 3) break; System.out.print(i + " "); } System.out.println(""); }|});
  Alcotest.(check string)
    "continue" "1 3 \n"
    (out ~args:[]
       {|void f() { for (int i = 0; i < 4; i++) { if (i % 2 == 0) continue; System.out.print(i + " "); } System.out.println(""); }|});
  Alcotest.(check string)
    "ternary" "small\n"
    (out ~args:[]
       {|void f() { int x = 3; System.out.println(x < 5 ? "small" : "big"); }|});
  Alcotest.(check string)
    "switch with fallthrough to break" "two\n"
    (out ~args:[]
       {|void f() { int x = 2; switch (x) { case 1: System.out.println("one"); break; case 2: System.out.println("two"); break; default: System.out.println("other"); } }|})

let test_methods () =
  Alcotest.(check string)
    "helper call" "120\n"
    (out ~args:[ Value.Vint 5 ] ~entry:"main2"
       {|int fact(int n) { int f = 1; for (int i = 1; i <= n; i++) f *= i; return f; }
         void main2(int k) { System.out.println(fact(k)); }|});
  Alcotest.(check string)
    "recursion" "8\n"
    (out ~args:[ Value.Vint 6 ] ~entry:"main2"
       {|int fib(int n) { if (n <= 2) return 1; return fib(n - 1) + fib(n - 2); }
         void main2(int k) { System.out.println(fib(k)); }|})

let test_scanner () =
  let config =
    { Interp.files = [ ("data.txt", "alpha 42 beta\n7") ]; max_steps = 10_000 }
  in
  Alcotest.(check string)
    "token stream" "alpha-42-beta-7:done\n"
    (out ~config ~args:[]
       {|void f() {
           Scanner s = new Scanner(new File("data.txt"));
           String acc = "";
           String w = s.next();
           acc = acc + w + "-";
           int n = s.nextInt();
           acc = acc + n + "-";
           acc = acc + s.next() + "-" + s.nextInt();
           if (!s.hasNext())
             acc = acc + ":done";
           s.close();
           System.out.println(acc);
         }|});
  Alcotest.(check string)
    "missing file" "FileNotFoundException: nope.txt"
    (err ~args:[]
       {|void f() { Scanner s = new Scanner(new File("nope.txt")); }|});
  Alcotest.(check string)
    "type mismatch" "InputMismatchException: \"alpha\""
    (err ~config ~args:[]
       {|void f() { Scanner s = new Scanner(new File("data.txt")); int n = s.nextInt(); }|})

let test_step_limit () =
  let config = { Interp.files = []; max_steps = 500 } in
  Alcotest.(check string)
    "infinite loop cut" "step limit exceeded"
    (err ~config ~args:[] "void f() { while (true) { int x = 1; } }")

let test_math () =
  Alcotest.(check string)
    "pow and cast" "8\n"
    (out ~args:[] "void f() { System.out.println((int) Math.pow(2, 3)); }");
  Alcotest.(check string)
    "abs" "5\n"
    (out ~args:[] "void f() { System.out.println(Math.abs(-5)); }");
  Alcotest.(check string)
    "log10 digit count" "3\n"
    (out ~args:[]
       "void f() { System.out.println((int) Math.log10(123) + 1); }")

let test_scoping () =
  (* For-loop variables are scoped: two loops can redeclare i. *)
  Alcotest.(check string)
    "redeclared loop var" "01\n"
    (out ~args:[]
       {|void f() {
           for (int i = 0; i < 1; i++) System.out.print(i);
           for (int i = 1; i < 2; i++) System.out.print(i);
           System.out.println("");
         }|})

let test_incdec_semantics () =
  Alcotest.(check string)
    "post vs pre" "1 3\n"
    (out ~args:[]
       {|void f() { int i = 1; int a = i++; int b = ++i; System.out.println(a + " " + b); }|})

let test_trace () =
  let prog =
    Jfeed_java.Parser.parse_program
      "void f() { int x = 1; x = 2; int y = x; }"
  in
  let outcome, snaps = Interp.run_traced prog ~entry:"f" ~args:[] in
  Alcotest.(check bool) "no error" true (outcome.Interp.error = None);
  Alcotest.(check int) "one snapshot per statement" 3 (List.length snaps);
  (match List.rev snaps with
  | last :: _ ->
      Alcotest.(check (list (pair string string)))
        "final snapshot" [ ("x", "2"); ("y", "2") ] last
  | [] -> Alcotest.fail "no snapshots")

(* Property: the interpreter agrees with OCaml on random arithmetic. *)
let prop_arith_oracle =
  let gen =
    QCheck.Gen.(
      let* a = int_range (-1000) 1000 in
      let* b = int_range 1 100 in
      let* op = oneofl [ "+"; "-"; "*"; "/"; "%" ] in
      return (a, b, op))
  in
  QCheck.Test.make ~count:300 ~name:"arithmetic agrees with OCaml"
    (QCheck.make gen) (fun (a, b, op) ->
      let expect =
        match op with
        | "+" -> a + b
        | "-" -> a - b
        | "*" -> a * b
        | "/" -> a / b
        | _ -> a mod b
      in
      let src =
        Printf.sprintf "void f() { System.out.println(%d %s %d); }"
          a op b
      in
      out ~args:[] src = string_of_int expect ^ "\n")

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "methods and recursion" `Quick test_methods;
    Alcotest.test_case "scanner" `Quick test_scanner;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "math builtins" `Quick test_math;
    Alcotest.test_case "scoping" `Quick test_scoping;
    Alcotest.test_case "incr/decr value" `Quick test_incdec_semantics;
    Alcotest.test_case "variable tracing" `Quick test_trace;
    QCheck_alcotest.to_alcotest prop_arith_oracle;
  ]
