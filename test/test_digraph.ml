(** Unit and property tests for the graph substrate. *)

open Jfeed_graph

let build edges n =
  let g = Digraph.create () in
  for i = 0 to n - 1 do
    ignore (Digraph.add_node g i)
  done;
  List.iter (fun (s, t, e) -> Digraph.add_edge g s t e) edges;
  g

let test_empty () =
  let g = Digraph.create () in
  Alcotest.(check int) "no nodes" 0 (Digraph.node_count g);
  Alcotest.(check int) "no edges" 0 (Digraph.edge_count g);
  Alcotest.(check (list int)) "no node list" [] (Digraph.nodes g)

let test_add_nodes () =
  let g = Digraph.create () in
  let a = Digraph.add_node g "a" in
  let b = Digraph.add_node g "b" in
  Alcotest.(check int) "ids dense" 1 (b - a);
  Alcotest.(check string) "label a" "a" (Digraph.label g a);
  Alcotest.(check string) "label b" "b" (Digraph.label g b);
  Digraph.set_label g a "a'";
  Alcotest.(check string) "relabel" "a'" (Digraph.label g a)

let test_edges () =
  let g = build [ (0, 1, "x"); (0, 1, "y"); (1, 2, "x") ] 3 in
  Alcotest.(check int) "parallel edges kept" 3 (Digraph.edge_count g);
  Alcotest.(check bool) "mem labelled" true (Digraph.mem_edge g 0 1 "x");
  Alcotest.(check bool) "mem labelled 2" true (Digraph.mem_edge g 0 1 "y");
  Alcotest.(check bool) "not mem" false (Digraph.mem_edge g 1 0 "x");
  Alcotest.(check bool) "has_edge ignores label" true (Digraph.has_edge g 1 2);
  Digraph.add_edge g 0 1 "x";
  Alcotest.(check int) "duplicate labelled edge is no-op" 3
    (Digraph.edge_count g);
  Alcotest.(check int) "out degree" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in degree" 2 (Digraph.in_degree g 1)

let test_unknown_node () =
  let g = build [] 1 in
  Alcotest.check_raises "bad label" (Invalid_argument "Digraph: unknown node 7")
    (fun () -> ignore (Digraph.label g 7));
  Alcotest.check_raises "bad edge" (Invalid_argument "Digraph: unknown node 9")
    (fun () -> Digraph.add_edge g 0 9 "e")

let test_succ_pred () =
  let g = build [ (0, 1, "a"); (0, 2, "b"); (2, 1, "c") ] 3 in
  Alcotest.(check (list (pair int string)))
    "succ order" [ (1, "a"); (2, "b") ] (Digraph.succ g 0);
  Alcotest.(check (list (pair int string)))
    "pred order" [ (0, "a"); (2, "c") ] (Digraph.pred g 1)

let test_reachable () =
  let g = build [ (0, 1, ()); (1, 2, ()); (3, 0, ()) ] 5 in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2 ] (Digraph.reachable g 0);
  Alcotest.(check (list int)) "from 3" [ 3; 0; 1; 2 ] (Digraph.reachable g 3);
  Alcotest.(check (list int)) "isolated" [ 4 ] (Digraph.reachable g 4)

let test_topo () =
  let dag = build [ (0, 1, ()); (1, 2, ()); (0, 2, ()) ] 3 in
  (match Digraph.topological_sort dag with
  | Some [ 0; 1; 2 ] -> ()
  | Some other ->
      Alcotest.failf "unexpected order: %s"
        (String.concat "," (List.map string_of_int other))
  | None -> Alcotest.fail "expected a topological order");
  let cyclic = build [ (0, 1, ()); (1, 0, ()) ] 2 in
  Alcotest.(check bool)
    "cycle detected" true
    (Digraph.topological_sort cyclic = None)

let test_transpose () =
  let g = build [ (0, 1, "a"); (1, 2, "b") ] 3 in
  let t = Digraph.transpose g in
  Alcotest.(check bool) "reversed" true (Digraph.mem_edge t 1 0 "a");
  Alcotest.(check bool) "reversed 2" true (Digraph.mem_edge t 2 1 "b");
  Alcotest.(check int) "same node count" 3 (Digraph.node_count t)

let test_map_dot () =
  let g = build [ (0, 1, "e") ] 2 in
  let m = Digraph.map g ~fn:string_of_int ~fe:(fun e -> e ^ "!") in
  Alcotest.(check string) "mapped node label" "0" (Digraph.label m 0);
  Alcotest.(check bool) "mapped edge" true (Digraph.mem_edge m 0 1 "e!");
  let g2 = Digraph.create () in
  let a = Digraph.add_node g2 "a" in
  let b = Digraph.add_node g2 "b" in
  Digraph.add_edge g2 a b "x";
  let dot =
    Digraph.to_dot g2
      ~node_attrs:(fun _ l -> [ Digraph.Label l ])
      ~edge_attrs:(fun e -> [ Digraph.Label e ])
  in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "dot mentions edge" true (contains ~needle:"n0 -> n1" dot)

let test_dot_escaping () =
  (* A node label carrying the canonical rendering of a Java string
     literal — quotes, backslashes, even a raw newline — must emit valid
     DOT: every quote inside an attribute value escaped, no raw
     newlines.  This is what string-literal-bearing submissions feed
     [to_dot] through the EPDG. *)
  let g = Digraph.create () in
  let v = Digraph.add_node g "println(\"a \\\"b\\\"\")\nline2" in
  ignore v;
  let dot =
    Digraph.to_dot g
      ~node_attrs:(fun _ l -> [ Digraph.Label l; Digraph.Shape "box" ])
      ~edge_attrs:(fun _ -> [])
  in
  String.split_on_char '\n' dot
  |> List.iter (fun line ->
         (* Inside each line, unescaped quotes must balance: a quote is
            either preceded by a backslash that itself is not escaped, or
            it delimits an attribute value. *)
         let unescaped = ref 0 in
         String.iteri
           (fun i c ->
             if c = '"' then begin
               let rec backslashes j n =
                 if j >= 0 && line.[j] = '\\' then backslashes (j - 1) (n + 1)
                 else n
               in
               if backslashes (i - 1) 0 mod 2 = 0 then incr unescaped
             end)
           line;
         Alcotest.(check int)
           (Printf.sprintf "balanced quotes in %S" line)
           0 (!unescaped mod 2));
  Alcotest.(check bool)
    "escaped newline, not a raw one, inside the label" true
    (String.length (String.concat "" (String.split_on_char '\n' dot))
     < String.length dot
    (* the only raw newlines are the structural ones: header, one node
       line, closing brace *)
    && List.length (String.split_on_char '\n' dot) = 4)

let test_degree_counters () =
  (* Degrees come from maintained counters; they must track insertions,
     ignore duplicate no-ops, and count parallel edges separately. *)
  let g = build [] 3 in
  Alcotest.(check int) "fresh out" 0 (Digraph.out_degree g 0);
  Digraph.add_edge g 0 1 "a";
  Digraph.add_edge g 0 1 "b";
  Digraph.add_edge g 0 2 "a";
  Digraph.add_edge g 0 1 "a";
  (* duplicate: no-op *)
  Alcotest.(check int) "out counts parallel edges" 3 (Digraph.out_degree g 0);
  Alcotest.(check int) "in at 1" 2 (Digraph.in_degree g 1);
  Alcotest.(check int) "in at 2" 1 (Digraph.in_degree g 2);
  Alcotest.(check int) "untouched node" 0 (Digraph.in_degree g 0);
  Alcotest.check_raises "degree of unknown node"
    (Invalid_argument "Digraph: unknown node 9") (fun () ->
      ignore (Digraph.out_degree g 9))

(* Property tests ---------------------------------------------------- *)

let random_dag_gen =
  (* Edges only forward: always acyclic. *)
  QCheck.Gen.(
    sized (fun size ->
        let n = 2 + (size mod 12) in
        let* edges =
          list_size (int_bound 20)
            (let* s = int_bound (n - 2) in
             let* t = int_range (s + 1) (n - 1) in
             return (s, t))
        in
        return (n, edges)))

let prop_topo_respects_edges =
  QCheck.Test.make ~count:200 ~name:"topological sort respects edges"
    (QCheck.make random_dag_gen) (fun (n, edges) ->
      let g = build (List.map (fun (s, t) -> (s, t, ())) edges) n in
      match Digraph.topological_sort g with
      | None -> false
      | Some order ->
          let pos = Array.make n 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          List.for_all (fun (s, t) -> pos.(s) < pos.(t)) edges)

let prop_transpose_involution =
  QCheck.Test.make ~count:200 ~name:"transpose is an involution"
    (QCheck.make random_dag_gen) (fun (n, edges) ->
      let g = build (List.map (fun (s, t) -> (s, t, ())) edges) n in
      let tt = Digraph.transpose (Digraph.transpose g) in
      List.sort compare (Digraph.edges g)
      = List.sort compare (Digraph.edges tt))

let random_multigraph_gen =
  (* Arbitrary directions, parallel labelled edges, self loops. *)
  QCheck.Gen.(
    sized (fun size ->
        let n = 1 + (size mod 10) in
        let* edges =
          list_size (int_bound 30)
            (let* s = int_bound (n - 1) in
             let* t = int_bound (n - 1) in
             let* e = int_bound 2 in
             return (s, t, e))
        in
        return (n, edges)))

let prop_indexed_membership_agrees_with_scan =
  (* mem_edge/has_edge answer from hash sets and degrees from counters;
     all four must agree with a naive scan of the adjacency lists. *)
  QCheck.Test.make ~count:300 ~name:"edge index ≡ adjacency-list scan"
    (QCheck.make random_multigraph_gen) (fun (n, edges) ->
      let g = build edges n in
      let nodes = Digraph.nodes g in
      List.for_all
        (fun s ->
          let succs = Digraph.succ g s in
          Digraph.out_degree g s = List.length succs
          && Digraph.in_degree g s = List.length (Digraph.pred g s)
          && List.for_all
               (fun t ->
                 Digraph.has_edge g s t
                 = List.exists (fun (t', _) -> t' = t) succs
                 && List.for_all
                      (fun e ->
                        Digraph.mem_edge g s t e
                        = List.exists (fun (t', e') -> t' = t && e' = e) succs)
                      [ 0; 1; 2 ])
               nodes)
        nodes)

let prop_reachable_closed =
  QCheck.Test.make ~count:200 ~name:"reachable set is successor-closed"
    (QCheck.make random_dag_gen) (fun (n, edges) ->
      let g = build (List.map (fun (s, t) -> (s, t, ())) edges) n in
      let r = Digraph.reachable g 0 in
      List.for_all
        (fun v ->
          List.for_all (fun (w, _) -> List.mem w r) (Digraph.succ g v))
        r)

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty;
    Alcotest.test_case "add nodes" `Quick test_add_nodes;
    Alcotest.test_case "edges" `Quick test_edges;
    Alcotest.test_case "unknown nodes rejected" `Quick test_unknown_node;
    Alcotest.test_case "succ/pred order" `Quick test_succ_pred;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "topological sort" `Quick test_topo;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "map and dot" `Quick test_map_dot;
    Alcotest.test_case "dot label escaping" `Quick test_dot_escaping;
    Alcotest.test_case "degree counters" `Quick test_degree_counters;
    QCheck_alcotest.to_alcotest prop_indexed_membership_agrees_with_scan;
    QCheck_alcotest.to_alcotest prop_topo_respects_edges;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
    QCheck_alcotest.to_alcotest prop_reachable_closed;
  ]
