(** Tests for the synthetic submission generator: exact Table I space
    sizes, mixed-radix decode/encode, deterministic sampling, and
    parseability of the generated programs. *)

open Jfeed_gen

let all_specs = List.map (fun b -> b.Jfeed_kb.Bundles.gen) Jfeed_kb.Bundles.all

(* The paper's Table I column S. *)
let expected_sizes =
  [
    ("assignment1", 640_000);
    ("esc-LAB-3-P1-V1", 442_368);
    ("esc-LAB-3-P2-V1", 7_077_888);
    ("esc-LAB-3-P2-V2", 144);
    ("esc-LAB-3-P3-V1", 10_368);
    ("esc-LAB-3-P4-V1", 13_824);
    ("esc-LAB-3-P3-V2", 589_824);
    ("esc-LAB-3-P4-V2", 9_437_184);
    ("mitx-derivatives", 576);
    ("mitx-polynomials", 768);
    ("rit-all-g-medals", 559_872);
    ("rit-medals-by-ath", 746_496);
  ]

let test_sizes_match_table1 () =
  List.iter
    (fun spec ->
      let want = List.assoc spec.Spec.id expected_sizes in
      Alcotest.(check int) spec.Spec.id want (Spec.size spec))
    all_specs

let test_average_size () =
  (* The paper: "1.6M submissions per assignment on average". *)
  let total = List.fold_left (fun a s -> a + Spec.size s) 0 all_specs in
  let avg = total / List.length all_specs in
  Alcotest.(check bool) "about 1.6M" true (avg > 1_500_000 && avg < 1_700_000)

let test_validate () =
  List.iter
    (fun spec ->
      Alcotest.(check (list string)) (spec.Spec.id ^ " valid") []
        (Spec.validate spec))
    all_specs

let test_decode_encode_roundtrip () =
  List.iter
    (fun spec ->
      List.iter
        (fun idx ->
          Alcotest.(check int)
            (Printf.sprintf "%s idx %d" spec.Spec.id idx)
            idx
            (Spec.encode spec (Spec.decode spec idx)))
        (Spec.sample_indices spec ~n:50 ~seed:3))
    all_specs

let test_decode_bounds () =
  let spec = List.hd all_specs in
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Spec.decode spec (-1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too large rejected" true
    (try
       ignore (Spec.decode spec (Spec.size spec));
       false
     with Invalid_argument _ -> true)

let test_sampling_deterministic () =
  List.iter
    (fun spec ->
      let a = Spec.sample_indices spec ~n:20 ~seed:7 in
      let b = Spec.sample_indices spec ~n:20 ~seed:7 in
      let c = Spec.sample_indices spec ~n:20 ~seed:8 in
      Alcotest.(check bool) "same seed same sample" true (a = b);
      Alcotest.(check bool) "in range" true
        (List.for_all (fun i -> i >= 0 && i < Spec.size spec) a);
      if Spec.size spec > 1000 then
        Alcotest.(check bool) "different seed differs" true (a <> c))
    all_specs

let test_small_space_enumerated () =
  let p2v2 = List.find (fun s -> s.Spec.id = "esc-LAB-3-P2-V2") all_specs in
  Alcotest.(check int) "full enumeration when n >= size" 144
    (List.length (Spec.sample_indices p2v2 ~n:1000 ~seed:1))

let test_reference_is_all_good () =
  List.iter
    (fun spec ->
      let digits = Array.make (Array.length spec.Spec.choices) 0 in
      Alcotest.(check bool) (spec.Spec.id ^ " reference all-good") true
        (Spec.all_good spec digits);
      Alcotest.(check (list (triple string string pass)))
        (spec.Spec.id ^ " no deviations") []
        (Spec.deviations spec digits))
    all_specs

let test_every_sampled_submission_parses () =
  List.iter
    (fun spec ->
      List.iter
        (fun idx ->
          let src = Spec.source_of_index spec idx in
          match Jfeed_java.Parser.parse_program src with
          | _ -> ()
          | exception e ->
              Alcotest.failf "%s idx %d does not parse: %s\n%s" spec.Spec.id
                idx (Printexc.to_string e) src)
        (Spec.sample_indices spec ~n:120 ~seed:11))
    all_specs

let test_distinct_options_distinct_sources () =
  (* Flipping a choice must change the rendered program (except for
     structure choices that deliberately override others). *)
  List.iter
    (fun spec ->
      let n = Array.length spec.Spec.choices in
      let base = Spec.reference spec in
      let changed = ref 0 and total = ref 0 in
      for ci = 0 to n - 1 do
        for oi = 1 to Array.length spec.Spec.choices.(ci).Spec.labels - 1 do
          incr total;
          let digits = Array.make n 0 in
          digits.(ci) <- oi;
          if spec.Spec.render digits <> base then incr changed
        done
      done;
      Alcotest.(check int)
        (spec.Spec.id ^ " every flip changes the source")
        !total !changed)
    all_specs

(* Property: decode is the left inverse of encode on random digit
   vectors. *)
let prop_encode_decode =
  let spec = List.hd all_specs in
  let gen =
    QCheck.Gen.(
      let n = Array.length spec.Spec.choices in
      let* digits =
        flatten_a
          (Array.init n (fun i ->
               int_bound
                 (Array.length spec.Spec.choices.(i).Spec.labels - 1)))
      in
      return digits)
  in
  QCheck.Test.make ~count:300 ~name:"decode (encode digits) = digits"
    (QCheck.make gen) (fun digits ->
      Spec.decode spec (Spec.encode spec digits) = digits)

let suite =
  [
    Alcotest.test_case "sizes match Table I column S" `Quick
      test_sizes_match_table1;
    Alcotest.test_case "average space is 1.6M" `Quick test_average_size;
    Alcotest.test_case "spec validation" `Quick test_validate;
    Alcotest.test_case "decode/encode round trip" `Quick
      test_decode_encode_roundtrip;
    Alcotest.test_case "decode bounds" `Quick test_decode_bounds;
    Alcotest.test_case "deterministic sampling" `Quick
      test_sampling_deterministic;
    Alcotest.test_case "small spaces fully enumerated" `Quick
      test_small_space_enumerated;
    Alcotest.test_case "reference is all-good" `Quick test_reference_is_all_good;
    Alcotest.test_case "sampled submissions parse" `Quick
      test_every_sampled_submission_parses;
    Alcotest.test_case "flips change the source" `Quick
      test_distinct_options_distinct_sources;
    QCheck_alcotest.to_alcotest prop_encode_decode;
  ]
