(** Tests for algorithmic-strategy enforcement (§VI-C structural
    requirements). *)

open Jfeed_core
open Jfeed_kb

let parse = Jfeed_java.Parser.parse_program

let feedback_positive (r : Grader.result) =
  List.for_all (fun c -> c.Feedback.verdict = Feedback.Correct) r.Grader.comments

let single_loop =
  parse
    {|
void assignment1(int[] a) {
  int o = 0, e = 1;
  for (int i = 0; i < a.length; i++) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
  }
  System.out.println(o);
  System.out.println(e);
}
|}

let two_loops =
  parse
    {|
void assignment1(int[] a) {
  int o = 0, e = 1;
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 1)
      o += a[i];
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 0)
      e *= a[i];
  System.out.println(o);
  System.out.println(e);
}
|}

let test_single_loop_strategy () =
  let base = Bundles.assignment1.Bundles.grading in
  let strict = Strategies.apply Strategies.assignment1_single_loop base in
  (* Without the strategy both forms are accepted... *)
  Alcotest.(check bool) "plain: single loop ok" true
    (feedback_positive (Grader.grade base single_loop));
  Alcotest.(check bool) "plain: two loops ok" true
    (feedback_positive (Grader.grade base two_loops));
  (* ...with it, only the single-loop form is. *)
  Alcotest.(check bool) "strict: single loop ok" true
    (feedback_positive (Grader.grade strict single_loop));
  let r = Grader.grade strict two_loops in
  Alcotest.(check bool) "strict: two loops flagged" false
    (feedback_positive r);
  (* The flag is exactly the strategy constraint, not a pattern. *)
  let failing =
    List.filter
      (fun c -> c.Feedback.verdict <> Feedback.Correct)
      r.Grader.comments
  in
  Alcotest.(check (list string))
    "only the strategy constraints fail"
    [ "strat_same_bound"; "strat_same_index_init" ]
    (List.sort compare
       (List.filter_map
          (fun c ->
            match c.Feedback.about with
            | `Constraint id -> Some id
            | `Pattern _ -> None)
          failing))

let test_strategy_adds_to_score_denominator () =
  let base = Bundles.assignment1.Bundles.grading in
  let strict = Strategies.apply Strategies.assignment1_single_loop base in
  let r = Grader.grade strict single_loop in
  Alcotest.(check int) "two extra comments" 12
    (List.length r.Grader.comments)

let test_lookahead_strategy () =
  let b = Option.get (Bundles.find "esc-LAB-3-P1-V1") in
  let strict =
    Strategies.apply
      (Option.get (Strategies.find "esc-LAB-3-P1-V1-canonical-lookahead"))
      b.Bundles.grading
  in
  let reference = parse (Jfeed_gen.Spec.reference b.Bundles.gen) in
  Alcotest.(check bool) "reference satisfies the strategy" true
    (feedback_positive (Grader.grade strict reference));
  (* The flipped-comparison variant passes the tests but not the
     canonical-form strategy. *)
  let spec = b.Bundles.gen in
  let digits = Array.make (Array.length spec.Jfeed_gen.Spec.choices) 0 in
  Array.iteri
    (fun i c -> if c.Jfeed_gen.Spec.tag = "cond-flip" then digits.(i) <- 1)
    spec.Jfeed_gen.Spec.choices;
  let flipped = parse (spec.Jfeed_gen.Spec.render digits) in
  Alcotest.(check bool) "flipped form rejected" false
    (feedback_positive (Grader.grade strict flipped))

let test_registry () =
  Alcotest.(check int) "three strategies" 3 (List.length Strategies.all);
  Alcotest.(check bool) "find known" true
    (Strategies.find "assignment1-single-loop" <> None);
  Alcotest.(check bool) "find unknown" true (Strategies.find "nope" = None)

let suite =
  [
    Alcotest.test_case "single-loop strategy" `Quick test_single_loop_strategy;
    Alcotest.test_case "strategy extends the comment set" `Quick
      test_strategy_adds_to_score_denominator;
    Alcotest.test_case "canonical-lookahead strategy" `Quick
      test_lookahead_strategy;
    Alcotest.test_case "registry" `Quick test_registry;
  ]
