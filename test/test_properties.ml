(** System-level property tests: invariants that must hold for *every*
    submission in every assignment's search space, checked on random
    indices.  These are the guard rails for the whole pipeline —
    parse → EPDG → match → constraints → Λ. *)

open Jfeed_core
open Jfeed_kb
module G = Jfeed_graph.Digraph
module E = Jfeed_pdg.Epdg

let arbitrary_submission =
  (* (bundle index, submission index) — printed as assignment/index. *)
  let gen =
    QCheck.Gen.(
      let* bi = int_bound (List.length Bundles.all - 1) in
      let b = List.nth Bundles.all bi in
      let* idx = int_bound (Jfeed_gen.Spec.size b.Bundles.gen - 1) in
      return (bi, idx))
  in
  let print (bi, idx) =
    let b = List.nth Bundles.all bi in
    Printf.sprintf "%s #%d" b.Bundles.grading.Grader.a_id idx
  in
  QCheck.make ~print gen

let program_of (bi, idx) =
  let b = List.nth Bundles.all bi in
  ( b,
    Jfeed_java.Parser.parse_program
      (Jfeed_gen.Spec.source_of_index b.Bundles.gen idx) )

let prop_grading_total =
  QCheck.Test.make ~count:250 ~name:"grading is total and Λ is bounded"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      let r = Grader.grade b.Bundles.grading prog in
      let n = float_of_int (List.length r.Grader.comments) in
      r.Grader.score >= 0.0 && r.Grader.score <= n && r.Grader.comments <> [])

let prop_grading_deterministic =
  QCheck.Test.make ~count:100 ~name:"grading is deterministic"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      Grader.grade b.Bundles.grading prog = Grader.grade b.Bundles.grading prog)

let prop_score_is_lambda_sum =
  QCheck.Test.make ~count:100 ~name:"Λ is the sum of the verdict weights"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      let r = Grader.grade b.Bundles.grading prog in
      Float.abs
        (r.Grader.score
        -. List.fold_left
             (fun acc c -> acc +. Feedback.lambda c.Feedback.verdict)
             0.0 r.Grader.comments)
      < 1e-9)

let prop_extensions_never_lower_score =
  (* The §VII extensions only widen what is accepted. *)
  QCheck.Test.make ~count:100 ~name:"extensions never lower Λ"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      let base = Grader.grade b.Bundles.grading prog in
      let ext =
        Grader.grade ~normalize:true ~use_variants:true b.Bundles.grading prog
      in
      ext.Grader.score >= base.Grader.score -. 1e-9)

(* EPDG well-formedness over arbitrary generated submissions. *)

let defs g v =
  let info = G.label g.E.graph v in
  match info.E.n_type with
  | E.Decl -> Jfeed_java.Ast.vars_of_expr info.E.n_expr
  | _ -> Jfeed_java.Ast.assigned_vars info.E.n_expr

let reads g v =
  Jfeed_java.Ast.read_vars (E.node_expr g v)

let prop_epdg_wellformed =
  QCheck.Test.make ~count:150 ~name:"EPDG: Ctrl from Cond, Data is def-use"
    arbitrary_submission (fun key ->
      let _, prog = program_of key in
      List.for_all
        (fun (_, g) ->
          List.for_all
            (fun (s, t, e) ->
              match e with
              | E.Ctrl ->
                  (* Control edges only originate in conditions and are
                     never self loops. *)
                  E.node_type g s = E.Cond && s <> t
              | E.Data ->
                  (* A data edge's source defines a variable its target
                     reads. *)
                  s <> t
                  && List.exists (fun x -> List.mem x (reads g t)) (defs g s))
            (G.edges g.E.graph))
        (E.of_program prog))

let prop_epdg_single_ctrl_parent =
  QCheck.Test.make ~count:150
    ~name:"EPDG: at most one controlling condition per node (transitive \
           reduction)"
    arbitrary_submission (fun key ->
      let _, prog = program_of key in
      List.for_all
        (fun (_, g) ->
          List.for_all
            (fun v ->
              let ctrl_parents =
                List.filter (fun (_, e) -> e = E.Ctrl) (G.pred g.E.graph v)
              in
              List.length ctrl_parents <= 1)
            (G.nodes g.E.graph))
        (E.of_program prog))

let prop_interpreter_total =
  (* Whatever the submission, the interpreter's outcome is an outcome —
     errors are data, not exceptions. *)
  QCheck.Test.make ~count:120 ~name:"functional testing is total"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      let reference =
        Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
      in
      let expected =
        Jfeed_ftest.Runner.expected_outputs b.Bundles.suite reference
      in
      match Jfeed_ftest.Runner.run b.Bundles.suite ~expected prog with
      | Jfeed_ftest.Runner.Pass | Jfeed_ftest.Runner.Fail _ -> true)

let prop_type_index_matches_filter =
  (* The matcher's candidate sets Φ come from the precomputed type
     index; it must return exactly what the O(V) filter returned, in
     the same order, on every EPDG. *)
  QCheck.Test.make ~count:150 ~name:"EPDG: type index ≡ filter_nodes"
    arbitrary_submission (fun key ->
      let _, prog = program_of key in
      List.for_all
        (fun (_, g) ->
          List.for_all
            (fun ty ->
              E.nodes_of_type g ty
              = G.filter_nodes g.E.graph ~f:(fun _ info ->
                    info.E.n_type = ty))
            [ E.Assign; E.Break; E.Call; E.Cond; E.Decl; E.Return ])
        (E.of_program prog))

let prop_canonical_text_reparses =
  (* Every EPDG node's canonical text re-parses (templates rely on it). *)
  QCheck.Test.make ~count:100 ~name:"node canonical texts re-parse"
    arbitrary_submission (fun key ->
      let _, prog = program_of key in
      List.for_all
        (fun (_, g) ->
          List.for_all
            (fun v ->
              let info = G.label g.E.graph v in
              match info.E.n_type with
              | E.Decl | E.Break | E.Return -> true (* non-expression texts *)
              | E.Assign | E.Call | E.Cond -> (
                  match Jfeed_java.Parser.parse_expression info.E.n_text with
                  | _ -> true
                  | exception _ -> false))
            (G.nodes g.E.graph))
        (E.of_program prog))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_grading_total;
      prop_grading_deterministic;
      prop_score_is_lambda_sum;
      prop_extensions_never_lower_score;
      prop_epdg_wellformed;
      prop_epdg_single_ctrl_parent;
      prop_type_index_matches_filter;
      prop_interpreter_total;
      prop_canonical_text_reparses;
    ]
