(** System-level property tests: invariants that must hold for *every*
    submission in every assignment's search space, checked on random
    indices.  These are the guard rails for the whole pipeline —
    parse → EPDG → match → constraints → Λ. *)

open Jfeed_core
open Jfeed_kb
module G = Jfeed_graph.Digraph
module E = Jfeed_pdg.Epdg

let arbitrary_submission =
  (* (bundle index, submission index) — printed as assignment/index. *)
  let gen =
    QCheck.Gen.(
      let* bi = int_bound (List.length Bundles.all - 1) in
      let b = List.nth Bundles.all bi in
      let* idx = int_bound (Jfeed_gen.Spec.size b.Bundles.gen - 1) in
      return (bi, idx))
  in
  let print (bi, idx) =
    let b = List.nth Bundles.all bi in
    Printf.sprintf "%s #%d" b.Bundles.grading.Grader.a_id idx
  in
  QCheck.make ~print gen

let program_of (bi, idx) =
  let b = List.nth Bundles.all bi in
  ( b,
    Jfeed_java.Parser.parse_program
      (Jfeed_gen.Spec.source_of_index b.Bundles.gen idx) )

let prop_grading_total =
  QCheck.Test.make ~count:250 ~name:"grading is total and Λ is bounded"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      let r = Grader.grade b.Bundles.grading prog in
      let n = float_of_int (List.length r.Grader.comments) in
      r.Grader.score >= 0.0 && r.Grader.score <= n && r.Grader.comments <> [])

let prop_grading_deterministic =
  QCheck.Test.make ~count:100 ~name:"grading is deterministic"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      Grader.grade b.Bundles.grading prog = Grader.grade b.Bundles.grading prog)

let prop_score_is_lambda_sum =
  QCheck.Test.make ~count:100 ~name:"Λ is the sum of the verdict weights"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      let r = Grader.grade b.Bundles.grading prog in
      Float.abs
        (r.Grader.score
        -. List.fold_left
             (fun acc c -> acc +. Feedback.lambda c.Feedback.verdict)
             0.0 r.Grader.comments)
      < 1e-9)

let prop_extensions_never_lower_score =
  (* The §VII extensions only widen what is accepted. *)
  QCheck.Test.make ~count:100 ~name:"extensions never lower Λ"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      let base = Grader.grade b.Bundles.grading prog in
      let ext =
        Grader.grade ~normalize:true ~use_variants:true b.Bundles.grading prog
      in
      ext.Grader.score >= base.Grader.score -. 1e-9)

(* EPDG well-formedness over arbitrary generated submissions. *)

let defs g v =
  let info = G.label g.E.graph v in
  match info.E.n_type with
  | E.Decl -> Jfeed_java.Ast.vars_of_expr info.E.n_expr
  | _ -> Jfeed_java.Ast.assigned_vars info.E.n_expr

let reads g v =
  Jfeed_java.Ast.read_vars (E.node_expr g v)

let prop_epdg_wellformed =
  QCheck.Test.make ~count:150 ~name:"EPDG: Ctrl from Cond, Data is def-use"
    arbitrary_submission (fun key ->
      let _, prog = program_of key in
      List.for_all
        (fun (_, g) ->
          List.for_all
            (fun (s, t, e) ->
              match e with
              | E.Ctrl ->
                  (* Control edges only originate in conditions and are
                     never self loops. *)
                  E.node_type g s = E.Cond && s <> t
              | E.Data ->
                  (* A data edge's source defines a variable its target
                     reads. *)
                  s <> t
                  && List.exists (fun x -> List.mem x (reads g t)) (defs g s))
            (G.edges g.E.graph))
        (E.of_program prog))

let prop_epdg_single_ctrl_parent =
  QCheck.Test.make ~count:150
    ~name:"EPDG: at most one controlling condition per node (transitive \
           reduction)"
    arbitrary_submission (fun key ->
      let _, prog = program_of key in
      List.for_all
        (fun (_, g) ->
          List.for_all
            (fun v ->
              let ctrl_parents =
                List.filter (fun (_, e) -> e = E.Ctrl) (G.pred g.E.graph v)
              in
              List.length ctrl_parents <= 1)
            (G.nodes g.E.graph))
        (E.of_program prog))

let prop_interpreter_total =
  (* Whatever the submission, the interpreter's outcome is an outcome —
     errors are data, not exceptions. *)
  QCheck.Test.make ~count:120 ~name:"functional testing is total"
    arbitrary_submission (fun key ->
      let b, prog = program_of key in
      let reference =
        Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
      in
      let expected =
        Jfeed_ftest.Runner.expected_outputs b.Bundles.suite reference
      in
      match Jfeed_ftest.Runner.run b.Bundles.suite ~expected prog with
      | Jfeed_ftest.Runner.Pass | Jfeed_ftest.Runner.Fail _ -> true)

let prop_type_index_matches_filter =
  (* The matcher's candidate sets Φ come from the precomputed type
     index; it must return exactly what the O(V) filter returned, in
     the same order, on every EPDG. *)
  QCheck.Test.make ~count:150 ~name:"EPDG: type index ≡ filter_nodes"
    arbitrary_submission (fun key ->
      let _, prog = program_of key in
      List.for_all
        (fun (_, g) ->
          List.for_all
            (fun ty ->
              E.nodes_of_type g ty
              = G.filter_nodes g.E.graph ~f:(fun _ info ->
                    info.E.n_type = ty))
            [ E.Assign; E.Break; E.Call; E.Cond; E.Decl; E.Return ])
        (E.of_program prog))

let prop_canonical_text_reparses =
  (* Every EPDG node's canonical text re-parses (templates rely on it). *)
  QCheck.Test.make ~count:100 ~name:"node canonical texts re-parse"
    arbitrary_submission (fun key ->
      let _, prog = program_of key in
      List.for_all
        (fun (_, g) ->
          List.for_all
            (fun v ->
              let info = G.label g.E.graph v in
              match info.E.n_type with
              | E.Decl | E.Break | E.Return -> true (* non-expression texts *)
              | E.Assign | E.Call | E.Cond -> (
                  match Jfeed_java.Parser.parse_expression info.E.n_text with
                  | _ -> true
                  | exception _ -> false))
            (G.nodes g.E.graph))
        (E.of_program prog))

let bundle_patterns (b : Bundles.t) =
  (* Primaries and variants — every pattern the grader can ever search. *)
  List.map fst (Bundles.patterns b)
  @ List.concat_map
      (fun (q : Grader.method_spec) ->
        List.concat_map snd q.Grader.q_variants)
      b.Bundles.grading.Grader.a_methods

let prop_plan_matches_naive =
  (* The compiled-plan search must be a pure reordering of the naive
     one: same embedding set, same exhaustion flag, on every pattern of
     every bundle, both on generated submissions and on their
     Mutate-corpus variants (consistent renames + reflow). *)
  QCheck.Test.make ~count:60
    ~name:"matcher: plan-driven ≡ order-naive"
    QCheck.(pair arbitrary_submission small_nat)
    (fun ((bi, idx), seed) ->
      let b = List.nth Bundles.all bi in
      let src = Jfeed_gen.Spec.source_of_index b.Bundles.gen idx in
      let sources = [ src; Jfeed_gen.Mutate.rename_and_reflow ~seed src ] in
      List.for_all
        (fun s ->
          let graphs = E.of_source s in
          List.for_all
            (fun p ->
              List.for_all
                (fun (_, g) ->
                  (* γ is an assoc list in binding order; the join order
                     permutes it without changing the mapping, so
                     compare it as a set. *)
                  let norm (m : Matcher.embedding) =
                    (m.Matcher.iota, List.sort compare m.Matcher.gamma)
                  in
                  let plan = Matcher.embeddings_budgeted p g in
                  let naive = Matcher.embeddings_reference p g in
                  List.sort compare (List.map norm plan.Matcher.found)
                  = List.sort compare (List.map norm naive.Matcher.found)
                  && plan.Matcher.exhausted = naive.Matcher.exhausted)
                graphs)
            (bundle_patterns b))
        sources)

let strip_dedup s =
  (* Remove the summary's [,"dedup":{…}] object, leaving the rest of
     the bytes untouched. *)
  let marker = {|,"dedup":{|} in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length s then None
    else if String.sub s i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
      let j = String.index_from s (i + mlen) '}' in
      String.sub s 0 i ^ String.sub s (j + 1) (String.length s - j - 1)

let prop_dedup_byte_identity =
  (* A duplicate-heavy batch — base, two α-equivalent mutants, one
     distinct neighbour — graded with dedup must produce byte-identical
     output at jobs 1 and 4, and byte-identical to independent grading
     (--no-dedup) once the summary's dedup object is stripped.  Fuel is
     bounded, so per-item fuel fields are present and compared too. *)
  QCheck.Test.make ~count:8
    ~name:"batch dedup: byte-identity vs no-dedup, jobs-invariant"
    arbitrary_submission (fun (bi, idx) ->
      let b = List.nth Bundles.all bi in
      let size = Jfeed_gen.Spec.size b.Bundles.gen in
      let src = Jfeed_gen.Spec.source_of_index b.Bundles.gen idx in
      let other =
        Jfeed_gen.Spec.source_of_index b.Bundles.gen ((idx + 1) mod size)
      in
      let sources =
        [
          ("s0.java", Ok src);
          ("s1.java", Ok (Jfeed_gen.Mutate.alpha_rename ~seed:1 src));
          ("s2.java", Ok (Jfeed_gen.Mutate.rename_and_reflow ~seed:2 src));
          ("s3.java", Ok other);
        ]
      in
      let json ~jobs ~dedup =
        Jfeed_robust.Pipeline.summary_to_json
          (Jfeed_robust.Pipeline.run_batch ~fuel:500_000 ~jobs ~dedup b
             sources)
      in
      let base = json ~jobs:1 ~dedup:false in
      let d1 = json ~jobs:1 ~dedup:true in
      let d4 = json ~jobs:4 ~dedup:true in
      d1 = d4 && strip_dedup d1 = base)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_grading_total;
      prop_grading_deterministic;
      prop_score_is_lambda_sum;
      prop_extensions_never_lower_score;
      prop_epdg_wellformed;
      prop_epdg_single_ctrl_parent;
      prop_type_index_matches_filter;
      prop_interpreter_total;
      prop_canonical_text_reparses;
      prop_plan_matches_naive;
      prop_dedup_byte_identity;
    ]
