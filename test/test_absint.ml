(** Abstract interpretation layer: interval lattice laws, widening
    termination, engine soundness against the concrete interpreter on a
    generated program corpus, the five absint diagnostic passes with the
    merged suspicious-loop/constant-condition satellite, the efficiency
    oracle comparison, and the same invariance battery the flow passes
    pin — α-renaming, whitespace reflow, worker-pool width. *)

open Jfeed_kb
open Jfeed_java
module I = Jfeed_absint.Interval
module P = Jfeed_absint.Passes
module AI = P.AI
module E = AI.E
module D = Jfeed_analysis.Diagnostic
module Mutate = Jfeed_gen.Mutate
module Pool = Jfeed_parallel.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let of_pass pass src =
  List.filter (fun d -> d.D.pass = pass) (P.analyze_source src)

(* ------------------------------------------------------------------ *)
(* Interval lattice laws (qcheck)                                      *)

let arbitrary_interval =
  let interesting =
    [ -2147483648; -2147483647; -100; -7; -1; 0; 1; 7; 100; 2147483646;
      2147483647 ]
  in
  let gen =
    QCheck.Gen.(
      let* k = int_bound 9 in
      if k = 0 then return I.top
      else if k = 1 then map I.const (oneofl interesting)
      else
        let* a = oneofl interesting in
        let* b = oneofl interesting in
        return (I.range (min a b) (max a b)))
  in
  QCheck.make ~print:I.to_string gen

let leq a b = I.equal (I.join a b) b

let prop_join_lattice =
  QCheck.Test.make ~count:300 ~name:"interval join is a lub"
    QCheck.(triple arbitrary_interval arbitrary_interval arbitrary_interval)
    (fun (a, b, c) ->
      I.equal (I.join a b) (I.join b a)
      && I.equal (I.join a (I.join b c)) (I.join (I.join a b) c)
      && I.equal (I.join a a) a
      && leq a (I.join a b)
      && leq b (I.join a b))

let prop_meet_lower_bound =
  QCheck.Test.make ~count:300 ~name:"interval meet is a lower bound"
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) ->
      match I.meet a b with
      | None -> true (* disjoint: bottom, no interval to test *)
      | Some m -> leq m a && leq m b)

let prop_widen_covers =
  QCheck.Test.make ~count:300 ~name:"widening covers both arguments"
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) -> leq a (I.widen a b) && leq b (I.widen a b))

let prop_widen_terminates =
  (* Any widening chain stabilises: each step either fixes the state or
     sends one endpoint to infinity, so four steps always suffice. *)
  QCheck.Test.make ~count:200 ~name:"widening chains stabilise fast"
    QCheck.(small_list arbitrary_interval)
    (fun ys ->
      let w = ref I.(const 0) and steps = ref 0 in
      List.iter
        (fun y ->
          let next = I.widen !w (I.join !w y) in
          if not (I.equal next !w) then incr steps;
          w := next)
        ys;
      !steps <= 4)

let prop_narrow_between =
  QCheck.Test.make ~count:300
    ~name:"narrowing refines without undershooting"
    QCheck.(pair arbitrary_interval arbitrary_interval)
    (fun (a, b) ->
      if leq b a then
        let n = I.narrow a b in
        leq n a && leq b n
      else true)

let prop_const_mem =
  QCheck.Test.make ~count:100 ~name:"const n contains n"
    QCheck.(int_range (-1000) 1000)
    (fun n -> I.mem n (I.const n) && I.is_const (I.const n) = Some n)

(* ------------------------------------------------------------------ *)
(* Engine soundness vs the concrete interpreter (qcheck)               *)

(* Random straight-line-plus-structure programs over two int parameters:
   a few assignments, an optional branch, an optional constant-bounded
   accumulation loop.  The engine analyses the method with parameters
   unconstrained, so every concrete run with specific arguments must
   land inside the inferred return interval. *)
let arbitrary_program =
  let gen_expr vars =
    QCheck.Gen.(
      sized_size (int_bound 3)
        (fix (fun self n ->
             if n = 0 then
               oneof
                 [
                   map string_of_int (int_range (-20) 20); oneofl vars;
                 ]
             else
               let* op = oneofl [ "+"; "-"; "*"; "/"; "%" ] in
               let* l = self (n - 1) in
               let* r = self (n - 1) in
               return (Printf.sprintf "(%s %s %s)" l op r))))
  in
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let rec assigns i scope acc =
        if i = n then return (List.rev acc, scope)
        else
          let* e = gen_expr scope in
          let v = Printf.sprintf "x%d" i in
          assigns (i + 1) (v :: scope)
            (Printf.sprintf "    int %s = %s;" v e :: acc)
      in
      let* body, scope = assigns 0 [ "a"; "b" ] [] in
      let* branch =
        let* yes = bool in
        if not yes then return []
        else
          let* l = oneofl scope in
          let* r = oneofl scope in
          let* cmp = oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
          let* e1 = gen_expr scope in
          let* e2 = gen_expr scope in
          let t = List.hd scope in
          return
            [
              Printf.sprintf "    if (%s %s %s) { %s = %s; } else { %s = %s; }"
                l cmp r t e1 t e2;
            ]
      in
      let* loop =
        let* yes = bool in
        if not yes then return []
        else
          let* k = int_range 0 5 in
          let* e = gen_expr scope in
          let t = List.hd scope in
          return
            [
              Printf.sprintf
                "    for (int i9 = 0; i9 < %d; i9++) { %s = %s + %s; }" k t t e;
            ]
      in
      let* ret = oneofl scope in
      let src =
        Printf.sprintf "int f(int a, int b) {\n%s\n    return %s;\n}"
          (String.concat "\n" (body @ branch @ loop))
          ret
      in
      let* va = int_range (-100) 100 in
      let* vb = int_range (-100) 100 in
      return (src, va, vb))
  in
  QCheck.make ~print:(fun (src, va, vb) ->
      Printf.sprintf "%s\n-- f(%d, %d)" src va vb)
    gen

let prop_ret_sound =
  QCheck.Test.make ~count:300
    ~name:"concrete return value lies in the inferred interval"
    arbitrary_program
    (fun (src, va, vb) ->
      let prog = Parser.parse_program src in
      let m = List.hd prog.Ast.methods in
      let r = AI.analyze_meth m in
      let o =
        Jfeed_interp.Interp.run prog ~entry:"f"
          ~args:[ Jfeed_interp.Value.Vint va; Jfeed_interp.Value.Vint vb ]
      in
      match o.Jfeed_interp.Interp.result with
      | Some (Jfeed_interp.Value.Vint n) when not r.AI.exhausted -> (
          match r.AI.ret with Some iv -> I.mem n iv | None -> false)
      | _ -> true (* runtime error (e.g. /0) or exhausted engine: vacuous *))

(* ------------------------------------------------------------------ *)
(* Diagnostic passes (unit)                                            *)

let test_div_by_zero () =
  let src =
    "int f(int n) {\n    int zero = 0;\n    return n / zero;\n}"
  in
  match of_pass "div-by-zero" src with
  | [ d ] ->
      check_bool "message names the divisor" true
        (contains d.D.message "'zero' is always 0");
      check_bool "severity error" true (d.D.severity = D.Error)
  | ds -> Alcotest.failf "expected 1 div-by-zero, got %d" (List.length ds)

let test_array_oob () =
  let src =
    "int f() {\n    int[] b = new int[3];\n    return b[3];\n}"
  in
  (match of_pass "array-out-of-bounds" src with
  | [ d ] ->
      check_bool "out of bounds message" true
        (contains d.D.message "always out of bounds")
  | ds -> Alcotest.failf "expected 1 oob, got %d" (List.length ds));
  let neg = "int f(int[] a) {\n    return a[0 - 1];\n}" in
  match of_pass "array-out-of-bounds" neg with
  | [ d ] ->
      check_bool "negative message" true
        (contains d.D.message "always negative")
  | ds -> Alcotest.failf "expected 1 negative oob, got %d" (List.length ds)

let test_constant_condition_if () =
  let src =
    "int f(int n) {\n    int z = 0;\n    if (z > 0) { return 1; }\n\
    \    return n;\n}"
  in
  match of_pass "constant-condition" src with
  | [ d ] -> check_bool "always false" true (contains d.D.message "always false")
  | ds -> Alcotest.failf "expected 1 constant-condition, got %d" (List.length ds)

let test_unused_range () =
  let src =
    "int f(int n) {\n    int zero = 0;\n\
    \    if (zero == 0 && n > 5) { return 1; }\n    return n;\n}"
  in
  match of_pass "unused-range" src with
  | [ d ] ->
      check_bool "redundant leaf named" true
        (contains d.D.message "redundant test 'zero == 0'")
  | ds -> Alcotest.failf "expected 1 unused-range, got %d" (List.length ds)

(* The satellite: a constant-true loop guard the body never escapes
   draws BOTH the flow pass (suspicious-loop) and the interval pass
   (constant-condition) to the same position — the driver must deliver
   exactly one merged diagnostic there. *)
let test_merged_overlap () =
  let src =
    "int f(int n) {\n    int k = 3;\n    int t = 0;\n\
    \    while (k > 0) { t = t + n; }\n    return t;\n}"
  in
  let ds = P.analyze_source src in
  let at_loop = List.filter (fun d -> d.D.line = 4) ds in
  (match at_loop with
  | [ d ] ->
      check_bool "merged pass id" true (d.D.pass = "constant-condition");
      check_bool "interval half present" true
        (contains d.D.message "always true");
      check_bool "flow half appended" true
        (contains d.D.message "; loop condition only reads 'k'")
  | _ ->
      Alcotest.failf "expected exactly 1 merged diagnostic at the loop, got %d"
        (List.length at_loop));
  check_bool "no separate suspicious-loop survives" true
    (List.for_all (fun d -> d.D.pass <> "suspicious-loop") ds)

(* ------------------------------------------------------------------ *)
(* Loop bounds and the efficiency oracle                               *)

let quadratic =
  "int sumAll(int[] a) {\n    int total = 0;\n\
  \    for (int i = 0; i < a.length; i++) {\n\
  \        for (int j = 0; j <= i; j++) {\n\
  \            if (j == i) { total = total + a[i]; }\n        }\n    }\n\
  \    return total;\n}"

let linear =
  "int sumAll(int[] a) {\n    int total = 0;\n\
  \    for (int i = 0; i < a.length; i++) {\n\
  \        total = total + a[i];\n    }\n    return total;\n}"

let test_method_degrees () =
  let deg src =
    P.method_degrees (Parser.parse_program src)
  in
  check_bool "linear is degree 1" true (deg linear = [ ("sumAll", 1) ]);
  check_bool "quadratic is degree 2" true (deg quadratic = [ ("sumAll", 2) ]);
  check_int "degree strings" 0
    (compare
       [ P.degree_str 0; P.degree_str 1; P.degree_str 2 ]
       [ "O(1)"; "O(n)"; "O(n^2)" ])

let test_efficiency_oracle () =
  let oracle = Parser.parse_program linear in
  let sub = Parser.parse_program quadratic in
  (match
     List.filter
       (fun d -> d.D.pass = "efficiency")
       (P.analyze_program ~oracle sub)
   with
  | [ d ] ->
      check_bool "names both degrees" true
        (contains d.D.message "O(n^2)" && contains d.D.message "O(n)");
      check_bool "warning severity" true (d.D.severity = D.Warning)
  | ds -> Alcotest.failf "expected 1 efficiency diag, got %d" (List.length ds));
  check_bool "oracle against itself is silent" true
    (List.for_all
       (fun d -> d.D.pass <> "efficiency")
       (P.analyze_program ~oracle oracle))

let test_bound_stats () =
  let loops, bounded = P.bound_stats (Parser.parse_program quadratic) in
  check_int "two loops" 2 loops;
  check_int "both classified" 2 bounded

(* ------------------------------------------------------------------ *)
(* The twelve oracles stay absint-diagnostic-free                      *)

let test_oracles_clean () =
  List.iter
    (fun (b : Bundles.t) ->
      let prog =
        Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
      in
      let absint =
        List.filter
          (fun d -> List.mem d.D.pass P.pass_ids)
          (P.analyze_program prog)
      in
      if absint <> [] then
        Alcotest.failf "%s reference draws %d absint diagnostics"
          b.Bundles.grading.Jfeed_core.Grader.a_id (List.length absint))
    Bundles.all

(* ------------------------------------------------------------------ *)
(* Totality, widening budget and invariance over the mutated corpus    *)

let arbitrary_mutant =
  let gen =
    QCheck.Gen.(
      let* bi = int_bound (List.length Bundles.all - 1) in
      let b = List.nth Bundles.all bi in
      let* idx = int_bound (Jfeed_gen.Spec.size b.Bundles.gen - 1) in
      let* seed = int_bound 1_000_000 in
      return (bi, idx, seed))
  in
  let print (bi, idx, seed) =
    let b = List.nth Bundles.all bi in
    Printf.sprintf "%s #%d seed=%d" b.Bundles.grading.Jfeed_core.Grader.a_id
      idx seed
  in
  QCheck.make ~print gen

let source_of (bi, idx) =
  let b = List.nth Bundles.all bi in
  Jfeed_gen.Spec.source_of_index b.Bundles.gen idx

let fingerprint ds =
  List.sort compare (List.map (fun d -> (d.D.pass, d.D.meth, d.D.severity)) ds)

let prop_engine_terminates =
  QCheck.Test.make ~count:100
    ~name:"engine settles within budget over the corpus" arbitrary_mutant
    (fun (bi, idx, _) ->
      let prog = Parser.parse_program (source_of (bi, idx)) in
      List.for_all
        (fun m ->
          let r = AI.analyze_meth m in
          (not r.AI.exhausted) && r.AI.steps <= 50_000 && r.AI.widenings <= 64)
        prog.Ast.methods)

let prop_total_on_mutants =
  QCheck.Test.make ~count:100
    ~name:"combined analysis is total over the mutated corpus"
    arbitrary_mutant
    (fun (bi, idx, seed) ->
      let src = source_of (bi, idx) in
      List.for_all
        (fun s -> match P.analyze_source s with _ -> true)
        [ src; Mutate.whitespace ~seed src; Mutate.alpha_rename ~seed src ])

let prop_alpha_rename_invariant =
  QCheck.Test.make ~count:100
    ~name:"absint diagnostics invariant under alpha renaming"
    arbitrary_mutant
    (fun (bi, idx, seed) ->
      let src = source_of (bi, idx) in
      fingerprint (P.analyze_source src)
      = fingerprint (P.analyze_source (Mutate.alpha_rename ~seed src)))

let prop_whitespace_invariant =
  QCheck.Test.make ~count:100
    ~name:"absint diagnostics invariant under whitespace reflow"
    arbitrary_mutant
    (fun (bi, idx, seed) ->
      let src = source_of (bi, idx) in
      fingerprint (P.analyze_source src)
      = fingerprint (P.analyze_source (Mutate.whitespace ~seed src)))

let test_jobs_invariant () =
  let srcs =
    List.concat_map
      (fun b ->
        List.map
          (fun i -> Jfeed_gen.Spec.source_of_index b.Bundles.gen i)
          [ 0; 1; 2; 3 ])
      [ List.nth Bundles.all 0; List.nth Bundles.all 7 ]
  in
  let arr = Array.of_list srcs in
  let f src = List.map D.render (P.analyze_source src) in
  let one = Pool.map ~jobs:1 ~f arr in
  let four = Pool.map ~jobs:4 ~f arr in
  check_bool "jobs 1 = jobs 4" true (one = four)

let test_fuel_degrades_to_silence () =
  (* A starved engine must neither raise nor invent findings that need
     interval facts it could not compute. *)
  let ds =
    List.filter
      (fun d -> List.mem d.D.pass P.pass_ids)
      (P.analyze_source ~fuel:3 quadratic)
  in
  check_int "starved engine stays silent" 0 (List.length ds)

(* ------------------------------------------------------------------ *)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_join_lattice;
    QCheck_alcotest.to_alcotest prop_meet_lower_bound;
    QCheck_alcotest.to_alcotest prop_widen_covers;
    QCheck_alcotest.to_alcotest prop_widen_terminates;
    QCheck_alcotest.to_alcotest prop_narrow_between;
    QCheck_alcotest.to_alcotest prop_const_mem;
    QCheck_alcotest.to_alcotest prop_ret_sound;
    Alcotest.test_case "div-by-zero" `Quick test_div_by_zero;
    Alcotest.test_case "array-out-of-bounds" `Quick test_array_oob;
    Alcotest.test_case "constant-condition" `Quick test_constant_condition_if;
    Alcotest.test_case "unused-range" `Quick test_unused_range;
    Alcotest.test_case "merged overlap diagnostic" `Quick test_merged_overlap;
    Alcotest.test_case "method degrees" `Quick test_method_degrees;
    Alcotest.test_case "efficiency oracle" `Quick test_efficiency_oracle;
    Alcotest.test_case "bound stats" `Quick test_bound_stats;
    Alcotest.test_case "oracle references are clean" `Quick test_oracles_clean;
    Alcotest.test_case "fuel exhaustion degrades to silence" `Quick
      test_fuel_degrades_to_silence;
    Alcotest.test_case "diagnostics invariant under --jobs" `Quick
      test_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_engine_terminates;
    QCheck_alcotest.to_alcotest prop_total_on_mutants;
    QCheck_alcotest.to_alcotest prop_alpha_rename_invariant;
    QCheck_alcotest.to_alcotest prop_whitespace_invariant;
  ]
