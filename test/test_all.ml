let () =
  Alcotest.run "jfeed"
    [ ("digraph", Test_digraph.suite); ("java", Test_java.suite);
      ("template", Test_template.suite); ("epdg", Test_epdg.suite);
      ("matcher", Test_matcher.suite); ("interp", Test_interp.suite); ("grader", Test_grader.suite); ("gen", Test_gen.suite);
      ("kb", Test_kb.suite); ("baselines", Test_baselines.suite); ("ftest", Test_ftest.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite); ("inline", Test_inline.suite);
      ("strategies", Test_strategies.suite);
      ("stmt-roundtrip", Test_stmt_roundtrip.suite);
      ("robust", Test_robust.suite); ("parallel", Test_parallel.suite);
      ("service", Test_service.suite); ("analysis", Test_analysis.suite);
      ("trace", Test_trace.suite); ("repair", Test_repair.suite);
      ("absint", Test_absint.suite) ]
