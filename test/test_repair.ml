(** The repair subsystem: the shared edit catalog, fault injection, the
    early-exit test runner, and the minimal-fix search — rate over the
    mutant corpus, jobs-invariance, budget totality. *)

open Jfeed_java
open Jfeed_kb
module Mutate = Jfeed_gen.Mutate
module Runner = Jfeed_ftest.Runner
module Repair = Jfeed_repair.Repair

let check = Alcotest.(check bool)

(* The cheap-to-interpret bundles the heavier properties sample from;
   rate and invariance hold on all twelve (the bench gate covers them),
   these keep the unit suite fast. *)
let corpus_bundles =
  [
    Bundles.assignment1; Bundles.esc_p2v2; Bundles.mitx_derivatives;
    Bundles.mitx_polynomials;
  ]

let reference_src (b : Bundles.t) = Jfeed_gen.Spec.reference b.Bundles.gen

(* ------------------------------------------------------------------ *)
(* Edit catalog *)

let test_edit_roundtrip () =
  List.iter
    (fun (b : Bundles.t) ->
      let src = reference_src b in
      let prog, srcmap = Parser.parse_program_located src in
      let sites = Edit.enumerate ~srcmap prog in
      check
        (Printf.sprintf "%s has edit sites" b.grading.Jfeed_core.Grader.a_id)
        true (sites <> []);
      List.iter
        (fun (s : Edit.site) ->
          let edited = Edit.apply prog s in
          check "apply changes the program" true (edited <> prog);
          let printed = Pretty.program edited in
          check
            (Printf.sprintf "site %d (%s) round-trips" s.Edit.s_id
               (Edit.kind_slug s.Edit.s_kind))
            true
            (Parser.parse_program printed = edited))
        sites)
    corpus_bundles

let test_edit_enumeration_deterministic () =
  let src = reference_src Bundles.assignment1 in
  let prog, srcmap = Parser.parse_program_located src in
  let a = Edit.enumerate ~srcmap prog in
  let b = Edit.enumerate ~srcmap prog in
  check "same sites both times" true (a = b);
  Alcotest.(check (list int))
    "ids are the enumeration order"
    (List.init (List.length a) Fun.id)
    (List.map (fun (s : Edit.site) -> s.Edit.s_id) a)

let test_edit_positions () =
  let src = reference_src Bundles.assignment1 in
  let prog, srcmap = Parser.parse_program_located src in
  let sites = Edit.enumerate ~srcmap prog in
  check "every site is positioned (srcmap on)" true
    (List.for_all (fun (s : Edit.site) -> s.Edit.s_pos <> None) sites);
  let bare = Edit.enumerate prog in
  check "no positions without a srcmap" true
    (List.for_all (fun (s : Edit.site) -> s.Edit.s_pos = None) bare);
  check "srcmap does not change the sites otherwise" true
    (List.map (fun (s : Edit.site) -> (s.Edit.s_id, s.Edit.s_before, s.Edit.s_after)) sites
    = List.map (fun (s : Edit.site) -> (s.Edit.s_id, s.Edit.s_before, s.Edit.s_after)) bare)

let test_guard_negation_unwraps () =
  let prog =
    Parser.parse_program
      "void f(int x) { if (!(x < 3)) System.out.println(x); }"
  in
  let negs =
    List.filter
      (fun (s : Edit.site) -> s.Edit.s_kind = Edit.Cond_negate)
      (Edit.enumerate prog)
  in
  Alcotest.(check int) "one guard, one negation site" 1 (List.length negs);
  let s = List.hd negs in
  check "un-negates instead of double-negating" true
    (s.Edit.s_after = "x < 3")

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let test_fault_inject_deterministic () =
  let src = reference_src Bundles.assignment1 in
  match (Mutate.fault_inject ~seed:7 src, Mutate.fault_inject ~seed:7 src) with
  | Some (m1, f1), Some (m2, f2) ->
      check "same seed, same mutant" true (m1 = m2 && f1 = f2);
      check "mutant differs from canonical base" true
        (m1 <> Pretty.program (Parser.parse_program src));
      check "mutant still parses" true
        (match Parser.parse_program m1 with _ -> true
         | exception _ -> false)
  | _ -> Alcotest.fail "reference offers no fault site?"

let test_fault_metadata_matches_catalog () =
  let src = reference_src Bundles.assignment1 in
  let sites = Mutate.fault_sites src in
  check "fault sites exist" true (sites <> []);
  (* every seed's injected fault is one of the enumerated sites *)
  List.iter
    (fun seed ->
      match Mutate.fault_inject ~seed src with
      | None -> Alcotest.fail "injection returned nothing"
      | Some (_, f) ->
          check
            (Printf.sprintf "seed %d fault is in the catalog" seed)
            true
            (List.exists
               (fun (s : Mutate.fault) ->
                 s.Mutate.f_kind = f.Mutate.f_kind
                 && s.Mutate.f_before = f.Mutate.f_before
                 && s.Mutate.f_after = f.Mutate.f_after)
               sites))
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Ftest runner: report / early exit *)

let suite_setup (b : Bundles.t) =
  let reference = Parser.parse_program (reference_src b) in
  let expected = Runner.expected_outputs b.suite reference in
  (reference, expected)

let test_report_modes_agree_on_pass () =
  List.iter
    (fun (b : Bundles.t) ->
      let reference, expected = suite_setup b in
      let full = Runner.report b.suite ~expected reference in
      let early = Runner.report ~early_exit:true b.suite ~expected reference in
      check "all cases pass" true (full.Runner.rep_failures = []);
      check "full run executed every case" true
        (full.Runner.rep_ran = full.Runner.rep_total);
      check "early-exit report is identical when everything passes" true
        (full = early))
    corpus_bundles

let test_report_early_exit_stops () =
  let b = Bundles.assignment1 in
  let _, expected = suite_setup b in
  (* a program that fails every case immediately *)
  let broken = Parser.parse_program "void assignment1(int[] a) { return; }" in
  let full = Runner.report b.suite ~expected broken in
  let early = Runner.report ~early_exit:true b.suite ~expected broken in
  check "full run collects every failure" true
    (List.length full.Runner.rep_failures = full.Runner.rep_total);
  Alcotest.(check int) "early exit stops after the first" 1
    (List.length early.Runner.rep_failures);
  Alcotest.(check int) "early exit ran exactly one case" 1
    early.Runner.rep_ran;
  check "screen agrees" false (Runner.screen b.suite ~expected broken)

let test_report_malformed_suite_total () =
  let b = Bundles.assignment1 in
  let reference, _ = suite_setup b in
  let r = Runner.report b.suite ~expected:[] reference in
  check "mismatch lands on the pseudo-case" true
    (List.exists (fun (c, _) -> c = "<suite>") r.Runner.rep_failures)

(* ------------------------------------------------------------------ *)
(* Repair search *)

let failing_mutants (b : Bundles.t) ~seeds =
  let base = reference_src b in
  List.filter_map
    (fun seed ->
      match Mutate.fault_inject ~seed base with
      | None -> None
      | Some (msrc, fault) -> Some (msrc, fault))
    seeds

(* The acceptance bar: repair re-finds a passing fix for at least this
   fraction of the failing single-edit mutants.  The catalog is closed
   under inverses, so in practice the measured rate is 1.0 — the pin
   leaves room for suites where an unrelated passing edit is cheaper. *)
let pinned_rate = 0.6

let test_repair_rate_over_mutants () =
  let seeds = List.init 8 Fun.id in
  let failing = ref 0 and repaired = ref 0 in
  List.iter
    (fun (b : Bundles.t) ->
      List.iter
        (fun (msrc, _) ->
          let o = Repair.search b msrc in
          match o.Repair.status with
          | Repair.Already_passing | Repair.Unrepairable _ -> ()
          | Repair.Repaired ->
              incr failing;
              incr repaired;
              (* the hint really is a fix: applying it passes the suite *)
              let h = Option.get o.Repair.hint in
              let _, expected = suite_setup b in
              check "hint source passes the suite" true
                (Runner.screen b.suite ~expected
                   (Parser.parse_program h.Repair.h_source))
          | Repair.No_repair -> incr failing)
        (failing_mutants b ~seeds))
    corpus_bundles;
  check "corpus produced failing mutants" true (!failing > 0);
  let rate = float_of_int !repaired /. float_of_int !failing in
  if rate < pinned_rate then
    Alcotest.failf "repair rate %.2f below pinned %.2f (%d/%d)" rate
      pinned_rate !repaired !failing

let test_repair_jobs_invariant () =
  let seeds = [ 0; 1; 2 ] in
  List.iter
    (fun (b : Bundles.t) ->
      List.iter
        (fun (msrc, _) ->
          let o1 = Repair.search ~jobs:1 b msrc in
          let o4 = Repair.search ~jobs:4 b msrc in
          check "outcome identical at --jobs 1 and 4" true
            (Repair.to_json o1 = Repair.to_json o4))
        (failing_mutants b ~seeds))
    [ Bundles.assignment1; Bundles.mitx_polynomials ]

let test_repair_budget_totality () =
  let b = Bundles.assignment1 in
  let msrc, _ =
    List.hd (failing_mutants b ~seeds:[ 0 ])
  in
  let starved = Repair.search ~fuel:0 b msrc in
  check "zero fuel screens nothing" true
    (starved.Repair.candidates = 0 && starved.Repair.status = Repair.No_repair);
  check "zero fuel reports exhaustion" true starved.Repair.exhausted;
  let tiny = Repair.search ~fuel:1 b msrc in
  check "one unit screens at most one candidate" true
    (tiny.Repair.candidates <= 1);
  check "tiny budgets still terminate and report" true
    (tiny.Repair.status = Repair.No_repair
    || tiny.Repair.status = Repair.Repaired);
  (* deadline axis: an already-expired deadline also degrades cleanly *)
  let expired = Repair.search ~deadline_s:0.0 b msrc in
  check "expired deadline yields no-repair, not a hang" true
    (expired.Repair.candidates = 0
    && expired.Repair.status = Repair.No_repair
    && expired.Repair.exhausted)

let test_repair_unparseable_and_passing () =
  let b = Bundles.assignment1 in
  let garbage = Repair.search b "void oops(" in
  check "garbage input is unrepairable, not a crash" true
    (match garbage.Repair.status with
    | Repair.Unrepairable _ -> true
    | _ -> false);
  let ok = Repair.search b (reference_src b) in
  check "reference is already passing" true
    (ok.Repair.status = Repair.Already_passing)

let test_repair_finds_minimal_edit () =
  (* the classic off-by-one: [i <= a.length] walks off the array *)
  let b = Bundles.assignment1 in
  let buggy =
    "void assignment1(int[] a) {\n\
    \    int odd = 0;\n\
    \    int even = 1;\n\
    \    for (int i = 0; i <= a.length; i++) {\n\
    \        if (i % 2 == 1)\n\
    \            odd += a[i];\n\
    \        if (i % 2 == 0)\n\
    \            even *= a[i];\n\
    \    }\n\
    \    System.out.println(odd);\n\
    \    System.out.println(even);\n\
     }\n"
  in
  let o = Repair.search b buggy in
  match o.Repair.hint with
  | Some h ->
      check "the minimal fix is the bound flip" true
        (h.Repair.h_before = "i <= a.length" && h.Repair.h_after = "i < a.length");
      check "kind is cmp-flip" true (h.Repair.h_kind = Edit.Cmp_flip);
      check "positioned at the for statement" true
        (match h.Repair.h_pos with
        | Some p -> p.Srcmap.line = 4
        | None -> false)
  | None -> Alcotest.fail "no repair found for the off-by-one"

let contains_sub hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_outcome_json_stability () =
  let b = Bundles.assignment1 in
  let item =
    Jfeed_robust.Pipeline.grade_submission ~name:"s.java" b (reference_src b)
  in
  let plain = Jfeed_robust.Outcome.to_json item.Jfeed_robust.Pipeline.outcome in
  check "no repair field unless requested" false
    (contains_sub plain {|"repair":|});
  let with_repair =
    Jfeed_robust.Outcome.to_json ~repair:{|{"status":"no-repair"}|}
      item.Jfeed_robust.Pipeline.outcome
  in
  check "repair field spliced when requested" true
    (contains_sub with_repair {|"repair":{"status":"no-repair"}|})

let suite =
  [
    Alcotest.test_case "edit: apply round-trips through pretty/parse" `Quick
      test_edit_roundtrip;
    Alcotest.test_case "edit: enumeration is deterministic" `Quick
      test_edit_enumeration_deterministic;
    Alcotest.test_case "edit: srcmap positions ride along" `Quick
      test_edit_positions;
    Alcotest.test_case "edit: negated guards are un-negated" `Quick
      test_guard_negation_unwraps;
    Alcotest.test_case "mutate: fault injection is deterministic" `Quick
      test_fault_inject_deterministic;
    Alcotest.test_case "mutate: fault metadata matches the catalog" `Quick
      test_fault_metadata_matches_catalog;
    Alcotest.test_case "ftest: report modes agree on a passing program" `Quick
      test_report_modes_agree_on_pass;
    Alcotest.test_case "ftest: early exit stops at the first failure" `Quick
      test_report_early_exit_stops;
    Alcotest.test_case "ftest: malformed suite stays total" `Quick
      test_report_malformed_suite_total;
    Alcotest.test_case "repair: rate over single-edit mutants" `Slow
      test_repair_rate_over_mutants;
    Alcotest.test_case "repair: byte-identical at --jobs 1/4" `Slow
      test_repair_jobs_invariant;
    Alcotest.test_case "repair: total under budget exhaustion" `Quick
      test_repair_budget_totality;
    Alcotest.test_case "repair: unparseable and already-passing inputs" `Quick
      test_repair_unparseable_and_passing;
    Alcotest.test_case "repair: finds the off-by-one minimal fix" `Quick
      test_repair_finds_minimal_edit;
    Alcotest.test_case "outcome: repair field is opt-in and byte-stable" `Quick
      test_outcome_json_stability;
  ]
