(** Tests for the §VII future-work extensions: else-polarity
    normalization and the pattern hierarchy (variants).  Both are off by
    default — these tests check that turning them on recovers the
    false-negative discrepancies the paper discusses, without changing
    verdicts on already-accepted submissions. *)

open Jfeed_core
open Jfeed_kb

let feedback_positive (r : Grader.result) =
  List.for_all (fun c -> c.Feedback.verdict = Feedback.Correct) r.Grader.comments

let variant_program (b : Bundles.t) ~tag ~option =
  let spec = b.Bundles.gen in
  let digits = Array.make (Array.length spec.Jfeed_gen.Spec.choices) 0 in
  Array.iteri
    (fun i c ->
      if c.Jfeed_gen.Spec.tag = tag then
        digits.(i) <-
          (let rec find k =
             if c.Jfeed_gen.Spec.labels.(k) = option then k else find (k + 1)
           in
           find 0))
    spec.Jfeed_gen.Spec.choices;
  Jfeed_java.Parser.parse_program (spec.Jfeed_gen.Spec.render digits)

(* -------------------------------------------------------------- *)
(* Normalization                                                    *)

let test_normalize_rewrite () =
  let prog =
    Jfeed_java.Parser.parse_program
      "void f(int x) { if (x != 0) System.out.println(\"a\"); else \
       System.out.println(\"b\"); }"
  in
  let n = Jfeed_java.Normalize.flip_negated_else prog in
  let rendered = Jfeed_java.Pretty.program n in
  Alcotest.(check bool) "condition flipped" true
    (String.length rendered > 0
    &&
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
      at 0
    in
    contains "x == 0" rendered
    && (* branches swapped: "b" now under the then-branch *)
    contains "if (x == 0)" rendered)

let test_normalize_not_else () =
  (* An else-less negated if is left alone (the rewrite needs both
     branches). *)
  let src = "void f(int x) { if (x != 0) x = 1; }" in
  let prog = Jfeed_java.Parser.parse_program src in
  Alcotest.(check bool) "unchanged" true
    (Jfeed_java.Normalize.flip_negated_else prog = prog)

let test_normalize_recovers_polarity_disc () =
  (* esc-LAB-3-P4-V1's "not-equals-else" option: flagged by the paper's
     system (Disc_neg), accepted once normalized. *)
  let b = Option.get (Bundles.find "esc-LAB-3-P4-V1") in
  let prog = variant_program b ~tag:"polarity" ~option:"not-equals-else" in
  Alcotest.(check bool) "flagged without normalization" false
    (feedback_positive (Grader.grade b.Bundles.grading prog));
  Alcotest.(check bool) "accepted with normalization" true
    (feedback_positive (Grader.grade ~normalize:true b.Bundles.grading prog))

let test_normalize_neutral_on_reference () =
  List.iter
    (fun (b : Bundles.t) ->
      let reference =
        Jfeed_java.Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
      in
      Alcotest.(check bool)
        (b.Bundles.grading.Grader.a_id ^ " reference still positive")
        true
        (feedback_positive
           (Grader.grade ~normalize:true ~use_variants:true b.Bundles.grading
              reference)))
    Bundles.all

(* -------------------------------------------------------------- *)
(* Pattern hierarchy (variants)                                     *)

let test_variants_recover_log10 () =
  (* The paper's own §VI-B discrepancy: the log10 digit-count structure.
     Off: flagged.  On: the p_digit_peel_log10 variant accepts it. *)
  List.iter
    (fun id ->
      let b = Option.get (Bundles.find id) in
      let prog = variant_program b ~tag:"structure" ~option:"log10" in
      Alcotest.(check bool) (id ^ " flagged without variants") false
        (feedback_positive (Grader.grade b.Bundles.grading prog));
      Alcotest.(check bool) (id ^ " accepted with variants") true
        (feedback_positive
           (Grader.grade ~use_variants:true b.Bundles.grading prog)))
    [ "esc-LAB-3-P3-V1"; "esc-LAB-3-P4-V1" ]

let test_variants_recover_do_while () =
  let b = Option.get (Bundles.find "esc-LAB-3-P1-V1") in
  let prog = variant_program b ~tag:"search-structure" ~option:"do-while" in
  Alcotest.(check bool) "flagged without variants" false
    (feedback_positive (Grader.grade b.Bundles.grading prog));
  Alcotest.(check bool) "accepted with variants" true
    (feedback_positive (Grader.grade ~use_variants:true b.Bundles.grading prog))

let test_variants_do_not_mask_errors () =
  (* A genuinely wrong submission must stay flagged even with every
     extension on. *)
  let b = Bundles.assignment1 in
  let prog = variant_program b ~tag:"odd-init" ~option:"1" in
  Alcotest.(check bool) "still flagged" false
    (feedback_positive
       (Grader.grade ~normalize:true ~use_variants:true b.Bundles.grading prog))

let test_variant_patterns_wellformed () =
  List.iter
    (fun (p : Pattern.t) ->
      Alcotest.(check (list string)) p.Pattern.id [] (Pattern.validate p))
    [ Patterns.p_digit_peel_log10; Patterns.p_search_do ]

let suite =
  [
    Alcotest.test_case "normalize: negated else flipped" `Quick
      test_normalize_rewrite;
    Alcotest.test_case "normalize: else-less if untouched" `Quick
      test_normalize_not_else;
    Alcotest.test_case "normalize: recovers the polarity discrepancy" `Quick
      test_normalize_recovers_polarity_disc;
    Alcotest.test_case "extensions neutral on references" `Quick
      test_normalize_neutral_on_reference;
    Alcotest.test_case "variants: recover log10 (the paper's case)" `Quick
      test_variants_recover_log10;
    Alcotest.test_case "variants: recover do-while driver" `Quick
      test_variants_recover_do_while;
    Alcotest.test_case "variants: do not mask real errors" `Quick
      test_variants_do_not_mask_errors;
    Alcotest.test_case "variant patterns well-formed" `Quick
      test_variant_patterns_wellformed;
  ]
