(** Tests for Algorithm 1 (pattern matching with variable mappings),
    anchored on the paper's §III-B/§IV worked example. *)

open Jfeed_core
open Jfeed_exprmatch
module E = Jfeed_pdg.Epdg

let graph_of src =
  match E.of_source src with
  | [ (_, g) ] -> g
  | _ -> Alcotest.fail "expected one method"

let fig2a =
  {|
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
}
|}

let p_o = Jfeed_kb.Patterns.p_odd_access

let test_paper_embedding () =
  let g = graph_of fig2a in
  let ms = Matcher.embeddings p_o g in
  (* Fig. 2a uses i % 2 == 1 for both accumulations, so p_o embeds twice
     (and each embedding's bound node is approximate: i <= a.length). *)
  Alcotest.(check int) "two embeddings" 2 (List.length ms);
  List.iter
    (fun (m : Matcher.embedding) ->
      Alcotest.(check (list (pair string string)))
        "variable mapping γ"
        [ ("s", "a"); ("x", "i") ]
        (List.sort compare m.Matcher.gamma);
      Alcotest.(check bool) "bound node approximate" false
        (Matcher.is_fully_correct m);
      (* exactly one node (the <= bound) is approximate *)
      let approx =
        List.filter (fun (_, (_, mk)) -> mk = Matcher.Approx) m.Matcher.iota
      in
      Alcotest.(check int) "one incorrect node" 1 (List.length approx))
    ms

let test_correct_submission_exact () =
  let g =
    graph_of
      {|
void assignment1(int[] a) {
  int odd = 0;
  for (int i = 0; i < a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
  }
  System.out.println(odd);
}
|}
  in
  match Matcher.embeddings p_o g with
  | [ m ] -> Alcotest.(check bool) "fully correct" true (Matcher.is_fully_correct m)
  | ms -> Alcotest.failf "expected one embedding, got %d" (List.length ms)

let test_injectivity () =
  (* Two pattern nodes must not map to the same graph node. *)
  let p =
    {
      Pattern.id = "two_assigns";
      description = "two distinct constant initializations";
      nodes =
        [|
          Pattern.node ~typ:E.Assign (Template.regex_of {|%x% = [0-9]+|}) ~ok:"";
          Pattern.node ~typ:E.Assign (Template.regex_of {|%y% = [0-9]+|}) ~ok:"";
        |];
      edges = [];
      fb_present = "";
      fb_missing = "";
    }
  in
  let g = graph_of {|
void f() {
  int a = 1;
  int b = 2;
}
|} in
  let ms = Matcher.embeddings p g in
  (* 2 assignments, 2 untied pattern nodes: the 2 orderings, never the
     same node twice. *)
  Alcotest.(check int) "both orders" 2 (List.length ms);
  List.iter
    (fun (m : Matcher.embedding) ->
      let images = List.map (fun (_, (v, _)) -> v) m.Matcher.iota in
      Alcotest.(check bool) "injective" true
        (List.length (List.sort_uniq compare images) = List.length images))
    ms;
  Alcotest.(check int) "one occurrence (same footprint)" 1
    (List.length (Matcher.occurrences ms))

let test_edge_direction_checked () =
  (* The incoming-edge direction must be verified too (DESIGN.md §4.4):
     a pattern requiring init -Data-> use must not match when the use
     comes first. *)
  let p =
    {
      Pattern.id = "def_use";
      description = "definition reaches use";
      nodes =
        [|
          Pattern.node ~typ:E.Assign (Template.exact_of "%x% = 1") ~ok:"";
          Pattern.node ~typ:E.Call
            (Template.regex_of {|System\.out\.println\(%x%\)|})
            ~ok:"";
        |];
      edges = [ (0, 1, E.Data) ];
      fb_present = "";
      fb_missing = "";
    }
  in
  let good = graph_of {|
void f() {
  int x = 1;
  System.out.println(x);
}
|} in
  let bad =
    graph_of
      {|
void f() {
  int x = 0;
  System.out.println(x);
  x = 1;
}
|}
  in
  Alcotest.(check int) "matches when def reaches" 1
    (List.length (Matcher.embeddings p good));
  Alcotest.(check int) "no match when def follows" 0
    (List.length (Matcher.embeddings p bad))

let test_untyped_matches_all () =
  let p =
    {
      Pattern.id = "any";
      description = "any node containing x";
      nodes = [| Pattern.node (Template.contains_of "%x%") ~ok:"" |];
      edges = [];
      fb_present = "";
      fb_missing = "";
    }
  in
  let g = graph_of {|
void f(int k) {
  int y = k + 1;
  System.out.println(y);
}
|} in
  (* Untyped: Decl, Assign and Call nodes are all candidates. *)
  let ms = Matcher.embeddings p g in
  Alcotest.(check bool) "several node kinds matched" true (List.length ms >= 3)

let test_type_filter () =
  let p =
    {
      Pattern.id = "cond_only";
      description = "a condition mentioning x";
      nodes = [| Pattern.node ~typ:E.Cond (Template.contains_of "%x%") ~ok:"" |];
      edges = [];
      fb_present = "";
      fb_missing = "";
    }
  in
  let g = graph_of {|
void f(int k) {
  if (k > 0)
    k = 0;
}
|} in
  match Matcher.embeddings p g with
  | [ m ] ->
      Alcotest.(check (list (pair string string)))
        "binds the condition variable" [ ("x", "k") ] m.Matcher.gamma
  | ms -> Alcotest.failf "expected 1, got %d" (List.length ms)

let test_exact_preferred_over_approx () =
  (* When both r and r̂ can match, the occurrence keeps the exact mark. *)
  let g =
    graph_of
      {|
void f(int[] a) {
  int s = 0;
  for (int i = 0; i < a.length; i++) {
    if (i % 2 == 1)
      s += a[i];
  }
  System.out.println(s);
}
|}
  in
  let occs = Matcher.occurrences (Matcher.embeddings p_o g) in
  Alcotest.(check int) "one occurrence" 1 (List.length occs);
  Alcotest.(check bool) "kept fully correct" true
    (Matcher.is_fully_correct (List.hd occs))

let test_no_match_missing_guard () =
  let g =
    graph_of
      {|
void f(int[] a) {
  int s = 0;
  for (int i = 0; i < a.length; i += 2)
    s += a[i];
  System.out.println(s);
}
|}
  in
  Alcotest.(check int) "no parity guard, no embedding" 0
    (List.length (Matcher.embeddings p_o g))

let suite =
  [
    Alcotest.test_case "paper's p_o embedding" `Quick test_paper_embedding;
    Alcotest.test_case "fully correct embedding" `Quick
      test_correct_submission_exact;
    Alcotest.test_case "node-mapping injectivity" `Quick test_injectivity;
    Alcotest.test_case "incoming edges checked" `Quick
      test_edge_direction_checked;
    Alcotest.test_case "untyped nodes" `Quick test_untyped_matches_all;
    Alcotest.test_case "type filtering" `Quick test_type_filter;
    Alcotest.test_case "exact preferred in occurrences" `Quick
      test_exact_preferred_over_approx;
    Alcotest.test_case "missing crucial node" `Quick test_no_match_missing_guard;
  ]
