(** Tests for the incomplete-expression templates (Definitions 4 and 6). *)

open Jfeed_exprmatch

let test_vars () =
  Alcotest.(check (list string))
    "placeholders" [ "x"; "s" ]
    (Template.vars (Template.exact_of "%x% < %s%.length"));
  Alcotest.(check (list string))
    "no duplicates" [ "x" ]
    (Template.vars (Template.exact_of "%x% = %x% + 1"));
  Alcotest.(check (list string))
    "modulo is not a placeholder" [ "x" ]
    (Template.vars (Template.exact_of "%x% % 2 == 1"))

let test_exact () =
  let t = Template.exact_of "%x% = 0" in
  Alcotest.(check bool) "match" true
    (Template.matches t ~gamma:[ ("x", "i") ] "i = 0");
  Alcotest.(check bool) "wrong var" false
    (Template.matches t ~gamma:[ ("x", "j") ] "i = 0");
  Alcotest.(check bool) "anchored" false
    (Template.matches t ~gamma:[ ("x", "i") ] "i = 0 + 1");
  (* Metacharacters in exact templates are literal. *)
  let t2 = Template.exact_of "%c% += %s%[%x%]" in
  Alcotest.(check bool) "brackets literal" true
    (Template.matches t2
       ~gamma:[ ("c", "odd"); ("s", "a"); ("x", "i") ]
       "odd += a[i]")

let test_regex () =
  let t = Template.regex_of {|%x% (<|<=) %s%\.length|} in
  Alcotest.(check bool) "lt" true
    (Template.matches t ~gamma:[ ("x", "i"); ("s", "a") ] "i < a.length");
  Alcotest.(check bool) "le" true
    (Template.matches t ~gamma:[ ("x", "i"); ("s", "a") ] "i <= a.length");
  Alcotest.(check bool) "gt" false
    (Template.matches t ~gamma:[ ("x", "i"); ("s", "a") ] "i > a.length");
  Alcotest.check_raises "syntax error rejected"
    (Invalid_argument "Template: invalid regex \"(unclosed\"") (fun () ->
      ignore (Template.regex_of "(unclosed"))

let test_contains () =
  let t = Template.contains_of "%s%[%x%]" in
  let gamma = [ ("s", "a"); ("x", "i") ] in
  Alcotest.(check bool) "inside" true
    (Template.matches t ~gamma "odd += a[i]");
  Alcotest.(check bool) "exact" true (Template.matches t ~gamma "a[i]");
  Alcotest.(check bool) "absent" false
    (Template.matches t ~gamma "odd += a[j]");
  (* token boundaries: [a] must not match inside [data]. *)
  let t2 = Template.contains_of "%x%" in
  Alcotest.(check bool) "boundary" false
    (Template.matches t2 ~gamma:[ ("x", "a") ] "data + 1");
  Alcotest.(check bool) "boundary hit" true
    (Template.matches t2 ~gamma:[ ("x", "a") ] "data + a")

let test_unbound_placeholder () =
  (* Unbound placeholders match any single identifier. *)
  let t = Template.exact_of "%x% = %y%" in
  Alcotest.(check bool) "free y" true
    (Template.matches t ~gamma:[ ("x", "a") ] "a = b");
  Alcotest.(check bool) "free y is one identifier" false
    (Template.matches t ~gamma:[ ("x", "a") ] "a = b + c")

let test_quoting () =
  (* A submission variable with regex metacharacters must be quoted —
     identifiers can contain [$]. *)
  let t = Template.exact_of "%x% = 0" in
  Alcotest.(check bool) "dollar var" true
    (Template.matches t ~gamma:[ ("x", "a$b") ] "a$b = 0")

let test_instantiate () =
  Alcotest.(check string)
    "bound" "i should be initialized to 0"
    (Template.instantiate "%x% should be initialized to 0"
       ~gamma:[ ("x", "i") ]);
  Alcotest.(check string)
    "unbound keeps the name" "x should be initialized to 0"
    (Template.instantiate "%x% should be initialized to 0" ~gamma:[]);
  Alcotest.(check string)
    "literal percent" "i % 2 == 1"
    (Template.instantiate "%x% % 2 == 1" ~gamma:[ ("x", "i") ])

(* Property: exact templates built from a literal always match that
   literal with the identity mapping. *)
let prop_exact_identity =
  let gen =
    QCheck.Gen.(
      let ident =
        let* c = oneofl [ "i"; "sum"; "a" ] in
        return c
      in
      let* x = ident in
      let* n = int_bound 50 in
      return (Printf.sprintf "%s = %d" x n))
  in
  QCheck.Test.make ~count:200 ~name:"exact template matches its own text"
    (QCheck.make gen) (fun text ->
      Template.matches (Template.exact_of text) ~gamma:[] text)

let suite =
  [
    Alcotest.test_case "placeholder variables" `Quick test_vars;
    Alcotest.test_case "exact templates" `Quick test_exact;
    Alcotest.test_case "regex templates" `Quick test_regex;
    Alcotest.test_case "contains templates" `Quick test_contains;
    Alcotest.test_case "unbound placeholders" `Quick test_unbound_placeholder;
    Alcotest.test_case "submission variables quoted" `Quick test_quoting;
    Alcotest.test_case "feedback instantiation" `Quick test_instantiate;
    QCheck_alcotest.to_alcotest prop_exact_identity;
  ]
