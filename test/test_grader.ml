(** Tests for constraints (Definitions 8–10) and Algorithm 2 (submission
    matching with multiple expected methods and the cost function Λ). *)

open Jfeed_core

let fig2 = Jfeed_kb.Bundles.assignment1.Jfeed_kb.Bundles.grading

let grade src =
  match Grader.grade_source fig2 src with
  | Ok r -> r
  | Error msg -> Alcotest.failf "grading failed: %s" msg

let verdict_of (r : Grader.result) about =
  match
    List.find_opt (fun c -> c.Feedback.about = about) r.Grader.comments
  with
  | Some c -> c.Feedback.verdict
  | None -> Alcotest.failf "no comment found"

let fig2b =
  {|
void assignment1(int[] a) {
  int o = 0, e = 1;
  int i = 0;
  while (i < a.length) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
    i++;
  }
  System.out.print(o + "\n");
  System.out.print(e + "\n");
}
|}

let fig2c =
  {|
void assignment1(int[] a) {
  int x = 0, y = 1;
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 1)
      x += a[i];
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 0)
      y *= a[i];
  System.out.print(x + "\n");
  System.out.print(y + "\n");
}
|}

let test_fig2b_correct () =
  let r = grade fig2b in
  Alcotest.(check (float 0.01))
    "perfect score" (float_of_int (List.length r.Grader.comments)) r.Grader.score

let test_fig2c_two_loops_correct () =
  (* The paper's Fig. 2c, with the initialization bugs fixed: two separate
     loops are matched just as well — patterns are checked independently
     of statement interleaving. *)
  let r = grade fig2c in
  Alcotest.(check (float 0.01))
    "perfect score" (float_of_int (List.length r.Grader.comments)) r.Grader.score

let test_fig2c_original_bugs () =
  (* The actual Fig. 2c: x multiplies where it should add, y adds where
     it should multiply. *)
  let src =
    {|
void assignment1(int[] a) {
  int x = 0, y = 1;
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 1)
      x *= a[i];
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 0)
      y += a[i];
  System.out.print(x + "\n");
  System.out.print(y + "\n");
}
|}
  in
  let r = grade src in
  Alcotest.(check bool)
    "not a perfect score" true
    (r.Grader.score < float_of_int (List.length r.Grader.comments));
  (* The conditional addition is still recognized (y += under the even
     guard) but with a wrong initialization, so it is Incorrect; and the
     containment constraint tying the odd access to the sum fails. *)
  Alcotest.(check bool)
    "sum pattern incorrect" true
    (verdict_of r (`Pattern "p_cond_accum_add") = Feedback.Incorrect);
  Alcotest.(check bool)
    "odd-is-sum constraint fails" true
    (verdict_of r (`Constraint "a1_odd_is_sum") = Feedback.Incorrect)

let test_constraint_verdicts () =
  (* Printing the same variable twice satisfies the pattern count but
     breaks the product-print edge constraint. *)
  let src =
    {|
void assignment1(int[] a) {
  int o = 0, e = 1;
  for (int i = 0; i < a.length; i++) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
  }
  System.out.println(o);
  System.out.println(o);
}
|}
  in
  let r = grade src in
  Alcotest.(check bool)
    "print pattern count satisfied" true
    (verdict_of r (`Pattern "p_print_var") = Feedback.Correct);
  Alcotest.(check bool)
    "sum-print constraint holds" true
    (verdict_of r (`Constraint "a1_print_sum") = Feedback.Correct);
  Alcotest.(check bool)
    "product-print constraint fails" true
    (verdict_of r (`Constraint "a1_print_prod") = Feedback.Incorrect)

let test_constraint_not_expected_propagation () =
  (* When a referenced pattern is missing, its constraints must be
     Not_expected, not Incorrect (Algorithm 2, step 2.2). *)
  let src =
    {|
void assignment1(int[] a) {
  int o = 0;
  System.out.println(o);
}
|}
  in
  let r = grade src in
  Alcotest.(check bool)
    "odd access missing" true
    (verdict_of r (`Pattern "p_odd_access") = Feedback.Not_expected);
  Alcotest.(check bool)
    "containment constraint not expected" true
    (verdict_of r (`Constraint "a1_odd_is_sum") = Feedback.Not_expected)

let test_lambda () =
  Alcotest.(check (float 0.001)) "correct" 1.0 (Feedback.lambda Feedback.Correct);
  Alcotest.(check (float 0.001)) "incorrect" 0.5 (Feedback.lambda Feedback.Incorrect);
  Alcotest.(check (float 0.001)) "not expected" 0.0
    (Feedback.lambda Feedback.Not_expected)

(* ------------------------------------------------------------------ *)
(* Multiple expected methods (Algorithm 2 combinations)                *)

let p1 = Option.get (Jfeed_kb.Bundles.find "esc-LAB-3-P1-V1")

let p1_reference = Jfeed_gen.Spec.reference p1.Jfeed_kb.Bundles.gen

let test_method_pairing () =
  let r =
    match Grader.grade_source p1.Jfeed_kb.Bundles.grading p1_reference with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Alcotest.(check
              (list (pair string (option string))))
    "pairing"
    [ ("factorial", Some "factorial"); ("lab3p1", Some "lab3p1") ]
    (List.sort compare r.Grader.pairing)

(* Replace every occurrence of a literal substring. *)
let replace_all ~pattern ~by s =
  let plen = String.length pattern in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    if
      !i + plen <= String.length s
      && String.sub s !i plen = pattern
    then begin
      Buffer.add_string buf by;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let test_method_pairing_renamed () =
  (* A renamed helper is still paired correctly: Λ picks the combination
     with the best feedback, not the names. *)
  let src = replace_all ~pattern:"factorial" ~by:"myHelper" p1_reference in
  let r =
    match Grader.grade_source p1.Jfeed_kb.Bundles.grading src with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Alcotest.(check (option string))
    "factorial expected method paired with the renamed helper"
    (Some "myHelper")
    (List.assoc "factorial" r.Grader.pairing)

let test_missing_method () =
  (* Only the driver present: the helper's patterns all come back
     Not_expected. *)
  let src =
    {|
void lab3p1(int k) {
  int n = 0;
  while (factorial(n + 1) <= k) {
    n++;
  }
  System.out.println(n);
}
|}
  in
  let r =
    match Grader.grade_source p1.Jfeed_kb.Bundles.grading src with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Alcotest.(check (option (option string)))
    "helper unpaired" (Some None)
    (List.assoc_opt "factorial" r.Grader.pairing);
  let helper_comments =
    List.filter
      (fun c -> c.Feedback.in_method = "factorial")
      r.Grader.comments
  in
  Alcotest.(check bool) "helper comments present" true
    (helper_comments <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "all not-expected" true
        (c.Feedback.verdict = Feedback.Not_expected))
    helper_comments

let test_enforce_headers () =
  (* With header enforcement, a renamed helper can no longer be paired. *)
  let strict =
    { p1.Jfeed_kb.Bundles.grading with Grader.enforce_headers = true }
  in
  let renamed = replace_all ~pattern:"factorial" ~by:"myHelper" p1_reference in
  let r =
    match Grader.grade_source strict renamed with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Alcotest.(check (option (option string)))
    "helper unpaired under header enforcement" (Some None)
    (List.assoc_opt "factorial" r.Grader.pairing);
  (* The reference (correct names) still pairs fully. *)
  let r2 =
    match Grader.grade_source strict p1_reference with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Alcotest.(check (option (option string)))
    "correct names pair" (Some (Some "factorial"))
    (List.assoc_opt "factorial" r2.Grader.pairing)

let test_parse_error_reported () =
  match Grader.grade_source fig2 "void assignment1(int[] a) { int = " with
  | Error msg -> Alcotest.(check bool) "message" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_bad_pattern () =
  (* p_double_update (t = 0) fires on a double counter update. *)
  let b = Option.get (Jfeed_kb.Bundles.find "esc-LAB-3-P2-V1") in
  let src =
    {|
int fib(int n) {
  int a = 1;
  int b = 1;
  int i = 1;
  while (i < n) {
    int c = a + b;
    a = b;
    b = c;
    i++;
  }
  return a;
}
void lab3p2(int k) {
  int n = 0;
  while (fib(n + 1) <= k) {
    n++;
    n++;
  }
  System.out.println(n);
}
|}
  in
  let r =
    match Grader.grade_source b.Jfeed_kb.Bundles.grading src with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e
  in
  Alcotest.(check bool)
    "double update flagged" true
    (verdict_of r (`Pattern "p_double_update") = Feedback.Not_expected)

let suite =
  [
    Alcotest.test_case "Fig. 2b grades perfectly" `Quick test_fig2b_correct;
    Alcotest.test_case "two-loop variant grades perfectly" `Quick
      test_fig2c_two_loops_correct;
    Alcotest.test_case "Fig. 2c original bugs flagged" `Quick
      test_fig2c_original_bugs;
    Alcotest.test_case "constraint verdicts" `Quick test_constraint_verdicts;
    Alcotest.test_case "constraint Not_expected propagation" `Quick
      test_constraint_not_expected_propagation;
    Alcotest.test_case "cost function λ" `Quick test_lambda;
    Alcotest.test_case "method pairing" `Quick test_method_pairing;
    Alcotest.test_case "renamed helper paired by Λ" `Quick
      test_method_pairing_renamed;
    Alcotest.test_case "missing expected method" `Quick test_missing_method;
    Alcotest.test_case "header enforcement" `Quick test_enforce_headers;
    Alcotest.test_case "parse errors reported" `Quick test_parse_error_reported;
    Alcotest.test_case "bad pattern (t = 0)" `Quick test_bad_pattern;
  ]
