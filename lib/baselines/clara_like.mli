(** A simplified reimplementation of CLARA's matching core (Gulwani,
    Radicek, Zuleger [15]) for the paper's §VI-C comparison.

    CLARA represents a submission by its *variable traces* on given
    inputs, clusters correct submissions by trace equivalence, and
    repairs an incorrect submission against the reference whose traces it
    matches.  Traces are compared *as a whole* — the behaviour the
    paper's Fig. 8 criticizes. *)

type var_trace = { values : string list }
(** The value sequence of one variable, consecutive duplicates
    collapsed. *)

type trace = (string * var_trace) list  (** per variable, name-keyed *)

val trace_of :
  ?config:Jfeed_interp.Interp.config ->
  Jfeed_java.Ast.program ->
  entry:string ->
  args:Jfeed_interp.Value.t list ->
  trace * Jfeed_interp.Interp.outcome

val equivalent : trace -> trace -> bool
(** Whole-trace equivalence: a bijection between the variables under
    which every value sequence is identical — the clustering relation. *)

val cluster : trace list -> int list
(** Cluster traces by {!equivalent}; returns representative indices (one
    per cluster — "references needed"). *)

type verdict =
  | Match  (** same traces: the submission is (held) correct *)
  | Repairs of int
      (** same shape; this many value-sequence positions differ *)
  | No_match  (** different shape: CLARA cannot grade it with this reference *)

val match_against : reference:trace -> trace -> verdict
(** The repair count is the minimum, over variable bijections, of
    differing sequence positions. *)
