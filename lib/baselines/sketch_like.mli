(** A simplified reimplementation of AutoGrader's repair search (Singh,
    Gulwani, Solar-Lezama [33], built on Sketch [34]) for the paper's
    §VI-C comparison: an explicit breadth-first search over single-site
    error-model rule applications, checking functional equivalence with
    the reference on bounded inputs.  Exhibits the exponential repair-
    depth growth behind the paper's "degrades considerably after four or
    more repairs". *)

type rule = { name : string; rewrite : Jfeed_java.Ast.expr -> Jfeed_java.Ast.expr option }

val error_model : rule list
(** The classic intro-course mistakes from the paper: [i = 0 → i = 1],
    [< → <=], [+= → *=], [++ → --], [>= → >]. *)

type result = {
  repairs : int;  (** rules applied to reach equivalence *)
  applied : string list;  (** rule names — AutoGrader's "feedback" *)
  explored : int;  (** candidate programs checked (the cost) *)
}

val repair :
  suite:Jfeed_ftest.Runner.suite ->
  expected:string list ->
  max_depth:int ->
  Jfeed_java.Ast.program ->
  result option
(** [None] when no rule combination within [max_depth] makes the
    submission pass the suite. *)
