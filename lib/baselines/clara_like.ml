(** A simplified reimplementation of CLARA's matching core (Gulwani,
    Radicek, Zuleger [15]) for the paper's §VI-C comparison.

    CLARA represents a submission by its *variable traces* on given
    inputs, clusters correct submissions by trace equivalence, and repairs
    an incorrect submission against the reference whose traces it matches.
    Traces are compared *as a whole*, which is exactly what the paper's
    Fig. 8 criticizes: a functionally equivalent submission that computes
    the same values in a different interleaving (e.g. two separate loops
    instead of one) has different traces and matches no reference.

    This module reproduces that behaviour: per-variable value sequences
    extracted from an interpreter trace, trace equivalence as the
    existence of a value-sequence bijection, and a repair count for
    same-shape traces. *)

open Jfeed_java
open Jfeed_interp

type var_trace = { values : string list }
(** The sequence of (rendered) values a variable takes, with consecutive
    duplicates collapsed — CLARA records values at assignment points; our
    interpreter snapshots after every statement, so collapsing recovers
    the assignment sequence. *)

type trace = (string * var_trace) list  (** per variable, name-keyed *)

let collapse values =
  let rec go = function
    | a :: (b :: _ as rest) -> if a = b then go rest else a :: go rest
    | short -> short
  in
  go values

(** Extract the per-variable traces of one run. *)
let trace_of ?config (prog : Ast.program) ~entry ~args : trace * Interp.outcome =
  let outcome, snapshots = Interp.run_traced ?config prog ~entry ~args in
  let vars = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun snap ->
      List.iter
        (fun (x, v) ->
          if not (Hashtbl.mem vars x) then begin
            Hashtbl.add vars x [];
            order := x :: !order
          end;
          Hashtbl.replace vars x (v :: Hashtbl.find vars x))
        snap)
    snapshots;
  let trace =
    List.rev_map
      (fun x -> (x, { values = collapse (List.rev (Hashtbl.find vars x)) }))
      !order
  in
  (trace, outcome)

(* Whole-trace comparison enumerates variable bijections, which is
   factorial in the variable count; traces beyond this many variables are
   treated as not comparable (CLARA itself falls back to timeouts here —
   the paper's k = 100,000 anecdote). *)
let max_bijection_vars = 8

(* All bijections between two name lists (small). *)
let rec bijections xs ys =
  match xs with
  | [] -> if ys = [] then [ [] ] else []
  | x :: rest ->
      List.concat_map
        (fun y ->
          let ys' = List.filter (fun y' -> y' <> y) ys in
          List.map (fun tail -> (x, y) :: tail) (bijections rest ys'))
        ys

(** Whole-trace equivalence: a bijection between the variables under which
    every value sequence is identical.  This is the clustering relation. *)
let equivalent (a : trace) (b : trace) =
  List.length a = List.length b
  && List.length a <= max_bijection_vars
  && List.exists
       (fun bij ->
         List.for_all
           (fun (x, tx) ->
             match List.assoc_opt (List.assoc x bij) b with
             | Some ty -> tx.values = ty.values
             | None -> false)
           a)
       (bijections (List.map fst a) (List.map fst b))

(** Cluster traces by {!equivalent}; returns representative indices. *)
let cluster traces =
  let reps = ref [] in
  List.iteri
    (fun i t ->
      if not (List.exists (fun (_, rt) -> equivalent rt t) !reps) then
        reps := (i, t) :: !reps)
    traces;
  List.rev_map fst !reps

type verdict =
  | Match  (** same traces: the submission is (held) correct *)
  | Repairs of int  (** same shape; this many value-sequence positions differ *)
  | No_match  (** different shape: CLARA cannot grade it with this reference *)

(** Compare a submission against one reference, CLARA-style.  The repair
    count is the minimum, over variable bijections, of differing sequence
    positions (sequences padded to the longer length). *)
let match_against ~(reference : trace) (submission : trace) =
  if
    List.length reference <> List.length submission
    || List.length reference > max_bijection_vars
  then No_match
  else
    let cost bij =
      List.fold_left
        (fun acc (x, tx) ->
          match List.assoc_opt (List.assoc x bij) submission with
          | None -> acc + List.length tx.values
          | Some ty ->
              let rec diff a b =
                match (a, b) with
                | [], [] -> 0
                | [], rest | rest, [] -> List.length rest
                | va :: ra, vb :: rb -> (if va = vb then 0 else 1) + diff ra rb
              in
              acc + diff tx.values ty.values)
        0 reference
    in
    let costs =
      List.map cost (bijections (List.map fst reference) (List.map fst submission))
    in
    match List.sort compare costs with
    | [] -> No_match
    | 0 :: _ -> Match
    | c :: _ -> Repairs c
