(** Single-site AST rewriting for the Sketch-like baseline: enumerate
    every program obtained by applying a rewrite function at exactly one
    expression site. *)

open Jfeed_java.Ast

(* Apply [f] to the [target]-th site (counting via [counter]) of an
   expression tree; all other subexpressions are rebuilt unchanged. *)
let rec rewrite_expr f counter target e =
  let at_site = !counter = target in
  incr counter;
  match if at_site then f e else None with
  | Some e' -> e'
  | None -> (
      let r = rewrite_expr f counter target in
      match e with
      | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _
      | Null_lit | Var _ ->
          e
      | Field (o, fld) -> Field (r o, fld)
      | Index (a, i) ->
          let a = r a in
          Index (a, r i)
      | Call (recv, name, args) ->
          Call (Option.map r recv, name, List.map r args)
      | New (t, args) -> New (t, List.map r args)
      | New_array (t, dims) -> New_array (t, List.map r dims)
      | Array_lit elts -> Array_lit (List.map r elts)
      | Unary (op, a) -> Unary (op, r a)
      | Incdec (k, a) -> Incdec (k, r a)
      | Binary (op, a, b) ->
          let a = r a in
          Binary (op, a, r b)
      | Assign (op, a, b) ->
          let a = r a in
          Assign (op, a, r b)
      | Ternary (c, t, e2) ->
          let c = r c in
          let t = r t in
          Ternary (c, t, r e2)
      | Cast (t, a) -> Cast (t, r a))

let rec rewrite_stmt f counter target s =
  let re = rewrite_expr f counter target in
  let rs = rewrite_stmt f counter target in
  match s with
  | Sempty | Sbreak | Scontinue -> s
  | Sexpr e -> Sexpr (re e)
  | Sdecl decls ->
      Sdecl
        (List.map
           (fun d -> { d with d_init = Option.map re d.d_init })
           decls)
  | Sif (c, t, e) ->
      let c = re c in
      let t = rs t in
      Sif (c, t, Option.map rs e)
  | Swhile (c, b) ->
      let c = re c in
      Swhile (c, rs b)
  | Sdo (b, c) ->
      let b = rs b in
      Sdo (b, re c)
  | Sfor (init, cond, upd, b) ->
      let init =
        match init with
        | None -> None
        | Some (For_decl decls) ->
            Some
              (For_decl
                 (List.map
                    (fun d -> { d with d_init = Option.map re d.d_init })
                    decls))
        | Some (For_exprs es) -> Some (For_exprs (List.map re es))
      in
      let cond = Option.map re cond in
      let upd = List.map re upd in
      Sfor (init, cond, upd, rs b)
  | Sswitch (scr, cases) ->
      let scr = re scr in
      Sswitch
        ( scr,
          List.map
            (fun k ->
              {
                case_label = Option.map re k.case_label;
                case_body = List.map rs k.case_body;
              })
            cases )
  | Sreturn e -> Sreturn (Option.map re e)
  | Sblock body -> Sblock (List.map rs body)

let rewrite_program f target (p : program) =
  let counter = ref 0 in
  let methods =
    List.map
      (fun m -> { m with m_body = List.map (rewrite_stmt f counter target) m.m_body })
      p.methods
  in
  ({ methods }, !counter)

(** All programs obtained by applying [f] at exactly one applicable
    expression site. *)
let single_site_rewrites f (p : program) =
  (* First pass only counts the sites. *)
  let _, total = rewrite_program (fun _ -> None) 0 p in
  let results = ref [] in
  for site = 0 to total - 1 do
    let changed = ref false in
    let f' e =
      match f e with
      | Some e' when e' <> e ->
          changed := true;
          Some e'
      | _ -> None
    in
    let p', _ = rewrite_program f' site p in
    if !changed then results := p' :: !results
  done;
  List.rev !results
