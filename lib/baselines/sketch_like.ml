(** A simplified reimplementation of AutoGrader's repair search (Singh,
    Gulwani, Solar-Lezama [33], built on Sketch [34]) for the paper's
    §VI-C comparison.

    AutoGrader rewrites a submission with error-model rules into a program
    sketch and asks a solver for a rule assignment that makes the
    submission functionally equivalent to the reference; the number of
    applied rules is the repair count, and its feedback is the list of
    applied rules.  We emulate the solver with an explicit breadth-first
    search over single-site rule applications, checking functional
    equivalence against the reference on the (bounded) test inputs — this
    exhibits the same exponential growth in the repair depth that makes
    AutoGrader "degrade considerably after four or more repairs". *)

open Jfeed_java

type rule = {
  name : string;
  rewrite : Ast.expr -> Ast.expr option;
}

(** The error model: the classic intro-course mistakes from the paper
    (i = 0 → i = 1, < → <=, parity swaps, operator confusions). *)
let error_model : rule list =
  let open Ast in
  [
    {
      name = "const-0-1";
      rewrite =
        (function
        | Int_lit 0 -> Some (Int_lit 1)
        | Int_lit 1 -> Some (Int_lit 0)
        | _ -> None);
    };
    {
      name = "lt-le";
      rewrite =
        (function
        | Binary (Lt, a, b) -> Some (Binary (Le, a, b))
        | Binary (Le, a, b) -> Some (Binary (Lt, a, b))
        | _ -> None);
    };
    {
      name = "add-mul";
      rewrite =
        (function
        | Assign (Add_eq, a, b) -> Some (Assign (Mul_eq, a, b))
        | Assign (Mul_eq, a, b) -> Some (Assign (Add_eq, a, b))
        | _ -> None);
    };
    {
      name = "incr-decr";
      rewrite =
        (function
        | Incdec (Post_incr, a) -> Some (Incdec (Post_decr, a))
        | Incdec (Post_decr, a) -> Some (Incdec (Post_incr, a))
        | _ -> None);
    };
    {
      name = "ge-gt";
      rewrite =
        (function
        | Binary (Ge, a, b) -> Some (Binary (Gt, a, b))
        | Binary (Gt, a, b) -> Some (Binary (Ge, a, b))
        | _ -> None);
    };
  ]

type result = {
  repairs : int;  (** rules applied to reach equivalence *)
  applied : string list;  (** rule names, the "feedback" *)
  explored : int;  (** candidate programs checked (the cost) *)
}

(** Breadth-first repair search up to [max_depth] rule applications.
    Returns [None] when no combination within the bound makes the
    submission pass the suite. *)
let repair ~(suite : Jfeed_ftest.Runner.suite) ~expected ~max_depth
    (submission : Ast.program) =
  let explored = ref 0 in
  let passes p =
    incr explored;
    Jfeed_ftest.Runner.passes suite ~expected p
  in
  if passes submission then Some { repairs = 0; applied = []; explored = !explored }
  else begin
    let seen = Hashtbl.create 256 in
    let frontier = Queue.create () in
    Queue.add (submission, []) frontier;
    let found = ref None in
    let depth = ref 0 in
    while !found = None && !depth < max_depth && not (Queue.is_empty frontier) do
      incr depth;
      let level = Queue.length frontier in
      for _ = 1 to level do
        if !found = None then begin
          let prog, applied = Queue.pop frontier in
          List.iter
            (fun rule ->
              List.iter
                (fun candidate ->
                  let key = Jfeed_java.Pretty.program candidate in
                  if (not (Hashtbl.mem seen key)) && !found = None then begin
                    Hashtbl.add seen key ();
                    let applied' = rule.name :: applied in
                    if passes candidate then
                      found :=
                        Some
                          {
                            repairs = List.length applied';
                            applied = List.rev applied';
                            explored = !explored;
                          }
                    else if List.length applied' < max_depth then
                      Queue.add (candidate, applied') frontier
                  end)
                (Rewrite.single_site_rewrites rule.rewrite prog))
            error_model
        end
      done
    done;
    !found
  end
