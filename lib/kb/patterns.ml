(** The knowledge base of reusable patterns (paper §III-B, §VI-A: twenty
    four unique patterns shared by the twelve assignments).

    Conventions:
    - templates match the canonical rendering of {!Jfeed_pdg.Epdg} node
      contents; [%x%]-style placeholders are pattern variables;
    - each pattern uses its own variable alphabet so containment
      constraints can merge mappings without collisions (Definition 10);
    - node 0 of a pattern is its "anchor" (documented per pattern) so
      constraints can reference nodes by stable indices. *)

open Jfeed_core
open Jfeed_exprmatch
module E = Jfeed_pdg.Epdg

let exact = Template.exact_of
let regex = Template.regex_of
let contains = Template.contains_of
let node = Pattern.node

(* Recurring regex fragments. *)
let incr_of v = Printf.sprintf {|(%%%s%%\+\+|%%%s%% = %%%s%% \+ 1|%%%s%% \+= 1)|} v v v v

(* Any update of [v] — the approximate form of an increment node.  It must
   stay anchored on [v] as the target: a looser "contains v" form would
   also match accumulations that merely *read* v (e.g. [f *= i]) and
   produce spurious pattern occurrences. *)
let update_of v =
  Printf.sprintf
    {|(%%%s%%\+\+|%%%s%%--|%%%s%% [-+*/]= .+|%%%s%% = %%%s%% .+)|} v v v v v

let ident_re = {|[A-Za-z_$][A-Za-z0-9_$]*|}

(* ------------------------------------------------------------------ *)
(* Parameter declarations                                              *)

(** [p_param_decl] — the method declares the expected input parameter
    (scalar, string or array).  Node 0: the Decl node. *)
let p_param_decl =
  {
    Pattern.id = "p_param_decl";
    description = "The input is a method parameter";
    nodes =
      [|
        node ~typ:E.Decl
          (regex {|(int|long|double|String)(\[\])? %k%|})
          ~ok:"%k% is the input parameter";
      |];
    edges = [];
    fb_present = "Your method takes the input %k% as a parameter";
    fb_missing = "Your method must take the input as a parameter";
  }

(* ------------------------------------------------------------------ *)
(* Array traversal (the paper's p_o and its even twin)                 *)

(* Nodes: 0 array decl (Untyped), 1 index init, 2 index update,
   3 loop bound, 4 parity guard, 5 array access. *)
let parity_access ~id ~desc ~parity =
  {
    Pattern.id;
    description = desc;
    nodes =
      [|
        node (regex ({|.*\[\] %s%|})) ~ok:"%s% is the array being traversed";
        node ~typ:E.Assign (exact "%x% = 0")
          ~approx:(regex {|%x% = .+|})
          ~ok:"%x% is initialized to 0" ~bad:"%x% should be initialized to 0";
        node ~typ:E.Assign
          (regex (incr_of "x"))
          ~approx:(regex (update_of "x"))
          ~ok:"%x% is incremented by 1" ~bad:"%x% should be incremented by 1";
        node ~typ:E.Cond
          (regex {|%x% < %s%\.length|})
          ~approx:(regex {|%x% <= %s%\.length|})
          ~ok:"%x% does not go beyond %s%.length - 1"
          ~bad:"%x% is out of bounds going beyond %s%.length - 1";
        (* Crucial node (the paper gives u4 no incorrect feedback): if the
           parity guard does not match exactly, the pattern is simply not
           recognized. *)
        node ~typ:E.Cond
          (exact (Printf.sprintf "%%x%% %% 2 == %d" parity))
          ~ok:
            (Printf.sprintf
               "You are using %%x%% %% 2 == %d to control the position parity"
               parity);
        node
          (contains "%s%[%x%]")
          ~approx:(regex {|.*%s%\[.+\].*|})
          ~ok:"%x% is used exactly to access %s%"
          ~bad:"You should access %s% by using %x% exactly";
      |];
    edges =
      [
        (0, 5, E.Data);
        (1, 2, E.Data);
        (1, 3, E.Data);
        (3, 2, E.Ctrl);
        (3, 4, E.Ctrl);
        (4, 5, E.Ctrl);
      ];
    fb_present = Printf.sprintf
        "You are correctly accessing positions with %%x%% %% 2 == %d \
         sequentially in array %%s%%" parity;
    fb_missing =
      Printf.sprintf
        "You are not accessing the required positions sequentially in an \
         array; consider a loop and a condition %%x%% %% 2 == %d where \
         %%x%% is the index" parity;
  }

(** The paper's p_o (Fig. 4): odd positions accessed sequentially. *)
let p_odd_access =
  parity_access ~id:"p_odd_access"
    ~desc:"Accessing odd positions sequentially in an array" ~parity:1

(** Even twin of p_o. *)
let p_even_access =
  parity_access ~id:"p_even_access"
    ~desc:"Accessing even positions sequentially in an array" ~parity:0

(* ------------------------------------------------------------------ *)
(* Conditional accumulation (the paper's p_a and its product twin)     *)

(* Nodes: 0 accumulator init, 1 outer condition, 2 inner condition,
   3 accumulation. *)
let cond_accum ~id ~desc ~init_value ~op ~op_name ~op_verb =
  (* [c++] counts as cumulative addition (conditional counting reuses this
     pattern — e.g. the RIT medal counters and the esc range counters). *)
  let accum_re =
    if op = {|\+|} then {|(%c% \+= .+|%c% = %c% \+ .+|%c%\+\+)|}
    else Printf.sprintf {|(%%c%% %s= .+|%%c%% = %%c%% %s .+)|} op op
  in
  {
    Pattern.id;
    description = desc;
    nodes =
      [|
        node ~typ:E.Assign
          (exact (Printf.sprintf "%%c%% = %d" init_value))
          ~approx:(regex {|%c% = .+|})
          ~ok:(Printf.sprintf "%%c%% is initialized to %d" init_value)
          ~bad:(Printf.sprintf "%%c%% should be initialized to %d" init_value);
        node ~typ:E.Cond (regex {|.+|}) ~ok:"A loop controls the accumulation";
        node ~typ:E.Cond (regex {|.+|})
          ~ok:"A condition selects when to accumulate";
        (* Crucial node: the accumulation operator identifies the
           pattern. *)
        node ~typ:E.Assign (regex accum_re)
          ~ok:(Printf.sprintf "%%c%% is cumulatively %s" op_name);
      |];
    edges = [ (0, 3, E.Data); (1, 2, E.Ctrl); (2, 3, E.Ctrl) ];
    fb_present = Printf.sprintf "%%c%% is conditionally cumulatively %s" op_name;
    fb_missing =
      Printf.sprintf
        "You should cumulatively %s a variable under a condition inside a \
         loop" op_verb;
  }

(** The paper's p_a (Fig. 5): conditional cumulative addition. *)
let p_cond_accum_add =
  cond_accum ~id:"p_cond_accum_add" ~desc:"Conditional cumulative addition"
    ~init_value:0 ~op:{|\+|} ~op_name:"added" ~op_verb:"add"

let p_cond_accum_mul =
  cond_accum ~id:"p_cond_accum_mul"
    ~desc:"Conditional cumulative multiplication" ~init_value:1 ~op:{|\*|}
    ~op_name:"multiplied" ~op_verb:"multiply"

(* ------------------------------------------------------------------ *)
(* Printing (the paper's p_p)                                          *)

(** [p_print_var] — a computed variable is printed to console.
    Nodes: 0 the computation (Untyped), 1 the print Call; Data edge. *)
let p_print_var =
  {
    Pattern.id = "p_print_var";
    description = "Assign and print to console";
    nodes =
      [|
        node (contains "%c%") ~ok:"%c% holds the computed result";
        (* The printed expression must be the bare variable, optionally
           followed by a newline-style string suffix — printing a modified
           value (e.g. [println(n + 1)]) must not be accepted. *)
        node ~typ:E.Call
          (regex {|System\.out\.print(ln)?\(%c%( \+ "[^"]*")?\)|})
          ~approx:(regex {|System\.out\.print(ln)?\(.*%c%.*\)|})
          ~ok:"%c% is printed to console"
          ~bad:"Print the computed value %c% exactly";
      |];
    edges = [ (0, 1, E.Data) ];
    fb_present = "The computed value %c% is printed to console";
    fb_missing = "You must print the computed result to console";
  }

(* ------------------------------------------------------------------ *)
(* Counter loops and returns                                           *)

(** [p_counter_loop] — a loop driven by a counter initialized to a
    constant.  Nodes: 0 init, 1 condition, 2 increment. *)
let p_counter_loop =
  {
    Pattern.id = "p_counter_loop";
    description = "A loop driven by a counter initialized to a constant";
    nodes =
      [|
        node ~typ:E.Assign
          (regex {|%i% = [0-9]+|})
          ~approx:(regex {|%i% = .+|})
          ~ok:"%i% is initialized to a constant"
          ~bad:"Initialize the loop counter %i% to a constant";
        node ~typ:E.Cond (contains "%i%") ~ok:"%i% controls the loop";
        node ~typ:E.Assign
          (regex (incr_of "i"))
          ~approx:(regex (update_of "i"))
          ~ok:"%i% is incremented by 1" ~bad:"%i% should be incremented by 1";
      |];
    edges = [ (0, 1, E.Data); (0, 2, E.Data); (1, 2, E.Ctrl) ];
    fb_present = "A counter loop over %i% drives the computation";
    fb_missing = "Use a loop driven by a counter variable";
  }

(** [p_return_var] — the method returns a computed variable.
    Nodes: 0 the computation (Untyped), 1 the return. *)
let p_return_var =
  {
    Pattern.id = "p_return_var";
    description = "Return a computed variable";
    nodes =
      [|
        node (contains "%r%") ~ok:"%r% holds the computed result";
        node ~typ:E.Return (exact "return %r%")
          ~approx:(regex {|return .+|})
          ~ok:"The method returns %r%"
          ~bad:"The method should return the computed variable %r%";
      |];
    edges = [ (0, 1, E.Data) ];
    fb_present = "The computed value %r% is returned";
    fb_missing = "Your method must return the computed value";
  }

(* ------------------------------------------------------------------ *)
(* Helper-based search (esc-LAB-3-P1/P2 drivers)                       *)

(** [p_search_while] — advance a counter while [helper(n + 1) <= k].
    Nodes: 0 counter init, 1 search condition, 2 counter increment. *)
let p_search_while =
  {
    Pattern.id = "p_search_while";
    description = "Advance a counter while helper(n + 1) <= k";
    nodes =
      [|
        node ~typ:E.Assign (exact "%n% = 0")
          ~approx:(regex {|%n% = .+|})
          ~ok:"%n% starts at 0" ~bad:"%n% should start at 0";
        node ~typ:E.Cond
          (regex (ident_re ^ {|\(%n% \+ 1\) <= %k%|}))
          ~approx:(regex (ident_re ^ {|\(%n%( \+ 1)?\) <=? %k%|}))
          ~ok:"The loop advances while helper(%n% + 1) <= %k%"
          ~bad:"The search condition should compare helper(%n% + 1) <= %k%";
        node ~typ:E.Assign
          (regex (incr_of "n"))
          ~approx:(regex (update_of "n"))
          ~ok:"%n% advances by 1" ~bad:"%n% should advance by 1";
      |];
    edges = [ (0, 1, E.Data); (0, 2, E.Data); (1, 2, E.Ctrl) ];
    fb_present =
      "You search for the answer by advancing %n% while helper(%n% + 1) <= %k%";
    fb_missing =
      "Advance a counter %n% while helper(%n% + 1) <= %k% to find the answer";
  }

(* ------------------------------------------------------------------ *)
(* Factorial and Fibonacci helpers                                     *)

(** [p_factorial] — iterative factorial.  Nodes: 0 accumulator init,
    1 loop bound, 2 multiplication (crucial), 3 counter increment,
    4 counter init, 5 return. *)
let p_factorial =
  {
    Pattern.id = "p_factorial";
    description = "Iterative factorial accumulation";
    nodes =
      [|
        node ~typ:E.Assign (exact "%f% = 1")
          ~approx:(regex {|%f% = .+|})
          ~ok:"%f% is initialized to 1" ~bad:"%f% should be initialized to 1";
        node ~typ:E.Cond
          (regex {|%i% <= %m%|})
          ~approx:(regex {|%i% <=? .+|})
          ~ok:"The loop runs %i% up to %m% inclusive"
          ~bad:"The loop should run %i% up to %m% inclusive";
        (* Crucial: the multiplicative step identifies the pattern. *)
        node ~typ:E.Assign
          (regex {|(%f% \*= %i%|%f% = %f% \* %i%)|})
          ~ok:"%f% accumulates the product of %i%";
        node ~typ:E.Assign
          (regex (incr_of "i"))
          ~approx:(regex (update_of "i"))
          ~ok:"%i% is incremented by 1" ~bad:"%i% should be incremented by 1";
        node ~typ:E.Assign (exact "%i% = 1")
          ~approx:(regex {|%i% = .+|})
          ~ok:"%i% starts at 1" ~bad:"%i% should start at 1";
        node ~typ:E.Return (exact "return %f%")
          ~approx:(regex {|return .+|})
          ~ok:"The factorial %f% is returned"
          ~bad:"Return the accumulated factorial %f%";
      |];
    edges =
      [
        (0, 2, E.Data);
        (4, 1, E.Data);
        (4, 3, E.Data);
        (1, 2, E.Ctrl);
        (1, 3, E.Ctrl);
        (2, 5, E.Data);
      ];
    fb_present = "%f% correctly accumulates the factorial";
    fb_missing =
      "Compute the factorial by multiplying %f% by %i% in a loop from 1 to \
       the parameter";
  }

(** [p_fib_step] — iterative Fibonacci stepping.  Nodes: 0/1 seeds,
    2 sum (crucial), 3 shift a (crucial), 4 shift b (crucial), 5 loop. *)
let p_fib_step =
  {
    Pattern.id = "p_fib_step";
    description = "Iterative Fibonacci stepping";
    nodes =
      [|
        node ~typ:E.Assign (exact "%a% = 1")
          ~approx:(regex {|%a% = .+|})
          ~ok:"The first seed %a% is 1" ~bad:"The first seed %a% should be 1";
        node ~typ:E.Assign (exact "%b% = 1")
          ~approx:(regex {|%b% = .+|})
          ~ok:"The second seed %b% is 1" ~bad:"The second seed %b% should be 1";
        node ~typ:E.Assign (exact "%t% = %a% + %b%")
          ~ok:"%t% is the sum of the previous two values";
        node ~typ:E.Assign (exact "%a% = %b%") ~ok:"%a% shifts to %b%";
        node ~typ:E.Assign (exact "%b% = %t%") ~ok:"%b% shifts to %t%";
        node ~typ:E.Cond (regex {|.+|}) ~ok:"A loop drives the stepping";
      |];
    edges =
      [
        (0, 2, E.Data);
        (1, 2, E.Data);
        (1, 3, E.Data);
        (2, 4, E.Data);
        (5, 2, E.Ctrl);
        (5, 3, E.Ctrl);
        (5, 4, E.Ctrl);
      ];
    fb_present = "The Fibonacci values are stepped with %t% = %a% + %b%";
    fb_missing =
      "Step the Fibonacci sequence with a temporary: %t% = %a% + %b%; %a% = \
       %b%; %b% = %t%";
  }

(* ------------------------------------------------------------------ *)
(* Digit manipulation                                                  *)

(** [p_digit_peel] — extract digits with [% 10] while shrinking with
    [/ 10].  Nodes: 0 loop condition, 1 digit extraction (crucial),
    2 shrink (crucial). *)
let p_digit_peel =
  {
    Pattern.id = "p_digit_peel";
    description = "Peel digits off a number with % 10 and / 10";
    nodes =
      [|
        node ~typ:E.Cond
          (regex {|(%n% > 0|%n% != 0)|})
          ~approx:(regex {|%n% >= 0|})
          ~ok:"The loop runs while %n% has digits left"
          ~bad:"The loop condition %n% >= 0 never lets %n% reach the end";
        node ~typ:E.Assign (exact "%d% = %n% % 10")
          ~ok:"%d% extracts the last digit of %n%";
        node ~typ:E.Assign
          (regex {|(%n% = %n% / 10|%n% /= 10)|})
          ~ok:"%n% drops its last digit";
      |];
    edges = [ (0, 1, E.Ctrl); (0, 2, E.Ctrl) ];
    fb_present = "You peel the digits of %n% with %% 10 and / 10";
    fb_missing =
      "Peel the digits off the number: extract with %% 10 and shrink with \
       / 10 inside a loop";
  }

(** [p_reverse_accum] — build the digit-reversed number.
    Nodes: 0 init, 1 accumulation (crucial). *)
let p_reverse_accum =
  {
    Pattern.id = "p_reverse_accum";
    description = "Accumulate the reverse of a number";
    nodes =
      [|
        node ~typ:E.Assign (exact "%rv% = 0")
          ~approx:(regex {|%rv% = .+|})
          ~ok:"%rv% starts at 0" ~bad:"%rv% should start at 0";
        node ~typ:E.Assign
          (regex {|%rv% = %rv% \* 10 \+ .+|})
          ~ok:"%rv% accumulates the reversed digits";
      |];
    edges = [ (0, 1, E.Data) ];
    fb_present = "%rv% accumulates the reverse of the number";
    fb_missing = "Build the reverse with %rv% = %rv% * 10 + digit";
  }

(** [p_cube_sum] — sum the cubes of the digits.
    Nodes: 0 init, 1 accumulation (crucial). *)
let p_cube_sum =
  {
    Pattern.id = "p_cube_sum";
    description = "Sum the cubes of the digits";
    nodes =
      [|
        node ~typ:E.Assign (exact "%cs% = 0")
          ~approx:(regex {|%cs% = .+|})
          ~ok:"%cs% starts at 0" ~bad:"%cs% should start at 0";
        node ~typ:E.Assign
          (regex
             {|(%cs% \+= %cd% \* %cd% \* %cd%|%cs% = %cs% \+ %cd% \* %cd% \* %cd%)|})
          ~ok:"%cs% accumulates the cube of %cd%";
      |];
    edges = [ (0, 1, E.Data) ];
    fb_present = "%cs% sums the cubes of the digits";
    fb_missing = "Sum the cube of each digit: %cs% += %cd% * %cd% * %cd%";
  }

(* ------------------------------------------------------------------ *)
(* Compare-and-report                                                  *)

(** [p_compare_print] — an equality test chooses between two console
    messages.  Nodes: 0 condition, 1/2 the two prints. *)
let p_compare_print =
  {
    Pattern.id = "p_compare_print";
    description = "Compare two values and print a message either way";
    nodes =
      [|
        node ~typ:E.Cond (exact "%ca% == %cb%")
          ~ok:"%ca% is compared against %cb%";
        node ~typ:E.Call
          (regex {|System\.out\.print(ln)?\(.+\)|})
          ~ok:"A message is printed when the test holds";
        node ~typ:E.Call
          (regex {|System\.out\.print(ln)?\(.+\)|})
          ~ok:"A message is printed when the test fails";
      |];
    edges = [ (0, 1, E.Ctrl); (0, 2, E.Ctrl) ];
    fb_present = "You compare %ca% with %cb% and report both outcomes";
    fb_missing =
      "Compare the computed value against the input and print a message in \
       both cases";
  }

(** [p_abs_diff] — the positive difference of two values via an if-negate.
    Nodes: 0 the difference assignment, 1 sign test, 2 negation. *)
let p_abs_diff =
  {
    Pattern.id = "p_abs_diff";
    description = "Take the positive difference of two values";
    nodes =
      [|
        node ~typ:E.Assign (exact "%df% = %kd% - %rd%")
          ~ok:"%df% is the difference of %kd% and %rd%";
        node ~typ:E.Cond (exact "%df% < 0") ~ok:"%df% is tested for sign";
        node ~typ:E.Assign (exact "%df% = -%df%")
          ~ok:"%df% is negated when negative";
      |];
    edges = [ (0, 1, E.Data); (1, 2, E.Ctrl) ];
    fb_present = "%df% holds the positive difference";
    fb_missing =
      "Compute the difference and make it positive: if (%df% < 0) %df% = \
       -%df%";
  }

(** [p_copy_param] — the parameter is copied before being consumed.
    Nodes: 0 the parameter declaration, 1 the copy. *)
let p_copy_param =
  {
    Pattern.id = "p_copy_param";
    description = "Copy the parameter before destroying it";
    nodes =
      [|
        node ~typ:E.Decl (regex {|(int|long) %ck%|})
          ~ok:"%ck% is the input parameter";
        node ~typ:E.Assign (exact "%cn% = %ck%")
          ~ok:"%ck% is saved into %cn% before the loop consumes it";
      |];
    edges = [ (0, 1, E.Data) ];
    fb_present = "You copy the parameter before consuming it";
    fb_missing =
      "Copy the parameter into a working variable — you still need the \
       original value after the loop";
  }

(** [p_string_output] — a string literal message printed to console. *)
let p_string_output =
  {
    Pattern.id = "p_string_output";
    description = "Print a literal message";
    nodes =
      [|
        node ~typ:E.Call
          (regex {|System\.out\.print(ln)?\("[^"]*"\)|})
          ~ok:"A literal message is printed";
      |];
    edges = [];
    fb_present = "Literal messages are printed to console";
    fb_missing = "Print the requested messages to console";
  }

(* ------------------------------------------------------------------ *)
(* Polynomial evaluation (mitx)                                        *)

(** [p_poly_accum] — evaluate a polynomial by accumulating coefficient
    times running power.  Nodes: 0 result init, 1 power init, 2 term
    accumulation (crucial), 3 power step (crucial), 4 loop. *)
let p_poly_accum =
  {
    Pattern.id = "p_poly_accum";
    description = "Polynomial evaluation with a running power";
    nodes =
      [|
        node ~typ:E.Assign (exact "%r8% = 0")
          ~approx:(regex {|%r8% = .+|})
          ~ok:"The result %r8% starts at 0" ~bad:"Start the result %r8% at 0";
        node ~typ:E.Assign (exact "%w8% = 1")
          ~approx:(regex {|%w8% = .+|})
          ~ok:"The running power %w8% starts at 1"
          ~bad:"Start the running power %w8% at 1";
        node ~typ:E.Assign
          (regex {|(%r8% \+= .+ \* %w8%|%r8% = %r8% \+ .+ \* %w8%)|})
          ~ok:"%r8% accumulates coefficient times %w8%";
        node ~typ:E.Assign
          (regex {|(%w8% \*= .+|%w8% = %w8% \* .+)|})
          ~ok:"%w8% advances by multiplying";
        node ~typ:E.Cond (regex {|.+|}) ~ok:"A loop drives the evaluation";
      |];
    edges =
      [
        (0, 2, E.Data);
        (1, 2, E.Data);
        (1, 3, E.Data);
        (4, 2, E.Ctrl);
        (4, 3, E.Ctrl);
      ];
    fb_present = "You evaluate the polynomial with a running power %w8%";
    fb_missing =
      "Evaluate the polynomial by accumulating coefficient * power and \
       multiplying the power each iteration";
  }

(* ------------------------------------------------------------------ *)
(* File scanning (rit)                                                 *)

(** [p_scanner_loop] — open a file Scanner, loop on hasNext with a record
    cursor.  Nodes: 0 Scanner creation (crucial), 1 hasNext condition
    (crucial), 2 cursor init, 3 cursor increment. *)
let p_scanner_loop =
  {
    Pattern.id = "p_scanner_loop";
    description = "Scan a file token by token with a record cursor";
    nodes =
      [|
        node ~typ:E.Assign
          (regex {|%sc% = new Scanner\(new File\(".+"\)\)|})
          ~ok:"%sc% scans the input file";
        node ~typ:E.Cond
          (regex {|%sc%\.hasNext\(\)|})
          ~ok:"The loop runs while %sc% has tokens";
        node ~typ:E.Assign (exact "%cu% = 1")
          ~approx:(regex {|%cu% = .+|})
          ~ok:"The token cursor %cu% starts at 1"
          ~bad:"Start the token cursor %cu% at 1";
        node ~typ:E.Assign
          (regex (incr_of "cu"))
          ~approx:(regex (update_of "cu"))
          ~ok:"The cursor %cu% advances once per token"
          ~bad:"Advance the cursor %cu% by exactly 1 per token";
      |];
    edges = [ (0, 1, E.Data); (2, 3, E.Data); (1, 3, E.Ctrl) ];
    fb_present = "You scan the file with %sc% and track the position in %cu%";
    fb_missing =
      "Scan the file with a Scanner, looping on hasNext() and tracking the \
       token position in a cursor";
  }

(* A guarded field read: [if (ru % 5 == r) fv = fs.next…()].  The variable
   alphabet (ru/fv/fs) is disjoint from the other scanner patterns so
   containment constraints can merge mappings (Definition 10). *)
let guarded_read ~id ~desc ~call ~what =
  {
    Pattern.id;
    description = desc;
    nodes =
      [|
        node ~typ:E.Cond
          (regex {|%ru% % 5 == [0-9]|})
          ~ok:"A record-position condition selects the field";
        node ~typ:E.Assign
          (regex (Printf.sprintf {|%%fv%% = %%fs%%\.%s\(\)|} call))
          ~ok:(Printf.sprintf "%%fv%% reads the %s field" what);
      |];
    edges = [ (0, 1, E.Ctrl) ];
    fb_present = Printf.sprintf "%%fv%% is read as a %s field at a fixed record position" what;
    fb_missing =
      Printf.sprintf
        "Read each %s field under a position condition %%ru%% %% 5 == r" what;
  }

(** [p_read_str_field] — a string field read under a record-position
    guard. *)
let p_read_str_field =
  guarded_read ~id:"p_read_str_field" ~desc:"Guarded string field read"
    ~call:"next" ~what:"string"

(** [p_read_int_field] — an integer field read under a record-position
    guard. *)
let p_read_int_field =
  guarded_read ~id:"p_read_int_field" ~desc:"Guarded integer field read"
    ~call:"nextInt" ~what:"integer"

(** [p_record_guard] — the counting condition: a record-position test
    combined with at least one other conjunct. *)
let p_record_guard =
  {
    Pattern.id = "p_record_guard";
    description = "Count under a record-position condition with extra tests";
    nodes =
      [|
        node ~typ:E.Cond
          (regex
             {|((.+ && )*%gu% % 5 == [0-9]( && .+)+|(.+ && )+%gu% % 5 == [0-9]( && .+)*)|})
          ~ok:"The count happens at a fixed record position with extra tests";
      |];
    edges = [];
    fb_present = "You count at a fixed record position under extra conditions";
    fb_missing =
      "Count under a condition that combines the record position with the \
       field tests";
  }

(** [p_close_scanner] — the Scanner is closed after the loop. *)
let p_close_scanner =
  {
    Pattern.id = "p_close_scanner";
    description = "Close the Scanner";
    nodes =
      [|
        node ~typ:E.Assign
          (regex {|%sc% = new Scanner\(new File\(".+"\)\)|})
          ~ok:"%sc% scans the input file";
        node ~typ:E.Call
          (regex {|%sc%\.close\(\)|})
          ~ok:"%sc% is closed";
      |];
    edges = [ (0, 1, E.Data) ];
    fb_present = "You close the Scanner when done";
    fb_missing = "Close your Scanner when you are done reading the file";
  }

(* ------------------------------------------------------------------ *)
(* Variant patterns (§VII future work: the pattern hierarchy)          *)
(* These are alternatives that realize the same semantics as a primary
   pattern.  Node indices are aligned with the primary so the existing
   constraints keep their meaning; they are only consulted when grading
   with [~use_variants:true]. *)

(** Variant of {!p_digit_peel}: digits peeled under a digit-count bound
    computed with [⌊log10 k⌋ + 1] — the paper's own §VI-B discrepancy
    example.  Node 1 (the extraction) aligns with the primary's. *)
let p_digit_peel_log10 =
  {
    Pattern.id = "p_digit_peel_log10";
    description = "Peel digits under a log10 digit-count bound";
    nodes =
      [|
        node ~typ:E.Cond
          (regex {|.+ < .+|})
          ~ok:"The loop runs once per digit";
        node ~typ:E.Assign (exact "%d% = %n% % 10")
          ~ok:"%d% extracts the last digit of %n%";
        node ~typ:E.Assign
          (regex {|(%n% = %n% / 10|%n% /= 10)|})
          ~ok:"%n% drops its last digit";
      |];
    edges = [ (0, 1, E.Ctrl); (0, 2, E.Ctrl) ];
    fb_present =
      "You peel the digits of %n% under a digit-count bound (a correct \
       variant)";
    fb_missing = "Peel the digits off the number inside a loop";
  }

(** Variant of {!p_search_while}: a do-while driver — the condition is
    evaluated after the advance, so the init→condition data edge of the
    primary does not exist.  Node indices align with the primary's. *)
let p_search_do =
  {
    Pattern.id = "p_search_do";
    description = "Advance a counter in a do-while while helper(n + 1) <= k";
    nodes =
      [|
        node ~typ:E.Assign (exact "%n% = 0")
          ~approx:(regex {|%n% = .+|})
          ~ok:"%n% starts at 0" ~bad:"%n% should start at 0";
        node ~typ:E.Cond
          (regex (ident_re ^ {|\(%n% \+ 1\) <= %k%|}))
          ~approx:(regex (ident_re ^ {|\(%n%( \+ 1)?\) <=? %k%|}))
          ~ok:"The loop advances while helper(%n% + 1) <= %k%"
          ~bad:"The search condition should compare helper(%n% + 1) <= %k%";
        node ~typ:E.Assign
          (regex (incr_of "n"))
          ~approx:(regex (update_of "n"))
          ~ok:"%n% advances by 1" ~bad:"%n% should advance by 1";
      |];
    edges = [ (0, 2, E.Data); (1, 2, E.Ctrl) ];
    fb_present =
      "You search for the answer with a do-while advancing %n% (a correct \
       variant)";
    fb_missing =
      "Advance a counter %n% while helper(%n% + 1) <= %k% to find the answer";
  }

(* ------------------------------------------------------------------ *)
(* Bad patterns (t = 0)                                                *)

(** [p_double_update] — the same counter is updated twice under the same
    condition; instructors forbid this in sentinel-controlled loops. *)
let p_double_update =
  {
    Pattern.id = "p_double_update";
    description = "Counter updated twice in the same loop (bad pattern)";
    nodes =
      [|
        (* Any condition: the two updates need only share a control
           parent (e.g. the sentinel loop's hasNext). *)
        node ~typ:E.Cond (regex {|.+|}) ~ok:"";
        node ~typ:E.Assign (regex (incr_of "x")) ~ok:"";
        node ~typ:E.Assign (regex (incr_of "x")) ~ok:"";
      |];
    edges = [ (0, 1, E.Ctrl); (0, 2, E.Ctrl) ];
    fb_present = "Good: the loop counter is updated exactly once per iteration";
    fb_missing =
      "Do not update the loop counter more than once in the same iteration";
  }

let ignore_unused = [ ident_re ]
