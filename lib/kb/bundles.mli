(** Per-assignment bundles: the generator space (Table I column S), the
    grading specification (columns P and C), and the functional-test
    suite (column T) for each of the paper's twelve assignments. *)

type t = {
  gen : Jfeed_gen.Spec.t;
  grading : Jfeed_core.Grader.spec;
  suite : Jfeed_ftest.Runner.suite;
}

val patterns : t -> (Jfeed_core.Pattern.t * int) list
(** All (pattern, t̄) usages across the assignment's expected methods —
    its Table I column P is the length of this list. *)

val constraints : t -> Jfeed_core.Constr.t list
(** All constraints across the expected methods — column C. *)

val assignment1 : t
val esc_p1v1 : t
val esc_p2v1 : t
val esc_p2v2 : t
val esc_p3v1 : t
val esc_p4v1 : t
val esc_p3v2 : t
val esc_p4v2 : t
val mitx_derivatives : t
val mitx_polynomials : t
val rit_gold : t
val rit_ath : t

val all : t list
(** The twelve assignments, in Table I order. *)

val find : string -> t option
(** Look up by assignment id (e.g. ["esc-LAB-3-P2-V1"]). *)

val revision : unit -> string
(** Fingerprint of the whole knowledge base (hex digest, computed once):
    covers every bundle's patterns — templates, node types, edges,
    feedback texts, occurrence counts — variants, constraints, and
    flags.  Changing any grading-relevant KB content changes it, so a
    content-addressed result cache keyed on it
    ({!Jfeed_service.Normalize}) is invalidated wholesale by a KB edit
    and survives mere recompilation. *)
