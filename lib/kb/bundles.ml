(** Per-assignment bundles: the generator space (column S), the grading
    specification (columns P and C), and the functional-test suite
    (column T) for each of the paper's twelve assignments. *)

open Jfeed_core
open Jfeed_exprmatch
module E = Jfeed_pdg.Epdg
module V = Jfeed_interp.Value

type t = {
  gen : Jfeed_gen.Spec.t;
  grading : Grader.spec;
  suite : Jfeed_ftest.Runner.suite;
}

let patterns t = List.concat_map (fun q -> q.Grader.q_patterns) t.grading.Grader.a_methods
let constraints t = List.concat_map (fun q -> q.Grader.q_constraints) t.grading.Grader.a_methods

let int_array xs = V.Varr (Array.of_list (List.map (fun n -> V.Vint n) xs))

(* ------------------------------------------------------------------ *)
(* Assignment 1                                                        *)

let assignment1 =
  let open Patterns in
  let q =
    {
      Grader.q_name = "assignment1";
      q_patterns =
        [
          (p_param_decl, 1);
          (p_odd_access, 1);
          (p_even_access, 1);
          (p_cond_accum_add, 1);
          (p_cond_accum_mul, 1);
          (p_print_var, 2);
        ];
      q_variants = [];
      q_constraints =
        [
          (* The paper's containment example: the odd-access node is the
             conditional cumulative addition. *)
          Constr.containment ~id:"a1_odd_is_sum"
            ~desc:"Odd positions must be added into the accumulator"
            ~ok:"The odd positions of %s% are added into %c%"
            ~fail:"The odd positions you access must be added into the sum"
            ("p_odd_access", 5)
            (Template.regex_of
               {|(%c% \+= %s%\[%x%\]|%c% = %c% \+ %s%\[%x%\])|})
            [ "p_cond_accum_add" ];
          Constr.equality ~id:"a1_even_is_prod"
            ~desc:"Even positions must be multiplied into the accumulator"
            ~ok:"The even positions are multiplied into the product"
            ~fail:
              "The even positions you access must be multiplied into the \
               product"
            ("p_even_access", 5) ("p_cond_accum_mul", 3);
          Constr.edge ~id:"a1_print_sum"
            ~desc:"The accumulated sum must be printed"
            ~ok:"The accumulated sum is printed"
            ~fail:"You must print the accumulated sum" ("p_cond_accum_add", 3)
            ("p_print_var", 1) E.Data;
          Constr.edge ~id:"a1_print_prod"
            ~desc:"The accumulated product must be printed"
            ~ok:"The accumulated product is printed"
            ~fail:"You must print the accumulated product"
            ("p_cond_accum_mul", 3) ("p_print_var", 1) E.Data;
        ];
    }
  in
  {
    gen = Jfeed_gen.A_assignment1.spec;
    grading =
      {
        Grader.a_id = "assignment1";
        a_title = Jfeed_gen.A_assignment1.spec.Jfeed_gen.Spec.title;
        a_methods = [ q ];
        enforce_headers = false;
      };
    suite =
      {
        Jfeed_ftest.Runner.entry = "assignment1";
        max_steps = 100_000;
        cases =
          [
            { label = "small"; args = [ int_array [ 3; 4; 5; 6 ] ]; files = [] };
            { label = "single"; args = [ int_array [ 7 ] ]; files = [] };
            { label = "empty"; args = [ int_array [] ]; files = [] };
            {
              label = "mixed";
              args = [ int_array [ 2; 10; 1; 3; 8 ] ];
              files = [];
            };
            {
              label = "longer";
              args = [ int_array [ 1; 2; 3; 4; 5; 6; 7 ] ];
              files = [];
            };
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* esc-LAB-3-P1-V1 and esc-LAB-3-P2-V1 (helper + driver)               *)

(* Driver-side grading shared by the two search assignments.  The flags
   keep the per-assignment pattern/constraint counts aligned with the
   paper's Table I (P and C columns). *)
let search_driver_q ~name ~with_double_update ~helper_re =
  let open Patterns in
  {
    Grader.q_name = name;
    q_patterns =
      ([ (p_param_decl, 1); (p_search_while, 1); (p_print_var, 1) ]
      @ if with_double_update then [ (p_double_update, 0) ] else []);
    q_variants = [ ("p_search_while", [ p_search_do ]) ];
    q_constraints =
      [
        Constr.edge
          ~id:(name ^ "_print_counter")
          ~desc:"The search counter must be printed"
          ~ok:"The final counter value is printed"
          ~fail:"Print the counter you advanced" ("p_search_while", 2)
          ("p_print_var", 1) E.Data;
        Constr.containment
          ~id:(name ^ "_cond_arg")
          ~desc:"The search must look one step ahead"
          ~ok:"The search condition looks ahead with %n% + 1"
          ~fail:"The search condition must look ahead with %n% + 1"
          ("p_search_while", 1)
          (Template.regex_of {|.*\(%n% \+ 1\).*|})
          [];
        Constr.equality
          ~id:(name ^ "_printed_is_counter")
          ~desc:"The printed value must be the advanced counter"
          ~ok:"You print exactly the counter you advanced"
          ~fail:"Print exactly the counter you advanced" ("p_print_var", 0)
          ("p_search_while", 2);
      ]
      @
      match helper_re with
      | None -> []
      | Some re ->
          [
            Constr.containment
              ~id:(name ^ "_calls_helper")
              ~desc:"The search condition must call the helper method"
              ~ok:"The helper method is used in the search condition"
              ~fail:"Call your helper method inside the search condition"
              ("p_search_while", 1) (Template.regex_of re) [];
          ];
  }

let factorial_q ~prefix ~extended =
  let open Patterns in
  {
    Grader.q_name = "factorial";
    q_patterns =
      [ (p_param_decl, 1); (p_factorial, 1); (p_counter_loop, 1);
        (p_return_var, 1) ];
    q_variants = [];
    q_constraints =
      (if extended then
         [
           Constr.edge ~id:(prefix ^ "_fact_param_bounds_loop")
             ~desc:"The parameter must bound the factorial loop"
             ~ok:"The parameter bounds the factorial loop"
             ~fail:"Bound the factorial loop with the parameter"
             ("p_param_decl", 0) ("p_factorial", 1) E.Data;
           Constr.containment ~id:(prefix ^ "_fact_init_one")
             ~desc:"The factorial accumulator must start at 1"
             ~ok:"The factorial accumulator starts at 1"
             ~fail:"Start the factorial accumulator at 1" ("p_factorial", 0)
             (Template.exact_of "%f% = 1")
             [];
         ]
       else [])
      @ [
        Constr.equality ~id:(prefix ^ "_fact_returns_product")
          ~desc:"The returned variable must be the accumulated product"
          ~ok:"You return the accumulated product"
          ~fail:"Return the variable that accumulates the product"
          ("p_return_var", 0) ("p_factorial", 2);
        Constr.equality ~id:(prefix ^ "_fact_counter_is_index")
          ~desc:"The loop counter must drive the multiplication"
          ~ok:"The loop counter drives the multiplication"
          ~fail:"The loop counter must drive the multiplication"
          ("p_counter_loop", 2) ("p_factorial", 3);
      ];
  }

let fib_q ~prefix ~full =
  let open Patterns in
  {
    Grader.q_name = "fib";
    q_patterns =
      [ (p_param_decl, 1); (p_fib_step, 1); (p_counter_loop, 1);
        (p_return_var, 1) ];
    q_variants = [];
    q_constraints =
      [
        Constr.equality ~id:(prefix ^ "_fib_returns_first_seed")
          ~desc:"The returned variable must be the first Fibonacci value"
          ~ok:"You return the first of the two stepped values"
          ~fail:"Return the first of the two stepped values, not the second"
          ("p_return_var", 0) ("p_fib_step", 3);
        Constr.equality ~id:(prefix ^ "_fib_loop_drives_step")
          ~desc:"The counter loop must drive the stepping"
          ~ok:"The counter loop drives the Fibonacci stepping"
          ~fail:"Drive the Fibonacci stepping with the counter loop"
          ("p_counter_loop", 1) ("p_fib_step", 5);
        Constr.edge ~id:(prefix ^ "_fib_counter_feeds_loop")
          ~desc:"The counter must feed the loop condition"
          ~ok:"The loop condition reads the counter"
          ~fail:"The loop condition must read the counter"
          ("p_counter_loop", 0) ("p_fib_step", 5) E.Data;
        Constr.edge ~id:(prefix ^ "_fib_param_bounds_loop")
          ~desc:"The parameter must bound the counter loop"
          ~ok:"The parameter bounds the loop"
          ~fail:"Bound the loop with the method parameter" ("p_param_decl", 0)
          ("p_counter_loop", 1) E.Data;
      ]
      @ (if full then
           [
             Constr.containment ~id:(prefix ^ "_fib_step_shape")
               ~desc:"The stepping must sum the previous two values"
               ~ok:"The stepping sums the previous two values"
               ~fail:"Sum the previous two values into a temporary"
               ("p_fib_step", 2)
               (Template.exact_of "%t% = %a% + %b%")
               [];
             Constr.edge ~id:(prefix ^ "_fib_shift_reaches_return")
               ~desc:"The shifted value must reach the return"
               ~ok:"The shifted value reaches the return"
               ~fail:"Return the value you shift in the loop" ("p_fib_step", 3)
               ("p_return_var", 1) E.Data;
           ]
         else [])
      @ [
        Constr.containment ~id:(prefix ^ "_fib_loop_bound_shape")
          ~desc:"The counter loop must use a strict bound"
          ~ok:"The counter loop uses a strict bound"
          ~fail:"Use a strict < bound on the counter loop" ("p_counter_loop", 1)
          (Template.regex_of {|%i% < .+|})
          [];
        Constr.containment ~id:(prefix ^ "_fib_returns_a")
          ~desc:"The return must name the first seed"
          ~ok:"The return names the first stepped value"
          ~fail:"Return the first stepped value" ("p_return_var", 1)
          (Template.exact_of "return %a%")
          [ "p_fib_step" ];
        Constr.containment ~id:(prefix ^ "_fib_counter_starts_1")
          ~desc:"The stepping counter must start at 1"
          ~ok:"The stepping counter starts at 1"
          ~fail:"Start the stepping counter at 1" ("p_counter_loop", 0)
          (Template.exact_of "%i% = 1")
          [];
      ];
  }

let int_arg n = V.Vint n

let search_suite ~entry ~ks ~max_steps =
  {
    Jfeed_ftest.Runner.entry;
    max_steps;
    cases =
      List.map
        (fun k ->
          {
            Jfeed_ftest.Runner.label = Printf.sprintf "k=%d" k;
            args = [ int_arg k ];
            files = [];
          })
        ks;
  }

let esc_p1v1 =
  {
    gen = Jfeed_gen.A_esc_search.p1v1;
    grading =
      {
        Grader.a_id = "esc-LAB-3-P1-V1";
        a_title = Jfeed_gen.A_esc_search.p1v1.Jfeed_gen.Spec.title;
        a_methods =
          [
            search_driver_q ~name:"lab3p1" ~with_double_update:false
              ~helper_re:None;
            factorial_q ~prefix:"p1v1" ~extended:false;
          ];
        enforce_headers = false;
      };
    suite =
      search_suite ~entry:"lab3p1"
        ~ks:[ 1; 2; 6; 7; 23; 24; 100; 719; 720; 5040 ]
        ~max_steps:200_000;
  }

let esc_p2v1 =
  {
    gen = Jfeed_gen.A_esc_search.p2v1;
    grading =
      {
        Grader.a_id = "esc-LAB-3-P2-V1";
        a_title = Jfeed_gen.A_esc_search.p2v1.Jfeed_gen.Spec.title;
        a_methods =
          [
            search_driver_q ~name:"lab3p2" ~with_double_update:true
              ~helper_re:(Some {|.*(fib|fibonacci)\(.*|});
            fib_q ~prefix:"p2v1" ~full:true;
          ];
        enforce_headers = false;
      };
    suite =
      search_suite ~entry:"lab3p2"
        ~ks:[ 1; 2; 3; 5; 8; 13; 100; 10000 ]
        ~max_steps:500_000;
  }

(* ------------------------------------------------------------------ *)
(* Digit-manipulation assignments                                      *)

let esc_p2v2 =
  let open Patterns in
  let q =
    {
      Grader.q_name = "lab3p2v2";
      q_patterns =
        [
          (p_param_decl, 1);
          (p_digit_peel, 1);
          (p_cube_sum, 1);
          (p_compare_print, 1);
        ];
      q_variants = [];
      q_constraints =
        [
          Constr.containment ~id:"p2v2_cube_of_digit"
            ~desc:"The cubed value must be the extracted digit"
            ~ok:"You cube exactly the extracted digit %d%"
            ~fail:"Cube exactly the digit you extract" ("p_cube_sum", 1)
            (Template.regex_of
               {|(%cs% \+= %d% \* %d% \* %d%|%cs% = %cs% \+ %d% \* %d% \* %d%)|})
            [ "p_digit_peel" ];
          Constr.containment ~id:"p2v2_compare_shape"
            ~desc:"The sum must be compared against the input"
            ~ok:"You compare the digit-cube sum against the input"
            ~fail:"Compare the digit-cube sum against the original input"
            ("p_compare_print", 0)
            (Template.regex_of {|(%cs% == %k%|%k% == %cs%)|})
            [ "p_cube_sum"; "p_param_decl" ];
          Constr.edge ~id:"p2v2_sum_reaches_compare"
            ~desc:"The accumulated sum must reach the comparison"
            ~ok:"The accumulated sum reaches the comparison"
            ~fail:"Compare the sum you accumulated" ("p_cube_sum", 1)
            ("p_compare_print", 0) E.Data;
          Constr.edge ~id:"p2v2_param_reaches_compare"
            ~desc:"The original input must reach the comparison"
            ~ok:"The original input reaches the comparison"
            ~fail:"Compare against the original input value" ("p_param_decl", 0)
            ("p_compare_print", 0) E.Data;
          Constr.edge ~id:"p2v2_digit_feeds_sum"
            ~desc:"The extracted digit must feed the sum"
            ~ok:"The extracted digit feeds the sum"
            ~fail:"Accumulate the digit you extract" ("p_digit_peel", 1)
            ("p_cube_sum", 1) E.Data;
        ];
    }
  in
  {
    gen = Jfeed_gen.A_esc_digits.p2v2;
    grading =
      {
        Grader.a_id = "esc-LAB-3-P2-V2";
        a_title = Jfeed_gen.A_esc_digits.p2v2.Jfeed_gen.Spec.title;
        a_methods = [ q ];
        enforce_headers = false;
      };
    suite =
      search_suite ~entry:"lab3p2v2"
        ~ks:[ 1; 2; 10; 153; 154; 370; 371; 407; 500 ]
        ~max_steps:100_000;
  }

let esc_p3v1 =
  let open Patterns in
  let q =
    {
      Grader.q_name = "lab3p3v1";
      q_patterns =
        [
          (p_param_decl, 1);
          (p_copy_param, 1);
          (p_digit_peel, 1);
          (p_reverse_accum, 1);
          (p_abs_diff, 1);
          (p_print_var, 1);
          (p_double_update, 0);
        ];
      q_variants = [ ("p_digit_peel", [ p_digit_peel_log10 ]) ];
      q_constraints =
        [
          Constr.containment ~id:"p3v1_reverse_of_digit"
            ~desc:"The reverse must accumulate the extracted digit"
            ~ok:"The reverse accumulates exactly the extracted digit"
            ~fail:"Accumulate exactly the digit you extract into the reverse"
            ("p_reverse_accum", 1)
            (Template.exact_of "%rv% = %rv% * 10 + %d%")
            [ "p_digit_peel" ];
          Constr.edge ~id:"p3v1_digit_feeds_reverse"
            ~desc:"The extracted digit must feed the reverse"
            ~ok:"The extracted digit feeds the reverse"
            ~fail:"Feed the extracted digit into the reverse"
            ("p_digit_peel", 1) ("p_reverse_accum", 1) E.Data;
          Constr.edge ~id:"p3v1_param_in_diff"
            ~desc:"The original input must appear in the difference"
            ~ok:"The difference uses the original input"
            ~fail:
              "The difference must use the original input — do not destroy \
               the parameter" ("p_param_decl", 0) ("p_abs_diff", 0) E.Data;
          Constr.edge ~id:"p3v1_reverse_in_diff"
            ~desc:"The reverse must appear in the difference"
            ~ok:"The difference uses the accumulated reverse"
            ~fail:"The difference must use the accumulated reverse"
            ("p_reverse_accum", 1) ("p_abs_diff", 0) E.Data;
          Constr.equality ~id:"p3v1_print_final"
            ~desc:"The printed value must be the positive difference"
            ~ok:"You print the positive difference"
            ~fail:"Print the positive difference, not an intermediate value"
            ("p_print_var", 0) ("p_abs_diff", 2);
          Constr.containment ~id:"p3v1_diff_operands"
            ~desc:"The difference must be between the input and its reverse"
            ~ok:"The difference is between the input and its reverse"
            ~fail:"Take the difference of the input and its reverse"
            ("p_abs_diff", 0)
            (Template.regex_of {|(%df% = %k% - %rv%|%df% = %rv% - %k%)|})
            [ "p_param_decl"; "p_reverse_accum" ];
        ];
    }
  in
  {
    gen = Jfeed_gen.A_esc_digits.p3v1;
    grading =
      {
        Grader.a_id = "esc-LAB-3-P3-V1";
        a_title = Jfeed_gen.A_esc_digits.p3v1.Jfeed_gen.Spec.title;
        a_methods = [ q ];
        enforce_headers = false;
      };
    suite =
      search_suite ~entry:"lab3p3v1"
        ~ks:[ 5; 12; 21; 100; 1221; 123456 ]
        ~max_steps:100_000;
  }

let esc_p4v1 =
  let open Patterns in
  let q =
    {
      Grader.q_name = "lab3p4v1";
      q_patterns =
        [
          (p_param_decl, 1);
          (p_copy_param, 1);
          (p_digit_peel, 1);
          (p_reverse_accum, 1);
          (p_compare_print, 1);
          (p_string_output, 2);
          (p_double_update, 0);
        ];
      q_variants = [ ("p_digit_peel", [ p_digit_peel_log10 ]) ];
      q_constraints =
        [
          Constr.containment ~id:"p4v1_reverse_of_digit"
            ~desc:"The reverse must accumulate the extracted digit"
            ~ok:"The reverse accumulates exactly the extracted digit"
            ~fail:"Accumulate exactly the digit you extract into the reverse"
            ("p_reverse_accum", 1)
            (Template.exact_of "%rv% = %rv% * 10 + %d%")
            [ "p_digit_peel" ];
          Constr.edge ~id:"p4v1_digit_feeds_reverse"
            ~desc:"The extracted digit must feed the reverse"
            ~ok:"The extracted digit feeds the reverse"
            ~fail:"Feed the extracted digit into the reverse"
            ("p_digit_peel", 1) ("p_reverse_accum", 1) E.Data;
          Constr.edge ~id:"p4v1_param_in_compare"
            ~desc:"The comparison must use the original input"
            ~ok:"The comparison uses the original input"
            ~fail:
              "Compare against the original input — do not destroy the \
               parameter" ("p_param_decl", 0) ("p_compare_print", 0) E.Data;
          Constr.edge ~id:"p4v1_reverse_in_compare"
            ~desc:"The comparison must use the accumulated reverse"
            ~ok:"The comparison uses the accumulated reverse"
            ~fail:"Compare the reverse you accumulated" ("p_reverse_accum", 1)
            ("p_compare_print", 0) E.Data;
          Constr.equality ~id:"p4v1_copied_param"
            ~desc:"The copied variable must come from the input parameter"
            ~ok:"You work on a copy of the input parameter"
            ~fail:"Copy the input parameter before consuming it"
            ("p_copy_param", 0) ("p_param_decl", 0);
          Constr.containment ~id:"p4v1_compare_shape"
            ~desc:"The reverse must be compared against the input"
            ~ok:"You compare the reverse against the input"
            ~fail:"Compare the reverse against the original input"
            ("p_compare_print", 0)
            (Template.regex_of {|(%rv% == %k%|%k% == %rv%)|})
            [ "p_reverse_accum"; "p_param_decl" ];
        ];
    }
  in
  {
    gen = Jfeed_gen.A_esc_digits.p4v1;
    grading =
      {
        Grader.a_id = "esc-LAB-3-P4-V1";
        a_title = Jfeed_gen.A_esc_digits.p4v1.Jfeed_gen.Spec.title;
        a_methods = [ q ];
        enforce_headers = false;
      };
    suite =
      search_suite ~entry:"lab3p4v1"
        ~ks:[ 1; 7; 11; 12; 121; 123; 1221; 1231 ]
        ~max_steps:100_000;
  }

(* ------------------------------------------------------------------ *)
(* esc-LAB-3-P3-V2 and esc-LAB-3-P4-V2 (count helper values in [n, m]) *)

(* The counting driver.  [full] adds the guard/bound shape constraints
   (P3-V2); [start_at_1] adds the counter-start constraint that produces
   the paper's 248 P4-V2 discrepancies. *)
let counting_q ~name ~full ~start_at_1 ~with_double_update =
  let open Patterns in
  {
    Grader.q_name = name;
    q_patterns =
      ([
         (p_param_decl, 2);
         (p_counter_loop, 1);
         (p_cond_accum_add, 1);
         (p_print_var, 1);
       ]
      @ if with_double_update then [ (p_double_update, 0) ] else []);
    q_variants = [];
    q_constraints =
      [
        Constr.edge
          ~id:(name ^ "_count_printed")
          ~desc:"The count must be printed"
          ~ok:"The accumulated count is printed"
          ~fail:"Print the count you accumulated" ("p_cond_accum_add", 3)
          ("p_print_var", 1) E.Data;
        Constr.equality
          ~id:(name ^ "_printed_is_count")
          ~desc:"The printed value must be the count"
          ~ok:"You print exactly the accumulated count"
          ~fail:"Print exactly the accumulated count" ("p_print_var", 0)
          ("p_cond_accum_add", 3);
        Constr.containment
          ~id:(name ^ "_count_starts_0")
          ~desc:"The count must start at 0" ~ok:"The count starts at 0"
          ~fail:"Start the count at 0" ("p_cond_accum_add", 0)
          (Template.exact_of "%c% = 0")
          [];
        Constr.edge
          ~id:(name ^ "_counter_feeds_cond")
          ~desc:"The loop counter must feed the loop condition"
          ~ok:"The loop counter feeds the loop condition"
          ~fail:"The loop condition must use the counter" ("p_counter_loop", 0)
          ("p_cond_accum_add", 1) E.Data;
      ]
      @ (if start_at_1 then
           [
             Constr.containment
               ~id:(name ^ "_counter_starts_1")
               ~desc:"The sequence index must start at 1 (fib(1) = 1)"
               ~ok:"The sequence index starts at 1"
               ~fail:
                 "The Fibonacci sequence starts at 1 — modify the starting \
                  point of the counter" ("p_counter_loop", 0)
               (Template.exact_of "%i% = 1")
               [];
           ]
         else [])
      @
      if full then
        [
          Constr.containment
            ~id:(name ^ "_guard_lower_bound")
            ~desc:"The guard must check the lower bound"
            ~ok:"The guard checks the lower bound with >="
            ~fail:"Check the lower bound with >=" ("p_cond_accum_add", 2)
            (Template.regex_of {|.*>= .+|})
            [];
          Constr.containment
            ~id:(name ^ "_loop_upper_bound")
            ~desc:"The loop must stop at the upper bound"
            ~ok:"The loop stops at the upper bound with <="
            ~fail:"Stop the loop at the upper bound with <="
            ("p_cond_accum_add", 1)
            (Template.regex_of {|.*<= .+|})
            [];
        ]
      else [];
  }

let range_suite ~entry ~pairs ~max_steps =
  {
    Jfeed_ftest.Runner.entry;
    max_steps;
    cases =
      List.map
        (fun (n, m) ->
          {
            Jfeed_ftest.Runner.label = Printf.sprintf "[%d,%d]" n m;
            args = [ V.Vint n; V.Vint m ];
            files = [];
          })
        pairs;
  }

let esc_p3v2 =
  {
    gen = Jfeed_gen.A_esc_count.p3v2;
    grading =
      {
        Grader.a_id = "esc-LAB-3-P3-V2";
        a_title = Jfeed_gen.A_esc_count.p3v2.Jfeed_gen.Spec.title;
        a_methods =
          [
            counting_q ~name:"lab3p3v2" ~full:true ~start_at_1:false
              ~with_double_update:false;
            factorial_q ~prefix:"p3v2" ~extended:true;
          ];
        enforce_headers = false;
      };
    suite =
      range_suite ~entry:"lab3p3v2"
        ~pairs:[ (1, 15); (2, 100); (1, 1); (7, 120) ]
        ~max_steps:200_000;
  }

let esc_p4v2 =
  {
    gen = Jfeed_gen.A_esc_count.p4v2;
    grading =
      {
        Grader.a_id = "esc-LAB-3-P4-V2";
        a_title = Jfeed_gen.A_esc_count.p4v2.Jfeed_gen.Spec.title;
        a_methods =
          [
            counting_q ~name:"lab3p4v2" ~full:true ~start_at_1:true
              ~with_double_update:true;
            fib_q ~prefix:"p4v2" ~full:false;
          ];
        enforce_headers = false;
      };
    suite =
      range_suite ~entry:"lab3p4v2"
        ~pairs:[ (2, 15); (2, 100); (3, 55); (6, 200) ]
        ~max_steps:200_000;
  }

(* ------------------------------------------------------------------ *)
(* mitx-derivatives and mitx-polynomials                               *)

let mitx_derivatives =
  let open Patterns in
  let q =
    {
      Grader.q_name = "derivatives";
      q_patterns =
        [ (p_param_decl, 1); (p_counter_loop, 1); (p_print_var, 1) ];
      q_variants = [];
      q_constraints =
        [
          Constr.containment ~id:"deriv_starts_at_1"
            ~desc:"The loop must start at index 1 (the constant term drops)"
            ~ok:"The loop starts at index 1"
            ~fail:"Start at index 1 — the constant term has no derivative"
            ("p_counter_loop", 0)
            (Template.exact_of "%i% = 1")
            [];
          Constr.containment ~id:"deriv_bound"
            ~desc:"The loop must stop before the array length"
            ~ok:"The loop stops before the array length"
            ~fail:"Stop the loop strictly before the array length"
            ("p_counter_loop", 1)
            (Template.regex_of {|%i% < .+\.length|})
            [];
          Constr.containment ~id:"deriv_term"
            ~desc:"Each printed term must be coefficient times exponent"
            ~ok:"Each term is coefficient times exponent"
            ~fail:"Each derivative term must be %k%[%i%] * %i%"
            ("p_print_var", 0)
            (Template.regex_of {|%c% = %k%\[%i%\] \* %i%|})
            [ "p_counter_loop"; "p_param_decl" ];
          Constr.edge ~id:"deriv_uses_input"
            ~desc:"The term must read the input array"
            ~ok:"The term reads the input array"
            ~fail:"Compute the term from the input array" ("p_param_decl", 0)
            ("p_print_var", 0) E.Data;
        ];
    }
  in
  {
    gen = Jfeed_gen.A_mitx.derivatives;
    grading =
      {
        Grader.a_id = "mitx-derivatives";
        a_title = Jfeed_gen.A_mitx.derivatives.Jfeed_gen.Spec.title;
        a_methods = [ q ];
        enforce_headers = false;
      };
    suite =
      {
        Jfeed_ftest.Runner.entry = "derivatives";
        max_steps = 100_000;
        cases =
          [
            { label = "constant"; args = [ int_array [ 5 ] ]; files = [] };
            { label = "linear"; args = [ int_array [ 3; 4 ] ]; files = [] };
            { label = "quad"; args = [ int_array [ 1; 2; 3 ] ]; files = [] };
            {
              label = "cubic";
              args = [ int_array [ 2; 0; 5; 7 ] ];
              files = [];
            };
          ];
      };
  }

let mitx_polynomials =
  let open Patterns in
  let q =
    {
      Grader.q_name = "polynomials";
      q_patterns =
        [
          (p_param_decl, 2);
          (p_counter_loop, 1);
          (p_poly_accum, 1);
          (p_print_var, 1);
        ];
      q_variants = [];
      q_constraints =
        [
          Constr.containment ~id:"poly_starts_at_0"
            ~desc:"The loop must start at index 0"
            ~ok:"The loop starts at index 0" ~fail:"Start at index 0"
            ("p_counter_loop", 0)
            (Template.exact_of "%i% = 0")
            [];
          Constr.containment ~id:"poly_bound"
            ~desc:"The loop must stop before the array length"
            ~ok:"The loop stops before the array length"
            ~fail:"Stop the loop strictly before the array length"
            ("p_counter_loop", 1)
            (Template.regex_of {|%i% < .+\.length|})
            [];
          Constr.containment ~id:"poly_term"
            ~desc:"Each term must be coefficient times running power"
            ~ok:"Each term is coefficient times the running power"
            ~fail:"Accumulate %k%[%i%] times the running power"
            ("p_poly_accum", 2)
            (Template.regex_of
               {|(%r8% \+= %k%\[%i%\] \* %w8%|%r8% = %r8% \+ %k%\[%i%\] \* %w8%)|})
            [ "p_param_decl"; "p_counter_loop" ];
          Constr.containment ~id:"poly_power_step"
            ~desc:"The running power must be multiplied by the point"
            ~ok:"The running power is multiplied by the point"
            ~fail:"Multiply the running power by the evaluation point"
            ("p_poly_accum", 3)
            (Template.regex_of {|(%w8% \*= %k%|%w8% = %w8% \* %k%)|})
            [ "p_param_decl" ];
        ];
    }
  in
  {
    gen = Jfeed_gen.A_mitx.polynomials;
    grading =
      {
        Grader.a_id = "mitx-polynomials";
        a_title = Jfeed_gen.A_mitx.polynomials.Jfeed_gen.Spec.title;
        a_methods = [ q ];
        enforce_headers = false;
      };
    suite =
      {
        Jfeed_ftest.Runner.entry = "polynomials";
        max_steps = 100_000;
        cases =
          [
            {
              label = "constant";
              args = [ int_array [ 3 ]; V.Vint 5 ];
              files = [];
            };
            {
              label = "linear";
              args = [ int_array [ 1; 2 ]; V.Vint 10 ];
              files = [];
            };
            {
              label = "quad";
              args = [ int_array [ 2; 0; 1 ]; V.Vint 3 ];
              files = [];
            };
            {
              label = "ones";
              args = [ int_array [ 1; 1; 1; 1 ]; V.Vint 2 ];
              files = [];
            };
            { label = "empty"; args = [ int_array []; V.Vint 4 ]; files = [] };
          ];
      };
  }

(* ------------------------------------------------------------------ *)
(* rit-all-g-medals and rit-medals-by-ath                              *)

let olympics_records = Jfeed_ftest.Data.olympics_curated
let olympics_file = Jfeed_ftest.Data.olympics_file olympics_records
let olympics_fs = [ ("summer_olympics.txt", olympics_file) ]

(* Residue-pinning constraints shared by the two RIT assignments. *)
let rit_residue_constraints name =
  [
    Constr.containment
      ~id:(name ^ "_first_name_at_1")
      ~desc:"The first name must be read at record position 1"
      ~ok:"A string field is read at record position 1"
      ~fail:"Read the first name at record position 1" ("p_read_str_field", 0)
      (Template.exact_of "%ru% % 5 == 1")
      [];
    Constr.containment
      ~id:(name ^ "_last_name_at_2")
      ~desc:"The last name must be read at record position 2"
      ~ok:"A string field is read at record position 2"
      ~fail:"Read the last name at record position 2" ("p_read_str_field", 0)
      (Template.exact_of "%ru% % 5 == 2")
      [];
    Constr.containment
      ~id:(name ^ "_separator_at_0")
      ~desc:"The record separator must be read at record position 0"
      ~ok:"A string field is read at record position 0"
      ~fail:"Read the record separator at record position 0"
      ("p_read_str_field", 0)
      (Template.exact_of "%ru% % 5 == 0")
      [];
    Constr.containment
      ~id:(name ^ "_medal_at_3")
      ~desc:"The medal type must be read at record position 3"
      ~ok:"An integer field is read at record position 3"
      ~fail:"Read the medal type at record position 3" ("p_read_int_field", 0)
      (Template.exact_of "%ru% % 5 == 3")
      [];
    Constr.containment
      ~id:(name ^ "_year_at_4")
      ~desc:"The year must be read at record position 4"
      ~ok:"An integer field is read at record position 4"
      ~fail:"Read the year at record position 4" ("p_read_int_field", 0)
      (Template.exact_of "%ru% % 5 == 4")
      [];
  ]

let rit_q ~name ~extra_constraints =
  let open Patterns in
  {
    Grader.q_name = name;
    q_patterns =
      [
        (p_param_decl, 1);
        (p_scanner_loop, 1);
        (p_close_scanner, 1);
        (p_read_str_field, 3);
        (p_read_int_field, 2);
        (p_record_guard, 1);
        (p_cond_accum_add, 1);
        (p_print_var, 1);
        (p_double_update, 0);
      ];
    q_variants = [];
    q_constraints = rit_residue_constraints name @ extra_constraints;
  }

let rit_gold =
  {
    gen = Jfeed_gen.A_rit.all_g_medals;
    grading =
      {
        Grader.a_id = "rit-all-g-medals";
        a_title = Jfeed_gen.A_rit.all_g_medals.Jfeed_gen.Spec.title;
        a_methods =
          [
            rit_q ~name:"countGoldMedals"
              ~extra_constraints:
                [
                  Constr.containment ~id:"gold_guard_at_4"
                    ~desc:"The count must happen at record position 4"
                    ~ok:"You count right after reading the year"
                    ~fail:"Count at record position 4, once per record"
                    ("p_record_guard", 0)
                    (Template.regex_of {|.*%gu% % 5 == 4.*|})
                    [];
                  Constr.containment ~id:"gold_medal_code"
                    ~desc:"Gold medals have code 1"
                    ~ok:"You test the medal type against 1 (gold)"
                    ~fail:"Gold medals have code 1 — test the medal type \
                           against 1" ("p_record_guard", 0)
                    (Template.regex_of {|.*%fv% == 1.*|})
                    [ "p_read_int_field" ];
                ];
          ];
        enforce_headers = false;
      };
    suite =
      {
        Jfeed_ftest.Runner.entry = "countGoldMedals";
        max_steps = 200_000;
        cases =
          List.map
            (fun year ->
              {
                Jfeed_ftest.Runner.label = string_of_int year;
                args = [ V.Vint year ];
                files = olympics_fs;
              })
            [ 2000; 2008; 2016 ];
      };
  }

let rit_ath =
  {
    gen = Jfeed_gen.A_rit.medals_by_ath;
    grading =
      {
        Grader.a_id = "rit-medals-by-ath";
        a_title = Jfeed_gen.A_rit.medals_by_ath.Jfeed_gen.Spec.title;
        a_methods =
          [
            {
              (rit_q ~name:"countMedals"
                 ~extra_constraints:
                   [
                     Constr.containment ~id:"ath_guard_residue"
                       ~desc:
                         "The count must happen after both names are read"
                       ~ok:"You count after both names of the record are read"
                       ~fail:
                         "Count only after both names of the record have \
                          been read" ("p_record_guard", 0)
                       (Template.regex_of {|.*%gu% % 5 == (0|2).*|})
                       [];
                     Constr.containment ~id:"ath_name_match"
                       ~desc:"The names must be compared with equals"
                       ~ok:"You compare the names with .equals"
                       ~fail:
                         "Compare the athlete names with .equals, not =="
                       ("p_record_guard", 0)
                       (Template.regex_of
                          {|.*(%fv%\.equals\(%k%\)|%k%\.equals\(%fv%\)).*|})
                       [ "p_read_str_field"; "p_param_decl" ];
                   ])
              with
              q_patterns =
                (let q =
                   rit_q ~name:"countMedals" ~extra_constraints:[]
                 in
                 List.map
                   (fun (p, t) ->
                     if p.Pattern.id = "p_param_decl" then (p, 2) else (p, t))
                   q.Grader.q_patterns);
            };
          ];
        enforce_headers = false;
      };
    suite =
      {
        Jfeed_ftest.Runner.entry = "countMedals";
        max_steps = 200_000;
        cases =
          List.map
            (fun (first, last) ->
              {
                Jfeed_ftest.Runner.label = first ^ "-" ^ last;
                args = [ V.Vstr first; V.Vstr last ];
                files = olympics_fs;
              })
            [ ("Usain", "Bolt"); ("Michael", "Phelps"); ("Simone", "Biles") ];
      };
  }

let all =
  [ assignment1; esc_p1v1; esc_p2v1; esc_p2v2; esc_p3v1; esc_p4v1; esc_p3v2;
    esc_p4v2; mitx_derivatives; mitx_polynomials; rit_gold; rit_ath ]

let find id =
  List.find_opt (fun b -> b.grading.Grader.a_id = id) all

(* Pre-compile every shipped pattern — primaries and variants alike —
   into its match plan at bundle load, so on the main domain
   [Plan.of_pattern] on the grading path is a memo lookup, never a
   compile. *)
let () =
  List.iter
    (fun b ->
      List.iter
        (fun (q : Grader.method_spec) ->
          List.iter
            (fun (p, _) -> ignore (Plan.of_pattern p))
            q.Grader.q_patterns;
          List.iter
            (fun (_, vs) -> List.iter (fun p -> ignore (Plan.of_pattern p)) vs)
            q.Grader.q_variants)
        b.grading.Grader.a_methods)
    all

(* ------------------------------------------------------------------ *)
(* KB revision fingerprint.

   A stable digest of everything grading-relevant in the knowledge base:
   every bundle's id, expected methods, patterns (node templates, types,
   edges, feedback texts, occurrence counts), variants, constraints, and
   the header-enforcement flag.  The serving tier's result cache keys on
   it, so outcomes cached by a binary with one knowledge base are never
   served by a binary with another — editing any pattern invalidates the
   whole cache, which is exactly the safe granularity for a compiled-in
   KB. *)

let revision =
  let dump_template buf tag (t : Template.t) =
    Buffer.add_string buf tag;
    Buffer.add_string buf (Template.source t);
    Buffer.add_char buf '\x00'
  in
  let dump_pattern buf (p : Pattern.t) =
    Buffer.add_string buf p.Pattern.id;
    Buffer.add_char buf '\x00';
    Buffer.add_string buf p.Pattern.description;
    Buffer.add_char buf '\x00';
    Array.iter
      (fun (n : Pattern.pnode) ->
        Buffer.add_string buf
          (match n.Pattern.pn_type with
          | None -> "*"
          | Some ty -> E.string_of_node_type ty);
        dump_template buf "r:" n.Pattern.exact;
        Option.iter (dump_template buf "r^:") n.Pattern.approx;
        Buffer.add_string buf (Option.value ~default:"" n.Pattern.fb_correct);
        Buffer.add_char buf '\x00';
        Buffer.add_string buf
          (Option.value ~default:"" n.Pattern.fb_incorrect);
        Buffer.add_char buf '\x00')
      p.Pattern.nodes;
    List.iter
      (fun (u, v, ty) ->
        Buffer.add_string buf
          (Printf.sprintf "%d>%d:%s;" u v (E.string_of_edge_type ty)))
      p.Pattern.edges;
    Buffer.add_string buf p.Pattern.fb_present;
    Buffer.add_char buf '\x00';
    Buffer.add_string buf p.Pattern.fb_missing;
    Buffer.add_char buf '\x00'
  in
  let dump_constr buf (c : Constr.t) =
    Buffer.add_string buf c.Constr.c_id;
    Buffer.add_char buf '\x00';
    Buffer.add_string buf c.Constr.description;
    Buffer.add_char buf '\x00';
    (match c.Constr.kind with
    | Constr.Equality { pi; ui; pj; uj } ->
        Buffer.add_string buf (Printf.sprintf "eq:%s.%d=%s.%d" pi ui pj uj)
    | Constr.Edge_exists { pi; ui; pj; uj; edge } ->
        Buffer.add_string buf
          (Printf.sprintf "edge:%s.%d>%s.%d:%s" pi ui pj uj
             (E.string_of_edge_type edge))
    | Constr.Containment { main; u; template; support } ->
        Buffer.add_string buf
          (Printf.sprintf "contain:%s.%d:%s:%s" main u
             (Template.source template)
             (String.concat "," support)));
    Buffer.add_string buf c.Constr.fb_ok;
    Buffer.add_char buf '\x00';
    Buffer.add_string buf c.Constr.fb_fail;
    Buffer.add_char buf '\x00'
  in
  lazy
    (let buf = Buffer.create 65536 in
     List.iter
       (fun b ->
         Buffer.add_string buf b.grading.Grader.a_id;
         Buffer.add_char buf '\x00';
         Buffer.add_string buf b.grading.Grader.a_title;
         Buffer.add_char buf '\x00';
         Buffer.add_string buf
           (if b.grading.Grader.enforce_headers then "h1" else "h0");
         List.iter
           (fun (q : Grader.method_spec) ->
             Buffer.add_string buf q.Grader.q_name;
             Buffer.add_char buf '\x00';
             List.iter
               (fun (p, t) ->
                 Buffer.add_string buf (Printf.sprintf "t=%d:" t);
                 dump_pattern buf p)
               q.Grader.q_patterns;
             List.iter
               (fun (primary, variants) ->
                 Buffer.add_string buf ("variants-of:" ^ primary);
                 List.iter (dump_pattern buf) variants)
               q.Grader.q_variants;
             List.iter (dump_constr buf) q.Grader.q_constraints)
           b.grading.Grader.a_methods)
       all;
     Digest.to_hex (Digest.string (Buffer.contents buf)))

let revision () = Lazy.force revision
