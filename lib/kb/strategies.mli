(** Algorithmic-strategy enforcement (paper §VI-C "Structural
    requirements" / §VII): named sets of extra constraints layered on an
    assignment's grading specification. *)

type t = {
  s_id : string;
  s_title : string;
  applies_to : string;  (** assignment id *)
  extra : (string * Jfeed_core.Constr.t list) list;
      (** expected method → constraints *)
}

val apply : t -> Jfeed_core.Grader.spec -> Jfeed_core.Grader.spec

val assignment1_single_loop : t
(** Both parity accesses must sit under the same loop and index — the
    paper's "only one single loop in our Assignment 1". *)

val search_canonical_lookahead : assignment:string -> driver:string -> t
(** The search loop must test [helper(n + 1) <= k] literally. *)

val all : t list
val find : string -> t option
