(** Algorithmic-strategy enforcement (paper §VI-C "Structural
    requirements" and §VII: "we will predefine certain combinations of
    patterns and constraints to ensure specific algorithmic strategies to
    solve assignments").

    A strategy is a named set of extra constraints layered on top of an
    assignment's grading specification.  Sketch cannot express these at
    all and CLARA can only approximate them by curating reference
    solutions; here they are first-class: [apply] returns a new spec and
    grading proceeds unchanged. *)

open Jfeed_core
open Jfeed_exprmatch

type t = {
  s_id : string;
  s_title : string;
  applies_to : string;  (** assignment id *)
  extra : (string * Constr.t list) list;  (** expected method → constraints *)
}

let apply (strategy : t) (spec : Grader.spec) : Grader.spec =
  {
    spec with
    Grader.a_methods =
      List.map
        (fun (q : Grader.method_spec) ->
          match List.assoc_opt q.Grader.q_name strategy.extra with
          | None -> q
          | Some cs ->
              { q with Grader.q_constraints = q.Grader.q_constraints @ cs })
        spec.Grader.a_methods;
  }

(* ------------------------------------------------------------------ *)

(** Assignment 1 with a single traversal: both parity accesses must sit
    under the *same* loop — their bound conditions and index
    initializations must be the very same graph nodes.  (The paper's
    example: "only one single loop in our Assignment 1".) *)
let assignment1_single_loop =
  {
    s_id = "assignment1-single-loop";
    s_title = "Assignment 1 must use one loop for both parities";
    applies_to = "assignment1";
    extra =
      [
        ( "assignment1",
          [
            Constr.equality ~id:"strat_same_bound"
              ~desc:"Both parity accesses must share the same loop"
              ~ok:"One loop drives both parity accesses"
              ~fail:"Use a single loop for both parities"
              ("p_odd_access", 3) ("p_even_access", 3);
            Constr.equality ~id:"strat_same_index_init"
              ~desc:"Both parity accesses must share the same index"
              ~ok:"One index drives both parity accesses"
              ~fail:"Use a single index variable for both parities"
              ("p_odd_access", 1) ("p_even_access", 1);
          ] );
      ];
  }

(** The search assignments must use the canonical one-step-lookahead
    condition spelled with the helper on the left. *)
let search_canonical_lookahead ~assignment ~driver =
  {
    s_id = assignment ^ "-canonical-lookahead";
    s_title = "The search loop must test helper(n + 1) <= k literally";
    applies_to = assignment;
    extra =
      [
        ( driver,
          [
            Constr.containment
              ~id:(assignment ^ "_strat_lookahead")
              ~desc:"The search condition must be helper(n + 1) <= k"
              ~ok:"The search condition is in the canonical form"
              ~fail:"Write the search condition as helper(%n% + 1) <= %k%"
              ("p_search_while", 1)
              (Template.regex_of
                 ({|[A-Za-z_$][A-Za-z0-9_$]*\(%n% \+ 1\) <= %k%|}))
              [];
          ] );
      ];
  }

let all =
  [
    assignment1_single_loop;
    search_canonical_lookahead ~assignment:"esc-LAB-3-P1-V1" ~driver:"lab3p1";
    search_canonical_lookahead ~assignment:"esc-LAB-3-P2-V1" ~driver:"lab3p2";
  ]

let find id = List.find_opt (fun s -> s.s_id = id) all
