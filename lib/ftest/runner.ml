(** Functional testing of submissions (the paper's column T / discrepancy
    baseline).

    A suite is a set of input cases for an assignment's entry method.
    Expected outputs are produced by running the *reference solution*
    through the same interpreter; a submission passes when its stdout
    matches the expected output exactly on every case.  The comparison is
    deliberately order-sensitive — that is what makes print-order variants
    show up as discrepancies in the paper (§VI-B, Assignment 1). *)

open Jfeed_java
open Jfeed_interp

type case = {
  label : string;
  args : Value.t list;
  files : (string * string) list;
}

type suite = { entry : string; cases : case list; max_steps : int }

type verdict =
  | Pass
  | Fail of { case : string; reason : string }

let run_case ?budget suite prog (c : case) =
  (* One [interp] span per executed test case; the reference runs that
     produce expected outputs trace the same way, nested under whatever
     stage invoked them. *)
  let tr = Jfeed_trace.Trace.current () in
  Jfeed_trace.Trace.span tr "interp" (fun () ->
      let out =
        Interp.run ?budget
          ~config:{ Interp.files = c.files; max_steps = suite.max_steps }
          prog ~entry:suite.entry ~args:c.args
      in
      if Jfeed_trace.Trace.enabled tr then begin
        Jfeed_trace.Trace.add_attr tr "case" c.label;
        Jfeed_trace.Trace.add_attr tr "steps" (string_of_int out.Interp.steps)
      end;
      out)

(** Outputs of the reference solution, one per case.  Raises
    [Invalid_argument] if the reference itself fails — a harness bug, not
    a grading outcome. *)
let expected_outputs suite (reference : Ast.program) =
  List.map
    (fun c ->
      let out = run_case suite reference c in
      match out.Interp.error with
      | None -> out.Interp.stdout
      | Some e ->
          invalid_arg
            (Printf.sprintf "reference solution failed on %s: %s" c.label e))
    suite.cases

let run ?budget suite ~expected (prog : Ast.program) =
  let rec go cases expects =
    match (cases, expects) with
    | [], [] -> Pass
    | c :: cs, want :: ws -> (
        let out = run_case ?budget suite prog c in
        match out.Interp.error with
        | Some e -> Fail { case = c.label; reason = "error: " ^ e }
        | None ->
            if out.Interp.stdout = want then go cs ws
            else
              Fail
                {
                  case = c.label;
                  reason =
                    Printf.sprintf "expected %S, got %S" want out.Interp.stdout;
                })
    | _ ->
        (* A malformed test spec (wrong number of expected outputs) is a
           suite bug, but it must not crash a grading batch — report it
           as a failing verdict instead of raising. *)
        Fail
          {
            case = "<suite>";
            reason =
              Printf.sprintf
                "expected-output count mismatch: %d cases, %d expected outputs"
                (List.length suite.cases)
                (List.length expected);
          }
  in
  go suite.cases expected

let passes ?budget suite ~expected prog = run ?budget suite ~expected prog = Pass

type report = {
  rep_total : int;
  rep_ran : int;
  rep_passed : int;
  rep_failures : (string * string) list;
}

let report ?budget ?(early_exit = false) suite ~expected prog =
  let total = List.length suite.cases in
  let finish ran passed fails =
    { rep_total = total; rep_ran = ran; rep_passed = passed;
      rep_failures = List.rev fails }
  in
  let rec go cases expects ran passed fails =
    match (cases, expects) with
    | [], [] -> finish ran passed fails
    | c :: cs, want :: ws -> (
        let out = run_case ?budget suite prog c in
        let failed reason =
          let fails = (c.label, reason) :: fails in
          if early_exit then finish (ran + 1) passed fails
          else go cs ws (ran + 1) passed fails
        in
        match out.Interp.error with
        | Some e -> failed ("error: " ^ e)
        | None ->
            if out.Interp.stdout = want then go cs ws (ran + 1) (passed + 1) fails
            else
              failed
                (Printf.sprintf "expected %S, got %S" want out.Interp.stdout))
    | _ ->
        (* Same totality rule as [run]: a malformed suite is a failing
           entry on the pseudo-case ["<suite>"], never an exception. *)
        finish ran passed
          (( "<suite>",
             Printf.sprintf
               "expected-output count mismatch: %d cases, %d expected outputs"
               (List.length suite.cases)
               (List.length expected) )
          :: fails)
  in
  go suite.cases expected 0 0 []

let screen ?budget suite ~expected prog =
  (report ?budget ~early_exit:true suite ~expected prog).rep_failures = []
