(** Synthetic test data for the functional suites.

    The RIT assignments read a whitespace-separated file of Summer
    Olympics medal records — five tokens per record: first name, last
    name, medal type (1 gold / 2 silver / 3 bronze), year, and a record
    separator token [";"].  The generator is a small deterministic LCG so
    every run of the harness sees the same data. *)

let first_names =
  [| "Usain"; "Michael"; "Simone"; "Katie"; "Carl"; "Allyson"; "Mark"; "Nadia" |]

let last_names =
  [| "Bolt"; "Phelps"; "Biles"; "Ledecky"; "Lewis"; "Felix"; "Spitz"; "Comaneci" |]

let years = [| 2000; 2004; 2008; 2012; 2016 |]

type record = {
  first : string;
  last : string;
  medal : int;  (** 1 gold, 2 silver, 3 bronze *)
  year : int;
}

let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound

let olympics_records ~n ~seed =
  let next = lcg seed in
  List.init n (fun _ ->
      {
        first = first_names.(next (Array.length first_names));
        last = last_names.(next (Array.length last_names));
        medal = 1 + next 3;
        year = years.(next (Array.length years));
      })

let olympics_file records =
  String.concat ""
    (List.map
       (fun r ->
         Printf.sprintf "%s %s %d %d ;\n" r.first r.last r.medal r.year)
       records)

(** A hand-crafted dataset with the adversarial properties the RIT
    functional tests need: every test athlete has medals; the same first
    name appears with different last names (and vice versa), so matching
    on one name only — or against a *stale* field from the previous
    record — produces a different count; every test year has gold medals
    and a different number of silver/bronze ones. *)
let olympics_curated =
  [
    { first = "Usain"; last = "Bolt"; medal = 1; year = 2008 };
    { first = "Michael"; last = "Phelps"; medal = 1; year = 2008 };
    { first = "Usain"; last = "Bolt"; medal = 1; year = 2012 };
    { first = "Simone"; last = "Biles"; medal = 1; year = 2016 };
    { first = "Usain"; last = "Phelps"; medal = 2; year = 2016 };
    { first = "Michael"; last = "Phelps"; medal = 1; year = 2012 };
    { first = "Katie"; last = "Ledecky"; medal = 1; year = 2016 };
    { first = "Usain"; last = "Bolt"; medal = 2; year = 2016 };
    { first = "Simone"; last = "Biles"; medal = 2; year = 2016 };
    { first = "Carl"; last = "Phelps"; medal = 3; year = 2000 };
    { first = "Katie"; last = "Biles"; medal = 3; year = 2012 };
    { first = "Michael"; last = "Spitz"; medal = 2; year = 2004 };
  ]

(** Oracle helpers used by unit tests to validate the reference
    solutions. *)
let gold_medals_in_year records year =
  List.length (List.filter (fun r -> r.medal = 1 && r.year = year) records)

let medals_by_athlete records first last =
  List.length
    (List.filter (fun r -> r.first = first && r.last = last) records)
