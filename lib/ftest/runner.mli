(** Functional testing of submissions (the paper's column T / the
    discrepancy baseline of column D).

    A suite is a set of input cases for an assignment's entry method.
    Expected outputs are produced by running the *reference solution*
    through the same interpreter; a submission passes when its stdout
    matches the expected output exactly on every case.  The comparison is
    deliberately order-sensitive — that is what makes print-order variants
    show up as discrepancies in the paper (§VI-B, Assignment 1). *)

type case = {
  label : string;
  args : Jfeed_interp.Value.t list;
  files : (string * string) list;  (** virtual file system for the case *)
}

type suite = { entry : string; cases : case list; max_steps : int }

type verdict = Pass | Fail of { case : string; reason : string }

val run_case :
  ?budget:Jfeed_budget.Budget.t ->
  suite ->
  Jfeed_java.Ast.program ->
  case ->
  Jfeed_interp.Interp.outcome
(** [?budget] is the shared grading fuel pool, spent by the interpreter
    one unit per execution step ({!Jfeed_interp.Interp.run}). *)

val expected_outputs : suite -> Jfeed_java.Ast.program -> string list
(** Outputs of the reference solution, one per case.  Raises
    [Invalid_argument] if the reference itself fails — a harness bug, not
    a grading outcome. *)

val run :
  ?budget:Jfeed_budget.Budget.t ->
  suite ->
  expected:string list ->
  Jfeed_java.Ast.program ->
  verdict
(** Stops at the first failing case.  Total: a malformed suite (the
    [expected] list does not line up with the cases) yields a [Fail]
    verdict on the pseudo-case ["<suite>"] instead of raising, so a bad
    test spec cannot crash a grading batch. *)

val passes :
  ?budget:Jfeed_budget.Budget.t ->
  suite ->
  expected:string list ->
  Jfeed_java.Ast.program ->
  bool

type report = {
  rep_total : int;  (** cases in the suite *)
  rep_ran : int;  (** cases actually executed *)
  rep_passed : int;
  rep_failures : (string * string) list;
      (** (case label, reason), in run order; the pseudo-case
          ["<suite>"] reports a malformed expected-output list *)
}

val report :
  ?budget:Jfeed_budget.Budget.t ->
  ?early_exit:bool ->
  suite ->
  expected:string list ->
  Jfeed_java.Ast.program ->
  report
(** Run the suite and account for every case.  By default all cases run
    and every failure is collected; [~early_exit:true] stops at the
    first failing case ([rep_ran < rep_total] then tells how far it
    got) — the cheap screening mode of the repair search, where one
    failure already disqualifies a candidate.  On a program that passes
    every case the two modes return identical reports.  Total like
    {!run}: a malformed suite yields a ["<suite>"] failure entry, never
    an exception. *)

val screen :
  ?budget:Jfeed_budget.Budget.t ->
  suite ->
  expected:string list ->
  Jfeed_java.Ast.program ->
  bool
(** [rep_failures = []] of an early-exit {!report}: does the program
    pass the whole suite, stopping at the first failure?  Equivalent to
    {!passes} but named for its role as the repair search's candidate
    screen. *)
