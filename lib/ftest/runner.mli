(** Functional testing of submissions (the paper's column T / the
    discrepancy baseline of column D).

    A suite is a set of input cases for an assignment's entry method.
    Expected outputs are produced by running the *reference solution*
    through the same interpreter; a submission passes when its stdout
    matches the expected output exactly on every case.  The comparison is
    deliberately order-sensitive — that is what makes print-order variants
    show up as discrepancies in the paper (§VI-B, Assignment 1). *)

type case = {
  label : string;
  args : Jfeed_interp.Value.t list;
  files : (string * string) list;  (** virtual file system for the case *)
}

type suite = { entry : string; cases : case list; max_steps : int }

type verdict = Pass | Fail of { case : string; reason : string }

val run_case :
  suite -> Jfeed_java.Ast.program -> case -> Jfeed_interp.Interp.outcome

val expected_outputs : suite -> Jfeed_java.Ast.program -> string list
(** Outputs of the reference solution, one per case.  Raises
    [Invalid_argument] if the reference itself fails — a harness bug, not
    a grading outcome. *)

val run : suite -> expected:string list -> Jfeed_java.Ast.program -> verdict
(** Stops at the first failing case. *)

val passes : suite -> expected:string list -> Jfeed_java.Ast.program -> bool
