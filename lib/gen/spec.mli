(** Synthetic submission spaces (paper §VI-A).

    Following Singh et al.'s hypothesis that student errors are
    predictable, each assignment is a reference solution plus a set of
    *choice points*; every choice point offers the correct fragment and
    alternative fragments (common student errors, benign stylistic
    variations, or the discrepancy-inducing variants from the paper's
    §VI-B discussion).  The search space of submissions is the cartesian
    product of the choices — its size is Table I's column S — and a
    submission is addressed by a single index in [0, size) through
    mixed-radix decoding. *)

(** What an option does to the two assessment channels, *assuming every
    other choice point is at a [Good] option*:
    - [Good]: functional tests pass and the pattern feedback is positive —
      includes benign stylistic variants the knowledge base accepts;
    - [Bad]: a detected error — both channels agree it is wrong;
    - [Disc_neg_feedback]: functionally correct but the patterns flag it
      (the paper's "i = 1", log10 digit counting, Fig. 7 duplicated
      residues);
    - [Disc_pos_feedback]: functionally failing but the patterns accept
      it (the paper's print-order submissions). *)
type quality = Good | Bad | Disc_neg_feedback | Disc_pos_feedback

type choice = {
  tag : string;  (** e.g. ["odd-init"] *)
  labels : string array;  (** one label per option, for reporting *)
  quality : quality array;
}

type t = {
  id : string;  (** assignment id as in Table I *)
  title : string;
  entry : string;  (** entry method for functional testing *)
  expected_methods : string list;  (** Q of Algorithm 2 *)
  choices : choice array;
  render : int array -> string;  (** choice vector → Java source *)
}

val choice : string -> (string * quality) list -> choice

val size : t -> int
(** Table I's column S: the product of the choice arities. *)

val decode : t -> int -> int array
(** Mixed-radix decoding: index → one option per choice point.  Raises
    [Invalid_argument] outside [0, size). *)

val encode : t -> int array -> int
(** Left inverse of {!decode}. *)

val source_of_index : t -> int -> string

val all_good : t -> int array -> bool
(** Every choice point at a [Good] option. *)

val chosen : t -> int array -> (string * string * quality) list
(** (tag, label, quality) per choice point. *)

val deviations : t -> int array -> (string * string * quality) list
(** The non-[Good] options selected by this vector — used by the
    benchmark's discrepancy-cause breakdown. *)

val reference : t -> string
(** The canonical reference solution: option 0 of every choice point. *)

val sample_indices : t -> n:int -> seed:int -> int list
(** Deterministic LCG sample of [n] indices; returns the whole space when
    [n >= size]. *)

val validate : t -> string list
(** Structural checks (option 0 must be [Good], arities match, labels
    distinct); empty = well-formed. *)
