(** mitx-derivatives and mitx-polynomials (MIT intro course, adapted).
    S(derivatives) = 2^6 · 3^2 = 576; S(polynomials) = 2^8 · 3 = 768. *)

open Spec

(* ------------------------------------------------------------------ *)
(* mitx-derivatives: print the derivative coefficients p[i] * i         *)

let deriv_names = [| ("p", "i"); ("poly", "j"); ("coefs", "n") |]

let deriv_choices =
  [|
    choice "start" [ ("1", Good); ("0", Bad) ];
    choice "bound" [ ("<", Good); ("<=", Bad) ];
    choice "term" [ ("p[i] * i", Good); ("p[i] * (i - 1)", Bad) ];
    choice "incr" [ ("i++", Good); ("i--", Bad) ];
    choice "loop-form" [ ("for", Good); ("while", Good) ];
    choice "temp-name" [ ("t", Good); ("d", Good) ];
    choice "names"
      (Array.to_list (Array.map (fun (p, _) -> (p, Good)) deriv_names));
    choice "print-style"
      [ ("temp-then-print", Good); ("direct-print", Disc_neg_feedback);
        ("labeled-print", Bad) ];
  |]

let deriv_render d =
  let p, i = deriv_names.(d.(6)) in
  let t = [| "t"; "d" |].(d.(5)) in
  let start = [| "1"; "0" |].(d.(0)) in
  let bound = [| "<"; "<=" |].(d.(1)) in
  let term =
    if d.(2) = 0 then Printf.sprintf "%s[%s] * %s" p i i
    else Printf.sprintf "%s[%s] * (%s - 1)" p i i
  in
  let incr = if d.(3) = 0 then i ^ "++" else i ^ "--" in
  let body =
    match d.(7) with
    | 0 ->
        Printf.sprintf "        int %s = %s;\n        System.out.println(%s);"
          t term t
    | 1 -> Printf.sprintf "        System.out.println(%s);" term
    | _ ->
        Printf.sprintf
          "        int %s = %s;\n        System.out.println(\"d: \" + %s);" t
          term t
  in
  let loop =
    if d.(4) = 0 then
      Printf.sprintf "    for (int %s = %s; %s %s %s.length; %s) {\n%s\n    }"
        i start i bound p incr body
    else
      Printf.sprintf
        "    int %s = %s;\n    while (%s %s %s.length) {\n%s\n        %s;\n    }"
        i start i bound p body incr
  in
  Printf.sprintf "void derivatives(int[] %s) {\n%s\n}\n" p loop

let derivatives =
  {
    id = "mitx-derivatives";
    title = "Print the derivative coefficients of a polynomial";
    entry = "derivatives";
    expected_methods = [ "derivatives" ];
    choices = deriv_choices;
    render = deriv_render;
  }

(* ------------------------------------------------------------------ *)
(* mitx-polynomials: evaluate a polynomial at a point                   *)

let poly_names =
  [| ("p", "x", "r", "pw", "i"); ("poly", "at", "res", "power", "j");
     ("coefs", "v", "value", "pot", "n") |]

let poly_choices =
  [|
    choice "r-init" [ ("0", Good); ("1", Bad) ];
    choice "pw-init" [ ("1", Good); ("0", Bad) ];
    choice "start" [ ("0", Good); ("1", Bad) ];
    choice "bound" [ ("<", Good); ("<=", Bad) ];
    choice "term" [ ("p[i] * pw", Good); ("p[i]", Bad) ];
    choice "pw-step" [ ("pw *= x", Good); ("pw += x", Bad) ];
    choice "print-style" [ ("println", Good); ("print-newline", Good) ];
    choice "accum-style" [ ("+=", Good); ("long-form", Good) ];
    choice "names"
      (Array.to_list (Array.map (fun (p, _, _, _, _) -> (p, Good)) poly_names));
  |]

let poly_render d =
  let p, x, r, pw, i = poly_names.(d.(8)) in
  let r_init = [| "0"; "1" |].(d.(0)) in
  let pw_init = [| "1"; "0" |].(d.(1)) in
  let start = [| "0"; "1" |].(d.(2)) in
  let bound = [| "<"; "<=" |].(d.(3)) in
  let term =
    if d.(4) = 0 then Printf.sprintf "%s[%s] * %s" p i pw
    else Printf.sprintf "%s[%s]" p i
  in
  let accum =
    if d.(7) = 0 then Printf.sprintf "%s += %s;" r term
    else Printf.sprintf "%s = %s + %s;" r r term
  in
  let step =
    if d.(5) = 0 then Printf.sprintf "%s *= %s;" pw x
    else Printf.sprintf "%s += %s;" pw x
  in
  let print =
    if d.(6) = 0 then Printf.sprintf "    System.out.println(%s);" r
    else Printf.sprintf "    System.out.print(%s + \"\\n\");" r
  in
  Printf.sprintf
    "void polynomials(int[] %s, int %s) {\n\
    \    int %s = %s;\n\
    \    int %s = %s;\n\
    \    for (int %s = %s; %s %s %s.length; %s++) {\n\
    \        %s\n\
    \        %s\n\
    \    }\n\
     %s\n\
     }\n"
    p x r r_init pw pw_init i start i bound p i accum step print

let polynomials =
  {
    id = "mitx-polynomials";
    title = "Evaluate a polynomial at a point";
    entry = "polynomials";
    expected_methods = [ "polynomials" ];
    choices = poly_choices;
    render = poly_render;
  }
