(** Assignment 1 (paper §III): add odd positions, multiply even positions
    of an input array, print both.  S = 2^10 · 5^4 = 640,000.

    Discrepancy-inducing options mirror §VI-B:
    - output order swapped (functional fails, patterns are order-independent);
    - two-loop structure with the odd loop starting at [i = 1]
      (functionally fine, the odd-access pattern wants 0);
    - even positions accessed by stepping the index by two with no guard
      (functionally fine, the even-guard pattern is missing);
    - bounding the loop with a hoisted [n = a.length] (functionally fine,
      outside the bound template — the paper's "pattern variability"). *)

open Spec

let names = [| ("odd", "even", "i"); ("o", "e", "i"); ("x", "y", "j");
               ("sumOdd", "prodEven", "k"); ("s", "p", "n") |]

let choices =
  [|
    choice "odd-init" [ ("0", Good); ("1", Bad) ];
    choice "even-init" [ ("1", Good); ("0", Bad) ];
    choice "loop-start" [ ("0", Good); ("1", Bad) ];
    choice "loop-bound" [ ("<", Good); ("<=", Bad) ];
    choice "odd-guard" [ ("% 2 == 1", Good); ("% 2 == 0", Bad) ];
    choice "even-guard" [ ("% 2 == 0", Good); ("% 2 == 1", Bad) ];
    choice "odd-accum-style" [ ("+=", Good); ("long-form", Good) ];
    choice "even-accum-op" [ ("*=", Good); ("+=", Bad) ];
    choice "index-update" [ ("i++", Good); ("i--", Bad) ];
    choice "loop-form" [ ("for", Good); ("while", Good) ];
    choice "names"
      (Array.to_list (Array.map (fun (o, _, _) -> (o, Good)) names));
    choice "output"
      [
        ("println-both", Good);
        ("only-odd", Bad);
        ("odd-twice", Bad);
        ("swapped-order", Disc_pos_feedback);
        ("print-newline", Good);
      ];
    choice "structure"
      [
        ("single-loop", Good);
        ("two-loops", Good);
        ("two-loops-odd-init-1", Disc_neg_feedback);
        ("even-step-2", Disc_neg_feedback);
        ("ifs-swapped", Good);
      ];
    choice "decls"
      [
        ("separate", Good);
        ("combined", Good);
        ("decl-then-assign", Good);
        ("even-first", Good);
        ("hoisted-length", Disc_neg_feedback);
      ];
  |]

let render d =
  let o, e, i = names.(d.(10)) in
  let odd_init = [| "0"; "1" |].(d.(0)) in
  let even_init = [| "1"; "0" |].(d.(1)) in
  let start = [| "0"; "1" |].(d.(2)) in
  let bound_op = [| "<"; "<=" |].(d.(3)) in
  let odd_guard = Printf.sprintf "%s %s" i [| "% 2 == 1"; "% 2 == 0" |].(d.(4)) in
  let even_guard = Printf.sprintf "%s %s" i [| "% 2 == 0"; "% 2 == 1" |].(d.(5)) in
  let odd_accum =
    if d.(6) = 0 then Printf.sprintf "%s += a[%s];" o i
    else Printf.sprintf "%s = %s + a[%s];" o o i
  in
  let even_accum =
    if d.(7) = 0 then Printf.sprintf "%s *= a[%s];" e i
    else Printf.sprintf "%s += a[%s];" e i
  in
  let update = if d.(8) = 0 then i ^ "++" else i ^ "--" in
  let bound_rhs = if d.(13) = 4 then "n" else "a.length" in
  let cond lo = Printf.sprintf "%s %s %s" lo bound_op bound_rhs in
  (* One loop with the given init expression and body lines. *)
  let loop ?(init = start) ?(upd = update) body =
    if d.(9) = 0 then
      Printf.sprintf "    for (int %s = %s; %s; %s) {\n%s\n    }" i init
        (cond i) upd
        (String.concat "\n" (List.map (fun l -> "    " ^ l) body))
    else
      Printf.sprintf
        "    int %s = %s;\n    while (%s) {\n%s\n        %s;\n    }" i init
        (cond i)
        (String.concat "\n" (List.map (fun l -> "    " ^ l) body))
        upd
  in
  let if_odd = [ Printf.sprintf "    if (%s)" odd_guard; "        " ^ odd_accum ] in
  let if_even = [ Printf.sprintf "    if (%s)" even_guard; "        " ^ even_accum ] in
  let decls =
    match d.(13) with
    | 0 -> Printf.sprintf "    int %s = %s;\n    int %s = %s;" o odd_init e even_init
    | 1 -> Printf.sprintf "    int %s = %s, %s = %s;" o odd_init e even_init
    | 2 ->
        Printf.sprintf "    int %s;\n    %s = %s;\n    int %s;\n    %s = %s;" o
          o odd_init e e even_init
    | 3 -> Printf.sprintf "    int %s = %s;\n    int %s = %s;" e even_init o odd_init
    | _ ->
        Printf.sprintf "    int %s = %s;\n    int %s = %s;\n    int n = a.length;"
          o odd_init e even_init
  in
  let body =
    match d.(12) with
    | 0 -> loop (if_odd @ if_even)
    | 1 -> loop if_odd ^ "\n" ^ loop if_even
    | 2 -> loop ~init:"1" if_odd ^ "\n" ^ loop if_even
    | 3 ->
        loop if_odd ^ "\n"
        ^ Printf.sprintf "    for (int %s = %s; %s; %s += 2) {\n        %s\n    }"
            i start (cond i) i even_accum
    | _ -> loop (if_even @ if_odd)
  in
  let println v = Printf.sprintf "    System.out.println(%s);" v in
  let output =
    match d.(11) with
    | 0 -> println o ^ "\n" ^ println e
    | 1 -> println o
    | 2 -> println o ^ "\n" ^ println o
    | 3 -> println e ^ "\n" ^ println o
    | _ ->
        Printf.sprintf
          "    System.out.print(%s + \"\\n\");\n    System.out.print(%s + \"\\n\");"
          o e
  in
  Printf.sprintf "void assignment1(int[] a) {\n%s\n%s\n%s\n}\n" decls body output

let spec =
  {
    id = "assignment1";
    title = "Add odd positions and multiply even positions of an array";
    entry = "assignment1";
    expected_methods = [ "assignment1" ];
    choices;
    render;
  }
