(** esc-LAB-3-P1-V1 and esc-LAB-3-P2-V1: print the number n such that
    f(n) ≤ k < f(n+1) for f = factorial / Fibonacci.  Both submissions
    contain two methods (a helper and the driver), which exercises
    Algorithm 2's combination matching.

    S(P1-V1) = 2^14 · 27 = 442,368; S(P2-V1) = 2^18 · 27 = 7,077,888.

    Discrepancy options follow §VI-B: the driver counter initialized to 1
    (functionally identical for k ≥ 1), the search condition written
    flipped ([k >= f(n + 1)]), a do-while driver, and a helper written in
    an unexpected but correct style (downward factorial, recursive
    Fibonacci) — all land outside the patterns while passing tests. *)

open Spec

(* ------------------------------------------------------------------ *)
(* P1-V1: factorial                                                    *)

let p1_names = [| ("n", "f", "i", "k"); ("count", "result", "j", "num");
                  ("a", "p", "t", "m") |]

let p1_choices =
  [|
    choice "f-init" [ ("1", Good); ("0", Bad) ];
    choice "f-start" [ ("1", Good); ("0", Bad) ];
    choice "f-bound" [ ("<=", Good); ("<", Bad) ];
    choice "f-incr" [ ("i++", Good); ("i--", Bad) ];
    choice "f-accum-style" [ ("*=", Good); ("long-form", Good) ];
    choice "f-loop-form" [ ("for", Good); ("while", Good) ];
    choice "helper-name" [ ("factorial", Good); ("fact", Good) ];
    choice "n-init" [ ("0", Good); ("1", Disc_neg_feedback) ];
    choice "cond-arg" [ ("n + 1", Good); ("n", Bad) ];
    choice "cond-op" [ ("<=", Good); ("<", Bad) ];
    choice "cond-flip" [ ("normal", Good); ("flipped", Disc_neg_feedback) ];
    choice "n-incr" [ ("n++", Good); ("n += 2", Bad) ];
    choice "print-style" [ ("println", Good); ("print-newline", Good) ];
    choice "print-value" [ ("n", Good); ("n + 1", Bad) ];
    choice "names"
      (Array.to_list (Array.map (fun (n, _, _, _) -> (n, Good)) p1_names));
    choice "search-structure"
      [ ("while", Good); ("for-empty", Good); ("do-while", Disc_neg_feedback) ];
    choice "helper-structure"
      [ ("upward", Good); ("guarded", Good); ("downward", Disc_neg_feedback) ];
  |]

(* Names are (driver counter, helper accumulator, helper index, driver
   parameter). *)
let render_factorial ~helper ~f ~i ~fp d_init d_start d_bound d_incr d_accum
    d_form d_helper_structure =
  let init = [| "1"; "0" |].(d_init) in
  let start = [| "1"; "0" |].(d_start) in
  let bound = [| "<="; "<" |].(d_bound) in
  let incr = if d_incr = 0 then i ^ "++" else i ^ "--" in
  let accum =
    if d_accum = 0 then Printf.sprintf "%s *= %s;" f i
    else Printf.sprintf "%s = %s * %s;" f f i
  in
  if d_helper_structure = 2 then
    (* Downward: correct but outside the knowledge base's patterns. *)
    Printf.sprintf
      "int %s(int %s) {\n\
      \    int %s = 1;\n\
      \    int %s = %s;\n\
      \    while (%s >= 1) {\n\
      \        %s *= %s;\n\
      \        %s--;\n\
      \    }\n\
      \    return %s;\n\
       }" helper fp f i fp i f i i f
  else begin
    (* An initial early-out guard is a correct variant the patterns still
       accept (the loop shape is unchanged). *)
    let guard =
      if d_helper_structure = 1 then
        Printf.sprintf "    if (%s <= 1)\n        return 1;\n" fp
      else ""
    in
    let loop =
      if d_form = 0 then
        Printf.sprintf
          "    for (int %s = %s; %s %s %s; %s) {\n        %s\n    }" i start
          i bound fp incr accum
      else
        Printf.sprintf
          "    int %s = %s;\n    while (%s %s %s) {\n        %s\n        \
           %s;\n    }" i start i bound fp accum incr
    in
    Printf.sprintf "int %s(int %s) {\n%s    int %s = %s;\n%s\n    return %s;\n}"
      helper fp guard f init loop f
  end

let render_search ?incr_text ~entry ~helper ~n ~k d_n_init d_cond_arg
    d_cond_op d_cond_flip d_n_incr d_print_style d_print_value d_structure =
  let n_init = [| "0"; "1" |].(d_n_init) in
  let arg = if d_cond_arg = 0 then n ^ " + 1" else n in
  let op = [| "<="; "<" |].(d_cond_op) in
  let cond =
    if d_cond_flip = 0 then Printf.sprintf "%s(%s) %s %s" helper arg op k
    else
      Printf.sprintf "%s %s %s(%s)" k (if op = "<=" then ">=" else ">") helper
        arg
  in
  let incr =
    match incr_text with
    | Some t -> t
    | None -> if d_n_incr = 0 then n ^ "++" else n ^ " += 2"
  in
  let printed = if d_print_value = 0 then n else n ^ " + 1" in
  let print =
    if d_print_style = 0 then
      Printf.sprintf "    System.out.println(%s);" printed
    else Printf.sprintf "    System.out.print(%s + \"\\n\");" printed
  in
  let body =
    match d_structure with
    | 0 ->
        Printf.sprintf
          "    int %s = %s;\n    while (%s) {\n        %s;\n    }" n n_init
          cond incr
    | 1 ->
        Printf.sprintf "    int %s = %s;\n    for (; %s; %s) {\n    }" n
          n_init cond incr
    | _ ->
        Printf.sprintf
          "    int %s = %s;\n    do {\n        %s;\n    } while (%s);" n
          n_init incr cond
  in
  Printf.sprintf "void %s(int %s) {\n%s\n%s\n}" entry k body print

let p1_render d =
  let n, f, i, k = p1_names.(d.(14)) in
  let helper = [| "factorial"; "fact" |].(d.(6)) in
  let fp = "x" in
  let helper_src =
    render_factorial ~helper ~f ~i ~fp d.(0) d.(1) d.(2) d.(3) d.(4) d.(5)
      d.(16)
  in
  let main_src =
    render_search ~entry:"lab3p1" ~helper ~n ~k d.(7) d.(8) d.(9) d.(10)
      d.(11) d.(12) d.(13) d.(15)
  in
  helper_src ^ "\n\n" ^ main_src ^ "\n"

let p1v1 =
  {
    id = "esc-LAB-3-P1-V1";
    title = "Print n such that n! <= k < (n+1)!";
    entry = "lab3p1";
    expected_methods = [ "lab3p1"; "factorial" ];
    choices = p1_choices;
    render = p1_render;
  }

(* ------------------------------------------------------------------ *)
(* P2-V1: Fibonacci                                                    *)

let p2_names = [| ("n", "a", "b", "i", "k"); ("count", "prev", "cur", "j", "num");
                  ("res", "p", "q", "t", "m") |]

let p2_choices =
  [|
    choice "a-init" [ ("1", Good); ("0", Bad) ];
    choice "b-init" [ ("1", Good); ("2", Bad) ];
    choice "fi-init" [ ("1", Good); ("0", Bad) ];
    choice "fi-bound" [ ("<", Good); ("<=", Bad) ];
    choice "fi-incr" [ ("i++", Good); ("i--", Bad) ];
    choice "step-order" [ ("sum-first", Good); ("shift-first", Bad) ];
    choice "return" [ ("a", Good); ("b", Bad) ];
    choice "fib-name" [ ("fib", Good); ("fibonacci", Good) ];
    choice "n-init" [ ("0", Good); ("1", Disc_neg_feedback) ];
    choice "cond-arg" [ ("n + 1", Good); ("n", Bad) ];
    choice "cond-op" [ ("<=", Good); ("<", Bad) ];
    choice "cond-flip" [ ("normal", Good); ("flipped", Disc_neg_feedback) ];
    choice "n-incr" [ ("n++", Good); ("n = n + 1", Good) ];
    choice "print-style" [ ("println", Good); ("print-newline", Good) ];
    choice "print-value" [ ("n", Good); ("n + 1", Bad) ];
    choice "seeds-decl" [ ("separate", Good); ("combined", Good) ];
    choice "temp-name" [ ("c", Good); ("next", Good) ];
    choice "fib-param" [ ("n", Good); ("x", Good) ];
    choice "names"
      (Array.to_list (Array.map (fun (n, _, _, _, _) -> (n, Good)) p2_names));
    choice "search-structure"
      [ ("while", Good); ("for-empty", Good); ("do-while", Disc_neg_feedback) ];
    choice "fib-structure"
      [ ("iter-while", Good); ("iter-for", Good); ("recursive", Disc_neg_feedback) ];
  |]

let render_fib ~helper ~a ~b ~i ~fp ~temp d_a d_b d_i d_bound d_incr d_order
    d_return d_seeds d_structure =
  let a_init = [| "1"; "0" |].(d_a) in
  let b_init = [| "1"; "2" |].(d_b) in
  let i_init = [| "1"; "0" |].(d_i) in
  let bound = [| "<"; "<=" |].(d_bound) in
  let incr = if d_incr = 0 then i ^ "++" else i ^ "--" in
  let returned = if d_return = 0 then a else b in
  let seeds =
    if d_seeds = 0 then
      Printf.sprintf "    int %s = %s;\n    int %s = %s;" a a_init b b_init
    else Printf.sprintf "    int %s = %s, %s = %s;" a a_init b b_init
  in
  let step indent =
    if d_order = 0 then
      Printf.sprintf
        "%sint %s = %s + %s;\n%s%s = %s;\n%s%s = %s;" indent temp a b indent a
        b indent b temp
    else
      Printf.sprintf "%s%s = %s;\n%s%s = %s;\n%s%s = %s + %s;" indent a b
        indent b temp indent temp a b
  in
  let pre_temp =
    if d_order = 0 then "" else Printf.sprintf "    int %s = 0;\n" temp
  in
  match d_structure with
  | 2 ->
      (* Recursive: correct but outside the iterative patterns. *)
      Printf.sprintf
        "int %s(int %s) {\n\
        \    if (%s <= 2)\n\
        \        return 1;\n\
        \    return %s(%s - 1) + %s(%s - 2);\n\
         }" helper fp fp helper fp helper fp
  | 1 ->
      Printf.sprintf
        "int %s(int %s) {\n%s\n%s    for (int %s = %s; %s %s %s; %s) {\n%s\n\
        \    }\n\
        \    return %s;\n\
         }" helper fp seeds pre_temp i i_init i bound fp incr (step "        ")
        returned
  | _ ->
      Printf.sprintf
        "int %s(int %s) {\n%s\n%s    int %s = %s;\n    while (%s %s %s) {\n%s\n\
        \        %s;\n\
        \    }\n\
        \    return %s;\n\
         }" helper fp seeds pre_temp i i_init i bound fp (step "        ")
        incr returned

let p2_render d =
  let n, a, b, i, k = p2_names.(d.(18)) in
  let helper = [| "fib"; "fibonacci" |].(d.(7)) in
  let temp = [| "c"; "next" |].(d.(16)) in
  let fp = [| "n"; "x" |].(d.(17)) in
  (* The helper parameter must not collide with its locals. *)
  let fp = if fp = a || fp = b || fp = i then "x2" else fp in
  let helper_src =
    render_fib ~helper ~a ~b ~i ~fp ~temp d.(0) d.(1) d.(2) d.(3) d.(4) d.(5)
      d.(6) d.(15) d.(20)
  in
  let incr_text =
    if d.(12) = 0 then n ^ "++" else Printf.sprintf "%s = %s + 1" n n
  in
  let main_src =
    render_search ~incr_text ~entry:"lab3p2" ~helper ~n ~k d.(8) d.(9) d.(10)
      d.(11) 0 d.(13) d.(14) d.(19)
  in
  helper_src ^ "\n\n" ^ main_src ^ "\n"

let p2v1 =
  {
    id = "esc-LAB-3-P2-V1";
    title = "Print n such that fib(n) <= k < fib(n+1)";
    entry = "lab3p2";
    expected_methods = [ "lab3p2"; "fib" ];
    choices = p2_choices;
    render = p2_render;
  }
