(** Semantics-preserving source mutators.  See mutate.mli. *)

open Jfeed_java

(* Deterministic LCG (same constants as Spec.sample_indices') so mutants
   are reproducible from (seed, source) alone. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else !state mod bound

let alpha_rename ~seed src =
  let prog = Parser.parse_program src in
  (* Fresh names keyed by seed and discovery index: distinct indices get
     distinct names, and renaming is total, so no mutant name can
     collide with a surviving original.  Lower-case first letter keeps
     them out of the class-name namespace. *)
  let renamed =
    Normalize.alpha_rename_with
      (fun i -> Printf.sprintf "m%d_%d" (seed mod 1000) i)
      prog
  in
  Pretty.program renamed

let whitespace ~seed src =
  let rand = lcg seed in
  let lines = String.split_on_char '\n' src in
  let buf = Buffer.create (String.length src + 64) in
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_char buf '\n';
      (* Blank line injected before some lines... *)
      if String.trim line <> "" && rand 4 = 0 then Buffer.add_char buf '\n';
      (* ...extra indentation on some... *)
      if rand 3 = 0 then Buffer.add_string buf (String.make (1 + rand 4) ' ');
      Buffer.add_string buf line;
      (* ...and trailing spaces on others.  Leading/trailing whitespace
         and blank lines never split or join tokens, so the token stream
         is untouched. *)
      if rand 3 = 0 then Buffer.add_string buf (String.make (1 + rand 3) ' '))
    lines;
  Buffer.contents buf

let rename_and_reflow ~seed src = whitespace ~seed (alpha_rename ~seed src)
