(** Semantics-preserving source mutators.  See mutate.mli. *)

open Jfeed_java

(* Deterministic LCG (same constants as Spec.sample_indices') so mutants
   are reproducible from (seed, source) alone. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else !state mod bound

let alpha_rename ~seed src =
  let prog = Parser.parse_program src in
  (* Fresh names keyed by seed and discovery index: distinct indices get
     distinct names, and renaming is total, so no mutant name can
     collide with a surviving original.  Lower-case first letter keeps
     them out of the class-name namespace. *)
  let renamed =
    Normalize.alpha_rename_with
      (fun i -> Printf.sprintf "m%d_%d" (seed mod 1000) i)
      prog
  in
  Pretty.program renamed

let whitespace ~seed src =
  let rand = lcg seed in
  let lines = String.split_on_char '\n' src in
  let buf = Buffer.create (String.length src + 64) in
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_char buf '\n';
      (* Blank line injected before some lines... *)
      if String.trim line <> "" && rand 4 = 0 then Buffer.add_char buf '\n';
      (* ...extra indentation on some... *)
      if rand 3 = 0 then Buffer.add_string buf (String.make (1 + rand 4) ' ');
      Buffer.add_string buf line;
      (* ...and trailing spaces on others.  Leading/trailing whitespace
         and blank lines never split or join tokens, so the token stream
         is untouched. *)
      if rand 3 = 0 then Buffer.add_string buf (String.make (1 + rand 3) ' '))
    lines;
  Buffer.contents buf

let rename_and_reflow ~seed src = whitespace ~seed (alpha_rename ~seed src)

(* ------------------------------------------------------------------ *)
(* Fault injection: single semantics-breaking edits from the shared
   error-model catalog (Edit).  Same vocabulary the repair search
   enumerates, so every injected fault has an exact inverse among the
   repair candidates. *)

type fault = {
  f_kind : Edit.kind;
  f_meth : string;
  f_pos : Srcmap.pos option;
  f_before : string;
  f_after : string;
}

let fault_of_site (s : Edit.site) =
  {
    f_kind = s.Edit.s_kind;
    f_meth = s.Edit.s_meth;
    f_pos = s.Edit.s_pos;
    f_before = s.Edit.s_before;
    f_after = s.Edit.s_after;
  }

let fault_sites src =
  let prog, srcmap = Parser.parse_program_located src in
  List.map fault_of_site (Edit.enumerate ~srcmap prog)

let fault_inject ~seed src =
  let prog, srcmap = Parser.parse_program_located src in
  match Edit.enumerate ~srcmap prog with
  | [] -> None
  | sites ->
      let rand = lcg seed in
      let site = List.nth sites (rand (List.length sites)) in
      Some (Pretty.program (Edit.apply prog site), fault_of_site site)
