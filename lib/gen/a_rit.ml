(** rit-all-g-medals and rit-medals-by-ath: count medals in a
    whitespace-separated file of Summer-Olympics records (five tokens per
    record: first name, last name, medal type, year, separator), read with
    [java.util.Scanner] and residue conditions [i % 5 == r].

    S(all-g-medals) = 2^8 · 3^7 = 559,872;
    S(medals-by-ath) = 2^10 · 3^6 = 746,496.

    The per-field residue choices are where the paper's Fig. 7 class of
    discrepancies lives: single wrong residues scramble the token cursor
    and fail the tests (and the residue-pinning constraints), but specific
    *combinations* of duplicated residues advance the cursor consistently
    and are functionally correct while semantically wrong — they surface
    as discrepancies during the full-space/sampled sweeps rather than in
    one-flip form. *)

open Spec

(* names: fn ln p y e i medals s *)
let gold_names =
  [| ("fn", "ln", "p", "y", "e", "i", "medals", "s");
     ("first", "last", "med", "yr", "sep", "idx", "golds", "sc") |]

let gold_choices =
  [|
    choice "i-init" [ ("1", Good); ("0", Bad) ];
    choice "medals-init" [ ("0", Good); ("1", Bad) ];
    choice "count-style" [ ("+= 1", Good); ("++", Good) ];
    choice "loop-form" [ ("while", Good); ("for", Good) ];
    choice "print-style" [ ("println", Good); ("print-newline", Good) ];
    choice "names"
      (Array.to_list (Array.map (fun (f, _, _, _, _, _, _, _) -> (f, Good)) gold_names));
    choice "cond-order" [ ("residue-first", Good); ("residue-last", Good) ];
    choice "i-update" [ ("once", Good); ("twice", Bad) ];
    choice "fn-residue" [ ("1", Good); ("2", Disc_neg_feedback); ("4", Bad) ];
    choice "ln-residue" [ ("2", Good); ("3", Disc_neg_feedback); ("1", Disc_neg_feedback) ];
    choice "p-residue" [ ("3", Good); ("4", Disc_neg_feedback); ("1", Bad) ];
    choice "y-residue" [ ("4", Good); ("0", Bad); ("3", Disc_neg_feedback) ];
    choice "e-residue" [ ("0", Good); ("1", Bad); ("3", Bad) ];
    choice "guard-residue" [ ("4", Good); ("3", Bad); ("0", Disc_neg_feedback) ];
    choice "medal-code" [ ("1", Good); ("2", Bad); ("3", Bad) ];
  |]

let residue choices d idx = [| choices.(0); choices.(1); choices.(2) |].(d.(idx))

let render_scan ~entry ~params ~decls ~guard ~names ~medals_init d_i_init
    d_count_style d_loop_form d_print_style d_i_update d_residues =
  let _, _, _, _, _, i, medals, s = names in
  let fn, ln, p, y, e, _, _, _ = names in
  let r_fn, r_ln, r_p, r_y, r_e = d_residues in
  let i_init = [| "1"; "0" |].(d_i_init) in
  let bump =
    if d_count_style = 0 then Printf.sprintf "%s += 1;" medals
    else Printf.sprintf "%s++;" medals
  in
  let reads =
    String.concat "\n"
      [
        Printf.sprintf "        if (%s %% 5 == %s)\n            %s = %s.next();" i r_fn fn s;
        Printf.sprintf "        if (%s %% 5 == %s)\n            %s = %s.next();" i r_ln ln s;
        Printf.sprintf "        if (%s %% 5 == %s)\n            %s = %s.nextInt();" i r_p p s;
        Printf.sprintf "        if (%s %% 5 == %s)\n            %s = %s.nextInt();" i r_y y s;
        Printf.sprintf "        if (%s %% 5 == %s)\n            %s = %s.next();" i r_e e s;
      ]
  in
  let count_block =
    Printf.sprintf "        if (%s)\n            %s" guard bump
  in
  let i_step =
    if d_i_update = 0 then Printf.sprintf "        %s++;" i
    else Printf.sprintf "        %s++;\n        %s++;" i i
  in
  let loop =
    if d_loop_form = 0 then
      Printf.sprintf
        "    while (%s.hasNext()) {\n%s\n%s\n%s\n    }" s reads count_block
        i_step
    else
      Printf.sprintf
        "    for (; %s.hasNext(); ) {\n%s\n%s\n%s\n    }" s reads count_block
        i_step
  in
  let print =
    if d_print_style = 0 then
      Printf.sprintf "    System.out.println(%s);" medals
    else Printf.sprintf "    System.out.print(%s + \"\\n\");" medals
  in
  Printf.sprintf
    "void %s(%s) {\n\
    \    int %s = %s, %s = %s;\n\
     %s\
    \    Scanner %s = new Scanner(new File(\"summer_olympics.txt\"));\n\
     %s\n\
    \    %s.close();\n\
     %s\n\
     }\n"
    entry params i i_init medals medals_init decls s loop s print

let gold_render d =
  let names = gold_names.(d.(5)) in
  let fn, ln, p, y, e, i, _, _ = names in
  let medals_init = [| "0"; "1" |].(d.(1)) in
  let decls =
    Printf.sprintf "    String %s = \"\", %s = \"\", %s = \"\";\n    int %s = 0, %s = 0;\n"
      fn ln e p y
  in
  (* medals-init is folded into the declaration line via a rewrite below. *)
  let guard_parts =
    [
      Printf.sprintf "%s %% 5 == %s" i (residue [| "4"; "3"; "0" |] d 13);
      Printf.sprintf "%s == year" y;
      Printf.sprintf "%s == %s" p (residue [| "1"; "2"; "3" |] d 14);
    ]
  in
  let guard =
    match d.(6) with
    | 0 -> String.concat " && " guard_parts
    | _ -> (
        match guard_parts with
        | [ a; b; c ] -> String.concat " && " [ b; c; a ]
        | _ -> assert false)
  in
  let src =
    render_scan ~entry:"countGoldMedals" ~params:"int year" ~decls ~guard
      ~names ~medals_init d.(0) d.(2) d.(3) d.(4) d.(7)
      ( residue [| "1"; "2"; "4" |] d 8,
        residue [| "2"; "3"; "1" |] d 9,
        residue [| "3"; "4"; "1" |] d 10,
        residue [| "4"; "0"; "3" |] d 11,
        residue [| "0"; "1"; "3" |] d 12 )
  in
  src

let all_g_medals =
  {
    id = "rit-all-g-medals";
    title = "Count the gold medals awarded in a given year";
    entry = "countGoldMedals";
    expected_methods = [ "countGoldMedals" ];
    choices = gold_choices;
    render = gold_render;
  }

(* ------------------------------------------------------------------ *)
(* rit-medals-by-ath                                                   *)

(* The athlete assignment's method parameters are [first]/[last], so its
   name sets must avoid them. *)
let ath_names =
  [| ("fn", "ln", "p", "y", "e", "i", "medals", "s");
     ("f", "l", "med", "yr", "sep", "idx", "cnt", "sc") |]

let ath_choices =
  [|
    choice "i-init" [ ("1", Good); ("0", Bad) ];
    choice "medals-init" [ ("0", Good); ("1", Bad) ];
    choice "count-style" [ ("+= 1", Good); ("++", Good) ];
    choice "loop-form" [ ("while", Good); ("for", Good) ];
    choice "print-style" [ ("println", Good); ("print-newline", Good) ];
    choice "names"
      (Array.to_list (Array.map (fun (f, _, _, _, _, _, _, _) -> (f, Good)) ath_names));
    choice "equals-order" [ ("field-first", Good); ("param-first", Good) ];
    choice "i-update" [ ("once", Good); ("twice", Bad) ];
    choice "compare-style" [ ("equals", Good); ("==", Bad) ];
    choice "guard-shape" [ ("conjunction", Good); ("nested-ifs", Disc_neg_feedback) ];
    choice "fn-residue" [ ("1", Good); ("2", Disc_neg_feedback); ("4", Bad) ];
    choice "ln-residue" [ ("2", Good); ("3", Disc_neg_feedback); ("1", Disc_neg_feedback) ];
    choice "p-residue" [ ("3", Good); ("4", Disc_neg_feedback); ("1", Bad) ];
    choice "y-residue"
      [ ("4", Good); ("0", Disc_neg_feedback); ("3", Disc_neg_feedback) ];
    choice "e-residue" [ ("0", Good); ("1", Bad); ("3", Bad) ];
    choice "guard-residue" [ ("0", Good); ("1", Bad); ("2", Good) ];
  |]

let ath_render d =
  let names = ath_names.(d.(5)) in
  let fn, ln, p, y, e, i, medals, _ = names in
  ignore medals;
  let medals_init = [| "0"; "1" |].(d.(1)) in
  let decls =
    Printf.sprintf "    String %s = \"\", %s = \"\", %s = \"\";\n    int %s = 0, %s = 0;\n"
      fn ln e p y
  in
  let name_test var param =
    match (d.(8), d.(6)) with
    | 0, 0 -> Printf.sprintf "%s.equals(%s)" var param
    | 0, _ -> Printf.sprintf "%s.equals(%s)" param var
    | _, _ -> Printf.sprintf "%s == %s" var param
  in
  let residue_test =
    Printf.sprintf "%s %% 5 == %s" i (residue [| "0"; "1"; "2" |] d 15)
  in
  let guard, nested =
    if d.(9) = 0 then
      ( String.concat " && "
          [ residue_test; name_test fn "first"; name_test ln "last" ],
        false )
    else (residue_test, true)
  in
  let src =
    render_scan ~entry:"countMedals" ~params:"String first, String last"
      ~decls ~guard ~names ~medals_init d.(0) d.(2) d.(3) d.(4) d.(7)
      ( residue [| "1"; "2"; "4" |] d 10,
        residue [| "2"; "3"; "1" |] d 11,
        residue [| "3"; "4"; "1" |] d 12,
        residue [| "4"; "0"; "3" |] d 13,
        residue [| "0"; "1"; "3" |] d 14 )
  in
  let src =
    if nested then
      (* Rewrite the count block into nested ifs. *)
      let bump =
        if d.(2) = 0 then Printf.sprintf "%s += 1;" medals
        else Printf.sprintf "%s++;" medals
      in
      let flat = Printf.sprintf "        if (%s)\n            %s" residue_test bump in
      let nested_block =
        Printf.sprintf
          "        if (%s)\n            if (%s)\n                if (%s)\n                    %s"
          residue_test (name_test fn "first") (name_test ln "last") bump
      in
      Str_util.replace_first ~pattern:flat ~by:nested_block src
    else src
  in
  src

let medals_by_ath =
  {
    id = "rit-medals-by-ath";
    title = "Count the medals awarded to a given athlete";
    entry = "countMedals";
    expected_methods = [ "countMedals" ];
    choices = ath_choices;
    render = ath_render;
  }
