(** Synthetic submission spaces (paper §VI-A).

    Following Singh et al.'s hypothesis that student errors are
    predictable, each assignment is a reference solution plus a set of
    *choice points*; every choice point offers the correct fragment and a
    number of alternative fragments (common student errors, benign
    stylistic variations, or deliberately discrepancy-inducing variants
    from the paper's §VI-B discussion).  The search space of submissions
    is the cartesian product of the choices — its size is the paper's
    column S — and a submission is addressed by a single index in
    [0, size) through mixed-radix decoding, which makes the space
    enumerable and uniformly samplable without materializing it. *)

(** What an option does to the two assessment channels, *assuming every
    other choice point is at a [Good] option*:
    - [Good]: functional tests pass and the pattern feedback is positive —
      includes benign stylistic variants the knowledge base accepts;
    - [Bad]: a detected error — functional tests fail and the feedback is
      negative (both channels agree);
    - [Disc_neg_feedback]: functionally correct but the patterns flag it —
      the paper's "i = 1 when accessing odd positions", log10 digit
      counting, duplicated-residue file reads (Fig. 7);
    - [Disc_pos_feedback]: functionally failing but the patterns accept
      it — the paper's print-order submissions. *)
type quality = Good | Bad | Disc_neg_feedback | Disc_pos_feedback

type choice = {
  tag : string;  (** e.g. "odd-init" *)
  labels : string array;  (** one label per option, for reporting *)
  quality : quality array;
}

type t = {
  id : string;  (** assignment id as in Table I *)
  title : string;
  entry : string;  (** entry method for functional testing *)
  expected_methods : string list;  (** Q of Algorithm 2 *)
  choices : choice array;
  render : int array -> string;  (** choice vector → Java source *)
}

let choice tag options =
  {
    tag;
    labels = Array.of_list (List.map fst options);
    quality = Array.of_list (List.map snd options);
  }

let size spec =
  Array.fold_left (fun acc c -> acc * Array.length c.labels) 1 spec.choices

(** Mixed-radix decoding: index → one option per choice point. *)
let decode spec index =
  if index < 0 || index >= size spec then
    invalid_arg
      (Printf.sprintf "Spec.decode: index %d out of range for %s" index spec.id);
  let n = Array.length spec.choices in
  let digits = Array.make n 0 in
  let rest = ref index in
  for i = n - 1 downto 0 do
    let arity = Array.length spec.choices.(i).labels in
    digits.(i) <- !rest mod arity;
    rest := !rest / arity
  done;
  digits

let encode spec digits =
  Array.to_list digits
  |> List.mapi (fun i d -> (i, d))
  |> List.fold_left
       (fun acc (i, d) -> (acc * Array.length spec.choices.(i).labels) + d)
       0

let source_of_index spec index = spec.render (decode spec index)

(** Every choice point at a [Good] option. *)
let all_good spec digits =
  Array.for_all2 (fun c d -> c.quality.(d) = Good) spec.choices digits

let chosen spec digits =
  Array.to_list
    (Array.map2
       (fun c d -> (c.tag, c.labels.(d), c.quality.(d)))
       spec.choices digits)

(** Non-[Good] options selected by this vector, for discrepancy
    explanation. *)
let deviations spec digits =
  List.filter (fun (_, _, q) -> q <> Good) (chosen spec digits)

(** The canonical reference solution: option 0 of every choice point. *)
let reference spec = spec.render (Array.make (Array.length spec.choices) 0)

(* Deterministic LCG sampling so benchmark runs are reproducible. *)
let sample_indices spec ~n ~seed =
  let total = size spec in
  if n >= total then List.init total Fun.id
  else begin
    let state = ref (((seed * 2654435761) + 1) land max_int) in
    let next () =
      state := ((!state * 0x5DEECE66D) + 0xB) land max_int;
      abs !state
    in
    List.init n (fun _ -> next () mod total)
  end

(** Validation used by the test-suite: option 0 of every choice must be
    [Good], arities must match, labels distinct within a choice. *)
let validate spec =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iter
    (fun c ->
      if Array.length c.labels = 0 then add "%s: choice %s empty" spec.id c.tag;
      if Array.length c.labels <> Array.length c.quality then
        add "%s: choice %s label/quality arity mismatch" spec.id c.tag;
      if Array.length c.quality > 0 && c.quality.(0) <> Good then
        add "%s: choice %s option 0 must be Good" spec.id c.tag;
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun l ->
          if Hashtbl.mem seen l then
            add "%s: choice %s duplicate label %s" spec.id c.tag l
          else Hashtbl.add seen l ())
        c.labels)
    spec.choices;
  List.rev !problems
