(** Counting assignments:
    - esc-LAB-3-P3-V2 — count the factorial numbers in [n, m];
      S = 2^16 · 9 = 589,824;
    - esc-LAB-3-P4-V2 — count the Fibonacci numbers in [n, m];
      S = 2^20 · 9 = 9,437,184.

    Both reuse the helper renderers of {!A_esc_search} and reproduce the
    paper's §VI-B discrepancies: the P3-V2 counting loop started at 0
    (double-counts 1 = 0! = 1!, failing the tests while the patterns stay
    silent — Disc_pos), and the P4-V2 counting loop started at 0
    (functionally harmless for n ≥ 2 but flagged by the start-at-1
    constraint — Disc_neg, the paper's 248 submissions). *)

open Spec

let counting_names = [| ("count", "i", "n", "m"); ("c", "j", "lo", "hi");
                        ("total", "t", "from", "upto") |]

(* The driver: count values of helper(i) that fall inside [n, m]. *)
let render_counting ~entry ~helper ~names d_count_init d_i_init d_outer_op
    d_guard_op d_incr_style d_i_incr d_print_style d_print_value d_guard_flip
    d_structure =
  let count, i, n, m = names in
  let count_init = [| "0"; "1" |].(d_count_init) in
  let i_init = [| "1"; "0" |].(d_i_init) in
  let outer_op = [| "<="; "<" |].(d_outer_op) in
  let guard =
    if d_guard_flip = 0 then
      Printf.sprintf "%s(%s) %s %s" helper i [| ">="; ">" |].(d_guard_op) n
    else
      Printf.sprintf "%s %s %s(%s)" n [| "<="; "<" |].(d_guard_op) helper i
  in
  let bump =
    if d_incr_style = 0 then Printf.sprintf "%s += 1;" count
    else Printf.sprintf "%s++;" count
  in
  let i_step = if d_i_incr = 0 then i ^ "++" else i ^ " += 2" in
  let printed = if d_print_value = 0 then count else count ^ " + 1" in
  let print =
    if d_print_style = 0 then
      Printf.sprintf "    System.out.println(%s);" printed
    else Printf.sprintf "    System.out.print(%s + \"\\n\");" printed
  in
  let body =
    match d_structure with
    | 3 ->
        (* Bounded-for over the raw range from zero (the paper's
           double-counting structure for factorials). *)
        Printf.sprintf
          "    for (int %s = 0; %s <= %s; %s++) {\n\
          \        if (%s(%s) >= %s && %s(%s) <= %s)\n\
          \            %s\n\
          \    }" i i m i helper i n helper i m bump
    | 1 ->
        (* for-form of the reference loop. *)
        Printf.sprintf
          "    for (int %s = %s; %s(%s) %s %s; %s) {\n\
          \        if (%s)\n\
          \            %s\n\
          \    }" i i_init helper i outer_op m i_step guard bump
    | 2 ->
        (* Break-style: correct but outside the counter-loop pattern. *)
        Printf.sprintf
          "    int %s = %s;\n\
          \    while (true) {\n\
          \        if (%s(%s) > %s)\n\
          \            break;\n\
          \        if (%s)\n\
          \            %s\n\
          \        %s;\n\
          \    }" i i_init helper i m guard bump i_step
    | _ ->
        Printf.sprintf
          "    int %s = %s;\n\
          \    while (%s(%s) %s %s) {\n\
          \        if (%s)\n\
          \            %s\n\
          \        %s;\n\
          \    }" i i_init helper i outer_op m guard bump i_step
  in
  Printf.sprintf "void %s(int %s, int %s) {\n    int %s = %s;\n%s\n%s\n}" entry
    n m count count_init body print

(* ------------------------------------------------------------------ *)
(* esc-LAB-3-P3-V2: factorial numbers in [n, m]                        *)

let p3v2_choices =
  [|
    choice "f-init" [ ("1", Good); ("0", Bad) ];
    choice "f-start" [ ("1", Good); ("0", Bad) ];
    choice "f-bound" [ ("<=", Good); ("<", Bad) ];
    choice "f-incr" [ ("i++", Good); ("i--", Bad) ];
    choice "f-accum-style" [ ("*=", Good); ("long-form", Good) ];
    choice "f-loop-form" [ ("for", Good); ("while", Good) ];
    choice "count-init" [ ("0", Good); ("1", Bad) ];
    choice "i-init" [ ("1", Good); ("0", Disc_pos_feedback) ];
    choice "outer-op" [ ("<=", Good); ("<", Bad) ];
    choice "guard-op" [ (">=", Good); (">", Bad) ];
    choice "count-incr" [ ("+= 1", Good); ("++", Good) ];
    choice "i-incr" [ ("i++", Good); ("i += 2", Bad) ];
    choice "print-style" [ ("println", Good); ("print-newline", Good) ];
    choice "print-value" [ ("count", Good); ("count + 1", Bad) ];
    choice "helper-name" [ ("factorial", Good); ("fact", Good) ];
    choice "guard-flip" [ ("normal", Good); ("flipped", Disc_neg_feedback) ];
    choice "names"
      (Array.to_list
         (Array.map (fun (c, _, _, _) -> (c, Good)) counting_names));
    choice "structure"
      [ ("while", Good); ("bounded-for", Disc_pos_feedback);
        ("break-style", Disc_neg_feedback) ];
  |]

let p3v2_render d =
  let names = counting_names.(d.(16)) in
  let helper = [| "factorial"; "fact" |].(d.(14)) in
  let helper_src =
    A_esc_search.render_factorial ~helper ~f:"f" ~i:"w" ~fp:"x" d.(0) d.(1)
      d.(2) d.(3) d.(4) d.(5) 0
  in
  let main_src =
    render_counting ~entry:"lab3p3v2" ~helper ~names d.(6) d.(7) d.(8) d.(9)
      d.(10) d.(11) d.(12) d.(13) d.(15)
      [| 0; 3; 2 |].(d.(17))
  in
  helper_src ^ "\n\n" ^ main_src ^ "\n"

let p3v2 =
  {
    id = "esc-LAB-3-P3-V2";
    title = "Count the factorial numbers in [n, m]";
    entry = "lab3p3v2";
    expected_methods = [ "lab3p3v2"; "factorial" ];
    choices = p3v2_choices;
    render = p3v2_render;
  }

(* ------------------------------------------------------------------ *)
(* esc-LAB-3-P4-V2: Fibonacci numbers in [n, m]                        *)

(* With counting ranges of n >= 2 (matching the paper's functionally
   correct 248 discrepancies), seed/shift variations of the helper change
   the Fibonacci *indexing* but not the set of values >= 2, so the
   functional tests cannot observe them — only the patterns flag them. *)
let p4v2_choices =
  [|
    choice "a-init" [ ("1", Good); ("0", Disc_neg_feedback) ];
    choice "b-init" [ ("1", Good); ("2", Disc_neg_feedback) ];
    choice "fi-init" [ ("1", Good); ("0", Disc_neg_feedback) ];
    choice "fi-bound" [ ("<", Good); ("<=", Disc_neg_feedback) ];
    choice "fi-incr" [ ("i++", Good); ("i--", Bad) ];
    choice "step-order" [ ("sum-first", Good); ("shift-first", Disc_neg_feedback) ];
    choice "return" [ ("a", Good); ("b", Disc_neg_feedback) ];
    choice "seeds-decl" [ ("separate", Good); ("combined", Good) ];
    choice "temp-name" [ ("c", Good); ("next", Good) ];
    choice "fib-param" [ ("n", Good); ("x", Good) ];
    choice "count-init" [ ("0", Good); ("1", Bad) ];
    choice "i-init" [ ("1", Good); ("0", Disc_neg_feedback) ];
    choice "outer-op" [ ("<=", Good); ("<", Bad) ];
    choice "guard-op" [ (">=", Good); (">", Bad) ];
    choice "count-incr" [ ("+= 1", Good); ("++", Good) ];
    choice "i-incr" [ ("i++", Good); ("i += 2", Bad) ];
    choice "print-style" [ ("println", Good); ("print-newline", Good) ];
    choice "print-value" [ ("count", Good); ("count + 1", Bad) ];
    choice "helper-name" [ ("fib", Good); ("fibonacci", Good) ];
    choice "guard-flip" [ ("normal", Good); ("flipped", Disc_neg_feedback) ];
    choice "names"
      (Array.to_list
         (Array.map (fun (c, _, _, _) -> (c, Good)) counting_names));
    choice "structure"
      [ ("while", Good); ("for-form", Good); ("break-style", Disc_neg_feedback) ];
  |]

let p4v2_render d =
  let names = counting_names.(d.(20)) in
  let helper = [| "fib"; "fibonacci" |].(d.(18)) in
  let fp = [| "n"; "x" |].(d.(9)) in
  let temp = [| "c"; "next" |].(d.(8)) in
  let helper_src =
    A_esc_search.render_fib ~helper ~a:"a" ~b:"b" ~i:"w" ~fp ~temp d.(0) d.(1)
      d.(2) d.(3) d.(4) d.(5) d.(6) d.(7) 0
  in
  let main_src =
    render_counting ~entry:"lab3p4v2" ~helper ~names d.(10) d.(11) d.(12)
      d.(13) d.(14) d.(15) d.(16) d.(17) d.(19)
      [| 0; 1; 2 |].(d.(21))
  in
  helper_src ^ "\n\n" ^ main_src ^ "\n"

let p4v2 =
  {
    id = "esc-LAB-3-P4-V2";
    title = "Count the Fibonacci numbers in [n, m]";
    entry = "lab3p4v2";
    expected_methods = [ "lab3p4v2"; "fib" ];
    choices = p4v2_choices;
    render = p4v2_render;
  }
