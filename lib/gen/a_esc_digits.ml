(** Digit-manipulation assignments:
    - esc-LAB-3-P2-V2 — special numbers (sum of cubes of digits equals the
      number); S = 2^4 · 3^2 = 144;
    - esc-LAB-3-P3-V1 — difference of a positive number and its reverse;
      S = 2^7 · 3^4 = 10,368;
    - esc-LAB-3-P4-V1 — palindrome check; S = 2^9 · 3^3 = 13,824.

    Discrepancy options follow §VI-B: the [⌊log10 k⌋ + 1] digit-count
    structure (the paper's one P3-V1/P4-V1 discrepancy cause), cube via
    [Math.pow], [Math.abs] instead of an if-negate, a flipped loop
    condition ([0 < n]), the digit extraction inlined into the reverse
    accumulation, and an inverted-polarity comparison with [else] (the
    paper's unsupported-else limitation).  The palindrome message swap is
    a genuine pattern blind spot (positive feedback, failing tests). *)

open Spec

(* Shared fragments ------------------------------------------------- *)

(* The digit-peeling loop over [n]: extract/accumulate/shrink under a
   condition; [accum] receives the digit expression. *)
let peel_loop ~structure ~cond_spelling ~n ~d ~extract_inline ~shrink accum =
  let cond =
    match cond_spelling with
    | 0 -> Printf.sprintf "%s > 0" n
    | 1 -> Printf.sprintf "%s != 0" n
    | _ -> Printf.sprintf "0 < %s" n
  in
  let extract, digit =
    if extract_inline then ("", Printf.sprintf "%s %% 10" n)
    else (Printf.sprintf "        int %s = %s %% 10;\n" d n, d)
  in
  let body = extract ^ "        " ^ accum digit ^ "\n" in
  match structure with
  | 1 ->
      (* for-loop with the shrink as the update *)
      Printf.sprintf "    for (; %s; %s) {\n%s    }" cond (shrink n) body
  | 2 ->
      (* log10 digit-count structure: functionally correct, outside the
         knowledge base. *)
      Printf.sprintf
        "    int len = (int) Math.log10(%s) + 1;\n\
        \    int w = 0;\n\
        \    while (w < len) {\n%s        %s;\n        w++;\n    }" n body
        (shrink n)
  | _ -> Printf.sprintf "    while (%s) {\n%s        %s;\n    }" cond body (shrink n)

(* ------------------------------------------------------------------ *)
(* esc-LAB-3-P2-V2: special numbers                                    *)

let p2v2_names = [| ("sum", "n", "d", "k"); ("s", "m", "t", "num");
                    ("total", "c", "digit", "x") |]

let p2v2_choices =
  [|
    choice "sum-init" [ ("0", Good); ("1", Bad) ];
    choice "digit-extract" [ ("% 10", Good); ("% 2", Bad) ];
    choice "shrink" [ ("/ 10", Good); ("- 10", Bad) ];
    choice "compare" [ ("sum == k", Good); ("sum == n", Bad) ];
    choice "cube-style"
      [ ("product", Good); ("math-pow", Disc_neg_feedback); ("square", Bad) ];
    choice "names"
      (Array.to_list (Array.map (fun (s, _, _, _) -> (s, Good)) p2v2_names));
  |]

let p2v2_render dg =
  let sum, n, d, k = p2v2_names.(dg.(5)) in
  let extract_mod = [| "10"; "2" |].(dg.(1)) in
  let shrink_op = [| "/ 10"; "- 10" |].(dg.(2)) in
  let compare_rhs = [| k; n |].(dg.(3)) in
  let cube v =
    match dg.(4) with
    | 0 -> Printf.sprintf "%s * %s * %s" v v v
    | 1 -> Printf.sprintf "(int) Math.pow(%s, 3)" v
    | _ -> Printf.sprintf "%s * %s" v v
  in
  let sum_init = [| "0"; "1" |].(dg.(0)) in
  Printf.sprintf
    "void lab3p2v2(int %s) {\n\
    \    int %s = %s;\n\
    \    int %s = %s;\n\
    \    while (%s > 0) {\n\
    \        int %s = %s %% %s;\n\
    \        %s += %s;\n\
    \        %s = %s %s;\n\
    \    }\n\
    \    if (%s == %s)\n\
    \        System.out.println(\"Special\");\n\
    \    else\n\
    \        System.out.println(\"Not special\");\n\
     }\n"
    k sum sum_init n k n d n extract_mod sum (cube d) n n shrink_op sum
    compare_rhs

let p2v2 =
  {
    id = "esc-LAB-3-P2-V2";
    title = "Is the number equal to the sum of the cubes of its digits?";
    entry = "lab3p2v2";
    expected_methods = [ "lab3p2v2" ];
    choices = p2v2_choices;
    render = p2v2_render;
  }

(* ------------------------------------------------------------------ *)
(* esc-LAB-3-P3-V1: difference with the reverse                        *)

let p3v1_names = [| ("rev", "n", "d", "k", "diff"); ("r", "m", "t", "num", "delta");
                    ("back", "c", "digit", "x", "gap") |]

let p3v1_choices =
  [|
    choice "rev-init" [ ("0", Good); ("1", Bad) ];
    choice "rev-step" [ ("digit", Good); ("whole-n", Bad) ];
    choice "shrink" [ ("/ 10", Good); ("- 10", Bad) ];
    choice "copy-style" [ ("copy", Good); ("destroy-param", Bad) ];
    choice "diff-order" [ ("k - rev", Good); ("rev - k", Good) ];
    choice "printed" [ ("diff", Good); ("rev", Bad) ];
    choice "decl-style" [ ("separate", Good); ("combined", Good) ];
    choice "abs-style"
      [ ("if-negate", Good); ("math-abs", Disc_neg_feedback); ("none", Bad) ];
    choice "cond-spelling"
      [ ("n > 0", Good); ("n != 0", Good); ("0 < n", Disc_neg_feedback) ];
    choice "structure"
      [ ("while", Good); ("for", Good); ("log10", Disc_neg_feedback) ];
    choice "names"
      (Array.to_list (Array.map (fun (r, _, _, _, _) -> (r, Good)) p3v1_names));
  |]

let p3v1_render dg =
  let rev, n, d, k, diff = p3v1_names.(dg.(10)) in
  let loop_var = if dg.(3) = 0 then n else k in
  let step digit =
    let rhs = if dg.(1) = 0 then digit else loop_var in
    Printf.sprintf "%s = %s * 10 + %s;" rev rev rhs
  in
  let shrink v =
    Printf.sprintf "%s = %s %s" v v (if dg.(2) = 0 then "/ 10" else "- 10")
  in
  let loop =
    peel_loop ~structure:dg.(9) ~cond_spelling:dg.(8) ~n:loop_var ~d
      ~extract_inline:false ~shrink step
  in
  let decls =
    let init = [| "0"; "1" |].(dg.(0)) in
    let copy =
      if dg.(3) = 0 then Printf.sprintf "    int %s = %s;\n" n k else ""
    in
    if dg.(6) = 0 then Printf.sprintf "    int %s = %s;\n%s" rev init copy
    else if dg.(3) = 0 then
      Printf.sprintf "    int %s = %s, %s = %s;\n" rev init n k
    else Printf.sprintf "    int %s = %s;\n" rev init
  in
  let diff_expr =
    if dg.(4) = 0 then Printf.sprintf "%s - %s" k rev
    else Printf.sprintf "%s - %s" rev k
  in
  let abs_block =
    match dg.(7) with
    | 0 ->
        Printf.sprintf
          "    int %s = %s;\n    if (%s < 0)\n        %s = -%s;\n" diff
          diff_expr diff diff diff
    | 1 -> Printf.sprintf "    int %s = Math.abs(%s);\n" diff diff_expr
    | _ -> Printf.sprintf "    int %s = %s;\n" diff diff_expr
  in
  let printed = if dg.(5) = 0 then diff else rev in
  Printf.sprintf "void lab3p3v1(int %s) {\n%s%s\n%s    System.out.println(%s);\n}\n"
    k decls loop abs_block printed

let p3v1 =
  {
    id = "esc-LAB-3-P3-V1";
    title = "Difference of a positive number and its reverse";
    entry = "lab3p3v1";
    expected_methods = [ "lab3p3v1" ];
    choices = p3v1_choices;
    render = p3v1_render;
  }

(* ------------------------------------------------------------------ *)
(* esc-LAB-3-P4-V1: palindrome                                         *)

let p4v1_names = [| ("rev", "n", "d", "k"); ("r", "m", "t", "num");
                    ("back", "c", "digit", "x") |]

let p4v1_choices =
  [|
    choice "rev-init" [ ("0", Good); ("1", Bad) ];
    choice "rev-step" [ ("digit", Good); ("whole-n", Bad) ];
    choice "shrink" [ ("/ 10", Good); ("- 10", Bad) ];
    choice "copy-style" [ ("copy", Good); ("destroy-param", Bad) ];
    choice "compare" [ ("rev == k", Good); ("rev == n", Bad) ];
    choice "messages" [ ("normal", Good); ("swapped", Disc_pos_feedback) ];
    choice "decl-style" [ ("separate", Good); ("combined", Good) ];
    choice "extract-style" [ ("named-digit", Good); ("inline", Disc_neg_feedback) ];
    choice "polarity" [ ("equals", Good); ("not-equals-else", Disc_neg_feedback) ];
    choice "cond-spelling"
      [ ("n > 0", Good); ("n != 0", Good); ("0 < n", Disc_neg_feedback) ];
    choice "structure"
      [ ("while", Good); ("for", Good); ("log10", Disc_neg_feedback) ];
    choice "names"
      (Array.to_list (Array.map (fun (r, _, _, _) -> (r, Good)) p4v1_names));
  |]

let p4v1_render dg =
  let rev, n, d, k = p4v1_names.(dg.(11)) in
  let loop_var = if dg.(3) = 0 then n else k in
  let step digit =
    let rhs = if dg.(1) = 0 then digit else loop_var in
    Printf.sprintf "%s = %s * 10 + %s;" rev rev rhs
  in
  let shrink v =
    Printf.sprintf "%s = %s %s" v v (if dg.(2) = 0 then "/ 10" else "- 10")
  in
  let loop =
    peel_loop ~structure:dg.(10) ~cond_spelling:dg.(9) ~n:loop_var ~d
      ~extract_inline:(dg.(7) = 1) ~shrink step
  in
  let decls =
    let init = [| "0"; "1" |].(dg.(0)) in
    let copy =
      if dg.(3) = 0 then Printf.sprintf "    int %s = %s;\n" n k else ""
    in
    if dg.(6) = 0 then Printf.sprintf "    int %s = %s;\n%s" rev init copy
    else if dg.(3) = 0 then
      Printf.sprintf "    int %s = %s, %s = %s;\n" rev init n k
    else Printf.sprintf "    int %s = %s;\n" rev init
  in
  let compare_rhs = if dg.(4) = 0 then k else n in
  let yes, no =
    if dg.(5) = 0 then ("\"Palindrome\"", "\"Not palindrome\"")
    else ("\"Not palindrome\"", "\"Palindrome\"")
  in
  let branch =
    if dg.(8) = 0 then
      Printf.sprintf
        "    if (%s == %s)\n        System.out.println(%s);\n    else\n\
        \        System.out.println(%s);" rev compare_rhs yes no
    else
      Printf.sprintf
        "    if (%s != %s)\n        System.out.println(%s);\n    else\n\
        \        System.out.println(%s);" rev compare_rhs no yes
  in
  Printf.sprintf "void lab3p4v1(int %s) {\n%s%s\n%s\n}\n" k decls loop branch

let p4v1 =
  {
    id = "esc-LAB-3-P4-V1";
    title = "Is the number a palindrome?";
    entry = "lab3p4v1";
    expected_methods = [ "lab3p4v1" ];
    choices = p4v1_choices;
    render = p4v1_render;
  }
