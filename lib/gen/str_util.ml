(** Tiny string helpers for the renderers. *)

(** Replace the first occurrence of [pattern] (a literal substring) with
    [by]; returns the input unchanged when [pattern] does not occur. *)
let replace_first ~pattern ~by s =
  let plen = String.length pattern in
  let slen = String.length s in
  let rec find i =
    if i + plen > slen then None
    else if String.sub s i plen = pattern then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + plen) (slen - i - plen)
