(** Semantics-preserving source mutators.

    These produce the "same submission, different student" variants that
    dominate real MOOC traffic: consistent variable renamings and
    whitespace re-flows.  Both preserve the α-renamed canonical AST, so
    the serving tier's content-addressed result cache
    ({!Jfeed_service.Normalize}) maps a mutant to the same key as its
    base — the property the cache-key soundness tests check over
    generated corpora, and the knob the service benchmark's
    duplicate-ratio replay turns.

    All mutators are deterministic in [(seed, source)]. *)

val alpha_rename : seed:int -> string -> string
(** Parse, consistently rename every parameter and local variable to a
    fresh seed-derived name, and pretty-print.  Raises
    {!Jfeed_java.Parser.Parse_error} / {!Jfeed_java.Lexer.Lex_error} on
    unparseable input.  Class names, field selectors and method names
    are untouched, so the mutant still parses, runs and grades — its
    feedback merely names different variables. *)

val whitespace : seed:int -> string -> string
(** Token-preserving layout edits: re-indented lines, injected blank
    lines, trailing spaces.  Works on any input (no parse needed); the
    token stream — and hence the AST — is unchanged. *)

val rename_and_reflow : seed:int -> string -> string
(** {!alpha_rename} then {!whitespace} — the strongest cache-equivalent
    mutant. *)
