(** Semantics-preserving source mutators.

    These produce the "same submission, different student" variants that
    dominate real MOOC traffic: consistent variable renamings and
    whitespace re-flows.  Both preserve the α-renamed canonical AST, so
    the serving tier's content-addressed result cache
    ({!Jfeed_service.Normalize}) maps a mutant to the same key as its
    base — the property the cache-key soundness tests check over
    generated corpora, and the knob the service benchmark's
    duplicate-ratio replay turns.

    {!fault_inject} is the opposite family: a {e semantics-breaking}
    single edit drawn from the shared error-model catalog
    ({!Jfeed_java.Edit}) with structured metadata (edit kind, enclosing
    method, srcmap position, before/after text) — the corpus the repair
    search ({!Jfeed_repair}) is measured against, built from the same
    vocabulary it searches.

    All mutators are deterministic in [(seed, source)]. *)

val alpha_rename : seed:int -> string -> string
(** Parse, consistently rename every parameter and local variable to a
    fresh seed-derived name, and pretty-print.  Raises
    {!Jfeed_java.Parser.Parse_error} / {!Jfeed_java.Lexer.Lex_error} on
    unparseable input.  Class names, field selectors and method names
    are untouched, so the mutant still parses, runs and grades — its
    feedback merely names different variables. *)

val whitespace : seed:int -> string -> string
(** Token-preserving layout edits: re-indented lines, injected blank
    lines, trailing spaces.  Works on any input (no parse needed); the
    token stream — and hence the AST — is unchanged. *)

val rename_and_reflow : seed:int -> string -> string
(** {!alpha_rename} then {!whitespace} — the strongest cache-equivalent
    mutant. *)

(** {2 Fault injection — single edits from the shared error model} *)

type fault = {
  f_kind : Jfeed_java.Edit.kind;
  f_meth : string;  (** enclosing method of the mutated node *)
  f_pos : Jfeed_java.Srcmap.pos option;
      (** position of the enclosing statement/declarator in the
          {e original} source *)
  f_before : string;  (** canonical rendering of the original node *)
  f_after : string;  (** canonical rendering of the injected node *)
}

val fault_sites : string -> fault list
(** Metadata for every single edit the catalog can inject into [src], in
    {!Jfeed_java.Edit.enumerate} order.  Raises
    {!Jfeed_java.Parser.Parse_error} / {!Jfeed_java.Lexer.Lex_error} on
    unparseable input. *)

val fault_inject : seed:int -> string -> (string * fault) option
(** Pick one edit site uniformly with the seeded LCG, apply it, and
    pretty-print: a single-edit mutant plus the metadata describing the
    injected fault.  [None] when the program offers no edit site.
    Deterministic in [(seed, source)].  The mutant parses by
    construction but is {e not} semantics-preserving — most (not all)
    injected faults change behaviour on the assignment's test suite. *)
