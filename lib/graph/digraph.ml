type node = int

type ('n, 'e) t = {
  mutable labels : 'n array;
  mutable size : int;
  succ : (node, (node * 'e) list ref) Hashtbl.t;
  pred : (node, (node * 'e) list ref) Hashtbl.t;
  edge_set : (node * node * 'e, unit) Hashtbl.t;
      (* labelled-edge membership, O(1) [mem_edge] *)
  pair_set : (node * node, int) Hashtbl.t;
      (* parallel-edge count per (src, dst), O(1) [has_edge] *)
  mutable out_deg : int array;  (* maintained counters, indexed by node *)
  mutable in_deg : int array;
  mutable edge_count : int;
}

let create () =
  {
    labels = [||];
    size = 0;
    succ = Hashtbl.create 16;
    pred = Hashtbl.create 16;
    edge_set = Hashtbl.create 32;
    pair_set = Hashtbl.create 32;
    out_deg = [||];
    in_deg = [||];
    edge_count = 0;
  }

let node_count g = g.size
let edge_count g = g.edge_count
let mem_node g v = v >= 0 && v < g.size

let check_node g v =
  if not (mem_node g v) then
    invalid_arg (Printf.sprintf "Digraph: unknown node %d" v)

let grow_int_array a cap' =
  let fresh = Array.make cap' 0 in
  Array.blit a 0 fresh 0 (Array.length a);
  fresh

let grow g =
  let cap = Array.length g.labels in
  if g.size >= cap then begin
    let cap' = max 8 (2 * cap) in
    let fresh = Array.make cap' g.labels.(0) in
    Array.blit g.labels 0 fresh 0 g.size;
    g.labels <- fresh;
    g.out_deg <- grow_int_array g.out_deg cap';
    g.in_deg <- grow_int_array g.in_deg cap'
  end

let add_node g lbl =
  let v = g.size in
  if Array.length g.labels = 0 then begin
    g.labels <- Array.make 8 lbl;
    g.out_deg <- Array.make 8 0;
    g.in_deg <- Array.make 8 0
  end
  else grow g;
  g.labels.(v) <- lbl;
  g.size <- g.size + 1;
  v

let label g v =
  check_node g v;
  g.labels.(v)

let set_label g v lbl =
  check_node g v;
  g.labels.(v) <- lbl

let adj tbl v = match Hashtbl.find_opt tbl v with Some r -> !r | None -> []

let push tbl v entry =
  match Hashtbl.find_opt tbl v with
  | Some r -> r := entry :: !r
  | None -> Hashtbl.add tbl v (ref [ entry ])

let mem_edge g s t e = Hashtbl.mem g.edge_set (s, t, e)
let has_edge g s t = Hashtbl.mem g.pair_set (s, t)

let add_edge g s t e =
  check_node g s;
  check_node g t;
  if not (mem_edge g s t e) then begin
    push g.succ s (t, e);
    push g.pred t (s, e);
    Hashtbl.add g.edge_set (s, t, e) ();
    Hashtbl.replace g.pair_set (s, t)
      (1 + Option.value ~default:0 (Hashtbl.find_opt g.pair_set (s, t)));
    g.out_deg.(s) <- g.out_deg.(s) + 1;
    g.in_deg.(t) <- g.in_deg.(t) + 1;
    g.edge_count <- g.edge_count + 1
  end

let succ g v =
  check_node g v;
  List.rev (adj g.succ v)

let pred g v =
  check_node g v;
  List.rev (adj g.pred v)

let out_degree g v =
  check_node g v;
  g.out_deg.(v)

let in_degree g v =
  check_node g v;
  g.in_deg.(v)
let nodes g = List.init g.size Fun.id

let edges g =
  List.concat_map (fun s -> List.map (fun (t, e) -> (s, t, e)) (succ g s)) (nodes g)

let fold_nodes g ~init ~f =
  List.fold_left (fun acc v -> f acc v g.labels.(v)) init (nodes g)

let fold_edges g ~init ~f =
  List.fold_left (fun acc (s, t, e) -> f acc s t e) init (edges g)

let filter_nodes g ~f = List.filter (fun v -> f v g.labels.(v)) (nodes g)

let reachable g root =
  check_node g root;
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      order := v :: !order;
      List.iter (fun (w, _) -> visit w) (succ g v)
    end
  in
  visit root;
  List.rev !order

let topological_sort g =
  let indeg = Array.make (max 1 g.size) 0 in
  List.iter (fun (_, t, _) -> indeg.(t) <- indeg.(t) + 1) (edges g);
  let queue = Queue.create () in
  List.iter (fun v -> if indeg.(v) = 0 then Queue.add v queue) (nodes g);
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr emitted;
    List.iter
      (fun (w, _) ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (succ g v)
  done;
  if !emitted = g.size then Some (List.rev !order) else None

let map g ~fn ~fe =
  let g' = create () in
  List.iter (fun v -> ignore (add_node g' (fn (label g v)))) (nodes g);
  List.iter (fun (s, t, e) -> add_edge g' s t (fe e)) (edges g);
  g'

let transpose g =
  let g' = create () in
  List.iter (fun v -> ignore (add_node g' (label g v))) (nodes g);
  List.iter (fun (s, t, e) -> add_edge g' t s e) (edges g);
  g'

type dot_attr =
  | Label of string
  | Shape of string
  | Style of string
  | Raw of string

let dot_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_attrs attrs =
  String.concat ", "
    (List.map
       (function
         | Label s -> Printf.sprintf "label=\"%s\"" (dot_escape s)
         | Shape s -> "shape=" ^ s
         | Style s -> "style=" ^ s
         | Raw s -> s)
       attrs)

let to_dot g ~node_attrs ~edge_attrs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph g {\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [%s];\n" v (render_attrs (node_attrs v (label g v)))))
    (nodes g);
  List.iter
    (fun (s, t, e) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [%s];\n" s t (render_attrs (edge_attrs e))))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
