(** Directed multigraph with integer node identifiers, arbitrary node labels
    and arbitrary edge labels.

    This is the storage substrate for extended program dependence graphs and
    for pattern graphs (the paper uses JGraphT for the same purpose).  The
    structure is mutable: builders add nodes and edges imperatively, and the
    matching algorithms only read it. *)

type ('n, 'e) t

type node = int
(** Node identifier, dense from 0 in insertion order. *)

val create : unit -> ('n, 'e) t

val add_node : ('n, 'e) t -> 'n -> node
(** [add_node g label] inserts a fresh node and returns its identifier. *)

val add_edge : ('n, 'e) t -> node -> node -> 'e -> unit
(** [add_edge g src dst label] inserts an edge.  Parallel edges with
    different labels are allowed; inserting the exact same labelled edge
    twice is a no-op.  Raises [Invalid_argument] if either endpoint is not a
    node of [g]. *)

val node_count : ('n, 'e) t -> int
val edge_count : ('n, 'e) t -> int

val label : ('n, 'e) t -> node -> 'n
(** Raises [Invalid_argument] on an unknown node. *)

val set_label : ('n, 'e) t -> node -> 'n -> unit

val mem_node : ('n, 'e) t -> node -> bool

val mem_edge : ('n, 'e) t -> node -> node -> 'e -> bool
(** Labelled-edge membership.  O(1): backed by a hash set maintained at
    insertion, not a scan of the adjacency list — this is the matcher's
    innermost consistency check. *)

val has_edge : ('n, 'e) t -> node -> node -> bool
(** Ignores the edge label.  O(1), same mechanism as {!mem_edge}. *)

val succ : ('n, 'e) t -> node -> (node * 'e) list
(** Outgoing neighbours with edge labels, in insertion order. *)

val pred : ('n, 'e) t -> node -> (node * 'e) list
(** Incoming neighbours with edge labels, in insertion order. *)

val out_degree : ('n, 'e) t -> node -> int
(** O(1): counters maintained by {!add_edge}, no adjacency-list walk. *)

val in_degree : ('n, 'e) t -> node -> int
(** O(1), same mechanism as {!out_degree}. *)

val nodes : ('n, 'e) t -> node list
(** All nodes in insertion order. *)

val edges : ('n, 'e) t -> (node * node * 'e) list

val fold_nodes : ('n, 'e) t -> init:'a -> f:('a -> node -> 'n -> 'a) -> 'a

val fold_edges :
  ('n, 'e) t -> init:'a -> f:('a -> node -> node -> 'e -> 'a) -> 'a

val filter_nodes : ('n, 'e) t -> f:(node -> 'n -> bool) -> node list

val reachable : ('n, 'e) t -> node -> node list
(** Nodes reachable from the given node (including itself), depth-first
    preorder. *)

val topological_sort : ('n, 'e) t -> node list option
(** [None] when the graph has a cycle. *)

val transpose : ('n, 'e) t -> ('n, 'e) t

val map : ('n, 'e) t -> fn:('n -> 'm) -> fe:('e -> 'f) -> ('m, 'f) t
(** Structure-preserving relabelling; node identifiers are preserved. *)

(** One Graphviz attribute.  [Label] payloads are escaped by {!to_dot}
    (quotes, backslashes, raw newlines — the characters a student's
    string literal can smuggle into a node label); [Shape]/[Style] are
    bare identifiers; [Raw] is spliced verbatim for anything else. *)
type dot_attr =
  | Label of string
  | Shape of string
  | Style of string
  | Raw of string

val dot_escape : string -> string
(** Escape a string for use inside a double-quoted DOT attribute value:
    double quotes and backslashes gain a backslash, raw newlines and
    carriage returns become backslash-n / backslash-r. *)

val to_dot :
  ('n, 'e) t ->
  node_attrs:(node -> 'n -> dot_attr list) ->
  edge_attrs:('e -> dot_attr list) ->
  string
(** Graphviz rendering; [node_attrs]/[edge_attrs] return attribute lists
    such as [[Label "x = 0"; Shape "box"]].  Label text is escaped here —
    callers pass the raw label, never pre-escaped text, so
    string-literal-bearing submissions cannot produce invalid DOT. *)
