(** Pattern matching over extended program dependence graphs — the paper's
    Algorithm 1, with two deliberate deviations recorded in DESIGN.md §4:

    - when a candidate graph node is considered for a pattern node, pattern
      edges are verified in *both* directions against already-matched
      nodes (the pseudocode only checks outgoing edges of the new node,
      which would leave incoming pattern edges unchecked);
    - variable combinations are all *injective* mappings from the pattern
      node's unbound variables X into the submission expression's unbound
      variables Y, rather than requiring |X| = |Y| bijections — the strict
      rule rejects the paper's own worked example (u5 of p_o matching
      ["odd += a[i]"], where [odd] remains unmapped). *)

open Jfeed_exprmatch
module G = Jfeed_graph.Digraph
module Epdg = Jfeed_pdg.Epdg

type node_mark = Exact  (** r matched: correct *) | Approx  (** r̂ matched: incorrect *)

type embedding = {
  iota : (int * (G.node * node_mark)) list;
      (** pattern node index → (graph node, correctness mark), sorted by
          pattern node index *)
  gamma : (string * string) list;  (** pattern variable → submission variable *)
}

let image m u = List.assoc_opt u m.iota |> Option.map fst

let is_fully_correct m = List.for_all (fun (_, (_, mk)) -> mk = Exact) m.iota

(** Graph nodes used by the embedding, sorted — two embeddings with the
    same footprint are the same *occurrence* of the pattern. *)
let footprint m = List.sort compare (List.map (fun (_, (v, _)) -> v) m.iota)

let max_embeddings = 20_000
(* Backstop against pathological patterns; far above anything the
   knowledge base produces. *)

(* All injective mappings of xs into ys, as association lists. *)
let rec injections xs ys =
  match xs with
  | [] -> [ [] ]
  | x :: rest ->
      List.concat_map
        (fun y ->
          let ys' = List.filter (fun y' -> y' <> y) ys in
          List.map (fun tail -> (x, y) :: tail) (injections rest ys'))
        ys

(** All embeddings of pattern [p] in EPDG [epdg] (Definition 7 plus
    correctness marks).  Deduplicated: at most one embedding per
    (ι, γ) pair. *)
let embeddings (p : Pattern.t) (epdg : Epdg.t) =
  let g = epdg.Epdg.graph in
  let n = Array.length p.Pattern.nodes in
  (* Search space Φ: graph nodes compatible with each pattern node's type. *)
  let phi =
    Array.map
      (fun (pn : Pattern.pnode) ->
        G.filter_nodes g ~f:(fun _ info ->
            match pn.Pattern.pn_type with
            | None -> true
            | Some t -> t = info.Epdg.n_type))
      p.Pattern.nodes
  in
  let iota = Array.make n (-1) in
  let marks = Array.make n Exact in
  let used = Hashtbl.create 16 in
  let results = ref [] in
  let count = ref 0 in
  let snapshot gamma =
    let pairs =
      List.init n (fun u -> (u, (iota.(u), marks.(u))))
    in
    { iota = pairs; gamma = List.rev gamma }
  in
  (* Pick the next pattern node: prefer nodes adjacent to already-matched
     ones (their edge checks prune immediately), tie-break on the smaller
     candidate set. *)
  let pick_next () =
    let adjacency u =
      List.length
        (List.filter
           (fun (s, d, _) ->
             (s = u && iota.(d) >= 0) || (d = u && iota.(s) >= 0))
           p.Pattern.edges)
    in
    let best = ref (-1) and best_key = ref (min_int, min_int) in
    for u = 0 to n - 1 do
      if iota.(u) < 0 then begin
        let key = (adjacency u, -List.length phi.(u)) in
        if !best < 0 || key > !best_key then begin
          best := u;
          best_key := key
        end
      end
    done;
    !best
  in
  let edges_consistent u v =
    List.for_all
      (fun (s, d, et) ->
        if s = u && iota.(d) >= 0 then G.mem_edge g v iota.(d) et
        else if d = u && iota.(s) >= 0 then G.mem_edge g iota.(s) v et
        else true)
      p.Pattern.edges
  in
  let rec search matched gamma =
    if !count < max_embeddings then
      if matched = n then begin
        incr count;
        results := snapshot gamma :: !results
      end
      else begin
        let u = pick_next () in
        let pn = p.Pattern.nodes.(u) in
        List.iter
          (fun v ->
            if (not (Hashtbl.mem used v)) && edges_consistent u v then begin
              iota.(u) <- v;
              Hashtbl.add used v ();
              let c = Epdg.node_text epdg v in
              let dom = List.map fst gamma in
              let ran = List.map snd gamma in
              let xs =
                List.filter
                  (fun x -> not (List.mem x dom))
                  (Template.vars pn.Pattern.exact)
              in
              let ys =
                List.filter
                  (fun y -> not (List.mem y ran))
                  (Jfeed_java.Ast.vars_of_expr (Epdg.node_expr epdg v))
              in
              List.iter
                (fun z ->
                  let gamma' = List.rev_append z gamma in
                  let assoc = List.rev gamma' in
                  if Template.matches pn.Pattern.exact ~gamma:assoc c then begin
                    marks.(u) <- Exact;
                    search (matched + 1) gamma'
                  end
                  else
                    match pn.Pattern.approx with
                    | Some a when Template.matches a ~gamma:assoc c ->
                        marks.(u) <- Approx;
                        search (matched + 1) gamma'
                    | _ -> ())
                (injections xs ys);
              Hashtbl.remove used v;
              iota.(u) <- -1
            end)
          phi.(u)
      end
  in
  search 0 [];
  (* Deduplicate: distinct variable-injection orders can reach the same
     (ι, γ). *)
  let tbl = Hashtbl.create 16 in
  List.filter
    (fun m ->
      let key = (m.iota, List.sort compare m.gamma) in
      if Hashtbl.mem tbl key then false
      else begin
        Hashtbl.add tbl key ();
        true
      end)
    (List.rev !results)

(** Group embeddings into occurrences (by footprint), keeping the best
    embedding of each occurrence — the one with the most correct nodes.
    This is what occurrence counting (t̄ in Algorithm 2) is based on. *)
let occurrences ms =
  let score m =
    List.length (List.filter (fun (_, (_, mk)) -> mk = Exact) m.iota)
  in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun m ->
      let fp = footprint m in
      match Hashtbl.find_opt tbl fp with
      | None ->
          Hashtbl.add tbl fp m;
          order := fp :: !order
      | Some best -> if score m > score best then Hashtbl.replace tbl fp m)
    ms;
  List.rev_map (Hashtbl.find tbl) !order
