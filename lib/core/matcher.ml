(** Pattern matching over extended program dependence graphs — the paper's
    Algorithm 1, with two deliberate deviations recorded in DESIGN.md §4:

    - when a candidate graph node is considered for a pattern node, pattern
      edges are verified in *both* directions against already-matched
      nodes (the pseudocode only checks outgoing edges of the new node,
      which would leave incoming pattern edges unchecked);
    - variable combinations are all *injective* mappings from the pattern
      node's unbound variables X into the submission expression's unbound
      variables Y, rather than requiring |X| = |Y| bijections — the strict
      rule rejects the paper's own worked example (u5 of p_o matching
      ["odd += a[i]"], where [odd] remains unmapped). *)

open Jfeed_exprmatch
module G = Jfeed_graph.Digraph
module Epdg = Jfeed_pdg.Epdg
module Trace = Jfeed_trace.Trace

type node_mark = Exact  (** r matched: correct *) | Approx  (** r̂ matched: incorrect *)

type embedding = {
  iota : (int * (G.node * node_mark)) list;
      (** pattern node index → (graph node, correctness mark), sorted by
          pattern node index *)
  gamma : (string * string) list;  (** pattern variable → submission variable *)
}

let image m u = List.assoc_opt u m.iota |> Option.map fst

let is_fully_correct m = List.for_all (fun (_, (_, mk)) -> mk = Exact) m.iota

(** Graph nodes used by the embedding, sorted — two embeddings with the
    same footprint are the same *occurrence* of the pattern. *)
let footprint m = List.sort compare (List.map (fun (_, (v, _)) -> v) m.iota)

let max_embeddings = 20_000
(* Backstop against pathological patterns; far above anything the
   knowledge base produces. *)

type search = {
  found : embedding list;
  exhausted : bool;
      (** the embedding cap or the fuel budget cut the search short:
          [found] is a prefix of the full embedding set, not all of it *)
}

exception Cut
(* Unwinds the backtracking search when the fuel budget or the embedding
   cap is exhausted; the results accumulated so far are kept. *)

(** Run a backtracking search along a prepared step array (one step per
    pattern node: the node to bind, its check list against already-bound
    nodes, its candidate set).  All embeddings of the pattern in the EPDG
    (Definition 7 plus correctness marks), deduplicated: at most one
    embedding per (ι, γ) pair.  Every candidate-extension step — a graph
    node tried for a pattern node, or a variable added to an injective
    mapping — spends one unit of [budget] fuel; when the fuel or the
    {!max_embeddings} backstop runs out the search stops and the partial
    result is tagged [exhausted] instead of being silently truncated.

    Returns the search result paired with the number of
    candidate-extension steps taken (the ticks) — the tracing layer's
    per-pattern backtracking cost, counted whether or not a budget or a
    trace is present (one integer increment per step, which the bench
    gate holds within its <5% overhead allowance). *)
let run_steps ?budget (p : Pattern.t) (plan : Plan.t) (epdg : Epdg.t)
    (steps : Plan.step array) =
  let g = epdg.Epdg.graph in
  let n = Array.length p.Pattern.nodes in
  let iota = Array.make n (-1) in
  let marks = Array.make n Exact in
  let used = Bytes.make (max 1 (G.node_count g)) '\000' in
  let results = ref [] in
  let count = ref 0 in
  let exhausted = ref false in
  let nsteps = ref 0 in
  let tick () =
    incr nsteps;
    match budget with
    | Some b when not (Jfeed_budget.Budget.spend b Jfeed_budget.Budget.Matcher 1)
      ->
        exhausted := true;
        raise Cut
    | _ -> ()
  in
  let snapshot gamma =
    let pairs =
      List.init n (fun u -> (u, (iota.(u), marks.(u))))
    in
    { iota = pairs; gamma = List.rev gamma }
  in
  let rec search matched gamma =
    if !count >= max_embeddings then begin
      exhausted := true;
      raise Cut
    end;
    if matched = n then begin
      incr count;
      results := snapshot gamma :: !results
    end
    else begin
      let step = steps.(matched) in
      let u = step.Plan.s_u in
      let pn = p.Pattern.nodes.(u) in
      (* The plan resolved direction and edge type at compile time, so a
         candidate is validated with [mem_edge] lookups only — no rescan
         of the pattern's edge list, and only edges to bound nodes. *)
      let checks_ok v =
        List.for_all
          (fun (c : Plan.check) ->
            if c.Plan.c_outgoing then
              G.mem_edge g v iota.(c.Plan.c_other) c.Plan.c_ty
            else G.mem_edge g iota.(c.Plan.c_other) v c.Plan.c_ty)
          step.Plan.s_checks
      in
      List.iter
        (fun v ->
          tick ();
          if Bytes.unsafe_get used v = '\000' && checks_ok v then begin
            iota.(u) <- v;
            Bytes.unsafe_set used v '\001';
            let c = Epdg.node_text epdg v in
            let xs =
              List.filter
                (fun x -> not (List.mem_assoc x gamma))
                (Plan.template_vars plan u)
            in
            let ys =
              List.filter
                (fun y -> not (List.exists (fun (_, y') -> y' = y) gamma))
                (Epdg.node_vars epdg v)
            in
            let try_injection z =
              (* γ's keys are unique (xs excludes the domain, injection
                 excludes the range), so the assoc lookups inside
                 [Template.matches] are order-insensitive — no need to
                 re-sort the accumulator into binding order here. *)
              let gamma' = List.rev_append z gamma in
              if Template.matches pn.Pattern.exact ~gamma:gamma' c then begin
                marks.(u) <- Exact;
                search (matched + 1) gamma'
              end
              else
                match pn.Pattern.approx with
                | Some a when Template.matches a ~gamma:gamma' c ->
                    marks.(u) <- Approx;
                    search (matched + 1) gamma'
                | _ -> ()
            in
            (* Enumerate the injective mappings of xs into ys lazily —
               materializing them first would itself be the factorial
               blowup the budget exists to bound — in the same
               lexicographic order the eager enumeration produced. *)
            let rec inject xs ys acc =
              match xs with
              | [] -> try_injection (List.rev acc)
              | x :: rest ->
                  List.iter
                    (fun y ->
                      tick ();
                      let ys' = List.filter (fun y' -> y' <> y) ys in
                      inject rest ys' ((x, y) :: acc))
                    ys
            in
            Fun.protect
              ~finally:(fun () ->
                Bytes.unsafe_set used v '\000';
                iota.(u) <- -1)
              (fun () -> inject xs ys [])
          end)
        step.Plan.s_cands
    end
  in
  (try search 0 [] with Cut -> ());
  (* Deduplicate: distinct variable-injection orders can reach the same
     (ι, γ). *)
  let tbl = Hashtbl.create 16 in
  let found =
    List.filter
      (fun m ->
        let key = (m.iota, List.sort compare m.gamma) in
        if Hashtbl.mem tbl key then false
        else begin
          Hashtbl.add tbl key ();
          true
        end)
      (List.rev !results)
  in
  ({ found; exhausted = !exhausted }, !nsteps)

(** The plan-driven search: memoized plan lookup, fingerprint prefilter,
    then {!run_steps} along the selectivity join order.  Returns
    ((search, ticks), prefilter_rejected). *)
let search_uncached ?budget (p : Pattern.t) (epdg : Epdg.t) =
  let plan = Plan.of_pattern p in
  Plan.note_search ();
  if not (Plan.prefilter plan epdg) then begin
    Plan.note_reject ();
    (({ found = []; exhausted = false }, 0), true)
  end
  else begin
    let r = run_steps ?budget p plan epdg (Plan.steps plan epdg) in
    Plan.note_steps (snd r);
    (r, false)
  end

(** Order-naive reference search: everything the plan precomputes is
    recomputed from scratch at every search-tree node — the join order
    (same selectivity key, re-ranked over the unbound nodes each step),
    the edge checks (a rescan of the pattern's incident lists), the
    template variables — and no fingerprint prefilter runs.  The qcheck
    equivalence property pits the plan path against this: identical
    embeddings and [exhausted] flag, which fails if compilation hoists
    anything incorrectly (including an unsound prefilter).  Not used on
    the grading path. *)
let embeddings_reference ?budget (p : Pattern.t) (epdg : Epdg.t) =
  let g = epdg.Epdg.graph in
  let n = Array.length p.Pattern.nodes in
  let phi =
    Array.map
      (fun (pn : Pattern.pnode) ->
        match pn.Pattern.pn_type with
        | None -> G.nodes g
        | Some t -> Epdg.nodes_of_type epdg t)
      p.Pattern.nodes
  in
  let incident = Array.make (max 1 n) [] in
  List.iter
    (fun ((s, d, _) as e) ->
      incident.(s) <- e :: incident.(s);
      if d <> s then incident.(d) <- e :: incident.(d))
    p.Pattern.edges;
  let iota = Array.make n (-1) in
  let marks = Array.make n Exact in
  let used = Hashtbl.create 16 in
  let results = ref [] in
  let count = ref 0 in
  let exhausted = ref false in
  let tick () =
    match budget with
    | Some b when not (Jfeed_budget.Budget.spend b Jfeed_budget.Budget.Matcher 1)
      ->
        exhausted := true;
        raise Cut
    | _ -> ()
  in
  let snapshot gamma =
    let pairs = List.init n (fun u -> (u, (iota.(u), marks.(u)))) in
    { iota = pairs; gamma = List.rev gamma }
  in
  (* The plan's selectivity key, evaluated dynamically: adjacency to the
     bound set, fewest candidates, static degree, lowest index. *)
  let pick_next () =
    let best = ref (-1)
    and best_key = ref (min_int, min_int, min_int, 0) in
    for u = 0 to n - 1 do
      if iota.(u) < 0 then begin
        let adjacency =
          List.fold_left
            (fun k (s, d, _) ->
              if (s = u && iota.(d) >= 0) || (d = u && iota.(s) >= 0) then
                k + 1
              else k)
            0 incident.(u)
        in
        let key =
          (adjacency, -List.length phi.(u), List.length incident.(u), -u)
        in
        if !best < 0 || key > !best_key then begin
          best := u;
          best_key := key
        end
      end
    done;
    !best
  in
  let edges_consistent u v =
    List.for_all
      (fun (s, d, et) ->
        if s = u && iota.(d) >= 0 then G.mem_edge g v iota.(d) et
        else if d = u && iota.(s) >= 0 then G.mem_edge g iota.(s) v et
        else true)
      incident.(u)
  in
  let rec search matched gamma =
    if !count >= max_embeddings then begin
      exhausted := true;
      raise Cut
    end;
    if matched = n then begin
      incr count;
      results := snapshot gamma :: !results
    end
    else begin
      let u = pick_next () in
      let pn = p.Pattern.nodes.(u) in
      List.iter
        (fun v ->
          tick ();
          if (not (Hashtbl.mem used v)) && edges_consistent u v then begin
            iota.(u) <- v;
            Hashtbl.add used v ();
            let c = Epdg.node_text epdg v in
            let dom = List.map fst gamma in
            let ran = List.map snd gamma in
            let xs =
              List.filter
                (fun x -> not (List.mem x dom))
                (Template.vars pn.Pattern.exact)
            in
            let ys =
              List.filter
                (fun y -> not (List.mem y ran))
                (Jfeed_java.Ast.vars_of_expr (Epdg.node_expr epdg v))
            in
            let try_injection z =
              let gamma' = List.rev_append z gamma in
              let assoc = List.rev gamma' in
              if Template.matches pn.Pattern.exact ~gamma:assoc c then begin
                marks.(u) <- Exact;
                search (matched + 1) gamma'
              end
              else
                match pn.Pattern.approx with
                | Some a when Template.matches a ~gamma:assoc c ->
                    marks.(u) <- Approx;
                    search (matched + 1) gamma'
                | _ -> ()
            in
            let rec inject xs ys acc =
              match xs with
              | [] -> try_injection (List.rev acc)
              | x :: rest ->
                  List.iter
                    (fun y ->
                      tick ();
                      let ys' = List.filter (fun y' -> y' <> y) ys in
                      inject rest ys' ((x, y) :: acc))
                    ys
            in
            Fun.protect
              ~finally:(fun () ->
                Hashtbl.remove used v;
                iota.(u) <- -1)
              (fun () -> inject xs ys [])
          end)
        phi.(u)
    end
  in
  (try search 0 [] with Cut -> ());
  let tbl = Hashtbl.create 16 in
  let found =
    List.filter
      (fun m ->
        let key = (m.iota, List.sort compare m.gamma) in
        if Hashtbl.mem tbl key then false
        else begin
          Hashtbl.add tbl key ();
          true
        end)
      (List.rev !results)
  in
  { found; exhausted = !exhausted }

(** Embedding memo cache, keyed by (pattern id, EPDG uid).  One grading
    call examines the same (pattern, method) pair once per method-pairing
    combination, and the variants/strategies layers re-try primaries —
    with the cache each distinct search runs once per submission.  Scope
    a cache to a single grading call: keys assume pattern ids are stable
    within one spec, and a cached search's budget spending must not be
    replayed across submissions. *)
module Cache = struct
  type nonrec t = (string * int, search) Hashtbl.t

  let create () : t = Hashtbl.create 32
end

(* A traced search runs under a [match:<pattern id>] span carrying the
   backtrack-step count, the fuel the search drew from the budget, the
   embeddings found, and the exhaustion flag; the same numbers also
   land in per-pattern counters so a whole submission's matcher cost
   can be ranked by pattern.  The sink check keeps the untraced path
   free of any of this — no span, no string building, no clock read. *)
let search_traced ?budget p epdg =
  let tr = Trace.current () in
  if not (Trace.enabled tr) then fst (fst (search_uncached ?budget p epdg))
  else
    let id = p.Pattern.id in
    Trace.span tr ("match:" ^ id) (fun () ->
        let fuel0 =
          match budget with
          | Some b -> Jfeed_budget.Budget.spent b
          | None -> 0
        in
        let (s, nodes), rejected = search_uncached ?budget p epdg in
        let fuel =
          (match budget with
          | Some b -> Jfeed_budget.Budget.spent b
          | None -> 0)
          - fuel0
        in
        Trace.add_attr tr "nodes" (string_of_int nodes);
        Trace.add_attr tr "fuel" (string_of_int fuel);
        Trace.add_attr tr "found" (string_of_int (List.length s.found));
        if s.exhausted then Trace.add_attr tr "exhausted" "true";
        if rejected then begin
          Trace.add_attr tr "prefilter" "reject";
          Trace.count tr ("plan.prefilter_reject:" ^ id) 1
        end
        else begin
          Trace.count tr ("match.nodes:" ^ id) nodes;
          Trace.count tr ("match.fuel:" ^ id) fuel;
          Trace.count tr ("plan.steps:" ^ id) nodes
        end;
        s)

let embeddings_budgeted ?budget ?cache (p : Pattern.t) (epdg : Epdg.t) =
  match cache with
  | None -> search_traced ?budget p epdg
  | Some (c : Cache.t) -> (
      let key = (p.Pattern.id, epdg.Epdg.uid) in
      match Hashtbl.find_opt c key with
      | Some s ->
          Trace.count (Trace.current ())
            ("match.cache_hit:" ^ p.Pattern.id)
            1;
          s
      | None ->
          let s = search_traced ?budget p epdg in
          Trace.count (Trace.current ())
            ("match.cache_miss:" ^ p.Pattern.id)
            1;
          Hashtbl.add c key s;
          s)

(** {!embeddings_budgeted} without the exhaustion tag — the historical
    interface; prefer the budgeted form in pipeline code, where
    truncation must be surfaced. *)
let embeddings ?budget p epdg = (embeddings_budgeted ?budget p epdg).found

(** Group embeddings into occurrences (by footprint), keeping the best
    embedding of each occurrence — the one with the most correct nodes.
    This is what occurrence counting (t̄ in Algorithm 2) is based on. *)
let occurrences ms =
  let score m =
    List.length (List.filter (fun (_, (_, mk)) -> mk = Exact) m.iota)
  in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun m ->
      let fp = footprint m in
      match Hashtbl.find_opt tbl fp with
      | None ->
          Hashtbl.add tbl fp m;
          order := fp :: !order
      | Some best -> if score m > score best then Hashtbl.replace tbl fp m)
    ms;
  List.rev_map (Hashtbl.find tbl) !order
