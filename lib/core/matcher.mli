(** Pattern matching over extended program dependence graphs — the paper's
    Algorithm 1, with two deliberate deviations recorded in DESIGN.md §4:
    pattern edges are verified in both directions when a node is added to
    a partial embedding, and variable combinations are all injective
    mappings of the pattern node's unbound variables into the submission
    expression's unbound variables (the paper's strict |X| = |Y| rule
    rejects its own worked example). *)

type node_mark =
  | Exact  (** the exact template r matched: the node is correct *)
  | Approx  (** only the approximate template r̂ matched: incorrect *)

type embedding = {
  iota : (int * (Jfeed_graph.Digraph.node * node_mark)) list;
      (** pattern node index → (graph node, correctness mark), sorted by
          pattern node index *)
  gamma : (string * string) list;
      (** pattern variable → submission variable *)
}

val image : embedding -> int -> Jfeed_graph.Digraph.node option
(** ι(u) — the graph node a pattern node is mapped to. *)

val is_fully_correct : embedding -> bool
(** Every node matched its exact template. *)

val footprint : embedding -> Jfeed_graph.Digraph.node list
(** Graph nodes used by the embedding, sorted — two embeddings with the
    same footprint are the same {e occurrence} of the pattern. *)

val max_embeddings : int
(** Backstop on the number of embeddings explored per pattern. *)

type search = {
  found : embedding list;
  exhausted : bool;
      (** the {!max_embeddings} cap or the fuel budget cut the search
          short: [found] is a prefix of the full embedding set.  Never
          silently dropped — callers surface this as a degradation
          reason. *)
}

(** Embedding memo cache, keyed by (pattern id, EPDG uid).  Scope one
    cache to one grading call: within a submission the method-pairing
    search and the variants/strategies layers re-run identical
    (pattern, method) searches, and the cache collapses each to a single
    backtracking run.  A cache hit spends no budget fuel — the work it
    stands for was already paid for when the entry was filled. *)
module Cache : sig
  type t

  val create : unit -> t
end

val embeddings_budgeted :
  ?budget:Jfeed_budget.Budget.t ->
  ?cache:Cache.t ->
  Pattern.t ->
  Jfeed_pdg.Epdg.t ->
  search
(** All embeddings of a pattern in an EPDG (Definition 7 plus correctness
    marks), deduplicated by (ι, γ).  Each candidate-extension step of the
    backtracking search — a graph node tried for a pattern node, or a
    variable appended to an injective mapping — spends one unit of
    [budget] fuel ({!Jfeed_budget.Budget.Matcher}); fuel exhaustion or
    the {!max_embeddings} backstop stop the search with [exhausted]
    set.  With [?cache], a repeated (pattern id, EPDG) search returns
    the memoized result (including its [exhausted] tag) without running
    or spending fuel. *)

val embeddings_reference :
  ?budget:Jfeed_budget.Budget.t ->
  Pattern.t ->
  Jfeed_pdg.Epdg.t ->
  search
(** Order-naive reference search: everything {!Jfeed_core.Plan}
    precomputes is recomputed from scratch at every search-tree node —
    the join order (same selectivity key, re-ranked over the unbound
    nodes each step), the edge checks, the template variables — and no
    fingerprint prefilter runs.  The qcheck equivalence property pits
    {!embeddings_budgeted} against it: unbudgeted, the two must agree on
    the embeddings and the [exhausted] flag, which fails if plan
    compilation hoists anything incorrectly (including an unsound
    prefilter).  Not used on the grading path. *)

val embeddings :
  ?budget:Jfeed_budget.Budget.t ->
  Pattern.t ->
  Jfeed_pdg.Epdg.t ->
  embedding list
(** {!embeddings_budgeted} without the exhaustion tag — the historical
    interface.  Prefer the budgeted form in pipeline code, where
    truncation must be surfaced. *)

val occurrences : embedding list -> embedding list
(** Group embeddings into occurrences (by footprint), keeping the best
    embedding of each — the one with the most correct nodes.  Occurrence
    counting (t̄ in Algorithm 2) is based on this. *)
