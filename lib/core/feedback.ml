(** Feedback comments and the cost function Λ (paper §V, equation 3). *)

open Jfeed_exprmatch

type verdict = Correct | Incorrect | Not_expected

type comment = {
  about : [ `Pattern of string | `Constraint of string ];
  in_method : string;  (** submission method the comment refers to *)
  verdict : verdict;
  messages : string list;  (** instantiated natural-language feedback *)
}

let lambda = function Correct -> 1.0 | Incorrect -> 0.5 | Not_expected -> 0.0

(** Λ(B) — guides the best-effort choice among method combinations. *)
let score comments =
  List.fold_left (fun acc c -> acc +. lambda c.verdict) 0.0 comments

let string_of_verdict = function
  | Correct -> "correct"
  | Incorrect -> "incorrect"
  | Not_expected -> "not-expected"

(** ProvideFeedback (Algorithm 2, line 15).  [t] is the expected number of
    occurrences t̄(q, p); [t = 0] encodes a "bad pattern" the student must
    avoid. *)
let of_pattern ~in_method (p : Pattern.t) ~expected:t ms =
  let occs = Matcher.occurrences ms in
  let found = List.length occs in
  if found <> t then
    let messages = [ Template.instantiate p.Pattern.fb_missing ~gamma:[] ] in
    {
      about = `Pattern p.Pattern.id;
      in_method;
      verdict = Not_expected;
      messages;
    }
  else if t = 0 then
    (* The bad pattern is absent, as required. *)
    {
      about = `Pattern p.Pattern.id;
      in_method;
      verdict = Correct;
      messages = [ Template.instantiate p.Pattern.fb_present ~gamma:[] ];
    }
  else
    let all_correct = List.for_all Matcher.is_fully_correct occs in
    let node_messages (m : Matcher.embedding) =
      List.filter_map
        (fun (u, (_, mark)) ->
          let pn = p.Pattern.nodes.(u) in
          let text =
            match mark with
            | Matcher.Exact -> pn.Pattern.fb_correct
            | Matcher.Approx -> pn.Pattern.fb_incorrect
          in
          Option.map (Template.instantiate ~gamma:m.Matcher.gamma) text)
        m.Matcher.iota
    in
    let messages =
      match occs with
      | [] -> []
      | first :: _ ->
          (* Only claim the pattern's success message when every node
             matched its exact template; otherwise lead with the pattern's
             neutral description. *)
          let head =
            if all_correct then
              Template.instantiate p.Pattern.fb_present
                ~gamma:first.Matcher.gamma
            else p.Pattern.description ^ " — recognized, with problems:"
          in
          head :: List.concat_map node_messages occs
    in
    {
      about = `Pattern p.Pattern.id;
      in_method;
      verdict = (if all_correct then Correct else Incorrect);
      messages;
    }

let render c =
  let tag =
    match c.about with
    | `Pattern id -> Printf.sprintf "pattern %s" id
    | `Constraint id -> Printf.sprintf "constraint %s" id
  in
  Printf.sprintf "[%s | %s | %s]\n%s" c.in_method tag
    (string_of_verdict c.verdict)
    (String.concat "\n" (List.map (fun m -> "  - " ^ m) c.messages))

let render_all comments = String.concat "\n" (List.map render comments)

(* ------------------------------------------------------------------ *)
(* Machine-readable output (LMS integration)                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf {|\"|}
      | '\\' -> Buffer.add_string buf {|\\|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | '\t' -> Buffer.add_string buf {|\t|}
      | '\r' -> Buffer.add_string buf {|\r|}
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf {|\u%04x|} (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let comment_to_json c =
  let kind, id =
    match c.about with
    | `Pattern id -> ("pattern", id)
    | `Constraint id -> ("constraint", id)
  in
  Printf.sprintf
    {|{"kind":"%s","id":"%s","method":"%s","verdict":"%s","messages":[%s]}|}
    kind (json_escape id) (json_escape c.in_method)
    (string_of_verdict c.verdict)
    (String.concat ","
       (List.map (fun m -> {|"|} ^ json_escape m ^ {|"|}) c.messages))

(** Render a full comment list as a JSON document with the score. *)
let to_json comments =
  Printf.sprintf {|{"score":%g,"max":%d,"comments":[%s]}|} (score comments)
    (List.length comments)
    (String.concat "," (List.map comment_to_json comments))
