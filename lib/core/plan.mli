(** Compiled match plans.

    The backtracking matcher used to decide its join order at match time
    — every extension step re-ranked the unbound pattern nodes and
    re-scanned the pattern's edge list for consistency checks.  A plan
    hoists everything that depends only on the {e pattern} to bundle-load
    time ({!compile}, memoized per pattern by {!of_pattern}), and
    everything that additionally depends only on the {e target graph's
    index sizes} to one cheap pass per (pattern, graph) search
    ({!steps}):

    - a {b fingerprint prefilter} ({!prefilter}): the pattern's node-type
      multiset must fit inside the graph's type index sizes, the pattern
      may not have more edges than the graph, and the pattern's degree
      multiset must be dominated by the graph's — all necessary
      conditions for an embedding to exist, checked in O(types + nodes)
      before any search;
    - a {b join order} chosen by selectivity: the root is the pattern
      node with the fewest candidates (rarest node type in the target,
      per {!Jfeed_pdg.Epdg.count_of_type}); each extension prefers nodes
      adjacent to already-planned ones (their edge checks prune
      immediately), then the fewest candidates, with a static tie-break
      on pattern degree;
    - a {b precomputed incident-edge check list} per step: exactly the
      pattern edges from the step's node to already-bound nodes, with
      direction and edge type resolved at plan time — the search
      validates each candidate with [mem_edge] lookups only, no edge
      rescan.

    Process-wide counters ({!searches}, {!prefilter_rejects},
    {!steps_spent}) feed the serve metrics exposition; per-pattern
    [plan.prefilter_reject:<id>] / [plan.steps:<id>] trace counters feed
    [--trace] summaries. *)

module Epdg := Jfeed_pdg.Epdg

type check = {
  c_other : int;
      (** pattern node index of the bound end — the search reads its
          image straight out of the assignment array ι *)
  c_outgoing : bool;
      (** [true]: pattern edge runs new node → bound node, so the graph
          must have candidate → image; [false]: the reverse *)
  c_ty : Epdg.edge_type;
}

type t
(** A compiled pattern: static selectivity data, degree multiset,
    per-node incident edges and pre-extracted template variables. *)

val compile : Pattern.t -> t

val of_pattern : Pattern.t -> t
(** Memoized {!compile}.  The memo is per-domain (no locks on the match
    path); {!Jfeed_kb.Bundles} pre-compiles every shipped pattern at
    bundle load, so on the main domain this is a lookup. *)

val pattern : t -> Pattern.t

val template_vars : t -> int -> string list
(** The exact template's variables for a pattern node, extracted once at
    compile time (the search used to recompute them at every extension
    step). *)

val prefilter : t -> Epdg.t -> bool
(** [false] means no embedding of the pattern can exist in the graph —
    sound to skip the search entirely.  [true] promises nothing. *)

type step = {
  s_u : int;  (** pattern node index bound at this step *)
  s_checks : check list;
      (** edges between [s_u] and nodes bound by earlier steps *)
  s_cands : Jfeed_graph.Digraph.node list;
      (** candidate graph nodes (the type index, insertion order) *)
}

val steps : t -> Epdg.t -> step array
(** The selectivity join order against one target graph, check lists
    resolved.  O(n² · d) in the (tiny) pattern size, once per search. *)

(** {2 Process-wide counters}

    Monotone atomics, safe under parallel batch domains; read by the
    serve [metrics] exposition. *)

val searches : unit -> int
(** Plan-driven searches started (prefilter rejections included). *)

val prefilter_rejects : unit -> int
(** Searches the fingerprint prefilter answered without backtracking. *)

val steps_spent : unit -> int
(** Total candidate-extension steps taken by plan-driven searches. *)

val note_search : unit -> unit
val note_reject : unit -> unit
val note_steps : int -> unit
(** Counter hooks for {!Matcher}. *)
