(** Submission matching — the paper's Algorithm 2.

    A grading specification lists the *expected methods* Q of an
    assignment; each expected method carries the patterns that apply to
    it (with their expected occurrence counts t̄) and the constraints
    that correlate those patterns.  Grading tries every injective
    combination of expected methods with the submission's methods and
    keeps the combination whose feedback maximizes the cost function Λ —
    the combination assumed to reflect the student's intent. *)

type method_spec = {
  q_name : string;  (** expected method name (documentation / header hint) *)
  q_patterns : (Pattern.t * int) list;
      (** p̄(q) with occurrence counts t̄; t̄ = 0 is a bad pattern *)
  q_constraints : Constr.t list;  (** c̄(q) *)
  q_variants : (string * Pattern.t list) list;
      (** §VII future work — the pattern hierarchy: alternatives that
          realize the same semantics as a primary pattern (keyed by its
          id), consulted only with [~use_variants:true].  A variant's
          node indices must align with the primary's. *)
}

type spec = {
  a_id : string;
  a_title : string;
  a_methods : method_spec list;
  enforce_headers : bool;
      (** when set, an expected method may only be paired with a
          submission method of the same name (the paper's "common
          practice" remark). *)
}

type truncation =
  | Matcher_exhausted of string
      (** the embedding search for this pattern id was cut short by the
          fuel budget or the {!Matcher.max_embeddings} backstop *)
  | Pairing_exhausted
      (** the combination search stopped before trying every pairing *)

val string_of_truncation : truncation -> string
(** ["matcher:<pattern id>"] / ["pairing"]. *)

type result = {
  comments : Feedback.comment list;
  score : float;  (** Λ of [comments] *)
  pairing : (string * string option) list;
      (** chosen combination: expected method → submission method;
          [None] when the submission lacks a method to pair *)
  truncations : truncation list;
      (** budget cuts incurred while producing this result, in first-hit
          order; empty = the full search ran and the result is exact *)
}

val missing_comments : method_spec -> Feedback.comment list
(** The [Not_expected] comment set of an expected method paired with no
    submission method — the paper's "does not adhere to the
    specification" case.  Exposed for degraded-mode pipelines that must
    report on methods they could not grade. *)

val grade :
  ?budget:Jfeed_budget.Budget.t ->
  ?normalize:bool ->
  ?use_variants:bool ->
  ?inline_helpers:bool ->
  spec ->
  Jfeed_java.Ast.program ->
  result
(** Grade a parsed submission.  [?normalize] (default off) applies
    {!Jfeed_java.Normalize.flip_negated_else} first; [?use_variants]
    (default off) consults the pattern hierarchy when a primary pattern
    does not occur the expected number of times; [?inline_helpers]
    (default off) inlines student-invented helper methods not among the
    expected methods ({!Jfeed_java.Inline}).  All three are the paper's
    §VII future-work extensions; the defaults reproduce the published
    system.

    [?budget] bounds the work: the embedding search spends
    {!Jfeed_budget.Budget.Matcher} fuel, the lazily-enumerated pairing
    search spends {!Jfeed_budget.Budget.Pairing} fuel, and every cut is
    reported in the result's [truncations] — a starved budget degrades
    the answer, it never crashes or silently drops work.  At least one
    combination is always evaluated, so a result always exists. *)

val grade_source :
  ?budget:Jfeed_budget.Budget.t ->
  ?normalize:bool ->
  ?use_variants:bool ->
  ?inline_helpers:bool ->
  spec ->
  string ->
  (result, string) Result.t
(** Parse then grade; [Error] carries a human-readable parse
    diagnostic. *)
