(** Submission matching — the paper's Algorithm 2.

    A grading specification lists the *expected methods* Q of an
    assignment; each expected method carries the patterns that apply to
    it (with their expected occurrence counts t̄) and the constraints
    that correlate those patterns.  Grading tries every injective
    combination of expected methods with the submission's methods and
    keeps the combination whose feedback maximizes the cost function Λ —
    the combination assumed to reflect the student's intent. *)

type method_spec = {
  q_name : string;  (** expected method name (documentation / header hint) *)
  q_patterns : (Pattern.t * int) list;
      (** p̄(q) with occurrence counts t̄; t̄ = 0 is a bad pattern *)
  q_constraints : Constr.t list;  (** c̄(q) *)
  q_variants : (string * Pattern.t list) list;
      (** §VII future work — the pattern hierarchy: alternatives that
          realize the same semantics as a primary pattern (keyed by its
          id), consulted only with [~use_variants:true].  A variant's
          node indices must align with the primary's. *)
}

type spec = {
  a_id : string;
  a_title : string;
  a_methods : method_spec list;
  enforce_headers : bool;
      (** when set, an expected method may only be paired with a
          submission method of the same name (the paper's "common
          practice" remark). *)
}

type result = {
  comments : Feedback.comment list;
  score : float;  (** Λ of [comments] *)
  pairing : (string * string option) list;
      (** chosen combination: expected method → submission method;
          [None] when the submission lacks a method to pair *)
}

val grade :
  ?normalize:bool ->
  ?use_variants:bool ->
  ?inline_helpers:bool ->
  spec ->
  Jfeed_java.Ast.program ->
  result
(** Grade a parsed submission.  [?normalize] (default off) applies
    {!Jfeed_java.Normalize.flip_negated_else} first; [?use_variants]
    (default off) consults the pattern hierarchy when a primary pattern
    does not occur the expected number of times; [?inline_helpers]
    (default off) inlines student-invented helper methods not among the
    expected methods ({!Jfeed_java.Inline}).  All three are the paper's
    §VII future-work extensions; the defaults reproduce the published
    system. *)

val grade_source :
  ?normalize:bool ->
  ?use_variants:bool ->
  ?inline_helpers:bool ->
  spec ->
  string ->
  (result, string) Result.t
(** Parse then grade; [Error] carries a human-readable parse
    diagnostic. *)
