(** Patterns (paper Definitions 4 and 5).

    A pattern is a small graph whose nodes carry incomplete Java
    expressions — an exact template [r] (the correct form) and an optional
    approximate template [r̂] (a loosened form that recognizes the snippet
    while flagging it incorrect) — plus natural-language feedback
    templates.  Feedback templates use the same [%x%] placeholders as
    expression templates and are instantiated with the variable mapping γ
    of the embedding. *)

open Jfeed_exprmatch

type pnode = {
  pn_type : Jfeed_pdg.Epdg.node_type option;
      (** [None] is the paper's [Untyped]: matches any node type. *)
  exact : Template.t;  (** r — matches ⇒ node is correct *)
  approx : Template.t option;  (** r̂ — matches ⇒ node present but incorrect *)
  fb_correct : string option;  (** f_c *)
  fb_incorrect : string option;  (** f_i *)
}

type t = {
  id : string;  (** e.g. ["p_odd_access"] *)
  description : string;
  nodes : pnode array;
  edges : (int * int * Jfeed_pdg.Epdg.edge_type) list;
  fb_present : string;  (** f_p *)
  fb_missing : string;  (** f_m *)
}

let node ?typ ?approx ?ok ?bad exact =
  {
    pn_type = typ;
    exact;
    approx;
    fb_correct = ok;
    fb_incorrect = bad;
  }

(** All pattern variables: the union of the exact templates' variables, in
    first-occurrence order. *)
let vars t =
  Array.fold_left
    (fun acc pn ->
      List.fold_left
        (fun acc x -> if List.mem x acc then acc else acc @ [ x ])
        acc (Template.vars pn.exact))
    [] t.nodes

(** Structural sanity checks: edge endpoints in range, no self edges, and
    each node's approximate variables a subset of its exact variables
    (Definition 4 requires Y ⊆ X).  Returns the list of problems found. *)
let validate t =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let n = Array.length t.nodes in
  if n = 0 then add "pattern %s has no nodes" t.id;
  List.iter
    (fun (s, d, _) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        add "pattern %s: edge (%d, %d) out of range" t.id s d;
      if s = d then add "pattern %s: self edge on node %d" t.id s)
    t.edges;
  Array.iteri
    (fun i pn ->
      match pn.approx with
      | None -> ()
      | Some a ->
          let xs = Template.vars pn.exact in
          List.iter
            (fun y ->
              if not (List.mem y xs) then
                add
                  "pattern %s node %d: approximate variable %s not in exact \
                   template"
                  t.id i y)
            (Template.vars a))
    t.nodes;
  List.rev !problems
