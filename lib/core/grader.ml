(** Submission matching — the paper's Algorithm 2.

    A grading specification lists the *expected methods* Q of an
    assignment; each expected method carries the patterns that apply to it
    (with their expected occurrence counts t̄) and the constraints that
    correlate those patterns.  Grading tries every injective combination
    of expected methods with the submission's methods and keeps the
    combination whose feedback maximizes the cost function Λ — the
    combination assumed to reflect the student's intent. *)

open Jfeed_java
module Epdg = Jfeed_pdg.Epdg

type method_spec = {
  q_name : string;  (** expected method name (documentation / header hint) *)
  q_patterns : (Pattern.t * int) list;  (** p̄(q) with occurrence counts t̄ *)
  q_constraints : Constr.t list;  (** c̄(q) *)
  q_variants : (string * Pattern.t list) list;
      (** §VII future work — the pattern hierarchy: alternative patterns
          that realize the same semantics as a primary pattern (keyed by
          its id).  Only consulted when grading with [~use_variants:true];
          a variant's embeddings are stored under the primary id, so its
          node indices must align with the primary's for the constraints
          to keep their meaning. *)
}

type spec = {
  a_id : string;
  a_title : string;
  a_methods : method_spec list;
  enforce_headers : bool;
      (** when set, an expected method may only be paired with a submission
          method of the same name (the paper's "common practice" remark). *)
}

type truncation =
  | Matcher_exhausted of string
      (** the embedding search for this pattern id was cut short *)
  | Pairing_exhausted
      (** the combination search stopped before trying every pairing *)

type result = {
  comments : Feedback.comment list;
  score : float;  (** Λ of [comments] *)
  pairing : (string * string option) list;
      (** chosen combination: expected method → submission method *)
  truncations : truncation list;
      (** budget cuts incurred while producing this result, in first-hit
          order; empty = the full search ran *)
}

let string_of_truncation = function
  | Matcher_exhausted id -> "matcher:" ^ id
  | Pairing_exhausted -> "pairing"

let missing_comments (q : method_spec) =
  List.map
    (fun ((p : Pattern.t), _) ->
      {
        Feedback.about = `Pattern p.Pattern.id;
        in_method = q.q_name;
        verdict = Feedback.Not_expected;
        messages = [ p.Pattern.fb_missing ];
      })
    q.q_patterns
  @ List.map
      (fun (c : Constr.t) ->
        {
          Feedback.about = `Constraint c.Constr.c_id;
          in_method = q.q_name;
          verdict = Feedback.Not_expected;
          messages = [ c.Constr.description ];
        })
      q.q_constraints

let grade_method ?budget ~cache ~note ~use_variants (q : method_spec)
    (h : string) (epdg : Epdg.t) =
  (* 2.1: match every pattern, store embeddings in m̄.  With variants
     enabled, a primary pattern that does not occur the expected number
     of times may be replaced by the first variant that does.  The memo
     cache makes re-examining a (pattern, method) pair — every pairing
     combination does, and the variants layer re-tries primaries — a
     lookup instead of a fresh backtracking search. *)
  let match_pattern (p : Pattern.t) =
    let s = Matcher.embeddings_budgeted ?budget ~cache p epdg in
    if s.Matcher.exhausted then note (Matcher_exhausted p.Pattern.id);
    s.Matcher.found
  in
  let stored = Hashtbl.create 8 in
  let pattern_comments =
    List.map
      (fun ((p : Pattern.t), t) ->
        let ms = match_pattern p in
        let found = List.length (Matcher.occurrences ms) in
        let chosen_p, chosen_ms =
          if found = t || not use_variants then (p, ms)
          else
            let rec try_variants = function
              | [] -> (p, ms)
              | v :: rest ->
                  let vms = match_pattern v in
                  if List.length (Matcher.occurrences vms) = t then (v, vms)
                  else try_variants rest
            in
            try_variants
              (Option.value ~default:[]
                 (List.assoc_opt p.Pattern.id q.q_variants))
        in
        Hashtbl.replace stored p.Pattern.id chosen_ms;
        let c =
          Feedback.of_pattern ~in_method:h chosen_p ~expected:t chosen_ms
        in
        (* Report under the primary pattern's id so downstream tooling and
           the constraints see a stable name. *)
        { c with Feedback.about = `Pattern p.Pattern.id })
      q.q_patterns
  in
  let lookup pid =
    match Hashtbl.find_opt stored pid with Some ms -> ms | None -> []
  in
  (* A pattern "was found as expected" when its comment is not
     Not_expected. *)
  let verdict_of = Hashtbl.create 8 in
  List.iter
    (fun (c : Feedback.comment) ->
      match c.Feedback.about with
      | `Pattern id -> Hashtbl.replace verdict_of id c.Feedback.verdict
      | `Constraint _ -> ())
    pattern_comments;
  let pattern_ok pid =
    match Hashtbl.find_opt verdict_of pid with
    | Some Feedback.Not_expected -> false
    | Some _ -> true
    | None -> not (List.is_empty (lookup pid))
  in
  (* 2.2: constraints. *)
  let constraint_comments =
    List.map
      (fun c -> Constr.to_comment c ~in_method:h epdg lookup ~pattern_ok)
      q.q_constraints
  in
  pattern_comments @ constraint_comments

exception Pairing_cut
(* Unwinds the combination search when the pairing fuel runs out; the
   best combination found so far stands. *)

let grade ?budget ?(normalize = false) ?(use_variants = false)
    ?(inline_helpers = false) (spec : spec) (prog : Ast.program) =
  (* Optional §VII extensions: else-polarity normalization, the pattern
     hierarchy, and inlining of non-expected helper methods.  All default
     to off — the paper's system. *)
  let prog = if normalize then Normalize.flip_negated_else prog else prog in
  let prog =
    if inline_helpers then
      Inline.inline_unexpected
        ~expected:(List.map (fun q -> q.q_name) spec.a_methods)
        prog
    else prog
  in
  (* 1: one EPDG per submission method. *)
  let graphs = Epdg.of_program prog in
  let method_names = List.map fst graphs in
  (* One embedding cache per grading call: every pairing combination
     re-examines the same (pattern, method) searches. *)
  let cache = Matcher.Cache.create () in
  let truncs = ref [] in
  let note t = if not (List.mem t !truncs) then truncs := t :: !truncs in
  let fuel_ok () =
    match budget with
    | None -> true
    | Some b ->
        let ok =
          Jfeed_budget.Budget.spend b Jfeed_budget.Budget.Pairing 1
        in
        if not ok then note Pairing_exhausted;
        ok
  in
  (* 2: best combination by Λ.  Pairings of expected methods with
     distinct submission methods are enumerated lazily — materializing
     the combination list first is exponential in the method count, the
     exact blowup the budget exists to bound.  When there are fewer
     submission methods than expected ones, the unmatchable expected
     methods are paired with [None] (their patterns will all be
     Not_expected — the paper's "does not adhere to the specification"
     case). *)
  let best = ref None in
  let evaluated = ref 0 in
  let consider combo =
    incr evaluated;
    let comments =
      List.concat_map
        (fun (q, h_opt) ->
          match h_opt with
          | None -> missing_comments q
          | Some h ->
              grade_method ?budget ~cache ~note ~use_variants q h
                (List.assoc h graphs))
        combo
    in
    let score = Feedback.score comments in
    let better =
      match !best with None -> true | Some (s, _, _) -> score > s
    in
    if better then
      best :=
        Some (score, comments, List.map (fun (q, h) -> (q.q_name, h)) combo)
  in
  let rec go acc qs available =
    match qs with
    | [] -> consider (List.rev acc)
    | q :: rest ->
        List.iter
          (fun h ->
            if (not spec.enforce_headers) || h = q.q_name then begin
              if not (fuel_ok ()) then raise Pairing_cut;
              go
                ((q, Some h) :: acc)
                rest
                (List.filter (fun h' -> h' <> h) available)
            end)
          available;
        if List.length available < List.length qs then begin
          if not (fuel_ok ()) then raise Pairing_cut;
          go ((q, None) :: acc) rest available
        end
  in
  let tr = Jfeed_trace.Trace.current () in
  Jfeed_trace.Trace.span tr "pairing" (fun () ->
      (try go [] spec.a_methods method_names with Pairing_cut -> ());
      (* No combination completed — header enforcement filtered
         everything, the submission has no methods, or the fuel died
         first.  Grade the all-[None] combination so a result always
         exists. *)
      if !evaluated = 0 then
        consider (List.map (fun q -> (q, None)) spec.a_methods);
      Jfeed_trace.Trace.add_attr tr "combos" (string_of_int !evaluated));
  match !best with
  | Some (score, comments, pairing) ->
      { comments; score; pairing; truncations = List.rev !truncs }
  | None ->
      { comments = []; score = 0.0; pairing = []; truncations = List.rev !truncs }

(** Parse then grade; [Error] carries a human-readable parse diagnostic. *)
let grade_source ?budget ?normalize ?use_variants ?inline_helpers spec src =
  match Parser.parse_program src with
  | prog ->
      Ok (grade ?budget ?normalize ?use_variants ?inline_helpers spec prog)
  | exception Parser.Parse_error (msg, line, col) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | exception Lexer.Lex_error (msg, line, col) ->
      Error (Printf.sprintf "lex error at %d:%d: %s" line col msg)
