(** Compiled match plans — see plan.mli. *)

module G = Jfeed_graph.Digraph
module Epdg = Jfeed_pdg.Epdg

type check = { c_other : int; c_outgoing : bool; c_ty : Epdg.edge_type }

type t = {
  pattern : Pattern.t;
  n : int;
  n_edges : int;
  incident : (int * int * Epdg.edge_type) list array;
      (* pattern edges touching each node, both directions *)
  degree : int array;  (* incident-edge count per pattern node *)
  deg_desc : int array;  (* [degree] sorted descending *)
  type_need : int array;  (* typed pattern nodes per node-type ordinal *)
  vars_exact : string list array;  (* Template.vars of each exact template *)
}

let n_node_types = 6

let int_of_node_type : Epdg.node_type -> int = function
  | Epdg.Assign -> 0
  | Epdg.Break -> 1
  | Epdg.Call -> 2
  | Epdg.Cond -> 3
  | Epdg.Decl -> 4
  | Epdg.Return -> 5

let pattern t = t.pattern
let template_vars t u = t.vars_exact.(u)

let compile (p : Pattern.t) =
  let n = Array.length p.Pattern.nodes in
  let incident = Array.make (max 1 n) [] in
  List.iter
    (fun ((s, d, _) as e) ->
      incident.(s) <- e :: incident.(s);
      if d <> s then incident.(d) <- e :: incident.(d))
    p.Pattern.edges;
  let degree = Array.init (max 1 n) (fun u -> List.length incident.(u)) in
  let degree = if n = 0 then [||] else Array.sub degree 0 n in
  let deg_desc = Array.copy degree in
  Array.sort (fun a b -> compare b a) deg_desc;
  let type_need = Array.make n_node_types 0 in
  Array.iter
    (fun (pn : Pattern.pnode) ->
      match pn.Pattern.pn_type with
      | None -> ()
      | Some ty ->
          let i = int_of_node_type ty in
          type_need.(i) <- type_need.(i) + 1)
    p.Pattern.nodes;
  {
    pattern = p;
    n;
    n_edges = List.length p.Pattern.edges;
    incident;
    degree;
    deg_desc;
    type_need;
    vars_exact =
      Array.map
        (fun (pn : Pattern.pnode) ->
          Jfeed_exprmatch.Template.vars pn.Pattern.exact)
        p.Pattern.nodes;
  }

(* The necessary conditions an embedding's existence imposes on target
   index sizes, cheapest first.  Injectivity makes each one sound:
   - every typed pattern node needs its own same-type graph node;
   - every pattern edge maps to a distinct labelled graph edge;
   - the node with the k-th largest pattern degree needs a distinct
     graph node of at least that degree, so the k-th largest graph
     degree must dominate it (a Hall-style counting argument). *)
let prefilter t (epdg : Epdg.t) =
  let g = epdg.Epdg.graph in
  t.n <= G.node_count g
  && t.n_edges <= G.edge_count g
  && (let ok = ref true in
      Array.iteri
        (fun i need ->
          if need > epdg.Epdg.type_counts.(i) then ok := false)
        t.type_need;
      !ok)
  &&
  let gdeg = Epdg.degrees_desc epdg in
  let ok = ref true in
  Array.iteri
    (fun k d -> if d > gdeg.(k) then ok := false)
    t.deg_desc;
  !ok

type step = {
  s_u : int;
  s_checks : check list;
  s_cands : G.node list;
}

let steps_of_order t (epdg : Epdg.t) order =
  let g = epdg.Epdg.graph in
  let planned = Array.make (max 1 t.n) false in
  Array.map
    (fun u ->
      let checks =
        List.filter_map
          (fun (s, d, ty) ->
            if s = u && planned.(d) then
              Some { c_other = d; c_outgoing = true; c_ty = ty }
            else if d = u && planned.(s) then
              Some { c_other = s; c_outgoing = false; c_ty = ty }
            else None)
          t.incident.(u)
      in
      planned.(u) <- true;
      {
        s_u = u;
        s_checks = checks;
        s_cands =
          (match t.pattern.Pattern.nodes.(u).Pattern.pn_type with
          | None -> G.nodes g
          | Some ty -> Epdg.nodes_of_type epdg ty);
      })
    order

let steps t (epdg : Epdg.t) =
  let g = epdg.Epdg.graph in
  let cand_count u =
    match t.pattern.Pattern.nodes.(u).Pattern.pn_type with
    | None -> G.node_count g
    | Some ty -> Epdg.count_of_type epdg ty
  in
  let counts = Array.init t.n cand_count in
  let planned = Array.make t.n false in
  let order = Array.make t.n 0 in
  for k = 0 to t.n - 1 do
    (* Greedy: joinable first (edges to already-planned nodes prune a
       candidate immediately), then the fewest candidates (rarest node
       type in this target), then the static pattern degree, then the
       lowest index — a total, deterministic key. *)
    let best = ref (-1) and best_key = ref (min_int, min_int, min_int, 0) in
    for u = 0 to t.n - 1 do
      if not planned.(u) then begin
        let adjacency =
          List.fold_left
            (fun a (s, d, _) ->
              if (s = u && planned.(d)) || (d = u && planned.(s)) then a + 1
              else a)
            0 t.incident.(u)
        in
        let key = (adjacency, -counts.(u), t.degree.(u), -u) in
        if !best < 0 || key > !best_key then begin
          best := u;
          best_key := key
        end
      end
    done;
    let u = !best in
    order.(k) <- u;
    planned.(u) <- true
  done;
  steps_of_order t epdg order

(* ------------------------------------------------------------------ *)
(* Plan memo: compile once per pattern.  Per-domain (Domain.DLS) so the
   match path never takes a lock; Jfeed_kb.Bundles pre-compiles every
   shipped pattern at bundle load on the main domain, and a batch worker
   domain re-compiles each pattern it meets at most once (compilation is
   O(pattern size), far below one search).  Keyed by pattern id with a
   physical-equality check, so distinct pattern values sharing an id
   (test fixtures) stay distinct. *)

let memo_key :
    (string, (Pattern.t * t) list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let of_pattern (p : Pattern.t) =
  let tbl = Domain.DLS.get memo_key in
  let entries =
    match Hashtbl.find_opt tbl p.Pattern.id with Some l -> l | None -> []
  in
  match List.find_opt (fun (p', _) -> p' == p) entries with
  | Some (_, plan) -> plan
  | None ->
      let plan = compile p in
      Hashtbl.replace tbl p.Pattern.id ((p, plan) :: entries);
      plan

(* ------------------------------------------------------------------ *)
(* Process-wide counters (serve metrics exposition). *)

let n_searches = Atomic.make 0
let n_rejects = Atomic.make 0
let n_steps = Atomic.make 0

let searches () = Atomic.get n_searches
let prefilter_rejects () = Atomic.get n_rejects
let steps_spent () = Atomic.get n_steps
let note_search () = Atomic.incr n_searches
let note_reject () = Atomic.incr n_rejects
let note_steps n = ignore (Atomic.fetch_and_add n_steps n)
