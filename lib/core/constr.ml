(** Constraints correlating patterns (paper Definitions 8–10).

    Constraints are checked against the *stored embeddings* of the
    patterns they reference (Algorithm 2, step 2.2): a constraint holds
    when some combination of embeddings satisfies it. *)

open Jfeed_exprmatch
module G = Jfeed_graph.Digraph
module Epdg = Jfeed_pdg.Epdg

type kind =
  | Equality of { pi : string; ui : int; pj : string; uj : int }
      (** ι_i(u_i) = ι_j(u_j) — two pattern nodes hit the same graph node. *)
  | Edge_exists of {
      pi : string;
      ui : int;
      pj : string;
      uj : int;
      edge : Epdg.edge_type;
    }  (** (ι_i(u_i), ι_j(u_j), t_e) ∈ E. *)
  | Containment of {
      main : string;
      u : int;
      template : Template.t;
      support : string list;
    }
      (** the node matching [u] of [main] also matches [template] under the
          union of the main and supporting embeddings' variable mappings. *)

type t = {
  c_id : string;
  description : string;
  kind : kind;
  fb_ok : string;
  fb_fail : string;
}

let equality ~id ~desc ?(ok = "") ?(fail = "") (pi, ui) (pj, uj) =
  {
    c_id = id;
    description = desc;
    kind = Equality { pi; ui; pj; uj };
    fb_ok = ok;
    fb_fail = fail;
  }

let edge ~id ~desc ?(ok = "") ?(fail = "") (pi, ui) (pj, uj) edge =
  {
    c_id = id;
    description = desc;
    kind = Edge_exists { pi; ui; pj; uj; edge };
    fb_ok = ok;
    fb_fail = fail;
  }

let containment ~id ~desc ?(ok = "") ?(fail = "") (main, u) template support =
  {
    c_id = id;
    description = desc;
    kind = Containment { main; u; template; support };
    fb_ok = ok;
    fb_fail = fail;
  }

let referenced_patterns c =
  match c.kind with
  | Equality { pi; pj; _ } | Edge_exists { pi; pj; _ } -> [ pi; pj ]
  | Containment { main; support; _ } -> main :: support

(* Cartesian product of embedding choices for the supporting patterns. *)
let rec product = function
  | [] -> [ [] ]
  | choices :: rest ->
      List.concat_map
        (fun c -> List.map (fun tail -> c :: tail) (product rest))
        choices

(** [check c epdg lookup] — [lookup p] returns the stored embeddings of
    pattern [p] in [epdg] (Algorithm 2's m̄). *)
let check c (epdg : Epdg.t) (lookup : string -> Matcher.embedding list) =
  match c.kind with
  | Equality { pi; ui; pj; uj } ->
      List.exists
        (fun mi ->
          match Matcher.image mi ui with
          | None -> false
          | Some gi ->
              List.exists
                (fun mj -> Matcher.image mj uj = Some gi)
                (lookup pj))
        (lookup pi)
  | Edge_exists { pi; ui; pj; uj; edge } ->
      List.exists
        (fun mi ->
          match Matcher.image mi ui with
          | None -> false
          | Some gi ->
              List.exists
                (fun mj ->
                  match Matcher.image mj uj with
                  | None -> false
                  | Some gj -> G.mem_edge epdg.Epdg.graph gi gj edge)
                (lookup pj))
        (lookup pi)
  | Containment { main; u; template; support } ->
      let support_choices = List.map lookup support in
      List.exists
        (fun (m : Matcher.embedding) ->
          match Matcher.image m u with
          | None -> false
          | Some gv ->
              let content = Epdg.node_text epdg gv in
              List.exists
                (fun supports ->
                  let gamma =
                    m.Matcher.gamma
                    @ List.concat_map
                        (fun (s : Matcher.embedding) -> s.Matcher.gamma)
                        supports
                  in
                  Template.matches template ~gamma content)
                (product support_choices))
        (lookup main)

(** Constraint feedback (Algorithm 2, step 2.2): [Not_expected] when any
    referenced pattern was not found as expected, otherwise
    [Correct]/[Incorrect] by whether the constraint holds. *)
let to_comment c ~in_method epdg lookup ~pattern_ok =
  let refs = referenced_patterns c in
  if not (List.for_all pattern_ok refs) then
    {
      Feedback.about = `Constraint c.c_id;
      in_method;
      verdict = Feedback.Not_expected;
      messages = [ c.description ];
    }
  else if check c epdg lookup then
    {
      Feedback.about = `Constraint c.c_id;
      in_method;
      verdict = Feedback.Correct;
      messages = [ (if c.fb_ok = "" then c.description else c.fb_ok) ];
    }
  else
    {
      Feedback.about = `Constraint c.c_id;
      in_method;
      verdict = Feedback.Incorrect;
      messages = [ (if c.fb_fail = "" then c.description else c.fb_fail) ];
    }
