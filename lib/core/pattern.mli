(** Patterns (paper Definitions 4 and 5).

    A pattern is a small graph whose nodes carry incomplete Java
    expressions — an exact template [r] (the correct form) and an optional
    approximate template [r̂] (a loosened form that recognizes the snippet
    while flagging it incorrect) — plus natural-language feedback
    templates.  Feedback templates use the same [%x%] placeholders as
    expression templates and are instantiated with the variable mapping γ
    of the embedding. *)

type pnode = {
  pn_type : Jfeed_pdg.Epdg.node_type option;
      (** [None] is the paper's [Untyped]: matches any node type. *)
  exact : Jfeed_exprmatch.Template.t;  (** r — matches ⇒ node is correct *)
  approx : Jfeed_exprmatch.Template.t option;
      (** r̂ — matches ⇒ node present but incorrect *)
  fb_correct : string option;  (** f_c *)
  fb_incorrect : string option;  (** f_i *)
}

type t = {
  id : string;  (** e.g. ["p_odd_access"] *)
  description : string;
  nodes : pnode array;
  edges : (int * int * Jfeed_pdg.Epdg.edge_type) list;
      (** pattern-node-index pairs *)
  fb_present : string;  (** f_p — delivered when the pattern is found *)
  fb_missing : string;  (** f_m — delivered when it is not *)
}

val node :
  ?typ:Jfeed_pdg.Epdg.node_type ->
  ?approx:Jfeed_exprmatch.Template.t ->
  ?ok:string ->
  ?bad:string ->
  Jfeed_exprmatch.Template.t ->
  pnode
(** [node exact] builds a pattern node; [?typ] defaults to Untyped,
    [?ok]/[?bad] are the per-node feedback templates f_c / f_i. *)

val vars : t -> string list
(** All pattern variables: the union of the exact templates' variables,
    in first-occurrence order. *)

val validate : t -> string list
(** Structural sanity checks: edge endpoints in range, no self edges, and
    each node's approximate variables a subset of its exact variables
    (Definition 4 requires Y ⊆ X).  Returns the problems found (empty =
    well-formed). *)
