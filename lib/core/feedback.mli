(** Feedback comments and the cost function Λ (paper §V, equation 3). *)

type verdict =
  | Correct  (** λ = 1 *)
  | Incorrect  (** λ = 0.5 — recognized with problems *)
  | Not_expected  (** λ = 0 — missing, or found a wrong number of times *)

type comment = {
  about : [ `Pattern of string | `Constraint of string ];
  in_method : string;  (** submission method the comment refers to *)
  verdict : verdict;
  messages : string list;  (** instantiated natural-language feedback *)
}

val lambda : verdict -> float
(** λ of equation 3. *)

val score : comment list -> float
(** Λ(B) — guides the best-effort choice among method combinations. *)

val string_of_verdict : verdict -> string

val of_pattern :
  in_method:string ->
  Pattern.t ->
  expected:int ->
  Matcher.embedding list ->
  comment
(** ProvideFeedback (Algorithm 2, line 15).  [expected] is the occurrence
    count t̄(q, p); [expected = 0] encodes a "bad pattern" the student
    must avoid.  Occurrence count ≠ t̄ yields [Not_expected]; otherwise
    the verdict is [Correct] iff every occurrence is fully exact. *)

val render : comment -> string
(** Human-readable rendering of one comment. *)

val render_all : comment list -> string

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal. *)

val comment_to_json : comment -> string

val to_json : comment list -> string
(** The whole feedback set as a JSON document
    ([{"score":…,"max":…,"comments":[…]}]) for LMS integration. *)
