(** Constraints correlating patterns (paper Definitions 8–10).

    Constraints are checked against the *stored embeddings* of the
    patterns they reference (Algorithm 2, step 2.2): a constraint holds
    when some combination of embeddings satisfies it. *)

type kind =
  | Equality of { pi : string; ui : int; pj : string; uj : int }
      (** ι_i(u_i) = ι_j(u_j) — two pattern nodes hit the same graph node
          (Definition 8). *)
  | Edge_exists of {
      pi : string;
      ui : int;
      pj : string;
      uj : int;
      edge : Jfeed_pdg.Epdg.edge_type;
    }
      (** (ι_i(u_i), ι_j(u_j), t_e) ∈ E (Definition 9). *)
  | Containment of {
      main : string;
      u : int;
      template : Jfeed_exprmatch.Template.t;
      support : string list;
    }
      (** the node matching [u] of [main] also matches [template] under
          the union of the main and supporting embeddings' variable
          mappings (Definition 10).  Patterns joined this way must use
          disjoint variable alphabets. *)

type t = {
  c_id : string;
  description : string;
  kind : kind;
  fb_ok : string;
  fb_fail : string;
}

val equality :
  id:string ->
  desc:string ->
  ?ok:string ->
  ?fail:string ->
  string * int ->
  string * int ->
  t

val edge :
  id:string ->
  desc:string ->
  ?ok:string ->
  ?fail:string ->
  string * int ->
  string * int ->
  Jfeed_pdg.Epdg.edge_type ->
  t

val containment :
  id:string ->
  desc:string ->
  ?ok:string ->
  ?fail:string ->
  string * int ->
  Jfeed_exprmatch.Template.t ->
  string list ->
  t

val referenced_patterns : t -> string list

val check :
  t -> Jfeed_pdg.Epdg.t -> (string -> Matcher.embedding list) -> bool
(** [check c epdg lookup] — [lookup p] returns the stored embeddings of
    pattern [p] in [epdg] (Algorithm 2's m̄). *)

val to_comment :
  t ->
  in_method:string ->
  Jfeed_pdg.Epdg.t ->
  (string -> Matcher.embedding list) ->
  pattern_ok:(string -> bool) ->
  Feedback.comment
(** Constraint feedback: [Not_expected] when any referenced pattern was
    not found as expected, otherwise [Correct]/[Incorrect] by whether the
    constraint holds. *)
