(** Grading budgets: a shared fuel pool with an optional CPU-time deadline.

    A single budget is threaded through every expensive stage of the
    grading pipeline — the backtracking embedding search
    ({!Jfeed_core.Matcher}), the method-pairing combination search
    ({!Jfeed_core.Grader}) and the interpreter's step loop
    ({!Jfeed_interp.Interp}) — so one submission can never consume more
    than a bounded amount of work, no matter which stage its pathology
    lives in.

    Exhaustion is never silent: each stage that asks for fuel after the
    pool is empty (or the deadline has passed) is recorded, and
    {!hits} reports them in first-hit order so callers can name the
    truncated stages in the degradation report
    ({!Jfeed_robust.Outcome}). *)

type stage =
  | Matcher  (** candidate-extension steps of the embedding search *)
  | Pairing  (** method combinations examined by Algorithm 2 *)
  | Interp  (** interpreter execution steps *)

type t

val unlimited : unit -> t
(** Never exhausts; still counts fuel spent. *)

val create : ?fuel:int -> ?deadline_s:float -> unit -> t
(** [create ~fuel ~deadline_s ()] exhausts after [fuel] units of work or
    after [deadline_s] seconds of CPU time ({!Sys.time}), whichever
    comes first.  Omitting either bound leaves that axis unlimited. *)

val spend : t -> stage -> int -> bool
(** [spend b stage n] burns [n] units; [false] when the budget is (or
    just became) exhausted, in which case [stage] is recorded as a hit.
    Callers must stop the work of [stage] when [spend] returns [false].
    The deadline is polled at most once every 1024 spends. *)

val check : t -> stage -> bool
(** Like {!spend} with [n = 0]: test (and record) exhaustion without
    consuming fuel. *)

val split : int -> ways:int -> int list
(** [split total ~ways] divides a fuel allowance into [ways] pools that
    {e sum exactly to [total]} — the first [total mod ways] pools get
    the extra unit; no fuel is lost to integer division.  Raises
    [Invalid_argument] when [ways <= 0].

    {b Parallel fuel accounting.}  The batch driver
    ({!Jfeed_robust.Pipeline.run_batch}) gives every submission its own
    fresh budget of the requested [--fuel], so the pool available to a
    worker domain is (items it grades) × [--fuel] and the pools across
    domains always sum to the global allowance (submissions × [--fuel])
    — {e at any [--jobs] value}.  [--fuel N] therefore means exactly the
    same bound per submission whether the batch runs on 1 domain or 16;
    dividing one allowance among cooperating consumers goes through
    [split] so the remainder is distributed, never dropped.  The CPU
    {e deadline} axis is the exception: {!create}'s [deadline_s] reads
    the process-wide CPU clock ({!Sys.time}), which advances [jobs]
    times faster under parallel grading — deadline-bounded runs are
    reproducible only at a fixed [--jobs], so the byte-identical
    guarantee is stated for fuel-only budgets. *)

val spent : t -> int
(** Total fuel consumed so far, across all stages. *)

val spent_by : t -> (string * int) list
(** Fuel consumed per stage, keyed by {!string_of_stage}, every stage
    present in declaration order (zeros included) — the tracing layer's
    per-stage fuel breakdown.  Sums to {!spent}. *)

val remaining : t -> int option
(** Fuel left, [None] when the fuel axis is unlimited. *)

val exhausted : t -> bool

val hits : t -> stage list
(** Stages that requested fuel after exhaustion, deduplicated, in
    first-hit order. *)

val string_of_stage : stage -> string
(** ["matcher"], ["pairing"], ["interp"]. *)
