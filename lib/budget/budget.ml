(** Grading budgets: a shared fuel pool with an optional CPU-time
    deadline, threaded through the matcher, the pairing search and the
    interpreter.  See budget.mli. *)

type stage = Matcher | Pairing | Interp

let string_of_stage = function
  | Matcher -> "matcher"
  | Pairing -> "pairing"
  | Interp -> "interp"

let int_of_stage = function Matcher -> 0 | Pairing -> 1 | Interp -> 2

let stages = [ Matcher; Pairing; Interp ]

type t = {
  fuel : int option;  (** total allowance; [None] = unlimited *)
  deadline : float option;  (** absolute {!Sys.time} cutoff *)
  mutable used : int;
  stage_used : int array;  (** fuel per {!stage}, indexed by {!int_of_stage} *)
  mutable dead : bool;  (** latched once either axis is exhausted *)
  mutable hit_list : stage list;  (** reverse first-hit order, deduped *)
}

let make fuel deadline =
  {
    fuel;
    deadline;
    used = 0;
    stage_used = Array.make 3 0;
    dead = false;
    hit_list = [];
  }

let unlimited () = make None None

let create ?fuel ?deadline_s () =
  let deadline = Option.map (fun s -> Sys.time () +. s) deadline_s in
  make fuel deadline

let record_hit b stage =
  if not (List.mem stage b.hit_list) then b.hit_list <- stage :: b.hit_list

(* Polling the clock on every interpreter step would dominate the step
   itself; the deadline only needs ~ms resolution, so poll every 1024
   spends. *)
let poll_mask = 1023

let over_deadline b =
  match b.deadline with
  | Some d when b.used land poll_mask = 0 -> Sys.time () > d
  | _ -> false

let spend b stage n =
  if b.dead then begin
    record_hit b stage;
    false
  end
  else begin
    b.used <- b.used + n;
    let i = int_of_stage stage in
    b.stage_used.(i) <- b.stage_used.(i) + n;
    let out_of_fuel =
      match b.fuel with Some f -> b.used > f | None -> false
    in
    if out_of_fuel || over_deadline b then begin
      b.dead <- true;
      record_hit b stage;
      false
    end
    else true
  end

let check b stage = spend b stage 0

let split total ~ways =
  if ways <= 0 then invalid_arg "Budget.split: ways must be positive";
  let q = total / ways and r = total mod ways in
  List.init ways (fun i -> q + if i < r then 1 else 0)

let spent b = b.used

let spent_by b =
  List.map
    (fun stage -> (string_of_stage stage, b.stage_used.(int_of_stage stage)))
    stages

let remaining b =
  Option.map (fun f -> max 0 (f - b.used)) b.fuel

let exhausted b = b.dead

let hits b = List.rev b.hit_list
