(** Big-step interpreter for the Java subset.

    Replaces the JVM for functional testing: programs print to a captured
    stdout, read files from a virtual file system through
    [java.util.Scanner], and run under a step budget so that the
    infinite-loop submissions the paper worries about terminate with a
    distinguishable outcome instead of hanging the harness. *)

open Jfeed_java
open Value

exception Runtime_error of string
exception Step_limit
exception Fuel_exhausted
(* Distinct from Step_limit: the per-run step ceiling says "this
   submission loops"; the shared fuel pool says "the grading budget for
   this submission is spent".  The pipeline degrades differently on
   each. *)

type config = {
  files : (string * string) list;  (** virtual file system: name → content *)
  max_steps : int;
}

let default_config = { files = []; max_steps = 1_000_000 }

type outcome = {
  stdout : string;
  result : Value.t option;  (** [None] when execution failed *)
  steps : int;
  error : string option;
      (** runtime error or ["step limit exceeded"] (≈ infinite loop) *)
}

type ctx = {
  methods : (string, Ast.meth) Hashtbl.t;
  config : config;
  budget : Jfeed_budget.Budget.t option;
      (** shared grading fuel pool; unlike [config.max_steps] (per run)
          it is spent across runs, unifying the interpreter's step
          budget with the matcher's and the pairing search's *)
  out : Buffer.t;
  mutable steps : int;
  mutable trace_sink : ((string * Value.t) list -> unit) option;
      (** when set, receives a name-sorted snapshot of the visible
          variables after every executed statement (CLARA-style variable
          traces). *)
}

(* Block-structured environments: a frame is a stack of scopes. *)
type _env = (string, Value.t) Hashtbl.t list

exception Break_exc
exception Continue_exc
exception Return_exc of Value.t

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let tick ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.config.max_steps then raise Step_limit;
  match ctx.budget with
  | Some b
    when not (Jfeed_budget.Budget.spend b Jfeed_budget.Budget.Interp 1) ->
      raise Fuel_exhausted
  | _ -> ()

let rec lookup env x =
  match env with
  | [] -> fail "variable %s is not defined" x
  | scope :: rest -> (
      match Hashtbl.find_opt scope x with
      | Some v -> v
      | None -> lookup rest x)

let rec update env x v =
  match env with
  | [] -> fail "variable %s is not defined" x
  | scope :: rest ->
      if Hashtbl.mem scope x then Hashtbl.replace scope x v
      else update rest x v

let declare env x v =
  match env with
  | scope :: _ -> Hashtbl.replace scope x v
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Numeric helpers (Java semantics)                                    *)

let as_number = function
  | Vint n -> `Int n
  | Vdouble f -> `Double f
  | Vchar c -> `Int (Char.code c)
  | v -> fail "expected a number, found %s" (type_name v)

let arith op a b =
  match (as_number a, as_number b) with
  | `Int x, `Int y -> (
      match op with
      | Ast.Add -> vint (x + y)
      | Ast.Sub -> vint (x - y)
      | Ast.Mul -> vint (x * y)
      | Ast.Div ->
          if y = 0 then fail "/ by zero" else vint (Stdlib.( / ) x y)
      | Ast.Mod -> if y = 0 then fail "%% by zero" else vint (x mod y)
      | Ast.Bit_and -> vint (x land y)
      | Ast.Bit_or -> vint (x lor y)
      | Ast.Bit_xor -> vint (x lxor y)
      | Ast.Shl -> vint (x lsl (y land 31))
      | Ast.Shr -> vint (x asr (y land 31))
      | Ast.Ushr -> vint (wrap32 ((x land 0xFFFFFFFF) lsr (y land 31)))
      | _ -> assert false)
  | (`Int _ | `Double _), (`Int _ | `Double _) -> (
      let x = match as_number a with `Int n -> float_of_int n | `Double f -> f in
      let y = match as_number b with `Int n -> float_of_int n | `Double f -> f in
      match op with
      | Ast.Add -> Vdouble (x +. y)
      | Ast.Sub -> Vdouble (x -. y)
      | Ast.Mul -> Vdouble (x *. y)
      | Ast.Div -> Vdouble (x /. y)
      | Ast.Mod -> Vdouble (Float.rem x y)
      | _ -> fail "bitwise operator on double")

let compare_values op a b =
  let x, y =
    match (as_number a, as_number b) with
    | `Int x, `Int y -> (float_of_int x, float_of_int y)
    | `Int x, `Double y -> (float_of_int x, y)
    | `Double x, `Int y -> (x, float_of_int y)
    | `Double x, `Double y -> (x, y)
  in
  Vbool
    (match op with
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | _ -> assert false)

let as_bool = function
  | Vbool b -> b
  | v -> fail "expected a boolean, found %s" (type_name v)

let as_int = function
  | Vint n -> n
  | Vchar c -> Char.code c
  | v -> fail "expected an int, found %s" (type_name v)

let as_double = function
  | Vdouble f -> f
  | Vint n -> float_of_int n
  | v -> fail "expected a double, found %s" (type_name v)

let default_value = function
  | Ast.Tprim "double" | Ast.Tprim "float" -> Vdouble 0.0
  | Ast.Tprim "boolean" -> Vbool false
  | Ast.Tprim "char" -> Vchar '\000'
  | Ast.Tprim _ -> Vint 0
  | Ast.Tclass _ | Ast.Tarray _ -> Vnull

(* ------------------------------------------------------------------ *)
(* Scanner / whitespace tokenization                                   *)

let split_tokens content =
  String.split_on_char '\n' content
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun s -> s <> "")

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec eval ctx env (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int_lit n -> vint n
  | Ast.Double_lit f -> Vdouble f
  | Ast.Bool_lit b -> Vbool b
  | Ast.Char_lit c -> Vchar c
  | Ast.Str_lit s -> Vstr s
  | Ast.Null_lit -> Vnull
  | Ast.Var x -> lookup env x
  | Ast.Field (obj, fld) -> eval_field ctx env obj fld
  | Ast.Index (arr, idx) -> (
      let a = eval ctx env arr in
      let i = as_int (eval ctx env idx) in
      match a with
      | Varr elems ->
          if i < 0 || i >= Array.length elems then
            fail "Index %d out of bounds for length %d" i (Array.length elems)
          else elems.(i)
      | Vnull -> fail "NullPointerException (array access)"
      | v -> fail "cannot index a %s" (type_name v))
  | Ast.Call (recv, name, args) -> eval_call ctx env recv name args
  | Ast.New (Tclass "File", [ path ]) -> eval ctx env path
  | Ast.New (Tclass "Scanner", [ src ]) -> (
      match eval ctx env src with
      | Vstr path -> (
          match List.assoc_opt path ctx.config.files with
          | Some content ->
              Vscanner { tokens = split_tokens content; closed = false }
          | None -> fail "FileNotFoundException: %s" path)
      | v -> fail "cannot build a Scanner from a %s" (type_name v))
  | Ast.New (t, _) -> fail "cannot instantiate %s" (Ast.string_of_typ t)
  | Ast.New_array (t, dims) ->
      let dims = List.map (fun d -> as_int (eval ctx env d)) dims in
      let rec build = function
        | [] -> default_value t
        | d :: rest ->
            if d < 0 then fail "NegativeArraySizeException: %d" d
            else Varr (Array.init d (fun _ -> build rest))
      in
      build dims
  | Ast.Array_lit elts -> Varr (Array.of_list (List.map (eval ctx env) elts))
  | Ast.Unary (op, e) -> (
      let v = eval ctx env e in
      match op with
      | Ast.Neg -> (
          match as_number v with
          | `Int n -> vint (-n)
          | `Double f -> Vdouble (-.f))
      | Ast.Uplus -> v
      | Ast.Not -> Vbool (not (as_bool v))
      | Ast.Bit_not -> vint (lnot (as_int v)))
  | Ast.Incdec (kind, target) ->
      let old = eval_lvalue_get ctx env target in
      let delta = match kind with
        | Ast.Pre_incr | Ast.Post_incr -> 1
        | Ast.Pre_decr | Ast.Post_decr -> -1
      in
      let updated =
        match as_number old with
        | `Int n -> vint (n + delta)
        | `Double f -> Vdouble (f +. float_of_int delta)
      in
      assign_lvalue ctx env target updated;
      (match kind with
      | Ast.Pre_incr | Ast.Pre_decr -> updated
      | Ast.Post_incr | Ast.Post_decr -> old)
  | Ast.Binary (Ast.And, a, b) ->
      if as_bool (eval ctx env a) then Vbool (as_bool (eval ctx env b))
      else Vbool false
  | Ast.Binary (Ast.Or, a, b) ->
      if as_bool (eval ctx env a) then Vbool true
      else Vbool (as_bool (eval ctx env b))
  | Ast.Binary (op, a, b) -> (
      let va = eval ctx env a in
      let vb = eval ctx env b in
      match op with
      | Ast.Add when (match (va, vb) with Vstr _, _ | _, Vstr _ -> true | _ -> false)
        ->
          Vstr (to_display va ^ to_display vb)
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Bit_and
      | Ast.Bit_or | Ast.Bit_xor | Ast.Shl | Ast.Shr | Ast.Ushr ->
          arith op va vb
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> compare_values op va vb
      | Ast.Eq -> Vbool (Value.equal va vb)
      | Ast.Ne -> Vbool (not (Value.equal va vb))
      | Ast.And | Ast.Or -> assert false)
  | Ast.Assign (op, lhs, rhs) ->
      let rv = eval ctx env rhs in
      let final =
        match op with
        | Ast.Set -> rv
        | _ ->
            let old = eval_lvalue_get ctx env lhs in
            let bin =
              match op with
              | Ast.Add_eq -> Ast.Add
              | Ast.Sub_eq -> Ast.Sub
              | Ast.Mul_eq -> Ast.Mul
              | Ast.Div_eq -> Ast.Div
              | Ast.Mod_eq -> Ast.Mod
              | Ast.Set -> assert false
            in
            if bin = Ast.Add && (match (old, rv) with Vstr _, _ -> true | _ -> false)
            then Vstr (to_display old ^ to_display rv)
            else arith bin old rv
      in
      assign_lvalue ctx env lhs final;
      final
  | Ast.Ternary (c, t, f) ->
      if as_bool (eval ctx env c) then eval ctx env t else eval ctx env f
  | Ast.Cast (Tprim ("int" | "long" | "short" | "byte"), e) -> (
      match as_number (eval ctx env e) with
      | `Int n -> vint n
      | `Double f -> vint (int_of_float (Float.trunc f)))
  | Ast.Cast (Tprim ("double" | "float"), e) ->
      Vdouble (as_double (eval ctx env e))
  | Ast.Cast (Tprim "char", e) -> (
      match as_number (eval ctx env e) with
      | `Int n -> Vchar (Char.chr (n land 0xFF))
      | `Double f -> Vchar (Char.chr (int_of_float f land 0xFF)))
  | Ast.Cast (t, e) ->
      ignore (Ast.string_of_typ t);
      eval ctx env e

and eval_lvalue_get ctx env = function
  | Ast.Var x -> lookup env x
  | e -> eval ctx env e

and assign_lvalue ctx env lhs v =
  match lhs with
  | Ast.Var x -> update env x v
  | Ast.Index (arr, idx) -> (
      let a = eval ctx env arr in
      let i = as_int (eval ctx env idx) in
      match a with
      | Varr elems ->
          if i < 0 || i >= Array.length elems then
            fail "Index %d out of bounds for length %d" i (Array.length elems)
          else elems.(i) <- v
      | Vnull -> fail "NullPointerException (array store)"
      | other -> fail "cannot index a %s" (type_name other))
  | _ -> fail "unsupported assignment target"

and eval_field ctx env obj fld =
  match (obj, fld) with
  | Ast.Var "Integer", "MAX_VALUE" -> Vint 0x7FFFFFFF
  | Ast.Var "Integer", "MIN_VALUE" -> Vint (-0x80000000)
  | Ast.Var "Math", "PI" -> Vdouble Float.pi
  | _, "length" -> (
      match eval ctx env obj with
      | Varr a -> Vint (Array.length a)
      | Vnull -> fail "NullPointerException (.length)"
      | v -> fail "%s has no field length" (type_name v))
  | Ast.Var "System", "out" -> Vnull (* only meaningful as a call receiver *)
  | _ -> fail "unsupported field access .%s" fld

and eval_call ctx env recv name args =
  tick ctx;
  match recv with
  | Some (Ast.Field (Ast.Var "System", "out")) -> (
      let vals = List.map (eval ctx env) args in
      match (name, vals) with
      | "println", [] ->
          Buffer.add_char ctx.out '\n';
          Vnull
      | "println", [ v ] ->
          Buffer.add_string ctx.out (to_display v);
          Buffer.add_char ctx.out '\n';
          Vnull
      | "print", [ v ] ->
          Buffer.add_string ctx.out (to_display v);
          Vnull
      | _ -> fail "unsupported System.out.%s/%d" name (List.length vals))
  | Some (Ast.Var "Math") -> (
      let vals = List.map (eval ctx env) args in
      match (name, vals) with
      | "pow", [ a; b ] -> Vdouble (Float.pow (as_double a) (as_double b))
      | "sqrt", [ a ] -> Vdouble (Float.sqrt (as_double a))
      | "abs", [ Vint n ] -> vint (abs n)
      | "abs", [ Vdouble f ] -> Vdouble (Float.abs f)
      | "floor", [ a ] -> Vdouble (Float.floor (as_double a))
      | "ceil", [ a ] -> Vdouble (Float.ceil (as_double a))
      | "log10", [ a ] -> Vdouble (Float.log10 (as_double a))
      | "log", [ a ] -> Vdouble (Float.log (as_double a))
      | "min", [ Vint a; Vint b ] -> Vint (min a b)
      | "max", [ Vint a; Vint b ] -> Vint (max a b)
      | "min", [ a; b ] -> Vdouble (Float.min (as_double a) (as_double b))
      | "max", [ a; b ] -> Vdouble (Float.max (as_double a) (as_double b))
      | _ -> fail "unsupported Math.%s/%d" name (List.length vals))
  | Some (Ast.Var "Integer") -> (
      let vals = List.map (eval ctx env) args in
      match (name, vals) with
      | "parseInt", [ Vstr s ] -> (
          match int_of_string_opt (String.trim s) with
          | Some n -> vint n
          | None -> fail "NumberFormatException: %S" s)
      | "toString", [ Vint n ] -> Vstr (string_of_int n)
      | _ -> fail "unsupported Integer.%s" name)
  | Some (Ast.Var "String") -> (
      let vals = List.map (eval ctx env) args in
      match (name, vals) with
      | "valueOf", [ v ] -> Vstr (to_display v)
      | _ -> fail "unsupported String.%s" name)
  | Some receiver_expr -> (
      let receiver = eval ctx env receiver_expr in
      let vals = List.map (eval ctx env) args in
      match receiver with
      | Vscanner sc -> scanner_call sc name vals
      | Vstr s -> string_call s name vals
      | Vnull -> fail "NullPointerException (method call .%s)" name
      | v -> fail "cannot call .%s on a %s" name (type_name v))
  | None -> (
      match Hashtbl.find_opt ctx.methods name with
      | None -> fail "unknown method %s" name
      | Some m ->
          let vals = List.map (eval ctx env) args in
          call_method ctx m vals)

and scanner_call sc name vals =
  let ensure_open () = if sc.closed then fail "Scanner is closed" in
  match (name, vals) with
  | "hasNext", [] ->
      ensure_open ();
      Vbool (sc.tokens <> [])
  | "hasNextInt", [] ->
      ensure_open ();
      Vbool
        (match sc.tokens with
        | t :: _ -> int_of_string_opt t <> None
        | [] -> false)
  | "next", [] -> (
      ensure_open ();
      match sc.tokens with
      | t :: rest ->
          sc.tokens <- rest;
          Vstr t
      | [] -> fail "NoSuchElementException")
  | "nextInt", [] -> (
      ensure_open ();
      match sc.tokens with
      | t :: rest -> (
          match int_of_string_opt t with
          | Some n ->
              sc.tokens <- rest;
              vint n
          | None -> fail "InputMismatchException: %S" t)
      | [] -> fail "NoSuchElementException")
  | "close", [] ->
      sc.closed <- true;
      Vnull
  | _ -> fail "unsupported Scanner.%s/%d" name (List.length vals)

and string_call s name vals =
  match (name, vals) with
  | "equals", [ Vstr t ] -> Vbool (s = t)
  | "equals", [ _ ] -> Vbool false
  | "equalsIgnoreCase", [ Vstr t ] ->
      Vbool (String.lowercase_ascii s = String.lowercase_ascii t)
  | "length", [] -> Vint (String.length s)
  | "charAt", [ Vint i ] ->
      if i < 0 || i >= String.length s then
        fail "StringIndexOutOfBoundsException: %d" i
      else Vchar s.[i]
  | "isEmpty", [] -> Vbool (s = "")
  | "concat", [ Vstr t ] -> Vstr (s ^ t)
  | "contains", [ Vstr t ] ->
      let re_free =
        let n = String.length t in
        let rec at i =
          if i + n > String.length s then false
          else if String.sub s i n = t then true
          else at (i + 1)
        in
        n = 0 || at 0
      in
      Vbool re_free
  | "trim", [] -> Vstr (String.trim s)
  | _ -> fail "unsupported String.%s/%d" name (List.length vals)

and call_method ctx (m : Ast.meth) vals =
  if List.length vals <> List.length m.Ast.m_params then
    fail "method %s expects %d arguments, got %d" m.Ast.m_name
      (List.length m.Ast.m_params) (List.length vals);
  let scope = Hashtbl.create 8 in
  List.iter2
    (fun (p : Ast.param) v -> Hashtbl.replace scope p.Ast.p_name v)
    m.Ast.m_params vals;
  match List.iter (exec ctx [ scope ]) m.Ast.m_body with
  | () -> Vnull
  | exception Return_exc v -> v

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

and snapshot env =
  let tbl = Hashtbl.create 16 in
  (* Inner scopes shadow outer ones: record innermost bindings only. *)
  List.iter
    (fun scope ->
      Hashtbl.iter
        (fun x v -> if not (Hashtbl.mem tbl x) then Hashtbl.add tbl x v)
        scope)
    env;
  Hashtbl.fold (fun x v acc -> (x, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

and exec ctx env (s : Ast.stmt) =
  tick ctx;
  exec_inner ctx env s;
  match ctx.trace_sink with
  | Some sink -> sink (snapshot env)
  | None -> ()

and exec_inner ctx env (s : Ast.stmt) =
  match s with
  | Ast.Sempty -> ()
  | Ast.Sblock body ->
      let scope = Hashtbl.create 4 in
      List.iter (exec ctx (scope :: env)) body
  | Ast.Sdecl decls ->
      List.iter
        (fun (d : Ast.var_decl) ->
          let v =
            match d.Ast.d_init with
            | Some e -> eval ctx env e
            | None -> default_value d.Ast.d_type
          in
          declare env d.Ast.d_name v)
        decls
  | Ast.Sexpr e -> ignore (eval ctx env e)
  | Ast.Sif (c, then_, else_) ->
      if as_bool (eval ctx env c) then exec_scoped ctx env then_
      else Option.iter (exec_scoped ctx env) else_
  | Ast.Swhile (c, body) -> (
      try
        while as_bool (eval ctx env c) do
          tick ctx;
          try exec_scoped ctx env body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Ast.Sdo (body, c) -> (
      try
        let continue_loop = ref true in
        while !continue_loop do
          tick ctx;
          (try exec_scoped ctx env body with Continue_exc -> ());
          continue_loop := as_bool (eval ctx env c)
        done
      with Break_exc -> ())
  | Ast.Sfor (init, cond, update, body) -> (
      let scope = Hashtbl.create 4 in
      let env' = scope :: env in
      (match init with
      | None -> ()
      | Some (Ast.For_decl decls) -> exec ctx env' (Ast.Sdecl decls)
      | Some (Ast.For_exprs es) ->
          List.iter (fun e -> ignore (eval ctx env' e)) es);
      let check () =
        match cond with None -> true | Some c -> as_bool (eval ctx env' c)
      in
      try
        while check () do
          tick ctx;
          (try exec_scoped ctx env' body with Continue_exc -> ());
          List.iter (fun e -> ignore (eval ctx env' e)) update
        done
      with Break_exc -> ())
  | Ast.Sswitch (scrutinee, cases) -> (
      let v = eval ctx env scrutinee in
      let rec run_from = function
        | [] -> ()
        | (k : Ast.switch_case) :: rest ->
            List.iter (exec ctx env) k.Ast.case_body;
            run_from rest
      in
      let rec find = function
        | [] ->
            (* fall back to default if present *)
            let rec from_default = function
              | [] -> ()
              | (k : Ast.switch_case) :: rest ->
                  if k.Ast.case_label = None then run_from (k :: rest)
                  else from_default rest
            in
            from_default cases
        | (k : Ast.switch_case) :: rest -> (
            match k.Ast.case_label with
            | Some label when Value.equal (eval ctx env label) v ->
                run_from (k :: rest)
            | _ -> find rest)
      in
      try find cases with Break_exc -> ())
  | Ast.Sbreak -> raise Break_exc
  | Ast.Scontinue -> raise Continue_exc
  | Ast.Sreturn None -> raise (Return_exc Vnull)
  | Ast.Sreturn (Some e) -> raise (Return_exc (eval ctx env e))

and exec_scoped ctx env s =
  match s with
  | Ast.Sblock _ -> exec ctx env s
  | _ ->
      let scope = Hashtbl.create 2 in
      exec ctx (scope :: env) s

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

(* Shared tail of run/run_traced: invoke the entry method and convert
   every interpreter exception into an outcome — never a raise. *)
let finish ctx entry args =
  match Hashtbl.find_opt ctx.methods entry with
  | None ->
      {
        stdout = "";
        result = None;
        steps = 0;
        error = Some (Printf.sprintf "no method named %s" entry);
      }
  | Some m -> (
      match call_method ctx m args with
      | v ->
          {
            stdout = Buffer.contents ctx.out;
            result = Some v;
            steps = ctx.steps;
            error = None;
          }
      | exception Runtime_error msg ->
          {
            stdout = Buffer.contents ctx.out;
            result = None;
            steps = ctx.steps;
            error = Some msg;
          }
      | exception Step_limit ->
          {
            stdout = Buffer.contents ctx.out;
            result = None;
            steps = ctx.steps;
            error = Some "step limit exceeded";
          }
      | exception Fuel_exhausted ->
          {
            stdout = Buffer.contents ctx.out;
            result = None;
            steps = ctx.steps;
            error = Some "fuel budget exhausted";
          })

let run ?budget ?(config = default_config) (prog : Ast.program) ~entry ~args
    =
  let methods = Hashtbl.create 8 in
  List.iter
    (fun (m : Ast.meth) -> Hashtbl.replace methods m.Ast.m_name m)
    prog.Ast.methods;
  let ctx =
    {
      methods;
      config;
      budget;
      out = Buffer.create 256;
      steps = 0;
      trace_sink = None;
    }
  in
  let out = finish ctx entry args in
  (* Executed-step counter for the tracing layer: a no-op unless the
     ambient trace is enabled, and a single counter bump per run (never
     per step) when it is. *)
  Jfeed_trace.Trace.count (Jfeed_trace.Trace.current ()) "interp.steps"
    out.steps;
  out

let run_source ?budget ?config src ~entry ~args =
  run ?budget ?config (Parser.parse_program src) ~entry ~args

(** Run and additionally collect the CLARA-style variable trace: one
    name-sorted snapshot of the visible variables per executed statement.
    Values are rendered with {!Value.to_display}. *)
let run_traced ?budget ?(config = default_config) (prog : Ast.program)
    ~entry ~args =
  let methods = Hashtbl.create 8 in
  List.iter
    (fun (m : Ast.meth) -> Hashtbl.replace methods m.Ast.m_name m)
    prog.Ast.methods;
  let trace = ref [] in
  (* Scalars are rendered in full; aggregates only by a cheap summary —
     rendering a large array on every snapshot would make tracing
     quadratic in the input size (CLARA traces scalar variables). *)
  let cheap = function
    | (Vint _ | Vdouble _ | Vbool _ | Vchar _ | Vstr _ | Vnull) as v ->
        to_display v
    | Varr a -> Printf.sprintf "<array:%d>" (Array.length a)
    | Vscanner _ -> "<scanner>"
  in
  let sink snap =
    trace := List.map (fun (x, v) -> (x, cheap v)) snap :: !trace
  in
  let ctx =
    {
      methods;
      config;
      budget;
      out = Buffer.create 256;
      steps = 0;
      trace_sink = Some sink;
    }
  in
  let outcome = finish ctx entry args in
  (outcome, List.rev !trace)
