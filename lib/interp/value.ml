(** Runtime values of the Java-subset interpreter.

    Integers use Java [int] semantics: 32-bit two's-complement wrap-around
    (student factorial/Fibonacci submissions overflow exactly like they
    would on the JVM, and the functional tests must agree with that). *)

type t =
  | Vint of int  (** always within \[-2^31, 2^31) *)
  | Vdouble of float
  | Vbool of bool
  | Vchar of char
  | Vstr of string
  | Varr of t array
  | Vnull
  | Vscanner of scanner

and scanner = { mutable tokens : string list; mutable closed : bool }

(* Wrap an OCaml int to Java 32-bit int semantics. *)
let wrap32 n = Int32.to_int (Int32.of_int n)

let vint n = Vint (wrap32 n)

let type_name = function
  | Vint _ -> "int"
  | Vdouble _ -> "double"
  | Vbool _ -> "boolean"
  | Vchar _ -> "char"
  | Vstr _ -> "String"
  | Varr _ -> "array"
  | Vnull -> "null"
  | Vscanner _ -> "Scanner"

(* Java's Double.toString is involved; the subset only ever prints doubles
   that are integral or short decimals, for which this matches. *)
let string_of_double f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e7 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.15g" f in
    if float_of_string short = f then short else s

(** Rendering used by [System.out.print] and string concatenation. *)
let rec to_display = function
  | Vint n -> string_of_int n
  | Vdouble f -> string_of_double f
  | Vbool b -> if b then "true" else "false"
  | Vchar c -> String.make 1 c
  | Vstr s -> s
  | Varr a ->
      "[" ^ String.concat ", " (Array.to_list (Array.map to_display a)) ^ "]"
  | Vnull -> "null"
  | Vscanner _ -> "java.util.Scanner"

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vdouble x, Vdouble y -> x = y
  | Vint x, Vdouble y | Vdouble y, Vint x -> float_of_int x = y
  | Vbool x, Vbool y -> x = y
  | Vchar x, Vchar y -> x = y
  | Vstr x, Vstr y -> x == y
      (* Java's == on String is reference equality; Scanner tokens and
         parameters are distinct objects, so student code comparing them
         with == is wrong — .equals is the structural comparison. *)
  | Vnull, Vnull -> true
  | Varr x, Varr y -> x == y
  | Vscanner x, Vscanner y -> x == y
  | _ -> false
