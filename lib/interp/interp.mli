(** Big-step interpreter for the Java subset.

    Replaces the JVM for functional testing: programs print to a captured
    stdout, read files from a virtual file system through
    [java.util.Scanner], and run under a step budget so that the
    infinite-loop submissions the paper worries about terminate with a
    distinguishable outcome instead of hanging the harness.

    Semantics notes:
    - [int] arithmetic wraps at 32 bits like the JVM ({!Value.wrap32});
    - [==] on strings is reference equality (use [.equals]);
    - division/modulo by zero, array bounds, missing files and Scanner
      misuse surface as runtime errors in {!outcome}. *)

exception Runtime_error of string
exception Step_limit

exception Fuel_exhausted
(** The shared grading budget ran dry mid-execution — distinct from
    {!Step_limit}, the per-run ceiling that flags looping submissions.
    Like every interpreter failure it is reported in {!outcome}
    (as ["fuel budget exhausted"]), never raised by {!run}. *)

type config = {
  files : (string * string) list;  (** virtual file system: name → content *)
  max_steps : int;
}

val default_config : config
(** No files, one million steps. *)

type outcome = {
  stdout : string;
  result : Value.t option;  (** [None] when execution failed *)
  steps : int;
  error : string option;
      (** runtime error, ["step limit exceeded"] (≈ infinite loop) or
          ["fuel budget exhausted"] (shared grading budget ran dry) *)
}

val run :
  ?budget:Jfeed_budget.Budget.t ->
  ?config:config ->
  Jfeed_java.Ast.program ->
  entry:string ->
  args:Value.t list ->
  outcome
(** Invoke [entry] with [args].  Runtime failures are reported in the
    outcome, never raised.  Each execution step additionally spends one
    unit of {!Jfeed_budget.Budget.Interp} fuel from [budget] (shared
    across runs), unifying the interpreter's step budget with the rest
    of the grading pipeline; [config.max_steps] remains the per-run
    ceiling. *)

val run_source :
  ?budget:Jfeed_budget.Budget.t ->
  ?config:config ->
  string ->
  entry:string ->
  args:Value.t list ->
  outcome
(** Parse then {!run}.  Parse errors do raise
    ({!Jfeed_java.Parser.Parse_error}). *)

val run_traced :
  ?budget:Jfeed_budget.Budget.t ->
  ?config:config ->
  Jfeed_java.Ast.program ->
  entry:string ->
  args:Value.t list ->
  outcome * (string * string) list list
(** Like {!run}, additionally collecting the CLARA-style variable trace:
    one name-sorted snapshot of the visible variables per executed
    statement.  Scalars are rendered in full; arrays and scanners only by
    a cheap summary (rendering a large array per snapshot would make
    tracing quadratic in the input size). *)
