(** Big-step interpreter for the Java subset.

    Replaces the JVM for functional testing: programs print to a captured
    stdout, read files from a virtual file system through
    [java.util.Scanner], and run under a step budget so that the
    infinite-loop submissions the paper worries about terminate with a
    distinguishable outcome instead of hanging the harness.

    Semantics notes:
    - [int] arithmetic wraps at 32 bits like the JVM ({!Value.wrap32});
    - [==] on strings is reference equality (use [.equals]);
    - division/modulo by zero, array bounds, missing files and Scanner
      misuse surface as runtime errors in {!outcome}. *)

exception Runtime_error of string
exception Step_limit

type config = {
  files : (string * string) list;  (** virtual file system: name → content *)
  max_steps : int;
}

val default_config : config
(** No files, one million steps. *)

type outcome = {
  stdout : string;
  result : Value.t option;  (** [None] when execution failed *)
  steps : int;
  error : string option;
      (** runtime error or ["step limit exceeded"] (≈ infinite loop) *)
}

val run :
  ?config:config ->
  Jfeed_java.Ast.program ->
  entry:string ->
  args:Value.t list ->
  outcome
(** Invoke [entry] with [args].  Runtime failures are reported in the
    outcome, never raised. *)

val run_source :
  ?config:config -> string -> entry:string -> args:Value.t list -> outcome
(** Parse then {!run}.  Parse errors do raise
    ({!Jfeed_java.Parser.Parse_error}). *)

val run_traced :
  ?config:config ->
  Jfeed_java.Ast.program ->
  entry:string ->
  args:Value.t list ->
  outcome * (string * string) list list
(** Like {!run}, additionally collecting the CLARA-style variable trace:
    one name-sorted snapshot of the visible variables per executed
    statement.  Scalars are rendered in full; arrays and scanners only by
    a cheap summary (rendering a large array per snapshot would make
    tracing quadratic in the input size). *)
