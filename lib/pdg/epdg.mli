(** Extended program dependence graphs (paper §III-A).

    Nodes carry a type from {!node_type} and the Java expression denoting
    the operation they perform (Definition 1); edges are control or data
    dependences (Definition 2).

    Construction follows the paper's conventions exactly (see DESIGN.md §4):
    - [Ctrl] edges go from a [Cond] node to the nodes whose execution its
      truth *directly* controls — only the innermost controlling condition,
      so the transitive [Ctrl] edges the paper removes are never created;
    - [Data] edges are def-use chains over a single-iteration reading of
      the program: loop bodies execute exactly once (no back edges, no
      zero-iteration bypass), the body of an [if] without [else] is assumed
      to execute, and [if]/[else] branches merge by union. *)

type node_type = Assign | Break | Call | Cond | Decl | Return

type edge_type = Ctrl | Data

type node_info = {
  n_type : node_type;
  n_expr : Jfeed_java.Ast.expr;  (** the operation's expression [c] *)
  n_text : string;  (** canonical rendering of [n_expr], cached *)
  n_vars : string list;
      (** [Ast.vars_of_expr n_expr], cached — the matcher's γ candidate
          pool for this node *)
}

type t = {
  graph : (node_info, edge_type) Jfeed_graph.Digraph.t;
  method_name : string;
  param_names : string list;
  uid : int;
      (** process-unique stamp, assigned at construction; memo caches key
          on it instead of hashing the whole graph (atomic counter, safe
          under parallel batch grading) *)
  by_type : Jfeed_graph.Digraph.node list array;
      (** node-type index, built once at construction — the matcher's
          candidate sets Φ.  Indexed by the internal type ordinal; read it
          through {!nodes_of_type}.  Invariant: for every type [ty],
          [nodes_of_type t ty] equals
          [Digraph.filter_nodes t.graph ~f:(fun _ i -> i.n_type = ty)],
          in the same (insertion) order. *)
  type_counts : int array;
      (** per-type node counts — [Array.map List.length by_type], cached
          so match-plan selectivity ranking is an array read; read it
          through {!count_of_type}. *)
  deg_desc : int array;
      (** every node's total (in + out) degree, sorted descending — the
          graph side of {!Jfeed_core.Plan}'s fingerprint prefilter. *)
}

val string_of_node_type : node_type -> string
val string_of_edge_type : edge_type -> string

val of_method : Jfeed_java.Ast.meth -> t
(** Build the extended program dependence graph of one method. *)

val of_program : Jfeed_java.Ast.program -> (string * t) list
(** One EPDG per method, keyed by method name, in source order. *)

val of_source : string -> (string * t) list
(** Parse a submission and build the EPDG of every method.  Raises
    {!Jfeed_java.Parser.Parse_error} / {!Jfeed_java.Lexer.Lex_error} on
    malformed input. *)

val nodes_of_type : t -> node_type -> Jfeed_graph.Digraph.node list
(** All nodes of the given type, in insertion order — an array lookup
    into the precomputed index, not an O(V) filter.  Agrees exactly with
    [Digraph.filter_nodes] on the type predicate (see {!t.by_type}). *)

val count_of_type : t -> node_type -> int
(** [List.length (nodes_of_type t ty)], precomputed. *)

val degrees_desc : t -> int array
(** Total degrees of all nodes, descending (see {!t.deg_desc}).  Callers
    must not mutate the returned array. *)

val node_text : t -> Jfeed_graph.Digraph.node -> string
val node_type : t -> Jfeed_graph.Digraph.node -> node_type
val node_expr : t -> Jfeed_graph.Digraph.node -> Jfeed_java.Ast.expr

val node_vars : t -> Jfeed_graph.Digraph.node -> string list
(** [Ast.vars_of_expr (node_expr t v)], precomputed at construction. *)

val to_dot : t -> string
(** Graphviz rendering: data edges solid, control edges dashed (Fig. 3). *)

val to_string : t -> string
(** Text dump: one line per node ([v3: Assign "i = 0"]) then one per edge. *)

val to_json : t -> string
(** One JSON object:
    [{"method":…,"params":[…],"nodes":[{"id":…,"type":…,"text":…},…],
    "edges":[{"src":…,"dst":…,"type":…},…]}] — node ids are the [v]
    numbers of {!to_string}/{!to_dot}, insertion order throughout. *)
