open Jfeed_java

type node_type = Assign | Break | Call | Cond | Decl | Return
type edge_type = Ctrl | Data

type node_info = {
  n_type : node_type;
  n_expr : Ast.expr;
  n_text : string;
  n_vars : string list;
      (* [Ast.vars_of_expr n_expr], hoisted to construction: the matcher
         reads it once per surviving candidate instead of re-walking the
         expression *)
}

type t = {
  graph : (node_info, edge_type) Jfeed_graph.Digraph.t;
  method_name : string;
  param_names : string list;
  uid : int;
  by_type : Jfeed_graph.Digraph.node list array;
  type_counts : int array;
  deg_desc : int array;
}

module G = Jfeed_graph.Digraph

let n_node_types = 6

let int_of_node_type = function
  | Assign -> 0
  | Break -> 1
  | Call -> 2
  | Cond -> 3
  | Decl -> 4
  | Return -> 5

(* Graph identity for memo caches (e.g. the matcher's embedding cache):
   structural hashing of a whole EPDG would cost more than the search it
   is meant to save, so every constructed EPDG gets a process-unique
   stamp.  Atomic: EPDGs are built concurrently by the batch workers. *)
let uid_counter = Atomic.make 0

let build_type_index g =
  let acc = Array.make n_node_types [] in
  List.iter
    (fun v ->
      let i = int_of_node_type (G.label g v).n_type in
      acc.(i) <- v :: acc.(i))
    (G.nodes g);
  Array.map List.rev acc

let nodes_of_type t ty = t.by_type.(int_of_node_type ty)
let count_of_type t ty = t.type_counts.(int_of_node_type ty)
let degrees_desc t = t.deg_desc

(* Total (in + out) degree of every node, sorted descending — the graph
   side of the matcher's fingerprint prefilter.  O(V) at construction:
   the digraph maintains degree counters at edge insertion. *)
let build_deg_desc g =
  let a =
    Array.of_list
      (List.map (fun v -> G.out_degree g v + G.in_degree g v) (G.nodes g))
  in
  Array.sort (fun x y -> compare y x) a;
  a

let string_of_node_type = function
  | Assign -> "Assign"
  | Break -> "Break"
  | Call -> "Call"
  | Cond -> "Cond"
  | Decl -> "Decl"
  | Return -> "Return"

let string_of_edge_type = function Ctrl -> "Ctrl" | Data -> "Data"

(* Reaching definitions: variable -> set of defining nodes.  Sets are kept
   as sorted lists (they are tiny). *)
module Env = Map.Make (String)

let union_defs a b =
  List.sort_uniq compare (List.rev_append a b)

let env_union e1 e2 =
  Env.union (fun _ d1 d2 -> Some (union_defs d1 d2)) e1 e2

type builder = {
  g : (node_info, edge_type) G.t;
  mutable env : G.node list Env.t;
}

let mk_node b typ ~parent ?text expr =
  let text = match text with Some t -> t | None -> Pretty.expr expr in
  let v =
    G.add_node b.g
      { n_type = typ; n_expr = expr; n_text = text;
        n_vars = Ast.vars_of_expr expr }
  in
  (match parent with Some p -> G.add_edge b.g p v Ctrl | None -> ());
  v

(* Data edges from every reaching definition of every variable [node]
   reads. *)
let data_edges_for_reads b node expr =
  List.iter
    (fun x ->
      match Env.find_opt x b.env with
      | Some defs -> List.iter (fun d -> if d <> node then G.add_edge b.g d node Data) defs
      | None -> ())
    (Ast.read_vars expr)

(* Register the definitions an expression performs.  Plain assignments to a
   variable kill its previous definitions; array-element stores are weak
   updates (other elements survive). *)
let record_defs b node expr =
  let weak = Hashtbl.create 4 in
  let rec scan_lhs = function
    | Ast.Var _ -> ()
    | Ast.Index (base, _) ->
        let rec base_var = function
          | Ast.Var x -> Hashtbl.replace weak x ()
          | Ast.Index (e, _) | Ast.Field (e, _) -> base_var e
          | _ -> ()
        in
        base_var base
    | Ast.Field (e, _) -> scan_lhs e
    | _ -> ()
  in
  let rec find_stores = function
    | Ast.Assign (_, lhs, rhs) ->
        scan_lhs lhs;
        find_stores lhs;
        find_stores rhs
    | Ast.Incdec (_, e) ->
        scan_lhs e;
        find_stores e
    | Ast.Binary (_, e1, e2) | Ast.Index (e1, e2) ->
        find_stores e1;
        find_stores e2
    | Ast.Unary (_, e) | Ast.Cast (_, e) | Ast.Field (e, _) -> find_stores e
    | Ast.Call (recv, _, args) ->
        Option.iter find_stores recv;
        List.iter find_stores args
    | Ast.New (_, args) -> List.iter find_stores args
    | Ast.New_array (_, dims) -> List.iter find_stores dims
    | Ast.Array_lit elts -> List.iter find_stores elts
    | Ast.Ternary (c, t, f) ->
        find_stores c;
        find_stores t;
        find_stores f
    | Ast.Int_lit _ | Ast.Double_lit _ | Ast.Bool_lit _ | Ast.Char_lit _
    | Ast.Str_lit _ | Ast.Null_lit | Ast.Var _ ->
        ()
  in
  find_stores expr;
  List.iter
    (fun x ->
      if Hashtbl.mem weak x then
        let prev = Option.value ~default:[] (Env.find_opt x b.env) in
        b.env <- Env.add x (union_defs [ node ] prev) b.env
      else b.env <- Env.add x [ node ] b.env)
    (Ast.assigned_vars expr)

let is_call_stmt = function Ast.Call _ -> true | _ -> false

let rec walk_stmt b ~parent (s : Ast.stmt) =
  match s with
  | Ast.Sempty -> ()
  | Ast.Sblock body -> List.iter (walk_stmt b ~parent) body
  | Ast.Sdecl decls ->
      List.iter
        (fun (d : Ast.var_decl) ->
          match d.d_init with
          | None -> () (* no operation: defined at first assignment *)
          | Some init ->
              let expr = Ast.Assign (Set, Var d.d_name, init) in
              let v = mk_node b Assign ~parent expr in
              data_edges_for_reads b v expr;
              record_defs b v expr)
        decls
  | Ast.Sexpr e ->
      let typ = if is_call_stmt e then Call else Assign in
      let v = mk_node b typ ~parent e in
      data_edges_for_reads b v e;
      record_defs b v e
  | Ast.Sif (cond, then_, else_) -> (
      let c = mk_node b Cond ~parent cond in
      data_edges_for_reads b c cond;
      record_defs b c cond;
      let entry = b.env in
      walk_stmt b ~parent:(Some c) then_;
      let after_then = b.env in
      match else_ with
      | None ->
          (* No bypass edge: the branch is assumed to execute. *)
          b.env <- after_then
      | Some e ->
          b.env <- entry;
          walk_stmt b ~parent:(Some c) e;
          b.env <- env_union after_then b.env)
  | Ast.Swhile (cond, body) ->
      let c = mk_node b Cond ~parent cond in
      data_edges_for_reads b c cond;
      record_defs b c cond;
      walk_stmt b ~parent:(Some c) body
  | Ast.Sdo (body, cond) ->
      (* The body precedes the condition; the condition still controls the
         body's (re-)execution, so it is created first to be the control
         parent, but its data edges use the post-body environment. *)
      let c = mk_node b Cond ~parent cond in
      walk_stmt b ~parent:(Some c) body;
      data_edges_for_reads b c cond;
      record_defs b c cond
  | Ast.Sfor (init, cond, update, body) ->
      (match init with
      | None -> ()
      | Some (Ast.For_decl decls) -> walk_stmt b ~parent (Ast.Sdecl decls)
      | Some (Ast.For_exprs es) ->
          List.iter (fun e -> walk_stmt b ~parent (Ast.Sexpr e)) es);
      let c =
        match cond with
        | Some cond_expr ->
            let c = mk_node b Cond ~parent cond_expr in
            data_edges_for_reads b c cond_expr;
            record_defs b c cond_expr;
            Some c
        | None -> None
      in
      let inner = match c with Some _ -> c | None -> parent in
      walk_stmt b ~parent:inner body;
      List.iter (fun e -> walk_stmt b ~parent:inner (Ast.Sexpr e)) update
  | Ast.Sswitch (scrutinee, cases) ->
      let c = mk_node b Cond ~parent scrutinee in
      data_edges_for_reads b c scrutinee;
      record_defs b c scrutinee;
      let entry = b.env in
      let has_default = List.exists (fun k -> k.Ast.case_label = None) cases in
      let outs =
        List.map
          (fun (k : Ast.switch_case) ->
            b.env <- entry;
            List.iter (walk_stmt b ~parent:(Some c)) k.case_body;
            b.env)
          cases
      in
      let base = if has_default then [] else [ entry ] in
      b.env <-
        (match outs @ base with
        | [] -> entry
        | e :: rest -> List.fold_left env_union e rest)
  | Ast.Sbreak ->
      ignore (mk_node b Break ~parent ~text:"break" (Ast.Var "break"))
  | Ast.Scontinue ->
      (* The paper's node-type set has no Continue; it behaves like Break
         for dependence purposes. *)
      ignore (mk_node b Break ~parent ~text:"continue" (Ast.Var "continue"))
  | Ast.Sreturn e_opt ->
      let expr = match e_opt with Some e -> e | None -> Ast.Null_lit in
      let text =
        match e_opt with
        | Some e -> "return " ^ Pretty.expr e
        | None -> "return"
      in
      let v = mk_node b Return ~parent ~text expr in
      data_edges_for_reads b v expr

let of_method (m : Ast.meth) =
  let b = { g = G.create (); env = Env.empty } in
  List.iter
    (fun (p : Ast.param) ->
      let text = Ast.string_of_typ p.p_type ^ " " ^ p.p_name in
      let v = mk_node b Decl ~parent:None ~text (Ast.Var p.p_name) in
      b.env <- Env.add p.p_name [ v ] b.env)
    m.m_params;
  List.iter (walk_stmt b ~parent:None) m.m_body;
  let by_type = build_type_index b.g in
  {
    graph = b.g;
    method_name = m.m_name;
    param_names = List.map (fun (p : Ast.param) -> p.p_name) m.m_params;
    uid = Atomic.fetch_and_add uid_counter 1;
    by_type;
    type_counts = Array.map List.length by_type;
    deg_desc = build_deg_desc b.g;
  }

let of_program (p : Ast.program) =
  (* The EPDG-build stage of the grading pipeline; attrs record how big
     the dependence graphs came out, which is what drives matcher cost. *)
  let tr = Jfeed_trace.Trace.current () in
  Jfeed_trace.Trace.span tr "epdg" (fun () ->
      let graphs = List.map (fun m -> (m.Ast.m_name, of_method m)) p.methods in
      if Jfeed_trace.Trace.enabled tr then begin
        let nodes, edges =
          List.fold_left
            (fun (n, e) (_, g) ->
              (n + G.node_count g.graph, e + G.edge_count g.graph))
            (0, 0) graphs
        in
        Jfeed_trace.Trace.add_attr tr "methods"
          (string_of_int (List.length graphs));
        Jfeed_trace.Trace.add_attr tr "nodes" (string_of_int nodes);
        Jfeed_trace.Trace.add_attr tr "edges" (string_of_int edges)
      end;
      graphs)

let of_source src = of_program (Parser.parse_program src)

let node_text t v = (G.label t.graph v).n_text
let node_type t v = (G.label t.graph v).n_type
let node_expr t v = (G.label t.graph v).n_expr
let node_vars t v = (G.label t.graph v).n_vars

let to_dot t =
  (* Labels go in raw — [Digraph.to_dot] escapes quotes, backslashes and
     newlines, so the literal newline below renders as DOT's [\n] line
     break and hostile [n_text] cannot break out of the attribute. *)
  G.to_dot t.graph
    ~node_attrs:(fun v info ->
      [
        G.Label
          (Printf.sprintf "v%d: %s\n%s" v
             (string_of_node_type info.n_type)
             info.n_text);
        G.Shape "box";
      ])
    ~edge_attrs:(function
      | Data -> [ G.Style "solid"; G.Label "Data" ]
      | Ctrl -> [ G.Style "dashed"; G.Label "Ctrl" ])

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "method %s\n" t.method_name);
  List.iter
    (fun v ->
      let info = G.label t.graph v in
      Buffer.add_string buf
        (Printf.sprintf "  v%d: %-6s %s\n" v
           (string_of_node_type info.n_type)
           info.n_text))
    (G.nodes t.graph);
  List.iter
    (fun (s, d, e) ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d -%s-> v%d\n" s (string_of_edge_type e) d))
    (G.edges t.graph);
  Buffer.contents buf

let to_json t =
  let esc = Jfeed_trace.Trace.json_escape in
  let nodes =
    List.map
      (fun v ->
        let info = G.label t.graph v in
        Printf.sprintf {|{"id":%d,"type":"%s","text":"%s"}|} v
          (string_of_node_type info.n_type)
          (esc info.n_text))
      (G.nodes t.graph)
  in
  let edges =
    List.map
      (fun (s, d, e) ->
        Printf.sprintf {|{"src":%d,"dst":%d,"type":"%s"}|} s d
          (string_of_edge_type e))
      (G.edges t.graph)
  in
  Printf.sprintf {|{"method":"%s","params":[%s],"nodes":[%s],"edges":[%s]}|}
    (esc t.method_name)
    (String.concat ","
       (List.map (fun p -> {|"|} ^ esc p ^ {|"|}) t.param_names))
    (String.concat "," nodes)
    (String.concat "," edges)
