(** The total outcome taxonomy of the resilient grading pipeline.

    Every grading entry point of {!Pipeline} returns one of three
    outcomes — there is no fourth possibility and no escaping
    exception:

    - [Graded]: the full Algorithm 2 search ran to completion; the
      report is exactly what the paper's system would produce.
    - [Degraded]: a report was produced, but something was cut short —
      a budget ran dry mid-search, a stage crashed and the fallback
      ladder recovered, the functional tests could not run.  Each cut
      is named by a {!reason}; truncation is never silent.
    - [Rejected]: the submission could not be read at all (lex/parse
      failure, unreadable file); the diagnostic says which stage gave
      up and why.  Rejection is a property of the input, not of the
      budget — a starved budget degrades, it never rejects. *)

type reason =
  | Matcher_exhausted of string
      (** the embedding search for this pattern id was cut (fuel or the
          {!Jfeed_core.Matcher.max_embeddings} backstop) *)
  | Pairing_exhausted
      (** the method-pairing combination search stopped early *)
  | Interp_exhausted
      (** the interpreter ran out of shared fuel during functional
          testing *)
  | Method_skipped of string * string
      (** (expected method, error): this method's grading crashed even
          in isolation; its patterns were reported as missing *)
  | Crash_recovered of string
      (** the full-grade pass died with this error; the per-method
          fallback ladder produced the report instead *)
  | Tests_skipped of string
      (** the functional-test stage could not run (e.g. the reference
          solution failed); pattern feedback stands, column T is absent *)

val string_of_reason : reason -> string
(** Compact slug, prefixed by the stage: ["matcher:p_loop"],
    ["pairing"], ["interp"], ["skipped:<method>"], ["crash"],
    ["tests"]. *)

val describe_reason : reason -> string
(** Human-readable sentence. *)

val stage_of_reason : reason -> string
(** ["matcher"] / ["pairing"] / ["interp"] / ["ladder"] / ["tests"]. *)

(** Functional-test verdict carried alongside the pattern report. *)
type test_status =
  | Tests_passed
  | Tests_failed of string * string  (** failing case, reason *)
  | Tests_not_run

type report = {
  grading : Jfeed_core.Grader.result;
  tests : test_status;
  diags : Jfeed_analysis.Diagnostic.t list;
      (** static-analysis findings on the submission (the five
          {!Jfeed_analysis.Passes} passes), computed once at parse time;
          empty when analysis itself failed — analysis never rejects *)
}

type diagnostic = { stage : string; message : string }

type t =
  | Graded of report
  | Degraded of report * reason list
  | Rejected of diagnostic

val classify : t -> string
(** ["graded"] / ["degraded"] / ["rejected"] — the JSON outcome tag. *)

val report : t -> report option
(** The report, when one exists ([Graded] or [Degraded]). *)

val reasons : t -> reason list
(** Degradation reasons; empty for [Graded] and [Rejected]. *)

val to_json :
  ?file:string ->
  ?comments:bool ->
  ?repair:string ->
  ?trace:Jfeed_trace.Trace.t ->
  t ->
  string
(** One submission's outcome as a single-line JSON object with stable
    field order: [file] (when given), [outcome], then per-outcome
    fields — [score]/[max]/[tests]/[reasons]/[diags] for graded and
    degraded, [stage]/[error] for rejected.  [diags] is the diagnostic
    count; [?comments] (default off, preserving the batch summary's
    one-line-per-submission shape) additionally appends the full
    [diagnostics] array and the instantiated feedback comments as a
    [comments] array — the serving tier's full payload.  [?repair]
    (default absent) splices a pre-rendered repair-hint object
    ({!Jfeed_repair.Repair.to_json} upstream) in as a [repair] field, so
    output without the option is byte-identical — the same stability
    rule as tracing.  [?trace]
    (default {!Jfeed_trace.Trace.disabled}) appends a compact [trace]
    object ({!Jfeed_trace.Trace.summary_json}: per-stage span counts
    and total milliseconds, plus counters) when — and only when — the
    tracer is live, so untraced output is byte-identical with or
    without the argument. *)
