(** Total, budgeted grading entry points.  See pipeline.mli for the
    ladder contract. *)

open Jfeed_core
open Jfeed_java
module Budget = Jfeed_budget.Budget
module Bundles = Jfeed_kb.Bundles
module Runner = Jfeed_ftest.Runner
module Trace = Jfeed_trace.Trace

(* Convert any escaping exception into an error string.  Stack_overflow
   and Out_of_memory are named explicitly — they are the expected
   failure modes of adversarial submissions; everything else falls
   through to Printexc so that no exception whatsoever crosses the
   pipeline boundary. *)
let protect f =
  match f () with
  | v -> Ok v
  | exception Stack_overflow -> Error "stack overflow"
  | exception Out_of_memory -> Error "out of memory"
  | exception Invalid_argument m -> Error ("invalid argument: " ^ m)
  | exception Failure m -> Error m
  | exception e -> Error (Printexc.to_string e)

let parse_stage src =
  Trace.span (Trace.current ()) "parse" @@ fun () ->
  match Parser.parse_program_located src with
  | prog, srcmap -> Ok (prog, srcmap)
  | exception Parser.Parse_error (msg, line, col) ->
      Error
        {
          Outcome.stage = "parse";
          message = Printf.sprintf "parse error at %d:%d: %s" line col msg;
        }
  | exception Lexer.Lex_error (msg, line, col) ->
      Error
        {
          Outcome.stage = "lex";
          message = Printf.sprintf "lex error at %d:%d: %s" line col msg;
        }
  | exception e ->
      Error { Outcome.stage = "parse"; message = Printexc.to_string e }

let reasons_of_truncations ts =
  List.map
    (function
      | Grader.Matcher_exhausted id -> Outcome.Matcher_exhausted id
      | Grader.Pairing_exhausted -> Outcome.Pairing_exhausted)
    ts

(* Ladder rung 2/3: grade each expected method in isolation so one
   blown-up method cannot take down the whole report.  A method whose
   grading crashes is reported through its Not_expected comment set
   (rung 3: when every method crashes, this degenerates to parse-only
   diagnostics — the submission is still classified and scored). *)
let per_method_grade ?budget ?normalize ?use_variants ?inline_helpers
    (spec : Grader.spec) prog crash_msg =
  let skipped = ref [] in
  let results =
    List.map
      (fun (q : Grader.method_spec) ->
        let single = { spec with Grader.a_methods = [ q ] } in
        match
          protect (fun () ->
              Grader.grade ?budget ?normalize ?use_variants ?inline_helpers
                single prog)
        with
        | Ok r -> r
        | Error e ->
            skipped := Outcome.Method_skipped (q.Grader.q_name, e) :: !skipped;
            {
              Grader.comments = Grader.missing_comments q;
              score = 0.0;
              pairing = [ (q.Grader.q_name, None) ];
              truncations = [];
            })
      spec.Grader.a_methods
  in
  let comments = List.concat_map (fun r -> r.Grader.comments) results in
  let grading =
    {
      Grader.comments;
      score = Feedback.score comments;
      pairing = List.concat_map (fun r -> r.Grader.pairing) results;
      truncations =
        List.concat_map (fun r -> r.Grader.truncations) results
        |> List.sort_uniq compare;
    }
  in
  let reasons =
    (Outcome.Crash_recovered crash_msg :: List.rev !skipped)
    @ reasons_of_truncations grading.Grader.truncations
  in
  (grading, reasons)

let grade_prog ?budget ?normalize ?use_variants ?inline_helpers
    (spec : Grader.spec) prog =
  match
    protect (fun () ->
        Grader.grade ?budget ?normalize ?use_variants ?inline_helpers spec
          prog)
  with
  | Ok r -> (r, reasons_of_truncations r.Grader.truncations)
  | Error msg ->
      per_method_grade ?budget ?normalize ?use_variants ?inline_helpers spec
        prog msg

let outcome_of ~tests ~diags grading reasons =
  let report = { Outcome.grading; tests; diags } in
  if reasons = [] then Outcome.Graded report
  else Outcome.Degraded (report, reasons)

(* The analysis passes are total by contract, but the pipeline trusts
   nothing: a crash here yields an empty diagnostic list, never a
   changed outcome.  [oracle_degrees] (the reference solution's static
   cost signature) arms the efficiency pass; without it the
   abstract-interpretation passes still run but no efficiency verdicts
   are possible. *)
let analyze_stage ?oracle_degrees (prog, srcmap) =
  Trace.span (Trace.current ()) "analysis" @@ fun () ->
  match
    protect (fun () ->
        Jfeed_absint.Passes.analyze_program ~srcmap ?oracle_degrees prog)
  with
  | Ok diags -> diags
  | Error _ -> []

(* The per-method polynomial degrees of the bundle's reference solution.
   Recomputed per assessment like the expected test outputs — the
   fixpoint over a reference method costs microseconds — so workers
   share no state. *)
let oracle_degrees (b : Bundles.t) =
  match
    protect (fun () ->
        Jfeed_absint.Passes.method_degrees
          (Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)))
  with
  | Ok ds -> ds
  | Error _ -> []

let grade_guarded ?budget ?normalize ?use_variants ?inline_helpers spec src =
  match parse_stage src with
  | Error d -> Outcome.Rejected d
  | Ok ((prog, _) as parsed) ->
      let diags = analyze_stage parsed in
      let grading, reasons =
        grade_prog ?budget ?normalize ?use_variants ?inline_helpers spec prog
      in
      outcome_of ~tests:Outcome.Tests_not_run ~diags grading reasons

(* Functional testing under the shared budget.  A failing submission is
   a normal graded outcome; only an unrunnable suite or fuel exhaustion
   mid-test degrades. *)
let run_tests ?budget (b : Bundles.t) prog =
  Trace.span (Trace.current ()) "tests" @@ fun () ->
  match
    protect (fun () ->
        let reference =
          Parser.parse_program (Jfeed_gen.Spec.reference b.Bundles.gen)
        in
        let expected = Runner.expected_outputs b.Bundles.suite reference in
        Runner.run ?budget b.Bundles.suite ~expected prog)
  with
  | Ok Runner.Pass -> (Outcome.Tests_passed, [])
  | Ok (Runner.Fail { case; reason }) ->
      let fuel_died = reason = "error: fuel budget exhausted" in
      ( Outcome.Tests_failed (case, reason),
        if fuel_died then [ Outcome.Interp_exhausted ] else [] )
  | Error e -> (Outcome.Tests_not_run, [ Outcome.Tests_skipped e ])

let assess ?budget ?normalize ?use_variants ?inline_helpers
    ?(with_tests = true) (b : Bundles.t) src =
  match parse_stage src with
  | Error d -> Outcome.Rejected d
  | Ok ((prog, _) as parsed) ->
      let diags =
        analyze_stage ~oracle_degrees:(oracle_degrees b) parsed
      in
      let grading, reasons =
        grade_prog ?budget ?normalize ?use_variants ?inline_helpers
          b.Bundles.grading prog
      in
      let tests, test_reasons =
        if with_tests then run_tests ?budget b prog
        else (Outcome.Tests_not_run, [])
      in
      outcome_of ~tests ~diags grading (reasons @ test_reasons)

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)

type item = {
  file : string;
  outcome : Outcome.t;
  fuel_spent : int;
  trace : Trace.t;
}

type dedup_stats = { classes : int; replayed : int }

(* Process-wide dedup counters (monotone atomics), read by the serve
   metrics exposition alongside the plan counters. *)
let n_dedup_classes = Atomic.make 0
let n_dedup_replayed = Atomic.make 0
let dedup_classes () = Atomic.get n_dedup_classes
let dedup_replayed () = Atomic.get n_dedup_replayed

let note_dedup ~classes ~replayed =
  ignore (Atomic.fetch_and_add n_dedup_classes classes);
  ignore (Atomic.fetch_and_add n_dedup_replayed replayed)

type summary = {
  assignment : string;
  total : int;
  graded : int;
  degraded : int;
  rejected : int;
  fuel_limit : int option;
  dedup : dedup_stats option;
  items : item list;
}

let grade_submission ?fuel ?deadline_s ?rid ?with_tests
    ?(name = "<submission>") ?(trace = Trace.disabled) (b : Bundles.t) src =
  (* The single-submission serving entry: a fresh budget per call — the
     same per-submission isolation the batch driver gives each item —
     and total even against bugs in the pipeline itself.  The KB bundle
     is a static value, so a long-lived server pays no per-request
     loading cost. *)
  let budget =
    match (fuel, deadline_s) with
    | None, None -> Budget.unlimited ()
    | _ -> Budget.create ?fuel ?deadline_s ()
  in
  let assess_traced () =
    Trace.with_current trace (fun () ->
        match protect (fun () -> assess ~budget ?with_tests b src) with
        | Ok o -> o
        | Error e ->
            Outcome.Rejected { Outcome.stage = "internal"; message = e })
  in
  let outcome =
    match rid with
    | None -> assess_traced ()
    | Some rid ->
        (* Request-scoped: one root span carries the correlation id, so
           every stage span of this assessment is a descendant of a
           node naming the request it served. *)
        Trace.span trace ~attrs:[ ("rid", rid) ] "request" assess_traced
  in
  if Trace.enabled trace then
    List.iter
      (fun (stage, n) -> Trace.count trace ("fuel." ^ stage) n)
      (Budget.spent_by budget);
  { file = name; outcome; fuel_spent = Budget.spent budget; trace }

(* Replay a representative's item for another member of its equivalence
   class.  The grading report, test verdict, degradation reasons and
   fuel count are α-invariant — the matcher's search is structural, so
   two α-equivalent programs take the same steps to the same verdict —
   but analysis diagnostics quote source positions and variable names,
   which consistent renaming and reformatting *do* change.  So the
   member keeps the representative's grading/tests wholesale and re-runs
   only the (cheap, total) parse + analysis stages on its own bytes.
   Raw-fingerprint classes contain byte-identical sources only, so a
   [Rejected] outcome (whose diagnostic quotes exact positions) replays
   verbatim. *)
let replay_item ?oracle_degrees ~file ~src (r : item) =
  let member_diags () =
    match parse_stage src with
    | Ok parsed -> analyze_stage ?oracle_degrees parsed
    | Error _ -> []
  in
  let outcome =
    match r.outcome with
    | Outcome.Rejected _ -> r.outcome
    | Outcome.Graded rep ->
        Outcome.Graded { rep with Outcome.diags = member_diags () }
    | Outcome.Degraded (rep, reasons) ->
        Outcome.Degraded ({ rep with Outcome.diags = member_diags () }, reasons)
  in
  { r with file; outcome }

let run_batch ?fuel ?deadline_s ?with_tests ?(jobs = 1) ?(traced = false)
    ?(dedup = true) (b : Bundles.t) sources =
  let grade_one (file, src) =
    (* One fresh tracer per submission, created inside the worker so
       each Domain fills only its own buffers; the merge below is by
       input index (Pool.map's contract), hence deterministic. *)
    let trace = if traced then Trace.create () else Trace.disabled in
    match src with
    | Error e ->
        {
          file;
          outcome = Outcome.Rejected { Outcome.stage = "read"; message = e };
          fuel_spent = 0;
          trace;
        }
    | Ok src ->
        grade_submission ?fuel ?deadline_s ?with_tests ~name:file ~trace b
          src
  in
  let srcs = Array.of_list sources in
  let n = Array.length srcs in
  let items, dedup_stats =
    if not dedup then
      ( Array.to_list (Jfeed_parallel.Pool.map ~jobs ~f:grade_one srcs),
        None )
    else begin
      (* Group the batch into α-equivalence classes by the same
         fingerprint the serve cache keys on, grade the first member of
         each class (fuel charged once, under that representative's own
         fresh budget), and replay everyone else.  The work list is
         fixed before any grading starts and results merge by input
         index, so the dedup path is jobs-invariant like the plain
         one. *)
      let rep = Array.init n (fun i -> i) in
      let tbl = Hashtbl.create (2 * n) in
      Array.iteri
        (fun i (_, src) ->
          match src with
          | Error _ -> ()
          | Ok s ->
              let fp =
                Jfeed_java.Fingerprint.(to_string (of_source s))
              in
              (match Hashtbl.find_opt tbl fp with
              | Some j -> rep.(i) <- j
              | None -> Hashtbl.add tbl fp i))
        srcs;
      let work =
        Array.of_list
          (List.filter (fun i -> rep.(i) = i) (List.init n Fun.id))
      in
      let graded =
        Jfeed_parallel.Pool.map ~jobs ~f:(fun i -> grade_one srcs.(i)) work
      in
      let by_idx = Hashtbl.create (2 * Array.length work) in
      Array.iteri (fun k i -> Hashtbl.add by_idx i graded.(k)) work;
      let replayed = ref 0 in
      let od = oracle_degrees b in
      let items =
        List.init n (fun i ->
            if rep.(i) = i then Hashtbl.find by_idx i
            else begin
              incr replayed;
              let file, src = srcs.(i) in
              let src = match src with Ok s -> s | Error e -> e in
              replay_item ~oracle_degrees:od ~file ~src
                (Hashtbl.find by_idx rep.(i))
            end)
      in
      (items, Some { classes = Hashtbl.length tbl; replayed = !replayed })
    end
  in
  (match dedup_stats with
  | Some d ->
      Trace.count (Trace.current ()) "dedup.classes" d.classes;
      Trace.count (Trace.current ()) "dedup.replayed" d.replayed;
      note_dedup ~classes:d.classes ~replayed:d.replayed
  | None -> ());
  let count cls =
    List.length
      (List.filter (fun it -> Outcome.classify it.outcome = cls) items)
  in
  {
    assignment = b.Bundles.grading.Grader.a_id;
    total = List.length items;
    graded = count "graded";
    degraded = count "degraded";
    rejected = count "rejected";
    fuel_limit = fuel;
    dedup = dedup_stats;
    items;
  }

let summary_to_json ?(traces = true) s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"assignment":"%s","total":%d,"graded":%d,"degraded":%d,"rejected":%d|}
       (Feedback.json_escape s.assignment)
       s.total s.graded s.degraded s.rejected);
  (match s.fuel_limit with
  | Some f -> Buffer.add_string buf (Printf.sprintf {|,"fuel":%d|} f)
  | None -> ());
  (match s.dedup with
  | Some d ->
      Buffer.add_string buf
        (Printf.sprintf {|,"dedup":{"classes":%d,"replayed":%d}|} d.classes
           d.replayed)
  | None -> ());
  Buffer.add_string buf {|,"submissions":[|};
  List.iteri
    (fun i it ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      let trace = if traces then it.trace else Jfeed_trace.Trace.disabled in
      let line = Outcome.to_json ~file:it.file ~trace it.outcome in
      (* Splice the per-item fuel in only under a finite budget, so
         unbudgeted output is byte-stable. *)
      match s.fuel_limit with
      | Some _ ->
          let body = String.sub line 0 (String.length line - 1) in
          Buffer.add_string buf
            (Printf.sprintf {|%s,"fuel":%d}|} body it.fuel_spent)
      | None -> Buffer.add_string buf line)
    s.items;
  Buffer.add_string buf "\n]}";
  Buffer.contents buf

let exit_code s = if s.degraded = 0 && s.rejected = 0 then 0 else 1
