(** Re-export: the budget type lives in its own leaf library
    ([jfeed.budget]) so the matcher, grader and interpreter can all
    accept one without depending on this resilience layer; pipeline code
    should reach it as [Jfeed_robust.Budget]. *)

include Jfeed_budget.Budget
