(** Total outcome taxonomy for the resilient grading pipeline.  See
    outcome.mli for the contract. *)

open Jfeed_core

type reason =
  | Matcher_exhausted of string
  | Pairing_exhausted
  | Interp_exhausted
  | Method_skipped of string * string
  | Crash_recovered of string
  | Tests_skipped of string

let string_of_reason = function
  | Matcher_exhausted id -> "matcher:" ^ id
  | Pairing_exhausted -> "pairing"
  | Interp_exhausted -> "interp"
  | Method_skipped (m, _) -> "skipped:" ^ m
  | Crash_recovered _ -> "crash"
  | Tests_skipped _ -> "tests"

let describe_reason = function
  | Matcher_exhausted id ->
      Printf.sprintf "embedding search for pattern %s was cut short" id
  | Pairing_exhausted ->
      "method-pairing search stopped before trying every combination"
  | Interp_exhausted -> "functional tests ran out of fuel"
  | Method_skipped (m, e) ->
      Printf.sprintf "method %s could not be graded (%s)" m e
  | Crash_recovered e ->
      Printf.sprintf "full grading crashed (%s); per-method fallback used" e
  | Tests_skipped e -> Printf.sprintf "functional tests skipped (%s)" e

let stage_of_reason = function
  | Matcher_exhausted _ -> "matcher"
  | Pairing_exhausted -> "pairing"
  | Interp_exhausted -> "interp"
  | Method_skipped _ | Crash_recovered _ -> "ladder"
  | Tests_skipped _ -> "tests"

type test_status =
  | Tests_passed
  | Tests_failed of string * string
  | Tests_not_run

type report = {
  grading : Grader.result;
  tests : test_status;
  diags : Jfeed_analysis.Diagnostic.t list;
}

type diagnostic = { stage : string; message : string }

type t =
  | Graded of report
  | Degraded of report * reason list
  | Rejected of diagnostic

let classify = function
  | Graded _ -> "graded"
  | Degraded _ -> "degraded"
  | Rejected _ -> "rejected"

let report = function
  | Graded r | Degraded (r, _) -> Some r
  | Rejected _ -> None

let reasons = function
  | Graded _ | Rejected _ -> []
  | Degraded (_, rs) -> rs

let json_string s = {|"|} ^ Feedback.json_escape s ^ {|"|}

let tests_to_json = function
  | Tests_passed -> {|"passed"|}
  | Tests_failed (case, _) ->
      Printf.sprintf {|{"failed":%s}|} (json_string case)
  | Tests_not_run -> {|"not-run"|}

let to_json ?file ?(comments = false) ?repair
    ?(trace = Jfeed_trace.Trace.disabled) t =
  let prefix =
    match file with
    | Some f -> Printf.sprintf {|"file":%s,|} (json_string f)
    | None -> ""
  in
  (* The repair hint and the per-stage trace summary ride along only
     when supplied — output without them stays byte-identical.  The
     hint arrives pre-rendered so this module stays repair-agnostic
     (the repair subsystem depends on grading, not the reverse). *)
  let repair_field =
    match repair with Some r -> {|,"repair":|} ^ r | None -> ""
  in
  let trace_field =
    if Jfeed_trace.Trace.enabled trace then
      {|,"trace":|} ^ Jfeed_trace.Trace.summary_json trace
    else ""
  in
  match t with
  | Graded r | Degraded (r, _) ->
      (* the batch summary keeps one line per submission, so it carries
         only the diagnostic count; the serving payload (comments on)
         also carries the full diagnostics array *)
      let diag_fields =
        if comments then
          Printf.sprintf {|,"diags":%d,"diagnostics":[%s]|}
            (List.length r.diags)
            (String.concat ","
               (List.map Jfeed_analysis.Diagnostic.to_json r.diags))
        else Printf.sprintf {|,"diags":%d|} (List.length r.diags)
      in
      let comment_field =
        if comments then
          Printf.sprintf {|,"comments":[%s]|}
            (String.concat ","
               (List.map Feedback.comment_to_json r.grading.Grader.comments))
        else ""
      in
      Printf.sprintf
        {|{%s"outcome":%s,"score":%g,"max":%d,"tests":%s,"reasons":[%s]%s%s%s%s}|}
        prefix
        (json_string (classify t))
        r.grading.Grader.score
        (List.length r.grading.Grader.comments)
        (tests_to_json r.tests)
        (String.concat ","
           (List.map (fun x -> json_string (string_of_reason x)) (reasons t)))
        diag_fields comment_field repair_field trace_field
  | Rejected d ->
      Printf.sprintf {|{%s"outcome":"rejected","stage":%s,"error":%s%s%s}|}
        prefix
        (json_string d.stage) (json_string d.message) repair_field trace_field
