(** Total, budgeted grading entry points — the resilience layer.

    Every function here returns an {!Outcome.t}; no exception escapes,
    whatever the submission looks like ([Stack_overflow] from
    pathological nesting, [Invalid_argument] from a malformed suite,
    [Out_of_memory], lexer and parser failures…).  Work is bounded by
    an optional {!Budget} shared across the matcher, the pairing search
    and the interpreter.

    The degradation ladder, tried top to bottom:
    + full Algorithm 2 grading (the paper's system) — [Graded], or
      [Degraded] when a budget cut work short;
    + per-method grading with blown-up methods skipped — each expected
      method is graded in isolation; the ones that still crash are
      reported as missing, with a {!Outcome.Method_skipped} reason;
    + parse-only diagnostics — when every method fails, the report
      degenerates to the full "does not adhere to the specification"
      comment set, but the submission is still parsed, classified and
      scored rather than dropped.

    Only unparseable input is [Rejected]. *)

val grade_guarded :
  ?budget:Jfeed_budget.Budget.t ->
  ?normalize:bool ->
  ?use_variants:bool ->
  ?inline_helpers:bool ->
  Jfeed_core.Grader.spec ->
  string ->
  Outcome.t
(** Grade a source string against a grading spec, guarded by the
    ladder.  Functional tests are not run ([tests = Tests_not_run]). *)

val assess :
  ?budget:Jfeed_budget.Budget.t ->
  ?normalize:bool ->
  ?use_variants:bool ->
  ?inline_helpers:bool ->
  ?with_tests:bool ->
  Jfeed_kb.Bundles.t ->
  string ->
  Outcome.t
(** {!grade_guarded} against the bundle's grading spec, then (unless
    [~with_tests:false]) the bundle's functional-test suite under the
    same budget.  A submission that merely {e fails} the tests is still
    [Graded] — test failure is a grading verdict, not a degradation;
    but fuel exhaustion mid-test ({!Outcome.Interp_exhausted}) or an
    unrunnable suite ({!Outcome.Tests_skipped}) degrade. *)

(** {2 Batch driver} *)

type item = {
  file : string;
  outcome : Outcome.t;
  fuel_spent : int;  (** fuel this submission consumed *)
  trace : Jfeed_trace.Trace.t;
      (** this submission's tracer; {!Jfeed_trace.Trace.disabled} unless
          the caller asked for tracing *)
}

val grade_submission :
  ?fuel:int ->
  ?deadline_s:float ->
  ?rid:string ->
  ?with_tests:bool ->
  ?name:string ->
  ?trace:Jfeed_trace.Trace.t ->
  Jfeed_kb.Bundles.t ->
  string ->
  item
(** Assess one source string with batch-grade isolation: a fresh budget
    ([?fuel] / [?deadline_s]) guards this call alone, and {e any}
    failure — including a bug inside the pipeline — lands in the item's
    outcome rather than an exception.  This is the persistent grading
    service's entry point ({!Jfeed_service.Server}): the bundle is a
    static value, so nothing is re-loaded per request.  [?name] (default
    ["<submission>"]) fills the item's [file] field.

    [?trace] (default disabled) is installed as the ambient tracer for
    the whole assessment ({!Jfeed_trace.Trace.with_current}), so every
    instrumented stage — [parse], [epdg], [match:<pattern>], [pairing],
    [interp], [analysis], [tests] — records into it; afterwards the
    per-stage fuel breakdown ({!Jfeed_budget.Budget.spent_by}) is added
    as [fuel.matcher] / [fuel.pairing] / [fuel.interp] counters.  The
    tracer is returned in the item's [trace] field.

    [?rid] wraps the whole assessment in one extra root span named
    ["request"] whose [rid] attribute carries the correlation id, so
    every stage span of a request-scoped trace descends from a node
    naming the request it served.  Absent (every non-serving caller),
    the span tree is unchanged. *)

type dedup_stats = {
  classes : int;
      (** α-equivalence classes among the readable submissions *)
  replayed : int;
      (** submissions answered by replaying their class representative *)
}

type summary = {
  assignment : string;
  total : int;
  graded : int;
  degraded : int;
  rejected : int;
  fuel_limit : int option;  (** per-submission allowance, when bounded *)
  dedup : dedup_stats option;  (** [None] when dedup was turned off *)
  items : item list;  (** input order *)
}

val dedup_classes : unit -> int
val dedup_replayed : unit -> int
(** Process-wide dedup totals (monotone atomics, summed over every
    {!run_batch} call) — read by the serve metrics exposition alongside
    the {!Jfeed_core.Plan} counters. *)

val run_batch :
  ?fuel:int ->
  ?deadline_s:float ->
  ?with_tests:bool ->
  ?jobs:int ->
  ?traced:bool ->
  ?dedup:bool ->
  Jfeed_kb.Bundles.t ->
  (string * (string, string) result) list ->
  summary
(** Assess each [(name, source)] pair with per-submission isolation: a
    fresh budget per submission ([?fuel] / [?deadline_s] bound each one
    independently), and any failure confined to its own item.  A pair
    whose source is [Error msg] (the caller could not read the file)
    is [Rejected] at stage ["read"].

    [?jobs] (default 1) grades submissions on that many parallel
    domains ({!Jfeed_parallel.Pool}).  The summary — items, order,
    counts, fuel — is {e byte-identical} at every [jobs] value when
    budgets are fuel-only: each submission gets its own fresh [?fuel]
    allowance whatever domain it runs on (per-domain pools sum to
    submissions × [?fuel]; see {!Jfeed_budget.Budget.split}), and
    results merge by input index, not completion order.  A
    [?deadline_s] budget reads the process-wide CPU clock, which
    several domains advance together, so deadline-bounded output is
    only reproducible at a fixed [jobs] value.

    [?traced] (default off) gives every submission a fresh live tracer
    ({!Jfeed_trace.Trace.create}), created {e inside} the worker so each
    domain writes only its own buffers; traces merge deterministically
    by submission index like every other item field.

    [?dedup] (default on) first groups the batch into α-equivalence
    classes by the serve cache's fingerprint
    ({!Jfeed_java.Fingerprint}: α-rename + canonical-print hash, raw
    bytes for unparseable input), grades only the {e first} member of
    each class — fuel is charged once, under that representative's own
    fresh budget — and replays the representative's item for every other
    member.  The grading report, test verdict, degradation reasons,
    fuel count and trace are α-invariant, so each replayed line is
    byte-identical to what independent grading would have produced,
    except analysis diagnostics (which quote member positions and
    variable names) — those are re-computed from the member's own bytes.
    Unique submissions are unaffected, and the work list is fixed before
    grading starts, so the dedup path is jobs-invariant like the plain
    one.  Deadline budgets carry the same caveat as jobs-invariance:
    wall-clock cut-offs are not reproducible, deduped or not.
    [~dedup:false] restores strict per-submission grading (and drops the
    summary's [dedup] field). *)

val summary_to_json : ?traces:bool -> summary -> string
(** Stable field order, one submission per line:
    [{"assignment":…,"total":…,"graded":…,"degraded":…,"rejected":…,
    ("fuel":…,)("dedup":{"classes":…,"replayed":…},)"submissions":[…]}].
    The per-submission [fuel] field appears only when a fuel limit was
    set, so unbudgeted output is byte-stable across runs; the [dedup]
    object appears unless the batch ran with [~dedup:false].  When the batch ran with [~traced:true]
    and [?traces] (default [true]) is not turned off, each submission
    line additionally carries its [trace] summary (see
    {!Outcome.to_json}); span timings vary run to run, the rest of the
    line does not.  [~traces:false] lets a caller that only wants the
    Chrome trace files ([jfeed batch --trace-dir] without [--trace])
    keep stdout byte-identical to an untraced run. *)

val exit_code : summary -> int
(** [0] when every submission graded cleanly, [1] when any was degraded
    or rejected — the batch CLI contract ([2] is reserved for usage
    errors, decided by the CLI itself). *)
