(** The fixpoint engine: abstract execution of method bodies.

    For every method the engine computes a stable abstract environment
    *before* each statement (keyed by the statement's physical identity,
    like {!Jfeed_java.Srcmap}) and at each loop's guard test.  Loops run
    to a post-fixpoint: plain joins for a few unrolled iterations, then
    widening (so infinite-height domains like intervals still settle),
    then a bounded narrowing descent, then one refresh pass so recorded
    body states agree with the settled loop head.

    Totality: every statement execution costs one unit of fuel; an
    exhausted engine abandons the method and reports nothing — recorded
    states from an unfinished ascent are below the invariant and
    therefore must not be consulted, so degradation is to "no
    information" (⊤ everywhere), never to an unsound table. *)

open Jfeed_java.Ast

(* Iterations of plain join before widening kicks in, and the cap on
   widened iterations (2 per endpoint suffices for intervals; the cap
   guards domains with slower-converging widenings and, qcheck-pinned,
   the engine's termination). *)
let unroll = 3
let widen_cap = 16
let narrow_steps = 2
let default_fuel = 50_000

exception Out_of_fuel

module Make (D : Domain.S) = struct
  module E = Env.Make (D)

  type result = {
    pre : (stmt, E.env) Hashtbl.t;
        (** stable abstract env before each reachable statement *)
    head : (stmt, E.env) Hashtbl.t;
        (** for loop statements: stable env at the guard test *)
    ret : D.t option;  (** join over the values of all [return e] *)
    steps : int;  (** fuel consumed *)
    widenings : int;
    exhausted : bool;  (** true: tables are empty, analysis declined *)
  }

  (* The constant constructors Sbreak/Scontinue/Sempty are physically
     shared atoms (see srcmap.mli); recording them would alias every
     occurrence.  They carry no expressions, so the passes never need
     their states anyway. *)
  let shareable = function Sbreak | Scontinue | Sempty -> true | _ -> false

  type ctx = {
    mutable fuel : int;
    mutable spent : int;
    mutable widened : int;
    res_pre : (stmt, E.env) Hashtbl.t;
    res_head : (stmt, E.env) Hashtbl.t;
    mutable res_ret : D.t option;
  }

  let tick ctx =
    if ctx.fuel <= 0 then raise Out_of_fuel;
    ctx.fuel <- ctx.fuel - 1;
    ctx.spent <- ctx.spent + 1

  (* Abstract control flow out of a statement. *)
  type flow = {
    normal : E.state;
    brk : E.state;
    cont : E.state;
    returned : bool;  (* purely informational; ret value is in ctx *)
  }

  let pure normal = { normal; brk = None; cont = None; returned = false }

  let join_flow a b =
    {
      normal = E.join_state a.normal b.normal;
      brk = E.join_state a.brk b.brk;
      cont = E.join_state a.cont b.cont;
      returned = a.returned || b.returned;
    }

  let note_ret ctx v =
    ctx.res_ret <-
      (match ctx.res_ret with None -> Some v | Some w -> Some (D.join v w))

  (* Join-record: a statement's table entry accumulates every state it
     was ever executed under.  The final refresh pass of each loop runs
     under the settled (post-fixpoint) head, so the join dominates a
     sound invariant whatever intermediate ascent/descent states also
     landed here — and a do-while body keeps its first-iteration entry
     alongside the continuing ones. *)
  let record ctx s env =
    if not (shareable s) then
      match Hashtbl.find_opt ctx.res_pre s with
      | None -> Hashtbl.replace ctx.res_pre s env
      | Some prev -> Hashtbl.replace ctx.res_pre s (E.join prev env)

  let rec exec ctx (st : E.state) (s : stmt) : flow =
    match st with
    | None -> pure None
    | Some env ->
        tick ctx;
        record ctx s env;
        exec_live ctx env s

  and exec_seq ctx st stmts =
    List.fold_left
      (fun acc s ->
        let f = exec ctx acc.normal s in
        {
          normal = f.normal;
          brk = E.join_state acc.brk f.brk;
          cont = E.join_state acc.cont f.cont;
          returned = acc.returned || f.returned;
        })
      (pure st) stmts

  and exec_decls env ds =
    List.fold_left
      (fun env (d : var_decl) ->
        match d.d_init with
        | Some e ->
            let env, v = E.eval env e in
            E.store env (Var d.d_name) v
        | None -> E.havoc_var env d.d_name)
      env ds

  and exec_live ctx env (s : stmt) : flow =
    match s with
    | Sempty -> pure (Some env)
    | Sexpr e -> pure (Some (fst (E.eval env e)))
    | Sdecl ds -> pure (Some (exec_decls env ds))
    | Sreturn e ->
        (match e with
        | Some e ->
            let _, v = E.eval env e in
            note_ret ctx v.E.v
        | None -> ());
        { normal = None; brk = None; cont = None; returned = true }
    | Sbreak -> { normal = None; brk = Some env; cont = None; returned = false }
    | Scontinue ->
        { normal = None; brk = None; cont = Some env; returned = false }
    | Sblock b -> exec_seq ctx (Some env) b
    | Sif (c, t, f) ->
        let ft = exec ctx (E.assume env c true) t in
        let ff =
          match f with
          | Some f -> exec ctx (E.assume env c false) f
          | None -> pure (E.assume env c false)
        in
        join_flow ft ff
    | Swhile (c, body) -> loop ctx env ~cond:(Some c) ~update:[] ~body s
    | Sfor (init, cond, update, body) ->
        let env =
          match init with
          | None -> env
          | Some (For_decl ds) -> exec_decls env ds
          | Some (For_exprs es) ->
              List.fold_left (fun env e -> fst (E.eval env e)) env es
        in
        loop ctx env ~cond ~update ~body s
    | Sdo (body, c) ->
        (* at least one execution of the body, then a while loop *)
        let first = exec ctx (Some env) body in
        let after_first =
          E.join_state first.normal first.cont
        in
        let rest =
          match after_first with
          | None -> pure None
          | Some env -> loop ctx env ~cond:(Some c) ~update:[] ~body s
        in
        {
          normal = E.join_state rest.normal first.brk;
          brk = rest.brk;
          cont = None;
          returned = first.returned || rest.returned;
        }
    | Sswitch (scrut, cases) ->
        let env = fst (E.eval env scrut) in
        (* No refinement on labels; fallthrough chains the cases.  A
           missing default means the whole switch may be skipped — and
           matching a non-default case is never certain either, so the
           entry state always joins the exit. *)
        let fall, out =
          List.fold_left
            (fun (fall, out) (c : switch_case) ->
              let entry = E.join_state (Some env) fall in
              let f = exec_seq ctx entry c.case_body in
              (f.normal, join_flow out { f with normal = None }))
            (None, pure None) cases
        in
        {
          normal = E.join_state (E.join_state (Some env) fall) out.brk;
          brk = None;
          cont = out.cont;
          returned = out.returned;
        }

  (* Shared loop solver for while/for (and the tail of do-while).
     [s] is the loop statement itself — the key under which the stable
     guard-test environment is recorded. *)
  and loop ctx entry_env ~cond ~update ~body s : flow =
    let assume_cond env want =
      match cond with
      | None -> if want then Some env else None
      | Some c -> E.assume env c want
    in
    let run_update st =
      match st with
      | None -> None
      | Some env ->
          Some (List.fold_left (fun env e -> fst (E.eval env e)) env update)
    in
    (* one abstract iteration from a guard-test state: body, continue
       joins back in, then the for-update *)
    let iterate head_env =
      let f = exec ctx (assume_cond head_env true) body in
      let back = run_update (E.join_state f.normal f.cont) in
      (back, f)
    in
    let rec settle i head =
      tick ctx;
      let back, _ = iterate head in
      let next =
        match E.join_state (Some entry_env) back with
        | Some e -> e
        | None -> entry_env
      in
      if E.equal next head then head
      else if i >= unroll + widen_cap then
        (* Safety net for a domain whose widening fails to converge
           within the cap: the all-top environment is trivially a
           post-fixpoint — degrade to ⊤ rather than iterate on. *)
        E.empty
      else if i >= unroll then begin
        ctx.widened <- ctx.widened + 1;
        settle (i + 1) (E.widen head next)
      end
      else settle (i + 1) next
    in
    let head = settle 0 entry_env in
    (* Bounded narrowing descent.  Each candidate is re-checked to still
       be a post-fixpoint before adoption, so the head handed to the
       passes is always verified stable — narrowing can only sharpen,
       never desynchronize. *)
    let rec descend k head =
      if k = 0 then head
      else
        let back, _ = iterate head in
        match E.join_state (Some entry_env) back with
        | None -> head
        | Some next ->
            let n = E.narrow head next in
            if E.equal n head then head
            else
              let back2, _ = iterate n in
              let stable =
                match E.join_state (Some entry_env) back2 with
                | None -> true
                | Some chk -> E.leq chk n
              in
              if stable then descend (k - 1) n else head
    in
    let head = descend narrow_steps head in
    if not (shareable s) then Hashtbl.replace ctx.res_head s head;
    (* refresh pass: re-record body states against the settled head *)
    let _, f = iterate head in
    let exit = assume_cond head false in
    {
      normal = E.join_state exit f.brk;
      brk = None;
      cont = None;
      returned = f.returned;
    }

  let analyze_meth ?(fuel = default_fuel) (m : meth) : result =
    let ctx =
      {
        fuel;
        spent = 0;
        widened = 0;
        res_pre = Hashtbl.create 64;
        res_head = Hashtbl.create 8;
        res_ret = None;
      }
    in
    (* Parameters are unknown; so are array-parameter lengths.  [empty]
       maps everything to top already. *)
    match exec_seq ctx (Some E.empty) m.m_body with
    | _ ->
        {
          pre = ctx.res_pre;
          head = ctx.res_head;
          ret = ctx.res_ret;
          steps = ctx.spent;
          widenings = ctx.widened;
          exhausted = false;
        }
    | exception Out_of_fuel ->
        {
          pre = Hashtbl.create 0;
          head = Hashtbl.create 0;
          ret = None;
          steps = ctx.spent;
          widenings = ctx.widened;
          exhausted = true;
        }
end
