(** Diagnostic passes over the interval abstract interpretation
    (tentpole of PR 9), plus the combined analysis driver the pipeline
    and CLI call.

    Five passes ride on one {!Engine.Make}{!Interval} fixpoint per
    method:

    - [div-by-zero] — a division/modulo whose divisor is the constant 0
      (error);
    - [array-out-of-bounds] — an index that is *definitely* outside the
      tracked array length: always negative, or provably at/past every
      possible length (error);
    - [constant-condition] — a guard that reads variables yet always
      decides the same way; an always-true loop guard with no
      [break]/[return] escape is flagged as a likely infinite loop
      (warning);
    - [unused-range] — a compound guard whose overall truth is open but
      one comparison leaf is already decided because a variable it reads
      is provably constant (warning);
    - [efficiency] — loop-bound inference assigns each method a
      polynomial degree (constant / linear-per-loop, composed across
      nesting); a submission whose degree exceeds the oracle solution's
      for the same-named method is flagged at the offending loop
      (warning).

    Every entry point is total: engine fuel exhaustion degrades to "no
    information", and a pass that raises reports one diagnostic of its
    own id (same discipline as {!Jfeed_analysis.Passes}). *)

open Jfeed_java
module Diagnostic = Jfeed_analysis.Diagnostic

module AI : module type of Engine.Make (Interval)
(** The interval instantiation all passes share (one fixpoint per
    method); exposed for the demo and the soundness tests. *)

val pass_ids : string list
(** The five abstract-interpretation pass ids, canonical order. *)

val all_pass_ids : string list
(** {!Jfeed_analysis.Passes.pass_ids} followed by {!pass_ids} — the ten
    ids [jfeed analyze --only/--except] validates against. *)

(** {1 Loop bounds and cost signatures} *)

type bound =
  | Bconst  (** trip count bounded by a compile-time constant *)
  | Blinear of string  (** linear in the named symbol, e.g. ["a.length"] *)
  | Bunknown

type cost = Known of int  (** polynomial degree *) | Unknown_cost

val classify_loop : AI.result -> Ast.stmt -> bound
(** Bound of one loop statement given its method's engine result. *)

val method_cost : ?fuel:int -> Ast.meth -> cost * Ast.stmt option
(** Degree of the deepest classified loop nest and its outermost
    degree-raising loop (the witness the efficiency diagnostic points
    at).  Any unclassifiable loop makes the whole method
    [Unknown_cost]. *)

val method_degrees : ?fuel:int -> Ast.program -> (string * int) list
(** Per-method known degrees — computed once per oracle program and
    passed to {!analyze_program} as [oracle_degrees]. *)

val degree_str : int -> string
(** [0 → "O(1)"], [1 → "O(n)"], [d → "O(n^d)"]. *)

val bound_stats : ?fuel:int -> Ast.program -> int * int
(** [(loops, classified)] over a program — the bench gate's
    bound-inference hit rate. *)

(** {1 Drivers} *)

val analyze_method :
  ?srcmap:Srcmap.t ->
  ?fuel:int ->
  ?oracle_degrees:(string * int) list ->
  Ast.meth ->
  Diagnostic.t list
(** The five abstract-interpretation passes only (one engine run). *)

val analyze_program :
  ?srcmap:Srcmap.t ->
  ?fuel:int ->
  ?oracle:Ast.program ->
  ?oracle_degrees:(string * int) list ->
  Ast.program ->
  Diagnostic.t list
(** The combined analysis: the five {!Jfeed_analysis.Passes} passes plus
    the five passes here, overlap-merged (a [suspicious-loop] and a
    [constant-condition] diagnostic on the same guard collapse into one)
    and sorted by {!Diagnostic.compare}.  [oracle_degrees] wins over
    [oracle] when both are given. *)

val analyze_source :
  ?fuel:int ->
  ?oracle:Ast.program ->
  ?oracle_degrees:(string * int) list ->
  string ->
  Diagnostic.t list
(** Parse with positions and run {!analyze_program}; total on parse
    failures (one [parse] diagnostic). *)

val count_by_pass : Diagnostic.t list -> (string * int) list
(** Counts keyed by {!all_pass_ids} (all ten present, zeros included),
    other passes appended in first-seen order. *)
