(** Interval domain.  See interval.mli. *)

open Jfeed_java.Ast

let min32 = -0x80000000
let max32 = 0x7fffffff

type bound = Ninf | Pinf | Fin of int
type t = { lo : bound; hi : bound }

let name = "interval"
let top = { lo = Ninf; hi = Pinf }
let is_top v = v.lo = Ninf && v.hi = Pinf

(* Bound comparisons.  [Fin] payloads are always within the 32-bit
   range, so Ninf/Pinf never collide with a finite value. *)
let blt a b =
  match (a, b) with
  | Ninf, Ninf | Pinf, Pinf -> false
  | Ninf, _ | _, Pinf -> true
  | Pinf, _ | _, Ninf -> false
  | Fin x, Fin y -> x < y

let bmin a b = if blt b a then b else a
let bmax a b = if blt a b then b else a
let equal a b = a.lo = b.lo && a.hi = b.hi

(* Constructor: any endpoint outside the 32-bit range means the value
   set may have wrapped, so the whole axis is possible. *)
let mk lo hi =
  let out = function Fin n -> n < min32 || n > max32 | Ninf | Pinf -> false in
  if out lo || out hi then top else { lo; hi }

let range lo hi =
  if lo > hi then invalid_arg "Interval.range";
  mk (Fin lo) (Fin hi)

let const n = if n < min32 || n > max32 then top else { lo = Fin n; hi = Fin n }
let of_bool b = const (if b then 1 else 0)

let of_truth = function
  | Domain.True -> of_bool true
  | Domain.False -> of_bool false
  | Domain.Unknown -> { lo = Fin 0; hi = Fin 1 }

let join a b = { lo = bmin a.lo b.lo; hi = bmax a.hi b.hi }

let meet a b =
  let lo = bmax a.lo b.lo and hi = bmin a.hi b.hi in
  if blt hi lo then None else Some { lo; hi }

(* Standard interval widening: an endpoint that moved jumps to its
   infinity, so any ascending chain stabilizes in at most two steps per
   endpoint. *)
let widen old next =
  {
    lo = (if blt next.lo old.lo then Ninf else old.lo);
    hi = (if blt old.hi next.hi then Pinf else old.hi);
  }

(* Narrowing refines only the endpoints widening blew to infinity. *)
let narrow wide refined =
  {
    lo = (if wide.lo = Ninf then refined.lo else wide.lo);
    hi = (if wide.hi = Pinf then refined.hi else wide.hi);
  }

let lo_int v = match v.lo with Fin n -> Some n | _ -> None
let hi_int v = match v.hi with Fin n -> Some n | _ -> None

let is_const v =
  match (v.lo, v.hi) with
  | Fin a, Fin b when a = b -> Some a
  | _ -> None

let mem n v =
  (match v.lo with Ninf -> true | Fin l -> l <= n | Pinf -> false)
  && match v.hi with Pinf -> true | Fin h -> n <= h | Ninf -> false

let to_string v =
  let b = function
    | Ninf -> "-inf"
    | Pinf -> "+inf"
    | Fin n -> string_of_int n
  in
  match is_const v with
  | Some n -> Printf.sprintf "[%d]" n
  | None -> Printf.sprintf "[%s, %s]" (b v.lo) (b v.hi)

(* ------------------------------------------------------------------ *)
(* Arithmetic.  Finite corner arithmetic is done in Int64 — products of
   32-bit values reach 2^62, the edge of OCaml's native int — and any
   corner outside 32-bit range collapses to top (see mli).              *)

let badd a b =
  match (a, b) with
  | Ninf, Pinf | Pinf, Ninf -> assert false
  | Ninf, _ | _, Ninf -> Ninf
  | Pinf, _ | _, Pinf -> Pinf
  | Fin x, Fin y -> Fin (x + y)

let bneg = function Ninf -> Pinf | Pinf -> Ninf | Fin n -> Fin (-n)

let add a b = mk (badd a.lo b.lo) (badd a.hi b.hi)
let neg a = mk (bneg a.hi) (bneg a.lo)
let sub a b = add a (neg b)

(* Corner evaluation over a monotone-in-each-argument (or at least
   corner-extremal) operation: used for multiplication and for division
   by a sign-definite divisor. *)
let corners f a b =
  let fin = function Fin n -> Some (Int64.of_int n) | _ -> None in
  match (fin a.lo, fin a.hi, fin b.lo, fin b.hi) with
  | Some al, Some ah, Some bl, Some bh ->
      let vs = [ f al bl; f al bh; f ah bl; f ah bh ] in
      let lo = List.fold_left min (List.hd vs) (List.tl vs) in
      let hi = List.fold_left max (List.hd vs) (List.tl vs) in
      if
        lo < Int64.of_int min32
        || hi > Int64.of_int max32
      then top
      else mk (Fin (Int64.to_int lo)) (Fin (Int64.to_int hi))
  | _ -> top

let mul a b = corners Int64.mul a b

(* Division: Java truncates toward zero ([Int64.div] agrees).  Only a
   sign-definite, zero-free divisor keeps corner evaluation exact; a
   divisor that may be zero (a potential runtime error — flagged by the
   div-by-zero pass separately) or spans zero answers top. *)
let div a b =
  match (b.lo, b.hi) with
  | Fin l, _ when l >= 1 -> corners Int64.div a b
  | _, Fin h when h <= -1 -> corners Int64.div a b
  | _ -> top

(* Remainder: sign follows the dividend, magnitude stays below the
   divisor's. *)
let rem a b =
  let mag =
    match (b.lo, b.hi) with
    | Fin l, Fin h when l >= 1 || h <= -1 -> Some (max (abs l) (abs h) - 1)
    | _ -> None
  in
  match mag with
  | None -> top
  | Some m ->
      let lo =
        match a.lo with
        | Fin l when l >= 0 -> Fin 0
        | Fin l -> Fin (max l (-m))
        | _ -> Fin (-m)
      in
      let hi =
        match a.hi with
        | Fin h when h <= 0 -> Fin 0
        | Fin h -> Fin (min h m)
        | _ -> Fin m
      in
      mk lo hi

let unop op v =
  match op with
  | Neg -> neg v
  | Uplus -> v
  | Not -> (
      (* boolean 0/1 encoding *)
      match is_const v with
      | Some 0 -> of_bool true
      | Some _ -> of_bool false
      | None -> of_truth Domain.Unknown)
  | Bit_not -> top

let truth op a b =
  let open Domain in
  match op with
  | Lt ->
      if blt a.hi b.lo then True
      else if not (blt a.lo b.hi) then False
      else Unknown
  | Le ->
      if not (blt b.lo a.hi) then True
      else if blt b.hi a.lo then False
      else Unknown
  | Gt ->
      if blt b.hi a.lo then True
      else if not (blt b.lo a.hi) then False
      else Unknown
  | Ge ->
      if not (blt a.lo b.hi) then True
      else if blt a.hi b.lo then False
      else Unknown
  | Eq -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> if x = y then True else False
      | _ -> if meet a b = None then False else Unknown)
  | Ne -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> if x <> y then True else False
      | _ -> if meet a b = None then True else Unknown)
  | _ -> Unknown

let truth_of_value v =
  match is_const v with
  | Some 0 -> Domain.False
  | Some _ -> Domain.True
  | None -> if mem 0 v then Domain.Unknown else Domain.True

let binop op a b =
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> div a b
  | Mod -> rem a b
  | Lt | Le | Gt | Ge | Eq | Ne -> of_truth (truth op a b)
  | And -> of_truth (Domain.and3 (truth_of_value a) (truth_of_value b))
  | Or -> of_truth (Domain.or3 (truth_of_value a) (truth_of_value b))
  | Bit_and | Bit_or | Bit_xor | Shl | Shr | Ushr -> top

(* Bound nudges for strict comparisons; saturate instead of wrapping. *)
let bpred = function Fin n when n > min32 -> Fin (n - 1) | b -> b
let bsucc = function Fin n when n < max32 -> Fin (n + 1) | b -> b

let assume op a b =
  let pair ao bo = match (ao, bo) with Some a, Some b -> Some (a, b) | _ -> None in
  match op with
  | Lt ->
      pair
        (meet a { lo = Ninf; hi = bpred b.hi })
        (meet b { lo = bsucc a.lo; hi = Pinf })
  | Le ->
      pair (meet a { lo = Ninf; hi = b.hi }) (meet b { lo = a.lo; hi = Pinf })
  | Gt ->
      pair
        (meet a { lo = bsucc b.lo; hi = Pinf })
        (meet b { lo = Ninf; hi = bpred a.hi })
  | Ge ->
      pair (meet a { lo = b.lo; hi = Pinf }) (meet b { lo = Ninf; hi = a.hi })
  | Eq -> (
      match meet a b with Some m -> Some (m, m) | None -> None)
  | Ne -> (
      (* only a singleton on the other side sharpens an endpoint *)
      let chip v w =
        match is_const w with
        | Some n ->
            if v.lo = Fin n && v.hi = Fin n then None
            else if v.lo = Fin n then meet v { lo = bsucc v.lo; hi = v.hi }
            else if v.hi = Fin n then meet v { lo = v.lo; hi = bpred v.hi }
            else Some v
        | None -> Some v
      in
      pair (chip a b) (chip b a))
  | _ -> Some (a, b)
