(** Non-relational abstract environments over a {!Domain.S}.

    An environment maps variable names to abstract values and array
    variables to abstract *lengths* (Java array lengths are immutable,
    so a tracked length survives method calls that receive the array).
    Absent bindings mean top — environments are kept normalized so that
    structural equality of the maps is lattice equality, which is what
    the engine's fixpoint test needs.

    Expression evaluation threads the environment left-to-right (Java
    evaluation order), so embedded assignments and increments land
    before later reads of the same expression. *)

module SM = Map.Make (String)

module Make (D : Domain.S) = struct
  type env = { vars : D.t SM.t; lens : D.t SM.t }

  type state = env option
  (** [None] = unreachable. *)

  let empty = { vars = SM.empty; lens = SM.empty }

  (* Normalized insert: a top binding is the same as no binding. *)
  let set_var env x v =
    if Jfeed_java.Ast.is_class_name x then env
    else if D.is_top v then { env with vars = SM.remove x env.vars }
    else { env with vars = SM.add x v env.vars }

  let set_len env x v =
    if D.is_top v then { env with lens = SM.remove x env.lens }
    else { env with lens = SM.add x v env.lens }

  let var env x = match SM.find_opt x env.vars with Some v -> v | None -> D.top
  let len env x = SM.find_opt x env.lens

  let havoc_var env x =
    { vars = SM.remove x env.vars; lens = SM.remove x env.lens }

  let equal a b = SM.equal D.equal a.vars b.vars && SM.equal D.equal a.lens b.lens

  (* [a ⊑ b] in the pointwise order (absent = top).  Every binding of
     [b] must dominate [a]'s value there; [a]'s extra bindings are below
     the top [b] implies. *)
  let leq a b =
    let sub bm am =
      SM.for_all
        (fun x bv ->
          match SM.find_opt x am with
          | Some av -> D.equal (D.join av bv) bv
          | None -> false)
        bm
    in
    sub b.vars a.vars && sub b.lens a.lens

  (* Pointwise merge; a key missing on either side is top, and top
     results are dropped to keep the normal form. *)
  let merge_with f a b =
    SM.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, Some y ->
            let v = f x y in
            if D.is_top v then None else Some v
        | _ -> None)
      a b

  let join a b =
    { vars = merge_with D.join a.vars b.vars;
      lens = merge_with D.join a.lens b.lens }

  let widen old next =
    { vars = merge_with D.widen old.vars next.vars;
      lens = merge_with D.widen old.lens next.lens }

  let narrow wide refined =
    (* Narrowing may re-tighten a binding that widening dropped to top
       (= removed), so the refined side's extra keys are kept. *)
    let nar w r =
      SM.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y ->
              let v = D.narrow x y in
              if D.is_top v then None else Some v
          | None, Some y -> Some y
          | Some _, None | None, None -> None)
        w r
    in
    { vars = nar wide.vars refined.vars; lens = nar wide.lens refined.lens }

  let join_state a b =
    match (a, b) with
    | None, s | s, None -> s
    | Some a, Some b -> Some (join a b)

  (* ---------------------------------------------------------------- *)
  (* Evaluation                                                        *)

  open Jfeed_java.Ast

  type aval = { v : D.t; alen : D.t option }
  (** Abstract value plus, for array-typed expressions, the abstract
      length riding along so [a = new int[n]] and [b = a] track it. *)

  let scalar v = { v; alen = None }

  let rec eval env e : env * aval =
    match e with
    | Int_lit n -> (env, scalar (D.const n))
    | Char_lit c -> (env, scalar (D.const (Char.code c)))
    | Bool_lit b -> (env, scalar (D.of_bool b))
    | Double_lit _ | Str_lit _ | Null_lit -> (env, scalar D.top)
    | Var x -> (env, { v = var env x; alen = len env x })
    | Field (b, "length") ->
        let env, bv = eval env b in
        let v = match bv.alen with Some l -> l | None -> D.top in
        (env, scalar v)
    | Field (b, _) ->
        let env, _ = eval env b in
        (env, scalar D.top)
    | Index (a, i) ->
        let env, _ = eval env a in
        let env, _ = eval env i in
        (env, scalar D.top)
    | Call (recv, _, args) ->
        (* Calls cannot rebind the caller's locals, and array lengths
           are immutable, so the environment survives; the result is
           unknown. *)
        let env = match recv with Some r -> fst (eval env r) | None -> env in
        let env = List.fold_left (fun env a -> fst (eval env a)) env args in
        (env, scalar D.top)
    | New (_, args) ->
        let env = List.fold_left (fun env a -> fst (eval env a)) env args in
        (env, scalar D.top)
    | New_array (_, dims) -> (
        match dims with
        | d0 :: rest ->
            let env, l = eval env d0 in
            let env =
              List.fold_left (fun env a -> fst (eval env a)) env rest
            in
            (env, { v = D.top; alen = Some l.v })
        | [] -> (env, scalar D.top))
    | Array_lit elts ->
        let env =
          List.fold_left (fun env a -> fst (eval env a)) env elts
        in
        (env, { v = D.top; alen = Some (D.const (List.length elts)) })
    | Unary (op, a) ->
        let env, av = eval env a in
        (env, scalar (D.unop op av.v))
    | Cast (Tprim ("int" | "long"), a) ->
        let env, av = eval env a in
        (env, scalar av.v)
    | Cast (_, a) ->
        let env, _ = eval env a in
        (env, scalar D.top)
    | Incdec (k, target) -> (
        let env, tv = eval env target in
        let delta = match k with
          | Pre_incr | Post_incr -> D.const 1
          | Pre_decr | Post_decr -> D.const (-1)
        in
        let after = D.binop Add tv.v delta in
        let env = store env target (scalar after) in
        match k with
        | Pre_incr | Pre_decr -> (env, scalar after)
        | Post_incr | Post_decr -> (env, scalar tv.v))
    | Binary (And, a, b) -> (
        (* short-circuit: b evaluates only when a holds *)
        let env, av = eval env a in
        match D.truth_of_value av.v with
        | Domain.False -> (env, scalar (D.of_bool false))
        | t ->
            let env, bv = eval env b in
            (env, scalar (D.of_truth (Domain.and3 t (D.truth_of_value bv.v)))))
    | Binary (Or, a, b) -> (
        let env, av = eval env a in
        match D.truth_of_value av.v with
        | Domain.True -> (env, scalar (D.of_bool true))
        | t ->
            let env, bv = eval env b in
            (env, scalar (D.of_truth (Domain.or3 t (D.truth_of_value bv.v)))))
    | Binary (op, a, b) ->
        let env, av = eval env a in
        let env, bv = eval env b in
        (env, scalar (D.binop op av.v bv.v))
    | Ternary (c, t, f) ->
        let env, cv = eval env c in
        (match D.truth_of_value cv.v with
        | Domain.True -> eval env t
        | Domain.False -> eval env f
        | Domain.Unknown ->
            let envt, tv = eval env t in
            let envf, fv = eval env f in
            ( join envt envf,
              {
                v = D.join tv.v fv.v;
                alen =
                  (match (tv.alen, fv.alen) with
                  | Some a, Some b -> Some (D.join a b)
                  | _ -> None);
              } ))
    | Assign (Set, lhs, rhs) ->
        let env =
          (* index/receiver subexpressions of the target are evaluated *)
          match lhs with Var _ -> env | _ -> fst (eval env lhs)
        in
        let env, rv = eval env rhs in
        (store env lhs rv, rv)
    | Assign (op, lhs, rhs) ->
        let bop =
          match op with
          | Add_eq -> Add
          | Sub_eq -> Sub
          | Mul_eq -> Mul
          | Div_eq -> Div
          | Mod_eq -> Mod
          | Set -> assert false
        in
        let env, lv = eval env lhs in
        let env, rv = eval env rhs in
        let nv = scalar (D.binop bop lv.v rv.v) in
        (store env lhs nv, nv)

  and store env lhs rv =
    match lhs with
    | Var x ->
        let env = set_var env x rv.v in
        set_len env x (match rv.alen with Some l -> l | None -> D.top)
    | Index (a, _) -> (
        (* element stores don't move the array variable or its length *)
        match a with Var _ -> env | _ -> env)
    | Field _ -> env
    | _ -> env

  (* ---------------------------------------------------------------- *)
  (* Guard truth and refinement                                        *)

  let rec truth_of env e : Domain.truth =
    match e with
    | Bool_lit b -> if b then Domain.True else Domain.False
    | Unary (Not, a) -> Domain.not3 (truth_of env a)
    | Binary (And, a, b) -> Domain.and3 (truth_of env a) (truth_of env b)
    | Binary (Or, a, b) -> Domain.or3 (truth_of env a) (truth_of env b)
    | Binary (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
        let env, av = eval env a in
        let _, bv = eval env b in
        D.truth op av.v bv.v
    | _ ->
        let _, v = eval env e in
        D.truth_of_value v.v

  let negate_cmp = function
    | Lt -> Ge
    | Le -> Gt
    | Gt -> Le
    | Ge -> Lt
    | Eq -> Ne
    | Ne -> Eq
    | op -> op

  (* [assume env e want]: the environment refined under "e evaluates to
     [want]"; [None] when that is impossible.  Refinement writes back
     through plain variables and through [arr.length] reads. *)
  let rec assume env e want : state =
    match e with
    | Bool_lit b -> if b = want then Some env else None
    | Unary (Not, a) -> assume env a (not want)
    | Binary (And, a, b) when want -> (
        match assume env a true with
        | None -> None
        | Some env -> assume env b true)
    | Binary (Or, a, b) when not want -> (
        match assume env a false with
        | None -> None
        | Some env -> assume env b false)
    | Binary (And, a, b) ->
        (* ¬(a ∧ b): either side may fail *)
        join_state (assume env a false)
          (match assume env a true with
          | None -> None
          | Some env -> assume env b false)
    | Binary (Or, a, b) ->
        join_state (assume env a true)
          (match assume env a false with
          | None -> None
          | Some env -> assume env b true)
    | Binary (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) -> (
        let op = if want then op else negate_cmp op in
        let env, av = eval env a in
        let env, bv = eval env b in
        match D.assume op av.v bv.v with
        | None -> None
        | Some (ra, rb) ->
            let refine env side r =
              match side with
              | Var x -> set_var env x r
              | Field (Var arr, "length") -> set_len env arr r
              | _ -> env
            in
            Some (refine (refine env a ra) b rb))
    | Var x -> (
        let r = D.meet (var env x) (D.of_bool want) in
        match r with None -> None | Some r -> Some (set_var env x r))
    | _ -> (
        let env, v = eval env e in
        match (D.truth_of_value v.v, want) with
        | Domain.True, false | Domain.False, true -> None
        | _ -> Some env)
end
