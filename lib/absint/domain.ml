(** Abstract domain signature for the fixpoint engine.

    A domain abstracts the values of Java [int]-typed expressions (and,
    through a 0/1 encoding, booleans).  {!Env.Make} lifts a domain to a
    non-relational environment lattice; {!Engine.Make} runs the fixpoint
    over method bodies.  {!Interval} is the shipped instance; parity or
    congruence domains drop in by implementing {!S} — nothing in the env
    or engine functors mentions intervals.

    Domains here have no bottom element: the unreachable state is
    represented one level up (an [Env.state] is an [env option], [None]
    = unreachable), so the only partiality a domain exposes is
    {!S.meet}/{!S.assume} returning [None] for an empty result. *)

(** Three-valued verdict of an abstract comparison. *)
type truth = True | False | Unknown

let not3 = function True -> False | False -> True | Unknown -> Unknown

let and3 a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or3 a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

module type S = sig
  type t

  val name : string
  (** e.g. ["interval"] — used in trace span labels and demos. *)

  val top : t
  val is_top : t -> bool
  val equal : t -> t -> bool
  val join : t -> t -> t

  val meet : t -> t -> t option
  (** [None] when the intersection is empty. *)

  val widen : t -> t -> t
  (** [widen old next]: extrapolate an ascending chain; must reach a
      fixed point in finitely many steps (the engine's termination
      argument, qcheck-verified over the Mutate corpus). *)

  val narrow : t -> t -> t
  (** [narrow wide refined]: recover precision after widening without
      descending below any sound approximation. *)

  val const : int -> t
  val of_bool : bool -> t

  val of_truth : truth -> t
  (** [True]/[False] map through {!of_bool}; [Unknown] is their join. *)

  val unop : Jfeed_java.Ast.unop -> t -> t
  val binop : Jfeed_java.Ast.binop -> t -> t -> t

  val truth : Jfeed_java.Ast.binop -> t -> t -> truth
  (** Verdict of a comparison ([Lt]..[Ne]); [Unknown] for any other
      operator. *)

  val truth_of_value : t -> truth
  (** Boolean reading of an abstract value under the 0/1 encoding:
      definitely zero = [False], definitely nonzero = [True]. *)

  val assume : Jfeed_java.Ast.binop -> t -> t -> (t * t) option
  (** [assume cmp a b]: refine both sides under the assumption that the
      comparison holds; [None] when it cannot.  Identity for operators
      the domain cannot refine. *)

  val is_const : t -> int option
  val to_string : t -> string
end
