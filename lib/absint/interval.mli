(** The interval domain: machine-integer ranges with widening/narrowing.

    Values abstract Java [int]s, which wrap at 32 bits in the concrete
    interpreter ({!Jfeed_interp.Interp}); every transfer function that
    could leave the 32-bit range answers {!top} instead of modelling the
    wrap, so the soundness invariant (the concrete value lies inside the
    inferred interval) holds without tracking modular arithmetic.

    Beyond {!Domain.S}, the interval exposes its bounds — the loop-bound
    inference in {!Passes} needs the endpoints to turn a counter range
    and a guard into an iteration count. *)

type bound = Ninf | Pinf | Fin of int

type t = private { lo : bound; hi : bound }
(** Invariant: [lo <= hi], both within (or beyond) the 32-bit range;
    never empty — emptiness is signalled by [meet]/[assume] returning
    [None]. *)

include Domain.S with type t := t

val range : int -> int -> t
(** [range lo hi]; clamped to {!top} when it leaves 32-bit range.
    Raises [Invalid_argument] if [lo > hi]. *)

val lo_int : t -> int option
(** The finite lower bound, if any. *)

val hi_int : t -> int option

val mem : int -> t -> bool
(** Concrete membership — the soundness oracle's check. *)
