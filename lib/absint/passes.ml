(** The abstract-interpretation diagnostic passes.  See passes.mli. *)

open Jfeed_java
open Ast
module Diagnostic = Jfeed_analysis.Diagnostic
module AI = Engine.Make (Interval)
module E = AI.E

let pass_ids =
  [ "div-by-zero"; "array-out-of-bounds"; "constant-condition";
    "unused-range"; "efficiency" ]

let all_pass_ids = Jfeed_analysis.Passes.pass_ids @ pass_ids
let quote x = "'" ^ x ^ "'"
let stmt_pos srcmap s = Option.bind srcmap (fun m -> Srcmap.stmt_pos m s)

(* ------------------------------------------------------------------ *)
(* Walking statements with their inferred states                       *)

(* Every subexpression, the node itself included. *)
let rec iter_expr f e =
  f e;
  match e with
  | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _ | Null_lit
  | Var _ ->
      ()
  | Field (e, _) | Unary (_, e) | Incdec (_, e) | Cast (_, e) -> iter_expr f e
  | Index (a, b) | Binary (_, a, b) | Assign (_, a, b) ->
      iter_expr f a;
      iter_expr f b
  | Call (recv, _, args) ->
      Option.iter (iter_expr f) recv;
      List.iter (iter_expr f) args
  | New (_, es) | New_array (_, es) | Array_lit es -> List.iter (iter_expr f) es
  | Ternary (a, b, c) ->
      iter_expr f a;
      iter_expr f b;
      iter_expr f c

(* Purely syntactic statement traversal. *)
let rec iter_stmt f s =
  f s;
  match s with
  | Sblock b -> List.iter (iter_stmt f) b
  | Sif (_, t, fo) ->
      iter_stmt f t;
      Option.iter (iter_stmt f) fo
  | Swhile (_, b) | Sdo (b, _) | Sfor (_, _, _, b) -> iter_stmt f b
  | Sswitch (_, cs) ->
      List.iter (fun c -> List.iter (iter_stmt f) c.case_body) cs
  | _ -> ()

(* Visit each statement the engine found reachable, with its stable
   pre-state. *)
let iter_reachable (r : AI.result) body ~f =
  iter_stmt
    (fun s ->
      match Hashtbl.find_opt r.AI.pre s with
      | Some env -> f s env
      | None -> ())
    (Sblock body)

(* A statement's own expressions paired with the environment they are
   evaluated under: loop guards and for-updates run under the settled
   loop-head state, everything else under the statement's pre-state.
   (Within one statement this is an entry-state approximation — sound
   enough for the definite-error passes, which only fire on constants.) *)
let stmt_exprs (r : AI.result) s env =
  let head () = Hashtbl.find_opt r.AI.head s in
  let at_head e = match head () with Some h -> [ (h, e) ] | None -> [] in
  let decl_inits ds =
    List.filter_map (fun d -> Option.map (fun e -> (env, e)) d.d_init) ds
  in
  match s with
  | Sexpr e -> [ (env, e) ]
  | Sdecl ds -> decl_inits ds
  | Sreturn (Some e) -> [ (env, e) ]
  | Sreturn None | Sbreak | Scontinue | Sempty | Sblock _ -> []
  | Sif (c, _, _) -> [ (env, c) ]
  | Sswitch (scrut, cases) ->
      (env, scrut)
      :: List.filter_map
           (fun c -> Option.map (fun l -> (env, l)) c.case_label)
           cases
  | Swhile (c, _) -> at_head c
  | Sdo (_, c) -> at_head c
  | Sfor (init, cond, update, _) ->
      let inits =
        match init with
        | Some (For_decl ds) -> decl_inits ds
        | Some (For_exprs es) -> List.map (fun e -> (env, e)) es
        | None -> []
      in
      inits
      @ (match cond with Some c -> at_head c | None -> [])
      @ List.concat_map at_head update

let each_site r m ~f =
  iter_reachable r m.m_body ~f:(fun s env ->
      List.iter
        (fun (env, e) -> iter_expr (f s env) e)
        (stmt_exprs r s env))

(* ------------------------------------------------------------------ *)
(* Pass: div-by-zero                                                   *)

let div_by_zero ?srcmap (r : AI.result) (m : meth) =
  let diags = ref [] in
  let site s env e =
    let check word d =
      let _, dv = E.eval env d in
      if Interval.is_const dv.E.v = Some 0 then
        diags :=
          Diagnostic.make ~pass:"div-by-zero" ~severity:Error ~meth:m.m_name
            ?pos:(stmt_pos srcmap s)
            (Printf.sprintf "%s by zero: %s is always 0" word
               (quote (Pretty.expr d)))
          :: !diags
    in
    match e with
    | Binary (Div, _, d) | Assign (Div_eq, _, d) -> check "division" d
    | Binary (Mod, _, d) | Assign (Mod_eq, _, d) -> check "modulo" d
    | _ -> ()
  in
  each_site r m ~f:site;
  List.sort_uniq Diagnostic.compare !diags

(* ------------------------------------------------------------------ *)
(* Pass: array-out-of-bounds (definite errors only)                    *)

let array_oob ?srcmap (r : AI.result) (m : meth) =
  let diags = ref [] in
  let site s env e =
    match e with
    | Index (a, i) -> (
        let env', av = E.eval env a in
        let _, iv = E.eval env' i in
        let emit msg =
          diags :=
            Diagnostic.make ~pass:"array-out-of-bounds" ~severity:Error
              ~meth:m.m_name
              ?pos:(stmt_pos srcmap s)
              msg
            :: !diags
        in
        match Interval.hi_int iv.E.v with
        | Some h when h < 0 ->
            emit
              (Printf.sprintf "array index %s is always negative (index %s)"
                 (quote (Pretty.expr i))
                 (Interval.to_string iv.E.v))
        | _ -> (
            match (av.E.alen, Interval.lo_int iv.E.v) with
            | Some len, Some ilo -> (
                match Interval.hi_int len with
                | Some lh when ilo >= lh ->
                    emit
                      (Printf.sprintf
                         "array index %s is always out of bounds (index %s, \
                          length %s)"
                         (quote (Pretty.expr i))
                         (Interval.to_string iv.E.v)
                         (Interval.to_string len))
                | _ -> ())
            | _ -> ()))
    | _ -> ()
  in
  each_site r m ~f:site;
  List.sort_uniq Diagnostic.compare !diags

(* ------------------------------------------------------------------ *)
(* Pass: constant-condition                                            *)

(* Can control leave the loop whose body this is?  [break] binds to the
   innermost loop or switch, [return] escapes everything. *)
let rec has_return s =
  match s with
  | Sreturn _ -> true
  | Sblock b -> List.exists has_return b
  | Sif (_, t, f) ->
      has_return t || (match f with Some f -> has_return f | None -> false)
  | Swhile (_, b) | Sdo (b, _) | Sfor (_, _, _, b) -> has_return b
  | Sswitch (_, cs) ->
      List.exists (fun c -> List.exists has_return c.case_body) cs
  | _ -> false

let rec escapes s =
  match s with
  | Sreturn _ | Sbreak -> true
  | Sblock b -> List.exists escapes b
  | Sif (_, t, f) ->
      escapes t || (match f with Some f -> escapes f | None -> false)
  | Swhile (_, b) | Sdo (b, _) | Sfor (_, _, _, b) -> has_return b
  | Sswitch (_, cs) ->
      List.exists (fun c -> List.exists has_return c.case_body) cs
  | _ -> false

type guard_kind = Gif of bool (* has else *) | Gloop of stmt | Gdo of stmt

let constant_condition ?srcmap (r : AI.result) (m : meth) =
  let diags = ref [] in
  let emit s msg =
    diags :=
      Diagnostic.make ~pass:"constant-condition" ~severity:Warning
        ~meth:m.m_name
        ?pos:(stmt_pos srcmap s)
        msg
      :: !diags
  in
  let check s kind c envo =
    match envo with
    | None -> ()
    | Some env ->
        (* a guard with no variables is syntactically constant — that is
           the [unreachable] pass's business, not a dataflow fact *)
        if vars_of_expr c <> [] then (
          match E.truth_of env c with
          | Domain.Unknown -> ()
          | Domain.True -> (
              match kind with
              | Gif has_else ->
                  emit s
                    (Printf.sprintf "condition %s is always true%s"
                       (quote (Pretty.expr c))
                       (if has_else then " — the else branch never runs"
                        else ""))
              | Gloop body | Gdo body ->
                  emit s
                    (Printf.sprintf "loop condition %s is always true%s"
                       (quote (Pretty.expr c))
                       (if escapes body then "" else " — likely infinite loop")))
          | Domain.False -> (
              match kind with
              | Gif _ ->
                  emit s
                    (Printf.sprintf
                       "condition %s is always false — the branch never runs"
                       (quote (Pretty.expr c)))
              | Gloop _ ->
                  emit s
                    (Printf.sprintf
                       "loop condition %s is always false — the body never \
                        runs"
                       (quote (Pretty.expr c)))
              | Gdo _ -> (* a do-while body runs once regardless *) ()))
  in
  iter_reachable r m.m_body ~f:(fun s env ->
      match s with
      | Sif (c, _, f) -> check s (Gif (Option.is_some f)) c (Some env)
      | Swhile (c, body) ->
          check s (Gloop body) c (Hashtbl.find_opt r.AI.head s)
      | Sfor (_, Some c, _, body) ->
          check s (Gloop body) c (Hashtbl.find_opt r.AI.head s)
      | Sdo (body, c) -> check s (Gdo body) c (Hashtbl.find_opt r.AI.head s)
      | _ -> ());
  List.sort_uniq Diagnostic.compare !diags

(* ------------------------------------------------------------------ *)
(* Pass: unused-range                                                  *)

(* Comparison leaves of a boolean guard. *)
let rec cmp_leaves e =
  match e with
  | Binary ((And | Or), a, b) -> cmp_leaves a @ cmp_leaves b
  | Unary (Not, a) -> cmp_leaves a
  | Binary ((Lt | Le | Gt | Ge | Eq | Ne), _, _) -> [ e ]
  | _ -> []

let unused_range ?srcmap (r : AI.result) (m : meth) =
  let diags = ref [] in
  let check s c envo =
    match (envo, c) with
    | Some env, Binary ((And | Or), _, _)
      when E.truth_of env c = Domain.Unknown ->
        List.iter
          (fun leaf ->
            match E.truth_of env leaf with
            | Domain.Unknown -> ()
            | t -> (
                let consts =
                  List.filter_map
                    (fun x ->
                      Option.map
                        (fun n -> (x, n))
                        (Interval.is_const (E.var env x)))
                    (vars_of_expr leaf)
                in
                match consts with
                | (x, n) :: _ ->
                    diags :=
                      Diagnostic.make ~pass:"unused-range" ~severity:Warning
                        ~meth:m.m_name
                        ?pos:(stmt_pos srcmap s)
                        (Printf.sprintf
                           "redundant test %s: %s is always %d, so the test \
                            always %s"
                           (quote (Pretty.expr leaf))
                           (quote x) n
                           (if t = Domain.True then "holds" else "fails"))
                      :: !diags
                | [] -> ()))
          (cmp_leaves c)
    | _ -> ()
  in
  iter_reachable r m.m_body ~f:(fun s env ->
      match s with
      | Sif (c, _, _) -> check s c (Some env)
      | Swhile (c, _) | Sdo (_, c) -> check s c (Hashtbl.find_opt r.AI.head s)
      | Sfor (_, Some c, _, _) -> check s c (Hashtbl.find_opt r.AI.head s)
      | _ -> ());
  List.sort_uniq Diagnostic.compare !diags

(* ------------------------------------------------------------------ *)
(* Loop-bound inference and static cost signatures                     *)

type bound = Bconst | Blinear of string | Bunknown
type cost = Known of int | Unknown_cost

let rec const_of = function
  | Int_lit n -> Some n
  | Char_lit c -> Some (Char.code c)
  | Unary (Neg, e) -> Option.map (fun n -> -n) (const_of e)
  | Unary (Uplus, e) -> const_of e
  | _ -> None

(* An expression node that bumps [i] by a compile-time constant. *)
let step_of i e =
  match e with
  | Incdec ((Pre_incr | Post_incr), Var x) when x = i -> Some 1
  | Incdec ((Pre_decr | Post_decr), Var x) when x = i -> Some (-1)
  | Assign (Add_eq, Var x, k) when x = i -> const_of k
  | Assign (Sub_eq, Var x, k) when x = i ->
      Option.map (fun n -> -n) (const_of k)
  | Assign (Set, Var x, Binary (Add, Var y, k)) when x = i && y = i ->
      const_of k
  | Assign (Set, Var x, Binary (Add, k, Var y)) when x = i && y = i ->
      const_of k
  | Assign (Set, Var x, Binary (Sub, Var y, k)) when x = i && y = i ->
      Option.map (fun n -> -n) (const_of k)
  | _ -> None

let base_var e =
  let rec go = function
    | Var x -> Some x
    | Index (b, _) | Field (b, _) -> go b
    | _ -> None
  in
  go e

(* Does this expression node write [i] at all? *)
let node_writes i = function
  | Assign (_, lhs, _) -> base_var lhs = Some i
  | Incdec (_, tgt) -> base_var tgt = Some i
  | _ -> false

(* All expressions of a statement tree, nested statements included. *)
let deep_exprs body update =
  let acc = ref update in
  let stmt s =
    let add e = acc := e :: !acc in
    match s with
    | Sexpr e -> add e
    | Sdecl ds -> List.iter (fun d -> Option.iter add d.d_init) ds
    | Sreturn (Some e) -> add e
    | Sif (c, _, _) -> add c
    | Swhile (c, _) | Sdo (_, c) -> add c
    | Sfor (init, cond, up, _) ->
        (match init with
        | Some (For_decl ds) -> List.iter (fun d -> Option.iter add d.d_init) ds
        | Some (For_exprs es) -> List.iter add es
        | None -> ());
        Option.iter add cond;
        List.iter add up
    | Sswitch (scrut, cs) ->
        add scrut;
        List.iter (fun c -> Option.iter add c.case_label) cs
    | _ -> ()
  in
  iter_stmt stmt body;
  !acc

(* [continue] (binding to this loop, i.e. not inside a nested loop)
   makes any body update site conditional. *)
let rec has_continue s =
  match s with
  | Scontinue -> true
  | Sblock b -> List.exists has_continue b
  | Sif (_, t, f) ->
      has_continue t
      || (match f with Some f -> has_continue f | None -> false)
  | Sswitch (_, cs) ->
      List.exists (fun c -> List.exists has_continue c.case_body) cs
  | _ -> false

(* The counter discipline: every write to [i] anywhere in the loop is a
   constant step of one consistent direction, and at least one step site
   runs unconditionally each iteration (the for-update, or a top-level
   body statement with no [continue] that could skip it). *)
let counter_ok i ~dir ~unit_only body update =
  let exprs = deep_exprs body update in
  let sites = ref [] in
  let bad = ref false in
  List.iter
    (iter_expr (fun e ->
         if node_writes i e then
           match step_of i e with
           | Some k when k <> 0 -> sites := k :: !sites
           | _ -> bad := true))
    exprs;
  (not !bad) && !sites <> []
  && (let sgn = if List.hd !sites > 0 then 1 else -1 in
      List.for_all (fun k -> (if k > 0 then 1 else -1) = sgn) !sites
      && (dir = 0 || sgn = dir)
      && ((not unit_only) || List.for_all (fun k -> abs k = 1) !sites))
  &&
  let unconditional_update =
    List.exists (fun e -> step_of i e <> None) update
  in
  let top_level =
    let stmts = match body with Sblock b -> b | s -> [ s ] in
    List.exists
      (fun s -> match s with Sexpr e -> step_of i e <> None | _ -> false)
      stmts
    && not (has_continue body)
  in
  unconditional_update || top_level

let rec conjuncts e =
  match e with Binary (And, a, b) -> conjuncts a @ conjuncts b | e -> [ e ]

let flip = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | op -> op

(* Symbolic classification of a loop's iteration bound. *)
let classify (r : AI.result) s cond update body =
  let assigned =
    List.fold_left
      (fun acc e -> assigned_vars e @ acc)
      [] (deep_exprs body update)
  in
  let limit_bound limit =
    match limit with
    | Var v when not (List.mem v assigned) -> Blinear v
    | Field (Var a, "length") when not (List.mem a assigned) ->
        Blinear (a ^ ".length")
    | _ -> Bunknown
  in
  let candidate op ctr limit =
    match ctr with
    | Var i when not (List.mem i (vars_of_expr limit)) ->
        let dir, unit_only =
          match op with
          | Lt | Le -> (1, false)
          | Gt | Ge -> (-1, false)
          | Ne -> (0, true)
          | _ -> (0, false)
        in
        if counter_ok i ~dir ~unit_only body update then
          (* A finite interval for the counter at the settled loop head
             bounds the trip count outright (the counter moves by a
             nonzero constant every iteration). *)
          let finite_head =
            match Hashtbl.find_opt r.AI.head s with
            | Some h ->
                let v = E.var h i in
                Interval.lo_int v <> None && Interval.hi_int v <> None
            | None -> false
          in
          if finite_head then Bconst else limit_bound limit
        else Bunknown
    | _ -> Bunknown
  in
  match cond with
  | None -> Bunknown
  | Some cond ->
      let try_conjunct e =
        match e with
        | Binary (((Lt | Le | Gt | Ge | Ne) as op), a, b) -> (
            match candidate op a b with
            | Bunknown -> candidate (flip op) b a
            | bd -> bd)
        | _ -> Bunknown
      in
      List.fold_left
        (fun acc c ->
          match acc with Bunknown -> try_conjunct c | _ -> acc)
        Bunknown (conjuncts cond)

let classify_loop (r : AI.result) s =
  match s with
  | Swhile (cond, body) -> classify r s (Some cond) [] body
  | Sfor (_, cond, update, body) -> classify r s cond update body
  | Sdo (body, cond) -> classify r s (Some cond) [] body
  | _ -> Bunknown

(* Static cost: the polynomial degree of the deepest classified loop
   nest, with the outermost degree-raising loop as witness.  Any
   unclassifiable loop taints the whole method — better no efficiency
   verdict than a wrong one. *)
let rec cost_stmt (r : AI.result) s : cost * stmt option =
  match s with
  | Swhile (_, body) | Sdo (body, _) | Sfor (_, _, _, body) -> (
      match classify_loop r s with
      | Bunknown -> (Unknown_cost, None)
      | b -> (
          match cost_block r [ body ] with
          | Unknown_cost, _ -> (Unknown_cost, None)
          | Known d, w ->
              let linear = match b with Blinear _ -> true | _ -> false in
              let d' = if linear then d + 1 else d in
              let w' = if linear then Some s else w in
              (Known d', if d' = 0 then None else w')))
  | Sif (_, t, f) ->
      cost_max (cost_stmt r t)
        (match f with Some f -> cost_stmt r f | None -> (Known 0, None))
  | Sblock b -> cost_block r b
  | Sswitch (_, cs) ->
      List.fold_left
        (fun acc c -> cost_max acc (cost_block r c.case_body))
        (Known 0, None) cs
  | _ -> (Known 0, None)

and cost_block r stmts =
  List.fold_left (fun acc s -> cost_max acc (cost_stmt r s)) (Known 0, None)
    stmts

and cost_max (a, wa) (b, wb) =
  match (a, b) with
  | Unknown_cost, _ | _, Unknown_cost -> (Unknown_cost, None)
  | Known x, Known y -> if y > x then (b, wb) else (a, wa)

let method_cost ?fuel (m : meth) =
  let r = AI.analyze_meth ?fuel m in
  if r.AI.exhausted then (Unknown_cost, None) else cost_block r m.m_body

let method_degrees ?fuel (p : program) =
  List.filter_map
    (fun m ->
      match method_cost ?fuel m with
      | Known d, _ -> Some (m.m_name, d)
      | Unknown_cost, _ -> None)
    p.methods

let degree_str = function
  | 0 -> "O(1)"
  | 1 -> "O(n)"
  | d -> Printf.sprintf "O(n^%d)" d

(* ------------------------------------------------------------------ *)
(* Pass: efficiency (submission cost vs the oracle's)                  *)

let efficiency_meth ?srcmap (r : AI.result) ~oracle_degrees (m : meth) =
  match List.assoc_opt m.m_name oracle_degrees with
  | None -> []
  | Some od -> (
      match cost_block r m.m_body with
      | Known sd, Some w when sd > od ->
          [
            Diagnostic.make ~pass:"efficiency" ~severity:Warning
              ~meth:m.m_name
              ?pos:(stmt_pos srcmap w)
              (Printf.sprintf
                 "this loop makes the method run in %s, but the reference \
                  solution is %s"
                 (degree_str sd) (degree_str od));
          ]
      | _ -> [])

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let guard pass meth_name f =
  match f () with
  | diags -> diags
  | exception e ->
      [
        Diagnostic.make ~pass ~severity:Error ~meth:meth_name
          (Printf.sprintf "analysis failed: %s" (Printexc.to_string e));
      ]

let analyze_method ?srcmap ?fuel ?(oracle_degrees = []) (m : meth) =
  let tr = Jfeed_trace.Trace.current () in
  (* span names stay in the [pass:] namespace so the slowlog/stage
     rollups keep their frozen stage set (everything truncates to
     "pass") *)
  let sp id = if Jfeed_trace.Trace.enabled tr then "pass:" ^ id else "pass" in
  let r =
    Jfeed_trace.Trace.span tr (sp Interval.name) (fun () ->
        AI.analyze_meth ?fuel m)
  in
  Jfeed_trace.Trace.count tr "absint.steps" r.AI.steps;
  Jfeed_trace.Trace.count tr "absint.widenings" r.AI.widenings;
  let runs =
    [
      ("div-by-zero", fun () -> div_by_zero ?srcmap r m);
      ("array-out-of-bounds", fun () -> array_oob ?srcmap r m);
      ("constant-condition", fun () -> constant_condition ?srcmap r m);
      ("unused-range", fun () -> unused_range ?srcmap r m);
      ("efficiency", fun () -> efficiency_meth ?srcmap r ~oracle_degrees m);
    ]
  in
  List.concat_map
    (fun (id, f) ->
      Jfeed_trace.Trace.span tr (sp id) (fun () ->
          let diags = guard id m.m_name f in
          Jfeed_trace.Trace.add_attr tr "diags"
            (string_of_int (List.length diags));
          diags))
    runs
  |> List.sort Diagnostic.compare

(* Satellite: a suspicious-loop and a constant-condition diagnostic on
   the same guard describe one problem; collapse them into a single
   merged constant-condition entry.  Positionless diagnostics (no
   srcmap) are never merged — a (meth, 0, 0) key could alias distinct
   loops. *)
let merge_overlaps diags =
  let key (d : Diagnostic.t) = (d.meth, d.line, d.col) in
  let sl_at k =
    List.find_opt
      (fun (d : Diagnostic.t) -> d.pass = "suspicious-loop" && key d = k)
      diags
  in
  let cc_keys =
    List.filter_map
      (fun (d : Diagnostic.t) ->
        if d.pass = "constant-condition" && d.line > 0 then Some (key d)
        else None)
      diags
  in
  List.filter_map
    (fun (d : Diagnostic.t) ->
      if d.pass = "suspicious-loop" && d.line > 0 && List.mem (key d) cc_keys
      then None
      else if d.pass = "constant-condition" && d.line > 0 then
        match sl_at (key d) with
        | Some sl -> Some { d with message = d.message ^ "; " ^ sl.message }
        | None -> Some d
      else Some d)
    diags

let analyze_program ?srcmap ?fuel ?oracle ?oracle_degrees (p : program) =
  let oracle_degrees =
    match (oracle_degrees, oracle) with
    | Some ds, _ -> ds
    | None, Some o -> method_degrees ?fuel o
    | None, None -> []
  in
  let base = Jfeed_analysis.Passes.analyze_program ?srcmap p in
  let ai =
    List.concat_map (analyze_method ?srcmap ?fuel ~oracle_degrees) p.methods
  in
  merge_overlaps (base @ ai) |> List.sort Diagnostic.compare

let analyze_source ?fuel ?oracle ?oracle_degrees src =
  match Parser.parse_program_located src with
  | prog, srcmap -> analyze_program ~srcmap ?fuel ?oracle ?oracle_degrees prog
  | exception _ ->
      (* delegate: the base analyzer renders lex/parse failures as the
         canonical [parse] diagnostic *)
      Jfeed_analysis.Passes.analyze_source src

let bound_stats ?fuel (p : program) =
  let loops = ref 0 and known = ref 0 in
  List.iter
    (fun m ->
      let r = AI.analyze_meth ?fuel m in
      iter_stmt
        (fun s ->
          match s with
          | Swhile _ | Sdo _ | Sfor _ ->
              incr loops;
              if classify_loop r s <> Bunknown then incr known
          | _ -> ())
        (Sblock m.m_body))
    p.methods;
  (!loops, !known)

let count_by_pass diags =
  let counts = Hashtbl.create 16 in
  let extra = ref [] in
  List.iter
    (fun (d : Diagnostic.t) ->
      match Hashtbl.find_opt counts d.pass with
      | None ->
          Hashtbl.add counts d.pass 1;
          if not (List.mem d.pass all_pass_ids) then extra := d.pass :: !extra
      | Some n -> Hashtbl.replace counts d.pass (n + 1))
    diags;
  let of_id id =
    (id, match Hashtbl.find_opt counts id with Some n -> n | None -> 0)
  in
  List.map of_id all_pass_ids @ List.rev_map of_id !extra
