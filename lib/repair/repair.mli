(** Automated repair suggestions: search the single-edit space for the
    minimal fix (ROADMAP item 1; Singh et al., {i Automated Feedback
    Generation for Introductory Programming Assignments}).

    The search composes pieces the grading pipeline already owns: the
    error-model edit catalog ({!Jfeed_java.Edit}), the total interpreter
    with step budgets ({!Jfeed_interp.Interp}), the assignment's
    functional tests ({!Jfeed_ftest.Runner}) and the fuel/deadline
    budget layer ({!Jfeed_budget.Budget}).  Enumerate every candidate
    single edit, prioritize the ones the pattern grader points at
    (edits inside methods with non-[Correct] comments first, then by
    error-model likelihood), screen each candidate against the suite
    under its own fuel cap, and rank the passing candidates by edit
    distance to the submission — the minimal fix wins.

    {b Totality.}  [search] never raises and never hangs: candidate
    screening is fuel-capped per candidate, the overall walk stops when
    the repair budget runs dry ([exhausted] is set; the answer degrades
    to "no repair found within budget"), and any crash — unparseable
    source, a failing reference suite — lands in an [Unrepairable]
    outcome.

    {b Determinism.}  With a fuel-only budget the outcome is a pure
    function of (bundle, source, fuel): candidates are charged against
    the budget in priority order whatever the evaluation order, so the
    output is byte-identical at every [?jobs] width.  A [?deadline_s]
    bound reads the process-wide CPU clock and carries the same
    fixed-jobs reproducibility caveat as batch grading. *)

type status =
  | Already_passing  (** the submission passes the suite as-is *)
  | Repaired  (** a passing single edit was found; see [hint] *)
  | No_repair
      (** every tried candidate fails the suite (or the budget ran dry
          first — see [exhausted]) *)
  | Unrepairable of string
      (** the search could not start: unparseable source, failing
          reference suite, … *)

type hint = {
  h_kind : Jfeed_java.Edit.kind;
  h_meth : string;  (** submission method holding the edit *)
  h_pos : Jfeed_java.Srcmap.pos option;
      (** enclosing statement/declarator position in the submission *)
  h_before : string;  (** canonical rendering of the expression to change *)
  h_after : string;  (** what to change it to *)
  h_distance : int;
      (** Levenshtein distance between the canonical submission source
          and the repaired source — the minimality metric *)
  h_rank : int;  (** 1-based position of the edit in priority order *)
  h_source : string;  (** the repaired program, canonical rendering *)
}

type outcome = {
  status : status;
  hint : hint option;  (** [Some] iff [status = Repaired]: the minimal fix *)
  candidates : int;  (** candidate edits screened against the suite *)
  sites : int;  (** candidate edits enumerated *)
  passing : int;  (** screened candidates that pass the whole suite *)
  fuel_spent : int;  (** interpreter fuel consumed by screening *)
  exhausted : bool;  (** the repair budget cut the candidate list short *)
}

val default_fuel : int
(** Default repair fuel (interpreter steps across all screenings). *)

val candidate_fuel : int
(** Per-candidate screening cap: one pathological candidate (e.g. an
    edit that makes a loop infinite) burns at most this much of the
    repair budget before it is disqualified. *)

val search :
  ?fuel:int ->
  ?deadline_s:float ->
  ?jobs:int ->
  Jfeed_kb.Bundles.t ->
  string ->
  outcome
(** Search the edit space for the minimal passing fix to [src].
    [?fuel] (default {!default_fuel}) bounds total screening work;
    [?deadline_s] adds a CPU-time bound checked between evaluation
    batches; [?jobs] (default 1) screens candidates on that many domains
    ({!Jfeed_parallel.Pool}) without changing the outcome.

    Traced as a [repair] span with [repair.candidates], [repair.found]
    and [repair.fuel] counters on the ambient tracer
    ({!Jfeed_trace.Trace.current}). *)

val to_json : outcome -> string
(** The outcome as a single-line JSON object with stable field order:
    [status], then (for [Repaired]) [kind] / [method] / [line] / [col] /
    [before] / [after] / [distance] / [rank], then (for [Unrepairable])
    [error], then always [candidates] / [sites] / [passing] /
    [exhausted] / [fuel].  [line] / [col] appear only when the srcmap
    located the edit.  This is the object spliced into the grading
    Outcome JSON as its ["repair"] field. *)

val render : outcome -> string
(** Human-readable summary, possibly multi-line:
    ["repair found: change `i <= n` to `i < n` at line 4 in sum
    \[cmp-flip\]"], plus a search-accounting line. *)

val candidates_total : unit -> int
val found_total : unit -> int
val fuel_total : unit -> int
(** Process-wide totals (monotone atomics, summed over every {!search}
    in this process) — read by the serve metrics exposition as the
    [jfeed_repair_*] counter families. *)
