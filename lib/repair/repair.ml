(** Minimal-fix search over the single-edit space.  See repair.mli. *)

open Jfeed_java
module Budget = Jfeed_budget.Budget
module Runner = Jfeed_ftest.Runner
module Trace = Jfeed_trace.Trace
module Pool = Jfeed_parallel.Pool

type status =
  | Already_passing
  | Repaired
  | No_repair
  | Unrepairable of string

type hint = {
  h_kind : Edit.kind;
  h_meth : string;
  h_pos : Srcmap.pos option;
  h_before : string;
  h_after : string;
  h_distance : int;
  h_rank : int;
  h_source : string;
}

type outcome = {
  status : status;
  hint : hint option;
  candidates : int;
  sites : int;
  passing : int;
  fuel_spent : int;
  exhausted : bool;
}

let default_fuel = 10_000_000
let candidate_fuel = 200_000

(* How many candidates each Pool.map round screens.  A fixed constant —
   never derived from [jobs] — so the budget truncation point, and hence
   the whole outcome, is identical at every parallelism width. *)
let batch_size = 32

(* Process-wide totals for the serve metrics exposition. *)
let candidates_atomic = Atomic.make 0
let found_atomic = Atomic.make 0
let fuel_atomic = Atomic.make 0
let candidates_total () = Atomic.get candidates_atomic
let found_total () = Atomic.get found_atomic
let fuel_total () = Atomic.get fuel_atomic

(* Error-model likelihood order: comparison and off-by-one slips
   dominate introductory bug corpora; wholesale guard negation is the
   long shot, tried last. *)
let kind_rank = function
  | Edit.Cmp_flip -> 0
  | Edit.Const_tweak -> 1
  | Edit.Arith_swap -> 2
  | Edit.Logic_swap -> 3
  | Edit.Assign_swap -> 4
  | Edit.Incdec_flip -> 5
  | Edit.Cond_negate -> 6

let protect f =
  try Ok (f ()) with
  | Stack_overflow -> Error "stack overflow"
  | Out_of_memory -> Error "out of memory"
  | Invalid_argument m -> Error ("invalid argument: " ^ m)
  | Failure m -> Error m
  | e -> Error (Printexc.to_string e)

(* Two-row Levenshtein over the canonical renderings — the minimality
   metric that ranks passing candidates. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

(* Submission methods the pattern grader flags (any non-[Correct]
   comment): edits inside them are searched first — the KB already
   points at where the bug lives.  Best effort under its own small
   budget; a grader crash just loses the prioritization, never the
   search. *)
let flagged_methods grading prog =
  let budget = Budget.create ~fuel:500_000 () in
  match protect (fun () -> Jfeed_core.Grader.grade ~budget grading prog) with
  | Error _ -> []
  | Ok r ->
      List.fold_left
        (fun acc (c : Jfeed_core.Feedback.comment) ->
          if c.verdict <> Jfeed_core.Feedback.Correct && c.in_method <> ""
             && not (List.mem c.in_method acc)
          then c.in_method :: acc
          else acc)
        [] r.Jfeed_core.Grader.comments

let empty_outcome status =
  {
    status;
    hint = None;
    candidates = 0;
    sites = 0;
    passing = 0;
    fuel_spent = 0;
    exhausted = false;
  }

let search ?(fuel = default_fuel) ?deadline_s ?(jobs = 1) (b : Jfeed_kb.Bundles.t)
    src =
  let tr = Trace.current () in
  Trace.span tr "repair" @@ fun () ->
  let finish o =
    ignore (Atomic.fetch_and_add candidates_atomic o.candidates);
    if o.status = Repaired then ignore (Atomic.fetch_and_add found_atomic 1);
    ignore (Atomic.fetch_and_add fuel_atomic o.fuel_spent);
    Trace.count tr "repair.candidates" o.candidates;
    Trace.count tr "repair.found" (if o.status = Repaired then 1 else 0);
    Trace.count tr "repair.fuel" o.fuel_spent;
    if Trace.enabled tr then begin
      Trace.add_attr tr "sites" (string_of_int o.sites);
      Trace.add_attr tr "candidates" (string_of_int o.candidates)
    end;
    o
  in
  match Parser.parse_program_located src with
  | exception Parser.Parse_error (msg, line, col) ->
      finish
        (empty_outcome
           (Unrepairable (Printf.sprintf "parse error at %d:%d: %s" line col msg)))
  | exception Lexer.Lex_error (msg, line, col) ->
      finish
        (empty_outcome
           (Unrepairable (Printf.sprintf "lex error at %d:%d: %s" line col msg)))
  | exception e -> finish (empty_outcome (Unrepairable (Printexc.to_string e)))
  | prog, srcmap -> (
      let expected =
        protect (fun () ->
            let reference = Parser.parse_program (Jfeed_gen.Spec.reference b.gen) in
            Runner.expected_outputs b.suite reference)
      in
      match expected with
      | Error e ->
          finish (empty_outcome (Unrepairable ("reference suite failed: " ^ e)))
      | Ok expected ->
          if Runner.screen b.suite ~expected prog then
            finish (empty_outcome Already_passing)
          else begin
            let sites = Edit.enumerate ~srcmap prog in
            let nsites = List.length sites in
            let flagged = flagged_methods b.grading prog in
            let priority (s : Edit.site) =
              ( (if List.mem s.Edit.s_meth flagged then 0 else 1),
                kind_rank s.Edit.s_kind,
                s.Edit.s_id )
            in
            let order =
              List.sort (fun a b -> compare (priority a) (priority b)) sites
            in
            let arr = Array.of_list order in
            let eval (site : Edit.site) =
              let budget = Budget.create ~fuel:candidate_fuel () in
              let cand = Edit.apply prog site in
              let pass =
                match
                  protect (fun () -> Runner.screen ~budget b.suite ~expected cand)
                with
                | Ok p -> p
                | Error _ -> false
              in
              (* every candidate costs at least one unit, so a zero-fuel
                 budget screens nothing and the loop always progresses *)
              (site, pass, 1 + Budget.spent budget, cand)
            in
            let t0 = Sys.time () in
            let tried = ref [] in
            let spent = ref 0 in
            let exhausted = ref false in
            let n = Array.length arr in
            let i = ref 0 in
            (try
               while !i < n do
                 (match deadline_s with
                 | Some d when Sys.time () -. t0 >= d ->
                     exhausted := true;
                     raise Exit
                 | _ -> ());
                 if !spent >= fuel then begin
                   exhausted := true;
                   raise Exit
                 end;
                 let k = min batch_size (n - !i) in
                 let round = Pool.map ~jobs ~f:eval (Array.sub arr !i k) in
                 Array.iter
                   (fun ((_, _, cost, _) as r) ->
                     (* charge in priority order: candidate k is screened
                        iff the cumulative cost before it fit the budget —
                        exactly the sequential semantics, whatever order
                        the pool actually ran them in *)
                     if !spent >= fuel then begin
                       exhausted := true;
                       raise Exit
                     end;
                     spent := !spent + cost;
                     tried := r :: !tried)
                   round;
                 i := !i + k
               done
             with Exit -> ());
            let tried = List.rev !tried in
            let ncand = List.length tried in
            let original = Pretty.program prog in
            let best, npassing =
              List.fold_left
                (fun (best, np) (site, pass, _, cand) ->
                  if not pass then (best, np)
                  else
                    let rendered = Pretty.program cand in
                    let dist = levenshtein original rendered in
                    let entry = (site, dist, rendered) in
                    let best =
                      match best with
                      | None -> Some (entry, np + 1)
                      | Some (((_, bdist, _) as bentry), brank) ->
                          if dist < bdist then Some (entry, np + 1)
                          else Some (bentry, brank)
                    in
                    (best, np + 1))
                (None, 0) tried
            in
            (* [rank] above is the 1-based position among *passing*
               candidates; the hint reports the position in the full try
               order instead, recomputed here from the winning site. *)
            let outcome =
              match best with
              | Some (((site : Edit.site), dist, rendered), _) ->
                  let rank =
                    let rec find i = function
                      | [] -> i
                      | (s, _, _, _) :: tl ->
                          if s == site then i + 1 else find (i + 1) tl
                    in
                    find 0 tried
                  in
                  {
                    status = Repaired;
                    hint =
                      Some
                        {
                          h_kind = site.Edit.s_kind;
                          h_meth = site.Edit.s_meth;
                          h_pos = site.Edit.s_pos;
                          h_before = site.Edit.s_before;
                          h_after = site.Edit.s_after;
                          h_distance = dist;
                          h_rank = rank;
                          h_source = rendered;
                        };
                    candidates = ncand;
                    sites = nsites;
                    passing = npassing;
                    fuel_spent = !spent;
                    exhausted = !exhausted;
                  }
              | None ->
                  {
                    status = No_repair;
                    hint = None;
                    candidates = ncand;
                    sites = nsites;
                    passing = 0;
                    fuel_spent = !spent;
                    exhausted = !exhausted;
                  }
            in
            finish outcome
          end)

let status_slug = function
  | Already_passing -> "already-passing"
  | Repaired -> "repaired"
  | No_repair -> "no-repair"
  | Unrepairable _ -> "unrepairable"

let json_string s = {|"|} ^ Jfeed_core.Feedback.json_escape s ^ {|"|}

let to_json o =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf {|{"status":%s|} (json_string (status_slug o.status)));
  (match o.hint with
  | None -> ()
  | Some h ->
      Buffer.add_string b
        (Printf.sprintf {|,"kind":%s,"method":%s|}
           (json_string (Edit.kind_slug h.h_kind))
           (json_string h.h_meth));
      (match h.h_pos with
      | Some p ->
          Buffer.add_string b
            (Printf.sprintf {|,"line":%d,"col":%d|} p.Srcmap.line p.Srcmap.col)
      | None -> ());
      Buffer.add_string b
        (Printf.sprintf {|,"before":%s,"after":%s,"distance":%d,"rank":%d|}
           (json_string h.h_before) (json_string h.h_after) h.h_distance
           h.h_rank));
  (match o.status with
  | Unrepairable e ->
      Buffer.add_string b (Printf.sprintf {|,"error":%s|} (json_string e))
  | _ -> ());
  Buffer.add_string b
    (Printf.sprintf {|,"candidates":%d,"sites":%d,"passing":%d,"exhausted":%s,"fuel":%d}|}
       o.candidates o.sites o.passing
       (if o.exhausted then "true" else "false")
       o.fuel_spent);
  Buffer.contents b

let render o =
  match (o.status, o.hint) with
  | Already_passing, _ ->
      "already passing: the submission passes all functional tests; nothing \
       to repair"
  | Repaired, Some h ->
      let where =
        match h.h_pos with
        | Some p -> Printf.sprintf " at line %d" p.Srcmap.line
        | None -> ""
      in
      Printf.sprintf
        "repair found: change `%s` to `%s`%s in %s [%s]\n\
         minimal fix at edit distance %d; screened %d of %d candidate edits \
         (%d passing)"
        h.h_before h.h_after where h.h_meth
        (Edit.kind_slug h.h_kind)
        h.h_distance o.candidates o.sites o.passing
  | No_repair, _ ->
      Printf.sprintf
        "no repair found within budget: screened %d of %d candidate edits%s"
        o.candidates o.sites
        (if o.exhausted then " (budget exhausted)" else "")
  | Unrepairable e, _ -> "cannot repair: " ^ e
  | Repaired, None -> assert false
