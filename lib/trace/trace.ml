(** Span/counter collection and Chrome trace_event output.  See
    trace.mli for the contract. *)

external now_ns : unit -> (int64[@unboxed])
  = "jfeed_trace_now_ns_byte" "jfeed_trace_now_ns_unboxed"
[@@noalloc]

type rspan = {
  sid : int;
  parent : int;
  name : string;
  start_ns : int64;
  mutable dur_ns : int64;  (* -1 while open *)
  mutable attrs : (string * string) list;
}

type buf = {
  mutable t0 : int64;
  mutable spans : rspan list;  (* reverse begin order *)
  mutable n : int;
  mutable stack : rspan list;  (* open spans, innermost first *)
  counters : (string, int ref) Hashtbl.t;
  mutable counter_order : string list;  (* reverse first-use order *)
}

type t = Disabled | Enabled of buf

let disabled = Disabled

let create () =
  Enabled
    {
      t0 = now_ns ();
      spans = [];
      n = 0;
      stack = [];
      counters = Hashtbl.create 16;
      counter_order = [];
    }

let enabled = function Disabled -> false | Enabled _ -> true

let clear = function
  | Disabled -> ()
  | Enabled b ->
      b.t0 <- now_ns ();
      b.spans <- [];
      b.n <- 0;
      b.stack <- [];
      Hashtbl.reset b.counters;
      b.counter_order <- []

(* One reusable tracer per domain, for tail-based sampling: every
   request records into it cheaply, and only retained traces are
   serialized before the next [clear] recycles the buffer. *)
let scratch_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> create ())

let scratch () =
  let t = Domain.DLS.get scratch_key in
  clear t;
  t

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let span t ?(attrs = []) name f =
  match t with
  | Disabled -> f ()
  | Enabled b ->
      let parent = match b.stack with [] -> 0 | s :: _ -> s.sid in
      b.n <- b.n + 1;
      let s =
        { sid = b.n; parent; name; start_ns = now_ns (); dur_ns = -1L; attrs }
      in
      b.spans <- s :: b.spans;
      b.stack <- s :: b.stack;
      Fun.protect
        ~finally:(fun () ->
          s.dur_ns <- Int64.sub (now_ns ()) s.start_ns;
          (* The span being closed is the innermost open one by
             construction; anything else means an instrumentation bug,
             in which case the stack is left alone rather than
             corrupted further. *)
          match b.stack with
          | x :: rest when x == s -> b.stack <- rest
          | _ -> ())
        f

let add_attr t k v =
  match t with
  | Disabled -> ()
  | Enabled b -> (
      match b.stack with
      | [] -> ()
      | s :: _ -> s.attrs <- s.attrs @ [ (k, v) ])

let count t name n =
  match t with
  | Disabled -> ()
  | Enabled b -> (
      match Hashtbl.find_opt b.counters name with
      | Some r -> r := !r + n
      | None ->
          Hashtbl.add b.counters name (ref n);
          b.counter_order <- name :: b.counter_order)

(* ------------------------------------------------------------------ *)
(* The ambient trace (one slot per domain)                             *)

let current_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> Disabled)
let current () = Domain.DLS.get current_key
let set_current t = Domain.DLS.set current_key t

let with_current t f =
  let old = current () in
  set_current t;
  Fun.protect ~finally:(fun () -> set_current old) f

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

type span_info = {
  sid : int;
  parent : int;
  name : string;
  start_ns : int64;
  dur_ns : int64;
  attrs : (string * string) list;
}

let spans = function
  | Disabled -> []
  | Enabled b ->
      List.rev_map
        (fun (s : rspan) ->
          {
            sid = s.sid;
            parent = s.parent;
            name = s.name;
            start_ns = s.start_ns;
            dur_ns = s.dur_ns;
            attrs = s.attrs;
          })
        b.spans

let counters = function
  | Disabled -> []
  | Enabled b ->
      List.rev_map
        (fun name -> (name, !(Hashtbl.find b.counters name)))
        b.counter_order

let stage_of name =
  match String.index_opt name ':' with
  | Some i -> String.sub name 0 i
  | None -> name

let rollup t =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let stage = stage_of s.name in
      let dur = if s.dur_ns < 0L then 0L else s.dur_ns in
      match Hashtbl.find_opt tbl stage with
      | Some (n, total) -> Hashtbl.replace tbl stage (n + 1, Int64.add total dur)
      | None ->
          Hashtbl.add tbl stage (1, dur);
          order := stage :: !order)
    (spans t);
  List.rev_map (fun stage -> (stage, Hashtbl.find tbl stage)) !order

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

(* Minimal JSON string escape (the library is zero-dependency by
   design, so it cannot borrow Feedback.json_escape). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us_of_ns ns = Int64.to_float ns /. 1000.0

let ms_of_ns ns = Int64.to_float ns /. 1_000_000.0

let attrs_json attrs =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
       attrs)

let to_chrome_json ?(pid = 1) ?(tid = 1) t =
  match t with
  | Disabled -> "[]"
  | Enabled b ->
      let buf = Buffer.create 4096 in
      Buffer.add_char buf '[';
      let first = ref true in
      let sep () =
        if !first then first := false else Buffer.add_char buf ',';
        Buffer.add_string buf "\n "
      in
      List.iter
        (fun s ->
          sep ();
          let dur = if s.dur_ns < 0L then 0L else s.dur_ns in
          let args =
            match s.attrs with
            | [] -> ""
            | attrs -> Printf.sprintf {|,"args":{%s}|} (attrs_json attrs)
          in
          Buffer.add_string buf
            (Printf.sprintf
               {|{"name":"%s","cat":"jfeed","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d%s}|}
               (json_escape s.name)
               (us_of_ns (Int64.sub s.start_ns b.t0))
               (us_of_ns dur) pid tid args))
        (spans t);
      (match counters t with
      | [] -> ()
      | cs ->
          sep ();
          Buffer.add_string buf
            (Printf.sprintf
               {|{"name":"counters","cat":"jfeed","ph":"C","ts":%.3f,"pid":%d,"tid":%d,"args":{%s}}|}
               (us_of_ns (Int64.sub (now_ns ()) b.t0))
               pid tid
               (String.concat ","
                  (List.map
                     (fun (k, v) ->
                       Printf.sprintf {|"%s":%d|} (json_escape k) v)
                     cs))));
      Buffer.add_string buf "\n]";
      Buffer.contents buf

let spans_json t =
  match t with
  | Disabled -> "[]"
  | Enabled b ->
      let buf = Buffer.create 512 in
      Buffer.add_char buf '[';
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char buf ',';
          let dur = if s.dur_ns < 0L then 0L else s.dur_ns in
          let args =
            match s.attrs with
            | [] -> ""
            | attrs -> Printf.sprintf {|,"attrs":{%s}|} (attrs_json attrs)
          in
          Buffer.add_string buf
            (Printf.sprintf
               {|{"sid":%d,"parent":%d,"name":"%s","start_us":%.1f,"dur_us":%.1f%s}|}
               s.sid s.parent (json_escape s.name)
               (us_of_ns (Int64.sub s.start_ns b.t0))
               (us_of_ns dur) args))
        (spans t);
      Buffer.add_char buf ']';
      Buffer.contents buf

let summary_json t =
  let stages =
    String.concat ","
      (List.map
         (fun (stage, (n, total_ns)) ->
           Printf.sprintf {|"%s":{"n":%d,"ms":%.4f}|} (json_escape stage) n
             (ms_of_ns total_ns))
         (rollup t))
  in
  let cs =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf {|"%s":%d|} (json_escape k) v)
         (counters t))
  in
  Printf.sprintf {|{"stages":{%s},"counters":{%s}}|} stages cs
