(** Durable request-lifecycle event log.  See events.mli. *)

type value = I of int | F of float | S of string | R of string

type t = {
  dir : string;
  rotate_bytes : int;
  ring_cap : int;
  ring : string Queue.t;  (* rendered lines awaiting the single writer *)
  mutable oc : out_channel option;
  mutable written : int;  (* bytes in the current file *)
  mutable emitted : int;
  mutable dropped : int;
  mutable rotations : int;
}

let file_name = "events.jsonl"
let rotated_name = "events.jsonl.1"
let current_path dir = Filename.concat dir file_name
let rotated_path dir = Filename.concat dir rotated_name
let default_ring_cap = 4096
let default_rotate_bytes = 8 * 1024 * 1024

let open_append path =
  open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path

let create ?(ring_cap = default_ring_cap)
    ?(rotate_bytes = default_rotate_bytes) dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "event-log directory %S is not a directory" dir);
  let oc = open_append (current_path dir) in
  {
    dir;
    rotate_bytes = max 4096 rotate_bytes;
    ring_cap = max 1 ring_cap;
    ring = Queue.create ();
    oc = Some oc;
    written = Int64.to_int (LargeFile.out_channel_length oc);
    emitted = 0;
    dropped = 0;
    rotations = 0;
  }

(* ------------------------------------------------------------------ *)
(* Record format: one JSON object per line, self-checksummed — the last
   field is ["ck":"<hex8>"] where hex8 is the first 8 hex characters of
   the MD5 of everything before [,"ck":].  The Store discipline in JSONL
   clothing: replay accepts the longest valid prefix and treats the
   first torn or corrupted line as the end of the log. *)

let ck_frame_len = String.length {|,"ck":""}|} + 8

let render ~ts_ns ~rid ~ev attrs =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf {|{"ts_ns":%Ld,"rid":"%s","ev":"%s"|} ts_ns
       (Trace.json_escape rid) (Trace.json_escape ev));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf {|,"%s":|} (Trace.json_escape k));
      Buffer.add_string b
        (match v with
        | I n -> string_of_int n
        | F x -> Printf.sprintf "%.4f" x
        | S s -> Printf.sprintf {|"%s"|} (Trace.json_escape s)
        | R raw -> raw))
    attrs;
  let body = Buffer.contents b in
  let ck = String.sub (Digest.to_hex (Digest.string body)) 0 8 in
  Printf.sprintf {|%s,"ck":"%s"}|} body ck

let checksum_ok line =
  let n = String.length line in
  n > ck_frame_len
  && String.sub line (n - ck_frame_len) 7 = {|,"ck":"|}
  && String.sub line (n - 2) 2 = {|"}|}
  &&
  let body = String.sub line 0 (n - ck_frame_len) in
  let ck = String.sub line (n - 10) 8 in
  String.equal ck (String.sub (Digest.to_hex (Digest.string body)) 0 8)

(* ------------------------------------------------------------------ *)
(* Emission: bounded ring, one flusher                                  *)

let emit t ~rid ~ev attrs =
  if Queue.length t.ring >= t.ring_cap then t.dropped <- t.dropped + 1
  else begin
    Queue.push (render ~ts_ns:(Trace.now_ns ()) ~rid ~ev attrs) t.ring;
    t.emitted <- t.emitted + 1
  end

let rotate t =
  match t.oc with
  | None -> ()
  | Some oc ->
      close_out_noerr oc;
      (try Sys.remove (rotated_path t.dir) with Sys_error _ -> ());
      (try Sys.rename (current_path t.dir) (rotated_path t.dir)
       with Sys_error _ -> ());
      t.oc <- Some (open_append (current_path t.dir));
      t.written <- 0;
      t.rotations <- t.rotations + 1

let flush t =
  match t.oc with
  | None -> Queue.clear t.ring
  | Some oc ->
      if not (Queue.is_empty t.ring) then begin
        Queue.iter
          (fun line ->
            output_string oc line;
            output_char oc '\n';
            t.written <- t.written + String.length line + 1)
          t.ring;
        Queue.clear t.ring;
        Stdlib.flush oc;
        if t.written >= t.rotate_bytes then rotate t
      end

let close t =
  flush t;
  (match t.oc with Some oc -> close_out_noerr oc | None -> ());
  t.oc <- None

let pending t = Queue.length t.ring
let emitted t = t.emitted
let dropped t = t.dropped
let rotations t = t.rotations

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)

let replay_file path ~f =
  if not (Sys.file_exists path) then (0, 0)
  else begin
    let ic = open_in_bin path in
    let size = in_channel_length ic in
    let rec go count off =
      match input_line ic with
      | exception End_of_file -> (count, size - off)
      | line ->
          let p = pos_in ic in
          (* [input_line] returns a final unterminated line too; a line
             only counts when its newline made it to disk and its
             checksum verifies — anything else is the torn tail. *)
          if p = off + String.length line + 1 && checksum_ok line then begin
            f line;
            go (count + 1) p
          end
          else (count, size - off)
    in
    let r = go 0 0 in
    close_in_noerr ic;
    r
  end

let replay_dir dir ~f =
  let n1, d1 = replay_file (rotated_path dir) ~f in
  let n2, d2 = replay_file (current_path dir) ~f in
  (n1 + n2, d1 + d2)
