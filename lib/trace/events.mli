(** Durable request-lifecycle event log.

    One JSON object per line, one line per lifecycle event.  Each line
    is self-checksummed — the final field is [,"ck":"<hex8>"}], the
    first 8 hex characters of the MD5 of everything before it — so
    replay after a crash can accept the longest valid prefix and treat
    the first torn or corrupted line as the end of the log, the same
    valid-prefix discipline the durable result cache uses for its
    binary records.

    Events are buffered in a bounded in-memory ring and written by a
    single flusher (the server's event-loop turn); when the ring is
    full further events are counted as dropped rather than blocking
    the hot path.  The current file [events.jsonl] rotates to
    [events.jsonl.1] when it exceeds the size budget; one rotated
    generation is kept. *)

type value =
  | I of int
  | F of float  (** rendered with 4 decimal places *)
  | S of string  (** JSON-escaped *)
  | R of string  (** spliced verbatim — must already be valid JSON *)

type t

val create : ?ring_cap:int -> ?rotate_bytes:int -> string -> t
(** [create dir] opens (creating if needed) [dir/events.jsonl] for
    append.  [ring_cap] bounds the in-memory ring (default 4096
    lines); [rotate_bytes] bounds the file size before rotation
    (default 8 MiB, floor 4 KiB).  Raises [Failure] if [dir] exists
    and is not a directory. *)

val emit : t -> rid:string -> ev:string -> (string * value) list -> unit
(** Render and enqueue one event line stamped with the monotonic
    clock.  Constant-time when the ring is full: the event is counted
    in [dropped] and discarded. *)

val flush : t -> unit
(** Drain the ring to disk and flush the channel.  Must be called from
    a single thread (the event-loop turn).  Rotates afterwards if the
    file exceeded its size budget. *)

val close : t -> unit
(** [flush] then close the file.  Further [emit]s are discarded. *)

val pending : t -> int
(** Lines waiting in the ring. *)

val emitted : t -> int
(** Lines accepted into the ring since [create]. *)

val dropped : t -> int
(** Lines discarded because the ring was full. *)

val rotations : t -> int
(** Completed file rotations since [create]. *)

val render : ts_ns:int64 -> rid:string -> ev:string -> (string * value) list -> string
(** The line format, exposed for tests: body + checksum suffix, no
    trailing newline. *)

val checksum_ok : string -> bool
(** Whether a line's trailing [,"ck":"…"}] verifies against its body. *)

val replay_file : string -> f:(string -> unit) -> int * int
(** [replay_file path ~f] calls [f] on each valid line in order and
    stops at the first torn (unterminated) or checksum-failing line.
    Returns [(valid_lines, torn_tail_bytes)].  A missing file replays
    as [(0, 0)]. *)

val replay_dir : string -> f:(string -> unit) -> int * int
(** Replay the rotated generation then the current file.  Returns the
    summed [(valid_lines, torn_tail_bytes)]. *)

val current_path : string -> string
(** [current_path dir] is [dir/events.jsonl]. *)

val rotated_path : string -> string
(** [rotated_path dir] is [dir/events.jsonl.1]. *)
