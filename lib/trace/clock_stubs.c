/* Monotonic nanosecond clock for the tracing layer.
 *
 * CLOCK_MONOTONIC never jumps backwards (unlike gettimeofday under NTP
 * slew), which is what makes span durations and latency percentiles
 * trustworthy.  The unboxed/noalloc native variant keeps a timestamp
 * read off the OCaml heap entirely — reading the clock on the grading
 * hot path must not trigger GC work. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

int64_t jfeed_trace_now_ns_unboxed(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value jfeed_trace_now_ns_byte(value unit)
{
  (void)unit;
  return caml_copy_int64(jfeed_trace_now_ns_unboxed());
}
