(** Structured tracing: spans, counters, Chrome [trace_event] output.

    A {!t} collects what one unit of work — typically one graded
    submission or one served request — spent its time and fuel on:
    nested {e spans} (named intervals with monotonic-clock timestamps
    and key/value attributes) and named monotone {e counters}.  The
    instrumented pipeline stages are [parse], [epdg], [match:<pattern
    id>], [pairing], [tests] / [interp], and [analysis] / [pass:<pass
    id>].

    {b Disabled is free.}  {!disabled} is a nil sink: every recording
    operation pattern-matches it and returns immediately — no clock
    read, no allocation — so instrumentation can stay in the hot path
    permanently.  The benchmark gate ({!Jfeed_robust} corpus through
    [jfeed-bench micro]) holds the untraced path within 5% of the
    uninstrumented baseline.

    {b Concurrency.}  A [t] is single-domain: it must only be written
    by the domain that created it.  The {e ambient} trace ({!current} /
    {!set_current}) lives in [Domain.DLS], so every domain of a
    {!Jfeed_parallel.Pool} has its own slot (like the
    {!Jfeed_exprmatch.Template} regex memo): batch workers install a
    fresh trace per submission and the per-item traces merge
    deterministically by submission index, never by completion order. *)

external now_ns : unit -> (int64[@unboxed])
  = "jfeed_trace_now_ns_byte" "jfeed_trace_now_ns_unboxed"
[@@noalloc]
(** Monotonic clock, nanoseconds ([CLOCK_MONOTONIC]); never jumps
    backwards.  [noalloc]: reading it cannot trigger GC work. *)

type t

val disabled : t
(** The nil sink.  Recording into it is a no-op. *)

val create : unit -> t
(** A fresh enabled collector; its creation instant is the zero point
    of the Chrome output's [ts] axis. *)

val enabled : t -> bool

val clear : t -> unit
(** Reset an enabled collector to the empty state with a fresh zero
    point, so one buffer can be reused across requests without
    reallocating (tail-based sampling traces every request into a
    recycled buffer).  No-op on {!disabled}. *)

val scratch : unit -> t
(** This domain's reusable tracer, {!clear}ed and ready to record.
    One per domain in [Domain.DLS]; the caller must serialize anything
    it wants to keep before the next [scratch] call on this domain
    recycles the buffer. *)

(** {2 Recording} *)

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span: begin timestamp on entry,
    duration on exit (normal or exceptional), parent = the innermost
    span open on entry.  On {!disabled} this is exactly [f ()]. *)

val add_attr : t -> string -> string -> unit
(** Attach a key/value attribute to the innermost open span — for
    values only known mid-span (embedding counts, fuel spent).  No-op
    when disabled or when no span is open. *)

val count : t -> string -> int -> unit
(** [count t name n] adds [n] to the named counter, creating it at
    first use.  Counter report order is first-use order, so output is
    deterministic for a deterministic workload. *)

(** {2 The ambient trace}

    Threading a [t] through every signature between the pipeline and
    the matcher's inner loop would churn each layer's API for a value
    almost every caller leaves disabled.  Instead the current trace is
    ambient, keyed per domain in [Domain.DLS]; instrumentation sites
    read {!current} (disabled unless someone installed one). *)

val current : unit -> t
(** This domain's ambient trace; {!disabled} unless installed. *)

val set_current : t -> unit

val with_current : t -> (unit -> 'a) -> 'a
(** Install for the dynamic extent of the callback, restoring the
    previous ambient trace afterwards (also on exceptions). *)

(** {2 Inspection} *)

type span_info = {
  sid : int;  (** unique within the trace, 1-based, begin order *)
  parent : int;  (** [sid] of the enclosing span, [0] for roots *)
  name : string;
  start_ns : int64;  (** absolute {!now_ns} at begin *)
  dur_ns : int64;  (** [-1L] while still open *)
  attrs : (string * string) list;
}

val spans : t -> span_info list
(** All spans in begin order ([] for {!disabled}). *)

val counters : t -> (string * int) list
(** Counters in first-use order. *)

val rollup : t -> (string * (int * int64)) list
(** Per-stage totals [(stage, (span count, total ns))] in first-seen
    order, where a span's {e stage} is its name truncated at the first
    [':'] — so [match:p_loop] and [match:p_print] both aggregate into
    [match].  Open spans contribute a zero duration. *)

(** {2 Serialization} *)

val json_escape : string -> string
(** JSON string-content escaping (quotes, backslashes, control bytes).
    The tracer cannot depend on [Jfeed_core.Feedback.json_escape] — it
    sits {e below} core — so it carries its own, exported for the other
    leaf libraries in the same position. *)

val to_chrome_json : ?pid:int -> ?tid:int -> t -> string
(** The Chrome [trace_event] JSON array format (loadable in
    [about:tracing] and Perfetto): one complete ["ph":"X"] event per
    span with [ts]/[dur] in microseconds relative to {!create}, plus
    one final ["ph":"C"] counter event carrying {!counters}.  [pid]
    defaults to 1; [tid] (default 1) distinguishes worker domains when
    a caller merges several traces into one file. *)

val spans_json : t -> string
(** The span tree as a single-line JSON array —
    [[{"sid":…,"parent":…,"name":…,"start_us":…,"dur_us":…,"attrs":{…}},…]]
    with microseconds relative to the trace zero point — suitable for
    embedding in a JSONL event line (no newlines, unlike
    {!to_chrome_json}).  [[]] for {!disabled}. *)

val summary_json : t -> string
(** The compact per-stage summary embedded under ["trace"] in
    {!Jfeed_robust.Outcome.to_json}:
    [{"stages":{<stage>:{"n":…,"ms":…},…},"counters":{…}}] with
    stages from {!rollup} and milliseconds to 4 decimal places. *)
