(** Sharded mutex-guarded LRU.  See shards.mli. *)

type 'v t = {
  caches : 'v Cache.t array;
  locks : Mutex.t array;
  hits : int array;
  misses : int array;
  total_cap : int;
}

let create ~shards ~cap =
  let n = max 1 shards in
  let cap = max 0 cap in
  (* split like Budget.split: shares sum exactly to [cap] *)
  let share i = (cap / n) + if i < cap mod n then 1 else 0 in
  {
    caches = Array.init n (fun i -> Cache.create ~cap:(share i));
    locks = Array.init n (fun _ -> Mutex.create ());
    hits = Array.make n 0;
    misses = Array.make n 0;
    total_cap = cap;
  }

let shard_count t = Array.length t.caches
let cap t = t.total_cap

let shard_of_key t key =
  (* Hashtbl.hash is deterministic over string bytes (seeded MurmurHash),
     so the key → shard map is stable across runs and processes. *)
  Hashtbl.hash key mod Array.length t.caches

let locked t i f =
  Mutex.lock t.locks.(i);
  Fun.protect ~finally:(fun () -> Mutex.unlock t.locks.(i)) f

let find t key =
  let i = shard_of_key t key in
  locked t i @@ fun () ->
  match Cache.find t.caches.(i) key with
  | Some _ as hit ->
      t.hits.(i) <- t.hits.(i) + 1;
      hit
  | None ->
      t.misses.(i) <- t.misses.(i) + 1;
      None

let add t key v =
  let i = shard_of_key t key in
  locked t i @@ fun () -> Cache.add t.caches.(i) key v

let size t =
  Array.to_seq t.caches |> Seq.map Cache.size |> Seq.fold_left ( + ) 0

let counters t =
  Array.init (Array.length t.caches) (fun i -> (t.hits.(i), t.misses.(i)))

let fold_lru f t init =
  let acc = ref init in
  Array.iteri
    (fun i c -> acc := locked t i (fun () -> Cache.fold_lru f c !acc))
    t.caches;
  !acc
