(** Build identity, shared by [jfeed version] and the Prometheus
    [jfeed_build_info] gauge so the two can never disagree. *)

let version = "1.0.0"
