(** Submission → cache key.  See normalize.mli. *)

type fingerprint = { ast : bool; digest : string }

(* The α-rename + canonical-print hash itself lives in
   {!Jfeed_java.Fingerprint} so batch dedup (lib/robust) shares the
   exact definition without depending on the serving tier. *)
let fingerprint src =
  let fp = Jfeed_java.Fingerprint.of_source src in
  { ast = fp.Jfeed_java.Fingerprint.ast; digest = fp.Jfeed_java.Fingerprint.digest }

let cache_key ~assignment ~fuel ~deadline_s ~with_tests src =
  let fp = fingerprint src in
  let key =
    Printf.sprintf "%s|%s|%s:%s|fuel=%s|dl=%s|tests=%b" assignment
      (Jfeed_kb.Bundles.revision ())
      (if fp.ast then "ast" else "raw")
      fp.digest
      (match fuel with Some f -> string_of_int f | None -> "-")
      (match deadline_s with Some d -> Printf.sprintf "%g" d | None -> "-")
      with_tests
  in
  (key, fp)
