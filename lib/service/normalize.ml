(** Submission → cache key.  See normalize.mli. *)

open Jfeed_java

type fingerprint = { ast : bool; digest : string }

let fingerprint src =
  match Parser.parse_program src with
  | prog ->
      let canonical = Pretty.program (Normalize.alpha_rename prog) in
      { ast = true; digest = Digest.to_hex (Digest.string canonical) }
  | exception _ ->
      (* Unparseable: only byte-identical resubmissions may share the
         rejection (its diagnostic quotes exact positions). *)
      { ast = false; digest = Digest.to_hex (Digest.string src) }

let cache_key ~assignment ~fuel ~deadline_s ~with_tests src =
  let fp = fingerprint src in
  let key =
    Printf.sprintf "%s|%s|%s:%s|fuel=%s|dl=%s|tests=%b" assignment
      (Jfeed_kb.Bundles.revision ())
      (if fp.ast then "ast" else "raw")
      fp.digest
      (match fuel with Some f -> string_of_int f | None -> "-")
      (match deadline_s with Some d -> Printf.sprintf "%g" d | None -> "-")
      with_tests
  in
  (key, fp)
