(** Build identity, shared by [jfeed version] and the Prometheus
    [jfeed_build_info] gauge. *)

val version : string
