(** Wire protocol: JSONL requests/responses.  See proto.mli. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* JSON parsing: total recursive descent.  The paper's serving tier
   needs exactly one reader — request lines — so the parser favours
   clarity and hard totality over speed; a request line is a few
   kilobytes of submission text at most. *)

exception Bad of int * string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode one \uXXXX code point; surrogate pairs are combined
     when both halves are present, a lone surrogate is an error. *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4)
      with _ -> fail "invalid \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let cp = hex4 () in
                  let cp =
                    if cp >= 0xD800 && cp <= 0xDBFF then begin
                      (* high surrogate: require the low half *)
                      if
                        !pos + 2 <= n
                        && s.[!pos] = '\\'
                        && s.[!pos + 1] = 'u'
                      then begin
                        pos := !pos + 2;
                        let lo = hex4 () in
                        if lo >= 0xDC00 && lo <= 0xDFFF then
                          0x10000
                          + ((cp - 0xD800) lsl 10)
                          + (lo - 0xDC00)
                        else fail "unpaired surrogate"
                      end
                      else fail "unpaired surrogate"
                    end
                    else if cp >= 0xDC00 && cp <= 0xDFFF then
                      fail "unpaired surrogate"
                    else cp
                  in
                  add_code_point buf cp
              | _ -> fail (Printf.sprintf "bad escape '\\%c'" c));
              go ()
          )
      | Some c when Char.code c < 0x20 ->
          fail "unescaped control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ();
        incr d
      done;
      !d
    in
    let int_start = !pos in
    if digits () = 0 then fail "expected digits";
    if !pos - int_start > 1 && s.[int_start] = '0' then fail "leading zero";
    if peek () = Some '.' then begin
      advance ();
      if digits () = 0 then fail "expected digits after '.'"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        if digits () = 0 then fail "expected exponent digits"
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "invalid number"
  in
  let rec parse_value depth =
    if depth > 100 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "expected a value, found end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing characters after JSON value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "invalid JSON at byte %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type request =
  | Grade of {
      id : string option;
      rid : string option;
      assignment : string;
      source : string;
      fuel : int option;
      deadline_s : float option;
      with_tests : bool option;
    }
  | Stats of { id : string option }
  | Metrics of { id : string option }
  | Slowlog of { id : string option }
  | Shutdown of { id : string option }

let string_field j k =
  match member k j with
  | Some (Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Ok None

let bool_field j k =
  match member k j with
  | Some (Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" k)
  | None -> Ok None

let int_field j k =
  match member k j with
  | Some (Num f) when Float.is_integer f && Float.abs f <= 1e9 ->
      Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" k)
  | None -> Ok None

let num_field j k =
  match member k j with
  | Some (Num f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" k)
  | None -> Ok None

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let request_of_line line =
  match parse_json line with
  | Error e -> Error (None, e)
  | Ok j -> (
      let id =
        match member "id" j with Some (Str s) -> Some s | _ -> None
      in
      let with_id = function Ok v -> Ok v | Error e -> Error (id, e) in
      match j with
      | Obj _ -> (
          match member "op" j with
          | Some (Str "grade") ->
              with_id
                (let* rid = string_field j "rid" in
                 let* assignment = string_field j "assignment" in
                 let* source = string_field j "source" in
                 let* fuel = int_field j "fuel" in
                 let* deadline_s = num_field j "deadline_s" in
                 let* with_tests = bool_field j "with_tests" in
                 match (assignment, source) with
                 | None, _ -> Error "grade request lacks \"assignment\""
                 | _, None -> Error "grade request lacks \"source\""
                 | Some assignment, Some source ->
                     Ok
                       (Grade
                          { id; rid; assignment; source; fuel; deadline_s;
                            with_tests }))
          | Some (Str "stats") -> Ok (Stats { id })
          | Some (Str "metrics") -> Ok (Metrics { id })
          | Some (Str "slowlog") -> Ok (Slowlog { id })
          | Some (Str "shutdown") -> Ok (Shutdown { id })
          | Some (Str op) -> Error (id, Printf.sprintf "unknown op %S" op)
          | Some _ -> Error (id, "field \"op\" must be a string")
          | None -> Error (id, "request lacks \"op\""))
      | _ -> Error (None, "request must be a JSON object"))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let esc = Jfeed_core.Feedback.json_escape

let id_prefix = function
  | Some id -> Printf.sprintf {|"id":"%s",|} (esc id)
  | None -> ""

(* The correlation id renders right after "id" — but only when one
   exists (client-supplied or minted under telemetry), so responses on
   an untelemetered daemon stay byte-identical to the frozen goldens. *)
let rid_prefix = function
  | Some rid -> Printf.sprintf {|"rid":"%s",|} (esc rid)
  | None -> ""

let grade_response ?id ?rid ~cached ~fuel result_json =
  let fuel_field =
    match fuel with
    | Some f -> Printf.sprintf {|,"fuel":%d|} f
    | None -> ""
  in
  Printf.sprintf {|{%s%s"op":"grade","cached":%b%s,"result":%s}|}
    (id_prefix id) (rid_prefix rid) cached fuel_field result_json

let overloaded_response ?id ?rid
    ?(reason = "admission queue full; retry later") () =
  (* Load shedding's explicit refusal: still an [op:"grade"] line (the
     client asked for a grade and gets exactly one answer), with the
     machine-checkable marker ["rejected":"overloaded"] and a rejected
     Outcome in the result slot so uniform clients parse it like any
     other grade. *)
  Printf.sprintf
    {|{%s%s"op":"grade","rejected":"overloaded","result":{"outcome":"rejected","stage":"admission","error":"%s"}}|}
    (id_prefix id) (rid_prefix rid) (esc reason)

type stats_ext = {
  shed : int;
  degraded_admission : int;
  shards : int;
  conns : int;
  store : (int * int * int * int) option;
}

type slo_stats = {
  slo_good : int;
  slo_bad : int;
  burn_1m : float;
  burn_5m : float;
  burn_1h : float;
}

type stats = {
  requests : int;
  grades : int;
  stats_reqs : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  cache_cap : int;
  graded : int;
  degraded : int;
  rejected : int;
  queue_depth : int;
  queue_max : int;
  queue_cap : int;
  diag_counts : (string * int) list;
  absint_counts : (string * int) list;
  p50_ms : float;
  p95_ms : float;
  ext : stats_ext option;
  slo : slo_stats option;
}

let stats_response ?id s =
  let diagnostics =
    String.concat ","
      (List.map
         (fun (pass, n) -> Printf.sprintf {|"%s":%d|} (esc pass) n)
         s.diag_counts)
  in
  (* The serving-tier extension renders only when present, so the
     legacy (stdio) stats line stays byte-identical. *)
  let ext_fields =
    match s.ext with
    | None -> ""
    | Some e ->
        let store =
          match e.store with
          | None -> ""
          | Some (recovered, dropped, appended, compactions) ->
              Printf.sprintf
                {|,"store":{"recovered":%d,"dropped_bytes":%d,"appended":%d,"compactions":%d}|}
                recovered dropped appended compactions
        in
        Printf.sprintf
          {|,"admission":{"shed":%d,"degraded":%d},"shards":%d,"conns":%d%s|}
          e.shed e.degraded_admission e.shards e.conns store
  in
  (* The abstract-interpretation pass counts render after latency_ms —
     the frozen cram golden masks the stats line from ["latency_ms":]
     on, so appending there extends the response without repinning. *)
  let absint =
    String.concat ","
      (List.map
         (fun (pass, n) -> Printf.sprintf {|"%s":%d|} (esc pass) n)
         s.absint_counts)
  in
  (* SLO attainment also rides in the masked zone, and only when the
     daemon was started with an objective. *)
  let slo_fields =
    match s.slo with
    | None -> ""
    | Some o ->
        Printf.sprintf
          {|,"slo":{"good":%d,"bad":%d,"burn":{"1m":%.3g,"5m":%.3g,"1h":%.3g}}|}
          o.slo_good o.slo_bad o.burn_1m o.burn_5m o.burn_1h
  in
  (* %.3g: three significant digits whatever the magnitude — a 40 µs
     p50 renders as 0.0412, not the 0.000 that fixed-point %.3f gave. *)
  Printf.sprintf
    {|{%s"op":"stats","requests":%d,"grades":%d,"stats":%d,"errors":%d,"cache":{"hits":%d,"misses":%d,"size":%d,"cap":%d},"outcomes":{"graded":%d,"degraded":%d,"rejected":%d},"diagnostics":{%s},"queue":{"depth":%d,"max":%d,"cap":%d}%s,"latency_ms":{"p50":%.3g,"p95":%.3g},"absint":{%s}%s}|}
    (id_prefix id) s.requests s.grades s.stats_reqs s.errors s.cache_hits
    s.cache_misses s.cache_size s.cache_cap s.graded s.degraded s.rejected
    diagnostics s.queue_depth s.queue_max s.queue_cap ext_fields s.p50_ms
    s.p95_ms absint slo_fields

type slow_entry = {
  s_rid : string option;
  s_assignment : string;
  s_ms : float;
  s_outcome : string;
  s_stages : (string * float) list;
}

let slowlog_response ?id entries =
  let entry e =
    let stages =
      String.concat ","
        (List.map
           (fun (stage, ms) ->
             Printf.sprintf {|"%s":%.3g|} (esc stage) ms)
           e.s_stages)
    in
    Printf.sprintf
      {|{%s"assignment":"%s","ms":%.3g,"outcome":"%s","stages":{%s}}|}
      (rid_prefix e.s_rid) (esc e.s_assignment) e.s_ms (esc e.s_outcome)
      stages
  in
  Printf.sprintf {|{%s"op":"slowlog","n":%d,"slowest":[%s]}|} (id_prefix id)
    (List.length entries)
    (String.concat "," (List.map entry entries))

let shutdown_response ?id () =
  Printf.sprintf {|{%s"op":"shutdown","ok":true}|} (id_prefix id)

let error_response ?id ?rid msg =
  Printf.sprintf {|{%s%s"op":"error","error":"%s"}|} (id_prefix id)
    (rid_prefix rid) (esc msg)
