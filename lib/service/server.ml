(** The persistent grading daemon.  See server.mli. *)

module Bundles = Jfeed_kb.Bundles
module Pipeline = Jfeed_robust.Pipeline
module Outcome = Jfeed_robust.Outcome
module Pool = Jfeed_parallel.Pool
module Trace = Jfeed_trace.Trace
module Events = Jfeed_trace.Events

type config = {
  cache_cap : int;
  queue_cap : int;
  jobs : int;
  fuel : int option;
  deadline_s : float option;
  with_tests : bool;
  shards : int;
  cache_dir : string option;
  backlog : int;
  watermark : int option;
  shed_fuel : int option;
  event_log : string option;
  event_ring : int option;
  event_rotate : int option;
  trace_sample : int option;
  slow_ms : float option;
  slo_ms : float option;
  slo_target : float;
}

let default_config =
  {
    cache_cap = 10_000;
    queue_cap = 64;
    jobs = 1;
    fuel = None;
    deadline_s = None;
    with_tests = true;
    shards = 8;
    cache_dir = None;
    backlog = 16;
    watermark = None;
    shed_fuel = None;
    event_log = None;
    event_ring = None;
    event_rotate = None;
    trace_sample = None;
    slow_ms = None;
    slo_ms = None;
    slo_target = 0.999;
  }

(* Request-scoped telemetry is on iff any of its knobs is: then rids
   are minted for rid-less grade requests and echoed, lifecycle events
   are emitted, traces retained, SLO verdicts recorded.  With all four
   off (the default, and every frozen golden), no response byte
   changes — a client-supplied "rid" is still echoed, since sending
   one is itself an opt-in. *)
let telemetry c =
  c.event_log <> None || c.trace_sample <> None || c.slow_ms <> None
  || c.slo_ms <> None

(* The retention threshold for "slow": an explicit --slow-ms, else the
   SLO latency objective (a request that blew the objective is exactly
   the one whose trace the operator wants). *)
let slow_threshold c =
  match c.slow_ms with Some _ as s -> s | None -> c.slo_ms

(* ------------------------------------------------------------------ *)
(* Non-blocking-capable line reader.

   The loop must distinguish "a full line is available right now" (keep
   filling the batch) from "the client is waiting for answers" (stop and
   grade), so input is buffered here rather than through stdlib
   channels: [read_line] blocks, [poll_line] only consumes what a
   0-timeout [select] says is ready. *)

type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* unconsumed byte count *)
  mutable eof : bool;
}

let reader_of_fd fd = { fd; buf = Bytes.create 65536; start = 0; len = 0; eof = false }

let compact r =
  if r.start > 0 then begin
    Bytes.blit r.buf r.start r.buf 0 r.len;
    r.start <- 0
  end;
  if r.len = Bytes.length r.buf then
    r.buf <- Bytes.extend r.buf 0 (Bytes.length r.buf)

(* One [read(2)]; false when the descriptor hit end of input.  Blocking
   descriptors only (the stdio path); [`Again] can't happen there, but
   if it ever did the select-wait turns it into a retry, not a spin. *)
let rec fill r =
  compact r;
  match Sysx.read r.fd r.buf (r.start + r.len) (Bytes.length r.buf - r.start - r.len) with
  | `Read 0 ->
      r.eof <- true;
      false
  | `Read n ->
      r.len <- r.len + n;
      true
  | `Again ->
      ignore (Sysx.select [ r.fd ] [] [] (-1.0));
      fill r

(* The event loop's fill: one non-blocking read, never waits. *)
let fill_nb r =
  compact r;
  match Sysx.read r.fd r.buf (r.start + r.len) (Bytes.length r.buf - r.start - r.len) with
  | `Read 0 ->
      r.eof <- true;
      `Eof
  | `Read n ->
      r.len <- r.len + n;
      `Data
  | `Again -> `Again

let readable_now fd =
  match Sysx.select [ fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false

let take_buffered_line r =
  let rec find i =
    if i >= r.start + r.len then None
    else if Bytes.get r.buf i = '\n' then Some i
    else find (i + 1)
  in
  match find r.start with
  | Some nl ->
      let strip = if nl > r.start && Bytes.get r.buf (nl - 1) = '\r' then 1 else 0 in
      let line = Bytes.sub_string r.buf r.start (nl - r.start - strip) in
      r.len <- r.len - (nl - r.start + 1);
      r.start <- nl + 1;
      Some line
  | None ->
      if r.eof && r.len > 0 then begin
        (* final line without a newline *)
        let line = Bytes.sub_string r.buf r.start r.len in
        r.start <- 0;
        r.len <- 0;
        Some line
      end
      else None

let rec read_line r =
  match take_buffered_line r with
  | Some line -> Some line
  | None -> if r.eof then None else if fill r then read_line r else read_line r

let rec poll_line r =
  match take_buffered_line r with
  | Some line -> Some line
  | None ->
      if r.eof then None
      else if readable_now r.fd then begin
        ignore (fill r);
        poll_line r
      end
      else None

(* ------------------------------------------------------------------ *)
(* Server state and request handling                                   *)

(* What the cache stores per key: everything needed to replay the
   response byte-for-byte (minus the envelope's [id]/[cached] fields). *)
type entry = {
  outcome_class : string;
  fuel_spent : int option;  (* the response's fuel field, when budgeted *)
  diag_counts : (string * int) list;  (* per-pass analysis findings *)
  result_json : string;
}

(* The durable store's value bytes.  Header lines (class, fuel, diag
   count, one diag per line), then the result JSON raw to the end —
   self-delimiting because everything before it is newline-framed and
   pass ids contain neither spaces nor newlines. *)
let encode_entry e =
  let b = Buffer.create (String.length e.result_json + 64) in
  Buffer.add_string b e.outcome_class;
  Buffer.add_char b '\n';
  Buffer.add_string b
    (match e.fuel_spent with Some n -> string_of_int n | None -> "-");
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int (List.length e.diag_counts));
  Buffer.add_char b '\n';
  List.iter
    (fun (pass, n) ->
      Buffer.add_string b pass;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int n);
      Buffer.add_char b '\n')
    e.diag_counts;
  Buffer.add_string b e.result_json;
  Buffer.contents b

let decode_entry s =
  let ( let* ) = Option.bind in
  let* e1 = String.index_opt s '\n' in
  let outcome_class = String.sub s 0 e1 in
  let* e2 = String.index_from_opt s (e1 + 1) '\n' in
  let fuel_field = String.sub s (e1 + 1) (e2 - e1 - 1) in
  let* fuel_spent =
    if fuel_field = "-" then Some None
    else Option.map Option.some (int_of_string_opt fuel_field)
  in
  let* e3 = String.index_from_opt s (e2 + 1) '\n' in
  let* ndiags = int_of_string_opt (String.sub s (e2 + 1) (e3 - e2 - 1)) in
  if ndiags < 0 then None
  else
    let rec diags i k acc =
      if k = 0 then Some (List.rev acc, i)
      else
        let* e = String.index_from_opt s i '\n' in
        let* sp = String.index_from_opt s i ' ' in
        if sp >= e then None
        else
          let* n = int_of_string_opt (String.sub s (sp + 1) (e - sp - 1)) in
          diags (e + 1) (k - 1) ((String.sub s i (sp - i), n) :: acc)
    in
    let* diag_counts, i = diags (e3 + 1) ndiags [] in
    Some
      {
        outcome_class;
        fuel_spent;
        diag_counts;
        result_json = String.sub s i (String.length s - i);
      }

type state = {
  config : config;
  cache : entry Shards.t;
  store : Store.t option;
  metrics : Metrics.t;
  events : Events.t option;
  rid_seed : int;  (* pid, so rids from successive daemons differ *)
  mutable rid_ctr : int;  (* minted-rid counter *)
  mutable seq_ctr : int;  (* grade-miss counter for 1-in-N sampling *)
}

let make_state config =
  let cache = Shards.create ~shards:config.shards ~cap:config.cache_cap in
  let store =
    match config.cache_dir with
    | None -> None
    | Some dir ->
        (* Boot-time replay: every valid record becomes a warm cache
           entry (via the pure-memory [Shards.add], so nothing is
           re-appended); a record whose value fails to decode — an
           older format, a manual edit — is skipped, not fatal. *)
        let t, _recovery =
          Store.open_dir dir ~f:(fun ~key ~value ->
              match decode_entry value with
              | Some e -> Shards.add cache key e
              | None -> ())
        in
        Some t
  in
  let events =
    Option.map
      (fun dir ->
        Events.create ?ring_cap:config.event_ring
          ?rotate_bytes:config.event_rotate dir)
      config.event_log
  in
  {
    config;
    cache;
    store;
    metrics = Metrics.create ();
    events;
    rid_seed = Unix.getpid ();
    rid_ctr = 0;
    seq_ctr = 0;
  }

(* Graceful close: compact first when the log carries dead weight
   (evicted or superseded records), so restarts replay only the live
   set.  [kill -9] skips this — recovery replays the raw append log. *)
let close_state st =
  Option.iter Events.close st.events;
  Option.iter
    (fun s ->
      let r = Store.recovery s in
      if r.Store.recovered + Store.appended s > Shards.size st.cache then
        Store.compact s
          (List.rev
             (Shards.fold_lru
                (fun key e acc -> (key, encode_entry e) :: acc)
                st.cache []));
      Store.close s)
    st.store

type grade_req = {
  g_id : string option;
  g_rid : string option;  (* correlation id: client-supplied or minted *)
  g_assignment : string;
  g_source : string;
  g_fuel : int option;
  g_deadline : float option;
  g_with_tests : bool;
  g_enq_ms : float;  (* monotonic admission instant, for queue-wait *)
}

(* Per-entry resolution after the cache pass. *)
type resolved =
  | Err of string
  | Hit of entry * float  (* lookup ms *)
  | Miss of int  (* index into the miss array *)
  | Dup of int  (* same key as an earlier miss of this batch *)

type miss = {
  m_bundle : Bundles.t;
  m_key : string;
  m_req : grade_req;
  m_sample : bool;  (* 1-in-N trace retention, decided at resolution *)
}

(* Monotonic, nanosecond-backed: wall-clock steps (NTP, suspend) can
   no longer produce negative or wildly wrong latencies, and the
   sub-millisecond service times the percentiles now render with three
   significant digits are actually measured, not rounded away. *)
let now_ms () = Int64.to_float (Trace.now_ns ()) /. 1e6

(* Emit one lifecycle event iff the daemon has an event log and the
   request a correlation id.  All call sites run single-threaded (the
   resolution/response phases and the event loop), matching the ring's
   one-writer contract. *)
let emit st ~rid ev attrs =
  match (st.events, rid) with
  | Some e, Some rid -> Events.emit e ~rid ~ev attrs
  | _ -> ()

let grade_miss cfg (m : miss) =
  let r = m.m_req in
  let t0 = now_ms () in
  (* Every miss runs traced so the slowlog can show where a slow
     request spent its time.  The tracer is this worker domain's
     reusable scratch buffer (Pool.map contract: one writer per
     buffer); anything worth keeping is serialized below, before the
     domain's next miss recycles it. *)
  let trace = Trace.scratch () in
  let item =
    Pipeline.grade_submission ?fuel:r.g_fuel ?deadline_s:r.g_deadline
      ?rid:r.g_rid ~with_tests:r.g_with_tests ~name:"<request>" ~trace
      m.m_bundle r.g_source
  in
  let ms = now_ms () -. t0 in
  let entry =
    {
      outcome_class = Outcome.classify item.Pipeline.outcome;
      fuel_spent =
        (match r.g_fuel with
        | Some _ -> Some item.Pipeline.fuel_spent
        | None -> None);
      diag_counts =
        (match Outcome.report item.Pipeline.outcome with
        | Some rep ->
            Jfeed_absint.Passes.count_by_pass rep.Outcome.diags
        | None -> []);
      result_json = Outcome.to_json ~comments:true item.Pipeline.outcome;
    }
  in
  let slow =
    {
      Proto.s_rid = r.g_rid;
      s_assignment = r.g_assignment;
      s_ms = ms;
      s_outcome = entry.outcome_class;
      s_stages =
        List.map
          (fun (stage, (_n, ns)) -> (stage, Int64.to_float ns /. 1e6))
          (Trace.rollup trace);
    }
  in
  (* Tail-based retention: keep the full span tree only when the
     request turned out interesting — slow, not cleanly graded, or
     1-in-N sampled.  Serialized here, in the worker, because the
     scratch buffer is recycled by this domain's next miss. *)
  let retained =
    r.g_rid <> None
    && (m.m_sample
       || entry.outcome_class <> "graded"
       ||
       match slow_threshold cfg with
       | Some th -> ms >= th
       | None -> false)
  in
  let spans = if retained then Some (Trace.spans_json trace) else None in
  (entry, ms, slow, spans)

(* Grade one batch against the cache + pool; one response line per
   request, in request order.  Shared by the stdio loop (which prints
   the lines) and the socket event loop (which queues them onto each
   connection's output buffer). *)
let grade_batch st (batch : grade_req list) : string list =
  Metrics.observe_queue_depth st.metrics (List.length batch);
  let misses = ref [] in
  let n_misses = ref 0 in
  let inflight = Hashtbl.create 16 in
  let resolved =
    List.map
      (fun r ->
        match Bundles.find r.g_assignment with
        | None ->
            ( r,
              Err
                (Printf.sprintf
                   "unknown assignment %S; try: jfeed assignments"
                   r.g_assignment) )
        | Some b ->
            let t0 = now_ms () in
            let key, _fp =
              Normalize.cache_key ~assignment:r.g_assignment ~fuel:r.g_fuel
                ~deadline_s:r.g_deadline ~with_tests:r.g_with_tests
                r.g_source
            in
            (match Shards.find st.cache key with
            | Some e -> (r, Hit (e, now_ms () -. t0))
            | None -> (
                match Hashtbl.find_opt inflight key with
                | Some i -> (r, Dup i)
                | None ->
                    let i = !n_misses in
                    Hashtbl.add inflight key i;
                    incr n_misses;
                    (* The 1-in-N sampling decision is made here, in
                       the single-threaded resolution phase, so it is
                       deterministic in arrival order whatever the
                       pool width. *)
                    let m_sample =
                      match st.config.trace_sample with
                      | Some n when r.g_rid <> None ->
                          st.seq_ctr <- st.seq_ctr + 1;
                          st.seq_ctr mod n = 0
                      | _ -> false
                    in
                    misses :=
                      { m_bundle = b; m_key = key; m_req = r; m_sample }
                      :: !misses;
                    (r, Miss i))))
      batch
  in
  let miss_arr = Array.of_list (List.rev !misses) in
  (* The parallel part: only genuine cache misses reach the pool, each
     with its own fresh budget (jobs-invariant, like the batch CLI). *)
  let results =
    Pool.map ~jobs:st.config.jobs ~f:(grade_miss st.config) miss_arr
  in
  let slo_on = st.config.slo_ms <> None in
  (* SLO verdict + respond event for one answered grade request; total
     service time runs from admission, so queue wait counts against
     the objective exactly as the client experienced it. *)
  let finish r ~cached ~outcome ~grade_ms =
    let total = now_ms () -. r.g_enq_ms in
    if slo_on then
      Metrics.record_slo st.metrics
        ~ok:(match st.config.slo_ms with Some s -> total <= s | None -> true);
    emit st ~rid:r.g_rid "respond"
      [
        ("outcome", Events.S outcome);
        ("cached", Events.I (if cached then 1 else 0));
        ("queue_ms", Events.F (total -. grade_ms));
        ("total_ms", Events.F total);
      ]
  in
  let lines =
    List.map
      (fun (r, res) ->
        match res with
        | Err msg ->
            Metrics.record_error st.metrics;
            emit st ~rid:r.g_rid "respond"
              [ ("outcome", Events.S "error") ];
            Proto.error_response ?id:r.g_id ?rid:r.g_rid msg
        | Hit (e, ms) ->
            Metrics.record_grade st.metrics ~outcome:e.outcome_class
              ~hit:true ~ms;
            Metrics.record_diags st.metrics e.diag_counts;
            emit st ~rid:r.g_rid "cache_hit" [ ("ms", Events.F ms) ];
            finish r ~cached:true ~outcome:e.outcome_class ~grade_ms:ms;
            Proto.grade_response ?id:r.g_id ?rid:r.g_rid ~cached:true
              ~fuel:e.fuel_spent e.result_json
        | Miss i ->
            let entry, ms, slow, spans = results.(i) in
            Shards.add st.cache miss_arr.(i).m_key entry;
            (* Fresh results — and only fresh results — reach the durable
               log; replayed or duplicate hits are already on disk. *)
            Option.iter
              (fun s ->
                Store.append s ~key:miss_arr.(i).m_key
                  ~value:(encode_entry entry))
              st.store;
            Metrics.record_grade st.metrics ~outcome:entry.outcome_class
              ~hit:false ~ms;
            Metrics.record_slow st.metrics slow;
            Metrics.record_diags st.metrics entry.diag_counts;
            emit st ~rid:r.g_rid "cache_miss" [];
            emit st ~rid:r.g_rid "grade_done"
              [
                ("ms", Events.F ms);
                ("outcome", Events.S entry.outcome_class);
              ];
            Option.iter
              (fun spans ->
                Metrics.record_trace_retained st.metrics;
                emit st ~rid:r.g_rid "trace" [ ("spans", Events.R spans) ])
              spans;
            finish r ~cached:false ~outcome:entry.outcome_class
              ~grade_ms:ms;
            Proto.grade_response ?id:r.g_id ?rid:r.g_rid ~cached:false
              ~fuel:entry.fuel_spent entry.result_json
        | Dup i ->
            (* Served from an in-flight computation of this very batch:
               a hit in every observable way, it just wasn't stored yet
               when the lookup ran.  The requester still waited for that
               grading, so its service time — not zero — is what lands
               in the latency reservoir. *)
            let entry, ms, _, _ = results.(i) in
            Metrics.record_grade st.metrics ~outcome:entry.outcome_class
              ~hit:true ~ms;
            Metrics.record_diags st.metrics entry.diag_counts;
            emit st ~rid:r.g_rid "cache_hit"
              [ ("ms", Events.F ms); ("dup", Events.I 1) ];
            finish r ~cached:true ~outcome:entry.outcome_class ~grade_ms:ms;
            Proto.grade_response ?id:r.g_id ?rid:r.g_rid ~cached:true
              ~fuel:entry.fuel_spent entry.result_json)
      resolved
  in
  Option.iter Events.flush st.events;
  lines

let process_batch st oc (batch : grade_req list) =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (grade_batch st batch);
  flush oc

(* The socket daemon's serving-tier stats extension; the stdio path
   passes no [ext] and keeps its historical byte shape. *)
let stats_ext st ~conns =
  {
    Proto.shed = Metrics.shed st.metrics;
    degraded_admission = Metrics.degraded_admission st.metrics;
    shards = Shards.shard_count st.cache;
    conns;
    store =
      Option.map
        (fun s ->
          let r = Store.recovery s in
          ( r.Store.recovered,
            r.Store.dropped_bytes,
            Store.appended s,
            Store.compactions s ))
        st.store;
  }

let stats_line st ?id ?ext ~queue_depth () =
  let slo_target =
    match st.config.slo_ms with
    | Some _ -> Some st.config.slo_target
    | None -> None
  in
  Proto.stats_response ?id
    (Metrics.to_stats ?ext ?slo_target st.metrics
       ~cache_size:(Shards.size st.cache) ~cache_cap:st.config.cache_cap
       ~queue_depth ~queue_cap:st.config.queue_cap)

let prometheus_block ?conns st ~queue_depth =
  let extended =
    Option.map
      (fun conns ->
        {
          Metrics.x_shard_counters = Shards.counters st.cache;
          x_conns = conns;
          x_store =
            Option.map
              (fun s ->
                let r = Store.recovery s in
                ( r.Store.recovered,
                  r.Store.dropped_bytes,
                  Store.appended s,
                  Store.compactions s ))
              st.store;
        })
      conns
  in
  let slo = Option.map (fun ms -> (ms, st.config.slo_target)) st.config.slo_ms in
  let events =
    Option.map
      (fun e -> (Events.emitted e, Events.dropped e, Events.rotations e))
      st.events
  in
  Metrics.to_prometheus ?extended ?slo ?events st.metrics
    ~cache_size:(Shards.size st.cache) ~cache_cap:st.config.cache_cap
    ~queue_depth ~queue_cap:st.config.queue_cap

(* Request fields override the server defaults; an absent field means
   "whatever the daemon was started with".  The correlation id is the
   client's when supplied, else minted here — at admission — when
   telemetry is on; either way it is echoed in the response and stamps
   every event and retained trace of this request's lifecycle. *)
let grade_req_of st ~id ~rid ~assignment ~source ~fuel ~deadline_s
    ~with_tests =
  let config = st.config in
  let g_rid =
    match rid with
    | Some _ -> rid
    | None ->
        if telemetry config then begin
          st.rid_ctr <- st.rid_ctr + 1;
          Some (Printf.sprintf "r%d-%d" st.rid_seed st.rid_ctr)
        end
        else None
  in
  emit st ~rid:g_rid "admit" [ ("assignment", Events.S assignment) ];
  {
    g_id = id;
    g_rid;
    g_assignment = assignment;
    g_source = source;
    g_fuel = (match fuel with Some _ -> fuel | None -> config.fuel);
    g_deadline =
      (match deadline_s with Some _ -> deadline_s | None -> config.deadline_s);
    g_with_tests = Option.value ~default:config.with_tests with_tests;
    g_enq_ms = now_ms ();
  }

let serve_connection st r oc =
  (* A non-grade line discovered while draining the queue is stashed and
     re-processed after the batch — responses stay in request order. *)
  let pending = ref None in
  let next_line () =
    match !pending with
    | Some l ->
        pending := None;
        Some l
    | None -> read_line r
  in
  let rec drain_into batch =
    if List.length batch >= st.config.queue_cap then List.rev batch
    else
      match poll_line r with
      | None -> List.rev batch
      | Some l when String.trim l = "" -> drain_into batch
      | Some l -> (
          match Proto.request_of_line l with
          | Ok (Proto.Grade g) ->
              Metrics.record_request st.metrics;
              let req =
                grade_req_of st ~id:g.id ~rid:g.rid
                  ~assignment:g.assignment ~source:g.source ~fuel:g.fuel
                  ~deadline_s:g.deadline_s ~with_tests:g.with_tests
              in
              drain_into (req :: batch)
          | _ ->
              (* stats / shutdown / error: a barrier — park the raw line *)
              pending := Some l;
              List.rev batch)
  in
  let rec loop () =
    match next_line () with
    | None -> `Eof
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
        Metrics.record_request st.metrics;
        match Proto.request_of_line line with
        | Error (id, msg) ->
            Metrics.record_error st.metrics;
            output_string oc (Proto.error_response ?id msg);
            output_char oc '\n';
            flush oc;
            loop ()
        | Ok (Proto.Stats { id }) ->
            Metrics.record_stats_req st.metrics;
            (* Stats is a barrier: every earlier grade was answered
               before this line is reached, so the truthful queue depth
               here is zero by construction — the live depths show up on
               the socket daemon, where stats overtakes queued work. *)
            output_string oc (stats_line st ?id ~queue_depth:0 ());
            output_char oc '\n';
            flush oc;
            loop ()
        | Ok (Proto.Metrics { id = _ }) ->
            (* The one multi-line response: a Prometheus exposition
               block, "# EOF"-terminated (see Proto).  Counted as a
               stats-class request. *)
            Metrics.record_stats_req st.metrics;
            output_string oc (prometheus_block st ~queue_depth:0);
            output_char oc '\n';
            flush oc;
            loop ()
        | Ok (Proto.Slowlog { id }) ->
            Metrics.record_stats_req st.metrics;
            output_string oc
              (Proto.slowlog_response ?id (Metrics.slowlog st.metrics));
            output_char oc '\n';
            flush oc;
            loop ()
        | Ok (Proto.Shutdown { id }) ->
            output_string oc (Proto.shutdown_response ?id ());
            output_char oc '\n';
            flush oc;
            `Shutdown
        | Ok (Proto.Grade g) ->
            let req =
              grade_req_of st ~id:g.id ~rid:g.rid ~assignment:g.assignment
                ~source:g.source ~fuel:g.fuel ~deadline_s:g.deadline_s
                ~with_tests:g.with_tests
            in
            let batch = drain_into [ req ] in
            process_batch st oc batch;
            loop ())
  in
  try loop () with Sys_error _ -> `Eof

let serve_fd config fd oc =
  let st = make_state config in
  let outcome = serve_connection st (reader_of_fd fd) oc in
  close_state st;
  outcome

let serve_stdio config =
  ignore (serve_fd config Unix.stdin stdout)

(* ------------------------------------------------------------------ *)
(* Concurrent socket daemon.

   One select(2) event loop multiplexes the listener and every open
   connection; grading still runs in bounded synchronous rounds through
   {!grade_batch} (the pool is the parallelism — the loop's job is to
   keep one slow or bursty client from wedging the rest):

   - Per-connection response order is kept by a FIFO of slots: a slot
     is either a finished line (errors, stats, shed refusals) or a
     ticket awaiting its grading round.  Slots drain front-to-back, so
     a stats response never overtakes an earlier grade response on the
     same connection, while grading rounds batch tickets across
     connections freely.
   - Admission control bounds memory: at most [queue_cap] tickets are
     pending at once; a grade line past that is refused on the spot
     with a [rejected:"overloaded"] response.  Past [watermark] (when
     set, with [shed_fuel]), requests are still admitted but on the
     degraded fuel budget — the PR-1 ladder applied at the front door.
     The fuel override is part of the cache key, so degraded results
     never impersonate full-budget ones.
   - A ticket that waited longer than its own deadline is shed when its
     round starts, not graded with a stale budget: grading it anyway
     would poison the cache with a result keyed as full-budget but
     computed after the requester gave up.
   - Flow control: a connection whose output backlog exceeds
     {!out_highwater} stops being read (and so stops being admitted)
     until the client drains; its kernel-buffered input just waits.
   - SIGINT/SIGTERM set a stop flag (checked every loop turn; the
     finite select timeout bounds the latency): the listener closes,
     reads stop, admitted tickets finish, output drains (with a grace
     period), the durable store is compacted + fsynced, the socket
     path unlinked. *)

let out_highwater = 4 * 1024 * 1024
let drain_grace_s = 5.0

type slot = Done of string | Wait of int

type conn = {
  c_fd : Unix.file_descr;
  c_rd : reader;
  c_slots : slot Queue.t;
  c_out : string Queue.t;  (* response bytes not yet written *)
  mutable c_off : int;  (* written prefix of the head string *)
  mutable c_out_len : int;  (* total unwritten bytes *)
  mutable c_dead : bool;
}

type ticket = { t_req : grade_req; t_enq_ms : float }

(* A resolved ticket: the response line, plus the correlation id so
   the write-out event can be stamped when the line finally leaves. *)
type resolved_ticket = { r_line : string; r_rid : string option }

let push_out c line =
  Queue.push (line ^ "\n") c.c_out;
  c.c_out_len <- c.c_out_len + String.length line + 1

(* Move every leading resolved slot onto the output queue.  The write
   event marks the hand-off to the connection's output buffer — the
   end of the server-side lifecycle (the remaining latency is the
   socket and the client's reader). *)
let promote st tickets c =
  let rec go () =
    match Queue.peek_opt c.c_slots with
    | Some (Done line) ->
        ignore (Queue.pop c.c_slots);
        push_out c line;
        go ()
    | Some (Wait id) -> (
        match Hashtbl.find_opt tickets id with
        | Some rt ->
            ignore (Queue.pop c.c_slots);
            Hashtbl.remove tickets id;
            emit st ~rid:rt.r_rid "write"
              [ ("bytes", Events.I (String.length rt.r_line + 1)) ];
            push_out c rt.r_line;
            go ()
        | None -> ())
    | None -> ()
  in
  go ()

let rec write_conn c =
  match Queue.peek_opt c.c_out with
  | None -> ()
  | Some head -> (
      let len = String.length head - c.c_off in
      match Sysx.write c.c_fd (Bytes.unsafe_of_string head) c.c_off len with
      | `Wrote n ->
          c.c_out_len <- c.c_out_len - n;
          if n = len then begin
            ignore (Queue.pop c.c_out);
            c.c_off <- 0;
            write_conn c
          end
          else c.c_off <- c.c_off + n
      | `Again -> ()
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          c.c_dead <- true)

let serve_socket config path =
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception _ -> ());
  let stop = ref false in
  let install s =
    try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop := true))
    with _ -> ()
  in
  install Sys.sigint;
  install Sys.sigterm;
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock sock;
  let conns = ref [] in
  let cleanup () =
    List.iter (fun c -> try Unix.close c.c_fd with _ -> ()) !conns;
    (try Unix.close sock with _ -> ());
    try Sys.remove path with _ -> ()
  in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock config.backlog
   with e ->
     cleanup ();
     raise e);
  (* One state for the daemon's lifetime: the cache and the stats span
     connections, which is the whole point of a persistent service. *)
  let st = make_state config in
  let pending : (int * ticket) Queue.t = Queue.create () in
  let tickets : (int, resolved_ticket) Hashtbl.t = Hashtbl.create 64 in
  let next_ticket = ref 0 in
  let handle_line c line =
    if String.trim line <> "" then begin
      Metrics.record_request st.metrics;
      let depth = Queue.length pending in
      match Proto.request_of_line line with
      | Error (id, msg) ->
          Metrics.record_error st.metrics;
          Queue.push (Done (Proto.error_response ?id msg)) c.c_slots
      | Ok (Proto.Stats { id }) ->
          Metrics.record_stats_req st.metrics;
          Queue.push
            (Done
               (stats_line st ?id
                  ~ext:(stats_ext st ~conns:(List.length !conns))
                  ~queue_depth:depth ()))
            c.c_slots
      | Ok (Proto.Metrics { id = _ }) ->
          Metrics.record_stats_req st.metrics;
          Queue.push
            (Done
               (prometheus_block st ~conns:(List.length !conns)
                  ~queue_depth:depth))
            c.c_slots
      | Ok (Proto.Slowlog { id }) ->
          Metrics.record_stats_req st.metrics;
          Queue.push
            (Done (Proto.slowlog_response ?id (Metrics.slowlog st.metrics)))
            c.c_slots
      | Ok (Proto.Shutdown { id }) ->
          Queue.push (Done (Proto.shutdown_response ?id ())) c.c_slots;
          stop := true
      | Ok (Proto.Grade g) ->
          let req =
            grade_req_of st ~id:g.id ~rid:g.rid ~assignment:g.assignment
              ~source:g.source ~fuel:g.fuel ~deadline_s:g.deadline_s
              ~with_tests:g.with_tests
          in
          if depth >= st.config.queue_cap then begin
            (* Hard shed: answer now, never queue, never grade. *)
            Metrics.record_shed st.metrics;
            if st.config.slo_ms <> None then
              Metrics.record_slo st.metrics ~ok:false;
            emit st ~rid:req.g_rid "shed"
              [ ("reason", Events.S "queue full"); ("depth", Events.I depth) ];
            Queue.push
              (Done (Proto.overloaded_response ?id:g.id ?rid:req.g_rid ()))
              c.c_slots
          end
          else begin
            let req =
              match (st.config.watermark, st.config.shed_fuel) with
              | Some w, Some sf when depth >= w ->
                  (* Degraded admission: still served, on the shed
                     budget.  The clamped fuel is part of the cache
                     key, so this can't poison full-budget entries. *)
                  Metrics.record_degraded_admission st.metrics;
                  let clamped =
                    match req.g_fuel with Some f -> min f sf | None -> sf
                  in
                  emit st ~rid:req.g_rid "degrade"
                    [
                      ("fuel", Events.I clamped);
                      ("depth", Events.I depth);
                    ];
                  { req with g_fuel = Some clamped }
              | _ -> req
            in
            let id = !next_ticket in
            incr next_ticket;
            Queue.push (id, { t_req = req; t_enq_ms = now_ms () }) pending;
            Metrics.observe_queue_depth st.metrics (Queue.length pending);
            Queue.push (Wait id) c.c_slots
          end
    end
  in
  let read_conn c =
    let rec drain () =
      match fill_nb c.c_rd with
      | `Data -> drain ()
      | `Again | `Eof -> ()
    in
    drain ();
    let rec lines () =
      match take_buffered_line c.c_rd with
      | Some l ->
          handle_line c l;
          lines ()
      | None -> ()
    in
    lines ()
  in
  let run_pending () =
    if not (Queue.is_empty pending) then begin
      let items = List.of_seq (Queue.to_seq pending) in
      Queue.clear pending;
      let now = now_ms () in
      let live, expired =
        List.partition
          (fun (_, t) ->
            match t.t_req.g_deadline with
            | Some d -> (now -. t.t_enq_ms) /. 1000.0 < d
            | None -> true)
          items
      in
      (* Queue-expired requests are shed, not graded: the requester's
         deadline already passed, and grading on the leftover budget
         would cache a result keyed as if it ran on the full one. *)
      List.iter
        (fun (id, t) ->
          Metrics.record_shed st.metrics;
          if st.config.slo_ms <> None then
            Metrics.record_slo st.metrics ~ok:false;
          emit st ~rid:t.t_req.g_rid "shed"
            [
              ("reason", Events.S "deadline exceeded while queued");
              ("queue_ms", Events.F (now -. t.t_enq_ms));
            ];
          Hashtbl.replace tickets id
            {
              r_line =
                Proto.overloaded_response ?id:t.t_req.g_id
                  ?rid:t.t_req.g_rid
                  ~reason:"deadline exceeded while queued" ();
              r_rid = t.t_req.g_rid;
            })
        expired;
      let lines = grade_batch st (List.map (fun (_, t) -> t.t_req) live) in
      List.iter2
        (fun (id, t) line ->
          Hashtbl.replace tickets id { r_line = line; r_rid = t.t_req.g_rid })
        live lines
    end
  in
  let drain_deadline = ref infinity in
  let rec loop () =
    if !stop && !drain_deadline = infinity then
      drain_deadline := now_ms () +. (drain_grace_s *. 1000.0);
    let rds =
      if !stop then []
      else
        sock
        :: List.filter_map
             (fun c ->
               if (not c.c_rd.eof) && c.c_out_len < out_highwater then
                 Some c.c_fd
               else None)
             !conns
    in
    let wrs =
      List.filter_map
        (fun c -> if c.c_out_len > 0 then Some c.c_fd else None)
        !conns
    in
    let rready, wready, _ = Sysx.select rds wrs [] 0.2 in
    if (not !stop) && List.mem sock rready then begin
      let rec accept_all () =
        match Sysx.accept sock with
        | `Conn (fd, _) ->
            Unix.set_nonblock fd;
            conns :=
              {
                c_fd = fd;
                c_rd = reader_of_fd fd;
                c_slots = Queue.create ();
                c_out = Queue.create ();
                c_off = 0;
                c_out_len = 0;
                c_dead = false;
              }
              :: !conns;
            accept_all ()
        | `Again -> ()
      in
      accept_all ()
    end;
    if not !stop then
      List.iter
        (fun c -> if List.mem c.c_fd rready then read_conn c)
        !conns;
    run_pending ();
    List.iter
      (fun c ->
        promote st tickets c;
        if c.c_out_len > 0 && (List.mem c.c_fd wready || !stop) then
          write_conn c)
      !conns;
    (* The loop turn is the event log's single writer: admissions,
       sheds and write-outs accumulated this turn reach disk before
       the next select sleep. *)
    Option.iter Events.flush st.events;
    (* Reap: write-errored connections, and cleanly finished ones (the
       client hung up and owes/awaits nothing). *)
    let dead, alive =
      List.partition
        (fun c ->
          c.c_dead
          || (c.c_rd.eof && Queue.is_empty c.c_slots && c.c_out_len = 0))
        !conns
    in
    List.iter (fun c -> try Unix.close c.c_fd with _ -> ()) dead;
    conns := alive;
    let drained =
      Queue.is_empty pending
      && List.for_all
           (fun c -> c.c_out_len = 0 && Queue.is_empty c.c_slots)
           !conns
    in
    if !stop && (drained || now_ms () > !drain_deadline) then ()
    else loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      cleanup ();
      close_state st)
    loop
