(** The persistent grading daemon.  See server.mli. *)

module Bundles = Jfeed_kb.Bundles
module Pipeline = Jfeed_robust.Pipeline
module Outcome = Jfeed_robust.Outcome
module Pool = Jfeed_parallel.Pool

type config = {
  cache_cap : int;
  queue_cap : int;
  jobs : int;
  fuel : int option;
  deadline_s : float option;
  with_tests : bool;
}

let default_config =
  {
    cache_cap = 10_000;
    queue_cap = 64;
    jobs = 1;
    fuel = None;
    deadline_s = None;
    with_tests = true;
  }

(* ------------------------------------------------------------------ *)
(* Non-blocking-capable line reader.

   The loop must distinguish "a full line is available right now" (keep
   filling the batch) from "the client is waiting for answers" (stop and
   grade), so input is buffered here rather than through stdlib
   channels: [read_line] blocks, [poll_line] only consumes what a
   0-timeout [select] says is ready. *)

type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* unconsumed byte count *)
  mutable eof : bool;
}

let reader_of_fd fd = { fd; buf = Bytes.create 65536; start = 0; len = 0; eof = false }

let compact r =
  if r.start > 0 then begin
    Bytes.blit r.buf r.start r.buf 0 r.len;
    r.start <- 0
  end;
  if r.len = Bytes.length r.buf then
    r.buf <- Bytes.extend r.buf 0 (Bytes.length r.buf)

(* One [read(2)]; false when the descriptor hit end of input. *)
let fill r =
  compact r;
  let n = Unix.read r.fd r.buf (r.start + r.len) (Bytes.length r.buf - r.start - r.len) in
  if n = 0 then r.eof <- true else r.len <- r.len + n;
  n > 0

let readable_now fd =
  match Unix.select [ fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false

let take_buffered_line r =
  let rec find i =
    if i >= r.start + r.len then None
    else if Bytes.get r.buf i = '\n' then Some i
    else find (i + 1)
  in
  match find r.start with
  | Some nl ->
      let strip = if nl > r.start && Bytes.get r.buf (nl - 1) = '\r' then 1 else 0 in
      let line = Bytes.sub_string r.buf r.start (nl - r.start - strip) in
      r.len <- r.len - (nl - r.start + 1);
      r.start <- nl + 1;
      Some line
  | None ->
      if r.eof && r.len > 0 then begin
        (* final line without a newline *)
        let line = Bytes.sub_string r.buf r.start r.len in
        r.start <- 0;
        r.len <- 0;
        Some line
      end
      else None

let rec read_line r =
  match take_buffered_line r with
  | Some line -> Some line
  | None -> if r.eof then None else if fill r then read_line r else read_line r

let rec poll_line r =
  match take_buffered_line r with
  | Some line -> Some line
  | None ->
      if r.eof then None
      else if readable_now r.fd then begin
        ignore (fill r);
        poll_line r
      end
      else None

(* ------------------------------------------------------------------ *)
(* Server state and request handling                                   *)

(* What the cache stores per key: everything needed to replay the
   response byte-for-byte (minus the envelope's [id]/[cached] fields). *)
type entry = {
  outcome_class : string;
  fuel_spent : int option;  (* the response's fuel field, when budgeted *)
  diag_counts : (string * int) list;  (* per-pass analysis findings *)
  result_json : string;
}

type state = {
  config : config;
  cache : entry Cache.t;
  metrics : Metrics.t;
}

let make_state config =
  { config; cache = Cache.create ~cap:config.cache_cap;
    metrics = Metrics.create () }

type grade_req = {
  g_id : string option;
  g_assignment : string;
  g_source : string;
  g_fuel : int option;
  g_deadline : float option;
  g_with_tests : bool;
}

(* Per-entry resolution after the cache pass. *)
type resolved =
  | Err of string
  | Hit of entry * float  (* lookup ms *)
  | Miss of int  (* index into the miss array *)
  | Dup of int  (* same key as an earlier miss of this batch *)

type miss = {
  m_bundle : Bundles.t;
  m_key : string;
  m_req : grade_req;
}

(* Monotonic, nanosecond-backed: wall-clock steps (NTP, suspend) can
   no longer produce negative or wildly wrong latencies, and the
   sub-millisecond service times the percentiles now render with three
   significant digits are actually measured, not rounded away. *)
let now_ms () = Int64.to_float (Jfeed_trace.Trace.now_ns ()) /. 1e6

let grade_miss (m : miss) =
  let r = m.m_req in
  let t0 = now_ms () in
  (* Every miss runs traced so the slowlog can show where a slow
     request spent its time.  The tracer is created here, inside the
     worker domain (Pool.map contract: one writer per buffer). *)
  let trace = Jfeed_trace.Trace.create () in
  let item =
    Pipeline.grade_submission ?fuel:r.g_fuel ?deadline_s:r.g_deadline
      ~with_tests:r.g_with_tests ~name:"<request>" ~trace m.m_bundle
      r.g_source
  in
  let ms = now_ms () -. t0 in
  let entry =
    {
      outcome_class = Outcome.classify item.Pipeline.outcome;
      fuel_spent =
        (match r.g_fuel with
        | Some _ -> Some item.Pipeline.fuel_spent
        | None -> None);
      diag_counts =
        (match Outcome.report item.Pipeline.outcome with
        | Some rep ->
            Jfeed_analysis.Passes.count_by_pass rep.Outcome.diags
        | None -> []);
      result_json = Outcome.to_json ~comments:true item.Pipeline.outcome;
    }
  in
  let slow =
    {
      Proto.s_assignment = r.g_assignment;
      s_ms = ms;
      s_outcome = entry.outcome_class;
      s_stages =
        List.map
          (fun (stage, (_n, ns)) -> (stage, Int64.to_float ns /. 1e6))
          (Jfeed_trace.Trace.rollup trace);
    }
  in
  (entry, ms, slow)

let process_batch st oc (batch : grade_req list) =
  Metrics.observe_queue_depth st.metrics (List.length batch);
  let misses = ref [] in
  let n_misses = ref 0 in
  let inflight = Hashtbl.create 16 in
  let resolved =
    List.map
      (fun r ->
        match Bundles.find r.g_assignment with
        | None ->
            ( r,
              Err
                (Printf.sprintf
                   "unknown assignment %S; try: jfeed assignments"
                   r.g_assignment) )
        | Some b ->
            let t0 = now_ms () in
            let key, _fp =
              Normalize.cache_key ~assignment:r.g_assignment ~fuel:r.g_fuel
                ~deadline_s:r.g_deadline ~with_tests:r.g_with_tests
                r.g_source
            in
            (match Cache.find st.cache key with
            | Some e -> (r, Hit (e, now_ms () -. t0))
            | None -> (
                match Hashtbl.find_opt inflight key with
                | Some i -> (r, Dup i)
                | None ->
                    let i = !n_misses in
                    Hashtbl.add inflight key i;
                    incr n_misses;
                    misses := { m_bundle = b; m_key = key; m_req = r } :: !misses;
                    (r, Miss i))))
      batch
  in
  let miss_arr = Array.of_list (List.rev !misses) in
  (* The parallel part: only genuine cache misses reach the pool, each
     with its own fresh budget (jobs-invariant, like the batch CLI). *)
  let results = Pool.map ~jobs:st.config.jobs ~f:grade_miss miss_arr in
  List.iter
    (fun (r, res) ->
      let line =
        match res with
        | Err msg ->
            Metrics.record_error st.metrics;
            Proto.error_response ?id:r.g_id msg
        | Hit (e, ms) ->
            Metrics.record_grade st.metrics ~outcome:e.outcome_class
              ~hit:true ~ms;
            Metrics.record_diags st.metrics e.diag_counts;
            Proto.grade_response ?id:r.g_id ~cached:true ~fuel:e.fuel_spent
              e.result_json
        | Miss i ->
            let entry, ms, slow = results.(i) in
            Cache.add st.cache miss_arr.(i).m_key entry;
            Metrics.record_grade st.metrics ~outcome:entry.outcome_class
              ~hit:false ~ms;
            Metrics.record_slow st.metrics slow;
            Metrics.record_diags st.metrics entry.diag_counts;
            Proto.grade_response ?id:r.g_id ~cached:false
              ~fuel:entry.fuel_spent entry.result_json
        | Dup i ->
            (* Served from an in-flight computation of this very batch:
               a hit in every observable way, it just wasn't stored yet
               when the lookup ran.  The requester still waited for that
               grading, so its service time — not zero — is what lands
               in the latency reservoir. *)
            let entry, ms, _ = results.(i) in
            Metrics.record_grade st.metrics ~outcome:entry.outcome_class
              ~hit:true ~ms;
            Metrics.record_diags st.metrics entry.diag_counts;
            Proto.grade_response ?id:r.g_id ~cached:true
              ~fuel:entry.fuel_spent entry.result_json
      in
      output_string oc line;
      output_char oc '\n')
    resolved;
  flush oc

let stats_line st ?id ~queue_depth () =
  Proto.stats_response ?id
    (Metrics.to_stats st.metrics ~cache_size:(Cache.size st.cache)
       ~cache_cap:st.config.cache_cap ~queue_depth
       ~queue_cap:st.config.queue_cap)

(* Request fields override the server defaults; an absent field means
   "whatever the daemon was started with". *)
let grade_req_of config ~id ~assignment ~source ~fuel ~deadline_s ~with_tests
    =
  {
    g_id = id;
    g_assignment = assignment;
    g_source = source;
    g_fuel = (match fuel with Some _ -> fuel | None -> config.fuel);
    g_deadline =
      (match deadline_s with Some _ -> deadline_s | None -> config.deadline_s);
    g_with_tests = Option.value ~default:config.with_tests with_tests;
  }

let serve_connection st r oc =
  (* A non-grade line discovered while draining the queue is stashed and
     re-processed after the batch — responses stay in request order. *)
  let pending = ref None in
  let next_line () =
    match !pending with
    | Some l ->
        pending := None;
        Some l
    | None -> read_line r
  in
  let rec drain_into batch =
    if List.length batch >= st.config.queue_cap then List.rev batch
    else
      match poll_line r with
      | None -> List.rev batch
      | Some l when String.trim l = "" -> drain_into batch
      | Some l -> (
          match Proto.request_of_line l with
          | Ok (Proto.Grade g) ->
              Metrics.record_request st.metrics;
              let req =
                grade_req_of st.config ~id:g.id ~assignment:g.assignment
                  ~source:g.source ~fuel:g.fuel ~deadline_s:g.deadline_s
                  ~with_tests:g.with_tests
              in
              drain_into (req :: batch)
          | _ ->
              (* stats / shutdown / error: a barrier — park the raw line *)
              pending := Some l;
              List.rev batch)
  in
  let rec loop () =
    match next_line () with
    | None -> `Eof
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
        Metrics.record_request st.metrics;
        match Proto.request_of_line line with
        | Error (id, msg) ->
            Metrics.record_error st.metrics;
            output_string oc (Proto.error_response ?id msg);
            output_char oc '\n';
            flush oc;
            loop ()
        | Ok (Proto.Stats { id }) ->
            Metrics.record_stats_req st.metrics;
            output_string oc (stats_line st ?id ~queue_depth:0 ());
            output_char oc '\n';
            flush oc;
            loop ()
        | Ok (Proto.Metrics { id = _ }) ->
            (* The one multi-line response: a Prometheus exposition
               block, "# EOF"-terminated (see Proto).  Counted as a
               stats-class request. *)
            Metrics.record_stats_req st.metrics;
            output_string oc
              (Metrics.to_prometheus st.metrics
                 ~cache_size:(Cache.size st.cache)
                 ~cache_cap:st.config.cache_cap ~queue_depth:0
                 ~queue_cap:st.config.queue_cap);
            output_char oc '\n';
            flush oc;
            loop ()
        | Ok (Proto.Slowlog { id }) ->
            Metrics.record_stats_req st.metrics;
            output_string oc
              (Proto.slowlog_response ?id (Metrics.slowlog st.metrics));
            output_char oc '\n';
            flush oc;
            loop ()
        | Ok (Proto.Shutdown { id }) ->
            output_string oc (Proto.shutdown_response ?id ());
            output_char oc '\n';
            flush oc;
            `Shutdown
        | Ok (Proto.Grade g) ->
            let req =
              grade_req_of st.config ~id:g.id ~assignment:g.assignment
                ~source:g.source ~fuel:g.fuel ~deadline_s:g.deadline_s
                ~with_tests:g.with_tests
            in
            let batch = drain_into [ req ] in
            process_batch st oc batch;
            loop ())
  in
  try loop () with Sys_error _ -> `Eof

let serve_fd config fd oc = serve_connection (make_state config) (reader_of_fd fd) oc

let serve_stdio config =
  ignore (serve_fd config Unix.stdin stdout)

let serve_socket config path =
  (match Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | () -> ()
  | exception _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close sock with _ -> ());
    try Sys.remove path with _ -> ()
  in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 16
   with e ->
     cleanup ();
     raise e);
  (* One state for the daemon's lifetime: the cache and the stats span
     connections, which is the whole point of a persistent service. *)
  let st = make_state config in
  let rec accept_loop () =
    let fd, _ = Unix.accept sock in
    let oc = Unix.out_channel_of_descr fd in
    let outcome = serve_connection st (reader_of_fd fd) oc in
    (try flush oc with _ -> ());
    (try Unix.close fd with _ -> ());
    match outcome with `Shutdown -> () | `Eof -> accept_loop ()
  in
  Fun.protect ~finally:cleanup accept_loop
