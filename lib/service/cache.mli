(** Bounded LRU map: the store under the content-addressed result cache.

    Pure data structure — hit/miss accounting lives in {!Metrics}, where
    the server can also credit hits served from in-flight batch results
    that are not yet in the store.  All operations are O(1): a hash
    table over an intrusive doubly-linked recency list.

    Not thread-safe; the server touches it only from the request loop
    (grading work is what runs on the pool, never cache mutation). *)

type 'v t

val create : cap:int -> 'v t
(** [cap <= 0] builds a disabled cache: {!add} is a no-op and {!find}
    always misses — [--cache-cap 0] turns caching off without a second
    code path. *)

val cap : 'v t -> int
val size : 'v t -> int

val find : 'v t -> string -> 'v option
(** Lookup; a hit becomes most-recently-used. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or replace as most-recently-used, then evict
    least-recently-used entries until [size <= cap]. *)

val mem : 'v t -> string -> bool
(** Membership without touching recency. *)

val fold_lru : (string -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
(** Fold in recency order, least-recently-used first, without touching
    recency — replaying the result through {!add} calls in fold order
    reconstructs the same recency list (the durable store's compaction
    writes entries in this order so a reload preserves eviction
    priority). *)
