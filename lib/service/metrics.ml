(** Serving statistics.  See metrics.mli. *)

let reservoir_cap = 4096
let slowlog_cap = 10

(* Fixed histogram bucket upper bounds, milliseconds.  Frozen: the
   exposition's {le="…"} label set is part of the cram-pinned surface,
   and Prometheus forbids a histogram's buckets changing between
   scrapes anyway. *)
let latency_buckets =
  [| 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0 |]

type t = {
  mutable requests : int;
  mutable grades : int;
  mutable stats_reqs : int;
  mutable errors : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable graded : int;
  mutable degraded : int;
  mutable rejected : int;
  mutable shed : int;
  mutable degraded_admission : int;
  mutable queue_max : int;
  diag_counts : (string, int) Hashtbl.t;
      (* static-analysis findings delivered, keyed by pass id; cached
         replays count — the client received those diagnostics too *)
  lat : float array;  (* ring of the last [reservoir_cap] grade latencies *)
  mutable lat_n : int;  (* total latencies ever recorded *)
  lat_hist : int array;  (* per-bucket counts, + one overflow slot *)
  mutable lat_sum : float;  (* total milliseconds ever recorded *)
  mutable slow : Proto.slow_entry list;
      (* the [slowlog_cap] slowest grades, slowest first *)
  mutable slo_good : int;
  mutable slo_bad : int;
  (* ring of the last [reservoir_cap] SLO verdicts with their monotonic
     timestamps, for trailing-window burn rates *)
  slo_ts : int64 array;
  slo_ok : bool array;
  mutable slo_n : int;
  mutable traces_retained : int;
}

let create () =
  {
    requests = 0;
    grades = 0;
    stats_reqs = 0;
    errors = 0;
    cache_hits = 0;
    cache_misses = 0;
    graded = 0;
    degraded = 0;
    rejected = 0;
    shed = 0;
    degraded_admission = 0;
    queue_max = 0;
    diag_counts = Hashtbl.create 8;
    lat = Array.make reservoir_cap 0.0;
    lat_n = 0;
    lat_hist = Array.make (Array.length latency_buckets + 1) 0;
    lat_sum = 0.0;
    slow = [];
    slo_good = 0;
    slo_bad = 0;
    slo_ts = Array.make reservoir_cap 0L;
    slo_ok = Array.make reservoir_cap false;
    slo_n = 0;
    traces_retained = 0;
  }

let record_request t = t.requests <- t.requests + 1
let record_error t = t.errors <- t.errors + 1
let record_stats_req t = t.stats_reqs <- t.stats_reqs + 1
let record_shed t = t.shed <- t.shed + 1

let record_degraded_admission t =
  t.degraded_admission <- t.degraded_admission + 1

let shed t = t.shed
let degraded_admission t = t.degraded_admission

let record_slo t ~ok =
  if ok then t.slo_good <- t.slo_good + 1 else t.slo_bad <- t.slo_bad + 1;
  let i = t.slo_n mod reservoir_cap in
  t.slo_ts.(i) <- Jfeed_trace.Trace.now_ns ();
  t.slo_ok.(i) <- ok;
  t.slo_n <- t.slo_n + 1

let slo_good t = t.slo_good
let slo_bad t = t.slo_bad

(* Burn rate over a trailing window: the fraction of requests in the
   window that blew the objective, divided by the error budget
   [1 - target].  1.0 = spending the budget exactly at the sustainable
   rate; no traffic in the window burns nothing. *)
let burn_rate t ~target ~window_s =
  let n = min t.slo_n reservoir_cap in
  if n = 0 || target >= 1.0 then 0.0
  else begin
    let cutoff =
      Int64.sub (Jfeed_trace.Trace.now_ns ())
        (Int64.of_float (window_s *. 1e9))
    in
    let total = ref 0 and bad = ref 0 in
    for i = 0 to n - 1 do
      if t.slo_ts.(i) >= cutoff then begin
        incr total;
        if not t.slo_ok.(i) then incr bad
      end
    done;
    if !total = 0 then 0.0
    else float_of_int !bad /. float_of_int !total /. (1.0 -. target)
  end

let record_trace_retained t = t.traces_retained <- t.traces_retained + 1
let traces_retained t = t.traces_retained

let record_grade t ~outcome ~hit ~ms =
  t.grades <- t.grades + 1;
  if hit then t.cache_hits <- t.cache_hits + 1
  else t.cache_misses <- t.cache_misses + 1;
  (match outcome with
  | "graded" -> t.graded <- t.graded + 1
  | "degraded" -> t.degraded <- t.degraded + 1
  | _ -> t.rejected <- t.rejected + 1);
  t.lat.(t.lat_n mod reservoir_cap) <- ms;
  t.lat_n <- t.lat_n + 1;
  t.lat_sum <- t.lat_sum +. ms;
  (* non-cumulative per-bucket counts; the exposition accumulates *)
  let rec slot i =
    if i >= Array.length latency_buckets then i
    else if ms <= latency_buckets.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  t.lat_hist.(i) <- t.lat_hist.(i) + 1

let record_slow t (e : Proto.slow_entry) =
  let sorted =
    List.stable_sort
      (fun (a : Proto.slow_entry) b -> compare b.s_ms a.s_ms)
      (e :: t.slow)
  in
  t.slow <- List.filteri (fun i _ -> i < slowlog_cap) sorted

let slowlog t = t.slow

let record_diags t counts =
  List.iter
    (fun (pass, n) ->
      if n > 0 then
        let prev =
          match Hashtbl.find_opt t.diag_counts pass with
          | Some p -> p
          | None -> 0
        in
        Hashtbl.replace t.diag_counts pass (prev + n))
    counts

let observe_queue_depth t d = if d > t.queue_max then t.queue_max <- d

let hits t = t.cache_hits
let misses t = t.cache_misses
let queue_max t = t.queue_max

let percentile t p =
  let n = min t.lat_n reservoir_cap in
  if n = 0 then 0.0
  else begin
    let a = Array.sub t.lat 0 n in
    Array.sort compare a;
    (* Nearest-rank: the smallest sample with at least p of the mass at
       or below it. *)
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  end

let to_stats ?ext ?slo_target t ~cache_size ~cache_cap ~queue_depth
    ~queue_cap =
  {
    Proto.requests = t.requests;
    grades = t.grades;
    stats_reqs = t.stats_reqs;
    errors = t.errors;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    cache_size;
    cache_cap;
    graded = t.graded;
    degraded = t.degraded;
    rejected = t.rejected;
    queue_depth;
    queue_max = t.queue_max;
    queue_cap;
    (* the five pass ids, fixed order, all present — byte-stable *)
    diag_counts =
      List.map
        (fun pass ->
          ( pass,
            match Hashtbl.find_opt t.diag_counts pass with
            | Some n -> n
            | None -> 0 ))
        Jfeed_analysis.Passes.pass_ids;
    (* same discipline for the abstract-interpretation passes *)
    absint_counts =
      List.map
        (fun pass ->
          ( pass,
            match Hashtbl.find_opt t.diag_counts pass with
            | Some n -> n
            | None -> 0 ))
        Jfeed_absint.Passes.pass_ids;
    p50_ms = percentile t 0.50;
    p95_ms = percentile t 0.95;
    ext;
    slo =
      (match slo_target with
      | None -> None
      | Some target ->
          Some
            {
              Proto.slo_good = t.slo_good;
              slo_bad = t.slo_bad;
              burn_1m = burn_rate t ~target ~window_s:60.0;
              burn_5m = burn_rate t ~target ~window_s:300.0;
              burn_1h = burn_rate t ~target ~window_s:3600.0;
            });
  }

type extended = {
  x_shard_counters : (int * int) array;
  x_conns : int;
  x_store : (int * int * int * int) option;
}

(* Prometheus text exposition.  Line set and order are fixed; only the
   sample values vary, so a cram test can pin every [# TYPE] line and
   every bucket bound.  Ends with the OpenMetrics [# EOF] marker —
   that's also how the JSONL client finds the end of this multi-line
   response.

   The serving-tier families ([?extended]) are PREPENDED: the cram
   golden pins the block from [# HELP jfeed_requests_total] to [# EOF],
   so anything added before that anchor extends the exposition without
   touching the pinned bytes. *)
let to_prometheus ?extended ?slo ?events t ~cache_size ~cache_cap:_
    ~queue_depth ~queue_cap:_ =
  let b = Buffer.create 2048 in
  let counter name help value =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n# TYPE %s counter\n%s %d\n" name help
         name name value)
  in
  let gauge name help value =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n%s %d\n" name help
         name name value)
  in
  (* Build identity first: version and KB digest from the same sources
     as [jfeed version], value always 1 (the Prometheus build_info
     idiom — the interesting bits ride in the labels). *)
  Buffer.add_string b
    (Printf.sprintf
       "# HELP jfeed_build_info Build and knowledge-base identity.\n\
        # TYPE jfeed_build_info gauge\n\
        jfeed_build_info{version=%S,kb_digest=%S} 1\n"
       Build.version
       (Jfeed_kb.Bundles.revision ()));
  counter "jfeed_traces_retained_total"
    "Requests whose full span tree was retained by tail-based sampling."
    t.traces_retained;
  (match slo with
  | None -> ()
  | Some (slo_ms, target) ->
      let gauge_f name help value =
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n%s %.6g\n" name
             help name name value)
      in
      gauge_f "jfeed_slo_latency_ms" "The grade-latency objective." slo_ms;
      gauge_f "jfeed_slo_target"
        "The availability objective (fraction of requests within the \
         latency objective)."
        target;
      counter "jfeed_slo_good_total"
        "Grade responses within the latency objective." t.slo_good;
      counter "jfeed_slo_bad_total"
        "Grade responses over the latency objective, sheds included."
        t.slo_bad;
      Buffer.add_string b
        "# HELP jfeed_slo_burn_rate Error-budget burn rate over a \
         trailing window (1.0 = sustainable).\n\
         # TYPE jfeed_slo_burn_rate gauge\n";
      List.iter
        (fun (w, secs) ->
          Buffer.add_string b
            (Printf.sprintf "jfeed_slo_burn_rate{window=%S} %.6g\n" w
               (burn_rate t ~target ~window_s:secs)))
        [ ("1m", 60.0); ("5m", 300.0); ("1h", 3600.0) ]);
  (match events with
  | None -> ()
  | Some (emitted, dropped, rotations) ->
      counter "jfeed_events_emitted_total"
        "Lifecycle events accepted into the event-log ring." emitted;
      counter "jfeed_events_dropped_total"
        "Lifecycle events discarded because the ring was full." dropped;
      counter "jfeed_events_rotations_total" "Event-log file rotations."
        rotations);
  (match extended with
  | None -> ()
  | Some x ->
      counter "jfeed_shed_total"
        "Grade requests refused by admission control." t.shed;
      counter "jfeed_admission_degraded_total"
        "Grade requests admitted past the watermark on the degraded \
         budget."
        t.degraded_admission;
      gauge "jfeed_connections_active" "Open client connections."
        x.x_conns;
      Buffer.add_string b
        "# HELP jfeed_cache_shard_hits_total Result-cache hits, per \
         shard.\n\
         # TYPE jfeed_cache_shard_hits_total counter\n";
      Array.iteri
        (fun i (h, _) ->
          Buffer.add_string b
            (Printf.sprintf "jfeed_cache_shard_hits_total{shard=\"%d\"} %d\n"
               i h))
        x.x_shard_counters;
      Buffer.add_string b
        "# HELP jfeed_cache_shard_misses_total Result-cache misses, per \
         shard.\n\
         # TYPE jfeed_cache_shard_misses_total counter\n";
      Array.iteri
        (fun i (_, m) ->
          Buffer.add_string b
            (Printf.sprintf
               "jfeed_cache_shard_misses_total{shard=\"%d\"} %d\n" i m))
        x.x_shard_counters;
      (match x.x_store with
      | None -> ()
      | Some (recovered, dropped, appended, compactions) ->
          gauge "jfeed_store_recovered_records"
            "Durable-store records replayed at boot." recovered;
          gauge "jfeed_store_dropped_bytes"
            "Torn-tail bytes truncated at boot." dropped;
          counter "jfeed_store_appended_total"
            "Records appended to the durable store this run." appended;
          counter "jfeed_store_compactions_total"
            "Durable-store compactions this run." compactions));
  (* Match-plan and batch-dedup counters: process-wide atomics, not
     per-server state — they move with every grading call in this
     process.  Placed before the [jfeed_requests_total] anchor like the
     extended families, so the cram-pinned block is untouched. *)
  counter "jfeed_plan_searches_total"
    "Plan-driven matcher searches started (prefilter rejections \
     included)."
    (Jfeed_core.Plan.searches ());
  counter "jfeed_plan_prefilter_rejects_total"
    "Matcher searches answered by the fingerprint prefilter without \
     backtracking."
    (Jfeed_core.Plan.prefilter_rejects ());
  counter "jfeed_plan_steps_total"
    "Candidate-extension steps taken by plan-driven searches."
    (Jfeed_core.Plan.steps_spent ());
  counter "jfeed_dedup_classes_total"
    "Batch submission equivalence classes graded."
    (Jfeed_robust.Pipeline.dedup_classes ());
  counter "jfeed_dedup_replayed_total"
    "Batch submissions answered by replaying their class \
     representative."
    (Jfeed_robust.Pipeline.dedup_replayed ());
  (* Repair-search counters: process-wide like the plan/dedup families,
     moved by every [Repair.search] in this process.  Same prepend zone,
     same reason. *)
  counter "jfeed_repair_candidates_total"
    "Candidate edits screened by repair searches."
    (Jfeed_repair.Repair.candidates_total ());
  counter "jfeed_repair_found_total"
    "Repair searches that found a passing fix."
    (Jfeed_repair.Repair.found_total ());
  counter "jfeed_repair_fuel_total"
    "Interpreter fuel spent screening repair candidates."
    (Jfeed_repair.Repair.fuel_total ());
  (* Abstract-interpretation findings, by pass — prepend zone for the
     same reason as the families above. *)
  Buffer.add_string b
    "# HELP jfeed_absint_diagnostics_total Abstract-interpretation \
     findings delivered, by pass.\n\
     # TYPE jfeed_absint_diagnostics_total counter\n";
  List.iter
    (fun pass ->
      let n =
        match Hashtbl.find_opt t.diag_counts pass with
        | Some n -> n
        | None -> 0
      in
      Buffer.add_string b
        (Printf.sprintf "jfeed_absint_diagnostics_total{pass=%S} %d\n" pass
           n))
    Jfeed_absint.Passes.pass_ids;
  counter "jfeed_requests_total" "Request lines handled, any op." t.requests;
  counter "jfeed_grades_total" "Grade requests answered (cached or not)."
    t.grades;
  counter "jfeed_errors_total" "Error responses emitted." t.errors;
  Buffer.add_string b
    "# HELP jfeed_outcomes_total Grade responses by outcome class.\n\
     # TYPE jfeed_outcomes_total counter\n";
  List.iter
    (fun (cls, n) ->
      Buffer.add_string b
        (Printf.sprintf "jfeed_outcomes_total{class=%S} %d\n" cls n))
    [ ("graded", t.graded); ("degraded", t.degraded);
      ("rejected", t.rejected) ];
  counter "jfeed_cache_hits_total"
    "Result-cache hits, in-flight duplicates included." t.cache_hits;
  counter "jfeed_cache_misses_total" "Result-cache misses." t.cache_misses;
  gauge "jfeed_cache_entries" "Result-cache occupancy." cache_size;
  gauge "jfeed_queue_depth" "Grade requests queued when scraped."
    queue_depth;
  gauge "jfeed_queue_depth_max" "Deepest grade queue observed."
    t.queue_max;
  Buffer.add_string b
    "# HELP jfeed_diagnostics_total Static-analysis findings delivered, by \
     pass.\n\
     # TYPE jfeed_diagnostics_total counter\n";
  List.iter
    (fun pass ->
      let n =
        match Hashtbl.find_opt t.diag_counts pass with
        | Some n -> n
        | None -> 0
      in
      Buffer.add_string b
        (Printf.sprintf "jfeed_diagnostics_total{pass=%S} %d\n" pass n))
    Jfeed_analysis.Passes.pass_ids;
  Buffer.add_string b
    "# HELP jfeed_grade_latency_ms Grade service time, milliseconds.\n\
     # TYPE jfeed_grade_latency_ms histogram\n";
  let cum = ref 0 in
  Array.iteri
    (fun i bound ->
      cum := !cum + t.lat_hist.(i);
      Buffer.add_string b
        (Printf.sprintf "jfeed_grade_latency_ms_bucket{le=%S} %d\n"
           (Printf.sprintf "%g" bound)
           !cum))
    latency_buckets;
  Buffer.add_string b
    (Printf.sprintf "jfeed_grade_latency_ms_bucket{le=\"+Inf\"} %d\n"
       t.lat_n);
  Buffer.add_string b
    (Printf.sprintf "jfeed_grade_latency_ms_sum %.6g\n" t.lat_sum);
  Buffer.add_string b
    (Printf.sprintf "jfeed_grade_latency_ms_count %d\n" t.lat_n);
  Buffer.add_string b "# EOF";
  Buffer.contents b
