(** Serving statistics.  See metrics.mli. *)

let reservoir_cap = 4096

type t = {
  mutable requests : int;
  mutable grades : int;
  mutable stats_reqs : int;
  mutable errors : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable graded : int;
  mutable degraded : int;
  mutable rejected : int;
  mutable queue_max : int;
  diag_counts : (string, int) Hashtbl.t;
      (* static-analysis findings delivered, keyed by pass id; cached
         replays count — the client received those diagnostics too *)
  lat : float array;  (* ring of the last [reservoir_cap] grade latencies *)
  mutable lat_n : int;  (* total latencies ever recorded *)
}

let create () =
  {
    requests = 0;
    grades = 0;
    stats_reqs = 0;
    errors = 0;
    cache_hits = 0;
    cache_misses = 0;
    graded = 0;
    degraded = 0;
    rejected = 0;
    queue_max = 0;
    diag_counts = Hashtbl.create 8;
    lat = Array.make reservoir_cap 0.0;
    lat_n = 0;
  }

let record_request t = t.requests <- t.requests + 1
let record_error t = t.errors <- t.errors + 1
let record_stats_req t = t.stats_reqs <- t.stats_reqs + 1

let record_grade t ~outcome ~hit ~ms =
  t.grades <- t.grades + 1;
  if hit then t.cache_hits <- t.cache_hits + 1
  else t.cache_misses <- t.cache_misses + 1;
  (match outcome with
  | "graded" -> t.graded <- t.graded + 1
  | "degraded" -> t.degraded <- t.degraded + 1
  | _ -> t.rejected <- t.rejected + 1);
  t.lat.(t.lat_n mod reservoir_cap) <- ms;
  t.lat_n <- t.lat_n + 1

let record_diags t counts =
  List.iter
    (fun (pass, n) ->
      if n > 0 then
        let prev =
          match Hashtbl.find_opt t.diag_counts pass with
          | Some p -> p
          | None -> 0
        in
        Hashtbl.replace t.diag_counts pass (prev + n))
    counts

let observe_queue_depth t d = if d > t.queue_max then t.queue_max <- d

let hits t = t.cache_hits
let misses t = t.cache_misses
let queue_max t = t.queue_max

let percentile t p =
  let n = min t.lat_n reservoir_cap in
  if n = 0 then 0.0
  else begin
    let a = Array.sub t.lat 0 n in
    Array.sort compare a;
    (* Nearest-rank: the smallest sample with at least p of the mass at
       or below it. *)
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  end

let to_stats t ~cache_size ~cache_cap ~queue_depth ~queue_cap =
  {
    Proto.requests = t.requests;
    grades = t.grades;
    stats_reqs = t.stats_reqs;
    errors = t.errors;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    cache_size;
    cache_cap;
    graded = t.graded;
    degraded = t.degraded;
    rejected = t.rejected;
    queue_depth;
    queue_max = t.queue_max;
    queue_cap;
    (* the five pass ids, fixed order, all present — byte-stable *)
    diag_counts =
      List.map
        (fun pass ->
          ( pass,
            match Hashtbl.find_opt t.diag_counts pass with
            | Some n -> n
            | None -> 0 ))
        Jfeed_analysis.Passes.pass_ids;
    p50_ms = percentile t 0.50;
    p95_ms = percentile t 0.95;
  }
