(** Content addressing for the result cache: submission → cache key.

    The headline mechanism of the serving tier.  MOOC submission sets
    are dominated by byte-identical and near-identical attempts, so the
    key must collapse exactly the variation that cannot change the
    grade's {e structure}: consistent variable renamings, whitespace,
    comments.  The fingerprint is the digest of the {e canonically
    α-renamed, canonically pretty-printed} AST
    ({!Jfeed_java.Normalize.alpha_rename} then
    {!Jfeed_java.Pretty.program}); when the submission does not parse,
    it falls back to a digest of the raw bytes — unparseable inputs are
    [Rejected] with a parse diagnostic that quotes line/column, so only
    the exact same byte string may share that outcome.

    A full cache key scopes the fingerprint by everything else that can
    change the outcome: the assignment id, the knowledge-base revision
    ({!Jfeed_kb.Bundles.revision} — a KB edit invalidates every entry),
    and the effective budget/test configuration of the request. *)

type fingerprint = {
  ast : bool;  (** true: α-normalized AST digest; false: raw-bytes digest *)
  digest : string;  (** hex *)
}

val fingerprint : string -> fingerprint

val cache_key :
  assignment:string ->
  fuel:int option ->
  deadline_s:float option ->
  with_tests:bool ->
  string ->
  string * fingerprint
(** [cache_key ~assignment ~fuel ~deadline_s ~with_tests source] — the
    composed key, deterministic in its inputs (and in the compiled-in
    KB via the revision component). *)
