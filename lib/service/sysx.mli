(** EINTR-safe system calls for the serving tier.

    Every blocking syscall the daemon issues can be interrupted by a
    signal delivery ([EINTR]) — under the graceful-shutdown handlers
    this is routine, not exceptional — so the server never calls
    [Unix.read]/[accept]/[select]/[write] directly: these wrappers
    retry the call until it completes or fails for a real reason.

    [EAGAIN]/[EWOULDBLOCK] (a non-blocking descriptor with nothing to
    do) is {e not} swallowed: the event loop needs to see it, and the
    wrappers that can meet it return it as a variant instead of an
    exception so no call site can forget to handle it. *)

val read : Unix.file_descr -> Bytes.t -> int -> int -> [ `Read of int | `Again ]
(** [read fd buf pos len] — [`Read 0] is end of input; [`Again] only on
    a non-blocking descriptor with no data ready. *)

val write : Unix.file_descr -> Bytes.t -> int -> int -> [ `Wrote of int | `Again ]
(** Partial writes are normal; the caller advances by the returned
    count. *)

val accept : Unix.file_descr -> [ `Conn of Unix.file_descr * Unix.sockaddr | `Again ]
(** One pending connection, or [`Again] on a non-blocking listener with
    an empty backlog (also returned when the kernel reports the
    connection aborted between readiness and accept). *)

val select :
  Unix.file_descr list ->
  Unix.file_descr list ->
  Unix.file_descr list ->
  float ->
  Unix.file_descr list * Unix.file_descr list * Unix.file_descr list
(** Like [Unix.select], but an [EINTR] (e.g. the shutdown signal
    arriving mid-wait) returns empty ready sets instead of raising, so
    the event loop falls through to its stop-flag check. *)

val sleep : float -> unit
(** [sleepf] that completes the full duration across interruptions. *)
