(** Bounded LRU map.  See cache.mli. *)

(* Intrusive doubly-linked recency list over hash-table nodes; [head] is
   most recent, [tail] least.  Option-threaded links keep the code free
   of sentinel tricks at the cost of a few allocations per touch —
   irrelevant next to a grading request. *)
type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards head *)
  mutable next : 'v node option;  (* towards tail *)
}

type 'v t = {
  tbl : (string, 'v node) Hashtbl.t;
  capacity : int;
  mutable head : 'v node option;
  mutable tail : 'v node option;
}

let create ~cap =
  { tbl = Hashtbl.create (max 16 (min cap 4096)); capacity = cap;
    head = None; tail = None }

let cap t = t.capacity
let size t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let mem t k = Hashtbl.mem t.tbl k

let evict_over_cap t =
  while Hashtbl.length t.tbl > t.capacity do
    match t.tail with
    | None -> assert false (* size > cap >= 0 implies a tail entry *)
    | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.key
  done

let fold_lru f t init =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f n.key n.value acc) n.prev
  in
  go init t.tail

let add t k v =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.tbl k with
    | Some n ->
        n.value <- v;
        unlink t n;
        push_front t n
    | None ->
        let n = { key = k; value = v; prev = None; next = None } in
        Hashtbl.add t.tbl k n;
        push_front t n);
    evict_over_cap t
  end
