(** Durable result store: an append-only, checksummed record log.

    The disk half of the content-addressed result cache.  Each
    [append] writes one self-delimiting record

    {v
    | length : 4 bytes BE | md5(payload) : 16 bytes | payload |
    payload := | key length : 4 bytes BE | key | value |
    v}

    flushed to the kernel with a single [write(2)], so an entry
    survives a [kill -9] the moment {!append} returns (surviving power
    loss additionally needs {!sync}, which the daemon issues on
    graceful shutdown and after compaction).

    {b Recovery.}  {!open_dir} replays the log from the start and stops
    at the first record that does not check out — a short header, a
    length field beyond the file, or a checksum mismatch.  Everything
    before that point is replayed through the callback; everything from
    it on (the {e torn tail} a crash mid-append leaves behind) is
    discarded and the file is truncated to the valid prefix, so the
    next append never interleaves with garbage.  A boot can therefore
    lose at most the single record being written when the process
    died — never the prefix.

    {b Compaction.}  Deleting or re-adding a key only appends, so the
    log accumulates dead records.  {!compact} rewrites the supplied
    live entries into a temporary file in the same directory, fsyncs
    it, and [rename(2)]s it over the log — atomic on POSIX, so a crash
    during compaction leaves either the old log or the complete new
    one, never a hybrid.

    Single-writer: the log is protected by an advisory [lockf] lock;
    opening a directory another live daemon owns raises [Failure]. *)

type t

type recovery = {
  recovered : int;  (** valid records replayed at boot *)
  dropped_bytes : int;  (** torn-tail bytes truncated at boot *)
}

val file_name : string
(** ["cache.jfl"], the log's name inside the cache directory. *)

val open_dir : string -> f:(key:string -> value:string -> unit) -> t * recovery
(** [open_dir dir ~f] creates [dir] if missing, locks and replays
    [dir/cache.jfl] (calling [f] once per valid record, in append
    order), truncates any torn tail, and leaves the log open for
    {!append}.  Raises [Failure] if another process holds the lock. *)

val append : t -> key:string -> value:string -> unit
(** One checksummed record, written with a single [write(2)]. *)

val appended : t -> int
(** Records appended since {!open_dir} (compaction rewrites do not
    count). *)

val compactions : t -> int
val recovery : t -> recovery
(** The boot-time replay outcome, for the metrics surface. *)

val sync : t -> unit
(** [fsync(2)] the log. *)

val compact : t -> (string * string) list -> unit
(** Atomically replace the log with exactly the given entries (written
    in list order, so the reload order — and hence reload recency — is
    the caller's). *)

val close : t -> unit
(** [sync] then close; the lock dies with the descriptor. *)
