(** Sharded result cache: N independent {!Cache} LRUs behind per-shard
    mutexes.

    Keys route to a shard by a deterministic hash of the key bytes, so
    which shard holds an entry is a pure function of the key — the
    cache key already encodes everything that determines the grade
    (α-rename digest, KB revision, budgets), which makes sharding
    {e semantics-free}: a lookup returns the same entry whatever the
    shard count, and the qcheck suite holds the structure to that.

    The global capacity is divided across shards the way
    {!Jfeed_budget.Budget.split} divides fuel — the first [cap mod n]
    shards get the extra entry, nothing is lost to integer division —
    so eviction pressure (though not the exact victim sequence) is
    preserved at any shard count.

    Locking: one mutex per shard, held only for the O(1) LRU
    operation — never while grading.  The event loop mutates the cache
    from one thread today; the mutexes make the structure safe for the
    multi-domain accept loops the roadmap points at next, at a cost
    that is noise next to a grading request. *)

type 'v t

val create : shards:int -> cap:int -> 'v t
(** [shards] is clamped to at least 1; [cap <= 0] builds a disabled
    cache, like {!Cache.create}. *)

val shard_count : 'v t -> int
val cap : 'v t -> int
val size : 'v t -> int
(** Total entries across shards. *)

val shard_of_key : 'v t -> string -> int
(** The shard a key routes to: deterministic in the key bytes. *)

val find : 'v t -> string -> 'v option
(** Lookup under the key's shard lock; a hit becomes most recently used
    within its shard and is counted in that shard's hit column. *)

val add : 'v t -> string -> 'v -> unit
(** Insert/replace under the key's shard lock, evicting that shard's
    LRU tail past its capacity share.  Pure memory operation —
    durability is layered on by the caller ({!Store.append} on fresh
    misses), so boot-time replay can reuse [add] without re-appending. *)

val counters : 'v t -> (int * int) array
(** Per-shard (hits, misses) over {!find} calls, index = shard id. *)

val fold_lru : (string -> 'v -> 'acc -> 'acc) -> 'v t -> 'acc -> 'acc
(** Fold every live entry, shard by shard, each shard least-recently
    used first — the order compaction writes, so a reload rebuilds
    comparable recency. *)
