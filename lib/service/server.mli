(** The persistent grading daemon ([jfeed serve]).

    A single-threaded request loop over newline-delimited JSON
    ({!Proto}), with the expensive part — grading — fanned out to a
    {!Jfeed_parallel.Pool} of domains per batch:

    + read one request line (blocking);
    + if it is a [grade], drain further {e immediately available} grade
      lines into a bounded in-memory queue (at most [queue_cap]; lines
      beyond that stay in the kernel pipe buffer — backpressure without
      an unbounded heap);
    + resolve each queued request against the content-addressed result
      cache ({!Normalize} keys into {!Cache}); duplicates {e within} the
      batch collapse onto one computation too;
    + grade the remaining misses on the pool, one fresh per-request
      budget each ({!Jfeed_robust.Pipeline.grade_submission});
    + emit one response line per request, in request order.

    [stats] and [shutdown] requests are barriers: they are answered
    after every earlier grade response.  A malformed line costs one
    [error] response, never the daemon.  The KB is compiled in and every
    per-assignment structure is a static value, so a fresh daemon
    serves its first request without a warm-up phase. *)

type config = {
  cache_cap : int;  (** result-cache entries; [0] disables caching *)
  queue_cap : int;  (** max grade requests held in memory *)
  jobs : int;  (** pool width for a batch of cache misses *)
  fuel : int option;  (** default per-request budget; request may override *)
  deadline_s : float option;
  with_tests : bool;  (** default; request may override *)
}

val default_config : config
(** cache 10000, queue 64, jobs 1, no budget, tests on. *)

val serve_fd :
  config -> Unix.file_descr -> out_channel -> [ `Eof | `Shutdown ]
(** Serve one connection with fresh state: read requests from the
    descriptor, write responses to the channel (flushed after every
    batch).  Returns on end of input or on a [shutdown] request. *)

val serve_stdio : config -> unit
(** [serve_fd] over stdin/stdout — the [jfeed serve] default, drivable
    from cram tests and shell pipelines. *)

val serve_socket : config -> string -> unit
(** Listen on a Unix-domain socket at the given path (unlinked first if
    stale, removed on exit) and serve connections sequentially,
    {e sharing} cache and metrics across them — connection n+1 hits the
    results connection n computed.  A [shutdown] request stops the whole
    daemon; a client hangup only ends its connection. *)
