(** The persistent grading daemon ([jfeed serve]).

    Two serving modes share one request-handling core:

    {b Stdio / single descriptor} ({!serve_fd}, {!serve_stdio}) — the
    historical blocking loop, drivable from cram tests and shell
    pipelines:

    + read one request line (blocking);
    + if it is a [grade], drain further {e immediately available} grade
      lines into a bounded in-memory queue (at most [queue_cap]; lines
      beyond that stay in the kernel pipe buffer — backpressure without
      an unbounded heap);
    + resolve each queued request against the content-addressed result
      cache ({!Normalize} keys into the sharded {!Shards} LRU);
      duplicates {e within} the batch collapse onto one computation too;
    + grade the remaining misses on the pool, one fresh per-request
      budget each ({!Jfeed_robust.Pipeline.grade_submission});
    + emit one response line per request, in request order.

    [stats] and [shutdown] requests are barriers: they are answered
    after every earlier grade response.  A malformed line costs one
    [error] response, never the daemon.

    {b Socket daemon} ({!serve_socket}) — a select(2) event loop
    serving many connections at once.  Per-connection response order is
    kept by slot FIFOs while grading rounds batch requests across
    connections; a slow reader only stalls itself (its output backlog
    trips flow control and its input waits in the kernel buffer).
    Admission control sheds load past [queue_cap] with an explicit
    [rejected:"overloaded"] line, optionally admitting on a degraded
    fuel budget between [watermark] and the cap; SIGINT/SIGTERM drain
    in-flight work, flush the durable store and unlink the socket.

    With [cache_dir] set, the result cache is durable: every fresh
    grade is appended to a checksummed log ({!Store}) the moment it is
    computed, and a restart — even after [kill -9] — replays the log
    into a warm cache whose hits answer [cached:true], byte-identical.

    The KB is compiled in and every per-assignment structure is a
    static value, so a fresh daemon serves its first request without a
    warm-up phase. *)

type config = {
  cache_cap : int;  (** result-cache entries; [0] disables caching *)
  queue_cap : int;  (** max grade requests held in memory *)
  jobs : int;  (** pool width for a batch of cache misses *)
  fuel : int option;  (** default per-request budget; request may override *)
  deadline_s : float option;
  with_tests : bool;  (** default; request may override *)
  shards : int;  (** result-cache shard count ({!Shards}) *)
  cache_dir : string option;
      (** durable-store directory; [None] serves memory-only *)
  backlog : int;  (** [listen(2)] backlog for {!serve_socket} *)
  watermark : int option;
      (** queue depth from which grade requests are admitted on the
          degraded budget; needs [shed_fuel] to take effect *)
  shed_fuel : int option;
      (** the degraded-admission fuel clamp (requests keep the smaller
          of their own budget and this) *)
  event_log : string option;
      (** directory for the durable lifecycle event log
          ({!Jfeed_trace.Events}); [None] logs nothing *)
  event_ring : int option;
      (** event-log in-memory ring capacity (lines); [None] = default *)
  event_rotate : int option;
      (** event-log rotation size in bytes; [None] = default *)
  trace_sample : int option;
      (** retain the full span tree of every [N]th cache miss, on top
          of the slow/degraded/rejected retention rules *)
  slow_ms : float option;
      (** trace-retention latency threshold; defaults to [slo_ms] *)
  slo_ms : float option;
      (** grade-latency objective; turns on SLO counters, burn-rate
          gauges and the stats ["slo"] object *)
  slo_target : float;
      (** availability objective — the fraction of requests meant to
          finish within [slo_ms]; burn rates divide by [1 - slo_target] *)
}
(** Telemetry ([event_log] / [trace_sample] / [slow_ms] / [slo_ms]) is
    strictly additive: with all four unset, no response byte differs
    from the pre-telemetry daemon — correlation ids are then echoed
    only for requests that brought their own ["rid"]. *)

val default_config : config
(** cache 10000 over 8 shards, queue 64, jobs 1, no budget, tests on,
    memory-only, backlog 16, no degraded-admission tier, telemetry off
    (slo_target 0.999 once [slo_ms] is set). *)

(** {2 Cache entry codec}

    What the cache stores per key — everything needed to replay a
    response byte-for-byte (minus the envelope's [id]/[cached]
    fields) — and its durable-store value encoding.  Exposed so the
    test suite can check the codec round-trips. *)

type entry = {
  outcome_class : string;  (** taxonomy class of the stored outcome *)
  fuel_spent : int option;  (** response [fuel] field, when budgeted *)
  diag_counts : (string * int) list;  (** per-pass analysis findings *)
  result_json : string;  (** serialized Outcome, spliced verbatim *)
}

val encode_entry : entry -> string
(** Newline-framed header (class, fuel or [-], diagnostic count, one
    [pass n] line each) followed by the raw result JSON. *)

val decode_entry : string -> entry option
(** Total inverse of {!encode_entry}; [None] on any malformed input
    (boot-time replay skips such records rather than failing). *)

(** {2 Serving} *)

val serve_fd :
  config -> Unix.file_descr -> out_channel -> [ `Eof | `Shutdown ]
(** Serve one connection with fresh state: read requests from the
    descriptor, write responses to the channel (flushed after every
    batch).  Returns on end of input or on a [shutdown] request.  With
    [cache_dir] set, the durable store is replayed on entry and
    compacted + closed on return. *)

val serve_stdio : config -> unit
(** [serve_fd] over stdin/stdout — the [jfeed serve] default, drivable
    from cram tests and shell pipelines. *)

val serve_socket : config -> string -> unit
(** Listen on a Unix-domain socket at the given path (unlinked first if
    stale, removed on exit) and serve connections {e concurrently}
    through the event loop, sharing cache and metrics across them —
    connection n+1 hits the results connection n computed.  A
    [shutdown] request or SIGINT/SIGTERM stops the daemon gracefully:
    admitted work finishes, output drains, the durable store is
    compacted and fsynced.  A client hangup only ends its connection. *)
