(** The grading service's wire protocol: newline-delimited JSON.

    One request per line, one response line per request, in request
    order.  The grammar (DESIGN.md §9):

    {v
    request  := grade | stats | metrics | slowlog | shutdown
    grade    := { "op":"grade", "assignment":string, "source":string,
                  "id"?:string, "rid"?:string, "fuel"?:int,
                  "deadline_s"?:number, "with_tests"?:bool }
    stats    := { "op":"stats", "id"?:string }
    metrics  := { "op":"metrics", "id"?:string }
    slowlog  := { "op":"slowlog", "id"?:string }
    shutdown := { "op":"shutdown", "id"?:string }
    v}

    Unknown object fields are ignored (forward compatibility); a missing
    or ill-typed required field, malformed JSON, or an unknown ["op"]
    yields one [error] response line and the daemon keeps serving.

    [metrics] is the protocol's one non-JSON response: the reply is a
    Prometheus text-exposition block — several lines, terminated by a
    [# EOF] line (OpenMetrics convention) so a JSONL client knows where
    the block ends.  All other responses stay one JSON line each.

    The module is also the service's only JSON {e reader} — the rest of
    the repository only prints JSON — so the hand-rolled parser lives
    here, total over arbitrary bytes. *)

(** Parsed JSON value.  Numbers are kept as [float] (the grammar's only
    number type); [Num] carrying an integral value is accepted wherever
    an integer field is required. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Total recursive-descent parse of one JSON document; trailing
    non-whitespace is an error.  Error strings name the byte offset. *)

val member : string -> json -> json option
(** Object field lookup; [None] on non-objects too. *)

(** One request, as read off the wire. *)
type request =
  | Grade of {
      id : string option;  (** echoed back verbatim in the response *)
      rid : string option;
          (** client-supplied correlation id; the server mints one at
              admission when absent and telemetry is on *)
      assignment : string;  (** bundle id, see [jfeed assignments] *)
      source : string;  (** full Java submission text *)
      fuel : int option;  (** overrides the server's default budget *)
      deadline_s : float option;
      with_tests : bool option;  (** overrides the server default *)
    }
  | Stats of { id : string option }
  | Metrics of { id : string option }  (** Prometheus exposition *)
  | Slowlog of { id : string option }  (** N slowest grade requests *)
  | Shutdown of { id : string option }

val request_of_line :
  string -> (request, string option * string) result
(** Parse one request line.  [Error (id, message)] recovers the request
    id when the line was an object with a string ["id"], so the error
    response can still be correlated. *)

(** {2 Response lines}

    Builders return one complete JSON line (no trailing newline).
    Stable field order: [id] (when the request carried one), [op], then
    per-op payload. *)

val grade_response :
  ?id:string -> ?rid:string -> cached:bool -> fuel:int option -> string ->
  string
(** The final argument is the serialized {!Jfeed_robust.Outcome} object
    (spliced verbatim — cache hits replay the stored bytes, making the
    "equal key ⇒ byte-identical payload" contract trivial to audit).
    [fuel] reports fuel spent and appears only when the request ran
    under a finite fuel budget, mirroring the batch summary's
    byte-stable shape.  [rid] renders as ["rid":…] right after [id] —
    only when the request carried or was minted a correlation id, so an
    untelemetered daemon's responses stay byte-identical to the frozen
    goldens. *)

val overloaded_response :
  ?id:string -> ?rid:string -> ?reason:string -> unit -> string
(** Load shedding's refusal: one [op:"grade"] line carrying the marker
    field ["rejected":"overloaded"] and a rejected Outcome with
    [stage:"admission"] in the result slot, so clients that only parse
    grade responses still get a total answer.  The optional [reason]
    replaces the default ["admission queue full; retry later"] (the
    queue-wait deadline path says so instead).  Shed responses are
    never cached and never enter the outcome taxonomy — they are
    counted by the [admission.shed] counter alone. *)

(** Serving-tier extension of the stats payload: admission control,
    sharding and durable-store figures.  Present only when the
    concurrent socket daemon answers ([None] keeps the legacy stats
    line byte-identical for the stdio path and its pinned goldens). *)
type stats_ext = {
  shed : int;  (** grade requests refused by admission control *)
  degraded_admission : int;
      (** grade requests admitted past the watermark with the
          degraded [shed_fuel] budget *)
  shards : int;  (** result-cache shard count *)
  conns : int;  (** open client connections right now *)
  store : (int * int * int * int) option;
      (** (recovered, dropped_bytes, appended, compactions) of the
          durable store; [None] when serving memory-only *)
}

(** SLO attainment figures, present only when the daemon was started
    with an objective ([--slo-ms]).  Burn rate is the bad-fraction over
    a trailing window divided by the error budget [1 - target]: 1.0
    means the budget is being spent exactly at the sustainable rate,
    above 1 it will exhaust early. *)
type slo_stats = {
  slo_good : int;  (** grade responses within the latency objective *)
  slo_bad : int;  (** over-objective grades plus sheds *)
  burn_1m : float;
  burn_5m : float;
  burn_1h : float;
}

type stats = {
  requests : int;  (** request lines parsed, any op *)
  grades : int;  (** grade requests answered (cached or not) *)
  stats_reqs : int;
  errors : int;  (** error responses emitted *)
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  cache_cap : int;
  graded : int;  (** outcome taxonomy counts over grade responses *)
  degraded : int;
  rejected : int;
  queue_depth : int;  (** grade requests queued when stats was handled *)
  queue_max : int;  (** deepest queue observed so far *)
  queue_cap : int;
  diag_counts : (string * int) list;
      (** static-analysis findings delivered, per pass id; the five
          standard passes always present, in {!Jfeed_analysis.Passes.pass_ids}
          order, so the rendered object is byte-stable *)
  absint_counts : (string * int) list;
      (** abstract-interpretation findings, per pass id; rendered as a
          trailing ["absint"] object after [latency_ms] so the frozen
          stats golden (masked from [latency_ms] on) is untouched *)
  p50_ms : float;  (** grade latency percentiles, 0 when no grades yet *)
  p95_ms : float;
  ext : stats_ext option;  (** concurrent-daemon figures, see above *)
  slo : slo_stats option;
      (** rendered as a trailing ["slo"] object after ["absint"] — also
          inside the masked zone — and only when an objective is set *)
}

val stats_response : ?id:string -> stats -> string
(** Latency percentiles render with [%.3g] — three {e significant}
    digits — so sub-millisecond service times survive (a 41 µs p50 is
    [0.0412], where fixed-point [%.3f] flattened it to [0.000]).  When
    [ext] is present, [,"admission":{…},"shards":N,"conns":N[,"store":{…}]]
    is spliced between the [queue] and [latency_ms] objects; when
    absent the line is byte-identical to the historical shape. *)

(** One slowlog entry: a slow grade request with its per-stage
    breakdown, stage names from {!Jfeed_trace.Trace.rollup} ([parse],
    [epdg], [match], [pairing], [interp], [tests], [analysis]…),
    milliseconds each. *)
type slow_entry = {
  s_rid : string option;
      (** correlation id, leading the entry as ["rid":…] when present *)
  s_assignment : string;
  s_ms : float;  (** total service time *)
  s_outcome : string;  (** taxonomy class *)
  s_stages : (string * float) list;  (** stage → total ms, rollup order *)
}

val slowlog_response : ?id:string -> slow_entry list -> string
(** [{"op":"slowlog","n":…,"slowest":[{"assignment":…,"ms":…,
    "outcome":…,"stages":{…}},…]}], slowest first; all times [%.3g]. *)

val shutdown_response : ?id:string -> unit -> string

val error_response : ?id:string -> ?rid:string -> string -> string
