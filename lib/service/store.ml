(** Append-only checksummed record log.  See store.mli. *)

type recovery = { recovered : int; dropped_bytes : int }

type t = {
  dir : string;
  mutable fd : Unix.file_descr;
  mutable appended : int;
  mutable compactions : int;
  boot : recovery;
}

let file_name = "cache.jfl"
let header_len = 4 + 16 (* length field + MD5 of the payload *)

(* A length field beyond this is treated as corruption, not a record:
   it bounds what recovery will try to allocate from a damaged file. *)
let max_payload = 64 * 1024 * 1024

let put_u32 b off n =
  Bytes.set b off (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (n land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let encode_record ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let plen = 4 + klen + vlen in
  let b = Bytes.create (header_len + plen) in
  put_u32 b 0 plen;
  put_u32 b header_len klen;
  Bytes.blit_string key 0 b (header_len + 4) klen;
  Bytes.blit_string value 0 b (header_len + 4 + klen) vlen;
  let digest = Digest.subbytes b header_len plen in
  Bytes.blit_string digest 0 b 4 16;
  b

let really_write fd b =
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Sysx.write fd b off (n - off) with
      | `Wrote w -> go (off + w)
      | `Again ->
          (* blocking descriptor: only reachable if someone marked the
             log non-blocking; yield and retry *)
          ignore (Sysx.select [] [ fd ] [] 0.05);
          go off
  in
  go 0

(* [really_read fd b] — false when EOF arrived first. *)
let really_read fd b =
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Sysx.read fd b off (n - off) with
      | `Read 0 -> false
      | `Read r -> go (off + r)
      | `Again ->
          ignore (Sysx.select [ fd ] [] [] 0.05);
          go off
  in
  go 0

(* Scan the log from the start; [f] sees each valid record.  Returns
   (valid records, offset of the first invalid byte). *)
let scan fd ~size ~f =
  let header = Bytes.create header_len in
  let rec go count off =
    if off + header_len > size then (count, off)
    else if not (really_read fd header) then (count, off)
    else begin
      let plen = get_u32 header 0 in
      if plen < 4 || plen > max_payload || off + header_len + plen > size
      then (count, off)
      else begin
        let payload = Bytes.create plen in
        if not (really_read fd payload) then (count, off)
        else if
          Digest.bytes payload <> Bytes.sub_string header 4 16
        then (count, off)
        else begin
          let klen = get_u32 payload 0 in
          if klen < 0 || klen > plen - 4 then (count, off)
          else begin
            f
              ~key:(Bytes.sub_string payload 4 klen)
              ~value:(Bytes.sub_string payload (4 + klen) (plen - 4 - klen));
            go (count + 1) (off + header_len + plen)
          end
        end
      end
    end
  in
  go 0 0

let lock_or_fail fd dir =
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
      raise
        (Failure
           (Printf.sprintf
              "cache directory %S is locked by another jfeed serve" dir))

let open_dir dir ~f =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if not (Sys.is_directory dir) then
    raise (Failure (Printf.sprintf "--cache-dir %S is not a directory" dir));
  let path = Filename.concat dir file_name in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  lock_or_fail fd dir;
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let recovered, valid_end = scan fd ~size ~f in
  (* Drop the torn tail so appends continue from a clean prefix. *)
  if valid_end < size then Unix.ftruncate fd valid_end;
  ignore (Unix.lseek fd valid_end Unix.SEEK_SET);
  let boot = { recovered; dropped_bytes = size - valid_end } in
  ({ dir; fd; appended = 0; compactions = 0; boot }, boot)

let append t ~key ~value =
  really_write t.fd (encode_record ~key ~value);
  t.appended <- t.appended + 1

let appended t = t.appended
let compactions t = t.compactions
let recovery t = t.boot

let sync t = try Unix.fsync t.fd with Unix.Unix_error _ -> ()

let compact t entries =
  let path = Filename.concat t.dir file_name in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  List.iter
    (fun (key, value) -> really_write fd (encode_record ~key ~value))
    entries;
  (try Unix.fsync fd with Unix.Unix_error _ -> ());
  Unix.close fd;
  (* rename is atomic: a crash here leaves the old log or the new one *)
  Unix.rename tmp path;
  (* our descriptor still names the old inode; swap to the new log and
     re-take the single-writer lock *)
  Unix.close t.fd;
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644 in
  lock_or_fail fd t.dir;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  t.fd <- fd;
  t.compactions <- t.compactions + 1

let close t =
  sync t;
  try Unix.close t.fd with Unix.Unix_error _ -> ()
