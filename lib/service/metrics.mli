(** Live serving statistics: counters and grade-latency percentiles.

    One instance per server; every counter is monotone over the server's
    lifetime.  Latencies go into a fixed-size ring (the last
    {!reservoir_cap} grades), so a long-lived daemon's percentiles track
    {e recent} behaviour and memory stays bounded. *)

type t

val create : unit -> t

val reservoir_cap : int
(** Latency samples kept (4096). *)

(** {2 Recording} *)

val record_request : t -> unit
(** Any parsed or attempted request line. *)

val record_error : t -> unit

val record_stats_req : t -> unit

val record_grade : t -> outcome:string -> hit:bool -> ms:float -> unit
(** One grade response: [outcome] is the taxonomy class
    (["graded"] / ["degraded"] / ["rejected"]), [hit] whether it was
    served from the result cache (including in-flight batch duplicates),
    [ms] the request's service time. *)

val record_diags : t -> (string * int) list -> unit
(** Static-analysis findings delivered with a grade response, as
    per-pass counts ({!Jfeed_analysis.Passes.count_by_pass}).  Counted
    on cache hits and in-flight duplicates too — the client received
    those diagnostics all the same. *)

val observe_queue_depth : t -> int -> unit
(** Track the high-water mark of the grade queue. *)

(** {2 Reading} *)

val hits : t -> int
val misses : t -> int
val queue_max : t -> int

val percentile : t -> float -> float
(** [percentile t p] with [p] in [[0, 1]]: nearest-rank percentile of
    the latency reservoir in milliseconds; [0.0] before the first
    grade. *)

val to_stats :
  t ->
  cache_size:int ->
  cache_cap:int ->
  queue_depth:int ->
  queue_cap:int ->
  Proto.stats
(** Snapshot for a [stats] response. *)
