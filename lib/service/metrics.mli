(** Live serving statistics: counters and grade-latency percentiles.

    One instance per server; every counter is monotone over the server's
    lifetime.  Latencies go into a fixed-size ring (the last
    {!reservoir_cap} grades), so a long-lived daemon's percentiles track
    {e recent} behaviour and memory stays bounded. *)

type t

val create : unit -> t

val reservoir_cap : int
(** Latency samples kept (4096). *)

val slowlog_cap : int
(** Slowlog entries kept (10). *)

val latency_buckets : float array
(** The latency histogram's upper bounds (ms), strictly increasing.
    Frozen: the exposition's [le] label set is cram-pinned, and
    Prometheus semantics forbid per-scrape bucket changes. *)

(** {2 Recording} *)

val record_request : t -> unit
(** Any parsed or attempted request line. *)

val record_error : t -> unit

val record_stats_req : t -> unit

val record_shed : t -> unit
(** One grade request refused by admission control (queue full or
    queue-wait deadline exceeded).  Shed requests never reach
    {!record_grade} — they are refusals, not outcomes. *)

val record_degraded_admission : t -> unit
(** One grade request admitted past the watermark with the degraded
    [shed_fuel] budget.  The request still reaches {!record_grade}
    with whatever outcome the shrunken budget produced. *)

val record_grade : t -> outcome:string -> hit:bool -> ms:float -> unit
(** One grade response: [outcome] is the taxonomy class
    (["graded"] / ["degraded"] / ["rejected"]), [hit] whether it was
    served from the result cache (including in-flight batch duplicates),
    [ms] the request's service time. *)

val record_diags : t -> (string * int) list -> unit
(** Static-analysis findings delivered with a grade response, as
    per-pass counts ({!Jfeed_analysis.Passes.count_by_pass}).  Counted
    on cache hits and in-flight duplicates too — the client received
    those diagnostics all the same. *)

val record_slow : t -> Proto.slow_entry -> unit
(** Offer one grade request to the slowlog; kept iff it ranks among the
    {!slowlog_cap} slowest seen so far (ties keep the older entry
    first). *)

val observe_queue_depth : t -> int -> unit
(** Track the high-water mark of the grade queue. *)

val record_slo : t -> ok:bool -> unit
(** One SLO verdict: [ok] iff the request finished within the latency
    objective (sheds are always bad).  Stamped with the monotonic clock
    into a {!reservoir_cap} ring for trailing-window burn rates. *)

val record_trace_retained : t -> unit
(** One request whose full span tree was retained by tail-based
    sampling (slow, degraded, rejected, or 1-in-N sampled). *)

(** {2 Reading} *)

val hits : t -> int
val misses : t -> int
val queue_max : t -> int
val shed : t -> int
val degraded_admission : t -> int
val slo_good : t -> int
val slo_bad : t -> int
val traces_retained : t -> int

val burn_rate : t -> target:float -> window_s:float -> float
(** Error-budget burn rate over the trailing window: the bad fraction
    of the window's verdicts divided by the budget [1 - target].  1.0
    means the budget is being spent exactly at the sustainable rate;
    an empty window (or [target >= 1]) burns 0. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [[0, 1]]: nearest-rank percentile of
    the latency reservoir in milliseconds; [0.0] before the first
    grade. *)

val slowlog : t -> Proto.slow_entry list
(** Slowest grades first, at most {!slowlog_cap}. *)

val to_stats :
  ?ext:Proto.stats_ext ->
  ?slo_target:float ->
  t ->
  cache_size:int ->
  cache_cap:int ->
  queue_depth:int ->
  queue_cap:int ->
  Proto.stats
(** Snapshot for a [stats] response.  [ext] carries the concurrent
    daemon's serving-tier figures; omitted, the rendered stats line is
    byte-identical to the historical shape (the stdio path's pinned
    golden).  [slo_target] turns on the trailing ["slo"] object with
    good/bad counts and burn rates at 1m/5m/1h windows. *)

(** Serving-tier figures for the extended exposition, supplied by the
    socket daemon (the [t] counters don't know about shards,
    connections or the durable store). *)
type extended = {
  x_shard_counters : (int * int) array;
      (** per-shard (hits, misses), {!Shards.counters} *)
  x_conns : int;  (** open client connections *)
  x_store : (int * int * int * int) option;
      (** (recovered, dropped_bytes, appended, compactions); [None]
          when serving memory-only *)
}

val to_prometheus :
  ?extended:extended ->
  ?slo:float * float ->
  ?events:int * int * int ->
  t ->
  cache_size:int ->
  cache_cap:int ->
  queue_depth:int ->
  queue_cap:int ->
  string
(** The same snapshot as Prometheus text exposition: counters
    ([jfeed_requests_total], [jfeed_grades_total], [jfeed_errors_total],
    [jfeed_outcomes_total{class=…}], cache hit/miss totals,
    [jfeed_diagnostics_total{pass=…}] over the five fixed pass ids),
    gauges (cache occupancy, queue depth and high-water mark), and a
    [jfeed_grade_latency_ms] histogram over {!latency_buckets} with
    cumulative bucket counts, [_sum] and [_count].  The line set, order
    and every [le] bound are fixed — only sample values vary — and the
    block ends with [# EOF] (no trailing newline).
    [jfeed_grades_total] always equals the [stats] response's [grades]
    field: both read the same counter.

    With [extended], the serving-tier families ([jfeed_shed_total],
    [jfeed_admission_degraded_total], [jfeed_connections_active],
    per-shard cache hit/miss counters, and — when a durable store is
    attached — its recovery/append/compaction figures) are
    {e prepended} before [jfeed_requests_total], so the historical
    block from that anchor to [# EOF] keeps its exact line set.

    The telemetry families live in the same prepend zone:
    [jfeed_build_info{version,kb_digest}] (value 1, the same data as
    [jfeed version]) and [jfeed_traces_retained_total] always;
    [jfeed_slo_latency_ms] / [jfeed_slo_target] /
    [jfeed_slo_good_total] / [jfeed_slo_bad_total] /
    [jfeed_slo_burn_rate{window="1m"|"5m"|"1h"}] when [slo] =
    [(slo_ms, target)] is set; event-log emitted/dropped/rotation
    counters when [events] = [(emitted, dropped, rotations)] is set. *)
