(** EINTR-safe system calls.  See sysx.mli. *)

let rec read fd buf pos len =
  match Unix.read fd buf pos len with
  | n -> `Read n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read fd buf pos len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Again

let rec write fd buf pos len =
  match Unix.write fd buf pos len with
  | n -> `Wrote n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write fd buf pos len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Again

let rec accept fd =
  match Unix.accept fd with
  | conn -> `Conn conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept fd
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
      `Again

let select r w e timeout =
  match Unix.select r w e timeout with
  | ready -> ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])

let sleep s =
  let t0 = Unix.gettimeofday () in
  let rec go remaining =
    if remaining > 0.0 then
      match Unix.sleepf remaining with
      | () -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          go (s -. (Unix.gettimeofday () -. t0))
  in
  go s
