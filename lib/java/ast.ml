(** Abstract syntax for the Java subset used in introductory programming
    assignments.

    The subset covers everything the paper's twelve assignments (and the
    submission generator) need: methods with primitive/array/class types,
    the usual statement forms, and the full expression grammar including
    arrays, field access, method calls and object creation
    ([new Scanner(new File("..."))]). *)

type typ =
  | Tprim of string  (** [int], [long], [double], [boolean], [char], [void] *)
  | Tclass of string  (** [String], [Scanner], [File], ... *)
  | Tarray of typ

type unop = Neg | Not | Bit_not | Uplus

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Bit_and
  | Bit_or
  | Bit_xor
  | Shl
  | Shr
  | Ushr

type assign_op = Set | Add_eq | Sub_eq | Mul_eq | Div_eq | Mod_eq

type incdec = Pre_incr | Pre_decr | Post_incr | Post_decr

type expr =
  | Int_lit of int
  | Double_lit of float
  | Bool_lit of bool
  | Char_lit of char
  | Str_lit of string
  | Null_lit
  | Var of string
  | Field of expr * string  (** [a.length], [System.out] *)
  | Index of expr * expr  (** [a[i]] *)
  | Call of expr option * string * expr list
      (** [f(x)] has no receiver; [s.nextInt()] has receiver [Var "s"];
          [System.out.println(x)] has receiver [Field (Var "System", "out")]. *)
  | New of typ * expr list  (** [new Scanner(...)] *)
  | New_array of typ * expr list  (** [new int[n]]; element type + dims *)
  | Array_lit of expr list  (** [{1, 2, 3}] in declarations *)
  | Unary of unop * expr
  | Incdec of incdec * expr
  | Binary of binop * expr * expr
  | Assign of assign_op * expr * expr
  | Ternary of expr * expr * expr
  | Cast of typ * expr

type var_decl = { d_type : typ; d_name : string; d_init : expr option }

type for_init = For_decl of var_decl list | For_exprs of expr list

type switch_case = { case_label : expr option; case_body : stmt list }
(** [case_label = None] is [default:]. *)

and stmt =
  | Sdecl of var_decl list
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of for_init option * expr option * expr list * stmt
  | Sswitch of expr * switch_case list
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sblock of stmt list
  | Sempty

type param = { p_type : typ; p_name : string }

type meth = {
  m_ret : typ;
  m_name : string;
  m_params : param list;
  m_body : stmt list;
}

type program = { methods : meth list }

(** [is_class_name id] — heuristic used throughout: capitalized identifiers
    denote class names ([System], [Math], [Scanner], ...) rather than
    program variables, which introductory courses write in lower camel
    case. *)
let is_class_name id = String.length id > 0 && id.[0] >= 'A' && id.[0] <= 'Z'

(** Free program variables of an expression, in first-occurrence order.
    Field selectors, method names and class names are not variables
    (Design decision 5 in DESIGN.md). *)
let vars_of_expr expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add x =
    if (not (is_class_name x)) && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      acc := x :: !acc
    end
  in
  let rec go = function
    | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _
    | Null_lit ->
        ()
    | Var x -> add x
    | Field (e, _) -> go e
    | Index (e1, e2) ->
        go e1;
        go e2
    | Call (recv, _, args) ->
        Option.iter go recv;
        List.iter go args
    | New (_, args) -> List.iter go args
    | New_array (_, dims) -> List.iter go dims
    | Array_lit elts -> List.iter go elts
    | Unary (_, e) | Incdec (_, e) | Cast (_, e) -> go e
    | Binary (_, e1, e2) | Assign (_, e1, e2) ->
        go e1;
        go e2
    | Ternary (c, t, f) ->
        go c;
        go t;
        go f
  in
  go expr;
  List.rev !acc

(** Variables assigned (written) by an expression: assignment left-hand
    sides and increment/decrement targets.  For array stores [a[i] = e] the
    assigned variable is [a]. *)
let assigned_vars expr =
  let acc = ref [] in
  let add x = if not (List.mem x !acc) then acc := x :: !acc in
  let rec base = function
    | Var x -> add x
    | Index (e, _) | Field (e, _) -> base e
    | _ -> ()
  in
  let rec go = function
    | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _
    | Null_lit | Var _ ->
        ()
    | Field (e, _) -> go e
    | Index (e1, e2) ->
        go e1;
        go e2
    | Call (recv, _, args) ->
        Option.iter go recv;
        List.iter go args
    | New (_, args) -> List.iter go args
    | New_array (_, dims) -> List.iter go dims
    | Array_lit elts -> List.iter go elts
    | Unary (_, e) | Cast (_, e) -> go e
    | Incdec (_, e) ->
        base e;
        go e
    | Assign (_, lhs, rhs) ->
        base lhs;
        go lhs;
        go rhs
    | Binary (_, e1, e2) ->
        go e1;
        go e2
    | Ternary (c, t, f) ->
        go c;
        go t;
        go f
  in
  go expr;
  List.rev !acc

(** Variables read by an expression.  The target of a compound assignment
    ([x += e]) and of increment/decrement is both read and written; the
    target of a plain assignment [x = e] is written only, but its index
    expressions ([a[i] = e] reads [i] and [a] — the array object must
    exist) are read. *)
let read_vars expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add x =
    if (not (is_class_name x)) && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      acc := x :: !acc
    end
  in
  let rec go = function
    | Int_lit _ | Double_lit _ | Bool_lit _ | Char_lit _ | Str_lit _
    | Null_lit ->
        ()
    | Var x -> add x
    | Field (e, _) -> go e
    | Index (e1, e2) ->
        go e1;
        go e2
    | Call (recv, _, args) ->
        Option.iter go recv;
        List.iter go args
    | New (_, args) -> List.iter go args
    | New_array (_, dims) -> List.iter go dims
    | Array_lit elts -> List.iter go elts
    | Unary (_, e) | Cast (_, e) -> go e
    | Incdec (_, e) -> go e
    | Assign (op, lhs, rhs) ->
        (match (op, lhs) with
        | Set, Var _ -> ()
        | Set, _ -> go lhs
        | _, _ -> go lhs);
        go rhs
    | Binary (_, e1, e2) ->
        go e1;
        go e2
    | Ternary (c, t, f) ->
        go c;
        go t;
        go f
  in
  go expr;
  List.rev !acc

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
  | Bit_and -> "&"
  | Bit_or -> "|"
  | Bit_xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Ushr -> ">>>"

let string_of_assign_op = function
  | Set -> "="
  | Add_eq -> "+="
  | Sub_eq -> "-="
  | Mul_eq -> "*="
  | Div_eq -> "/="
  | Mod_eq -> "%="

let string_of_unop = function
  | Neg -> "-"
  | Not -> "!"
  | Bit_not -> "~"
  | Uplus -> "+"

let rec string_of_typ = function
  | Tprim s -> s
  | Tclass s -> s
  | Tarray t -> string_of_typ t ^ "[]"
