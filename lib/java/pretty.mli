(** Printing for the Java subset.

    {!expr} produces the {e canonical rendering} the pattern templates of
    the knowledge base match against: deterministic token spacing (one
    space around binary and assignment operators, none around unary and
    postfix operators), and the minimal parentheses needed to re-parse to
    the same tree.  [Parser.parse_expression (expr e) = e]. *)

val expr : Ast.expr -> string

val stmt : ?indent:int -> Ast.stmt -> string
(** Multi-line statement rendering, 4-space indentation. *)

val meth : ?indent:int -> Ast.meth -> string

val program : Ast.program -> string
(** All methods, blank-line separated. *)

val string_literal : string -> string
(** Quoted and escaped. *)

val double_literal : float -> string
(** Java-style: integral doubles render with a trailing [.0]. *)
