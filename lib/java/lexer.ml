(** Hand-written lexer for the Java subset. *)

type token =
  | Ident of string
  | Keyword of string
  | Int_literal of int
  | Double_literal of float
  | String_literal of string
  | Char_literal of char
  | Punct of string
  | Eof

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column *)

let keywords =
  [
    "abstract"; "boolean"; "break"; "byte"; "case"; "catch"; "char"; "class";
    "const"; "continue"; "default"; "do"; "double"; "else"; "extends";
    "final"; "finally"; "float"; "for"; "if"; "implements"; "import";
    "instanceof"; "int"; "interface"; "long"; "native"; "new"; "package";
    "private"; "protected"; "public"; "return"; "short"; "static"; "switch";
    "synchronized"; "this"; "throw"; "throws"; "try"; "void"; "volatile";
    "while"; "true"; "false"; "null";
  ]

let keyword_set =
  let tbl = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keywords;
  tbl

let is_keyword s = Hashtbl.mem keyword_set s
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Longest punctuators first so that e.g. ">>>=" is not read as ">" ">" ">=" *)
let puncts =
  [
    ">>>="; ">>>"; "<<="; ">>="; "..."; "=="; "!="; "<="; ">="; "&&"; "||";
    "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<"; ">>";
    "->"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "."; "="; "<"; ">"; "+";
    "-"; "*"; "/"; "%"; "!"; "~"; "&"; "|"; "^"; "?"; ":"; "@";
  ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  if st.pos < String.length st.src then
    (match String.unsafe_get st.src st.pos with
    | '\n' ->
        st.line <- st.line + 1;
        st.col <- 1
    | _ -> st.col <- st.col + 1);
  st.pos <- st.pos + 1

let error st msg = raise (Lex_error (msg, st.line, st.col))

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance st;
      skip_trivia st
  | Some '/', Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/', Some '*' ->
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            close ()
        | None, _ -> error st "unterminated block comment"
      in
      close ();
      skip_trivia st
  | _ -> ()

let lex_escape st =
  advance st;
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some 'b' -> advance st; '\b'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> error st (Printf.sprintf "unsupported escape '\\%c'" c)
  | None -> error st "unterminated escape"

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' ->
        advance st;
        String_literal (Buffer.contents buf)
    | Some '\\' ->
        Buffer.add_char buf (lex_escape st);
        go ()
    | Some '\n' | None -> error st "unterminated string literal"
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ()

let lex_char st =
  advance st;
  let c =
    match peek st with
    | Some '\\' -> lex_escape st
    | Some c ->
        advance st;
        c
    | None -> error st "unterminated character literal"
  in
  match peek st with
  | Some '\'' ->
      advance st;
      Char_literal c
  | _ -> error st "unterminated character literal"

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_double =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c ->
        advance st;
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done;
        true
    | _ -> false
  in
  let has_exp =
    match peek st with
    | Some ('e' | 'E') ->
        advance st;
        (match peek st with Some ('+' | '-') -> advance st | _ -> ());
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done;
        true
    | _ -> false
  in
  (* Trailing type suffixes are accepted and ignored. *)
  let suffix_double =
    match peek st with
    | Some ('d' | 'D' | 'f' | 'F') ->
        advance st;
        true
    | Some ('l' | 'L') ->
        advance st;
        false
    | _ -> false
  in
  let text = String.sub st.src start (st.pos - start) in
  let text =
    match text.[String.length text - 1] with
    | 'd' | 'D' | 'f' | 'F' | 'l' | 'L' ->
        String.sub text 0 (String.length text - 1)
    | _ -> text
  in
  if is_double || has_exp || suffix_double then
    Double_literal (float_of_string text)
  else Int_literal (int_of_string text)

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  if is_keyword text then Keyword text else Ident text

let matches_at st p =
  let n = String.length p in
  st.pos + n <= String.length st.src
  &&
  let rec eq k =
    k = n
    || String.unsafe_get st.src (st.pos + k) = String.unsafe_get p k
       && eq (k + 1)
  in
  eq 0

(* Dispatch on the first character so each punct token probes only the
   (longest-first) punctuators that could start with it, not all 48. *)
let puncts_by_char =
  let a = Array.make 256 [] in
  List.iter
    (fun p ->
      let i = Char.code p.[0] in
      a.(i) <- a.(i) @ [ p ])
    puncts;
  a

let lex_punct st =
  let candidates = puncts_by_char.(Char.code st.src.[st.pos]) in
  match List.find_opt (matches_at st) candidates with
  | Some p ->
      String.iter (fun _ -> advance st) p;
      Punct p
  | None -> error st (Printf.sprintf "unexpected character %C" st.src.[st.pos])

let next_token st =
  skip_trivia st;
  let line = st.line and col = st.col in
  let tok =
    match peek st with
    | None -> Eof
    | Some '"' -> lex_string st
    | Some '\'' -> lex_char st
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> lex_ident st
    | Some _ -> lex_punct st
  in
  { tok; line; col }

(** Tokenize a whole source string; the resulting list always ends with
    [Eof].  Raises {!Lex_error} on malformed input. *)
let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    if t.tok = Eof then List.rev (t :: acc) else go (t :: acc)
  in
  go []

let string_of_token = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Keyword s -> Printf.sprintf "keyword %S" s
  | Int_literal n -> Printf.sprintf "integer %d" n
  | Double_literal f -> Printf.sprintf "double %g" f
  | String_literal s -> Printf.sprintf "string %S" s
  | Char_literal c -> Printf.sprintf "char %C" c
  | Punct s -> Printf.sprintf "%S" s
  | Eof -> "end of input"
