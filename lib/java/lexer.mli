(** Hand-written lexer for the Java subset: identifiers, keywords,
    int/double/char/string literals (with escapes and type suffixes),
    maximal-munch punctuators, and [//] / [/* */] comments. *)

type token =
  | Ident of string
  | Keyword of string
  | Int_literal of int
  | Double_literal of float
  | String_literal of string
  | Char_literal of char
  | Punct of string
  | Eof

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column (1-based) *)

val is_keyword : string -> bool

val tokenize : string -> located list
(** Tokenize a whole source string; the result always ends with [Eof].
    Raises {!Lex_error} on malformed input. *)

val string_of_token : token -> string
(** For diagnostics. *)
