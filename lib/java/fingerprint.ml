(** Submission fingerprint: the α-rename + canonical-print hash.

    The digest of the canonically α-renamed
    ({!Jfeed_java.Normalize.alpha_rename}), canonically pretty-printed
    ({!Jfeed_java.Pretty.program}) AST — two submissions share it exactly
    when they differ only by consistent variable renamings, whitespace,
    and comments, which is precisely the variation that cannot change a
    grade's structure.  When the source does not parse, the digest falls
    back to the raw bytes ([ast = false]): unparseable inputs are
    rejected with a diagnostic that quotes exact line/column positions,
    so only a byte-identical resubmission may share that outcome.

    Both dedup consumers build on this one definition: the serving
    tier's result cache ({!Jfeed_service.Normalize} scopes it by
    assignment, KB revision and budget) and batch-level submission dedup
    ({!Jfeed_robust.Pipeline.run_batch} groups a batch into equivalence
    classes and grades one representative per class). *)

type t = {
  ast : bool;  (** true: α-normalized AST digest; false: raw-bytes digest *)
  digest : string;  (** hex *)
}

let of_source src =
  match Parser.parse_program src with
  | prog ->
      let canonical = Pretty.program (Normalize.alpha_rename prog) in
      { ast = true; digest = Digest.to_hex (Digest.string canonical) }
  | exception _ ->
      { ast = false; digest = Digest.to_hex (Digest.string src) }

(** The fingerprint as one string, ["ast:<hex>"] or ["raw:<hex>"] —
    distinct namespaces, so an AST digest can never collide with a
    raw-bytes digest. *)
let to_string fp = (if fp.ast then "ast:" else "raw:") ^ fp.digest
