(** Recursive-descent parser for the Java subset.

    Accepts either a bare sequence of method declarations (the form student
    submissions take in the paper) or methods wrapped in one or more
    [class X { ... }] declarations.  Access modifiers are accepted and
    ignored. *)

open Ast

exception Parse_error of string * int * int
(** message, line, column *)

type state = {
  toks : Lexer.located array;
  mutable cursor : int;
  mutable depth : int;
      (** recursion depth of the expression/statement grammar, to turn
          pathological nesting into a {!Parse_error} instead of a
          [Stack_overflow] *)
  map : Srcmap.t option;
      (** when present, statement/declarator/method positions are
          recorded as they are parsed (see {!parse_program_located}) *)
}

let max_nesting = 1_000
(* Far beyond any real submission (hand-written code nests a few dozen
   levels at most), far below the recursion depth that overflows the
   OCaml stack. *)

let current st = st.toks.(st.cursor)
let peek_tok st = (current st).tok

let peek_tok_at st n =
  let i = min (st.cursor + n) (Array.length st.toks - 1) in
  st.toks.(i).tok

let advance st =
  if st.cursor < Array.length st.toks - 1 then st.cursor <- st.cursor + 1

let fail st msg =
  let loc : Lexer.located = current st in
  raise (Parse_error (msg, loc.line, loc.col))

(* Position of the token about to be consumed — the start of whatever
   construct is being parsed next. *)
let here st : Srcmap.pos =
  let loc : Lexer.located = current st in
  { line = loc.line; col = loc.col }

(* Guard a recursive descent: every self-embedding production
   (expression, unary chain, statement) passes through here, so inputs
   like 10k-deep parentheses fail with a diagnostic instead of blowing
   the stack. *)
let deepen st f =
  st.depth <- st.depth + 1;
  if st.depth > max_nesting then fail st "nesting too deep";
  let r = f st in
  st.depth <- st.depth - 1;
  r

let expect_punct st p =
  match peek_tok st with
  | Lexer.Punct q when q = p -> advance st
  | t ->
      fail st
        (Printf.sprintf "expected %S but found %s" p (Lexer.string_of_token t))

let expect_keyword st k =
  match peek_tok st with
  | Lexer.Keyword q when q = k -> advance st
  | t ->
      fail st
        (Printf.sprintf "expected %S but found %s" k (Lexer.string_of_token t))

let expect_ident st =
  match peek_tok st with
  | Lexer.Ident name ->
      advance st;
      name
  | t ->
      fail st
        (Printf.sprintf "expected an identifier but found %s"
           (Lexer.string_of_token t))

let eat_punct st p =
  match peek_tok st with
  | Lexer.Punct q when q = p ->
      advance st;
      true
  | _ -> false

let eat_keyword st k =
  match peek_tok st with
  | Lexer.Keyword q when q = k ->
      advance st;
      true
  | _ -> false

let primitive_types =
  [ "int"; "long"; "short"; "byte"; "double"; "float"; "boolean"; "char"; "void" ]

let rec skip_modifiers st =
  match peek_tok st with
  | Lexer.Keyword
      ("public" | "private" | "protected" | "static" | "final" | "abstract"
      | "synchronized" | "native" | "volatile") ->
      advance st;
      skip_modifiers st
  | Lexer.Punct "@" ->
      advance st;
      ignore (expect_ident st);
      skip_modifiers st
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Types                                                              *)

let rec parse_array_suffix st t =
  if peek_tok st = Lexer.Punct "[" && peek_tok_at st 1 = Lexer.Punct "]" then begin
    advance st;
    advance st;
    parse_array_suffix st (Tarray t)
  end
  else t

let parse_base_type st =
  match peek_tok st with
  | Lexer.Keyword k when List.mem k primitive_types ->
      advance st;
      Tprim k
  | Lexer.Ident name ->
      advance st;
      if name = "String" then Tclass "String" else Tclass name
  | t ->
      fail st
        (Printf.sprintf "expected a type but found %s" (Lexer.string_of_token t))

let parse_type st = parse_array_suffix st (parse_base_type st)

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)

let binop_of_punct = function
  | "+" -> Some Add
  | "-" -> Some Sub
  | "*" -> Some Mul
  | "/" -> Some Div
  | "%" -> Some Mod
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "==" -> Some Eq
  | "!=" -> Some Ne
  | "&&" -> Some And
  | "||" -> Some Or
  | "&" -> Some Bit_and
  | "|" -> Some Bit_or
  | "^" -> Some Bit_xor
  | "<<" -> Some Shl
  | ">>" -> Some Shr
  | ">>>" -> Some Ushr
  | _ -> None

let precedence = function
  | Or -> 1
  | And -> 2
  | Bit_or -> 3
  | Bit_xor -> 4
  | Bit_and -> 5
  | Eq | Ne -> 6
  | Lt | Le | Gt | Ge -> 7
  | Shl | Shr | Ushr -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10

let assign_op_of_punct = function
  | "=" -> Some Set
  | "+=" -> Some Add_eq
  | "-=" -> Some Sub_eq
  | "*=" -> Some Mul_eq
  | "/=" -> Some Div_eq
  | "%=" -> Some Mod_eq
  | _ -> None

let rec parse_expr st = deepen st parse_assignment

and parse_assignment st =
  let lhs = parse_ternary st in
  match peek_tok st with
  | Lexer.Punct p -> (
      match assign_op_of_punct p with
      | Some op ->
          advance st;
          let rhs = parse_assignment st in
          Assign (op, lhs, rhs)
      | None -> lhs)
  | _ -> lhs

and parse_ternary st =
  let cond = parse_binary st 1 in
  if eat_punct st "?" then begin
    let t = parse_assignment st in
    expect_punct st ":";
    let f = parse_assignment st in
    Ternary (cond, t, f)
  end
  else cond

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek_tok st with
    | Lexer.Punct p -> (
        match binop_of_punct p with
        | Some op when precedence op >= min_prec ->
            advance st;
            let rhs = parse_binary st (precedence op + 1) in
            loop (Binary (op, lhs, rhs))
        | _ -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_unary st = deepen st parse_unary_body

and parse_unary_body st =
  match peek_tok st with
  | Lexer.Punct "-" ->
      advance st;
      Unary (Neg, parse_unary st)
  | Lexer.Punct "+" ->
      advance st;
      Unary (Uplus, parse_unary st)
  | Lexer.Punct "!" ->
      advance st;
      Unary (Not, parse_unary st)
  | Lexer.Punct "~" ->
      advance st;
      Unary (Bit_not, parse_unary st)
  | Lexer.Punct "++" ->
      advance st;
      Incdec (Pre_incr, parse_unary st)
  | Lexer.Punct "--" ->
      advance st;
      Incdec (Pre_decr, parse_unary st)
  | Lexer.Punct "("
    when match peek_tok_at st 1 with
         | Lexer.Keyword k ->
             List.mem k primitive_types && peek_tok_at st 2 = Lexer.Punct ")"
         | _ -> false -> (
      advance st;
      match peek_tok st with
      | Lexer.Keyword k ->
          advance st;
          expect_punct st ")";
          Cast (Tprim k, parse_unary st)
      | _ -> assert false)
  | Lexer.Keyword "new" -> parse_new st
  | _ -> parse_postfix st

and parse_new st =
  expect_keyword st "new";
  let base = parse_base_type st in
  if peek_tok st = Lexer.Punct "[" then begin
    let dims = ref [] in
    while eat_punct st "[" do
      if eat_punct st "]" then () (* trailing [] as in new int[][] — rare *)
      else begin
        dims := parse_expr st :: !dims;
        expect_punct st "]"
      end
    done;
    if peek_tok st = Lexer.Punct "{" then
      (* new int[] {1, 2} — the literal carries the elements *)
      parse_array_literal st
    else New_array (base, List.rev !dims)
  end
  else begin
    expect_punct st "(";
    let args = parse_args st in
    New (base, args)
  end

and parse_array_literal st =
  expect_punct st "{";
  let elts = ref [] in
  if not (eat_punct st "}") then begin
    let rec go () =
      elts := parse_expr st :: !elts;
      if eat_punct st "," then if peek_tok st = Lexer.Punct "}" then () else go ()
    in
    go ();
    expect_punct st "}"
  end;
  Array_lit (List.rev !elts)

and parse_args st =
  let args = ref [] in
  if not (eat_punct st ")") then begin
    let rec go () =
      args := parse_expr st :: !args;
      if eat_punct st "," then go ()
    in
    go ();
    expect_punct st ")"
  end;
  List.rev !args

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    match peek_tok st with
    | Lexer.Punct "." -> (
        advance st;
        let name = expect_ident st in
        if eat_punct st "(" then loop (Call (Some e, name, parse_args st))
        else loop (Field (e, name)))
    | Lexer.Punct "[" ->
        advance st;
        let idx = parse_expr st in
        expect_punct st "]";
        loop (Index (e, idx))
    | Lexer.Punct "++" ->
        advance st;
        loop (Incdec (Post_incr, e))
    | Lexer.Punct "--" ->
        advance st;
        loop (Incdec (Post_decr, e))
    | _ -> e
  in
  loop e

and parse_primary st =
  match peek_tok st with
  | Lexer.Int_literal n ->
      advance st;
      Int_lit n
  | Lexer.Double_literal f ->
      advance st;
      Double_lit f
  | Lexer.String_literal s ->
      advance st;
      Str_lit s
  | Lexer.Char_literal c ->
      advance st;
      Char_lit c
  | Lexer.Keyword "true" ->
      advance st;
      Bool_lit true
  | Lexer.Keyword "false" ->
      advance st;
      Bool_lit false
  | Lexer.Keyword "null" ->
      advance st;
      Null_lit
  | Lexer.Ident name ->
      advance st;
      if eat_punct st "(" then Call (None, name, parse_args st) else Var name
  | Lexer.Punct "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Lexer.Punct "{" -> parse_array_literal st
  | t ->
      fail st
        (Printf.sprintf "expected an expression but found %s"
           (Lexer.string_of_token t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

(* A statement starting with an identifier is a local declaration when the
   identifier is a class name followed by another identifier ([Scanner s])
   or by array brackets ([String[] parts]). *)
let starts_declaration st =
  match peek_tok st with
  | Lexer.Keyword k when List.mem k primitive_types && k <> "void" -> true
  | Lexer.Ident name when Ast.is_class_name name -> (
      match peek_tok_at st 1 with
      | Lexer.Ident _ -> true
      | Lexer.Punct "[" -> peek_tok_at st 2 = Lexer.Punct "]"
      | _ -> false)
  | _ -> false

(* Accumulator loop, not naive recursion: a token-duplication fuzzer can
   produce arbitrarily long [int a, a, a, …] chains. *)
let parse_declarators st base =
  let rec go acc =
    let pos = here st in
    let name = expect_ident st in
    let t = parse_array_suffix st base in
    let init = if eat_punct st "=" then Some (parse_expr st) else None in
    let d = { d_type = t; d_name = name; d_init = init } in
    Option.iter (fun m -> Srcmap.record_decl m d pos) st.map;
    if eat_punct st "," then go (d :: acc) else List.rev (d :: acc)
  in
  go []

let parse_decl_list st =
  let base = parse_type st in
  parse_declarators st base

let rec parse_stmt st =
  match st.map with
  | None -> deepen st parse_stmt_body
  | Some m ->
      let pos = here st in
      let s = deepen st parse_stmt_body in
      Srcmap.record_stmt m s pos;
      s

and parse_stmt_body st =
  match peek_tok st with
  | Lexer.Punct ";" ->
      advance st;
      Sempty
  | Lexer.Punct "{" ->
      advance st;
      let body = parse_stmts_until st "}" in
      Sblock body
  | Lexer.Keyword "if" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      let then_ = parse_stmt st in
      let else_ = if eat_keyword st "else" then Some (parse_stmt st) else None in
      Sif (cond, then_, else_)
  | Lexer.Keyword "while" ->
      advance st;
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      Swhile (cond, parse_stmt st)
  | Lexer.Keyword "do" ->
      advance st;
      let body = parse_stmt st in
      expect_keyword st "while";
      expect_punct st "(";
      let cond = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      Sdo (body, cond)
  | Lexer.Keyword "for" -> parse_for st
  | Lexer.Keyword "switch" -> parse_switch st
  | Lexer.Keyword "break" ->
      advance st;
      expect_punct st ";";
      Sbreak
  | Lexer.Keyword "continue" ->
      advance st;
      expect_punct st ";";
      Scontinue
  | Lexer.Keyword "return" ->
      advance st;
      if eat_punct st ";" then Sreturn None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Sreturn (Some e)
      end
  | _ when starts_declaration st ->
      let decls = parse_decl_list st in
      expect_punct st ";";
      Sdecl decls
  | _ ->
      let e = parse_expr st in
      expect_punct st ";";
      Sexpr e

and parse_for st =
  expect_keyword st "for";
  expect_punct st "(";
  let init =
    if peek_tok st = Lexer.Punct ";" then None
    else if starts_declaration st then Some (For_decl (parse_decl_list st))
    else begin
      let rec exprs () =
        let e = parse_expr st in
        if eat_punct st "," then e :: exprs () else [ e ]
      in
      Some (For_exprs (exprs ()))
    end
  in
  expect_punct st ";";
  let cond = if peek_tok st = Lexer.Punct ";" then None else Some (parse_expr st) in
  expect_punct st ";";
  let update =
    if peek_tok st = Lexer.Punct ")" then []
    else begin
      let rec exprs () =
        let e = parse_expr st in
        if eat_punct st "," then e :: exprs () else [ e ]
      in
      exprs ()
    end
  in
  expect_punct st ")";
  Sfor (init, cond, update, parse_stmt st)

and parse_switch st =
  expect_keyword st "switch";
  expect_punct st "(";
  let scrutinee = parse_expr st in
  expect_punct st ")";
  expect_punct st "{";
  let cases = ref [] in
  let rec go () =
    match peek_tok st with
    | Lexer.Punct "}" -> advance st
    | Lexer.Keyword "case" ->
        advance st;
        let label = parse_expr st in
        expect_punct st ":";
        cases := { case_label = Some label; case_body = parse_case_body st } :: !cases;
        go ()
    | Lexer.Keyword "default" ->
        advance st;
        expect_punct st ":";
        cases := { case_label = None; case_body = parse_case_body st } :: !cases;
        go ()
    | t ->
        fail st
          (Printf.sprintf "expected \"case\", \"default\" or \"}\" but found %s"
             (Lexer.string_of_token t))
  in
  go ();
  Sswitch (scrutinee, List.rev !cases)

and parse_case_body st =
  let rec go acc =
    match peek_tok st with
    | Lexer.Punct "}" | Lexer.Keyword "case" | Lexer.Keyword "default" ->
        List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

and parse_stmts_until st closer =
  let rec go acc =
    if eat_punct st closer then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Methods and programs                                                *)

let parse_param st =
  let t = parse_type st in
  let name = expect_ident st in
  let t = parse_array_suffix st t in
  { p_type = t; p_name = name }

let parse_params st =
  expect_punct st "(";
  let params = ref [] in
  if not (eat_punct st ")") then begin
    let rec go () =
      params := parse_param st :: !params;
      if eat_punct st "," then go ()
    in
    go ();
    expect_punct st ")"
  end;
  List.rev !params

let parse_method st =
  skip_modifiers st;
  let pos = here st in
  let ret = parse_type st in
  let name = expect_ident st in
  let params = parse_params st in
  (match peek_tok st with
  | Lexer.Keyword "throws" ->
      advance st;
      ignore (expect_ident st);
      while eat_punct st "," do
        ignore (expect_ident st)
      done
  | _ -> ());
  expect_punct st "{";
  let body = parse_stmts_until st "}" in
  let m = { m_ret = ret; m_name = name; m_params = params; m_body = body } in
  Option.iter (fun map -> Srcmap.record_meth map m pos) st.map;
  m

let parse_program_tokens st =
  let methods = ref [] in
  let rec go () =
    skip_modifiers st;
    match peek_tok st with
    | Lexer.Eof -> ()
    | Lexer.Keyword "import" ->
        (* import java.util.Scanner; — skip to the semicolon *)
        while peek_tok st <> Lexer.Punct ";" && peek_tok st <> Lexer.Eof do
          advance st
        done;
        expect_punct st ";";
        go ()
    | Lexer.Keyword "class" ->
        advance st;
        ignore (expect_ident st);
        if eat_keyword st "extends" then ignore (expect_ident st);
        expect_punct st "{";
        let rec members () =
          skip_modifiers st;
          if eat_punct st "}" then ()
          else begin
            methods := parse_method st :: !methods;
            members ()
          end
        in
        members ();
        go ()
    | _ ->
        methods := parse_method st :: !methods;
        go ()
  in
  go ();
  { methods = List.rev !methods }

let with_state src f =
  let toks = Array.of_list (Lexer.tokenize src) in
  f { toks; cursor = 0; depth = 0; map = None }

(** Parse a complete submission: one or more methods, optionally inside
    class declarations.  Raises {!Parse_error} or {!Lexer.Lex_error}. *)
let parse_program src = with_state src parse_program_tokens

(** Like {!parse_program}, additionally recording statement, declarator
    and method source positions.  Recording stays off for the plain
    entry points so hot paths (cache normalization, the generator) pay
    nothing. *)
let parse_program_located src =
  let map = Srcmap.create () in
  let toks = Array.of_list (Lexer.tokenize src) in
  let prog = parse_program_tokens { toks; cursor = 0; depth = 0; map = Some map } in
  (prog, map)

(** Parse a single expression; the whole input must be consumed. *)
let parse_expression src =
  with_state src (fun st ->
      let e = parse_expr st in
      (match peek_tok st with
      | Lexer.Eof -> ()
      | t ->
          fail st
            (Printf.sprintf "trailing input after expression: %s"
               (Lexer.string_of_token t)));
      e)

(** Parse a single statement (blocks allowed). *)
let parse_statement src =
  with_state src (fun st ->
      let s = parse_stmt st in
      (match peek_tok st with
      | Lexer.Eof -> ()
      | t ->
          fail st
            (Printf.sprintf "trailing input after statement: %s"
               (Lexer.string_of_token t)));
      s)
