(** The single-edit vocabulary: the error-model catalog shared by fault
    injection ({!Jfeed_gen.Mutate}) and automated repair
    ({!Jfeed_repair.Repair}).

    Each {!site} is one candidate rewrite of one expression node — an
    operator swap, an off-by-one constant tweak, a comparison-direction
    flip, a condition negation — the classic introductory-programming
    error model (Singh et al., {i Automated Feedback Generation for
    Introductory Programming Assignments}).  The catalog is closed under
    inverses: every edit it can inject, it can also undo, which is what
    lets the repair search re-find the fix for a single-edit mutant.

    Enumeration walks expression nodes in a fixed pre-order (methods in
    program order, statements top to bottom, subexpressions left to
    right), so site ids and the order of the returned list are a pure
    function of the AST — the determinism the repair search's
    jobs-invariance contract leans on.  {!apply} rebuilds the program
    with exactly one node replaced; everything else is shared, and the
    result re-parses from its canonical rendering to the same tree
    ({!Pretty}). *)

type kind =
  | Cmp_flip  (** [<] ↔ [<=], [>] ↔ [>=], [<] ↔ [>], [==] ↔ [!=] *)
  | Const_tweak  (** integer literal ±1 — the off-by-one family *)
  | Arith_swap  (** [+] ↔ [-], [*] ↔ [/] *)
  | Logic_swap  (** [&&] ↔ [||] *)
  | Assign_swap  (** [+=] ↔ [-=], [*=] ↔ [/=] *)
  | Incdec_flip  (** [++] ↔ [--], pre and post *)
  | Cond_negate
      (** negate (or un-negate) the guard of an [if] / [while] / [do] /
          [for] / ternary *)

val kind_slug : kind -> string
(** Stable dashed identifier: ["cmp-flip"], ["const-tweak"],
    ["arith-swap"], ["logic-swap"], ["assign-swap"], ["incdec-flip"],
    ["cond-negate"] — the vocabulary used in repair JSON and fault
    metadata. *)

type site = {
  s_id : int;  (** position in enumeration order, 0-based *)
  s_kind : kind;
  s_meth : string;  (** enclosing method name *)
  s_pos : Srcmap.pos option;
      (** position of the enclosing statement or declarator, when the
          program was parsed with {!Parser.parse_program_located} and
          its srcmap was passed to {!enumerate} *)
  s_before : string;  (** canonical rendering of the original node *)
  s_after : string;  (** canonical rendering of the replacement *)
  s_node : int;  (** pre-order index of the rewritten expression node *)
  s_repl : Ast.expr;  (** the replacement node, children shared *)
}

val enumerate : ?srcmap:Srcmap.t -> Ast.program -> site list
(** Every candidate single edit of the program, in deterministic
    pre-order.  [Cond_negate] sites are generated only at guard
    positions; a guard that is already a negation [!e] gets the
    un-negation [e] instead of double negation.  [Mod], [%=], bitwise
    and shift operators have no alternative — swapping them is outside
    the introductory error model. *)

val apply : Ast.program -> site -> Ast.program
(** The program with the site's node replaced by [s_repl] and nothing
    else changed.  Total for sites produced by {!enumerate} on the same
    program. *)
